bench/bench_util.ml: Format Int64 Monotonic_clock
