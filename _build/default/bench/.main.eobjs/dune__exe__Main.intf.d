bench/main.mli:
