(* Timing and table helpers shared by the experiment sections. *)

let now_ns () = Monotonic_clock.now ()

(* Wall-clock one evaluation, in nanoseconds. *)
let time_once f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (Int64.to_float (Int64.sub t1 t0), r)

(* Best-of-n timing to damp scheduler noise; returns nanoseconds. *)
let time_best ?(repeat = 3) f =
  let best = ref infinity in
  for _ = 1 to repeat do
    let t, _ = time_once f in
    if t < !best then best := t
  done;
  !best

let pp_ns ppf ns =
  if ns < 1e3 then Format.fprintf ppf "%8.0f ns" ns
  else if ns < 1e6 then Format.fprintf ppf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%8.2f ms" (ns /. 1e6)
  else Format.fprintf ppf "%8.2f s " (ns /. 1e9)

let section id title =
  Format.printf "@.==== %s: %s ====@." id title

let row fmt = Format.printf fmt

let ok b = if b then "ok" else "MISMATCH"
