examples/butterfly_repair.ml: Array Compiler Engine Filters Format Fstream_core Fstream_graph Fstream_repair Fstream_runtime Fstream_workloads Graph Interval List Printf Random Topo_gen
