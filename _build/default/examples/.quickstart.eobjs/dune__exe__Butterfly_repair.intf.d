examples/butterfly_repair.mli:
