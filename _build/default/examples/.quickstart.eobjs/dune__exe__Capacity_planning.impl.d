examples/capacity_planning.ml: Array Compiler Engine Filters Format Fstream_core Fstream_graph Fstream_runtime Fstream_workloads Graph Interval List Printf Random Sizing Topo_gen
