examples/deadlock_demo.ml: Array Compiler Diagnosis Engine Filters Format Fstream_core Fstream_runtime Fstream_workloads Interval List Topo_gen
