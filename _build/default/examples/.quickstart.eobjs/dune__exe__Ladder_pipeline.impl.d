examples/ladder_pipeline.ml: Array Compiler Engine Filters Format Fstream_core Fstream_graph Fstream_ladder Fstream_runtime Graph Interval List Random
