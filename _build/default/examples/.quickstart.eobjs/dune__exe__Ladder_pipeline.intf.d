examples/ladder_pipeline.mli:
