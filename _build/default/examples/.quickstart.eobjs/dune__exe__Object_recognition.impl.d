examples/object_recognition.ml: Array Compiler Engine Filters Format Fstream_core Fstream_graph Fstream_runtime Fstream_workloads Graph Interval List Random String Topo_gen
