examples/object_recognition.mli:
