examples/quickstart.ml: Array Compiler Engine Filters Format Fstream_core Fstream_graph Fstream_runtime Graph Interval List Random
