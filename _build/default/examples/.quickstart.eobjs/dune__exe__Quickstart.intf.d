examples/quickstart.mli:
