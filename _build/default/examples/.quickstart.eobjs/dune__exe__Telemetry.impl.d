examples/telemetry.ml: App Compiler Engine Format Fstream_core Fstream_parallel Fstream_runtime Fstream_workloads List Result
