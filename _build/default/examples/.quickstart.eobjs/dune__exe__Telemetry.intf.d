examples/telemetry.mli:
