lib/core/compiler.ml: Array Articulation Cs4 Cycles Format Fstream_graph Fstream_ladder General Graph Interval Ladder_nonprop Ladder_prop List Sp_nonprop Sp_prop Topo
