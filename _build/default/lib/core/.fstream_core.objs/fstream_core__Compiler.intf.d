lib/core/compiler.mli: Cs4 Format Fstream_graph Fstream_ladder Graph Interval
