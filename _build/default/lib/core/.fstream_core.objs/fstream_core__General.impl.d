lib/core/general.ml: Array Cycles Fstream_graph Graph Interval List
