lib/core/general.mli: Cycles Fstream_graph Graph Interval
