lib/core/interval.ml: Format Option Stdlib
