lib/core/interval.mli: Format
