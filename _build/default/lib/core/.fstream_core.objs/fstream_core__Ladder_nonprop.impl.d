lib/core/ladder_nonprop.ml: Array Fstream_graph Fstream_ladder Fstream_spdag Interval Ladder Ladder_view List Option Sp_nonprop Sp_tree
