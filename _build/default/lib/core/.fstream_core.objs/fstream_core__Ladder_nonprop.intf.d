lib/core/ladder_nonprop.mli: Fstream_graph Fstream_ladder Graph Interval Ladder
