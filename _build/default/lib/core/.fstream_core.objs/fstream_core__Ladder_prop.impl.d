lib/core/ladder_prop.ml: Array Fstream_graph Fstream_ladder Interval Ladder Ladder_view Option Sp_prop
