lib/core/ladder_prop.mli: Fstream_graph Fstream_ladder Graph Interval Ladder
