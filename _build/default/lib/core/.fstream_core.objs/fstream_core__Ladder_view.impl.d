lib/core/ladder_view.ml: Array Fstream_ladder Fstream_spdag Ladder Sp_tree
