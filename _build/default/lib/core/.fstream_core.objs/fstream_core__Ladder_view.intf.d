lib/core/ladder_view.mli: Fstream_ladder Fstream_spdag Ladder Sp_tree
