lib/core/sizing.ml: Array Compiler Fstream_graph Graph Interval
