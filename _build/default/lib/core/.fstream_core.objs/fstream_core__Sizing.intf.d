lib/core/sizing.mli: Compiler Fstream_graph Graph
