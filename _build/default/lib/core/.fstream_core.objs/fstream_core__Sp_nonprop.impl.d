lib/core/sp_nonprop.ml: Array Fstream_graph Fstream_spdag Interval Sp_tree
