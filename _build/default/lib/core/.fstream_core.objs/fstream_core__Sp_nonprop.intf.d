lib/core/sp_nonprop.mli: Fstream_graph Fstream_spdag Graph Interval Sp_tree
