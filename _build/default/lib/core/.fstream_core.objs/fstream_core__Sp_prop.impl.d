lib/core/sp_prop.ml: Array Fstream_graph Fstream_spdag Interval Sp_tree
