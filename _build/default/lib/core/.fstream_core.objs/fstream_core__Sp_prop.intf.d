lib/core/sp_prop.mli: Fstream_graph Fstream_spdag Interval Sp_tree
