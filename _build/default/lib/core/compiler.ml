open Fstream_graph
open Fstream_ladder

type algorithm = Propagation | Non_propagation | Relay_propagation

type route =
  | Cs4_route of Cs4.t
  | General_route of { cycles : int }

type plan = {
  algorithm : algorithm;
  intervals : Interval.t array;
  route : route;
}

let pp_route ppf = function
  | Cs4_route cls ->
    let sp, ladders =
      List.fold_left
        (fun (sp, la) (_, _, b) ->
          match b with
          | Cs4.Sp_block _ -> (sp + 1, la)
          | Cs4.Ladder_block _ -> (sp, la + 1))
        (0, 0) cls.Cs4.blocks
    in
    Format.fprintf ppf "CS4 (%d SP block%s, %d ladder%s)" sp
      (if sp = 1 then "" else "s")
      ladders
      (if ladders = 1 then "" else "s")
  | General_route { cycles } ->
    Format.fprintf ppf "general DAG fallback (%d cycles enumerated)" cycles

let run_cs4 algorithm g (cls : Cs4.t) =
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  List.iter
    (fun (_, _, b) ->
      match (b, algorithm) with
      | Cs4.Sp_block tree, Propagation -> Sp_prop.update ivals tree
      | Cs4.Sp_block tree, Non_propagation -> Sp_nonprop.update ivals tree
      | Cs4.Sp_block tree, Relay_propagation ->
        Sp_nonprop.update_relay ivals tree
      | Cs4.Ladder_block lad, Propagation -> Ladder_prop.update ivals lad
      | Cs4.Ladder_block lad, Non_propagation -> Ladder_nonprop.update ivals lad
      | Cs4.Ladder_block lad, Relay_propagation ->
        Ladder_nonprop.update_relay ivals lad)
    cls.Cs4.blocks;
  ivals

let run_general algorithm ?max_cycles g =
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  let cycles = Cycles.enumerate ?max_cycles g in
  let fold =
    match algorithm with
    | Propagation -> General.update_propagation
    | Non_propagation -> General.update_non_propagation
    | Relay_propagation -> General.update_relay_propagation
  in
  List.iter (fold ivals) cycles;
  { algorithm; intervals = ivals; route = General_route { cycles = List.length cycles } }

let plan ?(allow_general = true) ?max_cycles algorithm g =
  match Cs4.classify g with
  | Ok cls ->
    Ok { algorithm; intervals = run_cs4 algorithm g cls; route = Cs4_route cls }
  | Error failure ->
    if allow_general && Topo.is_dag g then
      try Ok (run_general algorithm ?max_cycles g)
      with Failure msg -> Error msg
    else
      Error (Format.asprintf "%a" Cs4.pp_failure failure)

let send_thresholds = Array.map Interval.threshold

let sdf_thresholds g =
  Array.make (Graph.num_edges g) (Some 1)

let propagation_thresholds g intervals =
  let on_cycle = Array.make (Graph.num_edges g) false in
  List.iter
    (fun comp ->
      match comp with
      | [] | [ _ ] -> ()
      | edges ->
        List.iter (fun (e : Graph.edge) -> on_cycle.(e.id) <- true) edges)
    (Articulation.biconnected_components g);
  Array.mapi
    (fun i v ->
      match Interval.threshold v with
      | Some k -> Some k
      | None -> if on_cycle.(i) then Some 1 else None)
    intervals
