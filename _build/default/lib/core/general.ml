open Fstream_graph

let fold_runs cycle f =
  let runs = Cycles.runs cycle in
  let opposite = Cycles.opposite_run cycle in
  Array.iteri (fun t run -> f run runs.(opposite.(t))) runs

let update_propagation ivals cycle =
  fold_runs cycle (fun run opp ->
      match run.Cycles.run_edges with
      | [] -> assert false
      | first :: _ ->
        let v = Interval.of_int (Cycles.run_caps opp) in
        ivals.(first.id) <- Interval.min ivals.(first.id) v)

let update_all_run_edges ~ratio ivals cycle =
  fold_runs cycle (fun run opp ->
      let v = ratio (Cycles.run_caps opp) (Cycles.run_hops run) in
      List.iter
        (fun (e : Graph.edge) -> ivals.(e.id) <- Interval.min ivals.(e.id) v)
        run.Cycles.run_edges)

let update_non_propagation ivals cycle =
  update_all_run_edges ~ratio:Interval.ratio ivals cycle

let update_relay_propagation ivals cycle =
  update_all_run_edges ~ratio:(fun l _ -> Interval.of_int l) ivals cycle

let compute update ?max_cycles g =
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  List.iter (update ivals) (Cycles.enumerate ?max_cycles g);
  ivals

let propagation ?max_cycles g = compute update_propagation ?max_cycles g
let non_propagation ?max_cycles g = compute update_non_propagation ?max_cycles g

let relay_propagation ?max_cycles g =
  compute update_relay_propagation ?max_cycles g
