(** Dummy intervals on general DAGs by explicit cycle enumeration.

    The direct implementation of the §II.B formulas: enumerate every
    undirected simple cycle, decompose it into directed runs, and take
    the minimum constraint per edge. Worst-case exponential in [|G|] —
    this is the baseline whose cost motivates the whole paper, retained
    both as ground truth for cross-validating the polynomial algorithms
    and as the measured "before" in the scaling experiments (C4).

    Per-cycle semantics (matching the Fig. 3 worked example): for an
    edge [e] on a run [R] with source [u], [L(C,e)] is the total buffer
    capacity of the run leaving [u] on the other side of the cycle, and
    [h(C,e)] is the hop count of [R]. On CS4-class graphs every cycle
    has exactly two runs, and both readings of the paper's definition
    coincide. *)

open Fstream_graph

val propagation : ?max_cycles:int -> Graph.t -> Interval.t array
(** Propagation-algorithm intervals indexed by edge id: only the first
    edge of each run (an edge leaving a cycle source) is constrained,
    by the opposing run's buffer length. Every other edge is [Inf]. *)

val non_propagation : ?max_cycles:int -> Graph.t -> Interval.t array
(** Non-Propagation intervals: every edge of every run [R] is
    constrained by [L(C,e) / h(C,e)] — opposing run's buffer length over
    [R]'s hop count. *)

val update_propagation : Interval.t array -> Cycles.t -> unit
(** Fold one cycle's Propagation constraints into an interval table
    (exposed for incremental use by tests). *)

val update_non_propagation : Interval.t array -> Cycles.t -> unit

val relay_propagation : ?max_cycles:int -> Graph.t -> Interval.t array
(** Relay-Propagation intervals: like {!non_propagation} but without
    the hop-count division — every edge of every run is constrained by
    the opposing run's full buffer length. This is not one of the
    paper's two algorithms: it is the sound runtime variant this
    reproduction uses for the Propagation wrapper, because the paper's
    rule (finite intervals only at cycle sources) cannot cover a relay
    node that filters data on its only output; see DESIGN.md,
    "Deviations". *)

val update_relay_propagation : Interval.t array -> Cycles.t -> unit
