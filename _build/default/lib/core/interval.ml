type t = Fin of { num : int; den : int } | Inf

let inf = Inf

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let ratio num den =
  if num <= 0 || den <= 0 then invalid_arg "Interval.ratio: not positive";
  let g = gcd num den in
  Fin { num = num / g; den = den / g }

let of_int n =
  if n <= 0 then invalid_arg "Interval.of_int: not positive";
  Fin { num = n; den = 1 }

let compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, Fin _ -> 1
  | Fin _, Inf -> -1
  | Fin a, Fin b -> Stdlib.compare (a.num * b.den) (b.num * a.den)

let min a b = if compare a b <= 0 then a else b
let equal a b = compare a b = 0
let is_finite = function Fin _ -> true | Inf -> false

let add_int t k =
  match t with
  | Inf -> Inf
  | Fin { num; den } -> ratio (num + (k * den)) den

let ceil_opt = function
  | Inf -> None
  | Fin { num; den } -> Some ((num + den - 1) / den)

let floor_opt = function
  | Inf -> None
  | Fin { num; den } -> Some (num / den)

let threshold t = Option.map (Stdlib.max 1) (floor_opt t)

let to_float = function
  | Inf -> infinity
  | Fin { num; den } -> float_of_int num /. float_of_int den

let pp ppf = function
  | Inf -> Format.pp_print_string ppf "inf"
  | Fin { num; den = 1 } -> Format.pp_print_int ppf num
  | Fin { num; den } -> Format.fprintf ppf "%d/%d" num den
