(** Dummy-message intervals.

    A dummy interval [e] for a channel is the maximum number of
    consecutive input sequence numbers its producer may filter on that
    channel before it must emit a dummy message (§II.B). Propagation
    intervals are integral buffer-length sums; Non-Propagation intervals
    are ratios L/h of a buffer length to a hop count, so the domain is
    the positive rationals extended with infinity (no constraint — the
    edge lies on no relevant cycle).

    The algorithms only ever combine intervals with [min]; values are
    kept as exact normalized rationals so that equality against the
    exponential baseline is exact, and are converted to integer send
    thresholds only at the runtime boundary. *)

type t = private
  | Fin of { num : int; den : int }  (** num/den > 0, gcd-normalized *)
  | Inf

val inf : t

val of_int : int -> t
(** @raise Invalid_argument if the argument is not positive. *)

val ratio : int -> int -> t
(** [ratio num den].
    @raise Invalid_argument unless both are positive. *)

val min : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_finite : t -> bool

val add_int : t -> int -> t
(** [add_int t k] adds an integer length to a finite interval ([Inf]
    absorbs). Used by path recurrences. *)

val ceil_opt : t -> int option
(** Smallest integer >= the interval; [None] for [Inf]. Fig. 3 reports
    Non-Propagation intervals this way ("roundup"). *)

val floor_opt : t -> int option
(** Largest integer <= the interval; [None] for [Inf]. *)

val threshold : t -> int option
(** The gap threshold the runtime wrapper uses: the floor clamped to be
    at least 1 — the conservative (never later than the exact ratio)
    reading of the interval. [None] for [Inf] (never send dummies). *)

val to_float : t -> float
(** [infinity] for [Inf]. *)

val pp : Format.formatter -> t -> unit
