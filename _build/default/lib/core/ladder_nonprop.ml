open Fstream_spdag
open Fstream_ladder

let side_len side = List.fold_left (fun a (t : Sp_tree.t) -> a + t.l) 0 side
let side_hops side = List.fold_left (fun a (t : Sp_tree.t) -> a + t.h) 0 side

let constrain ~ratio ivals side ~other_len ~hops =
  List.iter
    (fun (h : Sp_tree.t) ->
      Sp_nonprop.iter_edges_through_hops h (fun e he ->
          let denom = hops - h.h + he in
          ivals.(e.id) <- Interval.min ivals.(e.id) (ratio other_len denom)))
    side

let apply ~ratio ivals side_a side_b =
  if side_a <> [] && side_b <> [] then begin
    let la = side_len side_a and lb = side_len side_b in
    let ha = side_hops side_a and hb = side_hops side_b in
    constrain ~ratio ivals side_a ~other_len:lb ~hops:ha;
    constrain ~ratio ivals side_b ~other_len:la ~hops:hb
  end

let update_gen ~ratio ~sp_update ivals (lad : Ladder.t) =
  let apply = apply ~ratio in
  let v = Ladder_view.make lad in
  let k = v.k in
  (* Internal cycles of every constituent. *)
  for i = 0 to k do
    Option.iter (sp_update ivals) v.segl.(i);
    Option.iter (sp_update ivals) v.segr.(i);
    if i >= 1 then sp_update ivals v.ktree.(i)
  done;
  (* Rail segment runs [lo..hi] as constituent lists (trivial segments
     contribute nothing). *)
  let seg_run seg lo hi =
    let acc = ref [] in
    for s = hi downto lo do
      match seg.(s) with None -> () | Some t -> acc := t :: !acc
    done;
    !acc
  in
  let left = seg_run v.segl and right = seg_run v.segr in
  (* Source X: cycles pair the two rails, closing at Y or through the
     sink rung K_j. *)
  for j = 1 to k do
    if v.l2r.(j) then apply ivals (left 0 (j - 1) @ [ v.ktree.(j) ]) (right 0 (j - 1))
    else apply ivals (left 0 (j - 1)) (right 0 (j - 1) @ [ v.ktree.(j) ])
  done;
  apply ivals (left 0 k) (right 0 k);
  (* Internal sources: the tail of each cross-link K_i. One side goes
     through K_i then along the far rail; the other goes down the near
     rail, crossing K_j when the sink is on the far side. *)
  for i = 1 to k do
    let near, far = if v.l2r.(i) then (left, right) else (right, left) in
    for j = i + 1 to k do
      if v.l2r.(j) = v.l2r.(i) then
        (* Sink is the head of K_j on the far side. *)
        apply ivals
          (near i (j - 1) @ [ v.ktree.(j) ])
          (v.ktree.(i) :: far i (j - 1))
      else
        (* K_j points back into the near side: its head is the sink. *)
        apply ivals
          (near i (j - 1))
          ((v.ktree.(i) :: far i (j - 1)) @ [ v.ktree.(j) ])
    done;
    apply ivals (near i k) (v.ktree.(i) :: far i k)
  done

let update ivals lad =
  update_gen ~ratio:Interval.ratio ~sp_update:Sp_nonprop.update ivals lad

let update_relay ivals lad =
  update_gen
    ~ratio:(fun l _ -> Interval.of_int l)
    ~sp_update:Sp_nonprop.update_relay ivals lad

let intervals g lad =
  let ivals = Array.make (Fstream_graph.Graph.num_edges g) Interval.inf in
  update ivals lad;
  ivals
