(** O(|G|^3) Non-Propagation intervals on SP-ladders (§VI.B).

    Constituent-internal cycles are folded by the SP-DAG algorithm per
    constituent. External cycles are enumerated as (source, sink)
    families per Lemma VI.3: the source is the ladder source X or a
    cross-link tail, the sink is Y or a cross-link head below it, and
    the cycle's two sides are fixed constituent sequences (rail
    segments, bracketed by the source's and the sink's cross-links as
    appropriate). For each family, every edge [e] of a constituent [H]
    on one side is constrained by the other side's total buffer length
    over the side's longest hop count through [e],
    [h_side - h(H) + h(H, e)].

    Cross-links sharing a tail vertex need no special case here: their
    pairing cycles are the families whose rail-segment sequence is
    entirely trivial. Families whose own side would be empty denote
    directed cycles and cannot arise in a DAG; they are skipped
    defensively. *)

open Fstream_graph
open Fstream_ladder

val update : Interval.t array -> Ladder.t -> unit

val update_relay : Interval.t array -> Ladder.t -> unit
(** Relay-Propagation variant: the same family sweep without the
    hop-count division (see {!General.relay_propagation}). *)

val intervals : Graph.t -> Ladder.t -> Interval.t array
