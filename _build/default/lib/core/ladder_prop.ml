open Fstream_ladder

(* Per-rung option costs along each rail, measured from X. For a cycle
   side that travels the left rail and ends at rung j's attachment, the
   cost from u_i is optl.(j) - pl.(i): crossing K_j when it leaves the
   rail (l2r), stopping at u_j when K_j arrives (r2l); symmetrically on
   the right. Sinking at Y costs the full remaining rail. The interval
   algorithms below take suffix minima of these options.

   Shared tail vertices need two corrections to the paper's recurrences
   (found by cross-validating against the exponential baseline,
   experiment V1):
   - the rail-side constraint for edges leaving a vertex [w] must not
     use a sink whose attachment is [w] itself — the rail side of such
     a cycle is empty and cannot contain the constrained edge — so the
     suffix minimum starts after [w]'s group of rungs; and
   - the first edges of a cross-link [K_b] are additionally constrained
     by cycles pairing it with an earlier cross-link leaving the same
     vertex ([L(K_a)] plus the far rail between their heads). *)
let update ivals (lad : Ladder.t) =
  let v = Ladder_view.make lad in
  let k = v.k in
  let optl = Array.make (k + 2) max_int and optr = Array.make (k + 2) max_int in
  for j = 1 to k do
    optl.(j) <- (v.pl.(j) + if v.l2r.(j) then v.kl.(j) else 0);
    optr.(j) <- (v.pd.(j) + if v.l2r.(j) then 0 else v.kl.(j))
  done;
  let suffix opt =
    let s = Array.make (k + 2) max_int in
    for j = k downto 1 do
      s.(j) <- min opt.(j) s.(j + 1)
    done;
    s
  in
  let sufl = suffix optl and sufr = suffix optr in
  (* Shortest opposing-side length from rung [i]'s tail, considering
     only sink options at rung [x] or later (or Y). *)
  let ls_from x i = min v.pl.(k + 1) sufl.(x) - v.pl.(i) in
  let rd_from x i = min v.pd.(k + 1) sufr.(x) - v.pd.(i) in
  (* Last rung of each tail-vertex group. *)
  let group_end seg =
    let g = Array.make (k + 1) k in
    for i = k - 1 downto 1 do
      g.(i) <- (if seg.(i) = None then g.(i + 1) else i)
    done;
    g
  in
  let gl = group_end v.segl and gr = group_end v.segr in
  (* Pair term: earlier cross-link leaving the same vertex, plus the far
     rail between the two heads. *)
  let pair = Array.make (k + 1) Interval.inf in
  let best_l = ref max_int and best_r = ref max_int in
  for i = 1 to k do
    if i > 1 && v.segl.(i - 1) <> None then best_l := max_int;
    if i > 1 && v.segr.(i - 1) <> None then best_r := max_int;
    if v.l2r.(i) then begin
      if !best_l < max_int then
        pair.(i) <- Interval.of_int (!best_l + v.pd.(i));
      best_l := min !best_l (v.kl.(i) - v.pd.(i))
    end
    else begin
      if !best_r < max_int then
        pair.(i) <- Interval.of_int (!best_r + v.pl.(i));
      best_r := min !best_r (v.kl.(i) - v.pl.(i))
    end
  done;
  (* External constraint per constituent. *)
  let init_k = Array.make (k + 1) Interval.inf in
  let init_segl = Array.make (k + 1) Interval.inf in
  let init_segr = Array.make (k + 1) Interval.inf in
  init_segl.(0) <- Interval.of_int (rd_from 1 0);
  init_segr.(0) <- Interval.of_int (ls_from 1 0);
  (* First non-trivial segment at or after index i on each side: the
     rail segment whose first edges leave rung i's tail vertex. *)
  let next_seg seg =
    let nxt = Array.make (k + 1) k in
    for i = k - 1 downto 1 do
      nxt.(i) <- (if seg.(i) = None then nxt.(i + 1) else i)
    done;
    nxt
  in
  let nxt_l = next_seg v.segl and nxt_r = next_seg v.segr in
  for i = 1 to k do
    if v.l2r.(i) then begin
      (* K_i's first edges: opposing side runs down the left rail from
         u_i (any sink option below, including later rungs at the same
         vertex), or is an earlier cross-link at the same vertex. *)
      init_k.(i) <-
        Interval.min (Interval.of_int (ls_from (i + 1) i)) pair.(i);
      (* Rail edges leaving u_i: opposing side is K_i then the right
         rail; sinks attached back at u_i's own group are unreachable
         for the rail side, hence the suffix starts after the group. *)
      let j = nxt_l.(i) in
      init_segl.(j) <-
        Interval.min init_segl.(j)
          (Interval.of_int (v.kl.(i) + rd_from (gl.(i) + 1) i))
    end
    else begin
      init_k.(i) <-
        Interval.min (Interval.of_int (rd_from (i + 1) i)) pair.(i);
      let j = nxt_r.(i) in
      init_segr.(j) <-
        Interval.min init_segr.(j)
          (Interval.of_int (v.kl.(i) + ls_from (gr.(i) + 1) i))
    end
  done;
  (* SETIVALS per constituent: handles its internal cycles and injects
     the external bound on edges leaving its source. *)
  for i = 0 to k do
    Option.iter (Sp_prop.update_with ivals ~init:init_segl.(i)) v.segl.(i);
    Option.iter (Sp_prop.update_with ivals ~init:init_segr.(i)) v.segr.(i);
    if i >= 1 then Sp_prop.update_with ivals ~init:init_k.(i) v.ktree.(i)
  done

let intervals g lad =
  let ivals = Array.make (Fstream_graph.Graph.num_edges g) Interval.inf in
  update ivals lad;
  ivals
