(** O(|G|) Propagation intervals on SP-ladders (§VI.A).

    Cycles internal to a constituent SP-DAG are handled by SETIVALS on
    that constituent; external cycles all have their source at the
    ladder source X or at a cross-link tail (Fact VI.1), so they only
    constrain edges leaving those vertices. The recurrences [Ls]/[Rd]
    compute, per rung, the shortest buffer-length path from the rung's
    tail to a potential sink (Lemma VI.3) down each side, and the
    resulting constraint is injected into the constituent as the
    external bound [V] of SETIVALS.

    One constraint family is not covered by the paper's recurrences as
    written: when two cross-links [K_a], [K_b] ([a < b]) leave the same
    rail vertex, the cycle pairing them directly constrains the first
    edges of [K_b] by [L(K_a)] plus the opposite rail between their far
    endpoints. The implementation adds this "shared-tail" term (a
    prefix-sum running minimum, still O(|G|)); experiment V1
    cross-validates the result against the exponential baseline, which
    is how the omission was found. See DESIGN.md. *)

open Fstream_graph
open Fstream_ladder

val update : Interval.t array -> Ladder.t -> unit
val intervals : Graph.t -> Ladder.t -> Interval.t array
