open Fstream_spdag
open Fstream_ladder

type t = {
  k : int;
  l2r : bool array;
  ktree : Sp_tree.t array;
  kl : int array;
  segl : Sp_tree.t option array;
  segr : Sp_tree.t option array;
  ls : int array;
  ld : int array;
  pl : int array;
  pd : int array;
}

(* Rail expansion: distinct rail vertices each carry at least one rung,
   so the distinct-vertex index advances by exactly one whenever
   consecutive rungs have different endpoints; the segment S_i is
   trivial unless rung i is the last one at its vertex. *)
let make (lad : Ladder.t) =
  let k = Array.length lad.rungs in
  let rung i = lad.rungs.(i - 1) in
  let l2r = Array.make (k + 1) false in
  let ktree = Array.make (k + 1) (rung 1).cross in
  for i = 1 to k do
    l2r.(i) <- (rung i).left_to_right;
    ktree.(i) <- (rung i).cross
  done;
  let kl = Array.map (fun (t : Sp_tree.t) -> t.l) ktree in
  kl.(0) <- 0;
  let expand ends segments =
    let seg = Array.make (k + 1) None in
    seg.(0) <- Some segments.(0);
    let j = ref 0 in
    (* [j] = index (into the distinct-vertex arrays) of rung i's
       endpoint; the segment leaving distinct vertex [j] is
       [segments.(j + 1)]. *)
    for i = 1 to k do
      if i > 1 && ends (i - 1) <> ends i then incr j;
      if i = k || ends i <> ends (i + 1) then seg.(i) <- Some segments.(!j + 1)
    done;
    seg
  in
  let segl = expand (fun i -> (rung i).left_end) lad.left_segments in
  let segr = expand (fun i -> (rung i).right_end) lad.right_segments in
  let lengths f seg =
    Array.map (function Some (t : Sp_tree.t) -> f t | None -> 0) seg
  in
  let ls = lengths (fun t -> t.l) segl and ld = lengths (fun t -> t.l) segr in
  let prefix arr =
    let p = Array.make (k + 2) 0 in
    for i = 1 to k + 1 do
      p.(i) <- p.(i - 1) + arr.(i - 1)
    done;
    p
  in
  {
    k;
    l2r;
    ktree;
    kl;
    segl;
    segr;
    ls;
    ld;
    pl = prefix ls;
    pd = prefix ld;
  }
