(** Paper-indexed view of a decomposed SP-ladder.

    {!Fstream_ladder.Ladder.t} lists each rail vertex once; the §VI
    algorithms index constituents by cross-link number [i = 1..k] with
    possibly repeated endpoints ([u_i = u_(i+1)] when cross-links share
    a vertex) and trivial rail segments in between. This view expands a
    ladder into that indexing and precomputes every per-constituent
    quantity the interval algorithms read: [L] (shortest buffer length)
    and [h] (longest hop count) per segment and cross-link, and prefix
    sums of both along each rail. *)

open Fstream_spdag
open Fstream_ladder

type t = {
  k : int;  (** number of cross-links *)
  l2r : bool array;  (** index 1..k: K_i directed left rail -> right *)
  ktree : Sp_tree.t array;  (** index 1..k *)
  kl : int array;  (** L(K_i), index 1..k *)
  segl : Sp_tree.t option array;
      (** index 0..k: paper segment S_i (u_i -> u_(i+1)); [None] when
          trivial (shared endpoint) *)
  segr : Sp_tree.t option array;  (** D_i likewise *)
  ls : int array;  (** L(S_i); 0 for trivial segments *)
  ld : int array;
  pl : int array;
      (** index 0..k+1: buffer distance X -> u_i along the left rail
          ([pl.(k+1)] reaches Y) *)
  pd : int array;
}

val make : Ladder.t -> t
