(** Buffer sizing: the dual of interval computation.

    The interval formulas are homogeneous of degree one in the buffer
    capacities: every interval is a min of (ratios of) sums of
    capacities, so scaling all buffers by [c] scales every finite
    interval by exactly [c] (a property the test suite checks against
    the algorithms directly). That gives a closed form for the natural
    design question the paper's future work gestures at — "how big must
    my buffers be so that dummy traffic stays below a target rate?":
    the smallest uniform scale factor is the target interval divided by
    the tightest computed interval, rounded up. *)

open Fstream_graph

val min_uniform_scale :
  Graph.t -> Compiler.algorithm -> target:int -> (int, string) result
(** [min_uniform_scale g algo ~target] is the least integer [c >= 1]
    such that after multiplying every buffer capacity by [c], every
    finite dummy interval of [algo] is at least [target] — i.e. no
    channel ever needs a dummy more often than every [target] sequence
    numbers. Errors when the plan fails or the graph has no finite
    intervals (no cycles: any sizing works, reported as [Ok 1]). *)

val scale_caps : Graph.t -> int -> Graph.t
(** Multiply every buffer capacity by a positive factor. *)
