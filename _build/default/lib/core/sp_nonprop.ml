open Fstream_spdag

let iter_edges_through_hops tree f =
  let rec go (t : Sp_tree.t) extra =
    match t.shape with
    | Leaf e -> f e (extra + 1)
    | Series (a, b) ->
      go a (extra + b.h);
      go b (extra + a.h)
    | Parallel (a, b) ->
      go a extra;
      go b extra
  in
  go tree 0

let update_gen ~ratio ivals tree =
  let constrain l sibling =
    iter_edges_through_hops sibling (fun e he ->
        ivals.(e.id) <- Interval.min ivals.(e.id) (ratio l he))
  in
  let rec go (t : Sp_tree.t) =
    match t.shape with
    | Leaf _ -> ()
    | Series (a, b) ->
      go a;
      go b
    | Parallel (a, b) ->
      go a;
      go b;
      constrain b.l a;
      constrain a.l b
  in
  go tree

let update ivals tree = update_gen ~ratio:Interval.ratio ivals tree

let update_relay ivals tree =
  update_gen ~ratio:(fun l _ -> Interval.of_int l) ivals tree

let intervals g tree =
  let ivals = Array.make (Fstream_graph.Graph.num_edges g) Interval.inf in
  update ivals tree;
  ivals
