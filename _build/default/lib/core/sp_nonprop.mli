(** O(|G|^2) Non-Propagation intervals on SP-DAGs (§IV.B).

    Post-order over the decomposition tree. Serial composition creates
    no cycles; a parallel composition [Pc(H1, H2)] creates, for each
    edge [e] of [H1], a tightest new cycle pairing a longest (hop-count)
    path through [e] in [H1] with a shortest (buffer) path through
    [H2], contributing [L(H2) / h(H1, e)]. The through-hop values
    [h(H, e)] are recomputed per parallel node by a subtree walk, which
    is the paper's O(|G|^2) budget. *)

open Fstream_graph
open Fstream_spdag

val iter_edges_through_hops : Sp_tree.t -> (Graph.edge -> int -> unit) -> unit
(** Visit every leaf edge of the tree together with [h(H, e)] — the
    longest hop-count of a source-to-sink path of the whole tree passing
    through that edge. Linear in the tree; also used by the SP-ladder
    Non-Propagation algorithm. *)

val update : Interval.t array -> Sp_tree.t -> unit
(** Fold the Non-Propagation constraints of every cycle internal to the
    tree into the table. *)

val update_relay : Interval.t array -> Sp_tree.t -> unit
(** Relay-Propagation variant: the same sweep without the hop-count
    division (see {!General.relay_propagation}). *)

val update_gen :
  ratio:(int -> int -> Interval.t) ->
  Interval.t array ->
  Sp_tree.t ->
  unit
(** Shared implementation: [ratio len hops] combines the opposing
    side's buffer length with the own side's through-hop count. *)

val intervals : Graph.t -> Sp_tree.t -> Interval.t array
