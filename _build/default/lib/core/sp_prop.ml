open Fstream_spdag

let update_with ivals ~init tree =
  let rec go (t : Sp_tree.t) v =
    match t.shape with
    | Leaf e -> ivals.(e.id) <- Interval.min ivals.(e.id) v
    | Series (h1, h2) ->
      go h1 v;
      go h2 Interval.inf
    | Parallel (h1, h2) ->
      go h1 (Interval.min v (Interval.of_int h2.l));
      go h2 (Interval.min v (Interval.of_int h1.l))
  in
  go tree init

let update ivals tree = update_with ivals ~init:Interval.inf tree

let intervals g tree =
  let ivals = Array.make (Fstream_graph.Graph.num_edges g) Interval.inf in
  update ivals tree;
  ivals
