(** SETIVALS: O(|G|) Propagation intervals on SP-DAGs (Algorithm 1,
    §IV.A).

    One top-down pass over the decomposition tree. The parameter [V]
    carried into a component [H] is the tightest constraint imposed on
    edges leaving [H]'s source by cycles external to [H] (Claim IV.1);
    parallel composition tightens it with the sibling's shortest
    source-to-sink buffer length [L], serial composition forwards it to
    the first component and resets it to infinity for the second. With
    single-edge leaves the multi-edge base case reduces to assigning
    [V] (DESIGN.md). *)

open Fstream_spdag

val update : Interval.t array -> Sp_tree.t -> unit
(** Fold the tree's constraints into a table indexed by original edge
    id, starting from the external constraint [Inf]. Time linear in the
    tree. *)

val update_with : Interval.t array -> init:Interval.t -> Sp_tree.t -> unit
(** Like {!update} but with an explicit external constraint on edges
    out of the tree's source — used by the SP-ladder algorithm, where a
    constituent's source may be an internal source of the ladder. *)

val intervals : Fstream_graph.Graph.t -> Sp_tree.t -> Interval.t array
(** Fresh table for a whole graph with the given decomposition. *)
