lib/graph/articulation.ml: Array Fun Graph List Stack Topo
