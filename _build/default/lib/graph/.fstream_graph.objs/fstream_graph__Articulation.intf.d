lib/graph/articulation.mli: Graph
