lib/graph/cycles.ml: Array Graph Hashtbl List
