lib/graph/dominators.ml: Array Graph List Topo
