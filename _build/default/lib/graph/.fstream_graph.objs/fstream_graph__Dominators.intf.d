lib/graph/dominators.mli: Graph
