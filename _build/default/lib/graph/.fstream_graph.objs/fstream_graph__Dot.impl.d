lib/graph/dot.ml: Buffer Graph List Option Printf String
