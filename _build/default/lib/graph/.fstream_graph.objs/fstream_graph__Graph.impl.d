lib/graph/graph.ml: Array Format Fun List Printf
