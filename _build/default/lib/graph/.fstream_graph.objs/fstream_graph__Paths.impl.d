lib/graph/paths.ml: Array Graph List Topo
