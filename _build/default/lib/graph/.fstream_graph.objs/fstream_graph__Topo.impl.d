lib/graph/topo.ml: Array Fun Graph Int List Option Set
