lib/graph/topo.mli: Graph
