lib/graph/undirected_sp.ml: Articulation Graph Hashtbl Int List Option Queue Set
