lib/graph/undirected_sp.mli: Graph
