type oriented = { edge : Graph.edge; fwd : bool }

type t = oriented list

type run = {
  run_source : Graph.node;
  run_sink : Graph.node;
  run_edges : Graph.edge list;
}

(* Enumeration: for each start vertex s, DFS over the undirected view
   visiting only vertices > s (so each cycle is found from its minimal
   vertex), recording a cycle when an edge returns to s. Intermediate
   vertices are marked visited, which keeps paths simple; the only edge
   that could repeat is an immediate backtrack, excluded by comparing
   edge ids. Each cycle is discovered once per direction; a canonical
   sorted-edge-id key deduplicates. *)
let enumerate ?(max_cycles = 10_000_000) g =
  let n = Graph.num_nodes g in
  let visited = Array.make n false in
  let seen = Hashtbl.create 997 in
  let results = ref [] in
  let found = ref 0 in
  let record path_rev =
    let cycle = List.rev path_rev in
    let key = List.sort compare (List.map (fun o -> o.edge.Graph.id) cycle) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr found;
      if !found > max_cycles then
        failwith "Cycles.enumerate: max_cycles exceeded";
      results := cycle :: !results
    end
  in
  for s = 0 to n - 1 do
    let rec extend v last_edge path_rev =
      List.iter
        (fun (e : Graph.edge) ->
          if e.id <> last_edge then begin
            let w = Graph.other_endpoint e v in
            let o = { edge = e; fwd = e.src = v } in
            if w = s then begin
              if path_rev <> [] then record (o :: path_rev)
            end
            else if w > s && not visited.(w) then begin
              visited.(w) <- true;
              extend w e.id (o :: path_rev);
              visited.(w) <- false
            end
          end)
        (Graph.incident_edges g v)
    in
    extend s (-1) []
  done;
  List.rev !results

let count ?max_cycles g = List.length (enumerate ?max_cycles g)

let vertices c =
  match c with
  | [] -> invalid_arg "Cycles.vertices: empty cycle"
  | first :: _ ->
    let v0 = if first.fwd then first.edge.src else first.edge.dst in
    let rec walk v = function
      | [] -> []
      | o :: rest -> v :: walk (Graph.other_endpoint o.edge v) rest
    in
    walk v0 c

(* Maximal directed runs: contiguous cyclic blocks of equal [fwd]. A
   forward block traversed over positions i..j is directed v_i -> v_j+1;
   a backward block is directed v_j+1 -> v_i. A DAG admits no fully
   directed cycle, so there are always >= 2 blocks. *)
let blocks c =
  let arr = Array.of_list c in
  let m = Array.length arr in
  let flag i = arr.(i mod m).fwd in
  let start =
    let rec find i =
      if i >= m then invalid_arg "Cycles.runs: directed cycle"
      else if flag i <> flag (i + m - 1) then i
      else find (i + 1)
    in
    find 0
  in
  let spans = ref [] in
  let i = ref start in
  let consumed = ref 0 in
  while !consumed < m do
    let j = ref !i in
    while !consumed < m && flag !j = flag !i do
      incr j;
      incr consumed
    done;
    spans := (!i mod m, !j - !i, flag !i) :: !spans;
    i := !j
  done;
  (arr, Array.of_list (List.rev !spans))

let runs c =
  let arr, spans = blocks c in
  let m = Array.length arr in
  let verts = Array.of_list (vertices c) in
  Array.map
    (fun (i, len, fwd) ->
      let edges = List.init len (fun k -> arr.((i + k) mod m).edge) in
      let v_start = verts.(i) and v_end = verts.((i + len) mod m) in
      if fwd then { run_source = v_start; run_sink = v_end; run_edges = edges }
      else
        { run_source = v_end; run_sink = v_start; run_edges = List.rev edges })
    spans

let opposite_run c =
  let _, spans = blocks c in
  let k = Array.length spans in
  Array.mapi
    (fun t (_, _, fwd) ->
      (* A forward run's directed source is the boundary it shares with
         the previous block; a backward run's is shared with the next. *)
      if fwd then (t + k - 1) mod k else (t + 1) mod k)
    spans

let cycle_sources c =
  List.sort_uniq compare
    (Array.to_list (Array.map (fun r -> r.run_source) (runs c)))

let cycle_sinks c =
  List.sort_uniq compare
    (Array.to_list (Array.map (fun r -> r.run_sink) (runs c)))

let is_cs4_cycle c = Array.length (runs c) = 2

let run_caps r =
  List.fold_left (fun acc (e : Graph.edge) -> acc + e.cap) 0 r.run_edges

let run_hops r = List.length r.run_edges
