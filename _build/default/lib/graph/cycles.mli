(** Undirected simple cycles of a DAG and their directed-run structure.

    The deadlock theory of §II.B is phrased over the undirected simple
    cycles of the application DAG: every potential deadlock corresponds
    to such a cycle, decomposed into maximal directed paths ("runs")
    joined at cycle sources and sinks. This module enumerates all simple
    cycles of the undirected multigraph (worst-case exponential — this
    is exactly the cost the paper's SP/CS4 algorithms avoid) and
    computes the run decomposition used by the general-DAG baseline and
    by the brute-force CS4 property check. *)

type oriented = {
  edge : Graph.edge;
  fwd : bool;  (** [true] when traversal follows the edge's direction *)
}

type t = oriented list
(** A simple cycle as a traversal: consecutive oriented edges share an
    endpoint, and the last returns to the first vertex. Length >= 2
    (a pair of parallel edges is the shortest cycle). *)

type run = {
  run_source : Graph.node;
  run_sink : Graph.node;
  run_edges : Graph.edge list;  (** in directed order, source to sink *)
}
(** A maximal directed path along a cycle. *)

val enumerate : ?max_cycles:int -> Graph.t -> t list
(** All undirected simple cycles, each reported once (arbitrary start
    vertex and direction). [max_cycles] bounds the enumeration as a
    safety valve; exceeding it raises [Failure]. Default 10_000_000. *)

val count : ?max_cycles:int -> Graph.t -> int

val vertices : t -> Graph.node list
(** Vertex sequence [v0; v1; ...] with [v_i] the tail of the i-th
    oriented edge in traversal order (no repeated final vertex). *)

val runs : t -> run array
(** The maximal directed runs in cyclic traversal order. Always an even
    count >= 2 for cycles of a DAG. *)

val opposite_run : t -> int array
(** [opposite_run c] pairs each run of [runs c] with the index of the
    run on the other side of its source: the two runs leave that cycle
    source in opposite traversal directions. For a two-run cycle this is
    [|1; 0|]. *)

val cycle_sources : t -> Graph.node list
val cycle_sinks : t -> Graph.node list

val is_cs4_cycle : t -> bool
(** Exactly one source and one sink (equivalently, exactly two runs). *)

val run_caps : run -> int
(** Total buffer capacity along a run (the paper's [L] on a cycle). *)

val run_hops : run -> int
(** Number of edges of a run (the paper's [h] on a cycle). *)
