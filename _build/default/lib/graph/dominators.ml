(* Cooper-Harvey-Kennedy iterative dominators: on a DAG a single pass in
   reverse post-order (here: topological order restricted to nodes
   reachable from the root) converges, because every predecessor of a
   node precedes it in the order. *)

let idoms g root =
  let n = Graph.num_nodes g in
  let reach = Topo.reachable g root in
  let order =
    Array.to_list (Topo.order_exn g) |> List.filter (fun v -> reach.(v))
  in
  let pos = Array.make n (-1) in
  List.iteri (fun i v -> pos.(v) <- i) order;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if pos.(a) > pos.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> root then begin
          let preds =
            List.filter_map
              (fun (e : Graph.edge) ->
                if reach.(e.src) && idom.(e.src) <> -1 then Some e.src
                else None)
              (Graph.in_edges g v)
          in
          match preds with
          | [] -> ()
          | p :: rest ->
            let d = List.fold_left intersect p rest in
            if idom.(v) <> d then begin
              idom.(v) <- d;
              changed := true
            end
        end)
      order
  done;
  idom

let ipostdoms g sink = idoms (Graph.reverse g) sink

let dominates g root a b =
  let idom = idoms g root in
  if idom.(b) = -1 then invalid_arg "Dominators.dominates: b unreachable";
  let rec climb v = v = a || (v <> root && climb idom.(v)) in
  climb b
