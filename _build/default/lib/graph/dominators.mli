(** Dominator and postdominator trees on single-source DAGs.

    The paper's structural arguments (Lemma III.1 and the SP-ladder
    characterization) are phrased in terms of domination; we expose the
    computation so the test suite can check those lemmas directly on
    generated graphs, and so the ladder decomposition can locate
    immediate postdominators of split nodes. *)

val idoms : Graph.t -> Graph.node -> int array
(** [idoms g root] is the immediate-dominator array for paths from
    [root]: [idoms.(root) = root], [idoms.(v) = -1] for nodes unreachable
    from [root], and otherwise the unique closest strict dominator.
    Iterative Cooper–Harvey–Kennedy data-flow on a reverse post-order;
    [O(V * E)] worst case, near-linear on the graphs used here.
    @raise Invalid_argument if [g] is cyclic. *)

val ipostdoms : Graph.t -> Graph.node -> int array
(** [ipostdoms g sink] is [idoms] on the reversed graph rooted at
    [sink]: the immediate postdominator of every node that reaches
    [sink]. *)

val dominates : Graph.t -> Graph.node -> Graph.node -> Graph.node -> bool
(** [dominates g root a b]: every directed path from [root] to [b]
    passes through [a]. Requires [b] reachable from [root]. *)
