let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(graph_name = "stream") ?node_label ?node_class ?edge_label
    ?edge_class g =
  let node_label = Option.value node_label ~default:string_of_int in
  let edge_label =
    Option.value edge_label ~default:(fun (e : Graph.edge) ->
        string_of_int e.cap)
  in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n" graph_name;
  out "  rankdir=LR;\n  node [shape=circle];\n";
  Graph.iter_nodes g (fun v ->
      let cls =
        match Option.bind node_class (fun f -> f v) with
        | Some c -> Printf.sprintf ", class=\"%s\"" (escape c)
        | None -> ""
      in
      out "  n%d [label=\"%s\"%s];\n" v (escape (node_label v)) cls);
  List.iter
    (fun (e : Graph.edge) ->
      let cls =
        match Option.bind edge_class (fun f -> f e) with
        | Some c -> Printf.sprintf ", class=\"%s\"" (escape c)
        | None -> ""
      in
      out "  n%d -> n%d [label=\"%s\"%s];\n" e.src e.dst
        (escape (edge_label e))
        cls)
    (Graph.edges g);
  out "}\n";
  Buffer.contents buf

let render_to_channel oc g = output_string oc (render g)
