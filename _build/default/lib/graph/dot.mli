(** Graphviz export of streaming topologies.

    Produces [dot] source for a directed multigraph with optional
    per-node and per-edge decorations — the CLI uses it to render
    classifications and interval tables, and the documentation figures
    were generated with it. Output is deterministic (nodes and edges in
    id order) so it is also convenient for golden tests. *)

val render :
  ?graph_name:string ->
  ?node_label:(Graph.node -> string) ->
  ?node_class:(Graph.node -> string option) ->
  ?edge_label:(Graph.edge -> string) ->
  ?edge_class:(Graph.edge -> string option) ->
  Graph.t ->
  string
(** [render g] is a complete [digraph] document. [node_label] defaults
    to the node id; [edge_label] defaults to the buffer capacity.
    [node_class]/[edge_class] map to Graphviz [class] attributes
    (useful with SVG styling); [None] omits the attribute. *)

val render_to_channel : out_channel -> Graph.t -> unit
