let relax_from g start ~weight ~better =
  let dist = Array.make (Graph.num_nodes g) None in
  dist.(start) <- Some 0;
  Array.iter
    (fun v ->
      match dist.(v) with
      | None -> ()
      | Some dv ->
        List.iter
          (fun (e : Graph.edge) ->
            let cand = dv + weight e in
            match dist.(e.dst) with
            | Some d when not (better cand d) -> ()
            | _ -> dist.(e.dst) <- Some cand)
          (Graph.out_edges g v))
    (Topo.order_exn g);
  dist

let shortest_from g v ~weight = relax_from g v ~weight ~better:( < )
let longest_from g v ~weight = relax_from g v ~weight ~better:( > )

let relax_to g target ~weight ~better =
  let rev = Graph.reverse g in
  let weight (e : Graph.edge) = weight (Graph.edge g e.id) in
  relax_from rev target ~weight ~better

let shortest_to g v ~weight = relax_to g v ~weight ~better:( < )
let longest_to g v ~weight = relax_to g v ~weight ~better:( > )

let shortest_caps g ~src ~dst =
  (shortest_from g src ~weight:(fun e -> e.cap)).(dst)

let longest_hops g ~src ~dst =
  (longest_from g src ~weight:(fun _ -> 1)).(dst)

let longest_hops_through g ~src ~dst =
  let fwd = longest_from g src ~weight:(fun _ -> 1) in
  let bwd = longest_to g dst ~weight:(fun _ -> 1) in
  let through = Array.make (Graph.num_edges g) None in
  List.iter
    (fun (e : Graph.edge) ->
      match (fwd.(e.src), bwd.(e.dst)) with
      | Some a, Some b -> through.(e.id) <- Some (a + 1 + b)
      | _ -> ())
    (Graph.edges g);
  through
