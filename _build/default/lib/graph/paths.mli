(** Weighted shortest and longest paths on DAGs.

    Edge weights are supplied by a function so the same routines serve
    buffer-length distances (the paper's [L]) and hop counts (the
    paper's [h]). All routines require acyclicity and run in
    [O(V + E)] after one topological sort. *)

val shortest_from :
  Graph.t -> Graph.node -> weight:(Graph.edge -> int) -> int option array
(** [shortest_from g v ~weight] gives, per node, the minimum total
    weight of a directed path from [v], or [None] if unreachable.
    [Some 0] at [v] itself. *)

val longest_from :
  Graph.t -> Graph.node -> weight:(Graph.edge -> int) -> int option array

val shortest_to :
  Graph.t -> Graph.node -> weight:(Graph.edge -> int) -> int option array
(** Per node, minimum weight of a directed path to [v]. *)

val longest_to :
  Graph.t -> Graph.node -> weight:(Graph.edge -> int) -> int option array

val shortest_caps : Graph.t -> src:Graph.node -> dst:Graph.node -> int option
(** The paper's [L]: minimum total buffer capacity over directed
    [src]-to-[dst] paths. *)

val longest_hops : Graph.t -> src:Graph.node -> dst:Graph.node -> int option
(** The paper's [h]: maximum hop count over directed [src]-to-[dst]
    paths. *)

val longest_hops_through :
  Graph.t -> src:Graph.node -> dst:Graph.node -> int option array
(** The paper's [h(H, e)], indexed by edge id: maximum hop count over
    directed [src]-to-[dst] paths through each edge, or [None] when no
    such path exists. *)
