let order g =
  let n = Graph.num_nodes g in
  let indeg = Array.init n (Graph.in_degree g) in
  (* A sorted-by-id worklist keeps the order deterministic. *)
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready := Iset.add v !ready
  done;
  let rec loop acc count =
    match Iset.min_elt_opt !ready with
    | None -> if count = n then Some (List.rev acc) else None
    | Some v ->
      ready := Iset.remove v !ready;
      List.iter
        (fun (e : Graph.edge) ->
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then ready := Iset.add e.dst !ready)
        (Graph.out_edges g v);
      loop (v :: acc) (count + 1)
  in
  loop [] 0

let is_dag g = Option.is_some (order g)

let order_exn g =
  match order g with
  | Some l -> Array.of_list l
  | None -> invalid_arg "Topo.order_exn: graph has a directed cycle"

let rank g =
  let ord = order_exn g in
  let r = Array.make (Graph.num_nodes g) 0 in
  Array.iteri (fun i v -> r.(v) <- i) ord;
  r

let search g start next =
  let seen = Array.make (Graph.num_nodes g) false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit (next v)
    end
  in
  visit start;
  seen

let reachable g v =
  search g v (fun u ->
      List.map (fun (e : Graph.edge) -> e.dst) (Graph.out_edges g u))

let co_reachable g v =
  search g v (fun u ->
      List.map (fun (e : Graph.edge) -> e.src) (Graph.in_edges g u))

let connected g =
  let seen =
    search g 0 (fun u ->
        List.map (fun e -> Graph.other_endpoint e u) (Graph.incident_edges g u))
  in
  Array.for_all Fun.id seen

let is_two_terminal g =
  if not (is_dag g) then None
  else
    match (Graph.sources g, Graph.sinks g) with
    | [ src ], [ snk ] ->
      let from_src = reachable g src and to_snk = co_reachable g snk in
      let ok = ref true in
      Graph.iter_nodes g (fun v ->
          if not (from_src.(v) && to_snk.(v)) then ok := false);
      if !ok then Some (src, snk) else None
    | _ -> None
