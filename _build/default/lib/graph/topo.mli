(** Topological structure of directed multigraphs: acyclicity, orderings,
    and reachability. *)

val order : Graph.t -> Graph.node list option
(** A topological order of the nodes, or [None] if the graph has a
    directed cycle. Kahn's algorithm; stable for equal in-degrees (lower
    node ids first). *)

val is_dag : Graph.t -> bool

val order_exn : Graph.t -> Graph.node array
(** Like {!order} but as an array.
    @raise Invalid_argument if the graph is cyclic. *)

val rank : Graph.t -> int array
(** [rank g] maps each node to its position in [order_exn g].
    @raise Invalid_argument if the graph is cyclic. *)

val reachable : Graph.t -> Graph.node -> bool array
(** [reachable g v] flags every node reachable from [v] by directed
    paths, including [v] itself. *)

val co_reachable : Graph.t -> Graph.node -> bool array
(** Nodes from which [v] is reachable, including [v] itself. *)

val is_two_terminal : Graph.t -> (Graph.node * Graph.node) option
(** [Some (source, sink)] if the graph is a DAG with exactly one source
    and one sink and every node lies on some source-to-sink path;
    [None] otherwise. *)

val connected : Graph.t -> bool
(** Whether the underlying undirected multigraph is connected. *)
