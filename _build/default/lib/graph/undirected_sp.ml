(* Undirected series-parallel reduction of one biconnected component.

   State is a working multigraph over the component's vertices:
   - a parallel merge removes one of two edges sharing both endpoints;
   - a series contraction replaces a degree-2 vertex and its two edges
     (to distinct neighbours) by one edge.
   The component is series-parallel iff the fixpoint is a single edge.
   A degree-2 vertex whose two edges go to the same neighbour is a
   2-cycle and is handled by the parallel rule first. *)

module Iset = Set.Make (Int)

type state = {
  ends : (int, Graph.node * Graph.node) Hashtbl.t;  (* live edge -> endpoints *)
  inc : (Graph.node, Iset.t) Hashtbl.t;
  pair : (Graph.node * Graph.node, int) Hashtbl.t;
  mutable next_id : int;
  mutable live : int;
  queue : Graph.node Queue.t;
}

let get_inc st v = Option.value ~default:Iset.empty (Hashtbl.find_opt st.inc v)

let key u v = (min u v, max u v)

let remove st id =
  let u, v = Hashtbl.find st.ends id in
  Hashtbl.remove st.ends id;
  st.live <- st.live - 1;
  Hashtbl.replace st.inc u (Iset.remove id (get_inc st u));
  Hashtbl.replace st.inc v (Iset.remove id (get_inc st v));
  if Hashtbl.find_opt st.pair (key u v) = Some id then
    Hashtbl.remove st.pair (key u v)

let rec add st u v =
  match Hashtbl.find_opt st.pair (key u v) with
  | Some other ->
    (* parallel merge: drop the older edge, keep the new one *)
    remove st other;
    add st u v
  | None ->
    let id = st.next_id in
    st.next_id <- id + 1;
    st.live <- st.live + 1;
    Hashtbl.replace st.ends id (u, v);
    Hashtbl.replace st.inc u (Iset.add id (get_inc st u));
    Hashtbl.replace st.inc v (Iset.add id (get_inc st v));
    Hashtbl.replace st.pair (key u v) id;
    Queue.add u st.queue;
    Queue.add v st.queue

let try_contract st v =
  match Iset.elements (get_inc st v) with
  | [ e1; e2 ] ->
    let other e =
      let a, b = Hashtbl.find st.ends e in
      if a = v then b else a
    in
    let a = other e1 and b = other e2 in
    (* a = b cannot happen: both edges would be parallel and already
       merged into one, leaving v with degree 1 *)
    if a <> b then begin
      remove st e1;
      remove st e2;
      add st a b
    end
  | _ -> ()

let component_is_sp _g edges =
  let st =
    {
      ends = Hashtbl.create 64;
      inc = Hashtbl.create 64;
      pair = Hashtbl.create 64;
      next_id = 0;
      live = 0;
      queue = Queue.create ();
    }
  in
  List.iter (fun (e : Graph.edge) -> add st e.src e.dst) edges;
  while not (Queue.is_empty st.queue) do
    try_contract st (Queue.pop st.queue)
  done;
  st.live <= 1

let has_k4_subdivision g =
  List.exists
    (fun comp -> not (component_is_sp g comp))
    (Articulation.biconnected_components g)

let is_undirected_sp g = not (has_k4_subdivision g)
