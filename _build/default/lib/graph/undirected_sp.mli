(** Undirected series-parallel structure and K4 subdivisions.

    Lemma V.1 bounds CS4 DAGs by a purely undirected property: a CS4
    DAG contains no subgraph homeomorphic to K4. By Duffin's theorem, a
    (multi)graph has no K4 minor iff every biconnected component is
    undirected series-parallel, i.e. reduces to a single edge under
    repeated undirected series contractions (degree-2 vertices) and
    parallel merges; and because K4 is 3-regular, having a K4 minor and
    containing a K4 subdivision coincide. This module implements that
    reduction, giving a linear-time K4-subdivision test used by the
    Lemma V.1 / Lemma V.6 property tests and the topology-repair
    diagnostics. *)

val component_is_sp : Graph.t -> Graph.edge list -> bool
(** [component_is_sp g edges]: the biconnected component given by
    [edges] (of [g]) reduces to a single edge. Edge directions are
    ignored. *)

val has_k4_subdivision : Graph.t -> bool
(** Some biconnected component of the underlying undirected multigraph
    is not series-parallel — equivalently, the graph contains a
    subgraph homeomorphic to K4. *)

val is_undirected_sp : Graph.t -> bool
(** [not (has_k4_subdivision g)]. *)
