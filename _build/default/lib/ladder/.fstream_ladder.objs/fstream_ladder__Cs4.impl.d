lib/ladder/cs4.ml: Articulation Cycles Format Fstream_graph Fstream_spdag Graph Ladder List Option Result Sp_recognize Sp_tree Topo
