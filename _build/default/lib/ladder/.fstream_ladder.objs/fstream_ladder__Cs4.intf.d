lib/ladder/cs4.mli: Cycles Format Fstream_graph Fstream_spdag Graph Ladder Sp_tree
