lib/ladder/embedding.ml: Array Cs4 Format Fstream_graph Fstream_spdag Fun Graph Ladder List Sp_tree
