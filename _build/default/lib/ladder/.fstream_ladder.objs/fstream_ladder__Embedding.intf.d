lib/ladder/embedding.mli: Cs4 Fstream_graph Graph
