lib/ladder/ladder.ml: Array Format Fstream_graph Fstream_spdag Graph Hashtbl Int List Option Printf Set Sp_recognize Sp_tree
