lib/ladder/ladder.mli: Format Fstream_graph Fstream_spdag Graph Sp_recognize Sp_tree
