open Fstream_graph
open Fstream_spdag

type block =
  | Sp_block of Sp_tree.t
  | Ladder_block of Ladder.t

type t = {
  source : Graph.node;
  sink : Graph.node;
  blocks : (Graph.node * Graph.node * block) list;
}

type failure =
  | Not_two_terminal
  | Bad_block of {
      block_source : Graph.node;
      block_sink : Graph.node;
      reason : string;
    }

let pp_failure ppf = function
  | Not_two_terminal -> Format.fprintf ppf "not a connected two-terminal DAG"
  | Bad_block { block_source; block_sink; reason } ->
    Format.fprintf ppf "block %d..%d is neither SP nor an SP-ladder: %s"
      block_source block_sink reason

let classify_block ~nodes ~source ~sink edges =
  (* One reduction serves both recognizers: a single surviving
     super-edge means SP; otherwise the core must match the ladder
     skeleton. *)
  match
    Sp_recognize.reduce ~nodes ~protect:(fun v -> v = source || v = sink)
      edges
  with
  | [ { s_src; s_dst; s_tree } ] when s_src = source && s_dst = sink ->
    Ok (Sp_block s_tree)
  | core -> (
    match Ladder.of_core ~source ~sink core with
    | Ok ladder -> Ok (Ladder_block ladder)
    | Error reason -> Error reason)

let classify g =
  match Topo.is_two_terminal g with
  | None -> Error Not_two_terminal
  | Some (x, y) when x = y -> Error Not_two_terminal
  | Some (x, y) ->
    if not (Topo.connected g) then Error Not_two_terminal
    else begin
      let nodes = Graph.num_nodes g in
      let rec go acc = function
        | [] -> Ok { source = x; sink = y; blocks = List.rev acc }
        | (bsrc, bsnk, edges) :: rest -> (
          match classify_block ~nodes ~source:bsrc ~sink:bsnk edges with
          | Ok b -> go ((bsrc, bsnk, b) :: acc) rest
          | Error reason ->
            Error (Bad_block { block_source = bsrc; block_sink = bsnk; reason }))
      in
      go [] (Articulation.serial_blocks g)
    end

let is_cs4 g = Result.is_ok (classify g)

let bad_cycle_witness ?max_cycles g =
  List.find_opt
    (fun c -> not (Cycles.is_cs4_cycle c))
    (Cycles.enumerate ?max_cycles g)

let is_cs4_brute ?max_cycles g =
  match Topo.is_two_terminal g with
  | None -> false
  | Some (x, y) when x = y -> false
  | Some _ ->
    Topo.connected g && Option.is_none (bad_cycle_witness ?max_cycles g)
