(** CS4 DAGs: classification per Theorem V.7.

    A two-terminal DAG is CS4 — every undirected simple cycle has a
    single source and a single sink — iff it is a serial composition of
    blocks, each of which is an SP-DAG or an SP-ladder. [classify]
    decides the property constructively: it splits the graph into
    biconnected blocks along its articulation-point chain and recognizes
    each block, yielding the decomposition the interval algorithms of
    §VI consume. [is_cs4_brute] decides the same property directly from
    the cycle-structure definition by enumerating all undirected simple
    cycles (exponential); the test suite checks the two agree, which is
    the computational content of Theorem V.7. *)

open Fstream_graph
open Fstream_spdag

type block =
  | Sp_block of Sp_tree.t
  | Ladder_block of Ladder.t

type t = {
  source : Graph.node;
  sink : Graph.node;
  blocks : (Graph.node * Graph.node * block) list;
      (** [(block_source, block_sink, class)], in serial order *)
}

type failure =
  | Not_two_terminal
  | Bad_block of {
      block_source : Graph.node;
      block_sink : Graph.node;
      reason : string;  (** why the block is neither SP nor a ladder *)
    }

val classify : Graph.t -> (t, failure) result

val is_cs4 : Graph.t -> bool
(** [Result.is_ok (classify g)]. *)

val is_cs4_brute : ?max_cycles:int -> Graph.t -> bool
(** Definition-level check: two-terminal and every undirected simple
    cycle has exactly one source and one sink. Exponential. *)

val bad_cycle_witness : ?max_cycles:int -> Graph.t -> Cycles.t option
(** A cycle with more than one source (and sink), when one exists —
    e.g. the a-c-b-d cycle of the Fig. 4 butterfly. *)

val pp_failure : Format.formatter -> failure -> unit
