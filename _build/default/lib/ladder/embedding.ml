open Fstream_graph
open Fstream_spdag

type t = int list array

let half_src (e : Graph.edge) = 2 * e.id
let half_dst (e : Graph.edge) = (2 * e.id) + 1
let twin h = h lxor 1

let tail g h =
  let e = Graph.edge g (h / 2) in
  if h land 1 = 0 then e.src else e.dst

(* Embed an SP tree drawn left-to-right: parallel components stack
   vertically (first on top), series components chain through their
   junction. Internal vertex rotations are written to [rot]; the
   returned bundles list the tree's half-edges at its source and sink
   in top-to-bottom order. At a junction, counter-clockwise order is
   the outgoing (east) bundle bottom-to-top followed by the incoming
   (west) bundle top-to-bottom. *)
let rec embed_sp rot (t : Sp_tree.t) =
  match t.shape with
  | Leaf e -> ([ half_src e ], [ half_dst e ])
  | Series (a, b) ->
    let a_src, a_snk = embed_sp rot a in
    let b_src, b_snk = embed_sp rot b in
    rot.(a.sink) <- List.rev b_src @ a_snk;
    (a_src, b_snk)
  | Parallel (a, b) ->
    let a_src, a_snk = embed_sp rot a in
    let b_src, b_snk = embed_sp rot b in
    (a_src @ b_src, a_snk @ b_snk)

(* Embed a ladder drawn as a band: left rail along the top, right rail
   along the bottom, cross-links as verticals in between (non-crossing
   keeps them disjoint). Returns the CCW-ready source part (east-facing)
   and sink part (west-facing) of the block. *)
let embed_ladder rot (lad : Ladder.t) =
  let seg_l = Array.map (embed_sp rot) lad.Ladder.left_segments in
  let seg_r = Array.map (embed_sp rot) lad.Ladder.right_segments in
  let rung_bundles =
    Array.map (fun r -> embed_sp rot r.Ladder.cross) lad.Ladder.rungs
  in
  let rungs_at side v =
    List.filter
      (fun i ->
        side lad.Ladder.rungs.(i) = v)
      (List.init (Array.length lad.Ladder.rungs) Fun.id)
  in
  (* Top-rail vertex: east bundle (next segment, CCW bottom-to-top),
     west bundle (previous segment, top-to-bottom), then the rungs
     hanging south, west-to-east = in rung order. A rung contributes
     its source bundle when it leaves the vertex, its sink bundle when
     it arrives; both keep their intrinsic CCW order under the
     quarter-turn into the vertical. *)
  Array.iteri
    (fun j u ->
      let _, prev_snk = seg_l.(j) in
      let next_src, _ = seg_l.(j + 1) in
      let rung_part =
        List.concat_map
          (fun i ->
            let src, snk = rung_bundles.(i) in
            if lad.Ladder.rungs.(i).Ladder.left_to_right then List.rev src
            else snk)
          (rungs_at (fun r -> r.Ladder.left_end) u)
      in
      rot.(u) <- List.rev next_src @ prev_snk @ rung_part)
    lad.Ladder.left_nodes;
  (* Bottom-rail vertex: east bundle, rungs pointing north east-to-west
     = decreasing rung order, then the west bundle. *)
  Array.iteri
    (fun j z ->
      let _, prev_snk = seg_r.(j) in
      let next_src, _ = seg_r.(j + 1) in
      let rung_part =
        List.concat_map
          (fun i ->
            let src, snk = rung_bundles.(i) in
            if lad.Ladder.rungs.(i).Ladder.left_to_right then snk
            else List.rev src)
          (List.rev (rungs_at (fun r -> r.Ladder.right_end) z))
      in
      rot.(z) <- List.rev next_src @ rung_part @ prev_snk)
    lad.Ladder.right_nodes;
  let s0_src, _ = seg_l.(0) and d0_src, _ = seg_r.(0) in
  let _, sk_snk = seg_l.(Array.length seg_l - 1) in
  let _, dk_snk = seg_r.(Array.length seg_r - 1) in
  (List.rev d0_src @ List.rev s0_src, sk_snk @ dk_snk)

let block_parts rot = function
  | Cs4.Sp_block t ->
    let src, snk = embed_sp rot t in
    (List.rev src, snk)
  | Cs4.Ladder_block lad -> embed_ladder rot lad

let of_cs4 g (cls : Cs4.t) =
  let rot = Array.make (Graph.num_nodes g) [] in
  let pending_snk = ref [] in
  List.iter
    (fun (bsrc, _, b) ->
      let src_part, snk_part = block_parts rot b in
      rot.(bsrc) <- src_part @ !pending_snk;
      pending_snk := snk_part)
    cls.Cs4.blocks;
  rot.(cls.Cs4.sink) <- !pending_snk;
  rot

let of_graph g =
  match Cs4.classify g with
  | Ok cls -> Ok (of_cs4 g cls)
  | Error e -> Error (Format.asprintf "%a" Cs4.pp_failure e)

let faces g (rot : t) =
  let m = Graph.num_edges g in
  (* successor of h in the CCW rotation at its tail *)
  let succ = Array.make (2 * m) (-1) in
  Array.iter
    (fun halves ->
      match halves with
      | [] -> ()
      | first :: _ ->
        let rec go = function
          | [ last ] -> succ.(last) <- first
          | a :: (b :: _ as rest) ->
            succ.(a) <- b;
            go rest
          | [] -> ()
        in
        go halves)
    rot;
  let next h = succ.(twin h) in
  let seen = Array.make (2 * m) false in
  let count = ref 0 in
  for h = 0 to (2 * m) - 1 do
    if not seen.(h) then begin
      incr count;
      let cur = ref h in
      while not seen.(!cur) do
        seen.(!cur) <- true;
        cur := next !cur
      done
    end
  done;
  !count

let euler_ok g rot =
  Graph.num_nodes g - Graph.num_edges g + faces g rot = 2

let check_wellformed g (rot : t) =
  let m = Graph.num_edges g in
  let seen = Array.make (2 * m) false in
  let ok = ref true in
  Array.iteri
    (fun v halves ->
      List.iter
        (fun h ->
          if h < 0 || h >= 2 * m || seen.(h) || tail g h <> v then ok := false
          else seen.(h) <- true)
        halves)
    rot;
  !ok && Array.for_all Fun.id seen
