(** Constructive planarity: combinatorial embeddings of CS4 DAGs.

    Corollary V.2 states that every CS4 graph is planar. This module
    proves it constructively for any given CS4 graph: from the
    {!Cs4.t} decomposition it assembles a rotation system — a cyclic,
    counter-clockwise order of incident half-edges around every vertex —
    by stacking parallel components, nesting series-parallel lenses,
    and laying ladder rails out as the top and bottom of a band with
    the (non-crossing) cross-links as verticals. Tracing the orbits of
    the face permutation and checking Euler's formula
    [V - E + F = 2] then certifies genus zero, i.e. planarity, for
    that concrete graph.

    Half-edge encoding: edge [e] contributes half-edge [2 * e.id]
    originating at [e.src] and [2 * e.id + 1] originating at
    [e.dst]. *)

open Fstream_graph

type t = int list array
(** Per vertex, the CCW cyclic order of half-edges originating there. *)

val of_cs4 : Graph.t -> Cs4.t -> t
(** Rotation system induced by a CS4 decomposition. *)

val of_graph : Graph.t -> (t, string) result
(** Classify, then embed. Errors on non-CS4 graphs (which may still be
    planar — the butterfly is — but have no decomposition to drive the
    construction). *)

val faces : Graph.t -> t -> int
(** Number of orbits of the face permutation. *)

val euler_ok : Graph.t -> t -> bool
(** [faces g rot = 2 - V + E] — the rotation system is a planar (genus
    zero) embedding. Requires a connected graph. *)

val check_wellformed : Graph.t -> t -> bool
(** Every half-edge appears exactly once, at the vertex it originates
    from (test helper). *)
