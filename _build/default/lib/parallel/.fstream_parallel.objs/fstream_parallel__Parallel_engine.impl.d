lib/parallel/parallel_engine.ml: Array Condition Domain Fstream_graph Fstream_runtime Fun Graph List Mutex Printf Queue Unix
