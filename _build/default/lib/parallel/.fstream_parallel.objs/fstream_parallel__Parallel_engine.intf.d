lib/parallel/parallel_engine.mli: Fstream_graph Fstream_runtime Graph
