lib/repair/repair.ml: Array Cs4 Cycles Fstream_graph Fstream_ladder Fun Graph List Option Topo
