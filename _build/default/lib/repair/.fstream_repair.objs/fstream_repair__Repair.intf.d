lib/repair/repair.mli: Fstream_graph Graph
