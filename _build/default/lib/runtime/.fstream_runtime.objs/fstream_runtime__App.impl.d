lib/runtime/app.ml: Array Fstream_graph Fun Graph Hashtbl List Mutex Printf
