lib/runtime/app.mli: Engine Fstream_graph Graph
