lib/runtime/channel.ml: Message Queue
