lib/runtime/channel.mli: Message
