lib/runtime/diagnosis.ml: Array Cycles Engine Format Fstream_graph Graph List
