lib/runtime/diagnosis.mli: Cycles Engine Format Fstream_graph Graph
