lib/runtime/engine.ml: Array Channel Format Fstream_graph Graph Hashtbl List Message Option Printf Queue String Topo
