lib/runtime/engine.mli: Format Fstream_graph Graph
