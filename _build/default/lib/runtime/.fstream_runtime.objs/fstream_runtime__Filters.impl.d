lib/runtime/filters.ml: Fstream_graph Graph List Random
