lib/runtime/filters.mli: Engine Fstream_graph Graph Random
