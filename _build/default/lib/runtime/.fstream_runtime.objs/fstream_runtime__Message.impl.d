lib/runtime/message.ml: Format
