lib/runtime/message.mli: Format
