open Fstream_graph

type 'v behavior =
  | Unset
  | Source of (seq:int -> (int * 'v) list)
  | Node of (seq:int -> inputs:(int * 'v) list -> (int * 'v) list)

type 'v t = {
  graph : Graph.t;
  behaviors : 'v behavior array;
  (* (edge id, seq) -> in-flight payload; entries are removed when the
     consumer fires, so the table size is bounded by the total channel
     capacity. Locked because distinct nodes' kernels may run on
     different domains under the parallel runtime. *)
  store : (int * int, 'v) Hashtbl.t;
  lock : Mutex.t;
}

let create graph =
  {
    graph;
    behaviors = Array.make (Graph.num_nodes graph) Unset;
    store = Hashtbl.create 64;
    lock = Mutex.create ();
  }

let source app v f =
  if Graph.in_degree app.graph v > 0 then
    invalid_arg "App.source: node has incoming channels";
  app.behaviors.(v) <- Source f

let node app v f =
  if Graph.in_degree app.graph v = 0 then
    invalid_arg "App.node: node is a source";
  app.behaviors.(v) <- Node f

let sink app v f =
  node app v (fun ~seq ~inputs ->
      f ~seq ~inputs;
      [])

let unconfigured app =
  List.filter
    (fun v -> app.behaviors.(v) = Unset)
    (List.init (Graph.num_nodes app.graph) Fun.id)

let locked app f =
  Mutex.lock app.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock app.lock) f

let to_kernels app v =
  let out_ids =
    List.map (fun (e : Graph.edge) -> e.id) (Graph.out_edges app.graph v)
  in
  let record seq emitted =
    List.iter
      (fun (id, value) ->
        if not (List.mem id out_ids) then
          invalid_arg
            (Printf.sprintf "App: node %d emitted on foreign channel %d" v id);
        locked app (fun () -> Hashtbl.replace app.store (id, seq) value))
      emitted;
    List.sort_uniq compare (List.map fst emitted)
  in
  fun ~seq ~got ->
    match app.behaviors.(v) with
    | Unset -> []
    | Source f -> record seq (f ~seq)
    | Node f ->
      let inputs =
        List.map
          (fun id ->
            let value =
              locked app (fun () ->
                  let key = (id, seq) in
                  match Hashtbl.find_opt app.store key with
                  | Some value ->
                    Hashtbl.remove app.store key;
                    value
                  | None ->
                    invalid_arg
                      (Printf.sprintf
                         "App: no payload for channel %d at seq %d" id seq))
            in
            (id, value))
          got
      in
      record seq (f ~seq ~inputs)
