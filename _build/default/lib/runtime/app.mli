(** Typed streaming applications on top of the scheduler.

    {!Engine} kernels only choose which output channels receive a
    message; this layer threads actual values through the graph. Every
    channel of an application carries payloads of one type ['v]; each
    node is a function from the values it received for a sequence
    number to the values it emits (returning no value for a channel
    {e is} filtering); sinks hand their values to a callback.

    Payload plumbing lives entirely in this layer: the wrapper stores
    each emitted value keyed by (channel, sequence number), hands the
    engine an ordinary {!Engine.kernel}, and resolves inputs when the
    consumer fires — exactly once per message, so the store stays
    bounded by the channel buffers. Both the sequential {!Engine} and
    the parallel runtime accept the resulting kernels (the store is
    internally locked for the parallel case; each node's own function
    is only ever called from that node's domain).

    Dummy messages remain invisible to application code, as the paper
    requires: node functions are called only for sequence numbers that
    carried at least one data value. *)

open Fstream_graph

type 'v t

val create : Graph.t -> 'v t

val source : 'v t -> Graph.node -> (seq:int -> (int * 'v) list) -> unit
(** [source app v f]: at each input sequence number, [f ~seq] returns
    the (out-edge id, value) pairs to emit — an empty list filters the
    input entirely.
    @raise Invalid_argument if [v] has incoming edges. *)

val node :
  'v t ->
  Graph.node ->
  (seq:int -> inputs:(int * 'v) list -> (int * 'v) list) ->
  unit
(** [node app v f]: [inputs] are the (in-edge id, value) pairs that
    arrived for [seq] (never empty; all-dummy firings bypass the node
    function).
    @raise Invalid_argument if [v] is a source. *)

val sink : 'v t -> Graph.node -> (seq:int -> inputs:(int * 'v) list -> unit) -> unit
(** Terminal consumer; a {!node} that emits nothing. *)

val unconfigured : 'v t -> Graph.node list
(** Nodes with no behaviour attached. Unconfigured nodes filter
    everything, which is rarely intended. *)

val to_kernels : 'v t -> Graph.node -> Engine.kernel
(** The engine-facing kernels, suitable for {!Engine.run} (or the
    parallel runtime).
    @raise Invalid_argument at fire time if a node function emits on a
    channel that is not one of its node's out-edges. *)
