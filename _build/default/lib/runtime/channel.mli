(** Bounded FIFO channels.

    A channel models one edge of the application DAG: reliable, in
    order, with a finite buffer of [capacity] messages — the finiteness
    that makes filtering deadlocks possible. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val push : t -> Message.t -> bool
(** [false] (and no effect) when full. Enforces sequence-number
    monotonicity: @raise Invalid_argument if the message's sequence
    number is not greater than the last pushed one. *)

val peek : t -> Message.t option
val pop : t -> Message.t option

val total_pushed : t -> int
val dummies_pushed : t -> int
val data_pushed : t -> int
