open Fstream_graph

let passthrough outs ~seq:_ ~got:_ = outs
let drop_all _outs ~seq:_ ~got:_ = []

let bernoulli rng ~keep outs ~seq:_ ~got:_ =
  List.filter (fun _ -> Random.State.float rng 1.0 < keep) outs

let periodic ~keep_every outs ~seq ~got:_ =
  if keep_every < 1 then invalid_arg "Filters.periodic: keep_every < 1";
  if seq mod keep_every = 0 then outs else []

let route_one rng outs ~seq:_ ~got:_ =
  match outs with
  | [] -> []
  | _ -> [ List.nth outs (Random.State.int rng (List.length outs)) ]

let block_edge blocked outs ~seq:_ ~got:_ =
  List.filter (fun id -> id <> blocked) outs

let for_graph g choose v =
  let outs = List.map (fun (e : Graph.edge) -> e.id) (Graph.out_edges g v) in
  choose v outs
