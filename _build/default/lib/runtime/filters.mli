(** Kernel combinators: the filtering behaviours used by the examples,
    tests and benchmarks.

    All randomized kernels are driven by an explicit [Random.State.t]
    so that every execution is reproducible. Kernels receive the node's
    out-edge ids once at construction (from {!for_graph}) and decide
    per sequence number which of them receive data. *)

open Fstream_graph

val passthrough : int list -> Engine.kernel
(** Data on every listed out-edge whenever any data arrives. *)

val drop_all : int list -> Engine.kernel
(** Never emits — the most aggressive filter. *)

val bernoulli : Random.State.t -> keep:float -> int list -> Engine.kernel
(** Each out-edge independently receives data with probability [keep]
    per fired sequence number. *)

val periodic : keep_every:int -> int list -> Engine.kernel
(** Data on every [keep_every]-th sequence number (phase 0), filtered
    otherwise — a deterministic thinning filter. *)

val route_one : Random.State.t -> int list -> Engine.kernel
(** Sends each input to exactly one out-edge, chosen uniformly — the
    data-dependent switch of the Fig. 1 discussion. *)

val block_edge : int -> int list -> Engine.kernel
(** Passes through on every out-edge except the given one, which is
    always filtered — the adversarial behaviour that triggers the
    Fig. 2 deadlock. *)

val for_graph :
  Graph.t -> (Graph.node -> int list -> Engine.kernel) -> Graph.node -> Engine.kernel
(** [for_graph g choose] builds the [kernels] argument of
    {!Engine.run}: [choose v out_ids] picks the kernel for node [v]
    given its out-edge ids. *)
