type body = Data of int | Dummy | Eos

type t = { seq : int; body : body }

let data ~seq payload = { seq; body = Data payload }
let dummy ~seq = { seq; body = Dummy }
let eos () = { seq = max_int; body = Eos }
let is_dummy m = m.body = Dummy

let pp ppf m =
  match m.body with
  | Data v -> Format.fprintf ppf "#%d:%d" m.seq v
  | Dummy -> Format.fprintf ppf "#%d:dummy" m.seq
  | Eos -> Format.pp_print_string ppf "#eos"
