(** Messages on streaming channels (§II.A).

    Every message carries the monotonically increasing sequence number
    of the external input it derives from. A [Dummy] is the §II.B
    deadlock-avoidance message: content-free, carrying the sequence
    number of an input the sender filtered, so the receiver can advance
    past it. [Eos] is a runtime-level end-of-stream marker (sequence
    number [max_int]) letting a finite execution drain — it is not part
    of the paper's model, which considers unbounded streams. *)

type body =
  | Data of int  (** opaque payload (tests thread values through it) *)
  | Dummy
  | Eos

type t = { seq : int; body : body }

val data : seq:int -> int -> t
val dummy : seq:int -> t
val eos : unit -> t
val is_dummy : t -> bool
val pp : Format.formatter -> t -> unit
