lib/spdag/sp_build.ml: Format Fstream_graph List
