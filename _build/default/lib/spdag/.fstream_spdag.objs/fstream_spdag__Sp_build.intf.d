lib/spdag/sp_build.mli: Format Fstream_graph
