lib/spdag/sp_recognize.ml: Array Format Fstream_graph Graph Hashtbl Int List Queue Result Set Sp_tree Topo
