lib/spdag/sp_recognize.mli: Format Fstream_graph Sp_tree
