lib/spdag/sp_tree.ml: Array Format Fstream_graph Fun Graph List Topo
