lib/spdag/sp_tree.mli: Format Fstream_graph Graph
