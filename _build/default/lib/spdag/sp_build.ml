type spec =
  | Edge of int
  | Series of spec list
  | Parallel of spec list

let rec num_edges = function
  | Edge _ -> 1
  | Series l | Parallel l ->
    List.fold_left (fun acc s -> acc + num_edges s) 0 l

let rec num_inner_nodes = function
  | Edge _ -> 0
  | Series l ->
    List.length l - 1
    + List.fold_left (fun acc s -> acc + num_inner_nodes s) 0 l
  | Parallel l -> List.fold_left (fun acc s -> acc + num_inner_nodes s) 0 l

let to_graph spec =
  let next = ref 1 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let rec emit spec src dst acc =
    match spec with
    | Edge cap -> (src, dst, cap) :: acc
    | Series [] -> invalid_arg "Sp_build.to_graph: empty Series"
    | Series [ s ] -> emit s src dst acc
    | Series (s :: rest) ->
      let j = fresh () in
      emit (Series rest) j dst (emit s src j acc)
    | Parallel [] -> invalid_arg "Sp_build.to_graph: empty Parallel"
    | Parallel l -> List.fold_left (fun acc s -> emit s src dst acc) acc l
  in
  let sink = 1 + num_inner_nodes spec in
  let edges = List.rev (emit spec 0 sink []) in
  Fstream_graph.Graph.make ~nodes:(sink + 1) edges

let rec pp ppf = function
  | Edge cap -> Format.fprintf ppf "%d" cap
  | Series l ->
    Format.fprintf ppf "(S%a)"
      (fun ppf -> List.iter (Format.fprintf ppf " %a" pp))
      l
  | Parallel l ->
    Format.fprintf ppf "(P%a)"
      (fun ppf -> List.iter (Format.fprintf ppf " %a" pp))
      l
