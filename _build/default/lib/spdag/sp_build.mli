(** Declarative construction of series-parallel graphs.

    A {!spec} mirrors the recursive definition of §III: an edge with a
    buffer capacity, a pipeline of components ([Series]), or a split-join
    of components ([Parallel]). [to_graph] materializes the spec as a
    {!Fstream_graph.Graph.t} with dense node and edge ids — the inverse
    of {!Sp_recognize.recognize}, used by generators, examples and
    tests. *)

type spec =
  | Edge of int  (** a channel with the given buffer capacity *)
  | Series of spec list  (** non-empty; pipeline of components *)
  | Parallel of spec list  (** non-empty; split-join of components *)

val to_graph : spec -> Fstream_graph.Graph.t
(** Nodes are numbered so that node [0] is the source and the highest id
    is the sink.
    @raise Invalid_argument on an empty [Series] or [Parallel], or a
    capacity < 1. *)

val num_edges : spec -> int
val num_inner_nodes : spec -> int

val pp : Format.formatter -> spec -> unit
