open Fstream_graph

type super_edge = {
  s_src : Graph.node;
  s_dst : Graph.node;
  s_tree : Sp_tree.t;
}

type failure =
  | Not_two_terminal
  | Irreducible of { remaining_edges : int }

let pp_failure ppf = function
  | Not_two_terminal ->
    Format.fprintf ppf "not a connected two-terminal DAG"
  | Irreducible { remaining_edges } ->
    Format.fprintf ppf
      "not series-parallel (reduction stalled with %d super-edges)"
      remaining_edges

module Iset = Set.Make (Int)

(* Mutable reduction state: super-edges carry the decomposition tree of
   the subgraph they replace. The [pair] index keeps at most one live
   super-edge per (src, dst), merging parallels eagerly on insertion. *)
type state = {
  live : (int, Graph.node * Graph.node * Sp_tree.t) Hashtbl.t;
  mutable next_id : int;
  out_s : Iset.t array;
  in_s : Iset.t array;
  pair : (Graph.node * Graph.node, int) Hashtbl.t;
  queue : Graph.node Queue.t;
}

let remove_edge st id =
  let src, dst, _ = Hashtbl.find st.live id in
  Hashtbl.remove st.live id;
  st.out_s.(src) <- Iset.remove id st.out_s.(src);
  st.in_s.(dst) <- Iset.remove id st.in_s.(dst);
  if Hashtbl.find_opt st.pair (src, dst) = Some id then
    Hashtbl.remove st.pair (src, dst)

let rec add_edge st src dst tree =
  match Hashtbl.find_opt st.pair (src, dst) with
  | Some other ->
    let _, _, tree' = Hashtbl.find st.live other in
    remove_edge st other;
    add_edge st src dst (Sp_tree.parallel tree' tree)
  | None ->
    let id = st.next_id in
    st.next_id <- id + 1;
    Hashtbl.replace st.live id (src, dst, tree);
    st.out_s.(src) <- Iset.add id st.out_s.(src);
    st.in_s.(dst) <- Iset.add id st.in_s.(dst);
    Hashtbl.replace st.pair (src, dst) id;
    Queue.add src st.queue;
    Queue.add dst st.queue

let try_series st ~protect v =
  if (not (protect v))
     && Iset.cardinal st.in_s.(v) = 1
     && Iset.cardinal st.out_s.(v) = 1
  then begin
    let ein = Iset.choose st.in_s.(v) and eout = Iset.choose st.out_s.(v) in
    let u, _, t_in = Hashtbl.find st.live ein in
    let _, w, t_out = Hashtbl.find st.live eout in
    remove_edge st ein;
    remove_edge st eout;
    add_edge st u w (Sp_tree.series t_in t_out)
  end

let reduce ~nodes ~protect edges =
  let st =
    {
      live = Hashtbl.create (2 * List.length edges);
      next_id = 0;
      out_s = Array.make nodes Iset.empty;
      in_s = Array.make nodes Iset.empty;
      pair = Hashtbl.create (2 * List.length edges);
      queue = Queue.create ();
    }
  in
  List.iter
    (fun (e : Graph.edge) -> add_edge st e.src e.dst (Sp_tree.leaf e))
    edges;
  while not (Queue.is_empty st.queue) do
    try_series st ~protect (Queue.pop st.queue)
  done;
  Hashtbl.fold
    (fun _ (s_src, s_dst, s_tree) acc -> { s_src; s_dst; s_tree } :: acc)
    st.live []

let recognize_block ~nodes ~source ~sink edges =
  if edges = [] then Error Not_two_terminal
  else
    match reduce ~nodes ~protect:(fun v -> v = source || v = sink) edges with
    | [ { s_src; s_dst; s_tree } ] when s_src = source && s_dst = sink ->
      Ok s_tree
    | rest -> Error (Irreducible { remaining_edges = List.length rest })

let recognize g =
  match Topo.is_two_terminal g with
  | None -> Error Not_two_terminal
  | Some (x, y) when x = y -> Error Not_two_terminal
  | Some (x, y) ->
    if not (Topo.connected g) then Error Not_two_terminal
    else
      recognize_block ~nodes:(Graph.num_nodes g) ~source:x ~sink:y
        (Graph.edges g)

let is_sp g = Result.is_ok (recognize g)
