(** Recognition of two-terminal series-parallel DAGs.

    Implements the reduction characterization behind the linear-time
    algorithm of Valdes, Tarjan and Lawler [16]: repeatedly merge
    parallel edges (same endpoints) and series vertices (inner vertices
    of in- and out-degree one). A connected two-terminal DAG is
    series-parallel iff this terminates with a single edge from source
    to sink. The merges are recorded as a {!Sp_tree.t}, whose leaves are
    the original {!Fstream_graph.Graph.edge} values, so dummy intervals
    computed on the tree map directly back to channel ids.

    Worklist-driven; each merge is O(1) amortized, so recognition runs
    in O(|G|) — the cost step 1 of §IV.A budgets.

    The stalled reduction is also exposed ({!reduce}): when the input is
    not series-parallel the surviving super-edges form its "core", which
    the SP-ladder recognizer ({!Fstream_ladder.Ladder}) pattern-matches
    against the skeleton of Fig. 6. *)

type super_edge = {
  s_src : Fstream_graph.Graph.node;
  s_dst : Fstream_graph.Graph.node;
  s_tree : Sp_tree.t;
      (** decomposition of the series-parallel subgraph this super-edge
          replaces; its terminals are [s_src] and [s_dst] *)
}

type failure =
  | Not_two_terminal
      (** cyclic, disconnected, multiple sources/sinks, or no edges *)
  | Irreducible of { remaining_edges : int }
      (** two-terminal but not series-parallel: the reduction stalled
          with this many super-edges left *)

val reduce :
  nodes:int ->
  protect:(Fstream_graph.Graph.node -> bool) ->
  Fstream_graph.Graph.edge list ->
  super_edge list
(** Run the series/parallel reduction to a fixpoint over the given edge
    multiset. Nodes for which [protect] holds are never series-merged
    (use it to protect the intended terminals). Node ids may be sparse:
    [nodes] only bounds them. *)

val recognize_block :
  nodes:int ->
  source:Fstream_graph.Graph.node ->
  sink:Fstream_graph.Graph.node ->
  Fstream_graph.Graph.edge list ->
  (Sp_tree.t, failure) result
(** Recognize a subgraph given by an explicit edge list and intended
    terminals — used on the biconnected blocks of a CS4 candidate. *)

val recognize : Fstream_graph.Graph.t -> (Sp_tree.t, failure) result
(** Whole-graph recognition: checks the connected two-terminal DAG
    property, then reduces. *)

val is_sp : Fstream_graph.Graph.t -> bool

val pp_failure : Format.formatter -> failure -> unit
