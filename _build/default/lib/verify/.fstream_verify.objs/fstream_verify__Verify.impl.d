lib/verify/verify.ml: Array Engine Format Fstream_graph Fstream_runtime Fun Graph Hashtbl List Marshal Printf Queue String
