lib/verify/verify.mli: Format Fstream_graph Fstream_runtime Graph
