(** Exhaustive deadlock checking for small topologies.

    The randomized simulations (bench S1) sample filtering behaviours;
    this module decides them. For a given graph, avoidance wrapper and
    bounded input count it explores the {e entire} transition system —
    every interleaving of node firings and sends, and at every firing
    {e every} subset of output channels the kernel could choose to emit
    on — and reports either that no reachable state is wedged
    ([Safe], a machine-checked proof of deadlock freedom for that
    instance) or a concrete trace of scheduler steps and filtering
    choices that wedges the system ([Deadlocks]).

    The semantics mirrors {!Fstream_runtime.Engine} exactly: firing on
    the minimum head sequence number, blocking data sends with
    per-channel FIFO, non-blocking coalescing dummy slots, sequence-
    number gap thresholds, dummy forwarding under [Propagation], and
    end-of-stream draining. A property test cross-checks the two
    implementations against each other.

    State counts grow quickly — this is for graphs of a handful of
    nodes with unit-ish buffers, which is exactly where the interesting
    counterexamples live (Fig. 2 is three nodes; the budget-erosion
    counterexample to the paper-literal Propagation table is five). *)

open Fstream_graph

type result =
  | Safe of { states : int }  (** every reachable state makes progress *)
  | Deadlocks of { states : int; trace : string list }
      (** a wedged state is reachable; [trace] lists the actions from
          the initial state, including each firing's filtering choice *)
  | Out_of_budget of { states : int }

val check :
  ?max_states:int ->
  ?strategy:[ `Bfs | `Dfs ] ->
  graph:Graph.t ->
  avoidance:Fstream_runtime.Engine.avoidance ->
  inputs:int ->
  unit ->
  result
(** [max_states] defaults to 1_000_000. [`Bfs] (default) yields
    shortest counterexample traces; [`Dfs] finds deep wedges with far
    fewer expansions. *)

val pp_result : Format.formatter -> result -> unit
