lib/workloads/app_spec.ml: Buffer Format Fstream_graph Fstream_runtime Graph Graph_io In_channel List Printf Random String
