lib/workloads/app_spec.mli: Format Fstream_graph Fstream_runtime Graph
