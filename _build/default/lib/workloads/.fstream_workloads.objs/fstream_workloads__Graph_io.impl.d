lib/workloads/graph_io.ml: Buffer Fstream_graph Graph In_channel List Out_channel Printf String
