lib/workloads/graph_io.mli: Fstream_graph Graph
