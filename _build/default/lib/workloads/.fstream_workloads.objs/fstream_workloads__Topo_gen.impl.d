lib/workloads/topo_gen.ml: Array Fstream_graph Fstream_spdag Fun Graph List Random Sp_build Stdlib
