lib/workloads/topo_gen.mli: Fstream_graph Fstream_spdag Graph Random Sp_build
