open Fstream_graph

type behavior =
  | Passthrough
  | Drop
  | Bernoulli of float
  | Periodic of int
  | Route_one
  | Block of int

type t = {
  graph : Graph.t;
  behaviors : (Graph.node * behavior) list;
  default : behavior;
}

let pp_behavior ppf = function
  | Passthrough -> Format.pp_print_string ppf "passthrough"
  | Drop -> Format.pp_print_string ppf "drop"
  | Bernoulli p -> Format.fprintf ppf "bernoulli %g" p
  | Periodic k -> Format.fprintf ppf "periodic %d" k
  | Route_one -> Format.pp_print_string ppf "route-one"
  | Block e -> Format.fprintf ppf "block %d" e

let parse_behavior words =
  match words with
  | [ "passthrough" ] -> Ok Passthrough
  | [ "drop" ] -> Ok Drop
  | [ "bernoulli"; p ] -> (
    match float_of_string_opt p with
    | Some p when p >= 0. && p <= 1. -> Ok (Bernoulli p)
    | _ -> Error "bernoulli expects a probability in [0, 1]")
  | [ "periodic"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Periodic k)
    | _ -> Error "periodic expects a positive period")
  | [ "route-one" ] -> Ok Route_one
  | [ "block"; e ] -> (
    match int_of_string_opt e with
    | Some e -> Ok (Block e)
    | None -> Error "block expects an edge id")
  | _ -> Error "unknown behaviour"

let of_string text =
  (* Split behaviour directives out, hand the rest to Graph_io. *)
  let strip line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let lines = String.split_on_char '\n' text in
  let graph_lines = Buffer.create 256 in
  let result =
    List.fold_left
      (fun acc line ->
        match acc with
        | Error _ -> acc
        | Ok (behaviors, default) -> (
          let words =
            String.split_on_char ' ' (String.trim (strip line))
            |> List.filter (fun w -> w <> "")
          in
          match words with
          | "node" :: id :: rest -> (
            match (int_of_string_opt id, parse_behavior rest) with
            | Some v, Ok b -> Ok ((v, b) :: behaviors, default)
            | None, _ -> Error "node directive expects a node id"
            | _, Error e -> Error e)
          | "default" :: rest -> (
            match parse_behavior rest with
            | Ok b -> Ok (behaviors, b)
            | Error e -> Error e)
          | _ ->
            Buffer.add_string graph_lines line;
            Buffer.add_char graph_lines '\n';
            acc))
      (Ok ([], Passthrough))
      lines
  in
  match result with
  | Error e -> Error e
  | Ok (behaviors, default) -> (
    match Graph_io.of_string (Buffer.contents graph_lines) with
    | Error e -> Error e
    | Ok graph ->
      let bad =
        List.find_opt
          (fun (v, b) ->
            v < 0
            || v >= Graph.num_nodes graph
            ||
            match b with
            | Block e ->
              not
                (List.exists
                   (fun (edge : Graph.edge) -> edge.id = e)
                   (Graph.out_edges graph v))
            | _ -> false)
          behaviors
      in
      (match bad with
      | Some (v, _) ->
        Error (Printf.sprintf "node %d: bad node id or blocked channel" v)
      | None -> Ok { graph; behaviors = List.rev behaviors; default }))

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Graph_io.to_string t.graph);
  List.iter
    (fun (v, b) ->
      Buffer.add_string buf
        (Format.asprintf "node %d %a\n" v pp_behavior b))
    t.behaviors;
  Buffer.add_string buf (Format.asprintf "default %a\n" pp_behavior t.default);
  Buffer.contents buf

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let kernels t ~seed v =
  let module Filters = Fstream_runtime.Filters in
  let behavior =
    match List.assoc_opt v t.behaviors with
    | Some b -> b
    | None -> t.default
  in
  let outs =
    List.map (fun (e : Graph.edge) -> e.id) (Graph.out_edges t.graph v)
  in
  match behavior with
  | Passthrough -> Filters.passthrough outs
  | Drop -> Filters.drop_all outs
  | Bernoulli p ->
    Filters.bernoulli (Random.State.make [| seed; v |]) ~keep:p outs
  | Periodic k -> Filters.periodic ~keep_every:k outs
  | Route_one -> Filters.route_one (Random.State.make [| seed; v |]) outs
  | Block e -> Filters.block_edge e outs
