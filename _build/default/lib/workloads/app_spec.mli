(** Declarative application specifications.

    The paper's conclusion proposes extending a coordination language
    (their X language) with the filtering model; this module is the
    miniature version: one text file describes both the topology and
    each node's filtering behaviour, and compiles to runnable kernels.
    The [streamcheck simulate --file] command accepts it directly.

    Format (extends the {!Graph_io} format):
    {v
    nodes 4
    edge 0 1 2
    edge 1 3 2          # ...
    node 0 bernoulli 0.7    # keep each output with probability 0.7
    node 1 periodic 3       # keep every 3rd input
    node 2 block 4          # always filter channel 4
    default passthrough     # behaviour of unlisted nodes
    v}

    Behaviours: [passthrough], [drop], [bernoulli P], [periodic K],
    [route-one], [block E]. The default default is [passthrough]. *)

open Fstream_graph

type behavior =
  | Passthrough
  | Drop
  | Bernoulli of float
  | Periodic of int
  | Route_one
  | Block of int

type t = {
  graph : Graph.t;
  behaviors : (Graph.node * behavior) list;
  default : behavior;
}

val of_string : string -> (t, string) result
val to_string : t -> string
val load : string -> (t, string) result

val kernels : t -> seed:int -> Graph.node -> Fstream_runtime.Engine.kernel
(** Instantiate the behaviours as engine kernels; randomized behaviours
    draw from per-node states derived from [seed], so runs are
    reproducible and the kernels are safe for the parallel engine. *)

val pp_behavior : Format.formatter -> behavior -> unit
