open Fstream_graph

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let of_string text =
  let lines = String.split_on_char '\n' text in
  let parse (nodes, edges, lineno) line =
    match (nodes, edges, lineno) with
    | Error _, _, _ -> (nodes, edges, lineno + 1)
    | Ok n, edges, _ -> (
      let words =
        String.split_on_char ' ' (String.trim (strip_comment line))
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> (Ok n, edges, lineno + 1)
      | [ "nodes"; count ] -> (
        match int_of_string_opt count with
        | Some c when c >= 1 -> (Ok (Some c), edges, lineno + 1)
        | _ ->
          ( Error (Printf.sprintf "line %d: bad node count" lineno),
            edges,
            lineno + 1 ))
      | [ "edge"; src; dst; cap ] -> (
        match
          (int_of_string_opt src, int_of_string_opt dst, int_of_string_opt cap)
        with
        | Some s, Some d, Some c -> (Ok n, (s, d, c) :: edges, lineno + 1)
        | _ ->
          ( Error (Printf.sprintf "line %d: bad edge" lineno),
            edges,
            lineno + 1 ))
      | _ ->
        ( Error (Printf.sprintf "line %d: unrecognized directive" lineno),
          edges,
          lineno + 1 ))
  in
  let nodes, edges, _ = List.fold_left parse (Ok None, [], 1) lines in
  match nodes with
  | Error e -> Error e
  | Ok None -> Error "missing 'nodes N' directive"
  | Ok (Some n) -> (
    try Ok (Graph.make ~nodes:n (List.rev edges))
    with Invalid_argument msg -> Error msg)

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.num_nodes g));
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %d\n" e.src e.dst e.cap))
    (Graph.edges g);
  Buffer.contents buf

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let save path g = Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc (to_string g))
