(** Plain-text exchange format for streaming topologies.

    The format is line based:
    {v
    # comment
    nodes 4
    edge 0 1 3     # src dst buffer-capacity
    edge 1 3 2
    v}
    Blank lines and [#] comments are ignored. Used by the
    [streamcheck] CLI and by tests; [to_string]/[of_string] round-trip. *)

open Fstream_graph

val of_string : string -> (Graph.t, string) result
val to_string : Graph.t -> string

val load : string -> (Graph.t, string) result
(** Read a graph from a file path. *)

val save : string -> Graph.t -> unit
