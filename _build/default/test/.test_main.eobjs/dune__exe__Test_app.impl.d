test/test_app.ml: Alcotest App Compiler Engine Fstream_core Fstream_parallel Fstream_runtime Fstream_workloads Fun List Result Topo_gen
