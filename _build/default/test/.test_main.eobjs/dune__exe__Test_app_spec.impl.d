test/test_app_spec.ml: Alcotest App_spec Compiler Engine Fstream_core Fstream_graph Fstream_runtime Fstream_workloads List
