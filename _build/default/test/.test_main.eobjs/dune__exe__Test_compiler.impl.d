test/test_compiler.ml: Alcotest Array Compiler Format Fstream_core Fstream_graph Fstream_workloads Fun Interval List Topo_gen Tutil
