test/test_crossval.ml: Alcotest Array Compiler Fstream_core Fstream_workloads Fun Gen General Interval List QCheck Tutil
