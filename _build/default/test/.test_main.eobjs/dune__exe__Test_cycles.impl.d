test/test_cycles.ml: Alcotest Array Cycles Fstream_graph Fstream_workloads Fun Graph List Printf Topo_gen Tutil
