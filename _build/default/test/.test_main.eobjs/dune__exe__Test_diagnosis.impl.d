test/test_diagnosis.ml: Alcotest Array Cycles Diagnosis Engine Filters Fstream_graph Fstream_runtime Fstream_workloads Graph List Topo_gen Tutil
