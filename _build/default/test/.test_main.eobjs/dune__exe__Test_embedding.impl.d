test/test_embedding.ml: Alcotest Array Embedding Fstream_graph Fstream_ladder Fstream_workloads Graph List Topo_gen Tutil
