test/test_fig3.ml: Alcotest Compiler Fstream_core Fstream_spdag Fstream_workloads General Interval Sp_nonprop Sp_prop Topo_gen Tutil
