test/test_graph.ml: Alcotest Array Articulation Dominators Fstream_graph Fstream_workloads Fun Graph List Paths Topo Topo_gen Tutil
