test/test_interval.ml: Alcotest Fstream_core Interval QCheck Tutil
