test/test_io.ml: Alcotest Array Dot Fstream_graph Fstream_workloads Graph Graph_io List Printf QCheck String Topo_gen Tutil
