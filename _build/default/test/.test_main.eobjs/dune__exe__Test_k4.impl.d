test/test_k4.ml: Alcotest Fstream_graph Fstream_ladder Fstream_workloads Graph List Topo Topo_gen Tutil Undirected_sp
