test/test_ladder.ml: Alcotest Array Cs4 Cycles Format Fstream_graph Fstream_ladder Fstream_spdag Fstream_workloads Fun Graph Hashtbl Ladder List Sp_tree Topo Topo_gen Tutil
