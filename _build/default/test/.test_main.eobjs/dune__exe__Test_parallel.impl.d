test/test_parallel.ml: Alcotest Compiler Engine Filters Fstream_core Fstream_graph Fstream_parallel Fstream_runtime Fstream_workloads Random Topo_gen Tutil
