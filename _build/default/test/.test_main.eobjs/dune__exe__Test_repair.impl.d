test/test_repair.ml: Alcotest Cs4 Fstream_graph Fstream_ladder Fstream_repair Fstream_workloads Graph List QCheck Repair Topo_gen Tutil
