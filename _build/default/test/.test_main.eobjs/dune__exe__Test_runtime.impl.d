test/test_runtime.ml: Alcotest Buffer Channel Compiler Engine Filters Format Fstream_core Fstream_graph Fstream_runtime Fstream_workloads Message Random Topo_gen
