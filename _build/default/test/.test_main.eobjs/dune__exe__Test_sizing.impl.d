test/test_sizing.ml: Alcotest Array Compiler Fstream_core Fstream_workloads Fun Interval List QCheck Sizing Topo_gen Tutil
