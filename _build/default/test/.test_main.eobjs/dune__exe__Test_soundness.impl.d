test/test_soundness.ml: Alcotest Compiler Engine Filters Fstream_core Fstream_graph Fstream_runtime Fstream_workloads Graph List Random Tutil
