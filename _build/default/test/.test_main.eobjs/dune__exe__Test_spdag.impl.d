test/test_spdag.ml: Alcotest Array Cycles Dominators Fstream_graph Fstream_spdag Fstream_workloads Fun Graph List Paths Random Sp_build Sp_recognize Sp_tree Topo Topo_gen Tutil
