test/test_verify.ml: Alcotest Compiler Engine Filters Fstream_core Fstream_runtime Fstream_verify Fstream_workloads List Random String Topo_gen Tutil Verify
