test/test_workloads.ml: Alcotest Array Cs4 Cycles Format Fstream_graph Fstream_ladder Fstream_spdag Fstream_workloads Graph Ladder List Sp_recognize Topo Topo_gen Tutil
