test/tutil.ml: Alcotest Array Fstream_core Fstream_graph Fstream_workloads Graph Interval List QCheck QCheck_alcotest Random Topo
