  $ streamcheck classify --demo fig3 | tail -2
  $ streamcheck classify --demo butterfly | tail -2
