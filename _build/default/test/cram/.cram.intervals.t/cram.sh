  $ streamcheck intervals --demo fig3 --algorithm propagation
  $ streamcheck intervals --demo fig3 --algorithm non-propagation
