  $ streamcheck repair --demo butterfly | head -3
