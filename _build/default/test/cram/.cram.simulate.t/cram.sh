  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3
  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3 --avoidance none
