  $ cat > app.fstream <<'SPEC'
  > nodes 3
  > edge 0 1 2
  > edge 1 2 2
  > edge 0 2 2
  > node 0 block 2
  > SPEC
  $ streamcheck simulate --file app.fstream --inputs 100 --avoidance none
  $ streamcheck simulate --file app.fstream --inputs 100 --avoidance non-propagation
