  $ streamcheck verify --demo fig2 --avoidance non-propagation --inputs 4
  $ streamcheck verify --demo fig2 --avoidance none --inputs 4
