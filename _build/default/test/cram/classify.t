The hexagon of Fig. 3 is series-parallel:

  $ streamcheck classify --demo fig3 | tail -2
  CS4: serial composition of 1 block(s)
    block 0..3: series-parallel, 6 edges

The butterfly is rejected with the a-c-b-d witness:

  $ streamcheck classify --demo butterfly | tail -2
  not CS4: block 0..5 is neither SP nor an SP-ladder: missing cross-link at rail frontier
    witness cycle with sources {1, 2} and sinks {3, 4}
