Fig. 3 worked example, Propagation:

  $ streamcheck intervals --demo fig3 --algorithm propagation
  route: CS4 (1 SP block, 0 ladders)
  edge   channel     cap   interval  threshold
  e0       0 -> 1       2          6          6
  e1       1 -> 2       5        inf          1
  e2       2 -> 3       1        inf          1
  e3       0 -> 4       3          8          8
  e4       4 -> 5       1        inf          1
  e5       5 -> 3       2        inf          1

And Non-Propagation:

  $ streamcheck intervals --demo fig3 --algorithm non-propagation
  route: CS4 (1 SP block, 0 ladders)
  edge   channel     cap   interval  threshold
  e0       0 -> 1       2          2          2
  e1       1 -> 2       5          2          2
  e2       2 -> 3       1          2          2
  e3       0 -> 4       3        8/3          2
  e4       4 -> 5       1        8/3          2
  e5       5 -> 3       2        8/3          2
