The butterfly repairs into a ladder in one reroute:

  $ streamcheck repair --demo butterfly | head -3
  repaired: 1 channel(s) deleted, 1 added
    reroute 1->3 via 4 (added 4->3)
  reachability preserved: true
