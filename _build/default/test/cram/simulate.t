Fig. 2 under a random filtering workload, protected:

  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3
  completed: 206 rounds, 314 data msgs, 201 dummy msgs, 188 data at sinks

Unprotected it wedges, and the CLI prints the witness cycle:

  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3 --avoidance none
  deadlock state:
    e0 0->1 cap=2 len=0 head=- last_sent=10
    e1 1->2 cap=2 len=0 head=- last_sent=8
    e2 0->2 cap=2 len=2 head=#9:9 last_sent=11
    node 0 pending:1 next_in=12
  DEADLOCKED: 13 rounds, 24 data msgs, 0 dummy msgs, 13 data at sinks
  deadlock witness cycle (§II.B):
    full:  e2 (0->2)
    empty: e1 (1->2), e0 (0->1)
  [2]
