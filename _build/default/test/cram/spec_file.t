An application spec file carries both topology and filtering behaviour
(this one is the Fig. 2 wedge):

  $ cat > app.fstream <<'SPEC'
  > nodes 3
  > edge 0 1 2
  > edge 1 2 2
  > edge 0 2 2
  > node 0 block 2
  > SPEC

  $ streamcheck simulate --file app.fstream --inputs 100 --avoidance none
  deadlock state:
    e0 0->1 cap=2 len=2 head=#3:3 last_sent=5
    e1 1->2 cap=2 len=2 head=#0:0 last_sent=2
    e2 0->2 cap=2 len=0 head=- last_sent=-1
    node 0 pending:1 next_in=6
    node 1 pending:1 next_in=0
  DEADLOCKED: 7 rounds, 7 data msgs, 0 dummy msgs, 0 data at sinks
  deadlock witness cycle (§II.B):
    full:  e0 (0->1), e1 (1->2)
    empty: e2 (0->2)
  [2]

  $ streamcheck simulate --file app.fstream --inputs 100 --avoidance non-propagation
  completed: 105 rounds, 200 data msgs, 25 dummy msgs, 100 data at sinks
