Exhaustive check of Fig. 2 with the Non-Propagation wrapper:

  $ streamcheck verify --demo fig2 --avoidance non-propagation --inputs 4
  safe (20396 states explored, all filtering choices)

And without avoidance (exit code 2, trace found):

  $ streamcheck verify --demo fig2 --avoidance none --inputs 4
  deadlocks after 200 states; trace:
      n0 fires seq 0, keeps {2}
      n0 delivers #0 on e2
      n0 fires seq 1, keeps {2}
      n0 delivers #1 on e2
      n0 fires seq 2, keeps {2}
  
  [2]
