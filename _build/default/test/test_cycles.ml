open Fstream_graph
open Fstream_workloads

let count g = Cycles.count g

let test_counts () =
  Alcotest.(check int) "triangle has one cycle" 1
    (count (Topo_gen.fig2_triangle ~cap:1));
  Alcotest.(check int) "hexagon has one cycle" 1
    (count (Topo_gen.fig3_hexagon ()));
  Alcotest.(check int) "butterfly has 7 cycles" 7
    (count (Topo_gen.fig4_butterfly ~cap:1));
  Alcotest.(check int) "parallel pair has one cycle" 1
    (count (Graph.make ~nodes:2 [ (0, 1, 1); (0, 1, 2) ]));
  Alcotest.(check int) "triple multi-edge has three cycles" 3
    (count (Graph.make ~nodes:2 [ (0, 1, 1); (0, 1, 2); (0, 1, 3) ]));
  Alcotest.(check int) "tree has no cycles" 0
    (count (Graph.make ~nodes:3 [ (0, 1, 1); (0, 2, 1) ]))

let test_bypassed_diamond_counts () =
  (* k in-diamond cycles plus 2^k bypass cycles *)
  List.iter
    (fun k ->
      let g = Topo_gen.diamond_chain ~bypass:true ~diamonds:k ~cap:1 () in
      Alcotest.(check int)
        (Printf.sprintf "diamond chain k=%d" k)
        ((1 lsl k) + k) (count g))
    [ 1; 2; 3; 4; 5; 6 ]

let test_max_cycles_guard () =
  let g = Topo_gen.diamond_chain ~bypass:true ~diamonds:10 ~cap:1 () in
  Alcotest.check_raises "enumeration bail-out"
    (Failure "Cycles.enumerate: max_cycles exceeded") (fun () ->
      ignore (Cycles.enumerate ~max_cycles:100 g))

let test_runs_hexagon () =
  let g = Topo_gen.fig3_hexagon () in
  match Cycles.enumerate g with
  | [ c ] ->
    let runs = Cycles.runs c in
    Alcotest.(check int) "two runs" 2 (Array.length runs);
    Alcotest.(check (list int)) "single source a" [ 0 ] (Cycles.cycle_sources c);
    Alcotest.(check (list int)) "single sink f" [ 3 ] (Cycles.cycle_sinks c);
    Alcotest.(check bool) "CS4 cycle" true (Cycles.is_cs4_cycle c);
    let caps =
      List.sort compare (Array.to_list (Array.map Cycles.run_caps runs))
    in
    Alcotest.(check (list int)) "run cap totals are 6 and 8" [ 6; 8 ] caps;
    Alcotest.(check (list int)) "run hops" [ 3; 3 ]
      (Array.to_list (Array.map Cycles.run_hops runs));
    Alcotest.(check (array int)) "opposite pairing" [| 1; 0 |]
      (Cycles.opposite_run c)
  | l -> Alcotest.failf "expected one cycle, got %d" (List.length l)

let test_butterfly_bad_cycle () =
  let g = Topo_gen.fig4_butterfly ~cap:1 in
  let bad = List.filter (fun c -> not (Cycles.is_cs4_cycle c)) (Cycles.enumerate g) in
  Alcotest.(check int) "exactly one multi-source cycle (a-c-b-d)" 1
    (List.length bad);
  match bad with
  | [ c ] ->
    Alcotest.(check int) "it has two sources" 2
      (List.length (Cycles.cycle_sources c));
    Alcotest.(check (list int)) "sources are the middle splits a,b" [ 1; 2 ]
      (Cycles.cycle_sources c);
    Alcotest.(check (list int)) "sinks are c,d" [ 3; 4 ] (Cycles.cycle_sinks c)
  | _ -> assert false

let prop_cycle_wellformed =
  Tutil.qtest ~count:100 "cycles are closed walks with distinct edges"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      List.for_all
        (fun c ->
          let ids = List.map (fun o -> o.Cycles.edge.Graph.id) c in
          let distinct = List.length (List.sort_uniq compare ids) = List.length ids in
          let verts = Cycles.vertices c in
          let distinct_v =
            List.length (List.sort_uniq compare verts) = List.length verts
          in
          (* closed: walking the orientations returns to the start *)
          let closed =
            let rec walk v = function
              | [] -> Some v
              | o :: rest -> walk (Graph.other_endpoint o.Cycles.edge v) rest
            in
            match (verts, walk (List.hd verts) c) with
            | v0 :: _, Some v -> v = v0
            | _ -> false
          in
          distinct && distinct_v && closed && List.length c >= 2)
        (Cycles.enumerate g))

let prop_runs_partition =
  Tutil.qtest ~count:100 "runs partition each cycle and alternate"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      List.for_all
        (fun c ->
          let runs = Cycles.runs c in
          let total =
            Array.fold_left (fun a r -> a + Cycles.run_hops r) 0 runs
          in
          let even = Array.length runs mod 2 = 0 in
          let opp = Cycles.opposite_run c in
          let involutive =
            Array.for_all Fun.id
              (Array.mapi (fun i j -> opp.(j) = i && j <> i) opp)
          in
          total = List.length c && even && involutive
          && Array.for_all
               (fun (r : Cycles.run) ->
                 (* run edges form a directed path source -> sink *)
                 let rec follow v = function
                   | [] -> v = r.run_sink
                   | (e : Graph.edge) :: rest -> e.src = v && follow e.dst rest
                 in
                 follow r.run_source r.run_edges)
               runs)
        (Cycles.enumerate g))

let prop_sources_share_opposite =
  Tutil.qtest ~count:100 "a run and its opposite share their source"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      List.for_all
        (fun c ->
          let runs = Cycles.runs c in
          let opp = Cycles.opposite_run c in
          Array.for_all Fun.id
            (Array.mapi
               (fun i j ->
                 runs.(i).Cycles.run_source = runs.(j).Cycles.run_source)
               opp))
        (Cycles.enumerate g))

let suite =
  [
    Alcotest.test_case "known cycle counts" `Quick test_counts;
    Alcotest.test_case "bypassed diamond counts" `Quick
      test_bypassed_diamond_counts;
    Alcotest.test_case "max_cycles guard" `Quick test_max_cycles_guard;
    Alcotest.test_case "hexagon run structure" `Quick test_runs_hexagon;
    Alcotest.test_case "butterfly bad cycle" `Quick test_butterfly_bad_cycle;
    prop_cycle_wellformed;
    prop_runs_partition;
    prop_sources_share_opposite;
  ]
