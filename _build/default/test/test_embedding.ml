open Fstream_graph
open Fstream_ladder
open Fstream_workloads

let certify g =
  match Embedding.of_graph g with
  | Error e -> Alcotest.fail e
  | Ok rot ->
    Alcotest.(check bool) "wellformed" true (Embedding.check_wellformed g rot);
    Alcotest.(check bool) "euler" true (Embedding.euler_ok g rot);
    rot

let test_figures () =
  ignore (certify (Graph.make ~nodes:2 [ (0, 1, 1) ]));
  ignore (certify (Graph.make ~nodes:2 [ (0, 1, 1); (0, 1, 1); (0, 1, 1) ]));
  ignore (certify (Topo_gen.fig1_split_join ~branches:5 ~cap:1));
  ignore (certify (Topo_gen.fig2_triangle ~cap:1));
  ignore (certify (Topo_gen.fig3_hexagon ()));
  ignore (certify (Topo_gen.fig4_left ~cap:1));
  ignore (certify (Topo_gen.fig5_ladder ~cap:1));
  ignore (certify (Topo_gen.wide_ladder ~rungs:7 ~cap:1));
  ignore (certify (Topo_gen.pipeline ~stages:6 ~cap:1))

let test_face_counts () =
  (* a planar two-terminal graph with c independent cycles has c + 1
     faces: the hexagon has 1 cycle, fig4-left 2, fig5 has 7 *)
  let count g =
    match Embedding.of_graph g with
    | Ok rot -> Embedding.faces g rot
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "hexagon faces" 2 (count (Topo_gen.fig3_hexagon ()));
  Alcotest.(check int) "fig4-left faces" 3 (count (Topo_gen.fig4_left ~cap:1));
  Alcotest.(check int) "pipeline faces" 1 (count (Topo_gen.pipeline ~stages:3 ~cap:1))

let test_butterfly_rejected () =
  match Embedding.of_graph (Topo_gen.fig4_butterfly ~cap:1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "butterfly has no CS4 decomposition to embed"

let test_nonplanar_sanity () =
  (* the face tracer must not validate a non-planar graph: K3,3 with
     edge-id-ordered rotations fails Euler *)
  let edges =
    List.concat_map (fun a -> List.map (fun b -> (a, b, 1)) [ 3; 4; 5 ]) [ 0; 1; 2 ]
  in
  let g = Graph.make ~nodes:6 edges in
  let rot =
    Array.init 6 (fun v ->
        List.concat_map
          (fun (e : Graph.edge) ->
            if e.src = v then [ 2 * e.id ]
            else if e.dst = v then [ (2 * e.id) + 1 ]
            else [])
          (Graph.edges g))
  in
  Alcotest.(check bool) "rotation wellformed" true
    (Embedding.check_wellformed g rot);
  Alcotest.(check bool) "K3,3 fails Euler" false (Embedding.euler_ok g rot)

let prop_corollary_v2 =
  (* Corollary V.2, constructively: every CS4 graph we can generate
     admits a genus-zero rotation system built from its decomposition *)
  Tutil.qtest ~count:300 "Corollary V.2 on random CS4 graphs" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Embedding.of_graph g with
      | Error _ -> false
      | Ok rot -> Embedding.check_wellformed g rot && Embedding.euler_ok g rot)

let prop_ladders_planar =
  Tutil.qtest ~count:200 "ladder embeddings are planar" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_ladder_of_seed seed in
      match Embedding.of_graph g with
      | Error _ -> false
      | Ok rot -> Embedding.euler_ok g rot)

let suite =
  [
    Alcotest.test_case "figure graphs embed" `Quick test_figures;
    Alcotest.test_case "face counts" `Quick test_face_counts;
    Alcotest.test_case "butterfly rejected" `Quick test_butterfly_rejected;
    Alcotest.test_case "non-planar sanity (K3,3)" `Quick test_nonplanar_sanity;
    prop_corollary_v2;
    prop_ladders_planar;
  ]
