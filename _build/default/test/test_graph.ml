open Fstream_graph
open Fstream_workloads

let diamond () =
  (* 0 -> {1,2} -> 3 *)
  Graph.make ~nodes:4 [ (0, 1, 2); (0, 2, 3); (1, 3, 4); (2, 3, 5) ]

let test_make_validation () =
  Alcotest.check_raises "self loop rejected"
    (Invalid_argument "Graph.make: self-loop") (fun () ->
      ignore (Graph.make ~nodes:2 [ (0, 0, 1) ]));
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Graph.make: cap < 1") (fun () ->
      ignore (Graph.make ~nodes:2 [ (0, 1, 0) ]));
  Alcotest.check_raises "out of range endpoint"
    (Invalid_argument "Graph.make: node 2 out of range") (fun () ->
      ignore (Graph.make ~nodes:2 [ (0, 2, 1) ]))

let test_accessors () =
  let g = diamond () in
  Alcotest.(check int) "num_nodes" 4 (Graph.num_nodes g);
  Alcotest.(check int) "num_edges" 4 (Graph.num_edges g);
  Alcotest.(check int) "size = |V| + |E|" 8 (Graph.size g);
  Alcotest.(check int) "out degree of source" 2 (Graph.out_degree g 0);
  Alcotest.(check int) "in degree of sink" 2 (Graph.in_degree g 3);
  Alcotest.(check (list int)) "sources" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Graph.sinks g);
  let e = Graph.edge g 1 in
  Alcotest.(check int) "other_endpoint src side" 2 (Graph.other_endpoint e 0);
  Alcotest.(check int) "other_endpoint dst side" 0 (Graph.other_endpoint e 2);
  Alcotest.(check int) "incident count at junction" 2
    (List.length (Graph.incident_edges g 1))

let test_parallel_edges () =
  let g = Graph.make ~nodes:2 [ (0, 1, 1); (0, 1, 2); (0, 1, 3) ] in
  let e0 = Graph.edge g 0 in
  Alcotest.(check (list int)) "parallel edges of e0" [ 1; 2 ]
    (List.map (fun (e : Graph.edge) -> e.id) (Graph.parallel_edges g e0))

let test_reverse () =
  let g = diamond () in
  let r = Graph.reverse g in
  Alcotest.(check (list int)) "reversed sources" [ 3 ] (Graph.sources r);
  let e = Graph.edge r 0 in
  Alcotest.(check (pair int int)) "edge flipped" (1, 0) (e.src, e.dst);
  Alcotest.(check int) "caps preserved" 2 e.cap

let test_topo () =
  let g = diamond () in
  (match Topo.order g with
  | None -> Alcotest.fail "diamond should be a DAG"
  | Some o ->
    let rank = Topo.rank g in
    List.iter
      (fun (e : Graph.edge) ->
        Alcotest.(check bool) "edges go forward" true (rank.(e.src) < rank.(e.dst)))
      (Graph.edges g);
    Alcotest.(check int) "order covers all nodes" 4 (List.length o));
  Alcotest.(check bool) "two-terminal" true
    (Topo.is_two_terminal g = Some (0, 3));
  let disconnected = Graph.make ~nodes:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.(check bool) "disconnected is not connected" false
    (Topo.connected disconnected);
  Alcotest.(check bool) "disconnected is not two-terminal" true
    (Topo.is_two_terminal disconnected = None)

let test_reachability () =
  let g = Graph.make ~nodes:5 [ (0, 1, 1); (1, 2, 1); (3, 4, 1); (0, 3, 1) ] in
  let r = Topo.reachable g 1 in
  Alcotest.(check bool) "1 reaches 2" true r.(2);
  Alcotest.(check bool) "1 does not reach 3" false r.(3);
  let c = Topo.co_reachable g 4 in
  Alcotest.(check bool) "0 co-reaches 4" true c.(0);
  Alcotest.(check bool) "1 does not co-reach 4" false c.(1)

let test_dominators () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4 *)
  let g =
    Graph.make ~nodes:5
      [ (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 3, 1); (3, 4, 1) ]
  in
  let idom = Dominators.idoms g 0 in
  Alcotest.(check int) "idom of 3 is 0 (join)" 0 idom.(3);
  Alcotest.(check int) "idom of 4 is 3" 3 idom.(4);
  Alcotest.(check bool) "0 dominates 4" true (Dominators.dominates g 0 0 4);
  Alcotest.(check bool) "1 does not dominate 3" false
    (Dominators.dominates g 0 1 3);
  let ipd = Dominators.ipostdoms g 4 in
  Alcotest.(check int) "ipostdom of 0 is 3" 3 ipd.(0);
  Alcotest.(check int) "ipostdom of 1 is 3" 3 ipd.(1)

let test_articulation () =
  (* two diamonds in series share node 3 *)
  let g =
    Graph.make ~nodes:7
      [
        (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 3, 1);
        (3, 4, 1); (3, 5, 1); (4, 6, 1); (5, 6, 1);
      ]
  in
  Alcotest.(check (list int)) "cut vertex" [ 3 ] (Articulation.articulation_points g);
  let comps = Articulation.biconnected_components g in
  Alcotest.(check int) "two blocks" 2 (List.length comps);
  let blocks = Articulation.serial_blocks g in
  Alcotest.(check (list (pair int int))) "block chain"
    [ (0, 3); (3, 6) ]
    (List.map (fun (a, b, _) -> (a, b)) blocks)

let test_bridge_blocks () =
  let g = Topo_gen.pipeline ~stages:4 ~cap:1 in
  let blocks = Articulation.serial_blocks g in
  Alcotest.(check int) "every pipeline edge is a block" 4 (List.length blocks);
  Alcotest.(check (list int)) "inner nodes are all cut vertices" [ 1; 2; 3 ]
    (Articulation.articulation_points g)

let test_paths () =
  let g = diamond () in
  Alcotest.(check (option int)) "shortest caps source->sink" (Some 6)
    (Paths.shortest_caps g ~src:0 ~dst:3);
  Alcotest.(check (option int)) "longest hops" (Some 2)
    (Paths.longest_hops g ~src:0 ~dst:3);
  Alcotest.(check (option int)) "unreachable pair" None
    (Paths.shortest_caps g ~src:1 ~dst:2);
  let through = Paths.longest_hops_through g ~src:0 ~dst:3 in
  Alcotest.(check (array (option int))) "through-hops per edge"
    [| Some 2; Some 2; Some 2; Some 2 |]
    through

let test_paths_weighted () =
  let g =
    Graph.make ~nodes:4 [ (0, 1, 5); (1, 3, 5); (0, 2, 1); (2, 3, 1); (0, 3, 7) ]
  in
  Alcotest.(check (option int)) "min cap path picks cheap branch" (Some 2)
    (Paths.shortest_caps g ~src:0 ~dst:3);
  let lf = Paths.longest_from g 0 ~weight:(fun e -> e.cap) in
  Alcotest.(check (option int)) "longest weighted" (Some 10) lf.(3);
  let st = Paths.shortest_to g 3 ~weight:(fun _ -> 1) in
  Alcotest.(check (option int)) "shortest hops to sink from 0" (Some 1) st.(0)

let prop_block_edges_partition =
  Tutil.qtest "biconnected components partition the edges" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      let comps = Articulation.biconnected_components g in
      let ids =
        List.concat_map (List.map (fun (e : Graph.edge) -> e.id)) comps
      in
      List.sort compare ids = List.init (Graph.num_edges g) Fun.id)

let prop_serial_blocks_chain =
  Tutil.qtest "serial blocks chain source to sink" Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Topo.is_two_terminal g with
      | None -> false
      | Some (x, y) ->
        let blocks = Articulation.serial_blocks g in
        let rec chain expected = function
          | [] -> expected = y
          | (a, b, _) :: rest -> a = expected && chain b rest
        in
        chain x blocks)

(* brute-force enumeration of all simple directed paths, for
   cross-checking the DP path routines on small graphs *)
let all_paths g ~src ~dst =
  let rec go v visited =
    if v = dst then [ [] ]
    else
      List.concat_map
        (fun (e : Graph.edge) ->
          if List.mem e.dst visited then []
          else List.map (fun p -> e :: p) (go e.dst (e.dst :: visited)))
        (Graph.out_edges g v)
  in
  go src [ src ]

let prop_paths_vs_bruteforce =
  Tutil.qtest ~count:100 "DP paths match brute-force enumeration"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_sp_of_seed ~max_edges:10 seed in
      match Topo.is_two_terminal g with
      | None -> false
      | Some (x, y) ->
        let paths = all_paths g ~src:x ~dst:y in
        let caps p = List.fold_left (fun a (e : Graph.edge) -> a + e.cap) 0 p in
        let shortest =
          List.fold_left (fun a p -> min a (caps p)) max_int paths
        in
        let longest_hops =
          List.fold_left (fun a p -> max a (List.length p)) 0 paths
        in
        Paths.shortest_caps g ~src:x ~dst:y = Some shortest
        && Paths.longest_hops g ~src:x ~dst:y = Some longest_hops)

let prop_through_hops_vs_bruteforce =
  Tutil.qtest ~count:60 "through-hops match brute force" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_sp_of_seed ~max_edges:8 seed in
      match Topo.is_two_terminal g with
      | None -> false
      | Some (x, y) ->
        let paths = all_paths g ~src:x ~dst:y in
        let through = Paths.longest_hops_through g ~src:x ~dst:y in
        List.for_all
          (fun (e : Graph.edge) ->
            let best =
              List.fold_left
                (fun a p ->
                  if List.exists (fun (e' : Graph.edge) -> e'.id = e.id) p
                  then max a (List.length p)
                  else a)
                0 paths
            in
            through.(e.id) = (if best = 0 then None else Some best))
          (Graph.edges g))

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "topological order" `Quick test_topo;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "articulation points" `Quick test_articulation;
    Alcotest.test_case "bridge blocks" `Quick test_bridge_blocks;
    Alcotest.test_case "paths on diamond" `Quick test_paths;
    Alcotest.test_case "weighted paths" `Quick test_paths_weighted;
    prop_block_edges_partition;
    prop_serial_blocks_chain;
    prop_paths_vs_bruteforce;
    prop_through_hops_vs_bruteforce;
  ]
