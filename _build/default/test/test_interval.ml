open Fstream_core

let check = Alcotest.check Tutil.interval

let test_construction () =
  check "of_int normalizes to den 1" (Interval.of_int 5) (Interval.ratio 10 2);
  check "ratio reduces by gcd" (Interval.ratio 2 3) (Interval.ratio 8 12);
  Alcotest.check_raises "of_int 0 rejected"
    (Invalid_argument "Interval.of_int: not positive") (fun () ->
      ignore (Interval.of_int 0));
  Alcotest.check_raises "ratio with zero den rejected"
    (Invalid_argument "Interval.ratio: not positive") (fun () ->
      ignore (Interval.ratio 1 0))

let test_compare () =
  Alcotest.(check bool)
    "1/2 < 2/3" true
    (Interval.compare (Interval.ratio 1 2) (Interval.ratio 2 3) < 0);
  Alcotest.(check bool)
    "inf greater than any finite" true
    (Interval.compare Interval.inf (Interval.of_int max_int) > 0);
  check "min picks finite" (Interval.of_int 3)
    (Interval.min Interval.inf (Interval.of_int 3));
  check "min of ratios" (Interval.ratio 8 3)
    (Interval.min (Interval.ratio 8 3) (Interval.of_int 3))

let test_rounding () =
  Alcotest.(check (option int)) "ceil 8/3 = 3 (Fig. 3 roundup)" (Some 3)
    (Interval.ceil_opt (Interval.ratio 8 3));
  Alcotest.(check (option int)) "floor 8/3 = 2" (Some 2)
    (Interval.floor_opt (Interval.ratio 8 3));
  Alcotest.(check (option int)) "ceil of integral is itself" (Some 6)
    (Interval.ceil_opt (Interval.of_int 6));
  Alcotest.(check (option int)) "ceil of inf is none" None
    (Interval.ceil_opt Interval.inf);
  Alcotest.(check (option int)) "threshold clamps to >= 1" (Some 1)
    (Interval.threshold (Interval.ratio 1 4));
  Alcotest.(check (option int)) "threshold of inf is none" None
    (Interval.threshold Interval.inf)

let test_add_int () =
  check "add_int on finite" (Interval.ratio 7 3)
    (Interval.add_int (Interval.ratio 1 3) 2);
  check "add_int absorbs on inf" Interval.inf (Interval.add_int Interval.inf 5)

let test_to_float () =
  Alcotest.(check (float 1e-9)) "2/4 = 0.5" 0.5
    (Interval.to_float (Interval.ratio 2 4));
  Alcotest.(check bool) "inf maps to infinity" true
    (Interval.to_float Interval.inf = infinity)

let pos_pair = QCheck.(pair (int_range 1 1000) (int_range 1 1000))

let prop_min_commutes =
  Tutil.qtest "min commutes"
    QCheck.(pair pos_pair pos_pair)
    (fun ((a, b), (c, d)) ->
      let x = Interval.ratio a b and y = Interval.ratio c d in
      Interval.equal (Interval.min x y) (Interval.min y x))

let prop_floor_ceil =
  Tutil.qtest "floor <= value <= ceil, gap < 1" pos_pair (fun (a, b) ->
      let v = Interval.ratio a b in
      match (Interval.floor_opt v, Interval.ceil_opt v) with
      | Some f, Some c ->
        let x = Interval.to_float v in
        float_of_int f <= x && x <= float_of_int c && c - f <= 1
      | _ -> false)

let prop_compare_total =
  Tutil.qtest "compare is consistent with to_float"
    QCheck.(pair pos_pair pos_pair)
    (fun ((a, b), (c, d)) ->
      let x = Interval.ratio a b and y = Interval.ratio c d in
      let cf = compare (Interval.to_float x) (Interval.to_float y) in
      (* float comparison is exact here: numerators/denominators are small *)
      compare (Interval.compare x y) 0 = compare cf 0)

let prop_min_assoc =
  Tutil.qtest "min associates"
    QCheck.(triple pos_pair pos_pair pos_pair)
    (fun ((a, b), (c, d), (e, f)) ->
      let x = Interval.ratio a b
      and y = Interval.ratio c d
      and z = Interval.ratio e f in
      Interval.equal
        (Interval.min x (Interval.min y z))
        (Interval.min (Interval.min x y) z))

let prop_threshold_bounds =
  Tutil.qtest "1 <= threshold <= ceil" pos_pair (fun (a, b) ->
      let v = Interval.ratio a b in
      match (Interval.threshold v, Interval.ceil_opt v) with
      | Some t, Some c -> 1 <= t && t <= c
      | _ -> false)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "compare and min" `Quick test_compare;
    Alcotest.test_case "rounding" `Quick test_rounding;
    Alcotest.test_case "add_int" `Quick test_add_int;
    Alcotest.test_case "to_float" `Quick test_to_float;
    prop_min_commutes;
    prop_floor_ceil;
    prop_compare_total;
    prop_min_assoc;
    prop_threshold_bounds;
  ]
