open Fstream_graph
open Fstream_workloads

let test_roundtrip () =
  let g = Topo_gen.fig3_hexagon () in
  match Graph_io.of_string (Graph_io.to_string g) with
  | Error e -> Alcotest.fail e
  | Ok g' ->
    Alcotest.(check int) "nodes" (Graph.num_nodes g) (Graph.num_nodes g');
    Alcotest.(check (list (triple int int int))) "edges"
      (List.map (fun (e : Graph.edge) -> (e.src, e.dst, e.cap)) (Graph.edges g))
      (List.map (fun (e : Graph.edge) -> (e.src, e.dst, e.cap)) (Graph.edges g'))

let test_comments_and_blanks () =
  let text = "# header\n\nnodes 3\nedge 0 1 2  # channel one\n\nedge 1 2 4\n" in
  match Graph_io.of_string text with
  | Error e -> Alcotest.fail e
  | Ok g ->
    Alcotest.(check int) "nodes parsed" 3 (Graph.num_nodes g);
    Alcotest.(check int) "edges parsed" 2 (Graph.num_edges g);
    Alcotest.(check int) "capacity parsed" 4 (Graph.edge g 1).cap

let test_errors () =
  let bad l =
    match Graph_io.of_string l with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "missing nodes" true (bad "edge 0 1 2\n");
  Alcotest.(check bool) "garbage directive" true (bad "nodes 2\nfoo\n");
  Alcotest.(check bool) "bad arity" true (bad "nodes 2\nedge 0 1\n");
  Alcotest.(check bool) "non-numeric" true (bad "nodes 2\nedge 0 x 1\n");
  Alcotest.(check bool) "semantic error surfaces" true
    (bad "nodes 2\nedge 0 0 1\n")

let prop_roundtrip =
  Tutil.qtest "to_string/of_string round-trips" Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Graph_io.of_string (Graph_io.to_string g) with
      | Error _ -> false
      | Ok g' ->
        Graph.num_nodes g = Graph.num_nodes g'
        && List.equal
             (fun (a : Graph.edge) (b : Graph.edge) ->
               a.src = b.src && a.dst = b.dst && a.cap = b.cap)
             (Graph.edges g) (Graph.edges g'))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let prop_parser_total =
  (* the parser is total: arbitrary byte soup yields Ok or Error,
     never an exception *)
  Tutil.qtest ~count:300 "of_string never raises"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun s ->
      match Graph_io.of_string s with Ok _ | Error _ -> true)

let test_dot () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let dot = Dot.render g in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains dot needle))
    [ "digraph stream"; "n0 -> n1"; "n1 -> n2"; "n0 -> n2"; "label=\"2\"" ]

let test_dot_decorations () =
  let g = Topo_gen.fig2_triangle ~cap:1 in
  let dot =
    Dot.render
      ~node_label:(fun v -> [| "A"; "B"; "C" |].(v))
      ~edge_class:(fun e -> if e.Graph.id = 2 then Some "filtered" else None)
      g
  in
  Alcotest.(check bool) "custom node label" true
    (contains dot "label=\"A\"");
  Alcotest.(check bool) "edge class attribute" true
    (contains dot "class=\"filtered\"")

let suite =
  [
    Alcotest.test_case "graph file round-trip" `Quick test_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "dot rendering" `Quick test_dot;
    Alcotest.test_case "dot decorations" `Quick test_dot_decorations;
    prop_roundtrip;
    prop_parser_total;
  ]
