open Fstream_graph
open Fstream_workloads

let k4_dag () =
  Graph.make ~nodes:4
    [ (0, 1, 1); (0, 2, 1); (0, 3, 1); (1, 2, 1); (1, 3, 1); (2, 3, 1) ]

let test_known_graphs () =
  Alcotest.(check bool) "K4 itself has a K4 subdivision" true
    (Undirected_sp.has_k4_subdivision (k4_dag ()));
  Alcotest.(check bool) "butterfly has a K4 subdivision" true
    (Undirected_sp.has_k4_subdivision (Topo_gen.fig4_butterfly ~cap:1));
  Alcotest.(check bool) "fig4 left has none" false
    (Undirected_sp.has_k4_subdivision (Topo_gen.fig4_left ~cap:1));
  Alcotest.(check bool) "hexagon has none" false
    (Undirected_sp.has_k4_subdivision (Topo_gen.fig3_hexagon ()));
  Alcotest.(check bool) "fig5 ladder has none" false
    (Undirected_sp.has_k4_subdivision (Topo_gen.fig5_ladder ~cap:1));
  Alcotest.(check bool) "pipeline is undirected SP" true
    (Undirected_sp.is_undirected_sp (Topo_gen.pipeline ~stages:5 ~cap:1));
  Alcotest.(check bool) "multi-edge is undirected SP" true
    (Undirected_sp.is_undirected_sp
       (Graph.make ~nodes:2 [ (0, 1, 1); (0, 1, 1); (0, 1, 1) ]))

let test_k5_contains_k4 () =
  (* Corollary V.2's premise: K5 (as a DAG) contains K4 homeomorphs *)
  let edges = ref [] in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      edges := (i, j, 1) :: !edges
    done
  done;
  let k5 = Graph.make ~nodes:5 (List.rev !edges) in
  Alcotest.(check bool) "K5 has a K4 subdivision" true
    (Undirected_sp.has_k4_subdivision k5)

let prop_lemma_v1 =
  (* Lemma V.1: CS4 implies no K4 subdivision. *)
  Tutil.qtest ~count:300 "Lemma V.1 on random DAGs" Tutil.seed_gen (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      (not (Fstream_ladder.Cs4.is_cs4 g))
      || not (Undirected_sp.has_k4_subdivision g))

let prop_lemma_v6_converse =
  (* The constructive content of Lemma V.6: a two-terminal DAG that is
     not CS4 contains a K4 subdivision (crossing chords / non-SP chord
     graphs are exactly the K4 witnesses its proof builds). *)
  Tutil.qtest ~count:300 "non-CS4 two-terminal DAGs contain K4"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      match Topo.is_two_terminal g with
      | None -> true
      | Some _ ->
        Fstream_ladder.Cs4.is_cs4 g || Undirected_sp.has_k4_subdivision g)

let prop_sp_families_no_k4 =
  Tutil.qtest ~count:200 "generated CS4 families are K4-free"
    Tutil.seed_gen (fun seed ->
      Undirected_sp.is_undirected_sp (Tutil.random_cs4_of_seed seed))

let suite =
  [
    Alcotest.test_case "known graphs" `Quick test_known_graphs;
    Alcotest.test_case "K5 contains K4" `Quick test_k5_contains_k4;
    prop_lemma_v1;
    prop_lemma_v6_converse;
    prop_sp_families_no_k4;
  ]
