open Fstream_graph
open Fstream_spdag
open Fstream_ladder
open Fstream_workloads

let recognize g =
  match Topo.is_two_terminal g with
  | Some (x, y) ->
    Ladder.recognize_block ~nodes:(Graph.num_nodes g) ~source:x ~sink:y
      (Graph.edges g)
  | None -> Error "not two-terminal"

let test_fig4_left () =
  match recognize (Topo_gen.fig4_left ~cap:1) with
  | Error e -> Alcotest.failf "fig4 left should be a ladder: %s" e
  | Ok lad ->
    Alcotest.(check int) "one rung" 1 (Ladder.num_rungs lad);
    Alcotest.(check int) "source X" 0 lad.Ladder.source;
    Alcotest.(check int) "sink Y" 3 lad.Ladder.sink;
    let r = lad.Ladder.rungs.(0) in
    (* rail naming is arbitrary: normalize on the a(1) -> b(2) channel *)
    let ends = (r.Ladder.left_end, r.Ladder.right_end) in
    Alcotest.(check bool) "rung joins a and b" true
      (ends = (1, 2) || ends = (2, 1));
    Alcotest.(check bool) "rung directed a->b" true
      (if ends = (1, 2) then r.Ladder.left_to_right
       else not r.Ladder.left_to_right)

let test_fig5 () =
  let g = Topo_gen.fig5_ladder ~cap:2 in
  match recognize g with
  | Error e -> Alcotest.failf "fig5 should be a ladder: %s" e
  | Ok lad ->
    Alcotest.(check int) "three rungs into k" 3 (Ladder.num_rungs lad);
    (* rail naming is arbitrary: one rail is {b,f,j}, the other {k},
       and all rungs share the k endpoint *)
    let sorted a = List.sort compare (Array.to_list a) in
    let rails =
      List.sort compare
        [ sorted lad.Ladder.left_nodes; sorted lad.Ladder.right_nodes ]
    in
    Alcotest.(check (list (list int))) "rail vertex sets"
      [ [ 1; 5; 9 ]; [ 10 ] ]
      rails;
    let k_side r =
      if Array.to_list lad.Ladder.right_nodes = [ 10 ] then
        r.Ladder.right_end
      else r.Ladder.left_end
    in
    Alcotest.(check (list int)) "rungs share endpoint k" [ 10 ]
      (List.sort_uniq compare
         (Array.to_list (Array.map k_side lad.Ladder.rungs)));
    (* constituents partition the edges *)
    let ids =
      List.sort compare
        (List.map (fun (e : Graph.edge) -> e.id) (Ladder.edges lad))
    in
    Alcotest.(check (list int)) "edges partitioned"
      (List.init (Graph.num_edges g) Fun.id)
      ids;
    Alcotest.(check int) "constituent count: 4 left + 2 right + 3 rungs" 9
      (List.length (Ladder.constituents lad))

let test_not_ladders () =
  (match recognize (Topo_gen.fig4_butterfly ~cap:1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "butterfly must not be a ladder");
  (match recognize (Topo_gen.fig3_hexagon ()) with
  | Error e -> Alcotest.(check string) "SP is reported as such" "series-parallel" e
  | Ok _ -> Alcotest.fail "hexagon is SP, not a ladder");
  (* K4 as a DAG: not a ladder and not CS4 *)
  let k4 =
    Graph.make ~nodes:4
      [ (0, 1, 1); (0, 2, 1); (0, 3, 1); (1, 2, 1); (1, 3, 1); (2, 3, 1) ]
  in
  match recognize k4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "K4 must not be a ladder"

let test_classify_fig4_left () =
  match Cs4.classify (Topo_gen.fig4_left ~cap:1) with
  | Ok { blocks = [ (0, 3, Cs4.Ladder_block _) ]; _ } -> ()
  | Ok _ -> Alcotest.fail "expected a single ladder block"
  | Error e ->
    Alcotest.failf "classification failed: %s"
      (Format.asprintf "%a" Cs4.pp_failure e)

let test_classify_butterfly () =
  (match Cs4.classify (Topo_gen.fig4_butterfly ~cap:1) with
  | Error (Cs4.Bad_block _) -> ()
  | _ -> Alcotest.fail "butterfly should fail classification");
  Alcotest.(check bool) "brute agrees" false
    (Cs4.is_cs4_brute (Topo_gen.fig4_butterfly ~cap:1));
  match Cs4.bad_cycle_witness (Topo_gen.fig4_butterfly ~cap:1) with
  | Some c ->
    Alcotest.(check (list int)) "witness is the a-c-b-d cycle" [ 1; 2 ]
      (Cycles.cycle_sources c)
  | None -> Alcotest.fail "expected a bad-cycle witness"

let test_classify_serial_mix () =
  (* hexagon ; fig4-left ; single edge, composed serially *)
  let edges =
    List.concat
      [
        (* hexagon on 0..5 (sink 3) *)
        [ (0, 1, 2); (1, 2, 5); (2, 3, 1); (0, 4, 3); (4, 5, 1); (5, 3, 2) ];
        (* fig4-left on 3,6,7,8 *)
        [ (3, 6, 1); (3, 7, 1); (6, 7, 1); (6, 8, 1); (7, 8, 1) ];
        [ (8, 9, 4) ];
      ]
  in
  let g = Graph.make ~nodes:10 edges in
  match Cs4.classify g with
  | Error e -> Alcotest.failf "should classify: %s" (Format.asprintf "%a" Cs4.pp_failure e)
  | Ok { blocks; source; sink } ->
    Alcotest.(check int) "source" 0 source;
    Alcotest.(check int) "sink" 9 sink;
    let shape =
      List.map
        (fun (_, _, b) ->
          match b with Cs4.Sp_block _ -> "sp" | Cs4.Ladder_block _ -> "lad")
        blocks
    in
    Alcotest.(check (list string)) "block shapes" [ "sp"; "lad"; "sp" ] shape

let prop_random_ladder_recognized =
  Tutil.qtest "generated ladders are recognized as single ladder blocks"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_ladder_of_seed seed in
      match Cs4.classify g with
      | Ok { blocks; _ } ->
        List.exists
          (fun (_, _, b) -> match b with Cs4.Ladder_block _ -> true | _ -> false)
          blocks
      | Error _ -> false)

let prop_ladder_edges_partition =
  Tutil.qtest "ladder constituents partition the block edges" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_ladder_of_seed seed in
      match Cs4.classify g with
      | Error _ -> false
      | Ok { blocks; _ } ->
        let ids =
          List.concat_map
            (fun (_, _, b) ->
              match b with
              | Cs4.Sp_block t -> List.map (fun (e : Graph.edge) -> e.id) (Sp_tree.edges t)
              | Cs4.Ladder_block lad ->
                List.map (fun (e : Graph.edge) -> e.id) (Ladder.edges lad))
            blocks
        in
        List.sort compare ids = List.init (Graph.num_edges g) Fun.id)

let prop_theorem_v7 =
  (* Theorem V.7, computationally: the constructive classifier agrees
     with the brute-force cycle-structure definition of CS4. *)
  Tutil.qtest ~count:300 "Theorem V.7: classifier = brute force"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      Cs4.is_cs4 g = Cs4.is_cs4_brute g)

let prop_theorem_v7_on_cs4 =
  Tutil.qtest ~count:200 "generated CS4 graphs satisfy both definitions"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      Cs4.is_cs4 g && Cs4.is_cs4_brute g)

let prop_ladders_are_cs4_brute =
  (* Corollary V.5: every SP-ladder is CS4. *)
  Tutil.qtest ~count:150 "Corollary V.5 on generated ladders" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_ladder_of_seed ~max_rungs:4 seed in
      Cs4.is_cs4_brute g)

let prop_rung_order_consistent =
  (* Non-crossing: rung endpoints are monotone along both rails. *)
  Tutil.qtest "rungs are order-consistent on both rails" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_ladder_of_seed seed in
      match Cs4.classify g with
      | Error _ -> false
      | Ok { blocks; _ } ->
        List.for_all
          (fun (_, _, b) ->
            match b with
            | Cs4.Sp_block _ -> true
            | Cs4.Ladder_block lad ->
              let pos nodes =
                let t = Hashtbl.create 16 in
                Array.iteri (fun i v -> Hashtbl.replace t v i) nodes;
                Hashtbl.find t
              in
              let pl = pos lad.Ladder.left_nodes
              and pr = pos lad.Ladder.right_nodes in
              let monotone f =
                let prev = ref (-1) in
                Array.for_all
                  (fun r ->
                    let p = f r in
                    let ok = p >= !prev in
                    prev := p;
                    ok)
                  lad.Ladder.rungs
              in
              monotone (fun r -> pl r.Ladder.left_end)
              && monotone (fun r -> pr r.Ladder.right_end))
          blocks)

let prop_fact_vi_1 =
  (* Facts VI.1/VI.3: in a ladder, the source of every cycle that spans
     more than one constituent is the ladder source or a cross-link
     tail, and its sink is the ladder sink or a cross-link head. *)
  Tutil.qtest ~count:100 "Fact VI.1: external cycle sources are rung tails"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_ladder_of_seed ~max_rungs:4 seed in
      match Cs4.classify g with
      | Error _ -> false
      | Ok { blocks; _ } ->
        List.for_all
          (fun (bsrc, bsnk, b) ->
            match b with
            | Cs4.Sp_block _ -> true
            | Cs4.Ladder_block lad ->
              let rung_tails, rung_heads =
                Array.fold_left
                  (fun (tails, heads) r ->
                    if r.Ladder.left_to_right then
                      (r.Ladder.left_end :: tails, r.Ladder.right_end :: heads)
                    else
                      (r.Ladder.right_end :: tails, r.Ladder.left_end :: heads))
                  ([], []) lad.Ladder.rungs
              in
              (* a cycle is external iff it uses edges of more than one
                 constituent *)
              let constituent_of =
                let t = Hashtbl.create 32 in
                List.iteri
                  (fun ci (_, tree) ->
                    List.iter
                      (fun (e : Graph.edge) -> Hashtbl.replace t e.id ci)
                      (Fstream_spdag.Sp_tree.edges tree))
                  (Ladder.constituents lad);
                Hashtbl.find t
              in
              List.for_all
                (fun c ->
                  let cs =
                    List.sort_uniq compare
                      (List.map
                         (fun o -> constituent_of o.Cycles.edge.Graph.id)
                         c)
                  in
                  List.length cs <= 1
                  ||
                  match (Cycles.cycle_sources c, Cycles.cycle_sinks c) with
                  | [ s ], [ t ] ->
                    (s = bsrc || List.mem s rung_tails)
                    && (t = bsnk || List.mem t rung_heads)
                  | _ -> false)
                (Cycles.enumerate g))
          blocks)

let suite =
  [
    Alcotest.test_case "fig4 left ladder" `Quick test_fig4_left;
    Alcotest.test_case "fig5 decomposition" `Quick test_fig5;
    Alcotest.test_case "non-ladders rejected" `Quick test_not_ladders;
    Alcotest.test_case "classify fig4 left" `Quick test_classify_fig4_left;
    Alcotest.test_case "classify butterfly" `Quick test_classify_butterfly;
    Alcotest.test_case "classify serial mix" `Quick test_classify_serial_mix;
    prop_random_ladder_recognized;
    prop_ladder_edges_partition;
    prop_theorem_v7;
    prop_theorem_v7_on_cs4;
    prop_ladders_are_cs4_brute;
    prop_rung_order_consistent;
    prop_fact_vi_1;
  ]
