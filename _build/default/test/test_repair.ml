open Fstream_graph
open Fstream_ladder
open Fstream_repair
open Fstream_workloads

let test_butterfly () =
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  match Repair.repair g with
  | Error e -> Alcotest.failf "butterfly should repair: %s" e
  | Ok r ->
    Alcotest.(check bool) "result is CS4" true (Cs4.is_cs4 r.graph);
    Alcotest.(check int) "one channel deleted" 1 r.deleted_edges;
    Alcotest.(check int) "one relay channel added" 1 r.added_edges;
    Alcotest.(check int) "edge count preserved" (Graph.num_edges g)
      (Graph.num_edges r.graph);
    Alcotest.(check bool) "reachability preserved" true
      (Repair.preserves_reachability g r);
    (* the paper's sketch: the relay is one of the butterfly's middle
       sinks c or d, and the rerouted channel connected a source to the
       other sink *)
    (match r.reroutes with
    | [ rr ] ->
      Alcotest.(check bool) "relay is c or d" true
        (rr.via = 3 || rr.via = 4);
      Alcotest.(check bool) "deleted a middle channel" true
        (List.mem (fst rr.deleted) [ 1; 2 ] && List.mem (snd rr.deleted) [ 3; 4 ])
    | _ -> Alcotest.fail "expected exactly one reroute")

let test_identity_on_cs4 () =
  let g = Topo_gen.fig4_left ~cap:2 in
  match Repair.repair g with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "no deletions" 0 r.deleted_edges;
    Alcotest.(check int) "no additions" 0 r.added_edges;
    Alcotest.(check int) "graph unchanged" (Graph.num_edges g)
      (Graph.num_edges r.graph)

let test_rejects_non_two_terminal () =
  let g = Graph.make ~nodes:3 [ (0, 2, 1); (1, 2, 1) ] in
  match Repair.repair g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two sources must be rejected"

let prop_repair_sound =
  (* on random two-terminal DAGs: when repair succeeds the result is
     CS4 and reachability-preserving *)
  Tutil.qtest ~count:200 "repair soundness on random DAGs" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      match Repair.repair g with
      | Error _ -> true (* honest failure is allowed *)
      | Ok r -> Cs4.is_cs4 r.graph && Repair.preserves_reachability g r)

let prop_repair_usually_succeeds =
  (* the heuristic should fix the vast majority of small random DAGs;
     guard against regressions that make it give up *)
  Tutil.qtest ~count:1 "repair success rate >= 90%" QCheck.unit (fun () ->
      let successes = ref 0 and total = 200 in
      for seed = 0 to total - 1 do
        let g = Tutil.random_dag_of_seed seed in
        match Repair.repair g with
        | Ok _ -> incr successes
        | Error _ -> ()
      done;
      !successes * 10 >= total * 9)

let prop_repair_idempotent =
  Tutil.qtest ~count:100 "repairing a repaired graph changes nothing"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_dag_of_seed seed in
      match Repair.repair g with
      | Error _ -> true
      | Ok r -> (
        match Repair.repair r.graph with
        | Error _ -> false
        | Ok r2 -> r2.deleted_edges = 0 && r2.added_edges = 0))

let suite =
  [
    Alcotest.test_case "butterfly repair (paper's sketch)" `Quick
      test_butterfly;
    Alcotest.test_case "identity on CS4 input" `Quick test_identity_on_cs4;
    Alcotest.test_case "rejects non-two-terminal" `Quick
      test_rejects_non_two_terminal;
    prop_repair_sound;
    prop_repair_usually_succeeds;
    prop_repair_idempotent;
  ]
