open Fstream_graph
open Fstream_spdag
open Fstream_workloads

let test_build_spec () =
  let spec =
    Sp_build.(Series [ Edge 2; Parallel [ Edge 3; Series [ Edge 1; Edge 4 ] ] ])
  in
  let g = Sp_build.to_graph spec in
  Alcotest.(check int) "edges" 4 (Graph.num_edges g);
  Alcotest.(check int) "nodes = inner + 2" 4 (Graph.num_nodes g);
  Alcotest.(check bool) "two-terminal with source 0" true
    (Topo.is_two_terminal g = Some (0, Graph.num_nodes g - 1));
  Alcotest.(check int) "spec num_edges" 4 (Sp_build.num_edges spec);
  Alcotest.(check int) "spec inner nodes" 2 (Sp_build.num_inner_nodes spec)

let test_recognize_basics () =
  Alcotest.(check bool) "single edge is SP" true
    (Sp_recognize.is_sp (Graph.make ~nodes:2 [ (0, 1, 1) ]));
  Alcotest.(check bool) "multi-edge is SP" true
    (Sp_recognize.is_sp (Graph.make ~nodes:2 [ (0, 1, 1); (0, 1, 2) ]));
  Alcotest.(check bool) "hexagon is SP" true
    (Sp_recognize.is_sp (Topo_gen.fig3_hexagon ()));
  Alcotest.(check bool) "fig4 left is not SP" false
    (Sp_recognize.is_sp (Topo_gen.fig4_left ~cap:1));
  Alcotest.(check bool) "butterfly is not SP" false
    (Sp_recognize.is_sp (Topo_gen.fig4_butterfly ~cap:1));
  Alcotest.(check bool) "fig2 triangle is not SP (chord is fine? no: it is!)"
    true
    (* A -> B -> C with shortcut A -> C is Pc(AC, Sc(AB, BC)): SP. *)
    (Sp_recognize.is_sp (Topo_gen.fig2_triangle ~cap:1))

let test_recognize_failures () =
  let two_sources = Graph.make ~nodes:3 [ (0, 2, 1); (1, 2, 1) ] in
  (match Sp_recognize.recognize two_sources with
  | Error Sp_recognize.Not_two_terminal -> ()
  | _ -> Alcotest.fail "expected Not_two_terminal");
  match Sp_recognize.recognize (Topo_gen.fig4_left ~cap:1) with
  | Error (Sp_recognize.Irreducible { remaining_edges }) ->
    Alcotest.(check int) "fig4-left core is itself" 5 remaining_edges
  | _ -> Alcotest.fail "expected Irreducible"

let test_tree_values_hexagon () =
  match Sp_recognize.recognize (Topo_gen.fig3_hexagon ()) with
  | Error _ -> Alcotest.fail "hexagon should be SP"
  | Ok t ->
    Alcotest.(check int) "L = min branch total" 6 t.Sp_tree.l;
    Alcotest.(check int) "h = hops" 3 t.Sp_tree.h;
    Alcotest.(check int) "leaves" 6 t.Sp_tree.n_edges;
    Alcotest.(check bool) "tree audits against graph" true
      (Sp_tree.check_against t (Topo_gen.fig3_hexagon ()))

let test_tree_constructors () =
  let g = Graph.make ~nodes:3 [ (0, 1, 2); (1, 2, 3); (0, 2, 4) ] in
  let l0 = Sp_tree.leaf (Graph.edge g 0) in
  let l1 = Sp_tree.leaf (Graph.edge g 1) in
  let l2 = Sp_tree.leaf (Graph.edge g 2) in
  let t = Sp_tree.parallel (Sp_tree.series l0 l1) l2 in
  Alcotest.(check int) "L of parallel" 4 t.Sp_tree.l;
  Alcotest.(check int) "h of parallel" 2 t.Sp_tree.h;
  Alcotest.check_raises "series mismatch rejected"
    (Invalid_argument "Sp_tree.series: sink of first must be source of second")
    (fun () -> ignore (Sp_tree.series l0 l2));
  Alcotest.check_raises "parallel mismatch rejected"
    (Invalid_argument "Sp_tree.parallel: terminals must coincide") (fun () ->
      ignore (Sp_tree.parallel l0 l1))

let test_reduce_protect () =
  (* Reducing a path while protecting an inner node leaves two
     super-edges meeting there. *)
  let g = Topo_gen.pipeline ~stages:4 ~cap:1 in
  let core =
    Sp_recognize.reduce ~nodes:5
      ~protect:(fun v -> v = 0 || v = 4 || v = 2)
      (Graph.edges g)
  in
  Alcotest.(check int) "two super-edges" 2 (List.length core);
  let ends =
    List.sort compare
      (List.map (fun se -> Sp_recognize.(se.s_src, se.s_dst)) core)
  in
  Alcotest.(check (list (pair int int))) "super-edge endpoints"
    [ (0, 2); (2, 4) ]
    ends

let prop_roundtrip =
  Tutil.qtest "random SP graphs are recognized with a faithful tree"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_sp_of_seed seed in
      match Sp_recognize.recognize g with
      | Error _ -> false
      | Ok t -> Sp_tree.check_against t g)

let prop_tree_l_h_match_paths =
  Tutil.qtest "tree caches L and h equal to direct path computations"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_sp_of_seed seed in
      match (Sp_recognize.recognize g, Topo.is_two_terminal g) with
      | Ok t, Some (x, y) ->
        Paths.shortest_caps g ~src:x ~dst:y = Some t.Sp_tree.l
        && Paths.longest_hops g ~src:x ~dst:y = Some t.Sp_tree.h
      | _ -> false)

let prop_spec_edge_count =
  Tutil.qtest "built graph edge count matches spec" Tutil.seed_gen (fun seed ->
      let rng = Tutil.rng_of seed in
      let spec =
        Topo_gen.random_sp_spec rng
          ~target_edges:(1 + Random.State.int rng 20)
          ~max_cap:5
      in
      Graph.num_edges (Sp_build.to_graph spec) = Sp_build.num_edges spec)

let prop_sp_cycles_single_source_sink =
  (* Lemma III.4: every undirected simple cycle of an SP-DAG has one
     source and one sink. *)
  Tutil.qtest ~count:100 "Lemma III.4 on random SP graphs" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_sp_of_seed ~max_edges:12 seed in
      List.for_all Cycles.is_cs4_cycle (Cycles.enumerate g))

let prop_postdominators_exist =
  (* The observation before Lemma III.1: in an SP-DAG every node has an
     immediate postdominator (except the sink itself). *)
  Tutil.qtest ~count:100 "every non-sink node has a postdominator"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_sp_of_seed seed in
      match Topo.is_two_terminal g with
      | None -> false
      | Some (_, y) ->
        let ipd = Dominators.ipostdoms g y in
        let ok = ref true in
        Graph.iter_nodes g (fun v ->
            if v <> y && ipd.(v) = -1 then ok := false);
        !ok)

let prop_lemma_iii_1 =
  (* Lemma III.1: a split node Z dominates every node on every directed
     path from Z to its immediate postdominator W, other than W. *)
  Tutil.qtest ~count:60 "Lemma III.1 on random SP graphs" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_sp_of_seed ~max_edges:10 seed in
      match Topo.is_two_terminal g with
      | None -> false
      | Some (x, y) ->
        let ipd = Dominators.ipostdoms g y in
        let idom = Dominators.idoms g x in
        let dominates a b =
          let rec climb v = v = a || (v <> x && idom.(v) <> -1 && climb idom.(v)) in
          climb b
        in
        let ok = ref true in
        Graph.iter_nodes g (fun z ->
            if Graph.out_degree g z >= 2 then begin
              let w = ipd.(z) in
              (* nodes strictly between z and w on directed paths:
                 reachable from z and co-reachable from w, not z or w *)
              let from_z = Topo.reachable g z
              and to_w = Topo.co_reachable g w in
              Graph.iter_nodes g (fun p ->
                  if p <> z && p <> w && from_z.(p) && to_w.(p) then
                    if not (dominates z p) then ok := false)
            end);
        !ok)

let prop_corollary_iii_3 =
  (* Corollary III.3: in Pc(H1, H2), any simple cycle using edges of
     both components is a pair of directed source-to-sink paths, one
     per component. Component membership is recoverable by edge id:
     Sp_build emits H1's edges before H2's. *)
  Tutil.qtest ~count:80 "Corollary III.3 on random parallel compositions"
    Tutil.seed_gen (fun seed ->
      let rng = Tutil.rng_of seed in
      let s1 =
        Topo_gen.random_sp_spec rng
          ~target_edges:(1 + Random.State.int rng 5)
          ~max_cap:4
      in
      let s2 =
        Topo_gen.random_sp_spec rng
          ~target_edges:(1 + Random.State.int rng 5)
          ~max_cap:4
      in
      let g = Sp_build.to_graph (Sp_build.Parallel [ s1; s2 ]) in
      let cut = Sp_build.num_edges s1 in
      let half (e : Graph.edge) = e.id < cut in
      match Topo.is_two_terminal g with
      | None -> false
      | Some (x, y) ->
        List.for_all
          (fun c ->
            let edges = List.map (fun o -> o.Cycles.edge) c in
            let in1 = List.exists half edges
            and in2 = List.exists (fun e -> not (half e)) edges in
            (not (in1 && in2))
            ||
            let runs = Cycles.runs c in
            Array.length runs = 2
            && Array.for_all
                 (fun (r : Cycles.run) ->
                   r.run_source = x && r.run_sink = y
                   &&
                   (* each run confined to one component *)
                   let h = List.map half r.run_edges in
                   List.for_all Fun.id h
                   || List.for_all not h)
                 runs)
          (Cycles.enumerate g))

let suite =
  [
    Alcotest.test_case "spec building" `Quick test_build_spec;
    Alcotest.test_case "recognition basics" `Quick test_recognize_basics;
    Alcotest.test_case "recognition failures" `Quick test_recognize_failures;
    Alcotest.test_case "hexagon tree values" `Quick test_tree_values_hexagon;
    Alcotest.test_case "tree constructors" `Quick test_tree_constructors;
    Alcotest.test_case "reduce with protected node" `Quick test_reduce_protect;
    prop_roundtrip;
    prop_tree_l_h_match_paths;
    prop_spec_edge_count;
    prop_sp_cycles_single_source_sink;
    prop_postdominators_exist;
    prop_lemma_iii_1;
    prop_corollary_iii_3;
  ]
