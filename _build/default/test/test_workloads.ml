open Fstream_graph
open Fstream_spdag
open Fstream_ladder
open Fstream_workloads

let test_figures_shapes () =
  let sj = Topo_gen.fig1_split_join ~branches:3 ~cap:2 in
  Alcotest.(check int) "split-join nodes" 5 (Graph.num_nodes sj);
  Alcotest.(check bool) "split-join is SP" true (Sp_recognize.is_sp sj);
  let t = Topo_gen.fig2_triangle ~cap:1 in
  Alcotest.(check int) "triangle edges" 3 (Graph.num_edges t);
  let f5 = Topo_gen.fig5_ladder ~cap:1 in
  Alcotest.(check int) "fig5 has 13 nodes" 13 (Graph.num_nodes f5);
  Alcotest.(check bool) "fig5 two-terminal" true
    (Topo.is_two_terminal f5 = Some (0, 12));
  Alcotest.(check bool) "fig5 is CS4 but not SP" true
    (Cs4.is_cs4 f5 && not (Sp_recognize.is_sp f5))

let test_pipeline () =
  let g = Topo_gen.pipeline ~stages:5 ~cap:3 in
  Alcotest.(check int) "nodes" 6 (Graph.num_nodes g);
  Alcotest.(check bool) "pipelines are SP" true (Sp_recognize.is_sp g)

let test_diamond_chain () =
  let g = Topo_gen.diamond_chain ~diamonds:4 ~cap:2 () in
  Alcotest.(check int) "edges" 8 (Graph.num_edges g);
  Alcotest.(check bool) "SP" true (Sp_recognize.is_sp g);
  let gb = Topo_gen.diamond_chain ~bypass:true ~diamonds:4 ~cap:2 () in
  Alcotest.(check int) "bypass adds one edge" 9 (Graph.num_edges gb);
  Alcotest.(check bool) "still SP" true (Sp_recognize.is_sp gb)

let test_parallel_paths () =
  let g = Topo_gen.parallel_paths ~paths:4 ~hops:3 ~cap:1 in
  Alcotest.(check bool) "SP" true (Sp_recognize.is_sp g);
  Alcotest.(check int) "cycle count C(4,2)" 6 (Cycles.count g)

let test_wide_ladder () =
  let g = Topo_gen.wide_ladder ~rungs:5 ~cap:1 in
  match Cs4.classify g with
  | Ok { blocks = [ (_, _, Cs4.Ladder_block lad) ]; _ } ->
    Alcotest.(check int) "five rungs" 5 (Ladder.num_rungs lad);
    (* rail naming is arbitrary; directions must strictly alternate *)
    let dirs =
      Array.to_list (Array.map (fun r -> r.Ladder.left_to_right) lad.Ladder.rungs)
    in
    let rec alternating = function
      | a :: (b :: _ as rest) -> a <> b && alternating rest
      | _ -> true
    in
    Alcotest.(check bool) "alternating directions" true (alternating dirs)
  | Ok _ -> Alcotest.fail "expected one ladder block"
  | Error e -> Alcotest.failf "classify failed: %s" (Format.asprintf "%a" Cs4.pp_failure e)

let test_nested_parallel () =
  let g = Topo_gen.nested_parallel ~depth:5 ~cap:2 in
  Alcotest.(check int) "edges = 2 * depth + 1" 11 (Graph.num_edges g);
  Alcotest.(check bool) "SP" true (Sp_recognize.is_sp g)

let prop_random_sp_is_sp =
  Tutil.qtest "random_sp generates SP graphs" Tutil.seed_gen (fun seed ->
      Sp_recognize.is_sp (Tutil.random_sp_of_seed seed))

let prop_random_ladder_two_terminal =
  Tutil.qtest "random ladders are two-terminal DAGs" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_ladder_of_seed seed in
      Topo.is_dag g && Topo.is_two_terminal g <> None)

let prop_random_cs4_is_cs4 =
  Tutil.qtest "random_cs4 generates CS4 graphs" Tutil.seed_gen (fun seed ->
      Cs4.is_cs4 (Tutil.random_cs4_of_seed seed))

let prop_caps_in_range =
  Tutil.qtest "generated capacities are within [1, max_cap]" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      List.for_all (fun (e : Graph.edge) -> e.cap >= 1 && e.cap <= 7)
        (Graph.edges g))

let suite =
  [
    Alcotest.test_case "figure topologies" `Quick test_figures_shapes;
    Alcotest.test_case "pipeline" `Quick test_pipeline;
    Alcotest.test_case "diamond chain" `Quick test_diamond_chain;
    Alcotest.test_case "parallel paths" `Quick test_parallel_paths;
    Alcotest.test_case "wide ladder" `Quick test_wide_ladder;
    Alcotest.test_case "nested parallel" `Quick test_nested_parallel;
    prop_random_sp_is_sp;
    prop_random_ladder_two_terminal;
    prop_random_cs4_is_cs4;
    prop_caps_in_range;
  ]
