(* Timing and table helpers shared by the experiment sections. *)

let now_ns () = Monotonic_clock.now ()

(* Set by [--quick] on the command line: sections shrink their sweeps to
   one small size / a handful of trials, so CI can smoke-test the bench
   binary (and the hot path it exercises) in seconds. *)
let quick = ref false

(* Allocation accounting around a thunk. [quick_stat] reads the GC's
   counters without walking the heap, so the probe itself is cheap
   enough to wrap whole engine runs. Words are OCaml words (8 bytes on
   64-bit); [minor_words] counts every allocation that went through the
   minor heap, which is the figure of merit for a hot loop that is
   supposed to allocate nothing. *)
type gc_stats = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let with_gc_stats f =
  let a = Gc.quick_stat () in
  let r = f () in
  let b = Gc.quick_stat () in
  ( {
      minor_words = b.Gc.minor_words -. a.Gc.minor_words;
      major_words = b.Gc.major_words -. a.Gc.major_words;
      promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
      minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      major_collections = b.Gc.major_collections - a.Gc.major_collections;
    },
    r )

(* Wall-clock one evaluation, in nanoseconds. *)
let time_once f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (Int64.to_float (Int64.sub t1 t0), r)

(* Best-of-n timing to damp scheduler noise; returns nanoseconds. *)
let time_best ?(repeat = 3) f =
  let best = ref infinity in
  for _ = 1 to repeat do
    let t, _ = time_once f in
    if t < !best then best := t
  done;
  !best

let pp_ns ppf ns =
  if ns < 1e3 then Format.fprintf ppf "%8.0f ns" ns
  else if ns < 1e6 then Format.fprintf ppf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%8.2f ms" (ns /. 1e6)
  else Format.fprintf ppf "%8.2f s " (ns /. 1e9)

let section id title =
  Format.printf "@.==== %s: %s ====@." id title

let row fmt = Format.printf fmt

let ok b = if b then "ok" else "MISMATCH"

(* ------------------------------------------------------------------ *)
(* Headline JSON: [--json FILE] makes the sections deposit their key
   numbers here and the driver write them out at exit, so CI can attach
   one machine-readable artifact per PR (BENCH_PR6.json) instead of
   scraping the tables. Hand-rolled serializer — the repo carries no
   JSON dependency and the values are flat string/number pairs. *)

let json_file : string option ref = ref None

(* (section, key, value), insertion-ordered *)
let headlines : (string * string * float) list ref = ref []

let headline sec key v = headlines := (sec, key, v) :: !headlines

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_number v =
  (* JSON has no inf/nan: clamp to null, callers treat it as missing *)
  if Float.is_finite v then
    let s = Printf.sprintf "%.6g" v in
    (* "%.6g" never prints a spurious exponent OCaml-style ("1e+06" is
       valid JSON); just guard the degenerate "-0" *)
    if s = "-0" then "0" else s
  else "null"

let write_json () =
  match !json_file with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let sections =
      List.fold_left
        (fun acc (sec, _, _) -> if List.mem sec acc then acc else sec :: acc)
        []
        (List.rev !headlines)
      |> List.rev
    in
    output_string oc "{\n  \"bench\": \"filterstream\",\n";
    Printf.fprintf oc "  \"quick\": %b,\n" !quick;
    output_string oc "  \"sections\": {\n";
    List.iteri
      (fun i sec ->
        Printf.fprintf oc "    \"%s\": {\n" (json_escape sec);
        let entries =
          List.filter (fun (s, _, _) -> s = sec) (List.rev !headlines)
        in
        List.iteri
          (fun j (_, key, v) ->
            Printf.fprintf oc "      \"%s\": %s%s\n" (json_escape key)
              (json_number v)
              (if j = List.length entries - 1 then "" else ","))
          entries;
        Printf.fprintf oc "    }%s\n"
          (if i = List.length sections - 1 then "" else ","))
      sections;
    output_string oc "  }\n}\n";
    close_out oc;
    Format.printf "@.headline JSON written to %s@." path
