(* Timing and table helpers shared by the experiment sections. *)

let now_ns () = Monotonic_clock.now ()

(* Set by [--quick] on the command line: sections shrink their sweeps to
   one small size / a handful of trials, so CI can smoke-test the bench
   binary (and the hot path it exercises) in seconds. *)
let quick = ref false

(* Allocation accounting around a thunk. [quick_stat] reads the GC's
   counters without walking the heap, so the probe itself is cheap
   enough to wrap whole engine runs. Words are OCaml words (8 bytes on
   64-bit); [minor_words] counts every allocation that went through the
   minor heap, which is the figure of merit for a hot loop that is
   supposed to allocate nothing. *)
type gc_stats = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let with_gc_stats f =
  let a = Gc.quick_stat () in
  let r = f () in
  let b = Gc.quick_stat () in
  ( {
      minor_words = b.Gc.minor_words -. a.Gc.minor_words;
      major_words = b.Gc.major_words -. a.Gc.major_words;
      promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
      minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      major_collections = b.Gc.major_collections - a.Gc.major_collections;
    },
    r )

(* Wall-clock one evaluation, in nanoseconds. *)
let time_once f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (Int64.to_float (Int64.sub t1 t0), r)

(* Best-of-n timing to damp scheduler noise; returns nanoseconds. *)
let time_best ?(repeat = 3) f =
  let best = ref infinity in
  for _ = 1 to repeat do
    let t, _ = time_once f in
    if t < !best then best := t
  done;
  !best

let pp_ns ppf ns =
  if ns < 1e3 then Format.fprintf ppf "%8.0f ns" ns
  else if ns < 1e6 then Format.fprintf ppf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%8.2f ms" (ns /. 1e6)
  else Format.fprintf ppf "%8.2f s " (ns /. 1e9)

let section id title =
  Format.printf "@.==== %s: %s ====@." id title

let row fmt = Format.printf fmt

let ok b = if b then "ok" else "MISMATCH"
