(* Benchmark harness: regenerates every figure and headline claim of
   the paper (see DESIGN.md, per-experiment index, and EXPERIMENTS.md
   for the measured-vs-paper discussion).

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- F3 C4   # a subset
     dune exec bench/main.exe -- micro   # bechamel microbenchmarks   *)

open Fstream_graph
open Fstream_spdag
open Fstream_ladder
open Fstream_core
open Fstream_runtime
open Fstream_workloads
open Bench_util
module Verify = Fstream_verify.Verify
module Repair = Fstream_repair.Repair
module P = Fstream_parallel.Parallel_engine

(* ------------------------------------------------------------------ *)
(* F1. Fig. 1: split/join object recognition, wrapper comparison.      *)

let f1 () =
  section "F1" "Fig. 1 split/join with filtering (object recognition)";
  let g = Topo_gen.fig1_split_join ~branches:4 ~cap:2 in
  let split = 0 in
  let hit_rate = [| 0.9; 0.5; 0.2; 0.05 |] in
  let kernels () =
    let rng = Random.State.make [| 7; 7; 7 |] in
    Filters.for_graph g (fun v outs ->
        if v = split then fun ~seq:_ ~got:_ ->
          List.filter (fun _ -> Random.State.float rng 1.0 < 0.7) outs
        else if Graph.out_degree g v = 0 then Filters.passthrough outs
        else fun ~seq:_ ~got:_ ->
          if Random.State.float rng 1.0 < hit_rate.(v - 1) then outs else [])
  in
  let frames = 20_000 in
  let run name avoidance =
    let s =
      Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:frames ~avoidance ()
    in
    row "  %-16s %-11s data=%-7d dummies=%-7d overhead=%5.1f%%@." name
      (match s.Report.outcome with
      | Report.Completed -> "completed"
      | Report.Deadlocked -> "DEADLOCKED"
      | Report.Budget_exhausted -> "budget")
      s.data_messages s.dummy_messages
      (100. *. float s.dummy_messages /. float (max 1 s.data_messages))
  in
  row "  %d frames, router keeps 70%% per branch, hit rates 0.9/0.5/0.2/0.05@."
    frames;
  run "no avoidance" Engine.No_avoidance;
  (match Compiler.compile Compiler.Propagation g with
  | Ok p ->
    run "propagation"
      (Engine.Propagation (Compiler.propagation_thresholds g p.intervals))
  | Error e -> row "  propagation plan failed: %a@." Compiler.pp_error e);
  match Compiler.compile Compiler.Non_propagation g with
  | Ok p ->
    run "non-propagation"
      (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
  | Error e -> row "  non-propagation plan failed: %a@." Compiler.pp_error e

(* ------------------------------------------------------------------ *)
(* F2. Fig. 2: the canonical deadlock and its avoidance.               *)

let f2 () =
  section "F2" "Fig. 2 deadlock condition (full, full, empty)";
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  let run name avoidance =
    let s = Engine.run ~graph:g ~kernels ~inputs:100 ~avoidance () in
    row "  %-16s %s (data=%d dummies=%d delivered=%d)@." name
      (match s.Report.outcome with
      | Report.Completed -> "completed"
      | Report.Deadlocked -> "DEADLOCKED"
      | Report.Budget_exhausted -> "budget")
      s.data_messages s.dummy_messages s.sink_data
  in
  run "no avoidance" Engine.No_avoidance;
  (match Compiler.compile Compiler.Propagation g with
  | Ok p ->
    run "propagation"
      (Engine.Propagation (Compiler.propagation_thresholds g p.intervals))
  | Error e -> row "  %a@." Compiler.pp_error e);
  match Compiler.compile Compiler.Non_propagation g with
  | Ok p ->
    run "non-propagation"
      (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
  | Error e -> row "  %a@." Compiler.pp_error e

(* ------------------------------------------------------------------ *)
(* F3. Fig. 3: the worked dummy-interval example, exact values.        *)

let f3 () =
  section "F3" "Fig. 3 worked example (paper values vs computed)";
  let g = Topo_gen.fig3_hexagon () in
  let names = [| "ab"; "be"; "ef"; "ac"; "cd"; "df" |] in
  let paper_prop = [| "6"; "inf"; "inf"; "8"; "inf"; "inf" |] in
  let paper_np = [| "2"; "2"; "2"; "8/3"; "8/3"; "8/3" |] in
  let tree =
    match Sp_recognize.recognize g with Ok t -> t | Error _ -> assert false
  in
  let fast_prop = Sp_prop.intervals g tree in
  let fast_np = Sp_nonprop.intervals g tree in
  let base_prop = General.propagation g in
  let base_np = General.non_propagation g in
  row "  %-5s %-4s | %-6s %-6s %-6s %-9s | %-6s %-6s %-6s %-9s@." "edge" "cap"
    "paper" "fast" "base" "(prop)" "paper" "fast" "base" "(non-prop)";
  Array.iteri
    (fun i name ->
      let e = Graph.edge g i in
      row "  %-5s %-4d | %-6s %-6s %-6s %-9s | %-6s %-6s %-6s %-9s@." name
        e.cap paper_prop.(i)
        (Format.asprintf "%a" Interval.pp fast_prop.(i))
        (Format.asprintf "%a" Interval.pp base_prop.(i))
        (ok (Interval.equal fast_prop.(i) base_prop.(i)))
        paper_np.(i)
        (Format.asprintf "%a" Interval.pp fast_np.(i))
        (Format.asprintf "%a" Interval.pp base_np.(i))
        (ok (Interval.equal fast_np.(i) base_np.(i))))
    names;
  row "  8/3 displayed as 3 after the paper's round-up: ceil(8/3) = %d@."
    (Option.get (Interval.ceil_opt (Interval.ratio 8 3)))

(* ------------------------------------------------------------------ *)
(* F4. Fig. 4: the two simple non-SP DAGs.                              *)

let f4 () =
  section "F4" "Fig. 4 non-SP DAGs: classification";
  let describe name g =
    let sp = Sp_recognize.is_sp g in
    let cs4 = Cs4.is_cs4 g in
    let brute = Cs4.is_cs4_brute g in
    row "  %-12s SP=%-5b CS4=%-5b (brute: %b, agreement %s)@." name sp cs4
      brute (ok (cs4 = brute));
    if not cs4 then
      match Cs4.bad_cycle_witness g with
      | Some c ->
        row "    witness cycle: sources {%s}, sinks {%s}@."
          (String.concat "," (List.map string_of_int (Cycles.cycle_sources c)))
          (String.concat "," (List.map string_of_int (Cycles.cycle_sinks c)))
      | None -> ()
  in
  describe "left" (Topo_gen.fig4_left ~cap:2);
  describe "butterfly" (Topo_gen.fig4_butterfly ~cap:2)

(* ------------------------------------------------------------------ *)
(* F5. Fig. 5: SP-ladder decomposition of the 13-node example.          *)

let f5 () =
  section "F5" "Fig. 5 SP-ladder decomposition";
  let g = Topo_gen.fig5_ladder ~cap:2 in
  match Cs4.classify g with
  | Ok { blocks = [ (_, _, Cs4.Ladder_block lad) ]; _ } ->
    row "  %s@."
      (String.concat "\n  "
         (String.split_on_char '\n' (Format.asprintf "%a" Ladder.pp lad)));
    List.iter
      (fun (label, (t : Sp_tree.t)) ->
        row "  constituent %-3s %2d..%-2d: %d edge(s), L=%d h=%d@." label
          t.source t.sink t.n_edges t.l t.h)
      (Ladder.constituents lad);
    let fast = Ladder_prop.intervals g lad in
    let base = General.propagation g in
    let agree =
      Array.for_all Fun.id
        (Array.mapi (fun i v -> Interval.equal v base.(i)) fast)
    in
    row "  propagation intervals vs baseline: %s@." (ok agree);
    let fastn = Ladder_nonprop.intervals g lad in
    let basen = General.non_propagation g in
    let agreen =
      Array.for_all Fun.id
        (Array.mapi (fun i v -> Interval.equal v basen.(i)) fastn)
    in
    row "  non-propagation intervals vs baseline: %s@." (ok agreen)
  | Ok _ -> row "  UNEXPECTED: not a single ladder block@."
  | Error e -> row "  classification failed: %a@." Cs4.pp_failure e

(* ------------------------------------------------------------------ *)
(* F6. Fig. 6: general ladder structure on random instances.            *)

let f6 () =
  section "F6" "Fig. 6 general ladders: random decomposition round-trip";
  let rng = Random.State.make [| 99 |] in
  let trials = 300 in
  let recognized = ref 0 and shared = ref 0 and rung_total = ref 0 in
  for _ = 1 to trials do
    let g =
      Topo_gen.random_ladder rng
        ~rungs:(1 + Random.State.int rng 6)
        ~segment_edges:(1 + Random.State.int rng 4)
        ~max_cap:6
    in
    match Cs4.classify g with
    | Ok { blocks; _ } ->
      List.iter
        (fun (_, _, b) ->
          match b with
          | Cs4.Ladder_block lad ->
            incr recognized;
            rung_total := !rung_total + Ladder.num_rungs lad;
            let k = Ladder.num_rungs lad in
            let distinct ends =
              List.length
                (List.sort_uniq compare
                   (Array.to_list (Array.map ends lad.Ladder.rungs)))
            in
            if
              distinct (fun r -> r.Ladder.left_end) < k
              || distinct (fun r -> r.Ladder.right_end) < k
            then incr shared
          | Cs4.Sp_block _ -> ())
        blocks
    | Error _ -> ()
  done;
  row "  %d random ladders: %d ladder blocks recognized, %d rungs total@."
    trials !recognized !rung_total;
  row "  %d blocks exercise the shared-endpoint case of Fig. 6@." !shared

(* ------------------------------------------------------------------ *)
(* C1/C2. SP-DAG interval computation scaling.                          *)

let c1 () =
  section "C1" "SETIVALS on SP-DAGs: O(|G|) scaling";
  row "  %8s %12s %12s %14s@." "edges" "recognize" "prop" "prop ns/edge";
  List.iter
    (fun target ->
      let rng = Random.State.make [| target |] in
      let g = Topo_gen.random_sp rng ~target_edges:target ~max_cap:8 in
      let m = Graph.num_edges g in
      let t_rec = time_best (fun () -> Sp_recognize.recognize g) in
      let tree =
        match Sp_recognize.recognize g with Ok t -> t | Error _ -> assert false
      in
      let t_prop = time_best (fun () -> Sp_prop.intervals g tree) in
      row "  %8d %a %a %14.1f@." m pp_ns t_rec pp_ns t_prop
        (t_prop /. float m))
    [ 1_000; 2_000; 4_000; 8_000; 16_000; 32_000 ]

let c2 () =
  section "C2" "SP non-propagation: O(|G|^2) scaling";
  row "  random SP graphs (average case):@.";
  row "  %8s %12s %16s@." "edges" "nonprop" "ns/edge^2";
  List.iter
    (fun target ->
      let rng = Random.State.make [| target; 2 |] in
      let g = Topo_gen.random_sp rng ~target_edges:target ~max_cap:8 in
      let m = Graph.num_edges g in
      let tree =
        match Sp_recognize.recognize g with Ok t -> t | Error _ -> assert false
      in
      let t = time_best (fun () -> Sp_nonprop.intervals g tree) in
      row "  %8d %a %16.4f@." m pp_ns t (t /. (float m *. float m)))
    [ 250; 500; 1_000; 2_000; 4_000 ];
  row "  maximally nested parallels (worst case, ns/edge^2 flat => quadratic):@.";
  row "  %8s %12s %16s@." "edges" "nonprop" "ns/edge^2";
  List.iter
    (fun depth ->
      let g = Topo_gen.nested_parallel ~depth ~cap:3 in
      let m = Graph.num_edges g in
      let tree =
        match Sp_recognize.recognize g with Ok t -> t | Error _ -> assert false
      in
      let t = time_best (fun () -> Sp_nonprop.intervals g tree) in
      row "  %8d %a %16.4f@." m pp_ns t (t /. (float m *. float m)))
    [ 128; 256; 512; 1_024; 2_048 ]

(* ------------------------------------------------------------------ *)
(* C3. Ladder algorithms scaling.                                       *)

let c3 () =
  section "C3" "SP-ladder algorithms: O(|G|) prop / O(|G|^3) non-prop";
  let with_ladder rungs f =
    let g = Topo_gen.wide_ladder ~rungs ~cap:3 in
    match Cs4.classify g with
    | Ok { blocks = [ (_, _, Cs4.Ladder_block lad) ]; _ } -> f g lad
    | _ -> row "  %8d classification failed@." rungs
  in
  row "  %8s %12s %14s@." "rungs" "prop" "prop ns/rung";
  List.iter
    (fun rungs ->
      with_ladder rungs (fun g lad ->
          let t = time_best (fun () -> Ladder_prop.intervals g lad) in
          row "  %8d %a %14.1f@." rungs pp_ns t (t /. float rungs)))
    [ 256; 512; 1_024; 2_048; 4_096 ];
  row "  %8s %12s %16s@." "rungs" "nonprop" "ns/rung^3";
  List.iter
    (fun rungs ->
      with_ladder rungs (fun g lad ->
          let t =
            time_best ~repeat:2 (fun () -> Ladder_nonprop.intervals g lad)
          in
          row "  %8d %a %16.4f@." rungs pp_ns t
            (t /. float (rungs * rungs * rungs))))
    [ 16; 32; 64; 128; 192 ]

(* ------------------------------------------------------------------ *)
(* C4. The headline: exponential baseline vs polynomial algorithms.     *)

let c4 () =
  section "C4"
    "exponential general-DAG baseline vs SETIVALS (bypassed diamond chains)";
  row "  %4s %10s %14s %14s %10s@." "k" "cycles" "baseline" "SETIVALS"
    "speedup";
  let stop = ref false in
  List.iter
    (fun k ->
      if not !stop then begin
        let g = Topo_gen.diamond_chain ~bypass:true ~diamonds:k ~cap:2 () in
        let tree =
          match Sp_recognize.recognize g with
          | Ok t -> t
          | Error _ -> assert false
        in
        let t_fast = time_best (fun () -> Sp_prop.intervals g tree) in
        let t_base, _ = time_once (fun () -> General.propagation g) in
        let cycles = (1 lsl k) + k in
        row "  %4d %10d %a %a %9.0fx@." k cycles pp_ns t_base pp_ns t_fast
          (t_base /. t_fast);
        if t_base > 1e9 then begin
          stop := true;
          row
            "  (baseline exceeded 1 s; larger sizes skipped — SETIVALS stays@.";
          row "   at microseconds regardless, see C1)@."
        end
      end)
    [ 4; 8; 12; 14; 16; 18; 20; 22 ]

(* ------------------------------------------------------------------ *)
(* C5. End-to-end "compilation overhead": classify + intervals.         *)

let c5 () =
  section "C5"
    "end-to-end compile pass (classify + intervals) on large CS4 graphs";
  row "  %8s %8s %12s %12s %12s %14s@." "edges" "blocks" "classify" "prop"
    "nonprop" "us/edge total";
  List.iter
    (fun blocks ->
      let rng = Random.State.make [| blocks; 77 |] in
      let g = Topo_gen.random_cs4 rng ~blocks ~block_edges:120 ~max_cap:8 in
      let m = Graph.num_edges g in
      let t_classify = time_best (fun () -> Cs4.classify g) in
      let t_prop =
        time_best (fun () -> Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } Compiler.Propagation g)
      in
      let t_np =
        time_best (fun () ->
            Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } Compiler.Non_propagation g)
      in
      row "  %8d %8d %a %a %a %14.2f@." m blocks pp_ns t_classify pp_ns t_prop
        pp_ns t_np
        ((t_classify +. t_np) /. 1e3 /. float m))
    [ 4; 16; 64; 128 ];
  row "  (the whole pass stays in microseconds per channel — the paper's@.";
  row "   'reasonable compilation overhead', measured end to end)@."

(* ------------------------------------------------------------------ *)
(* C6. Event-driven ready-queue scheduler vs the reference sweep.       *)

let c6 () =
  section "C6" "ready-queue scheduler vs full-sweep reference (runtime)";
  (* A topo-ordered round propagates any surviving message the whole
     way to the sink, so a passthrough pipeline is never idle: the
     mostly-idle regime the worklist exploits is *sparse filtering* —
     an early stage drops almost everything and the deep tail of the
     pipeline sits quiescent while the sweep still rescans it every
     round. *)
  row "  deep pipelines, 2000 inputs, stage 1 keeps 1 message in 512@.";
  row "  (the idle tail is scanned by the sweep, skipped by the worklist):@.";
  row "  %8s %12s %12s %12s %12s %12s %9s@." "nodes" "ready" "ready r/s"
    "ready ns/m" "sweep" "sweep r/s" "speedup";
  List.iter
    (fun stages ->
      let g = Topo_gen.pipeline ~stages ~cap:2 in
      let kernels () =
        Filters.for_graph g (fun v outs ->
            if v = 1 then Filters.periodic ~keep_every:512 outs
            else Filters.passthrough outs)
      in
      let inputs = 2_000 in
      let rounds_of (s : Report.t) = Option.value (Report.rounds s) ~default:0 in
      let t_ready, (s_ready : Report.t) =
        time_once (fun () ->
            Engine.run ~scheduler:Engine.Ready ~graph:g ~kernels:(kernels ())
              ~inputs ~avoidance:Engine.No_avoidance ())
      in
      (* The sweep's cost per round is O(n) whatever happens, so its
         rounds/sec rate is measured on a capped prefix of the run and
         the full-length execution (quadratic at 64k nodes) is not
         forced. *)
      let cap = max 64 (min (rounds_of s_ready) (4_194_304 / (stages + 1))) in
      let t_sweep, (s_sweep : Report.t) =
        time_once (fun () ->
            Engine.run ~scheduler:Engine.Sweep ~max_rounds:cap ~graph:g
              ~kernels:(kernels ()) ~inputs ~avoidance:Engine.No_avoidance ())
      in
      let rps t (s : Report.t) = float (rounds_of s) /. (t /. 1e9) in
      let messages (s : Report.t) =
        max 1 (s.Report.data_messages + s.Report.dummy_messages)
      in
      row "  %8d %a %12.0f %12.1f %a %12.0f %8.1fx@." (stages + 1) pp_ns
        t_ready
        (rps t_ready s_ready)
        (t_ready /. float (messages s_ready))
        pp_ns t_sweep (rps t_sweep s_sweep)
        (rps t_ready s_ready /. rps t_sweep s_sweep);
      headline "C6"
        (Printf.sprintf "pipeline_%d_ready_rounds_per_sec" (stages + 1))
        (rps t_ready s_ready);
      headline "C6"
        (Printf.sprintf "pipeline_%d_speedup_vs_sweep" (stages + 1))
        (rps t_ready s_ready /. rps t_sweep s_sweep))
    (if !quick then [ 1_023 ] else [ 1_023; 4_095; 16_383; 65_535 ]);
  row "  (sweep timed over its first %d+ rounds at the larger sizes)@." 64;
  row "  S1 random CS4 workloads, both schedulers end to end:@.";
  let trials = if !quick then 40 else 200 in
  let inputs = 80 in
  (* one instance stream, both schedulers timed on each instance in
     alternating order: an all-of-one-then-the-other ordering lets the
     second pass run with warmed caches and biases the ratio by a few
     percent, which matters now that both schedulers execute the same
     loop on graphs this small (see [Engine.run ?dense_below]) *)
  let rng = Random.State.make [| 31337 |] in
  let ro = ref [] and so = ref [] in
  let rt = ref 0. and st_ = ref 0. and rm = ref 0 in
  for trial = 1 to trials do
    let g =
      Topo_gen.random_cs4 rng
        ~blocks:(1 + Random.State.int rng 3)
        ~block_edges:(2 + Random.State.int rng 8)
        ~max_cap:3
    in
    let seed = Random.State.int rng 1_000_000 in
    let kernels () =
      let krng = Random.State.make [| seed |] in
      Filters.for_graph g (fun _ outs -> Filters.bernoulli krng ~keep:0.6 outs)
    in
    match Compiler.compile Compiler.Non_propagation g with
    | Error _ -> ()
    | Ok p ->
      let avoidance =
        Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
      in
      let exec scheduler () =
        Engine.run ~scheduler ~graph:g ~kernels:(kernels ()) ~inputs ~avoidance
          ()
      in
      (* best-of-3 per scheduler per instance: single runs here are
         ~100us, where one GC pause or timer-tick swings the trial by
         10%+; the min damps that, alternation damps the rest *)
      let timed scheduler =
        let _, (s : Report.t) = time_once (exec scheduler) in
        (time_best (exec scheduler), s)
      in
      let record elapsed outcomes (t, (s : Report.t)) =
        elapsed := !elapsed +. t;
        outcomes :=
          ( s.Report.outcome,
            Report.rounds s,
            s.Report.data_messages,
            s.Report.dummy_messages,
            s.Report.sink_data )
          :: !outcomes;
        s
      in
      let s_ready =
        if trial land 1 = 0 then begin
          let s = record rt ro (timed Engine.Ready) in
          ignore (record st_ so (timed Engine.Sweep));
          s
        end
        else begin
          ignore (record st_ so (timed Engine.Sweep));
          record rt ro (timed Engine.Ready)
        end
      in
      rm := !rm + s_ready.Report.data_messages + s_ready.Report.dummy_messages
  done;
  let ro, rt, rm = (!ro, !rt, !rm) in
  let so, st_ = (!so, !st_) in
  row "  %-10s %12s %14s@." "scheduler" "total" "ns/message";
  row "  %-10s %a %14.1f@." "ready" pp_ns rt (rt /. float (max 1 rm));
  row "  %-10s %a %14.1f@." "sweep" pp_ns st_ (st_ /. float (max 1 rm));
  row "  %d trials, stats identical across schedulers: %s, speedup %.1fx@."
    trials
    (ok (ro = so))
    (st_ /. rt);
  headline "C6" "cs4_ready_ns_per_message" (rt /. float (max 1 rm));
  headline "C6" "cs4_speedup_vs_sweep" (st_ /. rt)

(* ------------------------------------------------------------------ *)
(* C7. Hot-path cost of the steady-state loop: throughput + GC load.    *)

let c7 () =
  section "C7" "hot-path cost: rounds/sec, ns/message, minor words/message";
  let pipeline_sizes =
    if !quick then [ 1_023 ] else [ 1_023; 4_095; 16_383; 65_535 ]
  in
  row "  deep pipelines, 2000 inputs, stage 1 keeps 1 message in 512:@.";
  row "  %8s %12s %12s %12s %12s %10s@." "nodes" "total" "rounds/s" "ns/msg"
    "mwords/msg" "minor GCs";
  List.iter
    (fun stages ->
      let g = Topo_gen.pipeline ~stages ~cap:2 in
      let kernels () =
        Filters.for_graph g (fun v outs ->
            if v = 1 then Filters.periodic ~keep_every:512 outs
            else Filters.passthrough outs)
      in
      let inputs = 2_000 in
      let run () =
        Engine.run ~graph:g ~kernels:(kernels ()) ~inputs
          ~avoidance:Engine.No_avoidance ()
      in
      (* one warm-up run keeps the graph/closure setup cost out of the
         GC window; the measured run is wrapped whole, so the reported
         minor words include per-run setup (arrays, channels) — a fixed
         cost that the per-message division dilutes at steady state *)
      ignore (run ());
      Gc.compact ();
      let gc, (t, (s : Report.t)) = with_gc_stats (fun () -> time_once run) in
      let rounds = Option.value (Report.rounds s) ~default:0 in
      let messages = max 1 (s.Report.data_messages + s.Report.dummy_messages) in
      row "  %8d %a %12.0f %12.1f %12.1f %10d@." (stages + 1) pp_ns t
        (float rounds /. (t /. 1e9))
        (t /. float messages)
        (gc.minor_words /. float messages)
        gc.minor_collections;
      headline "C7"
        (Printf.sprintf "pipeline_%d_rounds_per_sec" (stages + 1))
        (float rounds /. (t /. 1e9));
      headline "C7"
        (Printf.sprintf "pipeline_%d_ns_per_message" (stages + 1))
        (t /. float messages);
      headline "C7"
        (Printf.sprintf "pipeline_%d_minor_words_per_message" (stages + 1))
        (gc.minor_words /. float messages))
    pipeline_sizes;
  row "  S1 random CS4 workloads (Bernoulli filtering, non-prop wrapper):@.";
  let trials = if !quick then 40 else 200 in
  let inputs = 80 in
  let rng = Random.State.make [| 31337 |] in
  let elapsed = ref 0. and msgs = ref 0 and rounds = ref 0 in
  let minor = ref 0. and collections = ref 0 in
  for _ = 1 to trials do
    let g =
      Topo_gen.random_cs4 rng
        ~blocks:(1 + Random.State.int rng 3)
        ~block_edges:(2 + Random.State.int rng 8)
        ~max_cap:3
    in
    let seed = Random.State.int rng 1_000_000 in
    let kernels =
      let krng = Random.State.make [| seed |] in
      Filters.for_graph g (fun _ outs -> Filters.bernoulli krng ~keep:0.6 outs)
    in
    match Compiler.compile Compiler.Non_propagation g with
    | Error _ -> ()
    | Ok p ->
      let avoidance =
        Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
      in
      let gc, (t, (s : Report.t)) =
        with_gc_stats (fun () ->
            time_once (fun () ->
                Engine.run ~graph:g ~kernels ~inputs ~avoidance ()))
      in
      elapsed := !elapsed +. t;
      msgs := !msgs + s.data_messages + s.dummy_messages;
      rounds := !rounds + Option.value (Report.rounds s) ~default:0;
      minor := !minor +. gc.minor_words;
      collections := !collections + gc.minor_collections
  done;
  row "  %8s %12s %12s %12s %12s %10s@." "trials" "total" "rounds/s" "ns/msg"
    "mwords/msg" "minor GCs";
  row "  %8d %a %12.0f %12.1f %12.1f %10d@." trials pp_ns !elapsed
    (float !rounds /. (!elapsed /. 1e9))
    (!elapsed /. float (max 1 !msgs))
    (!minor /. float (max 1 !msgs))
    !collections;
  row "  (minor words per message = Gc.minor_words delta over the whole run@.";
  row "   divided by delivered messages; table tracked in EXPERIMENTS.md C7)@.";
  headline "C7" "cs4_ns_per_message" (!elapsed /. float (max 1 !msgs));
  headline "C7" "cs4_minor_words_per_message" (!minor /. float (max 1 !msgs))

(* ------------------------------------------------------------------ *)
(* O1. Observability overhead: bare run vs null sink vs ring sink.      *)

let o1 () =
  section "O1" "event-stream tracing overhead (C6 pipeline workload)";
  let module Obs = Fstream_obs in
  row "  deep pipelines, 2000 inputs, stage 1 keeps 1 message in 512:@.";
  row "  %8s %12s %12s %12s %9s %9s@." "nodes" "no sink" "null sink"
    "ring sink" "null ovh" "ring ovh";
  List.iter
    (fun stages ->
      let g = Topo_gen.pipeline ~stages ~cap:2 in
      let kernels () =
        Filters.for_graph g (fun v outs ->
            if v = 1 then Filters.periodic ~keep_every:512 outs
            else Filters.passthrough outs)
      in
      let inputs = 2_000 in
      (* one shared closure for every configuration: the engine
         normalizes [Sink.null] away, so no-sink and null-sink must
         run the same code — and sharing the call site keeps
         code-layout effects (measured at several percent on this
         workload) out of the comparison. Samples are interleaved and
         the heap compacted before each so GC drift hits every
         configuration equally; per-configuration best is reported. *)
      let run_with ?sink () =
        Engine.run ?sink ~graph:g ~kernels:(kernels ()) ~inputs
          ~avoidance:Engine.No_avoidance ()
      in
      let t_none = ref infinity
      and t_null = ref infinity
      and t_ring = ref infinity in
      let ring = Obs.Ring.create () in
      let sample cell f =
        Gc.compact ();
        let t, _ = time_once f in
        cell := Float.min !cell t
      in
      for _ = 1 to 9 do
        sample t_none (fun () -> run_with ());
        sample t_null (fun () -> run_with ~sink:Obs.Sink.null ());
        Obs.Ring.clear ring;
        sample t_ring (fun () -> run_with ~sink:(Obs.Ring.sink ring) ())
      done;
      row "  %8d %a %a %a %8.1f%% %8.1f%%@." (stages + 1) pp_ns !t_none pp_ns
        !t_null pp_ns !t_ring
        (100. *. ((!t_null /. !t_none) -. 1.))
        (100. *. ((!t_ring /. !t_none) -. 1.)))
    [ 1_023; 4_095; 16_383; 65_535 ];
  row "  (null-sink instrumentation is one branch per potential event; the@.";
  row "   acceptance bar is < 5%% — measured numbers in EXPERIMENTS.md, O1)@."

(* ------------------------------------------------------------------ *)
(* V1. Cross-validation: fast algorithms == exponential baseline.       *)

let v1 () =
  section "V1" "cross-validation of every fast algorithm vs the baseline";
  let families =
    [
      ( "random SP",
        fun rng ->
          Topo_gen.random_sp rng
            ~target_edges:(2 + Random.State.int rng 14)
            ~max_cap:7 );
      ( "random ladder",
        fun rng ->
          Topo_gen.random_ladder rng
            ~rungs:(1 + Random.State.int rng 6)
            ~segment_edges:(1 + Random.State.int rng 4)
            ~max_cap:7 );
      ( "random CS4",
        fun rng ->
          Topo_gen.random_cs4 rng
            ~blocks:(1 + Random.State.int rng 4)
            ~block_edges:(2 + Random.State.int rng 10)
            ~max_cap:7 );
    ]
  in
  let algorithms =
    [
      ("propagation", Compiler.Propagation, fun g -> General.propagation g);
      ( "non-propagation",
        Compiler.Non_propagation,
        fun g -> General.non_propagation g );
      ("relay", Compiler.Relay_propagation, fun g -> General.relay_propagation g);
    ]
  in
  List.iter
    (fun (fname, make) ->
      let rng = Random.State.make [| 1234 |] in
      let graphs = List.init 200 (fun _ -> make rng) in
      List.iter
        (fun (aname, algo, baseline) ->
          let mismatches = ref 0 and edges = ref 0 in
          List.iter
            (fun g ->
              match Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } algo g with
              | Error _ -> incr mismatches
              | Ok p ->
                let base = baseline g in
                edges := !edges + Array.length base;
                Array.iteri
                  (fun i v ->
                    if not (Interval.equal v base.(i)) then incr mismatches)
                  p.intervals)
            graphs;
          row "  %-14s x %-16s: %6d edges checked, %d mismatches %s@." fname
            aname !edges !mismatches
            (ok (!mismatches = 0)))
        algorithms)
    families

(* ------------------------------------------------------------------ *)
(* S1. Simulation: deadlock rates and dummy overhead.                   *)

let s1 () =
  section "S1" "deadlock avoidance in simulation (random CS4 workloads)";
  let trials = 200 and inputs = 80 in
  let mk_graph rng =
    Topo_gen.random_cs4 rng
      ~blocks:(1 + Random.State.int rng 3)
      ~block_edges:(2 + Random.State.int rng 8)
      ~max_cap:3
  in
  let adversarial g seed =
    let rng = Random.State.make [| seed |] in
    Filters.for_graph g (fun _ outs -> Filters.bernoulli rng ~keep:0.6 outs)
  in
  let paper_pattern g seed =
    let rng = Random.State.make [| seed |] in
    Filters.for_graph g (fun v outs ->
        if Graph.in_degree g v = 0 || Graph.out_degree g v = 1 then
          Filters.bernoulli rng ~keep:0.6 outs
        else Filters.passthrough outs)
  in
  let experiment label mk_kernels configs =
    row "  -- %s --@." label;
    row "  %-34s %9s %10s %10s %9s@." "wrapper" "deadlock" "data" "dummies"
      "overhead";
    List.iter
      (fun (name, wrapper_of) ->
        let rng = Random.State.make [| 31337 |] in
        let deadlocks = ref 0 and data = ref 0 and dummies = ref 0 in
        for _ = 1 to trials do
          let g = mk_graph rng in
          let seed = Random.State.int rng 1_000_000 in
          match wrapper_of g with
          | None -> ()
          | Some avoidance ->
            let s =
              Engine.run ~graph:g ~kernels:(mk_kernels g seed) ~inputs
                ~avoidance ()
            in
            data := !data + s.Report.data_messages;
            dummies := !dummies + s.Report.dummy_messages;
            if s.Report.outcome = Report.Deadlocked then incr deadlocks
        done;
        row "  %-34s %6d/%-3d %10d %10d %8.1f%%@." name !deadlocks trials
          !data !dummies
          (100. *. float !dummies /. float (max 1 !data)))
      configs
  in
  let none _g = Some Engine.No_avoidance in
  let prop g =
    match Compiler.compile Compiler.Propagation g with
    | Ok p ->
      Some (Engine.Propagation (Compiler.propagation_thresholds g p.intervals))
    | Error _ -> None
  in
  let nonprop g =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p ->
      Some (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
    | Error _ -> None
  in
  let hybrid g =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> Some (Engine.Propagation (Compiler.send_thresholds g p.intervals))
    | Error _ -> None
  in
  experiment
    "paper workload: filtering at cycle sources and relays (Fig. 1 pattern)"
    paper_pattern
    [
      ("no avoidance", none);
      ("propagation (paper intervals)", prop);
      ("non-propagation (paper intervals)", nonprop);
    ];
  experiment "adversarial workload: every node filters every channel"
    adversarial
    [
      ("no avoidance", none);
      ("propagation (paper intervals)", prop);
      ("non-propagation (paper intervals)", nonprop);
      ("propagation wrapper, L/h budgets", hybrid);
    ];
  row "  (the paper-interval propagation table is only sound for the paper's@.";
  row "   filtering pattern — see DESIGN.md 'Deviations' and EXPERIMENTS.md)@."

(* ------------------------------------------------------------------ *)
(* V2. Exhaustive model checking of the wrappers on small instances.    *)

let v2 () =
  section "V2"
    "exhaustive model checking (all schedules x all filtering choices)";
  let nonprop g =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
    | Error e -> failwith (Compiler.error_to_string e)
  in
  let prop g =
    match Compiler.compile Compiler.Propagation g with
    | Ok p -> Engine.Propagation (Compiler.propagation_thresholds g p.intervals)
    | Error e -> failwith (Compiler.error_to_string e)
  in
  let report name r =
    row "  %-44s %s@." name
      (match r with
      | Verify.Safe { states } ->
        Printf.sprintf "SAFE (proof over %d states)" states
      | Verify.Deadlocks { states; trace } ->
        Printf.sprintf "DEADLOCKS (%d states, %d-step trace)" states
          (List.length trace)
      | Verify.Out_of_budget { states } ->
        Printf.sprintf "undecided (%d states)" states)
  in
  let fig2 = Topo_gen.fig2_triangle ~cap:1 in
  report "fig2, no avoidance"
    (Verify.check ~graph:fig2 ~avoidance:Engine.No_avoidance ~inputs:4 ());
  report "fig2, non-propagation"
    (Verify.check ~graph:fig2 ~avoidance:(nonprop fig2) ~inputs:4 ());
  report "fig2, propagation"
    (Verify.check ~graph:fig2 ~avoidance:(prop fig2) ~inputs:4 ());
  let ero = Topo_gen.erosion_counterexample () in
  report "erosion instance, paper propagation table"
    (Verify.check ~strategy:`Dfs ~graph:ero ~avoidance:(prop ero) ~inputs:4 ());
  report "erosion instance, non-propagation table"
    (Verify.check ~graph:ero ~avoidance:(nonprop ero) ~inputs:4 ());
  row "  (SAFE verdicts quantify over every kernel behaviour — they are@.";
  row "   machine-checked instances of the SPAA-2010 soundness theorem)@."

(* ------------------------------------------------------------------ *)
(* S2. The same avoidance story on the real parallel runtime.           *)

let s2 () =
  section "S2" "shared-memory parallel runtime (sharded domain pool)";
  let cases =
    [
      ("fig2 triangle", Topo_gen.fig2_triangle ~cap:2, 200);
      ("fig4-left ladder", Topo_gen.fig4_left ~cap:2, 200);
      ("fig1 split-join", Topo_gen.fig1_split_join ~branches:4 ~cap:2, 200);
    ]
  in
  row "  %-18s %-22s %-22s@." "topology" "no avoidance" "non-propagation";
  List.iter
    (fun (name, g, inputs) ->
      let kernels () =
        Filters.for_graph g (fun v outs ->
            let r = Random.State.make [| 5; v |] in
            if Graph.out_degree g v = 0 then Filters.passthrough outs
            else Filters.bernoulli r ~keep:0.6 outs)
      in
      let show (s : Report.t) =
        Printf.sprintf "%s (%d delivered)"
          (match s.outcome with
          | Report.Completed -> "completed"
          | _ -> "DEADLOCKED")
          s.sink_data
      in
      let bare =
        P.run ~stall_ms:150 ~graph:g ~kernels:(kernels ()) ~inputs
          ~avoidance:Engine.No_avoidance ()
      in
      let safe =
        match Compiler.compile Compiler.Non_propagation g with
        | Ok p ->
          P.run ~stall_ms:150 ~graph:g ~kernels:(kernels ()) ~inputs
            ~avoidance:
              (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
            ()
        | Error _ -> bare
      in
      row "  %-18s %-22s %-22s@." name (show bare) (show safe))
    cases;
  row "  (kernels race across real domains: the deadlocks and their@.";
  row "   avoidance above are preemptive-schedule concurrency, not@.";
  row "   simulation — outcomes match the sequential engine)@."

(* ------------------------------------------------------------------ *)
(* P1. Pool runtime scaling: throughput vs worker domains.              *)

let p1 () =
  section "P1" "pool runtime scaling: throughput vs worker domains";
  let sizes = if !quick then [ 1_023 ] else [ 1_023; 4_095; 16_383 ] in
  let domain_counts = if !quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let inputs = if !quick then 16 else 48 in
  (* Per-firing synthetic compute (integer mixing, ~1 us): the paper's
     deployment model has kernels doing real work per message. With
     free kernels a run is pure scheduling and no pool amortizes its
     locks against the sequential engine's ~15 ns/message hot path —
     the zero-work row below keeps that overhead honest. *)
  let work = if !quick then 300 else 800 in
  let spin w =
    let x = ref 0x9e3779b9 in
    for _ = 1 to w do
      x := !x lxor (!x lsl 13);
      x := !x lxor (!x lsr 7);
      x := !x lxor (!x lsl 17)
    done;
    ignore (Sys.opaque_identity !x)
  in
  let kernels g w () =
    Filters.for_graph g (fun _ outs ->
        fun ~seq:_ ~got:_ ->
         spin w;
         outs)
  in
  row "  passthrough pipelines, %d inputs, ~%d-iteration kernels;@." inputs
    work;
  row "  host has %d core(s) available — speedups need real cores@."
    (Domain.recommended_domain_count ());
  row "  %-12s %-10s %12s %14s %9s@." "stages" "runtime" "wall" "msgs/sec"
    "vs pool-1";
  List.iter
    (fun stages ->
      let g = Topo_gen.pipeline ~stages ~cap:4 in
      let msgs = float (stages * inputs) in
      let run_seq () =
        Engine.run ~graph:g ~kernels:(kernels g work ()) ~inputs
          ~avoidance:Engine.No_avoidance ()
      in
      let seq_ns = time_best ~repeat:(if !quick then 1 else 2) run_seq in
      row "  %-12d %-10s %12s %14.0f %9s@." stages "sequential"
        (Format.asprintf "%a" pp_ns seq_ns)
        (msgs /. (seq_ns /. 1e9))
        "-";
      headline "P1"
        (Printf.sprintf "pipeline_%d_sequential_msgs_per_sec" stages)
        (msgs /. (seq_ns /. 1e9));
      let base = ref 0. in
      List.iter
        (fun domains ->
          let run_pool () =
            let r =
              P.run ~domains ~graph:g ~kernels:(kernels g work ()) ~inputs
                ~avoidance:Engine.No_avoidance ()
            in
            assert (r.Report.outcome = Report.Completed);
            r
          in
          let ns = time_best ~repeat:(if !quick then 1 else 2) run_pool in
          if domains = 1 then base := ns;
          row "  %-12d %-10s %12s %14.0f %8.2fx@." stages
            (Printf.sprintf "pool-%d" domains)
            (Format.asprintf "%a" pp_ns ns)
            (msgs /. (ns /. 1e9))
            (!base /. ns);
          headline "P1"
            (Printf.sprintf "pipeline_%d_pool%d_msgs_per_sec" stages domains)
            (msgs /. (ns /. 1e9)))
        domain_counts)
    sizes;
  (* scheduling overhead alone: zero-work kernels on the smallest size *)
  let stages = List.hd sizes in
  let g = Topo_gen.pipeline ~stages ~cap:4 in
  let msgs = float (stages * inputs) in
  let seq_ns =
    time_best ~repeat:2 (fun () ->
        Engine.run ~graph:g ~kernels:(kernels g 0 ()) ~inputs
          ~avoidance:Engine.No_avoidance ())
  in
  row "  %-12s %-10s %12s %14.0f %9s@."
    (Printf.sprintf "%d (0-work)" stages)
    "sequential"
    (Format.asprintf "%a" pp_ns seq_ns)
    (msgs /. (seq_ns /. 1e9))
    "-";
  headline "P1" "zero_work_sequential_msgs_per_sec" (msgs /. (seq_ns /. 1e9));
  List.iter
    (fun domains ->
      let ns =
        time_best ~repeat:2 (fun () ->
            P.run ~domains ~graph:g ~kernels:(kernels g 0 ()) ~inputs
              ~avoidance:Engine.No_avoidance ())
      in
      row "  %-12s %-10s %12s %14.0f %9s@."
        (Printf.sprintf "%d (0-work)" stages)
        (Printf.sprintf "pool-%d" domains)
        (Format.asprintf "%a" pp_ns ns)
        (msgs /. (ns /. 1e9))
        "-";
      headline "P1"
        (Printf.sprintf "zero_work_pool%d_msgs_per_sec" domains)
        (msgs /. (ns /. 1e9)))
    [ 1; List.fold_left max 1 domain_counts ]

(* ------------------------------------------------------------------ *)
(* FU1. Kernel fusion: grain amplification on deep pipelines.           *)

(* ISSUE PR6 calls this section §F1; it is named FU1 here because F1 is
   already the paper's Fig. 1 experiment. The claim under test: with
   fusion a 64k-stage zero-work pipeline on the pool runtime lands
   within 2x of the sequential engine's throughput (stage-firings/sec),
   where the unfused pool pays per-message scheduling on every hop. On
   a single-core CI box the pool cannot win anything; the ratio is the
   honest overhead figure there (see EXPERIMENTS.md FU1). *)
let fu1 () =
  section "FU1" "kernel fusion: 64k-stage pipeline, pool vs sequential";
  let stages = if !quick then 4_095 else 65_535 in
  let inputs = if !quick then 8 else 16 in
  let g = Topo_gen.pipeline ~stages ~cap:4 in
  let kernels () = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let fusion = Fusion.fuse g in
  let fg = fusion.Fusion.graph in
  row "  %d stages fused into %d compound kernels (%d channels collapsed);@."
    stages (Graph.num_nodes fg)
    (Fusion.internal_edges fusion);
  row "  zero-work passthrough kernels, %d inputs — pure scheduling cost;@."
    inputs;
  row "  host has %d core(s) available@." (Domain.recommended_domain_count ());
  (* throughput unit: original stage firings per second. The fused runs
     do the same logical work per input (every stage's kernel runs) but
     push only boundary messages, so raw msgs/sec would flatter them. *)
  let firings = float (stages * inputs) in
  let repeat = if !quick then 1 else 2 in
  let domains = min 4 (max 1 (Domain.recommended_domain_count ())) in
  let check (r : Report.t) = assert (r.Report.sink_data = inputs) in
  let time name key thunk =
    let ns = time_best ~repeat thunk in
    row "  %-22s %12s %16.0f@." name
      (Format.asprintf "%a" pp_ns ns)
      (firings /. (ns /. 1e9));
    headline "FU1" key (firings /. (ns /. 1e9));
    ns
  in
  row "  %-22s %12s %16s@." "configuration" "wall" "stage-firings/s";
  let seq_ns =
    time "sequential" "sequential_firings_per_sec" (fun () ->
        let r =
          Engine.run ~graph:g ~kernels:(kernels ()) ~inputs
            ~avoidance:Engine.No_avoidance ()
        in
        check r;
        r)
  in
  let _ =
    time "sequential --fuse" "sequential_fused_firings_per_sec" (fun () ->
        let fw = Fused.make fusion (kernels ()) in
        let r =
          Engine.run ~graph:fg ~kernels:(Fused.kernels fw) ~inputs
            ~avoidance:Engine.No_avoidance ()
        in
        check r;
        r)
  in
  let _ =
    time
      (Printf.sprintf "pool-%d" domains)
      (Printf.sprintf "pool%d_firings_per_sec" domains)
      (fun () ->
        let r =
          P.run ~domains ~graph:g ~kernels:(kernels ()) ~inputs
            ~avoidance:Engine.No_avoidance ()
        in
        check r;
        r)
  in
  let pool_fused_ns =
    time
      (Printf.sprintf "pool-%d --fuse" domains)
      (Printf.sprintf "pool%d_fused_firings_per_sec" domains)
      (fun () ->
        let fw = Fused.make fusion (kernels ()) in
        let r =
          P.run ~domains ~graph:fg ~kernels:(Fused.kernels fw) ~inputs
            ~avoidance:Engine.No_avoidance ()
        in
        check r;
        r)
  in
  let ratio = seq_ns /. pool_fused_ns in
  headline "FU1" "pool_fused_over_sequential" ratio;
  row "  pool --fuse vs sequential: %.2fx (headline wants >= 0.5x): %s@."
    ratio
    (ok (ratio >= 0.5))

(* ------------------------------------------------------------------ *)
(* SV1. Multi-tenant serving: one shared pool vs N isolated runs.       *)

(* The serving layer's claim: admitting N tenants onto one pool (lint
   at the door, one threshold compile per distinct topology, fair-share
   interleaving) beats giving each application its own run — both the
   sequential engine back-to-back and a fresh pool per application
   (which pays domain spawn/join N times). Per-tenant work is small and
   topologies repeat, the regime a daemon actually sees. *)
let sv1 () =
  let module Serve = Fstream_serve.Serve in
  section "SV1" "multi-tenant serving: shared pool vs N isolated runs";
  let tenants = if !quick then 12 else 60 in
  let inputs = if !quick then 24 else 64 in
  let work = if !quick then 150 else 400 in
  let topologies =
    [|
      Topo_gen.pipeline ~stages:48 ~cap:4;
      Topo_gen.fig1_split_join ~branches:3 ~cap:2;
      Topo_gen.random_cs4 (Random.State.make [| 7 |]) ~blocks:3 ~block_edges:8
        ~max_cap:4;
    |]
  in
  let spin w =
    let x = ref 0x9e3779b9 in
    for _ = 1 to w do
      x := !x lxor (!x lsl 13);
      x := !x lxor (!x lsr 7);
      x := !x lxor (!x lsl 17)
    done;
    ignore (Sys.opaque_identity !x)
  in
  let kernels g i () =
    Filters.for_graph g (fun v outs ->
        let rng = Random.State.make [| i; v |] in
        fun ~seq ~got ->
         spin work;
         Filters.bernoulli rng ~keep:0.85 outs ~seq ~got)
  in
  let domains = min 4 (max 1 (Domain.recommended_domain_count ())) in
  row "  %d tenants over %d distinct topologies, %d inputs each,@." tenants
    (Array.length topologies) inputs;
  row "  ~%d-iteration kernels, non-propagation avoidance;@." work;
  row "  host has %d core(s) available — pool width %d@."
    (Domain.recommended_domain_count ())
    domains;
  let repeat = if !quick then 1 else 2 in
  (* direct per-tenant avoidance tables (compiled once, outside the
     timed region for the isolated configurations: the serve run is the
     only one charged for compilation, and it still wins) *)
  let avoidance =
    Array.map
      (fun g ->
        match Compiler.compile Compiler.Non_propagation g with
        | Ok p ->
          Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
        | Error _ -> assert false)
      topologies
  in
  let check (r : Report.t) = assert (r.Report.outcome = Report.Completed) in
  row "  %-26s %12s %14s@." "configuration" "wall" "tenants/sec";
  let time name key thunk =
    let ns = time_best ~repeat thunk in
    row "  %-26s %12s %14.1f@." name
      (Format.asprintf "%a" pp_ns ns)
      (float tenants /. (ns /. 1e9));
    headline "SV1" key (float tenants /. (ns /. 1e9));
    ns
  in
  let serve_ns =
    time "serve (one shared pool)" "serve_tenants_per_sec" (fun () ->
        let t = Serve.create ~domains () in
        Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
        let sessions =
          Array.init tenants (fun i ->
              let g = topologies.(i mod Array.length topologies) in
              match Serve.admit t ~mode:Serve.Non_propagation g with
              | Ok s -> s
              | Error _ -> assert false)
        in
        Array.iteri
          (fun i s ->
            Serve.start t
              ~kernels:(kernels topologies.(i mod Array.length topologies) i ())
              ~inputs s)
          sessions;
        Array.iter (fun s -> check (Serve.await s)) sessions;
        assert
          ((Serve.stats t).Serve.compiles = Array.length topologies))
  in
  let seq_ns =
    time "sequential, back-to-back" "sequential_tenants_per_sec" (fun () ->
        for i = 0 to tenants - 1 do
          let g = topologies.(i mod Array.length topologies) in
          check
            (Run.exec
               (Run.sequential
                  ~avoidance:avoidance.(i mod Array.length topologies)
                  ())
               ~graph:g ~kernels:(kernels g i ()) ~inputs ())
        done)
  in
  let isolated_ns =
    time "pool per tenant" "isolated_pool_tenants_per_sec" (fun () ->
        for i = 0 to tenants - 1 do
          let g = topologies.(i mod Array.length topologies) in
          check
            (Run.exec
               (Run.pool ~domains
                  ~avoidance:avoidance.(i mod Array.length topologies)
                  ())
               ~graph:g ~kernels:(kernels g i ()) ~inputs ())
        done)
  in
  headline "SV1" "serve_over_sequential" (seq_ns /. serve_ns);
  headline "SV1" "serve_over_isolated_pools" (isolated_ns /. serve_ns);
  row "  serve vs sequential: %.2fx, vs pool-per-tenant: %.2fx@."
    (seq_ns /. serve_ns)
    (isolated_ns /. serve_ns)

(* ------------------------------------------------------------------ *)
(* A1. Bandwidth ablation: what do computed intervals save over SDF?    *)

let a1 () =
  section "A1"
    "bandwidth ablation: SDF emulation vs computed interval tables";
  let trials = 150 and inputs = 80 in
  row "  %-34s %9s %10s %10s %9s %9s@." "threshold table" "deadlock" "data"
    "dummies" "overhead" "rounds";
  let configs =
    [
      ( "SDF emulation (send every seq)",
        fun g -> Some (Engine.Non_propagation (Compiler.sdf_thresholds g)) );
      ( "relay table (min L, no /h)",
        fun g ->
          match Compiler.compile Compiler.Relay_propagation g with
          | Ok p -> Some (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
          | Error _ -> None );
      ( "non-propagation table (L/h)",
        fun g ->
          match Compiler.compile Compiler.Non_propagation g with
          | Ok p -> Some (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
          | Error _ -> None );
    ]
  in
  List.iter
    (fun (name, wrapper_of) ->
      let rng = Random.State.make [| 4242 |] in
      let deadlocks = ref 0 and data = ref 0 and dummies = ref 0 in
      let rounds = ref 0 in
      for _ = 1 to trials do
        let g =
          Topo_gen.random_cs4 rng
            ~blocks:(1 + Random.State.int rng 3)
            ~block_edges:(2 + Random.State.int rng 8)
            ~max_cap:3
        in
        let seed = Random.State.int rng 1_000_000 in
        let krng = Random.State.make [| seed |] in
        let kernels =
          Filters.for_graph g (fun _ outs ->
              Filters.bernoulli krng ~keep:0.6 outs)
        in
        match wrapper_of g with
        | None -> ()
        | Some avoidance ->
          let s = Engine.run ~graph:g ~kernels ~inputs ~avoidance () in
          data := !data + s.Report.data_messages;
          dummies := !dummies + s.Report.dummy_messages;
          rounds := !rounds + Option.value (Report.rounds s) ~default:0;
          if s.Report.outcome = Report.Deadlocked then incr deadlocks
      done;
      row "  %-34s %6d/%-3d %10d %10d %8.1f%% %9d@." name !deadlocks trials
        !data !dummies
        (100. *. float !dummies /. float (max 1 !data))
        (!rounds / trials))
    configs;
  row "  (the relay table is cheapest but NOT run-sum safe — its deadlocks@.";
  row "   above are real; L/h is the cheapest sound table, still well below@.";
  row "   SDF padding: the interval computation pays for itself)@."

(* ------------------------------------------------------------------ *)
(* A2. Repair ablation: butterfly via general route vs repaired ladder. *)

let a2 () =
  section "A2" "topology repair: butterfly vs repaired SP-ladder";
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  let t_gen =
    time_best (fun () -> Compiler.compile Compiler.Non_propagation g)
  in
  let r = Result.get_ok (Repair.repair g) in
  let g' = r.Repair.graph in
  let t_fast =
    time_best (fun () -> Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } Compiler.Non_propagation g')
  in
  row "  original butterfly: general route, %d cycles enumerated, %a@."
    (Cycles.count g) pp_ns t_gen;
  row "  repaired ladder: %d reroute(s), CS4 route, %a@."
    (List.length r.Repair.reroutes) pp_ns t_fast;
  (* scale the same comparison: stacked butterflies become exponentially
     expensive for the general route, repaired chains stay polynomial *)
  row "  %6s %10s %14s %14s@." "stages" "cycles" "general" "repaired";
  List.iter
    (fun stages ->
      let b = Graph.num_nodes g - 1 in
      let edges =
        List.concat_map
          (fun s ->
            let off = s * b in
            List.map
              (fun (e : Graph.edge) -> (e.src + off, e.dst + off, e.cap))
              (Graph.edges g))
          (List.init stages Fun.id)
      in
      let big = Graph.make ~nodes:((stages * b) + 1) edges in
      let t_general =
        time_best ~repeat:1 (fun () -> General.non_propagation big)
      in
      let rep = Result.get_ok (Repair.repair big) in
      let t_rep =
        time_best ~repeat:1 (fun () ->
            Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } Compiler.Non_propagation
              rep.Repair.graph)
      in
      row "  %6d %10d %a %a@." stages (Cycles.count big) pp_ns t_general pp_ns
        t_rep)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* A3. Tightness: how much threshold slack before the wedge returns?    *)

let a3 () =
  section "A3" "interval tightness on Fig. 2 (caps 2), by model checking";
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let configs =
    [
      ("computed thresholds (1,1,4)", [| Some 1; Some 1; Some 4 |]);
      ("branch budgets doubled (2,2,4)", [| Some 2; Some 2; Some 4 |]);
      ("branch budgets tripled (3,3,4)", [| Some 3; Some 3; Some 4 |]);
      ("shortcut budget doubled (1,1,8)", [| Some 1; Some 1; Some 8 |]);
    ]
  in
  List.iter
    (fun (name, t) ->
      (* the computed table needs the whole space for its SAFE verdict;
         BFS at 6 inputs covers it, DFS at 8 finds the wedges fast *)
      let strategy, inputs =
        if t = [| Some 1; Some 1; Some 4 |] then (`Bfs, 6) else (`Dfs, 8)
      in
      let r =
        Verify.check ~strategy ~graph:g
          ~avoidance:(Engine.Non_propagation (Thresholds.of_array g t))
          ~inputs ()
      in
      row "  %-34s %s@." name
        (match r with
        | Verify.Safe { states } -> Printf.sprintf "SAFE (%d states)" states
        | Verify.Deadlocks { states; _ } ->
          Printf.sprintf "DEADLOCKS (found in %d states)" states
        | Verify.Out_of_budget _ -> "undecided"))
    configs;
  row "  (the computed table is safe and within a small constant of the@.";
  row "   breaking point — 'minimizing dummy message traffic', verified)@."

(* ------------------------------------------------------------------ *)
(* micro: bechamel microbenchmarks of the core computations.            *)

let micro () =
  section "micro" "bechamel microbenchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let sp_g =
    Topo_gen.random_sp
      (Random.State.make [| 5 |])
      ~target_edges:2_000 ~max_cap:8
  in
  let sp_tree =
    match Sp_recognize.recognize sp_g with Ok t -> t | Error _ -> assert false
  in
  let lad_g = Topo_gen.wide_ladder ~rungs:200 ~cap:3 in
  let lad =
    match Cs4.classify lad_g with
    | Ok { blocks = [ (_, _, Cs4.Ladder_block l) ]; _ } -> l
    | _ -> assert false
  in
  let hex = Topo_gen.fig3_hexagon () in
  let tests =
    [
      Test.make ~name:"recognize sp (2k edges)"
        (Staged.stage (fun () -> Sp_recognize.recognize sp_g));
      Test.make ~name:"setivals (2k edges)"
        (Staged.stage (fun () -> Sp_prop.intervals sp_g sp_tree));
      Test.make ~name:"sp nonprop (2k edges)"
        (Staged.stage (fun () -> Sp_nonprop.intervals sp_g sp_tree));
      Test.make ~name:"ladder prop (200 rungs)"
        (Staged.stage (fun () -> Ladder_prop.intervals lad_g lad));
      Test.make ~name:"ladder nonprop (200 rungs)"
        (Staged.stage (fun () -> Ladder_nonprop.intervals lad_g lad));
      Test.make ~name:"classify cs4 (200-rung ladder)"
        (Staged.stage (fun () -> Cs4.classify lad_g));
      Test.make ~name:"general baseline (hexagon)"
        (Staged.stage (fun () -> General.non_propagation hex));
      Test.make ~name:"simulate fig2 (100 inputs)"
        (Staged.stage (fun () ->
             let g = Topo_gen.fig2_triangle ~cap:2 in
             let kernels =
               Filters.for_graph g (fun v outs ->
                   if v = 0 then Filters.block_edge 2 outs
                   else Filters.passthrough outs)
             in
             Engine.run ~graph:g ~kernels ~inputs:100
               ~avoidance:
                 (Engine.Non_propagation
                    (Thresholds.of_array g [| Some 1; Some 1; Some 4 |]))
               ()));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name result ->
          let est = Analyze.one ols instance result in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> row "  %-34s %a@." name pp_ns ns
          | _ -> row "  %-34s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* LP1. Polynomial LP interval backend vs the exact cycle route.        *)

let lp1 () =
  section "LP1" "LP interval backend vs exact cycle enumeration";
  let compile_with backend g =
    Compiler.compile
      ~options:{ Compiler.Options.default with backend }
      Compiler.Non_propagation g
  in
  let cycles_of = function
    | Ok { Compiler.route = Compiler.General_route { cycles }; _ } ->
      string_of_int cycles
    | Ok { Compiler.route = Compiler.Cs4_route _; _ } -> "cs4"
    | _ -> "-"
  in
  (* scaling: stacked dense bipartite layers; the undirected simple
     cycle count grows ~12x per layer, the LP row count linearly *)
  row "  layered_dense width 3, caps 2 — exact route vs LP backend:@.";
  row "  %6s %6s %10s %12s %12s %10s@." "layers" "edges" "cycles" "exact"
    "lp" "speedup";
  let both_sizes = if !quick then [ 2; 3; 4 ] else [ 2; 3; 4; 5 ] in
  let cliff = ref 0. in
  List.iter
    (fun layers ->
      let g = Topo_gen.layered_dense ~layers ~width:3 ~cap:2 in
      let t_exact, pe = time_once (fun () -> compile_with Compiler.Exact g) in
      let t_lp, pl = time_once (fun () -> compile_with Compiler.Lp g) in
      (match (pe, pl) with
      | Ok pe, Ok pl ->
        (* LP finite wherever exact is finite: same avoidance reach *)
        Array.iteri
          (fun i v ->
            if Interval.is_finite v then
              assert (Interval.is_finite pl.Compiler.intervals.(i)))
          pe.Compiler.intervals
      | _ -> assert false);
      cliff := t_exact /. t_lp;
      row "  %6d %6d %10s %a %a %9.1fx@." layers (Graph.num_edges g)
        (cycles_of pe) pp_ns t_exact pp_ns t_lp (t_exact /. t_lp);
      headline "LP1"
        (Printf.sprintf "lp_compile_ns_layers_%d" layers)
        t_lp)
    both_sizes;
  headline "LP1" "exact_over_lp_at_cliff" !cliff;
  (* beyond the exact horizon: 7 layers carries ~28M simple cycles,
     past the default 10M budget, so the exact route's only possible
     answer is Cycle_budget_exceeded (exit 14 at the CLI) — measured
     here at a reduced budget so the bench stays snappy; the LP row
     count stays linear in the edge count *)
  let giveup_budget = if !quick then 1_000 else 20_000 in
  List.iter
    (fun layers ->
      let g = Topo_gen.layered_dense ~layers ~width:3 ~cap:2 in
      let t_give, r =
        time_once (fun () ->
            Compiler.compile
              ~options:
                { Compiler.Options.default with max_cycles = giveup_budget }
              Compiler.Non_propagation g)
      in
      let gave_up =
        match r with
        | Error (Compiler.Cycle_budget_exceeded _) -> true
        | _ -> false
      in
      let t_lp, rl = time_once (fun () -> compile_with Compiler.Lp g) in
      let rows =
        match rl with
        | Ok { Compiler.route = Compiler.Lp_route { rows; _ }; _ } -> rows
        | _ -> 0
      in
      row
        "  %6d %6d: exact gave up at %d cycles in %a (%s); lp %a (%d rows)@."
        layers (Graph.num_edges g) giveup_budget pp_ns t_give
        (ok gave_up) pp_ns t_lp rows;
      if layers = 7 then begin
        headline "LP1" "lp_compile_ns_giant" t_lp;
        headline "LP1" "giant_exact_giveup_ns" t_give
      end)
    (if !quick then [ 7 ] else [ 6; 7 ]);
  (* tightness: how much interval the polynomial certificate gives up
     against the exact table, on instances the exact route can finish *)
  let rng = Random.State.make [| 4242 |] in
  let tight_instances =
    [
      ("fig4_butterfly", Topo_gen.fig4_butterfly ~cap:2);
      ("layered 2x3", Topo_gen.layered_dense ~layers:2 ~width:3 ~cap:2);
      ("layered 3x3", Topo_gen.layered_dense ~layers:3 ~width:3 ~cap:2);
      ("random 2x3 a", Topo_gen.random_dense rng ~layers:2 ~width:3 ~max_cap:3);
      ("random 2x3 b", Topo_gen.random_dense rng ~layers:2 ~width:3 ~max_cap:3);
    ]
  in
  let ratios = ref [] and cap_ratios = ref [] in
  row "  tightness on exact-solvable instances (threshold ratios):@.";
  List.iter
    (fun (name, g) ->
      match (compile_with Compiler.Exact g, compile_with Compiler.Lp g) with
      | Ok pe, Ok pl ->
        let rs = ref [] in
        Array.iteri
          (fun i v ->
            match
              (Interval.threshold v, Interval.threshold pl.Compiler.intervals.(i))
            with
            | Some ke, Some kl -> rs := (float ke /. float kl) :: !rs
            | _ -> ())
          pe.Compiler.intervals;
        let mean l = List.fold_left ( +. ) 0. l /. float (max 1 (List.length l)) in
        let m = mean !rs in
        ratios := m :: !ratios;
        (* buffer overhead: capacities the LP sizing pass needs to
           certify the exact table, vs the capacities the instance has *)
        let thresholds = Array.map Interval.threshold pe.Compiler.intervals in
        let caps = Lp.min_buffers g ~thresholds in
        let sum a = Array.fold_left ( + ) 0 a in
        let orig =
          Array.init (Graph.num_edges g) (fun i -> (Graph.edge g i).Graph.cap)
        in
        let cr = float (sum caps) /. float (max 1 (sum orig)) in
        cap_ratios := cr :: !cap_ratios;
        row "  %-14s mean exact/lp threshold %5.2f   min_buffers/orig %5.2f@."
          name m cr
      | _ -> row "  %-14s compile failed@." name)
    tight_instances;
  let mean l = List.fold_left ( +. ) 0. l /. float (max 1 (List.length l)) in
  headline "LP1" "mean_tightness_exact_over_lp" (mean !ratios);
  headline "LP1" "mean_min_buffers_cap_ratio" (mean !cap_ratios);
  (* the conservative table must still be wedge-free: exhaustive check
     over all filtering choices on small instances, all three wrappers *)
  let verify_instances =
    [
      ("fig4_butterfly", Topo_gen.fig4_butterfly ~cap:2);
      ("layered 2x2", Topo_gen.layered_dense ~layers:2 ~width:2 ~cap:2);
      ("random 1x2", Topo_gen.random_dense rng ~layers:1 ~width:2 ~max_cap:2);
    ]
  in
  let all_safe = ref true in
  List.iter
    (fun (name, g) ->
      match compile_with Compiler.Lp g with
      | Ok p ->
        List.iter
          (fun (mode, av) ->
            let r =
              Verify.check ~max_states:20_000 ~graph:g ~avoidance:av ~inputs:3
                ()
            in
            let safe =
              match r with Verify.Deadlocks _ -> false | _ -> true
            in
            if not safe then all_safe := false;
            row "  %-14s %-16s %s@." name mode
              (ok safe))
          [
            ( "non-propagation",
              Engine.Non_propagation
                (Compiler.send_thresholds g p.Compiler.intervals) );
            ( "propagation",
              Engine.Propagation
                (Compiler.propagation_thresholds g p.Compiler.intervals) );
            ( "relay",
              Engine.Propagation
                (Compiler.send_thresholds g p.Compiler.intervals) );
          ]
      | Error _ ->
        all_safe := false;
        row "  %-14s LP compile failed@." name)
    verify_instances;
  headline "LP1" "verify_wedge_free" (if !all_safe then 1.0 else 0.0)

(* ------------------------------------------------------------------ *)
(* RC1. Hot reconfiguration: incremental recompile vs full compile.    *)

let rc1 () =
  section "RC1" "hot reconfiguration: incremental recompile vs full";
  (* latency: a one-edge resize on growing CS4 chains. A full compile
     re-derives every serial block; the incremental recompile splices
     every clean block and recomputes only the edited one, so its
     latency tracks the block size, not the graph size. The cache is
     re-primed before every timed trial — a recompile consumes the
     previous epoch's snapshot. *)
  let rng = Random.State.make [| 90125 |] in
  let sizes = if !quick then [ 4; 16 ] else [ 4; 8; 16; 32; 64 ] in
  row "  random CS4 chain, resize one edge: full recompile vs incremental@.";
  row "  %6s %6s %12s %12s %8s %9s@." "blocks" "edges" "full" "incr" "spliced"
    "speedup";
  let t_incr_first = ref 0. and t_incr_last = ref 0. in
  let speedup_last = ref 0. in
  List.iter
    (fun blocks ->
      let g = Topo_gen.random_cs4 rng ~blocks ~block_edges:6 ~max_cap:5 in
      let e0 = Graph.edge g 0 in
      match Edit.apply g [ Edit.Resize { edge = 0; cap = e0.Graph.cap + 1 } ]
      with
      | Error _ -> row "  edit failed@."
      | Ok delta -> (
        let cache = Compiler.cache_create () in
        let prime () =
          match
            Compiler.compile_cached cache Compiler.Non_propagation g
          with
          | Ok _ -> ()
          | Error _ -> assert false
        in
        prime ();
        let t_full =
          time_best (fun () ->
              Compiler.compile Compiler.Non_propagation delta.Edit.graph)
        in
        let best = ref infinity and spliced = ref 0 in
        for _ = 1 to 3 do
          prime ();
          let t, r =
            time_once (fun () ->
                Compiler.recompile cache Compiler.Non_propagation delta)
          in
          (match r with
          | Ok (_, stats) -> spliced := stats.Compiler.spliced_edges
          | Error _ -> assert false);
          if t < !best then best := t
        done;
        match
          Compiler.compile_cached cache Compiler.Non_propagation g
        with
        | Error _ -> assert false
        | Ok (p, _) ->
          (* incremental == full on the exact route, every size *)
          (match Compiler.compile Compiler.Non_propagation delta.Edit.graph
           with
          | Ok pf ->
            ignore p;
            (match Compiler.recompile cache Compiler.Non_propagation delta
             with
            | Ok (pi, _) ->
              Array.iteri
                (fun i v -> assert (Interval.equal v pi.Compiler.intervals.(i)))
                pf.Compiler.intervals
            | Error _ -> assert false)
          | Error _ -> assert false);
          if !t_incr_first = 0. then t_incr_first := !best;
          t_incr_last := !best;
          speedup_last := t_full /. !best;
          row "  %6d %6d %a %a %8d %8.1fx@." blocks (Graph.num_edges g)
            pp_ns t_full pp_ns !best !spliced (t_full /. !best);
          headline "RC1"
            (Printf.sprintf "incr_recompile_ns_blocks_%d" blocks)
            !best))
    sizes;
  headline "RC1" "incremental_over_full" !speedup_last;
  (* sublinearity: graph size grew [last/first] sizes-fold; the
     incremental latency must grow by much less *)
  let size_growth =
    float (List.nth sizes (List.length sizes - 1)) /. float (List.hd sizes)
  in
  let incr_growth = !t_incr_last /. max 1. !t_incr_first in
  row "  graph grew %.0fx, incremental latency grew %.1fx (%s)@." size_growth
    incr_growth
    (ok (incr_growth < size_growth));
  headline "RC1" "size_growth" size_growth;
  headline "RC1" "incremental_latency_growth" incr_growth;
  (* warm-started simplex: resize one edge of layered-dense and
     re-solve from the previous optimal basis vs cold *)
  let layers = if !quick then 4 else 6 in
  let g = Topo_gen.layered_dense ~layers ~width:3 ~cap:2 in
  let _, base, st = Lp.resolve g in
  (match Edit.apply g [ Edit.Resize { edge = 0; cap = 3 } ] with
  | Error _ -> row "  edit failed@."
  | Ok d ->
    let _, w, _ =
      Lp.resolve ~warm:st ~edge_map:d.Edit.edge_map ~node_map:d.Edit.node_map
        ~dirty:d.Edit.dirty d.Edit.graph
    in
    let _, c, _ = Lp.resolve d.Edit.graph in
    row
      "  layered %dx3 resize e0: base %d pivots; warm re-solve %d vs cold %d \
       (%s)@."
      layers base.Lp.rpivots w.Lp.rpivots c.Lp.rpivots
      (ok (w.Lp.rpivots < c.Lp.rpivots));
    headline "RC1" "warm_pivots" (float w.Lp.rpivots);
    headline "RC1" "cold_pivots" (float c.Lp.rpivots))

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("F1", f1);
    ("F2", f2);
    ("F3", f3);
    ("F4", f4);
    ("F5", f5);
    ("F6", f6);
    ("C1", c1);
    ("C2", c2);
    ("C3", c3);
    ("C4", c4);
    ("C5", c5);
    ("C6", c6);
    ("C7", c7);
    ("LP1", lp1);
    ("RC1", rc1);
    ("O1", o1);
    ("V1", v1);
    ("V2", v2);
    ("S1", s1);
    ("S2", s2);
    ("P1", p1);
    ("FU1", fu1);
    ("SV1", sv1);
    ("A1", a1);
    ("A2", a2);
    ("A3", a3);
    ("micro", micro);
  ]

let () =
  (* flags: [--quick] shrinks every sweep (CI smoke); [--json FILE]
     writes the sections' headline numbers as one JSON object at exit;
     [--only] is an accepted no-op so `-- --only C7 --quick` reads
     naturally. The remaining arguments select sections, default all. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--json" :: path :: rest ->
      json_file := Some path;
      parse acc rest
    | "--only" :: rest -> parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let requested = match args with [] -> List.map fst sections | l -> l in
  Format.printf
    "filterstream benchmark harness — every table/figure of the paper@.";
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Format.printf "unknown section %S (available: %s)@." name
          (String.concat ", " (List.map fst sections)))
    requested;
  write_json ()
