(* streamcheck — the paper's compiler pass as a command-line tool.

   Classify a streaming topology (SP / SP-ladder / CS4 / general),
   compute dummy intervals with the appropriate algorithm, and simulate
   the application under a filtering workload.

     streamcheck classify --demo fig4-left
     streamcheck intervals --demo fig3 --algorithm non-propagation
     streamcheck simulate --demo fig2 --inputs 100 --avoidance propagation
     streamcheck intervals --file app.graph                          *)

open Fstream_graph
open Fstream_ladder
open Fstream_core
open Fstream_runtime
open Fstream_workloads
open Cmdliner
module Verify = Fstream_verify.Verify

(* ------------------------------------------------------------------ *)
(* Graph sources                                                        *)

let demos =
  [
    ("fig1", fun ~seed:_ -> Topo_gen.fig1_split_join ~branches:3 ~cap:2);
    ("fig2", fun ~seed:_ -> Topo_gen.fig2_triangle ~cap:2);
    ("fig3", fun ~seed:_ -> Topo_gen.fig3_hexagon ());
    ("fig4-left", fun ~seed:_ -> Topo_gen.fig4_left ~cap:2);
    ("erosion", fun ~seed:_ -> Topo_gen.erosion_counterexample ());
    ("butterfly", fun ~seed:_ -> Topo_gen.fig4_butterfly ~cap:2);
    ("fig5", fun ~seed:_ -> Topo_gen.fig5_ladder ~cap:2);
    ("wide-ladder", fun ~seed:_ -> Topo_gen.wide_ladder ~rungs:6 ~cap:2);
    ("pipeline", fun ~seed:_ -> Topo_gen.pipeline ~stages:8 ~cap:2);
    (* dense stacked bipartite layers: ~28M undirected simple cycles,
       past the exact fallback's default 10M budget (exit 14), while
       --backend lp compiles it in milliseconds *)
    ( "layered-dense",
      fun ~seed:_ -> Topo_gen.layered_dense ~layers:7 ~width:3 ~cap:2 );
    (* 97 nodes: above the old parallel runtime's 64-node cap *)
    ("deep-pipeline", fun ~seed:_ -> Topo_gen.pipeline ~stages:96 ~cap:2);
    ( "random-cs4",
      fun ~seed ->
        Topo_gen.random_cs4
          (Random.State.make [| seed |])
          ~blocks:3 ~block_edges:8 ~max_cap:4 );
  ]

let load_graph ~seed file demo =
  match (file, demo) with
  | Some path, None -> Graph_io.load path
  | None, Some name -> (
    match List.assoc_opt name demos with
    | Some f -> Ok (f ~seed)
    | None ->
      Error
        (Printf.sprintf "unknown demo %S; available: %s" name
           (String.concat ", " (List.map fst demos))))
  | Some _, Some _ -> Error "pass either --file or --demo, not both"
  | None, None -> Error "pass --file FILE or --demo NAME"

(* Exit-code bands — the single place the whole map is written down.
   Scripts and the cram tests branch on these; never reuse a number
   across bands.

     0        success (simulate: run completed; lint: no findings at or
              above --fail-on; verify: safe; serve: every tenant
              admitted and completed)
     1        usage / topology load error (cmdliner reserves 124-125
              for CLI parse errors)
     2        simulate: run did not complete / verify: deadlock found /
              repair failed
     3        verify: state budget exhausted
     10-14    plan rejected, one code per Compiler.error below
     20-24    lint band: 20 Error findings, 21 warnings under
              --fail-on warning, 22 fix failed, 23 analysis
              incomplete, 24 spec load error
     30-32    serve band: 30 tenant rejected (at admission, or a
              --reconfigure script refused: lint, plan, or edit
              error), 31 an admitted tenant did not complete, 32
              tenant spec load error; worst wins (32 > 30 > 31 > 0) *)

(* Typed compiler errors get their own exit-code band so scripts (and
   the cram tests) can tell rejection modes apart without parsing
   stderr. *)
let plan_error_code = function
  | Compiler.Not_a_dag -> 10
  | Compiler.Not_two_terminal -> 11
  | Compiler.Disconnected -> 12
  | Compiler.Non_cs4_rejected _ -> 13
  | Compiler.Cycle_budget_exceeded _ -> 14

let plan_error e =
  Format.eprintf "error: %a@." Compiler.pp_error e;
  plan_error_code e

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:"Topology file (see lib/workloads/graph_io.mli for the format).")

let demo_arg =
  let names = String.concat ", " (List.map fst demos) in
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "demo" ] ~docv:"NAME"
        ~doc:(Printf.sprintf "Built-in demo topology: %s." names))

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Seed for randomized demo topologies ($(b,random-cs4)) and for the \
           filtering workload of $(b,simulate).")

(* Every subcommand takes its topology the same way; one term carries
   the whole flag group so commands cannot drift apart. *)
type source = { file : string option; demo : string option; seed : int }

let source_term =
  Term.(
    const (fun file demo seed -> { file; demo; seed })
    $ file_arg $ demo_arg $ seed_arg)

let load_source src = load_graph ~seed:src.seed src.file src.demo

(* Files may carry per-node behaviours (App_spec); demos and plain
   graph files get a uniform workload. Shared by simulate and lint. *)
let load_app src =
  match (src.file, src.demo) with
  | Some path, None -> (
    match App_spec.load path with
    | Error e -> Error e
    | Ok spec ->
      Ok
        ( spec.App_spec.graph,
          if spec.App_spec.behaviors = [] then None else Some spec ))
  | _ -> (
    match load_source src with
    | Error e -> Error e
    | Ok g -> Ok (g, None))

(* ------------------------------------------------------------------ *)
(* classify                                                             *)

let classify_cmd =
  let run src =
    match load_source src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok g ->
      Format.printf "%a@.@." Graph.pp g;
      (match Cs4.classify g with
      | Ok cls ->
        Format.printf "CS4: serial composition of %d block(s)@."
          (List.length cls.Cs4.blocks);
        List.iter
          (fun (bsrc, bsnk, b) ->
            match b with
            | Cs4.Sp_block t ->
              Format.printf "  block %d..%d: series-parallel, %d edges@." bsrc
                bsnk t.Fstream_spdag.Sp_tree.n_edges
            | Cs4.Ladder_block lad ->
              Format.printf "  block %d..%d: SP-ladder, %d rung(s)@." bsrc bsnk
                (Ladder.num_rungs lad);
              Format.printf "    %a@." Ladder.pp lad)
          cls.Cs4.blocks
      | Error failure -> (
        Format.printf "not CS4: %a@." Cs4.pp_failure failure;
        match Cs4.bad_cycle_witness g with
        | Some c ->
          Format.printf
            "  witness cycle with sources {%s} and sinks {%s}@."
            (String.concat ", " (List.map string_of_int (Cycles.cycle_sources c)))
            (String.concat ", " (List.map string_of_int (Cycles.cycle_sinks c)))
        | None -> ()));
      0
  in
  let doc = "Classify a topology: SP, SP-ladder, CS4 chain, or general DAG." in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run $ source_term)

(* ------------------------------------------------------------------ *)
(* intervals                                                            *)

let algorithm_conv =
  Arg.enum
    [
      ("propagation", Compiler.Propagation);
      ("non-propagation", Compiler.Non_propagation);
      ("relay", Compiler.Relay_propagation);
    ]

let algorithm_arg =
  Arg.(
    value
    & opt algorithm_conv Compiler.Non_propagation
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:
          "Interval algorithm: $(b,propagation), $(b,non-propagation) or \
           $(b,relay).")

let no_general_arg =
  Arg.(
    value & flag
    & info [ "no-general" ]
        ~doc:
          "Reject non-CS4 topologies instead of falling back to the \
           exponential general-DAG algorithm (mirrors a compiler that only \
           accepts the polynomial classes).")

let max_cycles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:
          "Budget for the general fallback's simple-cycle enumeration \
           (default 10 million).")

let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("exact", Compiler.Exact);
             ("lp", Compiler.Lp);
             ("auto", Compiler.Auto);
           ])
        Compiler.Exact
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Interval machinery: $(b,exact) (the paper's constructions, \
           exponential on general DAGs), $(b,lp) (polynomial sufficient \
           intervals from one simplex program per biconnected component, any \
           DAG), or $(b,auto) (exact until the cycle budget blows, then \
           LP).")

(* The compiler-configuration flag group, as a [Compiler.Options.t]
   transformer (shared by intervals, fuse, simulate, verify and serve,
   which add their own fields on top). *)
let compile_options_term =
  let combine no_general max_cycles backend (base : Compiler.Options.t) =
    {
      base with
      Compiler.Options.allow_general = not no_general;
      max_cycles =
        Option.value max_cycles ~default:base.Compiler.Options.max_cycles;
      backend;
    }
  in
  Term.(const combine $ no_general_arg $ max_cycles_arg $ backend_arg)

let intervals_cmd =
  let run src algorithm options =
    match load_source src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok g -> (
      match
        Compiler.compile ~options:(options Compiler.Options.default) algorithm g
      with
      | Error e -> plan_error e
      | Ok plan ->
        Format.printf "route: %a@." Compiler.pp_route plan.route;
        let thresholds =
          match algorithm with
          | Compiler.Propagation ->
            Compiler.propagation_thresholds g plan.intervals
          | _ -> Compiler.send_thresholds g plan.intervals
        in
        Format.printf "%-6s %-10s %4s %10s %10s@." "edge" "channel" "cap"
          "interval" "threshold";
        List.iter
          (fun (e : Graph.edge) ->
            Format.printf "e%-5d %3d -> %-4d %4d %10s %10s@." e.id e.src e.dst
              e.cap
              (Format.asprintf "%a" Interval.pp plan.intervals.(e.id))
              (match Thresholds.get thresholds e.id with
              | None -> "-"
              | Some k -> string_of_int k))
          (Graph.edges g);
        0)
  in
  let doc = "Compute dummy-message intervals for every channel." in
  Cmd.v
    (Cmd.info "intervals" ~doc)
    Term.(const run $ source_term $ algorithm_arg $ compile_options_term)

(* ------------------------------------------------------------------ *)
(* simulate                                                             *)

type avoidance_choice = A_none | A_prop | A_nonprop

let avoidance_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("none", A_none); ("propagation", A_prop); ("non-propagation", A_nonprop) ])
        A_nonprop
    & info [ "avoidance" ] ~docv:"MODE"
        ~doc:"Deadlock avoidance wrapper: $(b,none), $(b,propagation) or \
              $(b,non-propagation).")

(* Compile the threshold table a wrapper choice needs (shared by
   simulate and verify). *)
let resolve_avoidance ?(options = Compiler.Options.default) choice g =
  match choice with
  | A_none -> Ok Engine.No_avoidance
  | A_prop -> (
    match Compiler.compile ~options Compiler.Propagation g with
    | Ok p ->
      Ok (Engine.Propagation (Compiler.propagation_thresholds g p.intervals))
    | Error e -> Error e)
  | A_nonprop -> (
    match Compiler.compile ~options Compiler.Non_propagation g with
    | Ok p ->
      Ok (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
    | Error e -> Error e)

let inputs_arg =
  Arg.(
    value & opt int 1000
    & info [ "n"; "inputs" ] ~docv:"N" ~doc:"Number of input sequence numbers.")

let keep_arg =
  Arg.(
    value & opt float 0.7
    & info [ "keep" ] ~docv:"P"
        ~doc:"Per-channel probability that a node keeps (does not filter) an \
              output.")

let scheduler_arg =
  Arg.(
    value
    & opt (enum [ ("ready", Engine.Ready); ("sweep", Engine.Sweep) ]) Engine.Ready
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:
          "Engine scheduler: $(b,ready) (event-driven worklist, the default) \
           or $(b,sweep) (reference full-sweep oracle). Both produce \
           identical stats.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's event stream to FILE in Chrome trace_event JSON \
           (open in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the run, print the metrics registry: per-channel \
           high-watermark occupancy and dummy overhead, per-node firing and \
           blocked-visit counts.")

let parallel_arg =
  Arg.(
    value & flag
    & info [ "parallel" ]
        ~doc:
          "Run on the sharded domain-pool runtime (kernels execute \
           concurrently on OCaml domains) instead of the deterministic \
           sequential scheduler. Dummy traffic is timing-dependent there; \
           data and sink counts stay schedule-independent.")

let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some d when d >= 1 -> Ok d
    | _ -> Error (`Msg (Printf.sprintf "expected a positive int, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_arg =
  Arg.(
    value
    & opt (some pos_int_conv) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for $(b,--parallel) (default: automatic).")

let grain_arg =
  Arg.(
    value
    & opt pos_int_conv Run.default_grain
    & info [ "grain" ] ~docv:"K"
        ~doc:
          (Printf.sprintf
             "With $(b,--parallel): consecutive firings of one node per task \
              before it re-queues itself (default %d)."
             Run.default_grain))

let stall_ms_arg =
  Arg.(
    value
    & opt (some pos_int_conv) None
    & info [ "stall-ms" ] ~docv:"MS"
        ~doc:
          "With $(b,--parallel): enable the backstop watchdog — abort as \
           deadlocked if progress freezes for MS milliseconds with no kernel \
           in flight (default: disabled; quiescence detection is exact).")

(* The engine flag group, shared by every command that executes a
   topology: which engine, and its knobs. Folded into a [Run.config]
   by [run_config] — the one place engine dispatch happens. *)
type engine_choice = {
  parallel : bool;
  domains : int option;
  grain : int;
  stall_ms : int option;
  scheduler : Engine.scheduler;
}

let engine_term =
  let combine parallel domains grain stall_ms scheduler =
    { parallel; domains; grain; stall_ms; scheduler }
  in
  Term.(
    const combine $ parallel_arg $ domains_arg $ grain_arg $ stall_ms_arg
    $ scheduler_arg)

let run_config ec ?sink ?deadlock_dump ~avoidance () =
  if ec.parallel then
    Run.pool ?domains:ec.domains ~grain:ec.grain ?stall_ms:ec.stall_ms ?sink
      ~avoidance ()
  else Run.sequential ~scheduler:ec.scheduler ?sink ?deadlock_dump ~avoidance ()

let fuse_flag_arg =
  Arg.(
    value & flag
    & info [ "fuse" ]
        ~doc:
          "Run the kernel-fusion pass first: chains of single-in/single-out \
           bridge nodes execute as one compound kernel over the fused \
           topology (internal channels become stack locals). Outcome and \
           sink counts are preserved; data-message counts drop with the \
           collapsed channels. Implies per-node workload RNG, like \
           $(b,--parallel).")

(* Per-node filter classes for fusion from a declarative spec: chains
   never span a behaviour change. *)
let spec_filter_class (spec : App_spec.t) =
  let classes = ref [] in
  let class_of b =
    match List.assoc_opt b !classes with
    | Some i -> i
    | None ->
      let i = List.length !classes in
      classes := (b, i) :: !classes;
      i
  in
  fun v ->
    class_of
      (match List.assoc_opt v spec.App_spec.behaviors with
      | Some b -> b
      | None -> spec.App_spec.default)

let simulate_cmd =
  let run src avoidance inputs keep engine trace_out metrics fuse options =
    match load_app src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok (g, spec) -> (
      let seed = src.seed in
      let kernels =
        match spec with
        | Some spec -> App_spec.kernels spec ~seed
        | None when engine.parallel || fuse ->
          (* per-node RNG: thread-safe under the pool runtime, and
             node-deterministic so counts are schedule-independent and
             fused runs comparable to unfused ones *)
          Filters.for_graph g (fun v outs ->
              Filters.bernoulli (Random.State.make [| seed; v |]) ~keep outs)
        | None ->
          let rng = Random.State.make [| seed |] in
          Filters.for_graph g (fun _ outs -> Filters.bernoulli rng ~keep outs)
      in
      let setup =
        if fuse then begin
          let filter_class = Option.map spec_filter_class spec in
          let with_fusion (fusion : Fusion.t) avoidance =
            let fw = Fused.make fusion kernels in
            Ok (fusion.Fusion.graph, Fused.kernels fw, avoidance)
          in
          match avoidance with
          | A_none -> with_fusion (Fusion.fuse ?filter_class g) Engine.No_avoidance
          | A_prop -> (
            match
              Compiler.compile
                ~options:
                  (options
                     { Compiler.Options.default with fuse = true; filter_class })
                Compiler.Propagation g
            with
            | Ok { Compiler.fused = Some { fusion; fused_intervals }; _ } ->
              with_fusion fusion
                (Engine.Propagation
                   (Compiler.propagation_thresholds fusion.Fusion.graph
                      fused_intervals))
            | Ok _ -> assert false
            | Error e -> Error e)
          | A_nonprop -> (
            match
              Compiler.compile
                ~options:
                  (options
                     { Compiler.Options.default with fuse = true; filter_class })
                Compiler.Non_propagation g
            with
            | Ok { Compiler.fused = Some { fusion; fused_intervals }; _ } ->
              with_fusion fusion
                (Engine.Non_propagation
                   (Compiler.send_thresholds fusion.Fusion.graph
                      fused_intervals))
            | Ok _ -> assert false
            | Error e -> Error e)
        end
        else
          Result.map
            (fun av -> (g, kernels, av))
            (resolve_avoidance ~options:(options Compiler.Options.default)
               avoidance g)
      in
      match setup with
      | Error e -> plan_error e
      | Ok (g, kernels, avoidance) ->
        let trace =
          Option.map
            (fun path ->
              let oc = open_out path in
              (Fstream_obs.Trace_json.sink (Format.formatter_of_out_channel oc), oc))
            trace_out
        in
        let collector =
          if metrics then Some (Fstream_obs.Metrics.collector ~graph:g ~inputs ())
          else None
        in
        let sink =
          match (trace, collector) with
          | None, None -> None
          | Some (s, _), None -> Some s
          | None, Some c -> Some (Fstream_obs.Metrics.sink c)
          | Some (s, _), Some c ->
            Some (Fstream_obs.Sink.tee s (Fstream_obs.Metrics.sink c))
        in
        let report =
          Run.exec
            (run_config engine ?sink ~deadlock_dump:Format.std_formatter
               ~avoidance ())
            ~graph:g ~kernels ~inputs ()
        in
        Option.iter
          (fun (s, oc) ->
            Fstream_obs.Sink.close s;
            close_out oc)
          trace;
        Format.printf "%a@." Report.pp report;
        (match Report.wedge report with
        | Some snap -> (
          match Diagnosis.explain g snap with
          | Some w -> Format.printf "%a@." Diagnosis.pp_witness w
          | None -> ())
        | None -> ());
        Option.iter
          (fun c ->
            Format.printf "%a@." Fstream_obs.Metrics.pp
              (Fstream_obs.Metrics.result c))
          collector;
        (match report.outcome with Report.Completed -> 0 | _ -> 2))
  in
  let doc = "Run a topology under a random filtering workload." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ source_term $ avoidance_arg $ inputs_arg $ keep_arg
      $ engine_term $ trace_out_arg $ metrics_arg $ fuse_flag_arg
      $ compile_options_term)

(* ------------------------------------------------------------------ *)
(* fuse                                                                 *)

let fuse_cmd =
  let run src algorithm options pins =
    match load_source src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok g -> (
      let pin = if pins = [] then None else Some (fun v -> List.mem v pins) in
      match
        Compiler.compile
          ~options:
            (options { Compiler.Options.default with fuse = true; pin })
          algorithm g
      with
      | Error e -> plan_error e
      | Ok { Compiler.fused = None; _ } -> assert false
      | Ok ({ Compiler.fused = Some { fusion; fused_intervals }; _ } as plan) ->
        Format.printf "route: %a@." Compiler.pp_route plan.Compiler.route;
        Format.printf "%a@." Fusion.pp fusion;
        let fg = fusion.Fusion.graph in
        let thresholds =
          match algorithm with
          | Compiler.Propagation ->
            Compiler.propagation_thresholds fg fused_intervals
          | _ -> Compiler.send_thresholds fg fused_intervals
        in
        Format.printf "boundary channels:@.";
        Format.printf "%-6s %-6s %-10s %4s %10s %10s@." "edge" "orig" "channel"
          "cap" "interval" "threshold";
        List.iter
          (fun (e : Graph.edge) ->
            Format.printf "e%-5d e%-5d %3d -> %-4d %4d %10s %10s@." e.id
              fusion.Fusion.orig_edge.(e.id)
              e.src e.dst e.cap
              (Format.asprintf "%a" Interval.pp fused_intervals.(e.id))
              (match Thresholds.get thresholds e.id with
              | None -> "-"
              | Some k -> string_of_int k))
          (Graph.edges fg);
        0)
  in
  let pin_arg =
    Arg.(
      value & opt (list int) []
      & info [ "pin" ] ~docv:"NODES"
          ~doc:
            "Comma-separated node ids that must stay unfused (extra critical \
             boundaries).")
  in
  let doc =
    "Print the kernel-fusion partition: compound kernels, collapsed channels, \
     and the derived interval table for the boundary channels."
  in
  Cmd.v (Cmd.info "fuse" ~doc)
    Term.(
      const run $ source_term $ algorithm_arg $ compile_options_term $ pin_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                               *)

let verify_cmd =
  let run src avoidance inputs max_states strategy options =
    match load_source src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok g -> (
      match
        resolve_avoidance ~options:(options Compiler.Options.default) avoidance
          g
      with
      | Error e -> plan_error e
      | Ok avoidance -> (
        let r = Verify.check ~max_states ~strategy ~graph:g ~avoidance ~inputs () in
        Format.printf "%a@." Verify.pp_result r;
        match r with
        | Verify.Safe _ -> 0
        | Verify.Deadlocks _ -> 2
        | Verify.Out_of_budget _ -> 3))
  in
  let inputs =
    Arg.(
      value & opt int 4
      & info [ "n"; "inputs" ] ~docv:"N"
          ~doc:"Input sequence numbers to model (keep small).")
  in
  let max_states =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-states" ] ~docv:"S" ~doc:"State exploration budget.")
  in
  let strategy =
    Arg.(
      value
      & opt (enum [ ("bfs", `Bfs); ("dfs", `Dfs) ]) `Bfs
      & info [ "strategy" ] ~docv:"STRAT"
          ~doc:
            "$(b,bfs) gives shortest counterexamples; $(b,dfs) finds deep              wedges with fewer expansions.")
  in
  let doc =
    "Exhaustively model-check deadlock freedom over all filtering choices      (small topologies only)."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const run $ source_term $ avoidance_arg $ inputs $ max_states $ strategy
      $ compile_options_term)

(* ------------------------------------------------------------------ *)
(* repair                                                               *)

let repair_cmd =
  let run src out =
    match load_source src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok g -> (
      match Fstream_repair.Repair.repair g with
      | Error e ->
        Format.eprintf "repair failed: %s@." e;
        2
      | Ok r ->
        Format.printf "%a@."
          (Fstream_repair.Repair.pp_summary ~original:g)
          r;
        (match out with
        | Some path ->
          Graph_io.save path r.graph;
          Format.printf "repaired topology written to %s@." path
        | None -> Format.printf "@.%a@." Graph.pp r.graph);
        0)
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the repaired topology to FILE (graph file format).")
  in
  let doc = "Rewrite a non-CS4 topology into a CS4 one (paper §VII)." in
  Cmd.v (Cmd.info "repair" ~doc) Term.(const run $ source_term $ out)

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)

(* Lint findings get their own exit-code band (20-24), disjoint from the
   compiler's 10-14, so scripts and CI can tell "the linter found
   errors" apart from "the linter could not run". *)
let lint_cmd =
  let module Lint = Fstream_analysis.Lint in
  let module Render = Fstream_analysis.Render in
  let run src algorithm max_cycles backend format fail_on fix out color =
    (* files may carry per-node behaviours (App_spec): lint them too *)
    match load_app src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      24
    | Ok (g, spec) ->
      let config =
        {
          Lint.default_config with
          algorithm;
          backend;
          spec;
          max_cycles =
            Option.value max_cycles
              ~default:Lint.default_config.Lint.max_cycles;
        }
      in
      let source =
        match (src.file, src.demo) with
        | Some path, _ -> path
        | None, Some name -> "demo:" ^ name
        | None, None -> "graph"
      in
      let render g report =
        match format with
        | `Text -> Render.text ~color Format.std_formatter ~graph:g ~source report
        | `Json -> Render.jsonl Format.std_formatter ~graph:g report
        | `Sarif -> Render.sarif Format.std_formatter ~graph:g ~source report
      in
      let exit_code (report : Lint.report) =
        if Lint.count report Lint.Error > 0 then 20
        else if report.Lint.incomplete <> None then 23
        else if fail_on = `Warning && Lint.count report Lint.Warning > 0 then
          21
        else 0
      in
      let report = Lint.run ~config g in
      render g report;
      if not fix then exit_code report
      else begin
        match Lint.apply_fixes g report with
        | Error e ->
          Format.eprintf "fix failed: %s@." e;
          22
        | Ok (fixed, actions) ->
          List.iter (fun a -> Format.printf "fix: %s@." a) actions;
          (match out with
          | Some path ->
            Graph_io.save path fixed;
            Format.printf "fixed topology written to %s@." path
          | None -> Format.printf "@.%a@." Graph.pp fixed);
          (* the verdict that counts is the fixed topology's *)
          let report' = Lint.run ~config:{ config with Lint.spec = None } fixed in
          Format.printf "@.re-lint of the fixed topology:@.";
          render fixed report';
          exit_code report'
      end
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,text) (human), $(b,json) (one object per \
             finding) or $(b,sarif) (SARIF 2.1.0 for code-scanning upload).")
  in
  let fail_on_arg =
    Arg.(
      value
      & opt (enum [ ("error", `Error); ("warning", `Warning) ]) `Error
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Lowest severity that fails the run: $(b,error) (default; exit \
             20) or $(b,warning) (exit 21 when only warnings are present).")
  in
  let fix_arg =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:
            "Apply the report's fixits (CS4 reroute, buffer scaling), print \
             the fixed topology (or write it with $(b,--output)), and \
             re-lint it; the exit code reflects the fixed topology.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"With $(b,--fix): write the fixed topology to FILE.")
  in
  let color_arg =
    Arg.(
      value & flag
      & info [ "color" ] ~doc:"Colorize severities in $(b,text) output.")
  in
  let doc =
    "Statically analyze a topology: structural, cycle, capacity and spec \
     rules with witnesses and fixits."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ source_term $ algorithm_arg $ max_cycles_arg $ backend_arg
      $ format_arg $ fail_on_arg $ fix_arg $ out_arg $ color_arg)

(* ------------------------------------------------------------------ *)
(* size                                                                 *)

let size_cmd =
  let run src algorithm target =
    match load_source src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok g -> (
      match Sizing.min_uniform_scale g algorithm ~target with
      | Error e ->
        Format.eprintf "error: %s@." e;
        1
      | Ok c ->
        Format.printf
          "smallest uniform buffer scaling for intervals >= %d: x%d@." target c;
        (match Compiler.compile algorithm (Sizing.scale_caps g c) with
        | Ok p ->
          let tightest =
            Array.fold_left Interval.min Interval.inf p.intervals
          in
          Format.printf "tightest interval after scaling: %a@." Interval.pp
            tightest
        | Error _ -> ());
        0)
  in
  let target =
    Arg.(
      value & opt int 10
      & info [ "t"; "target" ] ~docv:"K"
          ~doc:"Require every dummy interval to be at least K.")
  in
  let doc =
    "Compute the minimal uniform buffer scaling for a target dummy rate."
  in
  Cmd.v (Cmd.info "size" ~doc)
    Term.(const run $ source_term $ algorithm_arg $ target)

(* ------------------------------------------------------------------ *)
(* dot                                                                  *)

let dot_cmd =
  let run src =
    match load_source src with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok g ->
      print_string (Dot.render g);
      0
  in
  let doc = "Emit Graphviz dot for a topology (to stdout)." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ source_term)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)

(* The multi-tenant daemon shape, batch-sized for a CLI: load every
   tenant spec, admit them all (lint at the door, compile-once
   registry), start every admitted session on one shared pool, then
   await and summarize. Exit codes are the 30-32 band from the map
   above; the worst tenant wins. *)
let serve_cmd =
  let module Serve = Fstream_serve.Serve in
  let run dir demo_tenants mode inputs seed domains quota grain reconfig
      options =
    let sources =
      match (dir, demo_tenants) with
      | Some _, _ :: _ ->
        Error "pass either --dir or --demo tenants, not both"
      | Some d, [] -> (
        match Sys.readdir d with
        | exception Sys_error e -> Error e
        | names ->
          Array.sort compare names;
          Ok
            (Array.to_list names
            |> List.map (Filename.concat d)
            |> List.filter (fun p -> not (Sys.is_directory p))
            |> List.map (fun p -> `Spec p)))
      | None, (_ :: _ as ds) -> Ok (List.map (fun d -> `Demo d) ds)
      | None, [] ->
        (* tenant spec paths on stdin, one per line *)
        let rec read acc =
          match input_line stdin with
          | line ->
            let line = String.trim line in
            read (if line = "" then acc else `Spec line :: acc)
          | exception End_of_file -> List.rev acc
        in
        Ok (read [])
    in
    match sources with
    | Error e ->
      Format.eprintf "error: %s@." e;
      32
    | Ok [] ->
      Format.eprintf "error: no tenant specs (pass --dir, --demo, or paths \
                      on stdin)@.";
      32
    | Ok sources ->
      let load_failed = ref false
      and rejected = ref false
      and run_failed = ref false in
      let loaded =
        List.filter_map
          (fun source ->
            match source with
            | `Spec path -> (
              let name = Filename.remove_extension (Filename.basename path) in
              match App_spec.load path with
              | Error e ->
                Format.printf "%-16s load error: %s@." name e;
                load_failed := true;
                None
              | Ok spec -> Some (name, spec))
            | `Demo name -> (
              match load_graph ~seed None (Some name) with
              | Error e ->
                Format.printf "%-16s load error: %s@." name e;
                load_failed := true;
                None
              | Ok g ->
                Some
                  ( name,
                    { App_spec.graph = g; behaviors = []; default =
                        App_spec.Bernoulli 0.7 } )))
          sources
      in
      let t =
        Serve.create ?domains ?quota ~grain
          ~options:(options Compiler.Options.default) ()
      in
      let sessions =
        List.filter_map
          (fun (name, (spec : App_spec.t)) ->
            match Serve.admit t ~name ~spec ~mode spec.App_spec.graph with
            | Error r ->
              Format.printf "%-16s rejected: %a@." name Serve.pp_rejection r;
              rejected := true;
              None
            | Ok s -> Some (s, spec))
          loaded
      in
      (* every admitted session is live on the pool before any await:
         their tasks interleave under the fair-share quota *)
      List.iter
        (fun (s, spec) ->
          Serve.start t ~kernels:(App_spec.kernels spec ~seed) ~inputs s)
        sessions;
      let await_round () =
        List.iter
          (fun (s, _) ->
            let r = Serve.await s in
            if r.Report.outcome <> Report.Completed then run_failed := true;
            Format.printf "%-16s %a  data=%d sink=%d dummy=%d@."
              (Serve.name s) Report.pp_outcome r.Report.outcome
              r.Report.data_messages r.Report.sink_data
              r.Report.dummy_messages)
          sessions
      in
      await_round ();
      (* hot reconfiguration round: apply each "tenant: ops" script to
         its (drained) session, then rerun every session on its
         current epoch — reconfigured tenants under their edited
         topology and incrementally recomputed table *)
      if reconfig <> [] then begin
        List.iter
          (fun line ->
            let fail fmt =
              rejected := true;
              Format.printf fmt
            in
            match String.index_opt line ':' with
            | None ->
              fail "reconfigure: missing \"tenant:\" prefix in %S@." line
            | Some i -> (
              let tname = String.trim (String.sub line 0 i) in
              let script =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              match
                List.find_opt (fun (s, _) -> Serve.name s = tname) sessions
              with
              | None -> fail "reconfigure: no running tenant %S@." tname
              | Some (s, _) -> (
                match Edit.parse_ops script with
                | Error e ->
                  fail "%-16s reconfigure parse error: %s@." tname e
                | Ok ops -> (
                  match Serve.reconfigure t s ops with
                  | Error r ->
                    fail "%-16s reconfigure rejected: %a@." tname
                      Serve.pp_rejection r
                  | Ok stats ->
                    Format.printf "%-16s reconfigured epoch=%d%s@." tname
                      (Serve.epoch s)
                      (match stats with
                      | None -> " (registry hit)"
                      | Some st ->
                        Printf.sprintf " spliced=%d recomputed=%d%s"
                          st.Compiler.spliced_edges
                          st.Compiler.recomputed_edges
                          (match st.Compiler.lp_stats with
                          | None -> ""
                          | Some lp ->
                            Printf.sprintf
                              " lp:spliced=%d warm=%d cold=%d pivots=%d"
                              lp.Lp.rspliced lp.Lp.rwarm lp.Lp.rcold
                              lp.Lp.rpivots))))))
          reconfig;
        List.iter
          (fun (s, spec) ->
            let spec = { spec with App_spec.graph = Serve.graph s } in
            Serve.start t ~kernels:(App_spec.kernels spec ~seed) ~inputs s)
          sessions;
        await_round ()
      end;
      Serve.shutdown t;
      let st = Serve.stats t in
      if reconfig = [] then
        Format.printf "tenants=%d rejected=%d compiles=%d@." st.Serve.tenants
          st.Serve.rejections st.Serve.compiles
      else
        Format.printf
          "tenants=%d rejected=%d compiles=%d recompiles=%d warm_pivots=%d@."
          st.Serve.tenants st.Serve.rejections st.Serve.compiles
          st.Serve.recompiles st.Serve.warm_pivots;
      if !load_failed then 32
      else if !rejected then 30
      else if !run_failed then 31
      else 0
  in
  let dir_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Serve every App_spec file in DIR as a tenant (sorted by name). \
             Without $(b,--dir) or $(b,--demo), spec paths are read from \
             stdin, one per line.")
  in
  let demo_tenants_arg =
    let names = String.concat ", " (List.map fst demos) in
    Arg.(
      value & opt_all string []
      & info [ "demo" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Serve a built-in demo topology as a tenant under a Bernoulli \
                workload (repeatable): %s."
               names))
  in
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Serve.No_avoidance);
               ("propagation", Serve.Propagation);
               ("non-propagation", Serve.Non_propagation);
             ])
          Serve.Non_propagation
      & info [ "avoidance" ] ~docv:"MODE"
          ~doc:
            "Avoidance mode every tenant runs under; the serving layer \
             compiles one threshold table per distinct topology \
             fingerprint.")
  in
  let quota_arg =
    Arg.(
      value
      & opt (some pos_int_conv) None
      & info [ "quota" ] ~docv:"K"
          ~doc:
            "Fair-share bound: consecutive task grants a worker gives one \
             tenant while another has queued work.")
  in
  let reconfigure_arg =
    Arg.(
      value & opt_all string []
      & info [ "reconfigure" ] ~docv:"TENANT: OPS"
          ~doc:
            "After the first round completes, apply an edit script to a \
             tenant and rerun every tenant (repeatable). OPS is a \
             $(b,;)-separated list of $(b,resize E CAP), $(b,add-edge SRC \
             DST CAP), $(b,remove-edge E), $(b,add-stage E CIN COUT), \
             $(b,remove-stage N [CAP]). The edited topology passes the \
             same lint bar as admission; its threshold table is \
             recomputed incrementally (clean blocks splice, LP \
             components warm-start) and swapped at the run boundary.")
  in
  let doc =
    "Serve many tenant applications on one shared worker pool, with lint \
     admission control, a compile-once threshold registry, and hot \
     reconfiguration of live tenants."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ dir_arg $ demo_tenants_arg $ mode_arg $ inputs_arg
      $ seed_arg $ domains_arg $ quota_arg $ grain_arg $ reconfigure_arg
      $ compile_options_term)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "deadlock avoidance for streaming computation with filtering" in
  let info = Cmd.info "streamcheck" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            classify_cmd;
            intervals_cmd;
            fuse_cmd;
            simulate_cmd;
            verify_cmd;
            repair_cmd;
            lint_cmd;
            serve_cmd;
            size_cmd;
            dot_cmd;
          ]))
