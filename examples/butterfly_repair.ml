(* Topology repair (the paper's §VII future-work item), end to end.

     dune exec examples/butterfly_repair.exe

   The FFT butterfly (Fig. 4, right) is not CS4 — the cycle a-c-b-d
   has two sources and two sinks — so dummy intervals for it need the
   exponential general-DAG computation. The paper suggests replacing
   it with an SP-ladder by routing one crossing channel through an
   extra hop. [Repair.repair] finds that rewrite automatically; this
   example shows the rewritten topology, the polynomial interval
   computation it unlocks, and a run in which the relay node actually
   forwards the rerouted traffic. *)

open Fstream_graph
open Fstream_core
open Fstream_runtime
open Fstream_workloads

let () =
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  let name = [| "X"; "a"; "b"; "c"; "d"; "Y" |] in
  Format.printf "original butterfly:@.";
  (match Compiler.compile Compiler.Non_propagation g with
  | Ok p -> Format.printf "  interval route: %a@." Compiler.pp_route p.route
  | Error e -> Format.printf "  %a@." Compiler.pp_error e);

  let r =
    match Fstream_repair.Repair.repair g with
    | Ok r -> r
    | Error e -> failwith e
  in
  Format.printf "@.repair: %d channel(s) deleted, %d added@."
    r.deleted_edges r.added_edges;
  List.iter
    (fun (rr : Fstream_repair.Repair.reroute) ->
      Format.printf "  traffic %s -> %s now rides %s -> %s -> %s%s@."
        name.(fst rr.deleted)
        name.(snd rr.deleted)
        name.(fst rr.deleted)
        name.(rr.via)
        name.(snd rr.deleted)
        (match rr.added with
        | Some (u, v) ->
          Printf.sprintf " (new channel %s -> %s)" name.(u) name.(v)
        | None -> ""))
    r.reroutes;
  Format.printf "  reachability preserved: %b@."
    (Fstream_repair.Repair.preserves_reachability g r);

  let g' = r.graph in
  let plan =
    match Compiler.compile Compiler.Non_propagation g' with
    | Ok p -> p
    | Error e -> failwith (Compiler.error_to_string e)
  in
  Format.printf "@.repaired topology: %a@." Compiler.pp_route plan.route;
  List.iter
    (fun (e : Graph.edge) ->
      Format.printf "  [%s -> %s] cap %d, interval %a@." name.(e.src)
        name.(e.dst) e.cap Interval.pp plan.intervals.(e.id))
    (Graph.edges g');

  (* Run the repaired application. The relay d multiplexes: its own
     results go to Y; messages that arrived from b destined for c are
     forwarded on the new d -> c channel. *)
  let rng = Random.State.make [| 3 |] in
  let edge_to u v =
    match
      List.find_opt (fun (e : Graph.edge) -> e.dst = v) (Graph.out_edges g' u)
    with
    | Some e -> e.id
    | None -> failwith "missing edge"
  in
  let b = 2 and c = 3 and d = 4 in
  let from_b_to_d = edge_to b d and relay = edge_to d c in
  let kernels =
    Filters.for_graph g' (fun v outs ->
        if v = 0 then fun ~seq:_ ~got:_ ->
          List.filter (fun _ -> Random.State.float rng 1.0 < 0.8) outs
        else if v = d then fun ~seq:_ ~got ->
          (* forward b's stream on the relay; own output elsewhere *)
          List.filter
            (fun id -> id <> relay || List.mem from_b_to_d got)
            outs
        else Filters.passthrough outs)
  in
  let stats =
    Engine.run ~graph:g' ~kernels ~inputs:2000
      ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
      ()
  in
  Format.printf "@.simulation on repaired topology: %a@." Report.pp stats
