(* Capacity planning: trading buffer memory for dummy bandwidth.

     dune exec examples/capacity_planning.exe

   Dummy intervals scale linearly with buffer capacities (the interval
   formulas are sums and ratios of them), so "how big must my buffers
   be to keep dummy traffic below a target rate?" has a closed-form
   answer. This example takes the Fig. 5 ladder with unit buffers —
   where some channel needs a dummy every sequence number — asks
   [Sizing] for the smallest uniform scaling that guarantees intervals
   of at least 8, and measures the dummy overhead before and after. *)

open Fstream_graph
open Fstream_core
open Fstream_runtime
open Fstream_workloads

let overhead g =
  match Compiler.compile Compiler.Non_propagation g with
  | Error e -> failwith (Compiler.error_to_string e)
  | Ok plan ->
    let rng = Random.State.make [| 11 |] in
    let kernels =
      Filters.for_graph g (fun v outs ->
          if Graph.in_degree g v = 0 || Graph.out_degree g v = 1 then
            Filters.bernoulli rng ~keep:0.7 outs
          else Filters.passthrough outs)
    in
    let s =
      Engine.run ~graph:g ~kernels ~inputs:5000
        ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
        ()
    in
    let tightest = Array.fold_left Interval.min Interval.inf plan.intervals in
    (tightest, s)

let report label g =
  let tightest, s = overhead g in
  let mem =
    List.fold_left (fun acc (e : Graph.edge) -> acc + e.cap) 0 (Graph.edges g)
  in
  Format.printf
    "  %-14s buffers total %4d slots, tightest interval %-5s  %s, dummy overhead %5.1f%%@."
    label mem
    (Format.asprintf "%a" Interval.pp tightest)
    (match s.Report.outcome with
    | Report.Completed -> "completed"
    | _ -> "FAILED")
    (100. *. float s.dummy_messages /. float (max 1 s.data_messages))

let () =
  let g = Topo_gen.fig5_ladder ~cap:1 in
  Format.printf "Fig. 5 ladder, 5000 inputs, filtering at source and relays@.";
  report "unit buffers" g;
  let target = 8 in
  match Sizing.min_uniform_scale g Compiler.Non_propagation ~target with
  | Error e -> failwith e
  | Ok c ->
    Format.printf "  -> smallest scaling for intervals >= %d: x%d@." target c;
    report (Printf.sprintf "scaled x%d" c) (Sizing.scale_caps g c)
