(* The Fig. 2 deadlock, step by step.

     dune exec examples/deadlock_demo.exe

   Node A feeds B directly and through the shortcut channel A->C; B
   feeds C. If A filters everything it would send on A->C, then C
   starves on that channel while A->B and B->C fill up: A waits for B,
   B waits for C, C waits for A. The run below reproduces the wedge,
   dumps the frozen state (full, full, empty — exactly the figure),
   and then repairs it with each avoidance wrapper. *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads

let () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  (* edge 0: A->B, edge 1: B->C, edge 2: A->C (always filtered) *)
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  Format.printf "--- bare run (watch it wedge) ---@.";
  let bare =
    Engine.run ~deadlock_dump:Format.std_formatter ~graph:g ~kernels
      ~inputs:50 ~avoidance:Engine.No_avoidance ()
  in
  Format.printf "%a@." Report.pp bare;
  (match Report.wedge bare with
  | Some snap -> (
    match Diagnosis.explain g snap with
    | Some w -> Format.printf "%a@.@." Diagnosis.pp_witness w
    | None -> Format.printf "(no witness found?!)@.@.")
  | None -> Format.printf "@.");

  let prop_plan =
    match Compiler.compile Compiler.Propagation g with
    | Ok p -> p
    | Error e -> failwith (Compiler.error_to_string e)
  in
  Format.printf "--- propagation algorithm ---@.";
  List.iteri
    (fun i v -> Format.printf "  [e%d] = %a@." i Interval.pp v)
    (Array.to_list prop_plan.intervals);
  let prop =
    Engine.run ~graph:g ~kernels ~inputs:50
      ~avoidance:
        (Engine.Propagation
           (Compiler.propagation_thresholds g prop_plan.intervals))
      ()
  in
  Format.printf "%a@.@." Report.pp prop;

  Format.printf "--- non-propagation algorithm ---@.";
  let np_plan =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> p
    | Error e -> failwith (Compiler.error_to_string e)
  in
  List.iteri
    (fun i v -> Format.printf "  [e%d] = %a@." i Interval.pp v)
    (Array.to_list np_plan.intervals);
  let np =
    Engine.run ~graph:g ~kernels ~inputs:50
      ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g np_plan.intervals))
      ()
  in
  Format.printf "%a@." Report.pp np
