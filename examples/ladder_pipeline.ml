(* An SP-ladder application: sensor fusion with cross-branch hints.

     dune exec examples/ladder_pipeline.exe

   Two parallel analysis chains process the same instrument stream — a
   cheap fast path and an expensive deep path — and exchange hints
   midway: the fast path escalates "suspicious" items for deep review
   early on, and the deep path returns early-exit hints to the tail of
   the fast path. The cross-channels make the topology
   non-series-parallel, but they do not cross, so every undirected
   cycle still has one source and one sink: the graph is an SP-ladder
   and the §VI algorithms apply (StreamIt-style split-joins could not
   express this graph; §I, Related Work).

      src ─ f1 ─ f2 ─ f3 ─ merge        (fast path)
        └─ d1 ──── d2 ────┘             (deep path)
   with cross-links f1 -> d1 (escalation) and d2 -> f3 (hint).      *)

open Fstream_graph
open Fstream_core
open Fstream_runtime

let () =
  let src = 0
  and f1 = 1
  and f2 = 2
  and f3 = 3
  and d1 = 4
  and d2 = 5
  and merge = 6 in
  let name = [| "src"; "f1"; "f2"; "f3"; "d1"; "d2"; "merge" |] in
  let g =
    Graph.make ~nodes:7
      [
        (src, f1, 3);
        (f1, f2, 3);
        (f2, f3, 2);
        (f3, merge, 3);
        (src, d1, 2);
        (d1, d2, 2);
        (d2, merge, 2);
        (f1, d1, 1) (* escalation cross-link *);
        (d2, f3, 1) (* hint cross-link *);
      ]
  in
  let plan =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> p
    | Error e -> failwith (Compiler.error_to_string e)
  in
  Format.printf "topology: %a@." Compiler.pp_route plan.route;
  (match plan.route with
  | Compiler.Cs4_route { blocks = [ (_, _, Fstream_ladder.Cs4.Ladder_block lad) ]; _ }
    ->
    Format.printf "%a@." Fstream_ladder.Ladder.pp lad
  | _ -> ());
  List.iter
    (fun (e : Graph.edge) ->
      Format.printf "  [%s -> %s] cap %d, interval %a@." name.(e.src)
        name.(e.dst) e.cap Interval.pp plan.intervals.(e.id))
    (Graph.edges g);

  (* Kernels: f1 escalates ~20% of items; d2 returns hints for ~30%;
     everything else passes through whatever reaches it. *)
  let rng = Random.State.make [| 2026 |] in
  let keep p = Random.State.float rng 1.0 < p in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = f1 then fun ~seq:_ ~got:_ ->
          List.filter (fun id -> id <> 7 || keep 0.2) outs
        else if v = d2 then fun ~seq:_ ~got:_ ->
          List.filter (fun id -> id <> 8 || keep 0.3) outs
        else Filters.passthrough outs)
  in
  let run avoidance = Engine.run ~graph:g ~kernels ~inputs:2000 ~avoidance () in
  let bare = run Engine.No_avoidance in
  Format.printf "@.no avoidance:    %a@." Report.pp bare;
  let safe = run (Engine.Non_propagation (Compiler.send_thresholds g plan.intervals)) in
  Format.printf "with avoidance:  %a@." Report.pp safe;
  Format.printf "dummy overhead:  %.2f%% of data traffic@."
    (100. *. float safe.dummy_messages /. float safe.data_messages)
