(* The paper's Fig. 1 motivating application: an object-recognition
   pipeline over a video stream.

     dune exec examples/object_recognition.exe

   A segmentation stage (split node A) inspects each frame and routes
   it to the recognizers whose object classes plausibly appear; each
   recognizer runs a detector and emits a detection record only on
   success; a fusion stage (join node D) merges per-frame detections.
   Both the router and the recognizers *filter*, which is exactly what
   makes the finite-buffer system deadlock-prone (§I), and the paper's
   Propagation algorithm is the remedy measured here. *)

open Fstream_graph
open Fstream_core
open Fstream_runtime
open Fstream_workloads

let classes = [| "person"; "vehicle"; "animal"; "text" |]

let () =
  let branches = Array.length classes in
  let g = Topo_gen.fig1_split_join ~branches ~cap:2 in
  let split = 0 and join = branches + 1 in
  Format.printf
    "object recognition: 1 router, %d recognizers (%s), 1 fusion node@."
    branches
    (String.concat ", " (Array.to_list classes));

  (* Dummy intervals for the Propagation algorithm. On this split-join
     every cycle pairs two router branches, so only the router's
     channels get finite intervals — recognizer channels relay. *)
  let plan =
    match Compiler.compile Compiler.Propagation g with
    | Ok p -> p
    | Error e -> failwith (Compiler.error_to_string e)
  in
  Format.printf "route: %a@." Compiler.pp_route plan.route;
  List.iter
    (fun (e : Graph.edge) ->
      if e.src = split then
        Format.printf "  router -> %s : interval %a@."
          classes.(e.dst - 1) Interval.pp plan.intervals.(e.id))
    (Graph.edges g);

  (* Kernels: the router sends each frame to a random plausible subset
     of recognizers; each recognizer detects with its own hit rate. *)
  let rng = Random.State.make [| 7; 7; 7 |] in
  let hit_rate = [| 0.9; 0.5; 0.2; 0.05 |] in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = split then fun ~seq:_ ~got:_ ->
          List.filter (fun _ -> Random.State.float rng 1.0 < 0.7) outs
        else if v <> join then fun ~seq:_ ~got:_ ->
          if Random.State.float rng 1.0 < hit_rate.(v - 1) then outs else []
        else Filters.passthrough outs)
  in

  let frames = 5000 in
  let run avoidance = Engine.run ~graph:g ~kernels ~inputs:frames ~avoidance () in
  let bare = run Engine.No_avoidance in
  Format.printf "@.no avoidance:     %a@." Report.pp bare;
  let prop =
    run (Engine.Propagation (Compiler.propagation_thresholds g plan.intervals))
  in
  Format.printf "propagation:      %a@." Report.pp prop;
  let nonprop =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> run (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
    | Error e -> failwith (Compiler.error_to_string e)
  in
  Format.printf "non-propagation:  %a@." Report.pp nonprop;
  Format.printf
    "@.dummy overhead: propagation %.1f%% vs non-propagation %.1f%% of data traffic@."
    (100. *. float prop.dummy_messages /. float prop.data_messages)
    (100. *. float nonprop.dummy_messages /. float nonprop.data_messages)
