(* Quickstart: build a filtering streaming application, let the
   "compiler" make it deadlock-free, and run it.

     dune exec examples/quickstart.exe

   The topology is the paper's simplest non-series-parallel CS4 graph
   (Fig. 4, left): a split-join whose branches talk to each other over
   a one-way channel.

         X ---> a ---> Y
         |      |      ^
         |      v      |
         +----> b -----+                                         *)

open Fstream_graph
open Fstream_core
open Fstream_runtime

let () =
  (* 1. Describe the topology: nodes 0..3, channels with finite buffers. *)
  let x = 0 and a = 1 and b = 2 and y = 3 in
  let g =
    Graph.make ~nodes:4
      [ (x, a, 2); (x, b, 2); (a, b, 1); (a, y, 2); (b, y, 2) ]
  in
  Format.printf "%a@.@." Graph.pp g;

  (* 2. Ask the compiler for dummy intervals. It classifies the DAG
     (SP? SP-ladder? general?) and picks the right algorithm. *)
  let plan =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> p
    | Error e -> failwith (Compiler.error_to_string e)
  in
  Format.printf "classified as: %a@." Compiler.pp_route plan.route;
  List.iter
    (fun (e : Graph.edge) ->
      Format.printf "  dummy interval [e%d: %d->%d] = %a@." e.id e.src e.dst
        Interval.pp plan.intervals.(e.id))
    (Graph.edges g);

  (* 3. Write the application kernels. Node [a] analyses each item and
     forwards interesting ones to [b] over the cross channel — a
     data-dependent filter the compiler cannot predict. *)
  let rng = Random.State.make [| 42 |] in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = a then fun ~seq:_ ~got:_ ->
          (* always report to Y; escalate ~30% of items to [b] *)
          List.filter
            (fun id -> id <> 2 || Random.State.float rng 1.0 < 0.3)
            outs
        else Filters.passthrough outs)
  in

  (* 4. Run, wrapped by the Non-Propagation deadlock-avoidance layer. *)
  let stats =
    Engine.run ~graph:g ~kernels ~inputs:1000
      ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
      ()
  in
  Format.printf "@.with avoidance:    %a@." Report.pp stats;

  (* 5. The same application without the wrapper deadlocks quickly. *)
  let bare = Engine.run ~graph:g ~kernels ~inputs:1000 ~avoidance:Engine.No_avoidance () in
  Format.printf "without avoidance: %a@." Report.pp bare
