(* A typed application end to end: satellite telemetry triage.

     dune exec examples/telemetry.exe

   Frames flow through a dual-path CS4 ladder (the Fig. 4-left shape):
   a fast triage stage squares away routine frames and escalates
   anomalous ones over the cross channel to the deep-analysis stage,
   which enriches whatever reaches it. Unlike the other examples, the
   nodes here are [App] functions over real values — the runtime's
   dummy messages are completely invisible to them — and the run
   executes on the parallel engine: one OCaml 5 domain per node with
   genuinely blocking channel sends, kept deadlock-free by the
   Non-Propagation intervals. *)

open Fstream_core
open Fstream_runtime

type frame = { id : int; level : float; note : string }

let () =
  let g = Fstream_workloads.Topo_gen.fig4_left ~cap:3 in
  let source_n = 0 and triage = 1 and deep = 2 and archive = 3 in
  let e_feed_triage = 0
  and e_feed_deep = 1
  and e_escalate = 2
  and e_routine = 3
  and e_alerts = 4 in
  let frames = 400 in
  let app = App.create g in
  (* telemetry generator: a noisy sensor with occasional spikes *)
  App.source app source_n (fun ~seq ->
      let level =
        sin (float seq /. 5.) +. if seq mod 37 = 0 then 2.5 else 0.
      in
      let frame = { id = seq; level; note = "raw" } in
      [ (e_feed_triage, frame); (e_feed_deep, frame) ]);
  (* triage: routine frames go straight to the archive; spikes are
     escalated across the ladder for deep analysis *)
  App.node app triage (fun ~seq:_ ~inputs ->
      match inputs with
      | [ (_, f) ] ->
        if f.level > 1.5 then
          [ (e_escalate, { f with note = "escalated" }) ]
        else [ (e_routine, { f with note = "routine" }) ]
      | _ -> assert false);
  (* deep analysis: joins its own feed with escalations; only
     escalated frames produce alerts (everything else is filtered) *)
  App.node app deep (fun ~seq:_ ~inputs ->
      let escalated =
        List.filter_map
          (fun (e, f) -> if e = e_escalate then Some f else None)
          inputs
      in
      List.map
        (fun f -> (e_alerts, { f with note = "ALERT level " ^ string_of_float f.level }))
        escalated);
  let routine = ref 0 and alerts = ref [] in
  App.sink app archive (fun ~seq:_ ~inputs ->
      List.iter
        (fun (e, f) ->
          if e = e_routine then incr routine else alerts := f :: !alerts)
        inputs);
  (* compile: intervals for the ladder, then run on real domains *)
  let plan = Result.get_ok (Compiler.compile Compiler.Non_propagation g) in
  Format.printf "topology: %a@." Compiler.pp_route plan.route;
  let stats =
    Fstream_parallel.Parallel_engine.run ~graph:g
      ~kernels:(App.to_kernels app) ~inputs:frames
      ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
      ()
  in
  Format.printf "parallel run: %s, %d data msgs, %d dummies@."
    (match stats.outcome with
    | Report.Completed -> "completed"
    | _ -> "DEADLOCKED")
    stats.data_messages stats.dummy_messages;
  Format.printf "%d routine frames archived, %d alerts:@." !routine
    (List.length !alerts);
  List.iter
    (fun f -> Format.printf "  frame %4d: %s@." f.id f.note)
    (List.sort (fun a b -> compare a.id b.id) !alerts)
