open Fstream_graph
open Fstream_ladder
open Fstream_core
module Sp_recognize = Fstream_spdag.Sp_recognize
module Repair = Fstream_repair.Repair
module App_spec = Fstream_workloads.App_spec

type severity = Error | Warning | Info

let pp_severity ppf = function
  | Error -> Format.pp_print_string ppf "error"
  | Warning -> Format.pp_print_string ppf "warning"
  | Info -> Format.pp_print_string ppf "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type location =
  | Whole_graph
  | Node of Graph.node
  | Channel of int
  | Nodes of Graph.node list
  | Channels of int list

type fixit = Reroute of Repair.t | Scale_buffers of int

type diagnostic = {
  code : string;
  severity : severity;
  location : location;
  message : string;
  witness : string list;
  fixit : fixit option;
}

type rule = { id : string; title : string; default_severity : severity }

(* The registry. Codes are stable; new rules append within their band
   (FS1xx structure, FS2xx cycle/CS4, FS3xx capacities/intervals,
   FS4xx application specs). *)
let rules =
  [
    {
      id = "FS101";
      title = "topology has a directed cycle";
      default_severity = Error;
    };
    {
      id = "FS102";
      title = "topology is not connected";
      default_severity = Error;
    };
    {
      id = "FS103";
      title = "multiple sources or sinks";
      default_severity = Warning;
    };
    {
      id = "FS104";
      title = "node unreachable from every source, or unable to reach a sink";
      default_severity = Error;
    };
    {
      id = "FS201";
      title = "not CS4: a cycle has several sources (Theorem V.7 fails)";
      default_severity = Error;
    };
    {
      id = "FS202";
      title = "multi-source undirected cycle (exponential-route evidence)";
      default_severity = Warning;
    };
    {
      id = "FS203";
      title = "not series-parallel: reduction stalls (ladder/CS4 route in use)";
      default_severity = Info;
    };
    {
      id = "FS301";
      title = "buffer too small: dummy interval below 1";
      default_severity = Warning;
    };
    {
      id = "FS302";
      title = "threshold table inconsistent with computed intervals";
      default_severity = Error;
    };
    {
      id = "FS303";
      title = "Propagation budget erodes a tighter cycle (unsound avoidance)";
      default_severity = Error;
    };
    {
      id = "FS304";
      title = "parallel channels with asymmetric capacities";
      default_severity = Info;
    };
    {
      id = "FS305";
      title = "LP run-sum audit: threshold demand exceeds a branch buffer";
      default_severity = Warning;
    };
    {
      id = "FS401";
      title = "spec behaviour binds an unknown node or channel";
      default_severity = Error;
    };
    {
      id = "FS402";
      title = "spec filters at a split node under the Propagation table";
      default_severity = Error;
    };
    {
      id = "FS403";
      title = "conflicting spec behaviours for one node";
      default_severity = Warning;
    };
  ]

let rule id = List.find_opt (fun r -> r.id = id) rules

type config = {
  algorithm : Compiler.algorithm;
  backend : Compiler.backend;
  max_cycles : int;
  audit_thresholds : Thresholds.t option;
  spec : App_spec.t option;
}

let default_config =
  {
    algorithm = Compiler.Non_propagation;
    backend = Compiler.Exact;
    max_cycles = 200_000;
    audit_thresholds = None;
    spec = None;
  }

type report = { diagnostics : diagnostic list; incomplete : string option }

let count r sev =
  List.length (List.filter (fun d -> d.severity = sev) r.diagnostics)

let max_severity r =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
        if severity_rank d.severity < severity_rank s then Some d.severity
        else acc)
    None r.diagnostics

(* ------------------------------------------------------------------ *)
(* Small helpers                                                        *)

let diag ?(witness = []) ?fixit code location message =
  let severity =
    match rule code with
    | Some r -> r.default_severity
    | None -> invalid_arg (Printf.sprintf "Lint.diag: unknown rule %s" code)
  in
  { code; severity; location; message; witness; fixit }

let node_list_string nodes =
  String.concat ", " (List.map string_of_int nodes)

let truncated_nodes ?(keep = 8) nodes =
  let n = List.length nodes in
  if n <= keep then node_list_string nodes
  else
    Printf.sprintf "%s, ... (%d in all)"
      (node_list_string (List.filteri (fun i _ -> i < keep) nodes))
      n

let chan_string g id =
  let e = Graph.edge g id in
  Printf.sprintf "e%d (%d->%d)" id e.Graph.src e.Graph.dst

(* One directed cycle of a non-DAG, as a vertex list, via DFS back edge. *)
let directed_cycle g =
  let n = Graph.num_nodes g in
  let color = Array.make n 0 in
  let parent = Array.make n (-1) in
  let found = ref None in
  let rec dfs v =
    color.(v) <- 1;
    List.iter
      (fun (e : Graph.edge) ->
        if !found = None then
          if color.(e.dst) = 0 then begin
            parent.(e.dst) <- v;
            dfs e.dst
          end
          else if color.(e.dst) = 1 then begin
            let rec collect u acc =
              if u = e.dst then e.dst :: acc else collect parent.(u) (u :: acc)
            in
            found := Some (collect v [])
          end)
      (Graph.out_edges g v);
    color.(v) <- 2
  in
  let v = ref 0 in
  while !found = None && !v < n do
    if color.(!v) = 0 then dfs !v;
    incr v
  done;
  !found

(* Undirected connected components, as sorted node lists. *)
let components g =
  let n = Graph.num_nodes g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then begin
      let c = !next in
      incr next;
      let stack = ref [ v ] in
      comp.(v) <- c;
      while !stack <> [] do
        let u = List.hd !stack in
        stack := List.tl !stack;
        List.iter
          (fun (e : Graph.edge) ->
            let w = Graph.other_endpoint e u in
            if comp.(w) = -1 then begin
              comp.(w) <- c;
              stack := w :: !stack
            end)
          (Graph.incident_edges g u)
      done
    end
  done;
  let buckets = Array.make !next [] in
  for v = n - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  Array.to_list buckets

let cycle_channel_ids c =
  List.map (fun (o : Cycles.oriented) -> o.Cycles.edge.Graph.id) c

(* ------------------------------------------------------------------ *)
(* Analysis context shared by the rules                                 *)

type ctx = {
  g : Graph.t;
  cfg : config;
  dag : bool;
  connected : bool;
  two_terminal : (Graph.node * Graph.node) option;
  cycles : Cycles.t list option;  (** [None]: cyclic graph or budget *)
  classification : (Cs4.t, Cs4.failure) result option;
  plan : (Compiler.plan, Compiler.error) result option;
  mutable incomplete : string option;
}

let make_ctx cfg g =
  let dag = Topo.is_dag g in
  let connected = Topo.connected g in
  let incomplete = ref None in
  let cycles =
    if not dag then None
    else
      try Some (Cycles.enumerate ~max_cycles:cfg.max_cycles g)
      with Failure _ ->
        incomplete :=
          Some
            (Printf.sprintf
               "cycle enumeration exceeded the budget of %d simple cycles; \
                cycle-structure rules (FS2xx, FS303) were skipped"
               cfg.max_cycles);
        None
  in
  let classification =
    match Topo.is_two_terminal g with
    | Some _ when connected -> Some (Cs4.classify g)
    | _ -> None
  in
  let plan =
    if dag && connected then
      Some
        (Compiler.compile
           ~options:
             {
               Compiler.Options.default with
               max_cycles = cfg.max_cycles;
               backend = cfg.backend;
             }
           cfg.algorithm g)
  else None
  in
  (match plan with
  | Some (Stdlib.Error (Compiler.Cycle_budget_exceeded n))
    when !incomplete = None ->
    incomplete :=
      Some
        (Printf.sprintf
           "interval computation gave up after %d enumerated cycles; \
            interval rules (FS3xx) were skipped"
           n)
  | _ -> ());
  {
    g;
    cfg;
    dag;
    connected;
    two_terminal = Topo.is_two_terminal g;
    cycles;
    classification;
    plan;
    incomplete = !incomplete;
  }

(* ------------------------------------------------------------------ *)
(* FS1xx: structure                                                     *)

let rule_fs101 ctx =
  if ctx.dag then []
  else
    let witness, loc =
      match directed_cycle ctx.g with
      | Some vs ->
        ( [
            Printf.sprintf "directed cycle: %s -> %s"
              (String.concat " -> " (List.map string_of_int vs))
              (string_of_int (List.hd vs));
          ],
          Nodes vs )
      | None -> ([], Whole_graph)
    in
    [
      diag ~witness "FS101" loc
        "the topology has a directed cycle: streams cannot be scheduled \
         and no interval table exists";
    ]

let rule_fs102 ctx =
  if ctx.connected then []
  else
    let comps = components ctx.g in
    let smallest =
      List.fold_left
        (fun acc c ->
          match acc with
          | None -> Some c
          | Some b -> if List.length c < List.length b then Some c else acc)
        None comps
    in
    let witness =
      Printf.sprintf "%d components; smallest is {%s}" (List.length comps)
        (match smallest with
        | Some c -> truncated_nodes c
        | None -> "")
    in
    [
      diag ~witness:[ witness ] "FS102"
        (match smallest with Some c -> Nodes c | None -> Whole_graph)
        "the topology is not connected: isolated parts cannot exchange \
         sequence numbers and the interval algorithms reject it";
    ]

let rule_fs103 ctx =
  if not ctx.dag then []
  else
    let sources = Graph.sources ctx.g and sinks = Graph.sinks ctx.g in
    let one what nodes =
      if List.length nodes <= 1 then []
      else
        [
          diag "FS103" (Nodes nodes)
            (Printf.sprintf
               "%d %ss (nodes %s): the polynomial SP/CS4 algorithms need a \
                two-terminal DAG; only the exponential general route applies"
               (List.length nodes) what (node_list_string nodes));
        ]
    in
    one "source" sources @ one "sink" sinks

let rule_fs104 ctx =
  if ctx.dag then []
  else begin
    let n = Graph.num_nodes ctx.g in
    let reach_from_sources = Array.make n false in
    let reach_to_sinks = Array.make n false in
    let sweep init adj mark =
      let stack = ref init in
      List.iter (fun v -> mark.(v) <- true) init;
      while !stack <> [] do
        let v = List.hd !stack in
        stack := List.tl !stack;
        List.iter
          (fun w ->
            if not mark.(w) then begin
              mark.(w) <- true;
              stack := w :: !stack
            end)
          (adj v)
      done
    in
    sweep (Graph.sources ctx.g)
      (fun v ->
        List.map (fun (e : Graph.edge) -> e.dst) (Graph.out_edges ctx.g v))
      reach_from_sources;
    sweep (Graph.sinks ctx.g)
      (fun v ->
        List.map (fun (e : Graph.edge) -> e.src) (Graph.in_edges ctx.g v))
      reach_to_sinks;
    let collect mark =
      List.filter (fun v -> not mark.(v)) (List.init n Fun.id)
    in
    let unreachable = collect reach_from_sources in
    let dead_end = collect reach_to_sinks in
    let one what nodes =
      if nodes = [] then []
      else
        [
          diag "FS104" (Nodes nodes)
            (Printf.sprintf "node(s) %s %s: they can never %s"
               (truncated_nodes nodes)
               (if what = "unreachable" then
                  "are unreachable from every source"
                else "cannot reach any sink")
               (if what = "unreachable" then "fire" else "drain"));
        ]
    in
    one "unreachable" unreachable @ one "dead-end" dead_end
  end

(* ------------------------------------------------------------------ *)
(* FS2xx: cycle structure                                               *)

let bad_cycles ctx =
  match ctx.cycles with
  | None -> []
  | Some cs -> List.filter (fun c -> not (Cycles.is_cs4_cycle c)) cs

let rule_fs201 ctx =
  match ctx.classification with
  | Some (Stdlib.Error (Cs4.Bad_block { block_source; block_sink; reason }))
    ->
    let witness_cycle =
      match bad_cycles ctx with c :: _ -> Some c | [] -> None
    in
    let witness =
      match witness_cycle with
      | Some c ->
        [
          Printf.sprintf "witness cycle through nodes {%s}"
            (node_list_string (List.sort_uniq compare (Cycles.vertices c)));
          Printf.sprintf "cycle sources {%s}, sinks {%s}"
            (node_list_string (Cycles.cycle_sources c))
            (node_list_string (Cycles.cycle_sinks c));
        ]
      | None -> []
    in
    let fixit =
      match Repair.repair ctx.g with
      | Ok r when r.Repair.reroutes <> [] -> Some (Reroute r)
      | _ -> None
    in
    let loc =
      match witness_cycle with
      | Some c -> Channels (cycle_channel_ids c)
      | None -> Nodes [ block_source; block_sink ]
    in
    (* under the LP backend a non-CS4 topology is first-class: the
       polynomial simplex encoding replaces the exponential fallback,
       so the finding informs (conservative table) instead of failing
       admission *)
    let d =
      diag ~witness ?fixit "FS201" loc
        (Printf.sprintf
           "not CS4: block %d..%d is neither SP nor an SP-ladder (%s); \
            interval computation falls back to the exponential general \
            route"
           block_source block_sink reason)
    in
    (match ctx.cfg.backend with
    | Compiler.Lp ->
      [
        {
          d with
          severity = Warning;
          message =
            Printf.sprintf
              "not CS4: block %d..%d is neither SP nor an SP-ladder (%s); \
               the LP backend computes a conservative interval table in \
               polynomial time"
              block_source block_sink reason;
        };
      ]
    | Compiler.Exact | Compiler.Auto -> [ d ])
  | _ -> []

let rule_fs202 ctx =
  let bad = bad_cycles ctx in
  let total = List.length bad in
  let keep = 5 in
  List.filteri (fun i _ -> i < keep) bad
  |> List.mapi (fun i c ->
         let srcs = Cycles.cycle_sources c in
         diag "FS202"
           (Channels (cycle_channel_ids c))
           (Printf.sprintf
              "multi-source cycle %d of %d: %d sources {%s}, %d sinks {%s} \
               — each such cycle multiplies the general route's work"
              (i + 1) total (List.length srcs) (node_list_string srcs)
              (List.length (Cycles.cycle_sinks c))
              (node_list_string (Cycles.cycle_sinks c))))

let rule_fs203 ctx =
  match ctx.classification with
  | Some (Ok _) -> (
    match Sp_recognize.recognize ctx.g with
    | Stdlib.Error (Sp_recognize.Irreducible { remaining_edges }) ->
      [
        diag "FS203" Whole_graph
          (Printf.sprintf
             "not series-parallel: the series/parallel reduction stalls \
              with %d super-edges; the ladder/CS4 algorithms are in use \
              (polynomial, not linear)"
             remaining_edges);
      ]
    | _ -> [])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* FS3xx: capacities, intervals, thresholds                             *)

let rule_fs301 ctx =
  match ctx.plan with
  | Some (Ok p) ->
    let offenders =
      Graph.fold_edges ctx.g ~init:[] ~f:(fun acc e ->
          let i = p.Compiler.intervals.(e.Graph.id) in
          if Interval.is_finite i && Interval.floor_opt i = Some 0 then
            (e.Graph.id, i) :: acc
          else acc)
      |> List.rev
    in
    if offenders = [] then []
    else
      let fixit =
        match Sizing.min_uniform_scale ctx.g ctx.cfg.algorithm ~target:1 with
        | Ok c when c > 1 -> Some (Scale_buffers c)
        | _ -> None
      in
      List.map
        (fun (id, i) ->
          diag
            ~witness:
              [
                Printf.sprintf "interval %s < 1 on channel %s"
                  (Format.asprintf "%a" Interval.pp i)
                  (chan_string ctx.g id);
              ]
            ?fixit "FS301" (Channel id)
            (Printf.sprintf
               "buffer too small on channel %s: the dummy interval is below \
                1, so the runtime clamps to a dummy every sequence number \
                (SDF-degenerate avoidance)"
               (chan_string ctx.g id)))
        offenders
  | _ -> []

let rule_fs302 ctx =
  match (ctx.cfg.audit_thresholds, ctx.plan) with
  | Some t, _ when not (Thresholds.compatible t ctx.g) ->
    [
      diag "FS302" Whole_graph
        "the supplied threshold table was computed for a different \
         topology (fingerprint mismatch); the engines will refuse it";
    ]
  | Some t, Some (Ok p) ->
    Graph.fold_edges ctx.g ~init:[] ~f:(fun acc e ->
        let id = e.Graph.id in
        let sound = Interval.threshold p.Compiler.intervals.(id) in
        match (Thresholds.get t id, sound) with
        | None, Some k ->
          diag
            ~witness:
              [
                Printf.sprintf
                  "computed interval %s requires a threshold of at most %d"
                  (Format.asprintf "%a" Interval.pp
                     p.Compiler.intervals.(id))
                  k;
              ]
            "FS302" (Channel id)
            (Printf.sprintf
               "channel %s has a finite dummy interval but the supplied \
                table never sends dummies on it — a filtered stream can \
                starve its consumer forever"
               (chan_string ctx.g id))
          :: acc
        | Some supplied, Some k when supplied > k ->
          diag
            ~witness:
              [
                Printf.sprintf "supplied threshold %d > sound bound %d"
                  supplied k;
              ]
            "FS302" (Channel id)
            (Printf.sprintf
               "threshold on channel %s is later than the computed \
                interval allows: dummies arrive after the opposing buffer \
                can already be full"
               (chan_string ctx.g id))
          :: acc
        | _ -> acc)
    |> List.rev
  | _ -> []

(* FS303: the budget-erosion hazard of the paper-literal Propagation
   table (DESIGN.md, deviation 3). Under unrestricted filtering,
   soundness is a per-run budget: at a wedge every node along a run can
   sit one sequence number below its origination threshold without
   owing anything, so the run is guaranteed to free the opposing
   buffers only when the sum of (threshold - 1) over its edges stays
   within opposing capacity - 1. The paper table satisfies this when
   every non-head run edge is an eager relay (threshold 1) — the budget
   sits whole at the head; it breaks when an edge mid-run on one cycle
   is simultaneously the head of another cycle that grants it a looser
   budget, eroding the tighter cycle (the 4-node erosion counterexample
   is the canonical instance, and parallel-edge multigraphs hit the
   same hazard with no erosion "split" in sight). We check the
   discipline directly on every enumerated cycle; each violated run is
   a machine-checkable unsoundness witness. *)
let rule_fs303 ctx =
  match (ctx.cfg.algorithm, ctx.plan, ctx.cycles) with
  | Compiler.Propagation, Some (Ok p), Some cycles ->
    let thr = Compiler.propagation_thresholds ctx.g p.Compiler.intervals in
    let flagged = Hashtbl.create 8 in
    let acc = ref [] in
    let emit d id =
      if not (Hashtbl.mem flagged id) then begin
        Hashtbl.add flagged id ();
        acc := d :: !acc
      end
    in
    List.iter
      (fun c ->
        let runs = Cycles.runs c in
        let opposite = Cycles.opposite_run c in
        let cycle_nodes () =
          node_list_string (List.sort_uniq compare (Cycles.vertices c))
        in
        Array.iteri
          (fun i r ->
            let l = Cycles.run_caps runs.(opposite.(i)) in
            (* worst-case run lag before any origination must fire;
               None means the table never catches up at all *)
            let lag =
              List.fold_left
                (fun acc (e : Graph.edge) ->
                  match (acc, Thresholds.get thr e.Graph.id) with
                  | Some s, Some k -> Some (s + k - 1)
                  | _ -> None)
                (Some 0) r.Cycles.run_edges
            in
            match lag with
            | None ->
              List.iter
                (fun (e : Graph.edge) ->
                  if Thresholds.get thr e.Graph.id = None then
                    emit
                      (diag
                         ~witness:
                           [
                             Printf.sprintf
                               "on the cycle through nodes {%s}"
                               (cycle_nodes ());
                           ]
                         "FS303" (Channel e.Graph.id)
                         (Printf.sprintf
                            "channel %s lies on a cycle but the Propagation \
                             table never originates dummies on it"
                            (chan_string ctx.g e.Graph.id)))
                      e.Graph.id)
                r.Cycles.run_edges
            | Some lag when lag > l - 1 ->
              (* anchor the finding on the loosest budget in the run:
                 that is the entry granted by some other cycle *)
              let anchor =
                List.fold_left
                  (fun best (e : Graph.edge) ->
                    let k =
                      Option.value ~default:0
                        (Thresholds.get thr e.Graph.id)
                    in
                    match best with
                    | Some (k', _) when k' >= k -> best
                    | _ -> Some (k, e.Graph.id))
                  None r.Cycles.run_edges
              in
              Option.iter
                (fun (k, id) ->
                  emit
                    (diag
                       ~witness:
                         [
                           Printf.sprintf
                             "run {%s} lags up to %d while the opposing \
                              side holds only %d"
                             (String.concat ", "
                                (List.map
                                   (fun (e : Graph.edge) ->
                                     Printf.sprintf "%s:[%s]"
                                       (chan_string ctx.g e.Graph.id)
                                       (match
                                          Thresholds.get thr e.Graph.id
                                        with
                                       | Some k -> string_of_int k
                                       | None -> "inf"))
                                   r.Cycles.run_edges))
                             lag l;
                           Printf.sprintf "on the cycle through nodes {%s}"
                             (cycle_nodes ());
                         ]
                       "FS303" (Channel id)
                       (Printf.sprintf
                          "the Propagation budget %d on channel %s erodes a \
                           tighter cycle: its run may legally lag %d \
                           sequence numbers where %d already wedges (use \
                           non-propagation thresholds or eager relays)"
                          k (chan_string ctx.g id) lag l))
                    id)
                anchor
            | Some _ -> ())
          runs)
      cycles;
    List.rev !acc
  | _ -> []

let rule_fs304 ctx =
  let seen = Hashtbl.create 16 in
  Graph.fold_edges ctx.g ~init:[] ~f:(fun acc e ->
      let key = (e.Graph.src, e.Graph.dst) in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        let group = e :: Graph.parallel_edges ctx.g e in
        let caps =
          List.sort_uniq compare (List.map (fun e -> e.Graph.cap) group)
        in
        if List.length group >= 2 && List.length caps >= 2 then
          diag
            ~witness:
              [
                Printf.sprintf "capacities {%s} between nodes %d and %d"
                  (String.concat ", " (List.map string_of_int caps))
                  e.Graph.src e.Graph.dst;
              ]
            "FS304"
            (Channels
               (List.sort compare (List.map (fun e -> e.Graph.id) group)))
            (Printf.sprintf
               "parallel channels %d->%d have asymmetric capacities: their \
                pair cycle's interval is limited by the smaller buffer, so \
                the extra capacity buys nothing"
               e.Graph.src e.Graph.dst)
          :: acc
        else acc
      end)
  |> List.rev

(* FS305: the LP backend's run-sum audit of a supplied threshold
   table. The discipline is sufficient, not necessary, so a violation
   is a Warning: the table may still be safe, but it no longer carries
   the polynomial certificate the LP backend relies on. Gated on
   [backend = Lp] so the default lint output (and the cram suite) is
   byte-identical to the exact route. *)
let rule_fs305 ctx =
  match (ctx.cfg.backend, ctx.cfg.audit_thresholds) with
  | Compiler.Lp, Some t when Thresholds.compatible t ctx.g && ctx.dag -> (
    let thresholds =
      Array.init (Graph.num_edges ctx.g) (fun id -> Thresholds.get t id)
    in
    match Lp.audit ctx.g ~thresholds with
    | Ok () -> []
    | Stdlib.Error w ->
      [
        diag
          ~witness:
            [
              Printf.sprintf
                "branch node %d: worst chain demand %d > out-buffer slack %d"
                w.Lp.wnode w.Lp.wdemand w.Lp.wsupply;
              Printf.sprintf "demand chain: %s"
                (String.concat " -> "
                   (List.map
                      (fun (e : Graph.edge) -> chan_string ctx.g e.Graph.id)
                      w.Lp.wedges));
            ]
          "FS305" (Node w.Lp.wnode)
          (Printf.sprintf
             "the supplied thresholds break the LP run-sum discipline at \
              branch node %d: a run out of it may legally lag %d sequence \
              numbers while its smallest out-buffer frees only %d"
             w.Lp.wnode w.Lp.wdemand w.Lp.wsupply);
      ])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* FS4xx: application specs                                             *)

let is_filtering = function
  | App_spec.Passthrough -> false
  | App_spec.Bernoulli p -> p < 1.0
  | App_spec.Periodic k -> k > 1
  | App_spec.Drop | App_spec.Route_one | App_spec.Block _ -> true

let rule_fs401 ctx =
  match ctx.cfg.spec with
  | None -> []
  | Some spec ->
    List.filter_map
      (fun (v, b) ->
        let bad_node = v < 0 || v >= Graph.num_nodes ctx.g in
        let bad_edge =
          (not bad_node)
          &&
          match b with
          | App_spec.Block e ->
            not
              (List.exists
                 (fun (edge : Graph.edge) -> edge.Graph.id = e)
                 (Graph.out_edges ctx.g v))
          | _ -> false
        in
        if bad_node then
          Some
            (diag "FS401" Whole_graph
               (Printf.sprintf
                  "spec behaviour '%s' is bound to node %d, which does not \
                   exist (topology has %d nodes)"
                  (Format.asprintf "%a" App_spec.pp_behavior b)
                  v (Graph.num_nodes ctx.g)))
        else if bad_edge then
          Some
            (diag "FS401" (Node v)
               (Printf.sprintf
                  "spec behaviour '%s' on node %d names a channel that is \
                   not one of the node's out-channels"
                  (Format.asprintf "%a" App_spec.pp_behavior b)
                  v))
        else None)
      spec.App_spec.behaviors

let rule_fs402 ctx =
  match (ctx.cfg.algorithm, ctx.cfg.spec) with
  | Compiler.Propagation, Some spec ->
    let splitter v =
      Graph.in_degree ctx.g v > 0 && Graph.out_degree ctx.g v >= 2
    in
    let listed = List.map fst spec.App_spec.behaviors in
    let explicit =
      List.filter_map
        (fun (v, b) ->
          if
            v >= 0
            && v < Graph.num_nodes ctx.g
            && is_filtering b && splitter v
          then
            Some
              (diag "FS402" (Node v)
                 (Printf.sprintf
                    "spec filters ('%s') at split node %d: the Propagation \
                     table is only sound when filtering sits at sources \
                     and pure relays (DESIGN.md deviation 3)"
                    (Format.asprintf "%a" App_spec.pp_behavior b)
                    v))
          else None)
        spec.App_spec.behaviors
    in
    let defaulted =
      if not (is_filtering spec.App_spec.default) then []
      else
        let nodes =
          List.filter
            (fun v -> splitter v && not (List.mem v listed))
            (List.init (Graph.num_nodes ctx.g) Fun.id)
        in
        if nodes = [] then []
        else
          [
            diag "FS402" (Nodes nodes)
              (Printf.sprintf
                 "the spec's default behaviour ('%s') filters, and split \
                  node(s) %s fall through to it: the Propagation table is \
                  only sound when filtering sits at sources and pure relays"
                 (Format.asprintf "%a" App_spec.pp_behavior
                    spec.App_spec.default)
                 (truncated_nodes nodes));
          ]
    in
    explicit @ defaulted
  | _ -> []

let rule_fs403 ctx =
  match ctx.cfg.spec with
  | None -> []
  | Some spec ->
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (v, b) ->
        match Hashtbl.find_opt seen v with
        | None ->
          Hashtbl.add seen v b;
          None
        | Some first ->
          Some
            (diag "FS403" (Node v)
               (Printf.sprintf
                  "node %d has several behaviour directives; the first \
                   ('%s') wins and '%s' is silently ignored"
                  v
                  (Format.asprintf "%a" App_spec.pp_behavior first)
                  (Format.asprintf "%a" App_spec.pp_behavior b))))
      spec.App_spec.behaviors

(* ------------------------------------------------------------------ *)

let location_key = function
  | Whole_graph -> (0, [])
  | Node v -> (1, [ v ])
  | Channel e -> (2, [ e ])
  | Nodes l -> (3, l)
  | Channels l -> (4, l)

let run ?(config = default_config) g =
  let ctx = make_ctx config g in
  let diagnostics =
    List.concat
      [
        rule_fs101 ctx;
        rule_fs102 ctx;
        rule_fs103 ctx;
        rule_fs104 ctx;
        rule_fs201 ctx;
        rule_fs202 ctx;
        rule_fs203 ctx;
        rule_fs301 ctx;
        rule_fs302 ctx;
        rule_fs303 ctx;
        rule_fs304 ctx;
        rule_fs305 ctx;
        rule_fs401 ctx;
        rule_fs402 ctx;
        rule_fs403 ctx;
      ]
  in
  let diagnostics =
    List.stable_sort
      (fun a b ->
        match compare a.code b.code with
        | 0 -> (
          match compare (location_key a.location) (location_key b.location) with
          | 0 -> compare a.message b.message
          | c -> c)
        | c -> c)
      diagnostics
  in
  { diagnostics; incomplete = ctx.incomplete }

let apply_fixes g report =
  let reroute =
    List.find_map
      (fun d -> match d.fixit with Some (Reroute r) -> Some r | _ -> None)
      report.diagnostics
  in
  let scale =
    List.fold_left
      (fun acc d ->
        match d.fixit with
        | Some (Scale_buffers c) -> max acc c
        | _ -> acc)
      1 report.diagnostics
  in
  if reroute = None && scale = 1 then
    Stdlib.Error "no finding carries an applicable fixit"
  else begin
    let g, actions =
      match reroute with
      | Some r ->
        ( r.Repair.graph,
          [
            Printf.sprintf
              "rerouted %d channel(s) through relays (%d added) to reach CS4"
              r.Repair.deleted_edges r.Repair.added_edges;
          ] )
      | None -> (g, [])
    in
    let g, actions =
      if scale > 1 then
        ( Sizing.scale_caps g scale,
          actions
          @ [
              Printf.sprintf
                "scaled every buffer capacity by x%d to lift all dummy \
                 intervals to >= 1"
                scale;
            ] )
      else (g, actions)
    in
    Ok (g, actions)
  end
