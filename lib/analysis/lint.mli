(** Static diagnostics for stream plans: `streamcheck lint`.

    The paper's contribution is *static* deadlock reasoning — safety is
    decided from topology (SP / CS4 structure, Lemmas III.1–III.4,
    Theorem V.7) before anything runs. The rest of the repository
    exposes that reasoning as monolithic pass/fail tools ([classify],
    [verify], [repair]); this module turns it into a diagnostics layer:
    a registry of named rules, each yielding structured findings with a
    stable code ([FS101], ...), a severity, a location (nodes/channels),
    a human message, a concrete witness (the bad cycle, the undersized
    channel, the eroded budget), and — where the repository knows the
    cure — a machine-applicable fixit.

    Severity contract: a report with zero [Error]-severity findings is
    the linter's claim that the configured plan is safe — for graphs
    small enough to check, {!Fstream_verify.Verify} finds no reachable
    wedge under the corresponding avoidance wrapper (property-tested in
    [test/test_lint.ml] across all three wrapper configurations).
    [Warning]s flag degenerate-but-sound plans (e.g. a buffer so small
    its channel needs a dummy every sequence number); [Info]s are
    structural notes.

    Kernel fusion: the linter analyses the {e pre-fusion} graph — the
    topology the user wrote, whose node and channel ids its findings
    cite. This is sound for fused execution too: {!Fstream_core.Fusion}
    collapses only bridge edges, which lie on no undirected cycle, so
    every cycle the rules reason about survives fusion with its
    buffering and hop counts intact, and the derived fused interval
    table is exactly the original table restricted to the surviving
    channels (property-checked in [test/test_fusion.ml]). A plan that
    lints clean therefore stays clean under [~fuse:true]. *)

open Fstream_graph

type severity = Error | Warning | Info

val pp_severity : Format.formatter -> severity -> unit

(** Where a finding points. Channels are edge ids of the linted graph. *)
type location =
  | Whole_graph
  | Node of Graph.node
  | Channel of int
  | Nodes of Graph.node list
  | Channels of int list

type fixit =
  | Reroute of Fstream_repair.Repair.t
      (** replace the topology by the CS4 repair (paper §VII) *)
  | Scale_buffers of int
      (** multiply every buffer capacity by this factor
          ({!Fstream_core.Sizing.scale_caps}) *)

type diagnostic = {
  code : string;  (** stable rule code, e.g. ["FS201"] *)
  severity : severity;
  location : location;
  message : string;  (** one-line human message *)
  witness : string list;  (** concrete evidence, one line per element *)
  fixit : fixit option;
}

type rule = {
  id : string;
  title : string;  (** short description for registries / SARIF *)
  default_severity : severity;
}

val rules : rule list
(** The registry, in code order. Every diagnostic's [code] names one of
    these. *)

val rule : string -> rule option

type config = {
  algorithm : Fstream_core.Compiler.algorithm;
      (** the plan being audited (default [Non_propagation]) *)
  backend : Fstream_core.Compiler.backend;
      (** interval machinery for the audited plan (default [Exact]);
          [Lp] additionally arms the FS305 run-sum audit *)
  max_cycles : int;
      (** budget for cycle enumeration (default 200_000) *)
  audit_thresholds : Fstream_core.Thresholds.t option;
      (** an externally supplied threshold table to audit against the
          computed intervals (rule FS302); [None] audits nothing *)
  spec : Fstream_workloads.App_spec.t option;
      (** per-node behaviours to lint against the topology and plan
          (rules FS401–FS403) *)
}

val default_config : config

type report = {
  diagnostics : diagnostic list;
      (** sorted by code, then location, then message *)
  incomplete : string option;
      (** when analysis could not finish (cycle-enumeration budget
          exhausted): what was skipped. A lint-clean verdict is not
          trustworthy in this state. *)
}

val run : ?config:config -> Graph.t -> report

val count : report -> severity -> int
val max_severity : report -> severity option

val apply_fixes : Graph.t -> report -> (Graph.t * string list, string) result
(** Apply every fixit of the report to the graph: first the CS4 reroute
    (if any finding carries one), then the largest buffer-scaling
    factor. Returns the fixed graph and a human summary line per action
    taken; [Error] if the report carries no fixit at all. *)
