open Fstream_graph
module Repair = Fstream_repair.Repair

(* ------------------------------------------------------------------ *)
(* Shared small pieces                                                  *)

let severity_string = function
  | Lint.Error -> "error"
  | Lint.Warning -> "warning"
  | Lint.Info -> "info"

let chan g id =
  let e = Graph.edge g id in
  Printf.sprintf "e%d (%d->%d)" id e.Graph.src e.Graph.dst

let location_string g = function
  | Lint.Whole_graph -> "graph"
  | Lint.Node v -> Printf.sprintf "node %d" v
  | Lint.Channel id -> Printf.sprintf "channel %s" (chan g id)
  | Lint.Nodes vs ->
    Printf.sprintf "nodes {%s}"
      (String.concat ", " (List.map string_of_int vs))
  | Lint.Channels ids ->
    Printf.sprintf "channels {%s}"
      (String.concat ", " (List.map (fun id -> Printf.sprintf "e%d" id) ids))

let fixit_string = function
  | Lint.Scale_buffers c ->
    Printf.sprintf "scale every buffer capacity by x%d" c
  | Lint.Reroute r ->
    String.concat "; "
      (Printf.sprintf "reroute to CS4 (%d channel(s) deleted, %d added)"
         r.Repair.deleted_edges r.Repair.added_edges
      :: List.map
           (fun rr -> Format.asprintf "%a" Repair.pp_reroute rr)
           r.Repair.reroutes)

(* ------------------------------------------------------------------ *)
(* Human text                                                           *)

let text ?(color = false) ppf ~graph ~source (report : Lint.report) =
  let paint sev s =
    if not color then s
    else
      let code =
        match sev with
        | Lint.Error -> "31"
        | Lint.Warning -> "33"
        | Lint.Info -> "36"
      in
      Printf.sprintf "\027[%sm%s\027[0m" code s
  in
  Format.fprintf ppf "lint: %s@." source;
  List.iter
    (fun (d : Lint.diagnostic) ->
      Format.fprintf ppf "%s %s %s: %s@." d.code
        (paint d.severity (severity_string d.severity))
        (location_string graph d.location)
        d.message;
      List.iter (fun w -> Format.fprintf ppf "    witness: %s@." w) d.witness;
      match d.fixit with
      | Some f -> Format.fprintf ppf "    fix: %s@." (fixit_string f)
      | None -> ())
    report.diagnostics;
  (match report.incomplete with
  | Some note -> Format.fprintf ppf "analysis incomplete: %s@." note
  | None -> ());
  let c sev = Lint.count report sev in
  if report.diagnostics = [] then Format.fprintf ppf "clean: no findings@."
  else
    Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@."
      (c Lint.Error) (c Lint.Warning) (c Lint.Info)

(* ------------------------------------------------------------------ *)
(* JSON scaffolding (no JSON library in the dependency set; the same
   hand-rolled style as Fstream_obs.Trace_json)                         *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char b '\\';
        Buffer.add_char b c
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = Printf.sprintf "\"%s\"" (escape s)
let ints l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"
let strs l = "[" ^ String.concat "," (List.map str l) ^ "]"

let location_json g = function
  | Lint.Whole_graph -> {|{"kind":"graph"}|}
  | Lint.Node v -> Printf.sprintf {|{"kind":"node","node":%d}|} v
  | Lint.Channel id ->
    let e = Graph.edge g id in
    Printf.sprintf {|{"kind":"channel","channel":%d,"src":%d,"dst":%d}|} id
      e.Graph.src e.Graph.dst
  | Lint.Nodes vs -> Printf.sprintf {|{"kind":"nodes","nodes":%s}|} (ints vs)
  | Lint.Channels ids ->
    Printf.sprintf {|{"kind":"channels","channels":%s}|} (ints ids)

let fixit_json = function
  | Lint.Scale_buffers c ->
    Printf.sprintf {|{"kind":"scale_buffers","factor":%d}|} c
  | Lint.Reroute r ->
    Printf.sprintf
      {|{"kind":"reroute","deleted_edges":%d,"added_edges":%d,"reroutes":%s}|}
      r.Repair.deleted_edges r.Repair.added_edges
      (strs
         (List.map
            (fun rr -> Format.asprintf "%a" Repair.pp_reroute rr)
            r.Repair.reroutes))

let jsonl ppf ~graph (report : Lint.report) =
  List.iter
    (fun (d : Lint.diagnostic) ->
      Format.fprintf ppf
        {|{"code":%s,"severity":%s,"location":%s,"message":%s,"witness":%s%s}|}
        (str d.code)
        (str (severity_string d.severity))
        (location_json graph d.location)
        (str d.message) (strs d.witness)
        (match d.fixit with
        | None -> ""
        | Some f -> Printf.sprintf {|,"fixit":%s|} (fixit_json f));
      Format.pp_print_newline ppf ())
    report.diagnostics;
  Format.fprintf ppf
    {|{"summary":{"errors":%d,"warnings":%d,"infos":%d},"incomplete":%s}|}
    (Lint.count report Lint.Error)
    (Lint.count report Lint.Warning)
    (Lint.count report Lint.Info)
    (match report.incomplete with None -> "null" | Some n -> str n);
  Format.pp_print_newline ppf ()

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0                                                          *)

let sarif_level = function
  | Lint.Error -> "error"
  | Lint.Warning -> "warning"
  | Lint.Info -> "note"

let logical_locations g = function
  | Lint.Whole_graph ->
    [ {|{"name":"graph","kind":"module"}|} ]
  | Lint.Node v ->
    [ Printf.sprintf {|{"name":"node %d","kind":"function"}|} v ]
  | Lint.Channel id ->
    [
      Printf.sprintf {|{"name":%s,"kind":"resource"}|} (str (chan g id));
    ]
  | Lint.Nodes vs ->
    List.map
      (fun v -> Printf.sprintf {|{"name":"node %d","kind":"function"}|} v)
      vs
  | Lint.Channels ids ->
    List.map
      (fun id ->
        Printf.sprintf {|{"name":%s,"kind":"resource"}|} (str (chan g id)))
      ids

let sarif ppf ~graph ~source (report : Lint.report) =
  let rule_index code =
    let rec go i = function
      | [] -> -1
      | (r : Lint.rule) :: rest -> if r.id = code then i else go (i + 1) rest
    in
    go 0 Lint.rules
  in
  let rules_json =
    String.concat ",\n        "
      (List.map
         (fun (r : Lint.rule) ->
           Printf.sprintf
             {|{"id":%s,"shortDescription":{"text":%s},"defaultConfiguration":{"level":%s}}|}
             (str r.id) (str r.title)
             (str (sarif_level r.default_severity)))
         Lint.rules)
  in
  let result_json (d : Lint.diagnostic) =
    let full_message =
      String.concat "\n"
        (d.message
         :: List.map (fun w -> "witness: " ^ w) d.witness
        @
        match d.fixit with
        | Some f -> [ "fix: " ^ fixit_string f ]
        | None -> [])
    in
    Printf.sprintf
      {|{"ruleId":%s,"ruleIndex":%d,"level":%s,"message":{"text":%s},"locations":[{"physicalLocation":{"artifactLocation":{"uri":%s}},"logicalLocations":[%s]}]}|}
      (str d.code) (rule_index d.code)
      (str (sarif_level d.severity))
      (str full_message) (str source)
      (String.concat "," (logical_locations graph d.location))
  in
  let results =
    String.concat ",\n        " (List.map result_json report.diagnostics)
  in
  let notifications =
    match report.incomplete with
    | None -> ""
    | Some note ->
      Printf.sprintf
        {|,"toolExecutionNotifications":[{"level":"warning","message":{"text":%s}}]|}
        (str note)
  in
  Format.fprintf ppf
    {|{
  "version": "2.1.0",
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "streamcheck lint",
          "informationUri": "https://github.com/filterstream/filterstream",
          "rules": [
        %s
          ]
        }
      },
      "results": [
        %s
      ],
      "invocations": [{"executionSuccessful": true%s}]
    }
  ]
}|}
    rules_json results notifications;
  Format.pp_print_newline ppf ()
