(** Renderers for lint reports: human text, JSON lines, SARIF 2.1.0.

    All three take the linted graph so channel locations can be shown
    with their endpoints, and a [source] label naming what was linted
    (a file path or ["demo:NAME"]); the SARIF renderer uses it as the
    artifact URI GitHub code scanning anchors results to. *)

open Fstream_graph

val text :
  ?color:bool ->
  Format.formatter ->
  graph:Graph.t ->
  source:string ->
  Lint.report ->
  unit
(** Grouped human output: one block per diagnostic (code, severity,
    location, message, indented witness and fixit lines) and a trailing
    summary line. [color] (default [false]) wraps severities in ANSI
    colors. *)

val jsonl : Format.formatter -> graph:Graph.t -> Lint.report -> unit
(** One JSON object per diagnostic, then one summary object
    [{"summary": ...}] carrying the severity counts and the
    [incomplete] note. *)

val sarif :
  Format.formatter -> graph:Graph.t -> source:string -> Lint.report -> unit
(** A complete SARIF 2.1.0 log: one run, the full rule registry under
    [tool.driver.rules], one [result] per diagnostic with logical
    locations for nodes/channels, severities mapped to
    error/warning/note. *)
