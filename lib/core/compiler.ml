open Fstream_graph
open Fstream_ladder

type algorithm = Propagation | Non_propagation | Relay_propagation

type backend = Exact | Lp | Auto

type route =
  | Cs4_route of Cs4.t
  | General_route of { cycles : int }
  | Lp_route of { components : int; rows : int }
  | Min_route of { exact : route; lp : route }

type fused = {
  fusion : Fusion.t;
  fused_intervals : Interval.t array;
}

type plan = {
  algorithm : algorithm;
  intervals : Interval.t array;
  route : route;
  fused : fused option;
}

type error =
  | Not_a_dag
  | Disconnected
  | Not_two_terminal
  | Non_cs4_rejected of Cs4.failure
  | Cycle_budget_exceeded of int

let pp_error ppf = function
  | Not_a_dag -> Format.pp_print_string ppf "the topology has a directed cycle"
  | Disconnected -> Format.pp_print_string ppf "the topology is not connected"
  | Not_two_terminal ->
    Format.pp_print_string ppf
      "not a two-terminal DAG (need exactly one source, one sink, every node \
       on a source-to-sink path)"
  | Non_cs4_rejected failure ->
    Format.fprintf ppf "%a, and the general fallback is disabled"
      Cs4.pp_failure failure
  | Cycle_budget_exceeded budget ->
    Format.fprintf ppf
      "cycle enumeration exceeded the budget of %d simple cycles" budget

let error_to_string e = Format.asprintf "%a" pp_error e

let rec pp_route ppf = function
  | Cs4_route cls ->
    let sp, ladders =
      List.fold_left
        (fun (sp, la) (_, _, b) ->
          match b with
          | Cs4.Sp_block _ -> (sp + 1, la)
          | Cs4.Ladder_block _ -> (sp, la + 1))
        (0, 0) cls.Cs4.blocks
    in
    Format.fprintf ppf "CS4 (%d SP block%s, %d ladder%s)" sp
      (if sp = 1 then "" else "s")
      ladders
      (if ladders = 1 then "" else "s")
  | General_route { cycles } ->
    Format.fprintf ppf "general DAG fallback (%d cycles enumerated)" cycles
  | Lp_route { components; rows } ->
    Format.fprintf ppf
      "LP backend (%d cyclic component%s, %d simplex rows)" components
      (if components = 1 then "" else "s")
      rows
  | Min_route { exact; lp } ->
    Format.fprintf ppf "edge-wise min of %a and %a" pp_route exact pp_route lp

let run_cs4 algorithm g (cls : Cs4.t) =
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  List.iter
    (fun (_, _, b) ->
      match (b, algorithm) with
      | Cs4.Sp_block tree, Propagation -> Sp_prop.update ivals tree
      | Cs4.Sp_block tree, Non_propagation -> Sp_nonprop.update ivals tree
      | Cs4.Sp_block tree, Relay_propagation ->
        Sp_nonprop.update_relay ivals tree
      | Cs4.Ladder_block lad, Propagation -> Ladder_prop.update ivals lad
      | Cs4.Ladder_block lad, Non_propagation -> Ladder_nonprop.update ivals lad
      | Cs4.Ladder_block lad, Relay_propagation ->
        Ladder_nonprop.update_relay ivals lad)
    cls.Cs4.blocks;
  ivals

let run_general algorithm ?max_cycles g =
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  let cycles = Cycles.enumerate ?max_cycles g in
  let fold =
    match algorithm with
    | Propagation -> General.update_propagation
    | Non_propagation -> General.update_non_propagation
    | Relay_propagation -> General.update_relay_propagation
  in
  List.iter (fold ivals) cycles;
  {
    algorithm;
    intervals = ivals;
    route = General_route { cycles = List.length cycles };
    fused = None;
  }

(* The LP table bounds the run sums themselves, so one table serves all
   three avoidance algorithms; [algorithm] is recorded for the
   threshold-derivation step downstream. *)
let run_lp algorithm g =
  let intervals, (stats : Lp.stats) = Lp.intervals g in
  {
    algorithm;
    intervals;
    route = Lp_route { components = stats.components; rows = stats.rows };
    fused = None;
  }

(* Safety is downward-closed in the interval table (smaller intervals
   send dummies sooner), so the edge-wise minimum of two safe tables is
   safe — the sound way to combine the exact and LP tables when the
   Auto backend can afford both. Neither table dominates the other
   (bench §LP1 measures tightness ratios on both sides of 1), so the
   min is the one table no single backend run can contradict. *)
let min_combine exact_plan lp_plan =
  {
    algorithm = exact_plan.algorithm;
    intervals =
      Array.mapi
        (fun i v -> Interval.min v lp_plan.intervals.(i))
        exact_plan.intervals;
    route = Min_route { exact = exact_plan.route; lp = lp_plan.route };
    fused = None;
  }

module Options = struct
  type t = {
    allow_general : bool;
    max_cycles : int;
    backend : backend;
    fuse : bool;
    pin : (Graph.node -> bool) option;
    filter_class : (Graph.node -> int) option;
  }

  let default =
    {
      allow_general = true;
      max_cycles = 10_000_000;
      backend = Exact;
      fuse = false;
      pin = None;
      filter_class = None;
    }
end

let compile ?(options = Options.default) algorithm g =
  let attach_fusion p =
    if not options.Options.fuse then p
    else
      let fusion =
        Fusion.fuse ?pin:options.Options.pin
          ?filter_class:options.Options.filter_class g
      in
      let fused_intervals = Fusion.derive_intervals fusion p.intervals in
      { p with fused = Some { fusion; fused_intervals } }
  in
  if not (Topo.is_dag g) then Error Not_a_dag
  else if not (Topo.connected g) then Error Disconnected
  else
    match options.Options.backend with
    | Lp -> Ok (attach_fusion (run_lp algorithm g))
    | (Exact | Auto) as backend -> (
      match Cs4.classify g with
      | Ok cls ->
        let exact_plan =
          {
            algorithm;
            intervals = run_cs4 algorithm g cls;
            route = Cs4_route cls;
            fused = None;
          }
        in
        Ok
          (attach_fusion
             (match backend with
             | Auto -> min_combine exact_plan (run_lp algorithm g)
             | Exact | Lp -> exact_plan))
      | Error failure -> (
        match backend with
        | Auto when not options.Options.allow_general ->
          (* exact would reject outright; the LP accepts any DAG *)
          Ok (attach_fusion (run_lp algorithm g))
        | Auto -> (
          try
            Ok
              (attach_fusion
                 (min_combine
                    (run_general algorithm
                       ~max_cycles:options.Options.max_cycles g)
                    (run_lp algorithm g)))
          with Failure _ ->
            (* the budget the exact route gives up at is exactly where
               the polynomial backend takes over *)
            Ok (attach_fusion (run_lp algorithm g)))
        | Exact | Lp ->
          if options.Options.allow_general then
            try
              Ok
                (attach_fusion
                   (run_general algorithm
                      ~max_cycles:options.Options.max_cycles g))
            with Failure _ ->
              Error (Cycle_budget_exceeded options.Options.max_cycles)
          else
            Error
              (match failure with
              | Cs4.Not_two_terminal -> Not_two_terminal
              | Cs4.Bad_block _ -> Non_cs4_rejected failure)))

let send_thresholds g intervals =
  Thresholds.of_array g (Array.map Interval.threshold intervals)

let sdf_thresholds g =
  Thresholds.of_array g (Array.make (Graph.num_edges g) (Some 1))

(* ---------------- incremental recompilation ----------------------- *)

module Sp_tree = Fstream_spdag.Sp_tree

type recompile_stats = {
  spliced_edges : int;
  recomputed_edges : int;
  lp_stats : Lp.resolve_stats option;
}

(* The exact-route residue of one epoch: the interned classification
   (so the next epoch's trees share untouched subtrees physically), the
   exact table of this epoch (what clean blocks splice and stable-id
   pre-copies read), and the memo recorded while computing it. The memo
   is strictly per-epoch — see [Sp_incremental]. *)
type exact_snap = {
  scls : Cs4.t;
  stable : Interval.t array;
  smemo : Sp_incremental.memo;
}

type snapshot = {
  sfp : int;
  salgo : algorithm;
  sbackend : backend;
  sexact : exact_snap option;
  slp : Lp.state option;
  splan : plan;
}

type cache = {
  builder : Sp_tree.Builder.t;
  clock : Mutex.t;
  mutable snap : snapshot option;
}

let cache_create () =
  {
    builder = Sp_tree.Builder.create ();
    clock = Mutex.create ();
    snap = None;
  }

let cache_plan cache =
  Mutex.lock cache.clock;
  let p = Option.map (fun s -> s.splan) cache.snap in
  Mutex.unlock cache.clock;
  p

let algo_of = function
  | Propagation -> Sp_incremental.Prop
  | Non_propagation -> Sp_incremental.Nonprop
  | Relay_propagation -> Sp_incremental.Relay

let block_edges = function
  | Cs4.Sp_block t -> Sp_tree.edges t
  | Cs4.Ladder_block l -> Ladder.edges l

let intern_cls builder (cls : Cs4.t) =
  {
    cls with
    Cs4.blocks =
      List.map
        (fun (s, d, b) ->
          match b with
          | Cs4.Sp_block t ->
            (s, d, Cs4.Sp_block (Sp_tree.Builder.intern builder t))
          | Cs4.Ladder_block _ -> (s, d, b))
        cls.Cs4.blocks;
  }

(* The incremental CS4 table. Per serial block of the new
   classification, cheapest sound route first:

   - {e clean} (every edge non-dirty with a surviving origin, and the
     origin set is exactly one previous block's edge set): the block's
     subgraph is the previous block's up to id translation, and block
     values are block-local, so the previous values splice across —
     no interval arithmetic at all;
   - dirty SP block with {e stable ids} (every surviving base edge
     kept its id): pre-copy the block's surviving values at their
     identical positions, then run the memoized update — subtrees
     physically shared with the previous tree and reached under an
     unchanged context skip wholesale. Stability matters: under
     shifted ids a renumbered edge's leaf record can coincide with a
     different previous edge's record (parallel twins), and a memo hit
     would then vouch for array positions the pre-copy never filled;
   - dirty SP block with shifted ids: memoized update against an empty
     previous memo — a full recompute of the block that still records
     this epoch's memo for the next one;
   - dirty ladder block: the classic ladder sweep (the fresh table
     starts at [Inf], exactly the state the sweep expects). *)
let run_cs4_incremental builder algorithm g (cls : Cs4.t) ~prev =
  let cls = intern_cls builder cls in
  let n = Graph.num_edges g in
  let ivals = Array.make n Interval.inf in
  let next = Sp_incremental.memo_create () in
  let empty_memo = Sp_incremental.memo_create () in
  let spliced = ref 0 and recomputed = ref 0 in
  let origin, is_dirty, old_vals, old_blocks, ids_stable, prev_memo =
    match prev with
    | None ->
      ( (fun _ -> None),
        (fun _ -> true),
        [||],
        Hashtbl.create 1,
        false,
        empty_memo )
    | Some ((delta : Edit.delta), (pe : exact_snap)) ->
      let rev = Hashtbl.create 64 in
      Array.iteri
        (fun o -> function
          | Some nid -> Hashtbl.replace rev nid o
          | None -> ())
        delta.Edit.edge_map;
      let old_blocks = Hashtbl.create 16 in
      List.iter
        (fun (_, _, b) ->
          let ids =
            List.map (fun (e : Graph.edge) -> e.id) (block_edges b)
            |> List.sort Stdlib.compare
          in
          Hashtbl.replace old_blocks ids ())
        pe.scls.Cs4.blocks;
      (* stable = every base edge survives at its own id. This is
         deliberately stricter than "no survivor moved": a removal (or
         an in-place Add_stage replacement) makes it possible for a
         later op to recreate a record the previous epoch's memo still
         has entries for, and a memo hit would then vouch for a
         position the pre-copy below never filled. With all base ids
         intact, appended edges have ids the previous epoch never
         used, so their records cannot alias any previous-epoch memo
         entry. *)
      let stable = ref true in
      Array.iteri
        (fun o -> function
          | Some nid when nid = o -> ()
          | _ -> stable := false)
        delta.Edit.edge_map;
      ( Hashtbl.find_opt rev,
        (fun e -> delta.Edit.dirty.(e)),
        pe.stable,
        old_blocks,
        !stable,
        pe.smemo )
  in
  (* the record at a stable id is unchanged iff its capacity is (under
     stable ids an in-place dirty edge can only come from [Resize] —
     the replacing ops break stability — so endpoints never moved) *)
  let unchanged_record =
    match prev with
    | None -> fun _ -> false
    | Some ((delta : Edit.delta), _) ->
      let base = delta.Edit.base in
      fun (e : Graph.edge) ->
        e.id < Graph.num_edges base && (Graph.edge base e.id).cap = e.cap
  in
  List.iter
    (fun (_, _, b) ->
      let edges = block_edges b in
      let nedges = List.length edges in
      let clean =
        prev <> None
        && List.for_all
             (fun (e : Graph.edge) ->
               (not (is_dirty e.id)) && origin e.id <> None)
             edges
        &&
        let ids =
          List.filter_map (fun (e : Graph.edge) -> origin e.id) edges
          |> List.sort Stdlib.compare
        in
        Hashtbl.mem old_blocks ids
      in
      if clean then begin
        List.iter
          (fun (e : Graph.edge) ->
            ivals.(e.id) <- old_vals.(Option.get (origin e.id)))
          edges;
        spliced := !spliced + nedges
      end
      else
        match b with
        | Cs4.Sp_block tree ->
          let prev_m = if ids_stable then prev_memo else empty_memo in
          (* pre-copy every survivor whose record is unchanged — not
             merely every non-dirty survivor: a [Resize] back to the
             current capacity is marked dirty by the edit layer yet
             leaves the record (and so the hash-consed leaf, and so any
             memo hit over it) identical, and a skipped subtree vouches
             for exactly the unchanged-record positions beneath it *)
          if ids_stable then
            List.iter
              (fun (e : Graph.edge) ->
                if
                  e.id < Array.length old_vals
                  && origin e.id = Some e.id
                  && unchanged_record e
                then ivals.(e.id) <- old_vals.(e.id))
              edges;
          let r, s =
            Sp_incremental.update (algo_of algorithm) ~prev:prev_m ~next
              ivals tree
          in
          recomputed := !recomputed + r;
          spliced := !spliced + s
        | Cs4.Ladder_block lad ->
          (match algorithm with
          | Propagation -> Ladder_prop.update ivals lad
          | Non_propagation -> Ladder_nonprop.update ivals lad
          | Relay_propagation -> Ladder_nonprop.update_relay ivals lad);
          recomputed := !recomputed + nedges)
    cls.Cs4.blocks;
  (ivals, cls, next, !spliced, !recomputed)

(* Every edge and node kept its own id: the script only changed
   capacities, so the edited graph's topology — and therefore its
   classification — is the base graph's. *)
let structure_preserving (d : Edit.delta) g =
  let ident m =
    let ok = ref true in
    Array.iteri
      (fun i -> function Some j when j = i -> () | _ -> ok := false)
      m;
    !ok
  in
  Array.length d.Edit.edge_map = Graph.num_edges g
  && Array.length d.Edit.node_map = Graph.num_nodes g
  && ident d.Edit.edge_map
  && ident d.Edit.node_map

(* The structure-preserving fast path: reuse the previous epoch's
   decomposition wholesale instead of re-classifying the graph —
   untouched blocks splice their values, blocks containing a resized
   edge are [refresh]ed (leaf substitution through the hash-consing
   builder, so subtrees with unchanged records keep their uid and the
   memo still hits) and recomputed. This is what makes a single-edge
   reconfigure sublinear in the graph size: no recognition pass, no
   per-block origin bookkeeping, work proportional to the edited block
   plus one table copy. *)
let run_cs4_fast builder algorithm g ~(delta : Edit.delta) ~(pe : exact_snap) =
  let n = Graph.num_edges g in
  let ivals = Array.make n Interval.inf in
  let next = Sp_incremental.memo_create () in
  let spliced = ref 0 and recomputed = ref 0 in
  let base = delta.Edit.base in
  let blocks =
    List.map
      (fun (bs, bt, b) ->
        let edges = block_edges b in
        if
          List.for_all
            (fun (e : Graph.edge) -> not delta.Edit.dirty.(e.id))
            edges
        then begin
          List.iter
            (fun (e : Graph.edge) -> ivals.(e.id) <- pe.stable.(e.id))
            edges;
          spliced := !spliced + List.length edges;
          (bs, bt, b)
        end
        else
          match b with
          | Cs4.Sp_block tree ->
            let tree = Sp_tree.Builder.refresh builder g tree in
            (* unchanged records pre-copy, exactly as in the slow path:
               a memo hit vouches for the positions beneath it *)
            Sp_tree.iter_edges tree (fun e ->
                if (Graph.edge base e.id).cap = e.cap then
                  ivals.(e.id) <- pe.stable.(e.id));
            let r, s =
              Sp_incremental.update (algo_of algorithm) ~prev:pe.smemo ~next
                ivals tree
            in
            recomputed := !recomputed + r;
            spliced := !spliced + s;
            (bs, bt, Cs4.Sp_block tree)
          | Cs4.Ladder_block lad ->
            let lad = Ladder.refresh builder g lad in
            (match algorithm with
            | Propagation -> Ladder_prop.update ivals lad
            | Non_propagation -> Ladder_nonprop.update ivals lad
            | Relay_propagation -> Ladder_nonprop.update_relay ivals lad);
            recomputed := !recomputed + List.length edges;
            (bs, bt, Cs4.Ladder_block lad))
      pe.scls.Cs4.blocks
  in
  let cls = { pe.scls with Cs4.blocks } in
  (ivals, cls, next, !spliced, !recomputed)

(* One epoch's compile through the cache; caller holds [clock]. *)
let compile_locked cache options algorithm ~(delta : Edit.delta option) g =
  let fp = Thresholds.graph_fingerprint g in
  let backend = options.Options.backend in
  (* the previous epoch is usable only when it describes exactly the
     graph the edit script was applied to, under the same algorithm
     and backend — anything else is a fresh compile through the same
     builder (subtree sharing still helps, value reuse does not) *)
  let prev =
    match (delta, cache.snap) with
    | Some d, Some snap
      when snap.sfp = Thresholds.graph_fingerprint d.Edit.base
           && snap.salgo = algorithm && snap.sbackend = backend ->
      Some (d, snap)
    | _ -> None
  in
  let prev_exact =
    Option.bind prev (fun (d, s) ->
        Option.map (fun pe -> (d, pe)) s.sexact)
  in
  let run_lp_inc () =
    let warm = Option.bind prev (fun (_, s) -> s.slp) in
    let edge_map, node_map, dirty =
      match prev with
      | Some (d, _) ->
        (Some d.Edit.edge_map, Some d.Edit.node_map, Some d.Edit.dirty)
      | None -> (None, None, None)
    in
    let intervals, st, state =
      Lp.resolve ?warm ?edge_map ?node_map ?dirty g
    in
    ( {
        algorithm;
        intervals;
        route =
          Lp_route { components = st.Lp.rcomponents; rows = st.Lp.rrows };
        fused = None;
      },
      st,
      state )
  in
  let store sexact slp plan =
    cache.snap <-
      Some { sfp = fp; salgo = algorithm; sbackend = backend; sexact; slp;
             splan = plan }
  in
  (* a structure-preserving edit of a previously classified graph
     cannot change DAG-ness, connectivity or the classification: skip
     all three and reuse the previous decomposition *)
  let fast_prev =
    match prev_exact with
    | Some (d, _) when structure_preserving d g -> prev_exact
    | _ -> None
  in
  if Option.is_none fast_prev && not (Topo.is_dag g) then Error Not_a_dag
  else if Option.is_none fast_prev && not (Topo.connected g) then
    Error Disconnected
  else
    match backend with
    | Lp ->
      let plan, st, state = run_lp_inc () in
      store None (Some state) plan;
      Ok (plan, { spliced_edges = 0; recomputed_edges = 0;
                  lp_stats = Some st })
    | (Exact | Auto) as backend -> (
      let finish (ivals, cls, memo, spliced_edges, recomputed_edges) =
        let exact_plan =
          { algorithm; intervals = ivals; route = Cs4_route cls;
            fused = None }
        in
        let pe = { scls = cls; stable = ivals; smemo = memo } in
        match backend with
        | Auto ->
          let lp_plan, st, state = run_lp_inc () in
          let plan = min_combine exact_plan lp_plan in
          store (Some pe) (Some state) plan;
          Ok (plan, { spliced_edges; recomputed_edges; lp_stats = Some st })
        | Exact | Lp ->
          store (Some pe) None exact_plan;
          Ok (exact_plan,
              { spliced_edges; recomputed_edges; lp_stats = None })
      in
      match fast_prev with
      | Some (d, pe) ->
        finish (run_cs4_fast cache.builder algorithm g ~delta:d ~pe)
      | None -> (
      match Cs4.classify g with
      | Ok cls ->
        finish
          (run_cs4_incremental cache.builder algorithm g cls
             ~prev:prev_exact)
      | Error failure -> (
        match backend with
        | Auto when not options.Options.allow_general ->
          let plan, st, state = run_lp_inc () in
          store None (Some state) plan;
          Ok (plan, { spliced_edges = 0; recomputed_edges = 0;
                      lp_stats = Some st })
        | Auto -> (
          match
            try
              Some
                (run_general algorithm
                   ~max_cycles:options.Options.max_cycles g)
            with Failure _ -> None
          with
          | Some general_plan ->
            let lp_plan, st, state = run_lp_inc () in
            let plan = min_combine general_plan lp_plan in
            store None (Some state) plan;
            Ok (plan,
                { spliced_edges = 0;
                  recomputed_edges = Graph.num_edges g;
                  lp_stats = Some st })
          | None ->
            let plan, st, state = run_lp_inc () in
            store None (Some state) plan;
            Ok (plan, { spliced_edges = 0; recomputed_edges = 0;
                        lp_stats = Some st }))
        | Exact | Lp ->
          if options.Options.allow_general then
            try
              let plan =
                run_general algorithm ~max_cycles:options.Options.max_cycles
                  g
              in
              store None None plan;
              Ok (plan,
                  { spliced_edges = 0;
                    recomputed_edges = Graph.num_edges g;
                    lp_stats = None })
            with Failure _ ->
              Error (Cycle_budget_exceeded options.Options.max_cycles)
          else
            Error
              (match failure with
              | Cs4.Not_two_terminal -> Not_two_terminal
              | Cs4.Bad_block _ -> Non_cs4_rejected failure))))

let with_clock cache f =
  Mutex.lock cache.clock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache.clock) f

let compile_cached ?(options = Options.default) cache algorithm g =
  with_clock cache (fun () ->
      compile_locked cache options algorithm ~delta:None g)

let recompile ?(options = Options.default) cache algorithm
    (delta : Edit.delta) =
  with_clock cache (fun () ->
      compile_locked cache options algorithm ~delta:(Some delta)
        delta.Edit.graph)

let propagation_thresholds g intervals =
  let on_cycle = Array.make (Graph.num_edges g) false in
  List.iter
    (fun comp ->
      match comp with
      | [] | [ _ ] -> ()
      | edges ->
        List.iter (fun (e : Graph.edge) -> on_cycle.(e.id) <- true) edges)
    (Articulation.biconnected_components g);
  Thresholds.of_array g
    (Array.mapi
       (fun i v ->
         match Interval.threshold v with
         | Some k -> Some k
         | None -> if on_cycle.(i) then Some 1 else None)
       intervals)
