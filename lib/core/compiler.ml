open Fstream_graph
open Fstream_ladder

type algorithm = Propagation | Non_propagation | Relay_propagation

type backend = Exact | Lp | Auto

type route =
  | Cs4_route of Cs4.t
  | General_route of { cycles : int }
  | Lp_route of { components : int; rows : int }

type fused = {
  fusion : Fusion.t;
  fused_intervals : Interval.t array;
}

type plan = {
  algorithm : algorithm;
  intervals : Interval.t array;
  route : route;
  fused : fused option;
}

type error =
  | Not_a_dag
  | Disconnected
  | Not_two_terminal
  | Non_cs4_rejected of Cs4.failure
  | Cycle_budget_exceeded of int

let pp_error ppf = function
  | Not_a_dag -> Format.pp_print_string ppf "the topology has a directed cycle"
  | Disconnected -> Format.pp_print_string ppf "the topology is not connected"
  | Not_two_terminal ->
    Format.pp_print_string ppf
      "not a two-terminal DAG (need exactly one source, one sink, every node \
       on a source-to-sink path)"
  | Non_cs4_rejected failure ->
    Format.fprintf ppf "%a, and the general fallback is disabled"
      Cs4.pp_failure failure
  | Cycle_budget_exceeded budget ->
    Format.fprintf ppf
      "cycle enumeration exceeded the budget of %d simple cycles" budget

let error_to_string e = Format.asprintf "%a" pp_error e

let pp_route ppf = function
  | Cs4_route cls ->
    let sp, ladders =
      List.fold_left
        (fun (sp, la) (_, _, b) ->
          match b with
          | Cs4.Sp_block _ -> (sp + 1, la)
          | Cs4.Ladder_block _ -> (sp, la + 1))
        (0, 0) cls.Cs4.blocks
    in
    Format.fprintf ppf "CS4 (%d SP block%s, %d ladder%s)" sp
      (if sp = 1 then "" else "s")
      ladders
      (if ladders = 1 then "" else "s")
  | General_route { cycles } ->
    Format.fprintf ppf "general DAG fallback (%d cycles enumerated)" cycles
  | Lp_route { components; rows } ->
    Format.fprintf ppf
      "LP backend (%d cyclic component%s, %d simplex rows)" components
      (if components = 1 then "" else "s")
      rows

let run_cs4 algorithm g (cls : Cs4.t) =
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  List.iter
    (fun (_, _, b) ->
      match (b, algorithm) with
      | Cs4.Sp_block tree, Propagation -> Sp_prop.update ivals tree
      | Cs4.Sp_block tree, Non_propagation -> Sp_nonprop.update ivals tree
      | Cs4.Sp_block tree, Relay_propagation ->
        Sp_nonprop.update_relay ivals tree
      | Cs4.Ladder_block lad, Propagation -> Ladder_prop.update ivals lad
      | Cs4.Ladder_block lad, Non_propagation -> Ladder_nonprop.update ivals lad
      | Cs4.Ladder_block lad, Relay_propagation ->
        Ladder_nonprop.update_relay ivals lad)
    cls.Cs4.blocks;
  ivals

let run_general algorithm ?max_cycles g =
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  let cycles = Cycles.enumerate ?max_cycles g in
  let fold =
    match algorithm with
    | Propagation -> General.update_propagation
    | Non_propagation -> General.update_non_propagation
    | Relay_propagation -> General.update_relay_propagation
  in
  List.iter (fold ivals) cycles;
  {
    algorithm;
    intervals = ivals;
    route = General_route { cycles = List.length cycles };
    fused = None;
  }

(* The LP table bounds the run sums themselves, so one table serves all
   three avoidance algorithms; [algorithm] is recorded for the
   threshold-derivation step downstream. *)
let run_lp algorithm g =
  let intervals, (stats : Lp.stats) = Lp.intervals g in
  {
    algorithm;
    intervals;
    route = Lp_route { components = stats.components; rows = stats.rows };
    fused = None;
  }

module Options = struct
  type t = {
    allow_general : bool;
    max_cycles : int;
    backend : backend;
    fuse : bool;
    pin : (Graph.node -> bool) option;
    filter_class : (Graph.node -> int) option;
  }

  let default =
    {
      allow_general = true;
      max_cycles = 10_000_000;
      backend = Exact;
      fuse = false;
      pin = None;
      filter_class = None;
    }
end

let compile ?(options = Options.default) algorithm g =
  let attach_fusion p =
    if not options.Options.fuse then p
    else
      let fusion =
        Fusion.fuse ?pin:options.Options.pin
          ?filter_class:options.Options.filter_class g
      in
      let fused_intervals = Fusion.derive_intervals fusion p.intervals in
      { p with fused = Some { fusion; fused_intervals } }
  in
  if not (Topo.is_dag g) then Error Not_a_dag
  else if not (Topo.connected g) then Error Disconnected
  else
    match options.Options.backend with
    | Lp -> Ok (attach_fusion (run_lp algorithm g))
    | (Exact | Auto) as backend -> (
      match Cs4.classify g with
      | Ok cls ->
        Ok
          (attach_fusion
             {
               algorithm;
               intervals = run_cs4 algorithm g cls;
               route = Cs4_route cls;
               fused = None;
             })
      | Error failure -> (
        match backend with
        | Auto when not options.Options.allow_general ->
          (* exact would reject outright; the LP accepts any DAG *)
          Ok (attach_fusion (run_lp algorithm g))
        | Auto -> (
          try
            Ok
              (attach_fusion
                 (run_general algorithm ~max_cycles:options.Options.max_cycles
                    g))
          with Failure _ ->
            (* the budget the exact route gives up at is exactly where
               the polynomial backend takes over *)
            Ok (attach_fusion (run_lp algorithm g)))
        | Exact | Lp ->
          if options.Options.allow_general then
            try
              Ok
                (attach_fusion
                   (run_general algorithm
                      ~max_cycles:options.Options.max_cycles g))
            with Failure _ ->
              Error (Cycle_budget_exceeded options.Options.max_cycles)
          else
            Error
              (match failure with
              | Cs4.Not_two_terminal -> Not_two_terminal
              | Cs4.Bad_block _ -> Non_cs4_rejected failure)))

let send_thresholds g intervals =
  Thresholds.of_array g (Array.map Interval.threshold intervals)

let sdf_thresholds g =
  Thresholds.of_array g (Array.make (Graph.num_edges g) (Some 1))

let propagation_thresholds g intervals =
  let on_cycle = Array.make (Graph.num_edges g) false in
  List.iter
    (fun comp ->
      match comp with
      | [] | [ _ ] -> ()
      | edges ->
        List.iter (fun (e : Graph.edge) -> on_cycle.(e.id) <- true) edges)
    (Articulation.biconnected_components g);
  Thresholds.of_array g
    (Array.mapi
       (fun i v ->
         match Interval.threshold v with
         | Some k -> Some k
         | None -> if on_cycle.(i) then Some 1 else None)
       intervals)
