(** The "compiler pass" the paper envisions: given a streaming DAG with
    channel buffer capacities, decide how its dummy intervals can be
    computed and compute them.

    The graph is classified with {!Fstream_ladder.Cs4.classify}; CS4
    graphs dispatch per serial block to the polynomial algorithms
    (SETIVALS / SP Non-Propagation on SP blocks, the §VI recurrences /
    family sweep on ladder blocks). Non-CS4 DAGs fall back — when
    permitted — to the exponential general-DAG baseline, which is the
    situation the paper tells programmers to redesign their topology to
    avoid. *)

open Fstream_graph
open Fstream_ladder

type algorithm =
  | Propagation
      (** the paper's Propagation intervals: finite only on edges
          leaving a cycle source (Fig. 3: "other edges are infinite").
          Use for reproducing the paper's tables; for driving the
          runtime wrapper soundly under arbitrary filtering, use
          {!Relay_propagation} — see DESIGN.md, "Deviations". *)
  | Non_propagation
  | Relay_propagation
      (** sound Propagation-wrapper thresholds: every cycle edge is
          bounded by its opposing run's buffer length (no hop
          division) *)

(** Which interval machinery computes the table. *)
type backend =
  | Exact  (** the paper's constructions: CS4 dispatch, exponential
               general fallback — today's behaviour, and the default *)
  | Lp
      (** the polynomial {!Lp} backend on every topology: sufficient,
          conservative intervals from one simplex program per
          biconnected component; accepts any connected DAG (no
          two-terminal requirement, no cycle enumeration) *)
  | Auto
      (** exact wherever it is polynomial or affordable — CS4 graphs,
          then the general fallback under [max_cycles] — and the LP
          where the exact route would give up: a blown cycle budget or
          (with [allow_general = false]) a non-CS4 topology *)

type route =
  | Cs4_route of Cs4.t  (** polynomial path, with the decomposition *)
  | General_route of { cycles : int }
      (** exponential fallback; [cycles] is how many undirected simple
          cycles were enumerated *)
  | Lp_route of { components : int; rows : int }
      (** polynomial LP backend; [components] biconnected components
          carried cycles, [rows] total simplex rows solved *)
  | Min_route of { exact : route; lp : route }
      (** the {!Auto} backend when both tables were affordable: the
          plan's intervals are the edge-wise minimum of the exact and
          LP tables. Safety is downward-closed in the table (smaller
          intervals send dummies sooner; threshold 1 everywhere is the
          trivially safe SDF strawman), so the min of two safe tables
          is safe — and since neither table dominates the other
          (bench §LP1), the min is the one table consistent with
          both certificates. *)

type fused = {
  fusion : Fusion.t;
  fused_intervals : Interval.t array;
      (** indexed by fused edge id; derived from the original table via
          {!Fusion.derive_intervals} — provably (and property-checked)
          equal to recompiling the same algorithm on [fusion.graph] *)
}

type plan = {
  algorithm : algorithm;
  intervals : Interval.t array;  (** indexed by edge id *)
  route : route;
  fused : fused option;
      (** present when the plan was compiled with [~fuse:true] *)
}

type error =
  | Not_a_dag  (** the topology has a directed cycle *)
  | Disconnected  (** the underlying undirected graph is not connected *)
  | Not_two_terminal
      (** CS4 classification was required and the graph is not a
          two-terminal DAG *)
  | Non_cs4_rejected of Cs4.failure
      (** non-CS4 and [~allow_general:false]: the compiler rejects the
          topology, as the paper advises, with the offending block *)
  | Cycle_budget_exceeded of int
      (** the general fallback gave up after enumerating this many
          undirected simple cycles *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** Compilation options. Build a value by record update on
    {!Options.default}:
    [{ Compiler.Options.default with fuse = true }]. *)
module Options : sig
  type t = {
    allow_general : bool;
        (** permit the exponential fallback on non-CS4 DAGs (default
            [true]); with [false] such graphs are [Non_cs4_rejected],
            mirroring a compiler that rejects unsupported topologies *)
    max_cycles : int;
        (** bound on the general fallback's undirected-simple-cycle
            enumeration (default 10 million); exceeding it yields
            [Cycle_budget_exceeded] under [backend = Exact] and hands
            over to the LP under [backend = Auto] *)
    backend : backend;
        (** which interval machinery runs (default {!Exact}, the
            historical behaviour); see {!backend} *)
    fuse : bool;
        (** additionally run the {!Fusion} pass on any successfully
            compiled topology — including the general-fallback route —
            and attach the partition plus the derived fused interval
            table as [plan.fused] (default [false]) *)
    pin : (Graph.node -> bool) option;
        (** only meaningful with [fuse = true]: pinned nodes stay
            unfused (forwarded to {!Fusion.fuse}) *)
    filter_class : (Graph.node -> int) option;
        (** only meaningful with [fuse = true]: chains never span a
            filter-behaviour-class change (forwarded to
            {!Fusion.fuse}) *)
  }

  val default : t
end

val compile :
  ?options:Options.t -> algorithm -> Graph.t -> (plan, error) result
(** Classify the topology and compute its interval table under
    [options] (default {!Options.default}). The general fallback only
    needs acyclicity and connectivity. Thresholds for a fused run must
    be built against [fusion.graph] and [fused_intervals]; the
    {!Thresholds.t} graph fingerprint then rejects any attempt to run a
    fused table on the original topology, and vice versa. *)

(** {2 Incremental recompilation}

    A {!cache} carries one tenant's compile residue from epoch to
    epoch: the hash-consing {!Fstream_spdag.Sp_tree.Builder} (so the
    decomposition trees of successive epochs share untouched subtrees
    physically), the previous epoch's exact table and per-epoch memo,
    and the previous LP solver state. {!recompile} consumes an
    {!Fstream_graph.Edit.delta} and recomputes only what the edit
    touched: serial blocks whose edges all survive unedited splice the
    previous values without any interval arithmetic; edited SP blocks
    with stable edge ids skip memoized subtrees reached under an
    unchanged context; cyclic LP components re-solve warm from the
    previous optimal basis ({!Lp.resolve}). The result is bit-for-bit
    the table a full recompile of the edited graph would produce on
    the exact route, and objective-equal on the LP route (the simplex
    optimum need not be vertex-unique) — both property-checked in
    [test/test_reconfigure.ml]. *)

type cache

val cache_create : unit -> cache
(** A fresh, empty compile cache. Thread-safe: all operations on one
    cache serialize on an internal lock. *)

val cache_plan : cache -> plan option
(** The most recent epoch's plan, if any compile succeeded. *)

type recompile_stats = {
  spliced_edges : int;
      (** exact-route edges whose values were copied from the previous
          epoch (clean-block splices plus memo-skipped subtrees) *)
  recomputed_edges : int;
      (** exact-route edges recomputed by interval arithmetic *)
  lp_stats : Lp.resolve_stats option;
      (** present when the LP participated ([Lp] or [Auto] backend) *)
}

val compile_cached :
  ?options:Options.t ->
  cache ->
  algorithm ->
  Graph.t ->
  (plan * recompile_stats, error) result
(** Compile fresh through the cache, recording the epoch residue that
    a later {!recompile} reuses. Equivalent to {!compile} on the same
    arguments except that [options.fuse] is ignored (reconfiguration
    serves unfused plans; fuse explicitly via {!compile}). *)

val recompile :
  ?options:Options.t ->
  cache ->
  algorithm ->
  Fstream_graph.Edit.delta ->
  (plan * recompile_stats, error) result
(** Compile [delta.graph] incrementally against the cache's previous
    epoch. Falls back to a fresh compile (still recording the new
    epoch) whenever the previous epoch is unusable — no prior compile,
    or it was for a different graph than [delta.base], algorithm, or
    backend. *)

val send_thresholds : Graph.t -> Interval.t array -> Thresholds.t
(** Integer gap thresholds for the runtime wrappers, bound to the graph
    they were computed for: an edge with interval [Inf] never needs
    dummies; a finite interval means a dummy is due once the channel
    has gone [threshold] sequence numbers without a message
    ({!Interval.threshold}). Use directly for the Non-Propagation
    wrapper; for the Propagation wrapper use
    {!propagation_thresholds}. *)

val sdf_thresholds : Graph.t -> Thresholds.t
(** The strawman the paper's introduction argues against: emulate
    filtering in a synchronous-dataflow setting by sending a message
    (data or null) on every channel for every sequence number —
    threshold 1 everywhere. Trivially deadlock-free; used by the
    bandwidth ablation (bench A1) to quantify what the computed
    intervals save. *)

val propagation_thresholds : Graph.t -> Interval.t array -> Thresholds.t
(** Runtime thresholds for the Propagation wrapper from a
    [Propagation] interval table. Edges with finite intervals (cycle
    sources) keep their budget; edges with interval [Inf] that lie on
    an undirected cycle get threshold 1 — a relay may not let a
    filtered input stall the stream, otherwise per-hop slack
    accumulates past the opposing buffer capacity (the "relay erosion"
    deviation discussed in DESIGN.md). Bridge edges get [None]. *)

val pp_route : Format.formatter -> route -> unit
