open Fstream_graph

type t = {
  original : Graph.t;
  graph : Graph.t;
  group_of : int array;
  members : int array array;
  edge_of : int array;
  orig_edge : int array;
}

let fuse ?(pin = fun _ -> false) ?filter_class g =
  let n = Graph.num_nodes g in
  let m = Graph.num_edges g in
  let bridge = Articulation.bridges g in
  let same_class u v =
    match filter_class with None -> true | Some f -> f u = f v
  in
  let fusable (e : Graph.edge) =
    bridge.(e.id)
    && Graph.out_degree g e.src = 1
    && Graph.in_degree g e.dst = 1
    && Graph.out_degree g e.dst > 0
    && (not (pin e.src))
    && (not (pin e.dst))
    && same_class e.src e.dst
  in
  (* Each node has at most one fusable in-edge (in-degree 1 at the dst)
     and one fusable out-edge (out-degree 1 at the src), so the fusable
     edges form disjoint simple chains; bridges lie on no cycle, so the
     chains terminate even on cyclic inputs. *)
  let next = Array.make n (-1) in
  let head = Array.make n true in
  let internal = Array.make m false in
  List.iter
    (fun (e : Graph.edge) ->
      if fusable e then begin
        internal.(e.id) <- true;
        next.(e.src) <- e.dst;
        head.(e.dst) <- false
      end)
    (Graph.edges g);
  let group_of = Array.make n (-1) in
  let members = ref [] in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if head.(v) then begin
      let gid = !count in
      incr count;
      let chain = ref [] in
      let u = ref v in
      let walking = ref true in
      while !walking do
        group_of.(!u) <- gid;
        chain := !u :: !chain;
        if next.(!u) >= 0 then u := next.(!u) else walking := false
      done;
      members := Array.of_list (List.rev !chain) :: !members
    end
  done;
  let members = Array.of_list (List.rev !members) in
  let edge_of = Array.make m (-1) in
  let fused_edges = ref [] in
  let orig = ref [] in
  let k = ref 0 in
  List.iter
    (fun (e : Graph.edge) ->
      if not internal.(e.id) then begin
        edge_of.(e.id) <- !k;
        incr k;
        orig := e.id :: !orig;
        fused_edges :=
          (group_of.(e.src), group_of.(e.dst), e.cap) :: !fused_edges
      end)
    (Graph.edges g);
  let graph =
    Graph.make ~nodes:(Array.length members) (List.rev !fused_edges)
  in
  {
    original = g;
    graph;
    group_of;
    members;
    edge_of;
    orig_edge = Array.of_list (List.rev !orig);
  }

let is_identity t = Graph.num_nodes t.graph = Graph.num_nodes t.original

let internal_edges t = Graph.num_edges t.original - Graph.num_edges t.graph

let derive_intervals t ivals =
  if Array.length ivals <> Graph.num_edges t.original then
    invalid_arg "Fusion.derive_intervals: table not indexed by original edges";
  Array.map (fun oe -> ivals.(oe)) t.orig_edge

let pp ppf t =
  Format.fprintf ppf "@[<v>%d nodes -> %d kernels, %d channels -> %d (%d collapsed)"
    (Graph.num_nodes t.original)
    (Graph.num_nodes t.graph)
    (Graph.num_edges t.original)
    (Graph.num_edges t.graph)
    (internal_edges t);
  Array.iteri
    (fun gid mem ->
      Format.fprintf ppf "@,  k%d = %s" gid
        (String.concat " -> "
           (List.map (fun v -> "n" ^ string_of_int v) (Array.to_list mem))))
    t.members;
  Format.fprintf ppf "@]"
