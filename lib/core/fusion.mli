(** Kernel fusion: partition a topology into compound kernels.

    The sharded pool schedules one task per node firing, so a long chain
    of cheap kernels pays per-message scheduling overhead on every hop
    (EXPERIMENTS.md §P1). Fusion collapses such chains into single
    compound nodes: the internal channels disappear (at runtime they
    become stack locals inside the compound kernel — no ring buffers, no
    per-edge dummy state), while boundary channels keep their original
    capacities and ids' relative order.

    {2 Critical boundaries}

    An edge [u -> v] is {e fusable} — collapsed into a chain — only when
    all of the following hold; every other edge is a {e critical
    boundary} and survives into the fused graph:

    - [u] has out-degree 1 and [v] has in-degree 1 (cuts at splitters,
      mergers, and multi-use nodes);
    - the edge is a bridge of the underlying undirected multigraph
      ({!Fstream_graph.Articulation.bridges}) — it lies on no undirected
      cycle. For an SP graph these are exactly the series-spine edges of
      the decomposition tree ({!Fstream_spdag.Sp_tree.series_spine});
    - [v] is not a sink: sinks are where the application observes the
      stream, and fusing a filtering chain into a sink would move the
      measurement point upstream of the chain's filters;
    - neither endpoint is user-pinned ([?pin]);
    - both endpoints have the same filter-behaviour class
      ([?filter_class]), so a fused kernel has one filtering story.

    {2 Why intervals are preserved}

    Deadlock-avoidance intervals (Theorems IV.1/IV.2) depend only on the
    undirected cycles of the topology: each cycle constrains the edges
    on it through its minimum buffering [L] and hop count [h]. A fusable
    edge is a bridge, so {e no} cycle passes through the interior of any
    fused chain. Contracting the chain therefore maps the cycles of the
    original graph one-to-one onto the cycles of the fused graph, with
    identical [L] (boundary capacities are kept) and identical hop
    counts over surviving edges. Hence the interval of every boundary
    edge is literally unchanged, and {!derive_intervals} — which maps
    the original plan's intervals through the edge correspondence — is
    equal to recompiling on the fused graph. Both facts are
    property-checked in [test/test_fusion.ml], and the end-to-end claim
    (fusion neither introduces nor masks reachable deadlocks) is checked
    two-directionally with {!Fstream_verify.Verify}.

    Dummy {e timing} does change: a compound node runs its gap check
    whenever its head fires, even on inputs the chain interior later
    filters, so dummies can originate earlier than the tail node would
    have sent them. Earlier dummies only relax downstream waits, so the
    conservative direction of the safety argument is unaffected. *)

open Fstream_graph

type t = private {
  original : Graph.t;
  graph : Graph.t;  (** the fused topology *)
  group_of : int array;  (** original node -> fused node *)
  members : int array array;
      (** fused node -> original members in chain order; singleton for
          unfused nodes *)
  edge_of : int array;
      (** original edge id -> fused edge id, or [-1] for internal
          (collapsed) edges *)
  orig_edge : int array;  (** fused edge id -> original edge id *)
}

val fuse :
  ?pin:(Graph.node -> bool) ->
  ?filter_class:(Graph.node -> int) ->
  Graph.t ->
  t
(** Maximal partition under the boundary rules above. Deterministic:
    fused node ids are assigned by scanning chain heads in original node
    order, fused edge ids preserve original relative order. [g] need not
    be a DAG: on a cyclic graph the bridge condition alone already
    guarantees chains terminate. *)

val is_identity : t -> bool
(** No edge was collapsed; the fused graph is the original graph
    (same node and edge numbering). *)

val internal_edges : t -> int
(** Number of collapsed channels, [num_edges original - num_edges graph]. *)

val derive_intervals : t -> Interval.t array -> Interval.t array
(** [derive_intervals t ivals] maps a per-original-edge interval table
    to the fused topology: boundary edges keep their interval, internal
    edges are dropped. Equal to recompiling the same algorithm on
    [t.graph] (see above).
    @raise Invalid_argument if [ivals] is not indexed by the original
    edges. *)

val pp : Format.formatter -> t -> unit
(** Human-readable partition: one line per compound kernel listing its
    member chain. *)
