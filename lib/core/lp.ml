open Fstream_graph
module R = Rational

(* ------------------------------------------------------------------ *)
(* Dense two-phase primal simplex over exact rationals.

   Bland's smallest-index rule everywhere (entering column and
   leaving-row ties), so cycling is impossible and termination needs
   no perturbation. The tableau is dense: the programs this module
   builds have a few hundred rows at the bench's largest sizes, where
   a revised/sparse implementation would be complexity without
   payoff. *)
module Simplex = struct
  type outcome =
    | Optimal of {
        objective : R.t;
        primal : R.t array;
        dual : R.t array;
      }
    | Unbounded
    | Infeasible of { farkas : R.t array }

  let maximize ~objective ~rows =
    let n = Array.length objective in
    let m = Array.length rows in
    Array.iter
      (fun (a, _) ->
        if Array.length a <> n then
          invalid_arg "Lp.Simplex.maximize: coefficient row length")
      rows;
    (* Rows with a negative right-hand side are negated (so the RHS is
       positive) and given an artificial variable; phase 1 drives the
       artificials to zero or proves the program empty. Columns:
       [0, n) structural, [n, n + m) slack, [n + m, ...) artificial. *)
    let negated = Array.map (fun (_, b) -> R.sign b < 0) rows in
    let nart = Array.fold_left (fun k v -> if v then k + 1 else k) 0 negated in
    let ncols = n + m + nart in
    let art_index = Array.make m (-1) in
    let next_art = ref (n + m) in
    Array.iteri
      (fun i v ->
        if v then begin
          art_index.(i) <- !next_art;
          incr next_art
        end)
      negated;
    let tab =
      Array.init m (fun i ->
          let a, b = rows.(i) in
          let row = Array.make (ncols + 1) R.zero in
          let s = if negated.(i) then R.minus_one else R.one in
          for j = 0 to n - 1 do
            row.(j) <- R.mul s a.(j)
          done;
          row.(n + i) <- s;
          if negated.(i) then row.(art_index.(i)) <- R.one;
          row.(ncols) <- R.mul s b;
          row)
    in
    let basis = Array.init m (fun i -> if negated.(i) then art_index.(i) else n + i) in
    let live = Array.make m true in
    (* the objective row holds reduced costs; its RHS slot holds -z so
       the ordinary row update maintains it *)
    let pivot obj ~pr ~pc =
      let prow = tab.(pr) in
      let d = prow.(pc) in
      for j = 0 to ncols do
        prow.(j) <- R.div prow.(j) d
      done;
      let elim row =
        let f = row.(pc) in
        if not (R.is_zero f) then
          for j = 0 to ncols do
            row.(j) <- R.sub row.(j) (R.mul f prow.(j))
          done
      in
      Array.iteri (fun i row -> if live.(i) && i <> pr then elim row) tab;
      elim obj;
      basis.(pr) <- pc
    in
    let run obj ~max_col =
      let rec loop () =
        let pc = ref (-1) in
        (try
           for j = 0 to max_col - 1 do
             if R.sign obj.(j) > 0 then begin
               pc := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !pc < 0 then `Optimal
        else begin
          let pc = !pc in
          let pr = ref (-1) in
          for i = 0 to m - 1 do
            if live.(i) && R.sign tab.(i).(pc) > 0 then
              if !pr < 0 then pr := i
              else begin
                let cur = R.div tab.(!pr).(ncols) tab.(!pr).(pc) in
                let cand = R.div tab.(i).(ncols) tab.(i).(pc) in
                let c = R.compare cand cur in
                if c < 0 || (c = 0 && basis.(i) < basis.(!pr)) then pr := i
              end
          done;
          if !pr < 0 then `Unbounded
          else begin
            pivot obj ~pr:!pr ~pc;
            loop ()
          end
        end
      in
      loop ()
    in
    let infeasible obj1 =
      (* Farkas multipliers from the phase-1 reduced costs: the
         multiplier of original row i sits on its initial basis
         column, adjusted for the row's sign flip. *)
      let farkas =
        Array.init m (fun i ->
            if negated.(i) then R.add R.one obj1.(art_index.(i))
            else R.neg obj1.(n + i))
      in
      Infeasible { farkas }
    in
    let phase1_verdict =
      if nart = 0 then `Feasible
      else begin
        let obj1 = Array.make (ncols + 1) R.zero in
        for j = n + m to ncols - 1 do
          obj1.(j) <- R.minus_one
        done;
        (* price out the basic artificials (cost -1 each) *)
        Array.iteri
          (fun i row ->
            if negated.(i) then
              for j = 0 to ncols do
                obj1.(j) <- R.add obj1.(j) row.(j)
              done)
          tab;
        match run obj1 ~max_col:ncols with
        | `Unbounded -> assert false (* phase-1 objective is <= 0 *)
        | `Optimal ->
          if R.sign obj1.(ncols) > 0 then `Infeasible (infeasible obj1)
          else begin
            (* drive leftover zero-level artificials out of the basis;
               an all-zero row (over real columns) is redundant *)
            for i = 0 to m - 1 do
              if live.(i) && basis.(i) >= n + m then begin
                let j = ref (-1) in
                (try
                   for c = 0 to n + m - 1 do
                     if R.sign tab.(i).(c) <> 0 then begin
                       j := c;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !j >= 0 then pivot obj1 ~pr:i ~pc:!j
                else live.(i) <- false
              end
            done;
            `Feasible
          end
      end
    in
    match phase1_verdict with
    | `Infeasible r -> r
    | `Feasible -> (
      let obj2 = Array.make (ncols + 1) R.zero in
      for j = 0 to n - 1 do
        obj2.(j) <- objective.(j)
      done;
      Array.iteri
        (fun i row ->
          if live.(i) && basis.(i) < n then begin
            let cb = objective.(basis.(i)) in
            if R.sign cb <> 0 then
              for j = 0 to ncols do
                obj2.(j) <- R.sub obj2.(j) (R.mul cb row.(j))
              done
          end)
        tab;
      match run obj2 ~max_col:(n + m) with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let primal = Array.make n R.zero in
        Array.iteri
          (fun i b -> if live.(i) && b < n then primal.(b) <- tab.(i).(ncols))
          basis;
        let dual =
          Array.init m (fun i ->
              if negated.(i) then obj2.(art_index.(i))
              else R.neg obj2.(n + i))
        in
        Optimal { objective = R.neg obj2.(ncols); primal; dual })

  (* Specialized solver for programs with every right-hand side
     non-negative (the interval LP): the slack basis is feasible, so
     there is never a phase 1. Cold solves replicate [maximize]'s
     phase-2 rules exactly (same Bland entering column, same ratio
     test with basis-index ties), so [Lp.intervals] keeps producing
     bit-identical tables through this path.

     A warm solve crash-loads a suggested basis (the previous optimum
     of a nearby program, columns translated by the caller), then
     repairs it: if the crash landed primal-feasible, plain primal
     simplex finishes; if it landed dual-feasible (the typical case
     after a capacity change — the old optimum's reduced costs still
     price out, only some right-hand sides went negative), dual simplex
     pivots the violated rows out. Both use Bland-style smallest-index
     ties, so termination is unconditional. Anything else — crash
     produced a basis that is neither — abandons the hint and re-solves
     cold; correctness never depends on the hint. *)
  let solve_nonneg ?hint ~objective ~rows () =
    let n = Array.length objective in
    let m = Array.length rows in
    let ncols = n + m in
    Array.iter
      (fun ((a : R.t array), b) ->
        if Array.length a <> n then
          invalid_arg "Lp.Simplex.solve_nonneg: coefficient row length";
        if R.sign b < 0 then
          invalid_arg "Lp.Simplex.solve_nonneg: negative right-hand side")
      rows;
    let pivots = ref 0 in
    let build () =
      let tab =
        Array.init m (fun i ->
            let a, b = rows.(i) in
            let row = Array.make (ncols + 1) R.zero in
            for j = 0 to n - 1 do
              row.(j) <- a.(j)
            done;
            row.(n + i) <- R.one;
            row.(ncols) <- b;
            row)
      in
      let basis = Array.init m (fun i -> n + i) in
      let obj = Array.make (ncols + 1) R.zero in
      for j = 0 to n - 1 do
        obj.(j) <- objective.(j)
      done;
      (tab, basis, obj)
    in
    let pivot tab basis obj ~pr ~pc =
      incr pivots;
      let prow = tab.(pr) in
      let d = prow.(pc) in
      for j = 0 to ncols do
        prow.(j) <- R.div prow.(j) d
      done;
      let elim row =
        let f = row.(pc) in
        if not (R.is_zero f) then
          for j = 0 to ncols do
            row.(j) <- R.sub row.(j) (R.mul f prow.(j))
          done
      in
      Array.iteri (fun i row -> if i <> pr then elim row) tab;
      elim obj;
      basis.(pr) <- pc
    in
    let primal tab basis obj =
      let rec loop () =
        let pc = ref (-1) in
        (try
           for j = 0 to ncols - 1 do
             if R.sign obj.(j) > 0 then begin
               pc := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !pc < 0 then `Optimal
        else begin
          let pc = !pc in
          let pr = ref (-1) in
          for i = 0 to m - 1 do
            if R.sign tab.(i).(pc) > 0 then
              if !pr < 0 then pr := i
              else begin
                let cur = R.div tab.(!pr).(ncols) tab.(!pr).(pc) in
                let cand = R.div tab.(i).(ncols) tab.(i).(pc) in
                let c = R.compare cand cur in
                if c < 0 || (c = 0 && basis.(i) < basis.(!pr)) then pr := i
              end
          done;
          if !pr < 0 then `Unbounded
          else begin
            pivot tab basis obj ~pr:!pr ~pc;
            loop ()
          end
        end
      in
      loop ()
    in
    let dual tab basis obj =
      (* Bland for the dual: leave the negative-rhs row whose basic
         variable has the smallest index; enter the column minimizing
         obj_j / a_rj over a_rj < 0 (both non-positive, so the ratio
         is >= 0), ties to the smallest column. *)
      let rec loop () =
        let pr = ref (-1) in
        for i = 0 to m - 1 do
          if R.sign tab.(i).(ncols) < 0 then
            if !pr < 0 || basis.(i) < basis.(!pr) then pr := i
        done;
        if !pr < 0 then `Feasible
        else begin
          let pr = !pr in
          let pc = ref (-1) and best = ref R.zero in
          for j = 0 to ncols - 1 do
            if R.sign tab.(pr).(j) < 0 then begin
              let ratio = R.div obj.(j) tab.(pr).(j) in
              if !pc < 0 || R.compare ratio !best < 0 then begin
                pc := j;
                best := ratio
              end
            end
          done;
          if !pc < 0 then `Stuck
          else begin
            pivot tab basis obj ~pr ~pc:!pc;
            loop ()
          end
        end
      in
      loop ()
    in
    let finish tab basis obj =
      match primal tab basis obj with
      | `Unbounded -> None
      | `Optimal ->
        let sol = Array.make n R.zero in
        Array.iteri
          (fun i b -> if b < n then sol.(b) <- tab.(i).(ncols))
          basis;
        Some (sol, Array.copy basis)
    in
    let attempt_warm hint =
      if Array.length hint <> m then None
      else begin
        let tab, basis, obj = build () in
        Array.iteri
          (fun i c ->
            if c >= 0 && c < ncols && basis.(i) <> c then begin
              let taken = Array.exists (fun b -> b = c) basis in
              if (not taken) && R.sign tab.(i).(c) <> 0 then
                pivot tab basis obj ~pr:i ~pc:c
            end)
          hint;
        let primal_feasible =
          Array.for_all (fun row -> R.sign row.(ncols) >= 0) tab
        in
        let dual_feasible =
          let ok = ref true in
          for j = 0 to ncols - 1 do
            if R.sign obj.(j) > 0 then ok := false
          done;
          !ok
        in
        if primal_feasible then finish tab basis obj
        else if dual_feasible then
          match dual tab basis obj with
          | `Stuck -> None
          | `Feasible -> finish tab basis obj
        else None
      end
    in
    (* the pivot count is cumulative across a failed warm attempt and
       the cold re-solve it falls back to: wasted work is still work *)
    match Option.bind hint attempt_warm with
    | Some (sol, basis) -> Some (sol, basis, !pivots, true)
    | None -> (
      let tab, basis, obj = build () in
      match finish tab basis obj with
      | Some (sol, basis) -> Some (sol, basis, !pivots, false)
      | None -> None)
end

(* ------------------------------------------------------------------ *)
(* The deadlock-avoidance encoding (see the interface comment for the
   constraint system and the conservativeness argument). *)

type stats = { components : int; rows : int }

(* Per-component bookkeeping shared by the three entry points: local
   contiguous indices for the component's edges and nodes, and the
   branching nodes (two or more outgoing component edges) with the
   minimum outgoing capacity the run-sum discipline compares against. *)
type component = {
  cedges : Graph.edge array;
  cnodes : int array; (* component nodes, ascending *)
  node_slot : (int, int) Hashtbl.t; (* node -> local index *)
  branches : (int * int) list; (* (node, min outgoing cap in component) *)
}

let component_of_edges edges =
  let cedges = Array.of_list edges in
  let node_set = Hashtbl.create 16 in
  Array.iter
    (fun (e : Graph.edge) ->
      Hashtbl.replace node_set e.src ();
      Hashtbl.replace node_set e.dst ())
    cedges;
  let cnodes =
    Hashtbl.fold (fun v () acc -> v :: acc) node_set []
    |> List.sort Stdlib.compare |> Array.of_list
  in
  let node_slot = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add node_slot v i) cnodes;
  let out_count = Hashtbl.create 16 and out_min = Hashtbl.create 16 in
  Array.iter
    (fun (e : Graph.edge) ->
      let k =
        match Hashtbl.find_opt out_count e.src with Some k -> k | None -> 0
      in
      Hashtbl.replace out_count e.src (k + 1);
      let m =
        match Hashtbl.find_opt out_min e.src with
        | Some m -> Stdlib.min m e.cap
        | None -> e.cap
      in
      Hashtbl.replace out_min e.src m)
    cedges;
  let branches =
    Array.to_list cnodes
    |> List.filter_map (fun v ->
           match Hashtbl.find_opt out_count v with
           | Some k when k >= 2 -> Some (v, Hashtbl.find out_min v)
           | _ -> None)
  in
  { cedges; cnodes; node_slot; branches }

let cycle_components g =
  Articulation.biconnected_components g
  |> List.filter (fun edges -> match edges with [] | [ _ ] -> false | _ -> true)
  |> List.map component_of_edges

let require_dag name g =
  if not (Topo.is_dag g) then invalid_arg (name ^ ": the graph has a directed cycle")

let require_table name g thresholds =
  if Array.length thresholds <> Graph.num_edges g then
    invalid_arg (name ^ ": threshold table length mismatch")

(* --- the interval LP ---------------------------------------------- *)

(* The row layout every interval program uses, in a fixed order the
   warm-start translation relies on: one chain row per component edge
   (cedge order), one branch row per branching node (branch order),
   then the aggregate box row. Columns: x_e per cedge, then D_v per
   cnode, then one slack per row. *)
let interval_rows c =
  let me = Array.length c.cedges and nv = Array.length c.cnodes in
  let nvars = me + nv in
  let dvar v = me + Hashtbl.find c.node_slot v in
  let rows = ref [] in
  let add_row a b = rows := (a, b) :: !rows in
  (* chain rows: x_e + D_dst - D_src <= 0 *)
  Array.iteri
    (fun k (e : Graph.edge) ->
      let a = Array.make nvars R.zero in
      a.(k) <- R.one;
      a.(dvar e.dst) <- R.add a.(dvar e.dst) R.one;
      a.(dvar e.src) <- R.sub a.(dvar e.src) R.one;
      add_row a R.zero)
    c.cedges;
  (* branch rows: D_s <= min outgoing cap - 1 *)
  List.iter
    (fun (s, min_cap) ->
      let a = Array.make nvars R.zero in
      a.(dvar s) <- R.one;
      add_row a (R.of_int (min_cap - 1)))
    c.branches;
  (* one aggregate box row keeps the objective bounded *)
  let total_cap =
    Array.fold_left (fun acc (e : Graph.edge) -> acc + e.cap) 0 c.cedges
  in
  let box = Array.make nvars R.zero in
  Array.iteri (fun k _ -> box.(k) <- R.one) c.cedges;
  add_row box (R.of_int total_cap);
  let rows = Array.of_list (List.rev !rows) in
  let objective = Array.make nvars R.zero in
  Array.iteri (fun k _ -> objective.(k) <- R.one) c.cedges;
  (rows, objective)

let interval_of_primal p =
  let iv = R.add R.one p in
  match R.to_int_pair iv with
  | Some (num, den) when num > 0 -> Interval.ratio num den
  | _ -> Interval.of_int (Stdlib.max 1 (R.floor iv))

type comp_state = {
  sedges : int array; (* graph edge ids, cedge order *)
  snodes : int array; (* graph node ids, cnode order *)
  sbranches : int array; (* branching node per branch row, row order *)
  svals : Interval.t array; (* solved interval per cedge *)
  sbasis : int array; (* basic column per row of the solved tableau *)
}

type state = comp_state list

type resolve_stats = {
  rcomponents : int;
  rrows : int;
  rspliced : int;
  rwarm : int;
  rcold : int;
  rpivots : int;
}

(* Map the previous optimum's basis into the edited component's column
   space: x columns follow the surviving edge, D columns follow the
   surviving node, slack columns follow their row (chain rows by edge,
   branch rows by node, box row by position). Anything that did not
   survive translates to no hint for that row. *)
let translate_basis ~emap ~nmap (oc : comp_state) c =
  let me_o = Array.length oc.sedges and nv_o = Array.length oc.snodes in
  let nb_o = Array.length oc.sbranches in
  let nvars_o = me_o + nv_o in
  let nrows_o = me_o + nb_o + 1 in
  let me_n = Array.length c.cedges in
  let nb_n = List.length c.branches in
  let nvars_n = me_n + Array.length c.cnodes in
  let nrows_n = me_n + nb_n + 1 in
  let xcol = Hashtbl.create 16 in
  Array.iteri (fun k (e : Graph.edge) -> Hashtbl.add xcol e.id k) c.cedges;
  let branchrow = Hashtbl.create 16 in
  List.iteri (fun i (s, _) -> Hashtbl.add branchrow s (me_n + i)) c.branches;
  let new_row r =
    if r < me_o then
      (* chain row of old edge *)
      Option.bind (emap oc.sedges.(r)) (Hashtbl.find_opt xcol)
    else if r < me_o + nb_o then
      Option.bind (nmap oc.sbranches.(r - me_o)) (Hashtbl.find_opt branchrow)
    else Some (nrows_n - 1)
  in
  let new_col col =
    if col < me_o then
      Option.bind (emap oc.sedges.(col)) (Hashtbl.find_opt xcol)
    else if col < nvars_o then
      Option.bind
        (nmap oc.snodes.(col - me_o))
        (fun v ->
          Option.map (fun slot -> me_n + slot) (Hashtbl.find_opt c.node_slot v))
    else
      Option.map (fun r' -> nvars_n + r') (new_row (col - nvars_o))
  in
  let hint = Array.make nrows_n (-1) in
  for r = 0 to nrows_o - 1 do
    match new_row r with
    | Some r' -> (
      match new_col oc.sbasis.(r) with
      | Some c' -> hint.(r') <- c'
      | None -> ())
    | None -> ()
  done;
  hint

let resolve ?warm ?edge_map ?node_map ?dirty g =
  require_dag "Lp.resolve" g;
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  let comps = cycle_components g in
  let emap o =
    match edge_map with
    | None -> Some o
    | Some m -> if o >= 0 && o < Array.length m then m.(o) else None
  in
  let nmap v =
    match node_map with
    | None -> Some v
    | Some m -> if v >= 0 && v < Array.length m then m.(v) else None
  in
  let is_dirty ne = match dirty with None -> false | Some d -> d.(ne) in
  (* base edge id for each current edge, from the forward map *)
  let origin =
    match edge_map with
    | None -> Hashtbl.find_opt (Hashtbl.create 0) (* identity below *)
    | Some m ->
      let rev = Hashtbl.create 64 in
      Array.iteri
        (fun o n -> match n with Some n -> Hashtbl.add rev n o | None -> ())
        m;
      Hashtbl.find_opt rev
  in
  let origin ne = match edge_map with None -> Some ne | Some _ -> origin ne in
  let old_comps = Array.of_list (match warm with None -> [] | Some s -> s) in
  let old_comp_of_edge = Hashtbl.create 64 in
  Array.iteri
    (fun ci (oc : comp_state) ->
      Array.iter (fun oe -> Hashtbl.replace old_comp_of_edge oe ci) oc.sedges)
    old_comps;
  let stats =
    ref
      {
        rcomponents = List.length comps;
        rrows = 0;
        rspliced = 0;
        rwarm = 0;
        rcold = 0;
        rpivots = 0;
      }
  in
  let rev_state = ref [] in
  List.iter
    (fun c ->
      let nrows = Array.length c.cedges + List.length c.branches + 1 in
      stats := { !stats with rrows = !stats.rrows + nrows };
      (* the old component this one descends from, by origin majority *)
      let votes = Hashtbl.create 4 in
      let clean = ref true in
      Array.iter
        (fun (e : Graph.edge) ->
          if is_dirty e.id then clean := false;
          match origin e.id with
          | None -> clean := false
          | Some o -> (
            match Hashtbl.find_opt old_comp_of_edge o with
            | None -> clean := false
            | Some ci ->
              Hashtbl.replace votes ci
                (1 + Option.value ~default:0 (Hashtbl.find_opt votes ci))))
        c.cedges;
      let ancestor =
        Hashtbl.fold
          (fun ci n best ->
            match best with
            | Some (_, bn) when bn >= n -> best
            | _ -> Some (ci, n))
          votes None
        |> Option.map (fun (ci, _) -> old_comps.(ci))
      in
      let exact_match =
        !clean
        && match ancestor with
           | None -> false
           | Some oc ->
             Array.length oc.sedges = Array.length c.cedges
             && begin
                  let olds =
                    Array.to_list (Array.map (fun (e : Graph.edge) ->
                        Option.get (origin e.id)) c.cedges)
                    |> List.sort Stdlib.compare
                  in
                  List.sort Stdlib.compare (Array.to_list oc.sedges) = olds
                end
      in
      match (exact_match, ancestor) with
      | true, Some oc ->
        (* clean component: splice the previous optimum, zero pivots *)
        let pos = Hashtbl.create 16 in
        Array.iteri (fun k oe -> Hashtbl.add pos oe k) oc.sedges;
        let svals =
          Array.map
            (fun (e : Graph.edge) ->
              let v = oc.svals.(Hashtbl.find pos (Option.get (origin e.id))) in
              ivals.(e.id) <- v;
              v)
            c.cedges
        in
        let sbasis = translate_basis ~emap ~nmap oc c in
        stats := { !stats with rspliced = !stats.rspliced + 1 };
        rev_state :=
          {
            sedges = Array.map (fun (e : Graph.edge) -> e.id) c.cedges;
            snodes = Array.copy c.cnodes;
            sbranches = Array.of_list (List.map fst c.branches);
            svals;
            sbasis;
          }
          :: !rev_state
      | _ -> (
        let rows, objective = interval_rows c in
        let hint = Option.map (fun oc -> translate_basis ~emap ~nmap oc c) ancestor in
        match Simplex.solve_nonneg ?hint ~objective ~rows () with
        | None -> assert false (* the box row bounds sum x *)
        | Some (primal, sbasis, pivots, warmed) ->
          let svals =
            Array.mapi
              (fun k (e : Graph.edge) ->
                let v = interval_of_primal primal.(k) in
                ivals.(e.id) <- v;
                v)
              c.cedges
          in
          stats :=
            {
              !stats with
              rpivots = !stats.rpivots + pivots;
              rwarm = (!stats.rwarm + if warmed then 1 else 0);
              rcold = (!stats.rcold + if warmed then 0 else 1);
            };
          rev_state :=
            {
              sedges = Array.map (fun (e : Graph.edge) -> e.id) c.cedges;
              snodes = Array.copy c.cnodes;
              sbranches = Array.of_list (List.map fst c.branches);
              svals;
              sbasis;
            }
            :: !rev_state))
    comps;
  (ivals, !stats, List.rev !rev_state)

let intervals g =
  let ivals, st, _ = resolve g in
  (ivals, { components = st.rcomponents; rows = st.rrows })

(* --- dimensioning: minimal capacities for a given table ----------- *)

(* Demand a node can push down component paths: max over outgoing
   finite-threshold component edges of (t - 1) + demand (dst). A [None]
   threshold never forces a dummy, so it does not extend a chain. *)
let component_demands c thresholds =
  let nv = Array.length c.cnodes in
  let demand = Array.make nv 0 in
  let out = Array.make nv [] in
  Array.iter
    (fun (e : Graph.edge) ->
      let s = Hashtbl.find c.node_slot e.src in
      out.(s) <- e :: out.(s))
    c.cedges;
  let memo = Array.make nv (-1) in
  let rec go v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      (* the component graph is a sub-DAG: recursion terminates *)
      memo.(v) <- 0;
      let best = ref 0 in
      List.iter
        (fun (e : Graph.edge) ->
          match thresholds.(e.id) with
          | None -> ()
          | Some t ->
            let d = t - 1 + go (Hashtbl.find c.node_slot e.dst) in
            if d > !best then best := d)
        out.(v);
      memo.(v) <- !best;
      !best
    end
  in
  Array.iteri (fun v _ -> demand.(v) <- go v) c.cnodes;
  demand

let min_buffers g ~thresholds =
  require_dag "Lp.min_buffers" g;
  require_table "Lp.min_buffers" g thresholds;
  let caps = Array.make (Graph.num_edges g) 1 in
  List.iter
    (fun c ->
      let me = Array.length c.cedges and nv = Array.length c.cnodes in
      (* variables: y_e = cap_e - 1 per component edge, then D_v *)
      let nvars = me + nv in
      let dvar v = me + Hashtbl.find c.node_slot v in
      let rows = ref [] in
      let add_row a b = rows := (a, b) :: !rows in
      Array.iteri
        (fun _k (e : Graph.edge) ->
          match thresholds.(e.id) with
          | None -> ()
          | Some t ->
            (* D_dst - D_src <= -(t - 1) *)
            let a = Array.make nvars R.zero in
            a.(dvar e.dst) <- R.add a.(dvar e.dst) R.one;
            a.(dvar e.src) <- R.sub a.(dvar e.src) R.one;
            add_row a (R.of_int (1 - t)))
        c.cedges;
      let branch_nodes =
        List.map fst c.branches |> List.sort_uniq Stdlib.compare
      in
      Array.iteri
        (fun k (e : Graph.edge) ->
          if List.mem e.src branch_nodes then begin
            (* D_src - y_e <= 0 *)
            let a = Array.make nvars R.zero in
            a.(dvar e.src) <- R.one;
            a.(k) <- R.minus_one;
            add_row a R.zero
          end)
        c.cedges;
      let rows = Array.of_list (List.rev !rows) in
      let objective = Array.make nvars R.zero in
      Array.iteri (fun k _ -> objective.(k) <- R.minus_one) c.cedges;
      match Simplex.maximize ~objective ~rows with
      | Simplex.Optimal { primal; _ } ->
        Array.iteri
          (fun k (e : Graph.edge) -> caps.(e.id) <- 1 + R.ceil primal.(k))
          c.cedges
      | Simplex.Unbounded -> assert false (* objective is -sum y <= 0 *)
      | Simplex.Infeasible _ -> assert false (* y large enough always fits *))
    (cycle_components g);
  caps

(* --- auditing a supplied table ------------------------------------ *)

type witness = {
  wnode : Graph.node;
  wedges : Graph.edge list;
  wdemand : int;
  wsupply : int;
}

let pp_witness ppf w =
  Format.fprintf ppf
    "node %d: demand chain %a carries %d dummy slot%s but the cheapest \
     opposing channel supplies only %d"
    w.wnode
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
       (fun ppf (e : Graph.edge) -> Format.fprintf ppf "e%d" e.id))
    w.wedges w.wdemand
    (if w.wdemand = 1 then "" else "s")
    w.wsupply

(* Reconstruct the violating demand chain by DP argmax from the
   overloaded branch node. Infeasibility of the audit program is
   exactly "some branch node's demand exceeds its cheapest outgoing
   capacity minus one", so this always finds a chain; the Farkas
   certificate tells us which branch node to start from. *)
let witness_from c thresholds s supply =
  let slot v = Hashtbl.find c.node_slot v in
  let demand = component_demands c thresholds in
  let rec chain v =
    if demand.(slot v) = 0 then []
    else
      let best = ref None in
      Array.iter
        (fun (e : Graph.edge) ->
          if e.src = v then
            match thresholds.(e.id) with
            | None -> ()
            | Some t ->
              let d = t - 1 + demand.(slot e.dst) in
              if d = demand.(slot v) && !best = None then best := Some e)
        c.cedges;
      match !best with
      | None -> []
      | Some e -> e :: chain e.dst
  in
  { wnode = s; wedges = chain s; wdemand = demand.(slot s); wsupply = supply }

let audit g ~thresholds =
  require_dag "Lp.audit" g;
  require_table "Lp.audit" g thresholds;
  let rec first_violation = function
    | [] -> Ok ()
    | c :: rest -> (
      let nv = Array.length c.cnodes in
      let dvar v = Hashtbl.find c.node_slot v in
      let rows = ref [] and tags = ref [] in
      let add_row tag a b =
        rows := (a, b) :: !rows;
        tags := tag :: !tags
      in
      Array.iter
        (fun (e : Graph.edge) ->
          match thresholds.(e.id) with
          | None -> ()
          | Some t ->
            let a = Array.make nv R.zero in
            a.(dvar e.dst) <- R.add a.(dvar e.dst) R.one;
            a.(dvar e.src) <- R.sub a.(dvar e.src) R.one;
            add_row `Chain a (R.of_int (1 - t)))
        c.cedges;
      List.iter
        (fun (s, min_cap) ->
          let a = Array.make nv R.zero in
          a.(dvar s) <- R.one;
          add_row (`Branch (s, min_cap - 1)) a (R.of_int (min_cap - 1)))
        c.branches;
      let rows = Array.of_list (List.rev !rows) in
      let tags = Array.of_list (List.rev !tags) in
      let objective = Array.make nv R.zero in
      match Simplex.maximize ~objective ~rows with
      | Simplex.Optimal _ -> first_violation rest
      | Simplex.Unbounded -> assert false (* zero objective *)
      | Simplex.Infeasible { farkas } ->
        (* the certificate's positive branch row names the overloaded
           node; decode it into a concrete chain *)
        let branch = ref None in
        Array.iteri
          (fun i y ->
            if R.sign y > 0 && !branch = None then
              match tags.(i) with
              | `Branch (s, supply) -> branch := Some (s, supply)
              | `Chain -> ())
          farkas;
        let s, supply =
          match !branch with
          | Some sv -> sv
          | None ->
            (* degenerate certificate: fall back to scanning branches *)
            let demand = component_demands c thresholds in
            List.find
              (fun (s, min_cap) ->
                demand.(Hashtbl.find c.node_slot s) > min_cap - 1)
              c.branches
            |> fun (s, min_cap) -> (s, min_cap - 1)
        in
        Error (witness_from c thresholds s supply))
  in
  first_violation (cycle_components g)
