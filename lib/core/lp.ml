open Fstream_graph
module R = Rational

(* ------------------------------------------------------------------ *)
(* Dense two-phase primal simplex over exact rationals.

   Bland's smallest-index rule everywhere (entering column and
   leaving-row ties), so cycling is impossible and termination needs
   no perturbation. The tableau is dense: the programs this module
   builds have a few hundred rows at the bench's largest sizes, where
   a revised/sparse implementation would be complexity without
   payoff. *)
module Simplex = struct
  type outcome =
    | Optimal of {
        objective : R.t;
        primal : R.t array;
        dual : R.t array;
      }
    | Unbounded
    | Infeasible of { farkas : R.t array }

  let maximize ~objective ~rows =
    let n = Array.length objective in
    let m = Array.length rows in
    Array.iter
      (fun (a, _) ->
        if Array.length a <> n then
          invalid_arg "Lp.Simplex.maximize: coefficient row length")
      rows;
    (* Rows with a negative right-hand side are negated (so the RHS is
       positive) and given an artificial variable; phase 1 drives the
       artificials to zero or proves the program empty. Columns:
       [0, n) structural, [n, n + m) slack, [n + m, ...) artificial. *)
    let negated = Array.map (fun (_, b) -> R.sign b < 0) rows in
    let nart = Array.fold_left (fun k v -> if v then k + 1 else k) 0 negated in
    let ncols = n + m + nart in
    let art_index = Array.make m (-1) in
    let next_art = ref (n + m) in
    Array.iteri
      (fun i v ->
        if v then begin
          art_index.(i) <- !next_art;
          incr next_art
        end)
      negated;
    let tab =
      Array.init m (fun i ->
          let a, b = rows.(i) in
          let row = Array.make (ncols + 1) R.zero in
          let s = if negated.(i) then R.minus_one else R.one in
          for j = 0 to n - 1 do
            row.(j) <- R.mul s a.(j)
          done;
          row.(n + i) <- s;
          if negated.(i) then row.(art_index.(i)) <- R.one;
          row.(ncols) <- R.mul s b;
          row)
    in
    let basis = Array.init m (fun i -> if negated.(i) then art_index.(i) else n + i) in
    let live = Array.make m true in
    (* the objective row holds reduced costs; its RHS slot holds -z so
       the ordinary row update maintains it *)
    let pivot obj ~pr ~pc =
      let prow = tab.(pr) in
      let d = prow.(pc) in
      for j = 0 to ncols do
        prow.(j) <- R.div prow.(j) d
      done;
      let elim row =
        let f = row.(pc) in
        if not (R.is_zero f) then
          for j = 0 to ncols do
            row.(j) <- R.sub row.(j) (R.mul f prow.(j))
          done
      in
      Array.iteri (fun i row -> if live.(i) && i <> pr then elim row) tab;
      elim obj;
      basis.(pr) <- pc
    in
    let run obj ~max_col =
      let rec loop () =
        let pc = ref (-1) in
        (try
           for j = 0 to max_col - 1 do
             if R.sign obj.(j) > 0 then begin
               pc := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !pc < 0 then `Optimal
        else begin
          let pc = !pc in
          let pr = ref (-1) in
          for i = 0 to m - 1 do
            if live.(i) && R.sign tab.(i).(pc) > 0 then
              if !pr < 0 then pr := i
              else begin
                let cur = R.div tab.(!pr).(ncols) tab.(!pr).(pc) in
                let cand = R.div tab.(i).(ncols) tab.(i).(pc) in
                let c = R.compare cand cur in
                if c < 0 || (c = 0 && basis.(i) < basis.(!pr)) then pr := i
              end
          done;
          if !pr < 0 then `Unbounded
          else begin
            pivot obj ~pr:!pr ~pc;
            loop ()
          end
        end
      in
      loop ()
    in
    let infeasible obj1 =
      (* Farkas multipliers from the phase-1 reduced costs: the
         multiplier of original row i sits on its initial basis
         column, adjusted for the row's sign flip. *)
      let farkas =
        Array.init m (fun i ->
            if negated.(i) then R.add R.one obj1.(art_index.(i))
            else R.neg obj1.(n + i))
      in
      Infeasible { farkas }
    in
    let phase1_verdict =
      if nart = 0 then `Feasible
      else begin
        let obj1 = Array.make (ncols + 1) R.zero in
        for j = n + m to ncols - 1 do
          obj1.(j) <- R.minus_one
        done;
        (* price out the basic artificials (cost -1 each) *)
        Array.iteri
          (fun i row ->
            if negated.(i) then
              for j = 0 to ncols do
                obj1.(j) <- R.add obj1.(j) row.(j)
              done)
          tab;
        match run obj1 ~max_col:ncols with
        | `Unbounded -> assert false (* phase-1 objective is <= 0 *)
        | `Optimal ->
          if R.sign obj1.(ncols) > 0 then `Infeasible (infeasible obj1)
          else begin
            (* drive leftover zero-level artificials out of the basis;
               an all-zero row (over real columns) is redundant *)
            for i = 0 to m - 1 do
              if live.(i) && basis.(i) >= n + m then begin
                let j = ref (-1) in
                (try
                   for c = 0 to n + m - 1 do
                     if R.sign tab.(i).(c) <> 0 then begin
                       j := c;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !j >= 0 then pivot obj1 ~pr:i ~pc:!j
                else live.(i) <- false
              end
            done;
            `Feasible
          end
      end
    in
    match phase1_verdict with
    | `Infeasible r -> r
    | `Feasible -> (
      let obj2 = Array.make (ncols + 1) R.zero in
      for j = 0 to n - 1 do
        obj2.(j) <- objective.(j)
      done;
      Array.iteri
        (fun i row ->
          if live.(i) && basis.(i) < n then begin
            let cb = objective.(basis.(i)) in
            if R.sign cb <> 0 then
              for j = 0 to ncols do
                obj2.(j) <- R.sub obj2.(j) (R.mul cb row.(j))
              done
          end)
        tab;
      match run obj2 ~max_col:(n + m) with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let primal = Array.make n R.zero in
        Array.iteri
          (fun i b -> if live.(i) && b < n then primal.(b) <- tab.(i).(ncols))
          basis;
        let dual =
          Array.init m (fun i ->
              if negated.(i) then obj2.(art_index.(i))
              else R.neg obj2.(n + i))
        in
        Optimal { objective = R.neg obj2.(ncols); primal; dual })
end

(* ------------------------------------------------------------------ *)
(* The deadlock-avoidance encoding (see the interface comment for the
   constraint system and the conservativeness argument). *)

type stats = { components : int; rows : int }

(* Per-component bookkeeping shared by the three entry points: local
   contiguous indices for the component's edges and nodes, and the
   branching nodes (two or more outgoing component edges) with the
   minimum outgoing capacity the run-sum discipline compares against. *)
type component = {
  cedges : Graph.edge array;
  cnodes : int array; (* component nodes, ascending *)
  node_slot : (int, int) Hashtbl.t; (* node -> local index *)
  branches : (int * int) list; (* (node, min outgoing cap in component) *)
}

let component_of_edges edges =
  let cedges = Array.of_list edges in
  let node_set = Hashtbl.create 16 in
  Array.iter
    (fun (e : Graph.edge) ->
      Hashtbl.replace node_set e.src ();
      Hashtbl.replace node_set e.dst ())
    cedges;
  let cnodes =
    Hashtbl.fold (fun v () acc -> v :: acc) node_set []
    |> List.sort Stdlib.compare |> Array.of_list
  in
  let node_slot = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add node_slot v i) cnodes;
  let out_count = Hashtbl.create 16 and out_min = Hashtbl.create 16 in
  Array.iter
    (fun (e : Graph.edge) ->
      let k =
        match Hashtbl.find_opt out_count e.src with Some k -> k | None -> 0
      in
      Hashtbl.replace out_count e.src (k + 1);
      let m =
        match Hashtbl.find_opt out_min e.src with
        | Some m -> Stdlib.min m e.cap
        | None -> e.cap
      in
      Hashtbl.replace out_min e.src m)
    cedges;
  let branches =
    Array.to_list cnodes
    |> List.filter_map (fun v ->
           match Hashtbl.find_opt out_count v with
           | Some k when k >= 2 -> Some (v, Hashtbl.find out_min v)
           | _ -> None)
  in
  { cedges; cnodes; node_slot; branches }

let cycle_components g =
  Articulation.biconnected_components g
  |> List.filter (fun edges -> match edges with [] | [ _ ] -> false | _ -> true)
  |> List.map component_of_edges

let require_dag name g =
  if not (Topo.is_dag g) then invalid_arg (name ^ ": the graph has a directed cycle")

let require_table name g thresholds =
  if Array.length thresholds <> Graph.num_edges g then
    invalid_arg (name ^ ": threshold table length mismatch")

(* --- the interval LP ---------------------------------------------- *)

let intervals g =
  require_dag "Lp.intervals" g;
  let ivals = Array.make (Graph.num_edges g) Interval.inf in
  let comps = cycle_components g in
  let total_rows = ref 0 in
  List.iter
    (fun c ->
      let me = Array.length c.cedges and nv = Array.length c.cnodes in
      let nvars = me + nv in
      let dvar v = me + Hashtbl.find c.node_slot v in
      let rows = ref [] in
      let add_row a b = rows := (a, b) :: !rows in
      (* chain rows: x_e + D_dst - D_src <= 0 *)
      Array.iteri
        (fun k (e : Graph.edge) ->
          let a = Array.make nvars R.zero in
          a.(k) <- R.one;
          a.(dvar e.dst) <- R.add a.(dvar e.dst) R.one;
          a.(dvar e.src) <- R.sub a.(dvar e.src) R.one;
          add_row a R.zero)
        c.cedges;
      (* branch rows: D_s <= min outgoing cap - 1 *)
      List.iter
        (fun (s, min_cap) ->
          let a = Array.make nvars R.zero in
          a.(dvar s) <- R.one;
          add_row a (R.of_int (min_cap - 1)))
        c.branches;
      (* one aggregate box row keeps the objective bounded *)
      let total_cap =
        Array.fold_left (fun acc (e : Graph.edge) -> acc + e.cap) 0 c.cedges
      in
      let box = Array.make nvars R.zero in
      Array.iteri (fun k _ -> box.(k) <- R.one) c.cedges;
      add_row box (R.of_int total_cap);
      let rows = Array.of_list (List.rev !rows) in
      total_rows := !total_rows + Array.length rows;
      let objective = Array.make nvars R.zero in
      Array.iteri (fun k _ -> objective.(k) <- R.one) c.cedges;
      match Simplex.maximize ~objective ~rows with
      | Simplex.Optimal { primal; _ } ->
        Array.iteri
          (fun k (e : Graph.edge) ->
            let iv = R.add R.one primal.(k) in
            ivals.(e.id) <-
              (match R.to_int_pair iv with
              | Some (num, den) when num > 0 -> Interval.ratio num den
              | _ -> Interval.of_int (Stdlib.max 1 (R.floor iv))))
          c.cedges
      | Simplex.Unbounded -> assert false (* the box row bounds sum x *)
      | Simplex.Infeasible _ -> assert false (* x = 0, D = 0 is feasible *))
    comps;
  (ivals, { components = List.length comps; rows = !total_rows })

(* --- dimensioning: minimal capacities for a given table ----------- *)

(* Demand a node can push down component paths: max over outgoing
   finite-threshold component edges of (t - 1) + demand (dst). A [None]
   threshold never forces a dummy, so it does not extend a chain. *)
let component_demands c thresholds =
  let nv = Array.length c.cnodes in
  let demand = Array.make nv 0 in
  let out = Array.make nv [] in
  Array.iter
    (fun (e : Graph.edge) ->
      let s = Hashtbl.find c.node_slot e.src in
      out.(s) <- e :: out.(s))
    c.cedges;
  let memo = Array.make nv (-1) in
  let rec go v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      (* the component graph is a sub-DAG: recursion terminates *)
      memo.(v) <- 0;
      let best = ref 0 in
      List.iter
        (fun (e : Graph.edge) ->
          match thresholds.(e.id) with
          | None -> ()
          | Some t ->
            let d = t - 1 + go (Hashtbl.find c.node_slot e.dst) in
            if d > !best then best := d)
        out.(v);
      memo.(v) <- !best;
      !best
    end
  in
  Array.iteri (fun v _ -> demand.(v) <- go v) c.cnodes;
  demand

let min_buffers g ~thresholds =
  require_dag "Lp.min_buffers" g;
  require_table "Lp.min_buffers" g thresholds;
  let caps = Array.make (Graph.num_edges g) 1 in
  List.iter
    (fun c ->
      let me = Array.length c.cedges and nv = Array.length c.cnodes in
      (* variables: y_e = cap_e - 1 per component edge, then D_v *)
      let nvars = me + nv in
      let dvar v = me + Hashtbl.find c.node_slot v in
      let rows = ref [] in
      let add_row a b = rows := (a, b) :: !rows in
      Array.iteri
        (fun _k (e : Graph.edge) ->
          match thresholds.(e.id) with
          | None -> ()
          | Some t ->
            (* D_dst - D_src <= -(t - 1) *)
            let a = Array.make nvars R.zero in
            a.(dvar e.dst) <- R.add a.(dvar e.dst) R.one;
            a.(dvar e.src) <- R.sub a.(dvar e.src) R.one;
            add_row a (R.of_int (1 - t)))
        c.cedges;
      let branch_nodes =
        List.map fst c.branches |> List.sort_uniq Stdlib.compare
      in
      Array.iteri
        (fun k (e : Graph.edge) ->
          if List.mem e.src branch_nodes then begin
            (* D_src - y_e <= 0 *)
            let a = Array.make nvars R.zero in
            a.(dvar e.src) <- R.one;
            a.(k) <- R.minus_one;
            add_row a R.zero
          end)
        c.cedges;
      let rows = Array.of_list (List.rev !rows) in
      let objective = Array.make nvars R.zero in
      Array.iteri (fun k _ -> objective.(k) <- R.minus_one) c.cedges;
      match Simplex.maximize ~objective ~rows with
      | Simplex.Optimal { primal; _ } ->
        Array.iteri
          (fun k (e : Graph.edge) -> caps.(e.id) <- 1 + R.ceil primal.(k))
          c.cedges
      | Simplex.Unbounded -> assert false (* objective is -sum y <= 0 *)
      | Simplex.Infeasible _ -> assert false (* y large enough always fits *))
    (cycle_components g);
  caps

(* --- auditing a supplied table ------------------------------------ *)

type witness = {
  wnode : Graph.node;
  wedges : Graph.edge list;
  wdemand : int;
  wsupply : int;
}

let pp_witness ppf w =
  Format.fprintf ppf
    "node %d: demand chain %a carries %d dummy slot%s but the cheapest \
     opposing channel supplies only %d"
    w.wnode
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
       (fun ppf (e : Graph.edge) -> Format.fprintf ppf "e%d" e.id))
    w.wedges w.wdemand
    (if w.wdemand = 1 then "" else "s")
    w.wsupply

(* Reconstruct the violating demand chain by DP argmax from the
   overloaded branch node. Infeasibility of the audit program is
   exactly "some branch node's demand exceeds its cheapest outgoing
   capacity minus one", so this always finds a chain; the Farkas
   certificate tells us which branch node to start from. *)
let witness_from c thresholds s supply =
  let slot v = Hashtbl.find c.node_slot v in
  let demand = component_demands c thresholds in
  let rec chain v =
    if demand.(slot v) = 0 then []
    else
      let best = ref None in
      Array.iter
        (fun (e : Graph.edge) ->
          if e.src = v then
            match thresholds.(e.id) with
            | None -> ()
            | Some t ->
              let d = t - 1 + demand.(slot e.dst) in
              if d = demand.(slot v) && !best = None then best := Some e)
        c.cedges;
      match !best with
      | None -> []
      | Some e -> e :: chain e.dst
  in
  { wnode = s; wedges = chain s; wdemand = demand.(slot s); wsupply = supply }

let audit g ~thresholds =
  require_dag "Lp.audit" g;
  require_table "Lp.audit" g thresholds;
  let rec first_violation = function
    | [] -> Ok ()
    | c :: rest -> (
      let nv = Array.length c.cnodes in
      let dvar v = Hashtbl.find c.node_slot v in
      let rows = ref [] and tags = ref [] in
      let add_row tag a b =
        rows := (a, b) :: !rows;
        tags := tag :: !tags
      in
      Array.iter
        (fun (e : Graph.edge) ->
          match thresholds.(e.id) with
          | None -> ()
          | Some t ->
            let a = Array.make nv R.zero in
            a.(dvar e.dst) <- R.add a.(dvar e.dst) R.one;
            a.(dvar e.src) <- R.sub a.(dvar e.src) R.one;
            add_row `Chain a (R.of_int (1 - t)))
        c.cedges;
      List.iter
        (fun (s, min_cap) ->
          let a = Array.make nv R.zero in
          a.(dvar s) <- R.one;
          add_row (`Branch (s, min_cap - 1)) a (R.of_int (min_cap - 1)))
        c.branches;
      let rows = Array.of_list (List.rev !rows) in
      let tags = Array.of_list (List.rev !tags) in
      let objective = Array.make nv R.zero in
      match Simplex.maximize ~objective ~rows with
      | Simplex.Optimal _ -> first_violation rest
      | Simplex.Unbounded -> assert false (* zero objective *)
      | Simplex.Infeasible { farkas } ->
        (* the certificate's positive branch row names the overloaded
           node; decode it into a concrete chain *)
        let branch = ref None in
        Array.iteri
          (fun i y ->
            if R.sign y > 0 && !branch = None then
              match tags.(i) with
              | `Branch (s, supply) -> branch := Some (s, supply)
              | `Chain -> ())
          farkas;
        let s, supply =
          match !branch with
          | Some sv -> sv
          | None ->
            (* degenerate certificate: fall back to scanning branches *)
            let demand = component_demands c thresholds in
            List.find
              (fun (s, min_cap) ->
                demand.(Hashtbl.find c.node_slot s) > min_cap - 1)
              c.branches
            |> fun (s, min_cap) -> (s, min_cap - 1)
        in
        Error (witness_from c thresholds s supply))
  in
  first_violation (cycle_components g)
