(** Polynomial LP interval backend for general DAGs.

    The paper's threshold construction is exact but exponential outside
    CS4: {!General} folds over every undirected simple cycle. Following
    the LP line of Sirdey & Aubry (PAPERS.md), this module instead
    solves one small linear program per biconnected component and reads
    a {e sufficient, conservative} safe-interval table off the optimum
    — polynomial in the graph size, for {e any} connected DAG (no
    two-terminal requirement).

    {2 Encoding}

    Per biconnected component [B] (bridges lie on no undirected cycle
    and keep interval [Inf]):

    - a slack variable [x_e >= 0] per [B]-edge — the dummy budget
      [t_e - 1] the edge may accumulate;
    - a demand variable [D_v >= 0] per [B]-node — an upper bound on the
      largest [sum x_e] over directed paths leaving [v] inside [B];
    - {e chain rows} [x_e + D_w - D_v <= 0] for every [B]-edge
      [e = (v, w)], making each [D_v] dominate every downstream demand
      path;
    - {e branch rows} [D_s <= min_cap_out(s) - 1] at every node [s]
      with two or more outgoing [B]-edges — exactly the nodes that can
      be the source of an undirected cycle;
    - one aggregate box row [sum x_e <= sum cap_e], keeping the
      objective bounded;
    - objective: maximize [sum x_e] (total dummy slack, the mirror of
      minimizing total forced buffer traffic).

    Safety: every run [R] of every undirected simple cycle starts at a
    cycle source [s] (two outgoing cycle edges, both in one component)
    and is a directed path, so
    [sum_R (t_e - 1) <= sum_R x_e <= D_s <= min_cap_out(s) - 1
     <= L(opp R) - 1] — the run-sum discipline rule FS303 checks, hence
    conservative with respect to the exact backend but never unsafe.
    The origin ([x = 0], thresholds all 1: the SDF strawman) is always
    feasible, so the interval LP cannot be infeasible. *)

open Fstream_graph

(** Dense two-phase primal simplex over {!Rational}, Bland's rule (so
    it terminates on degenerate bases). Exposed for unit tests and for
    callers with bespoke programs; the interval encoding above is
    {!intervals}. *)
module Simplex : sig
  type outcome =
    | Optimal of {
        objective : Rational.t;
        primal : Rational.t array;  (** one value per structural variable *)
        dual : Rational.t array;  (** shadow price per row, [>= 0] *)
      }
    | Unbounded
    | Infeasible of { farkas : Rational.t array }
        (** row multipliers [y >= 0] with [y^T A >= 0] componentwise
            and [y^T b < 0]: a certificate that [Ax <= b, x >= 0] is
            empty. Rows with positive weight are the conflicting
            constraints — the "dual witness" surfaced by lint. *)

  val maximize :
    objective:Rational.t array ->
    rows:(Rational.t array * Rational.t) array ->
    outcome
  (** [maximize ~objective ~rows] solves
      [max objective^T x  s.t.  a_i^T x <= b_i  for (a_i, b_i) in rows,
      x >= 0]. Negative right-hand sides are allowed (phase 1 runs
      automatically). Every coefficient array must have length
      [Array.length objective]. *)

  val solve_nonneg :
    ?hint:int array ->
    objective:Rational.t array ->
    rows:(Rational.t array * Rational.t) array ->
    unit ->
    (Rational.t array * int array * int * bool) option
  (** Warm-startable variant for programs whose right-hand sides are
      all non-negative (every interval program is: chain rows have
      [b = 0], branch rows [min_cap - 1 >= 0], the box row a capacity
      sum) — the slack basis is always primal-feasible, so no phase 1
      ever runs and the cold path replays {!maximize}'s phase 2
      pivot-for-pivot. [hint] is a proposed basic column per row
      ([-1] = keep the row's slack): the tableau is crashed onto it,
      then repaired by primal simplex if primal-feasible, by Bland
      dual simplex if dual-feasible, and otherwise re-solved cold from
      the slack basis. Returns
      [Some (primal, basis, pivots, used_warm)] — [pivots] counts
      every pivot made, {e including} those of a failed warm attempt
      that fell back cold — or [None] if the program is unbounded.
      @raise Invalid_argument on a length mismatch or a negative
      right-hand side. *)
end

type stats = {
  components : int;  (** biconnected components with at least 2 edges *)
  rows : int;  (** total simplex rows across all component programs *)
}

type state
(** Opaque per-component solver state — the optimum's interval values
    and final simplex basis, keyed by the graph's edge and node ids —
    carried from one {!resolve} call to the next for warm starts. *)

type resolve_stats = {
  rcomponents : int;  (** components solved or spliced this call *)
  rrows : int;  (** total rows, counting spliced components' programs *)
  rspliced : int;  (** components copied verbatim, zero pivots *)
  rwarm : int;  (** components re-solved from a translated basis *)
  rcold : int;  (** components solved from scratch (incl. fallbacks) *)
  rpivots : int;  (** simplex pivots, cumulative incl. failed warms *)
}

val resolve :
  ?warm:state ->
  ?edge_map:int option array ->
  ?node_map:int option array ->
  ?dirty:bool array ->
  Graph.t ->
  Interval.t array * resolve_stats * state
(** [resolve ?warm ?edge_map ?node_map ?dirty g] computes the same
    table as {!intervals} and additionally returns reusable solver
    state. With [warm] (the state of a previous solve of the graph
    this one was edited from), [edge_map] / [node_map] (old id ->
    surviving new id, as in {!Fstream_graph.Edit.delta}) and [dirty]
    (new edge ids whose records changed), each biconnected component
    of [g] is handled by the cheapest sound route: a component whose
    edges all survive unedited from exactly one old component is
    {e spliced} — previous optimum copied, no simplex at all; any
    other component with an identifiable ancestor is re-solved
    {e warm} from the ancestor's translated basis (falling back to a
    cold solve if the crash is neither primal- nor dual-feasible);
    components with no ancestor solve cold. Splicing is exact, not
    approximate: the component's program is syntactically identical
    to the old one's, so its optimum is the old optimum. Omitting all
    optional arguments is exactly {!intervals}.
    @raise Invalid_argument if [g] has a directed cycle. *)

val intervals : Graph.t -> Interval.t array * stats
(** The backend entry point: a safe-interval table for any connected
    DAG, one LP per biconnected component, bridges [Inf]. Total work is
    polynomial in nodes + edges. The table is valid for all three
    avoidance algorithms (it bounds the run sums themselves, not any
    per-algorithm refinement).
    @raise Invalid_argument if [g] has a directed cycle (the LP's
    demand chains presuppose acyclicity). *)

val min_buffers : Graph.t -> thresholds:int option array -> int array
(** The dimensioning direction: given a per-edge threshold table
    (entries as {!Interval.threshold}, [None] = never sends dummies),
    the smallest per-edge capacities — minimizing total buffer — under
    which the LP's sufficient condition accepts the table. Edges whose
    capacity the condition never consults get capacity 1. Demands
    across [None]-threshold edges do not propagate (such an edge never
    forces a dummy, so it cannot extend a demand chain).
    @raise Invalid_argument on a length mismatch or a directed cycle. *)

type witness = {
  wnode : Graph.node;  (** the branching node whose supply is exceeded *)
  wedges : Graph.edge list;  (** demand chain leaving [wnode] *)
  wdemand : int;  (** [sum (threshold - 1)] along the chain *)
  wsupply : int;  (** [min_cap_out (wnode) - 1] *)
}

val pp_witness : Format.formatter -> witness -> unit

val audit : Graph.t -> thresholds:int option array -> (unit, witness) result
(** Check a supplied threshold table against the LP polytope: feasible
    means the table satisfies the sufficient run-sum discipline
    everywhere. On failure the Farkas certificate of the infeasible
    program is decoded into a concrete witness — the demand chain and
    the branching node it overloads. Conservative: a witness does not
    prove the table deadlocks (the condition is sufficient, not
    necessary), which is why lint reports it below [Error] severity.
    @raise Invalid_argument on a length mismatch or a directed cycle. *)
