(* Arbitrary-precision naturals as little-endian limb arrays in base
   2^31: the product of two limbs plus carries stays below 2^63, so
   every intermediate fits a native OCaml int. The canonical zero is
   the empty array and no magnitude carries trailing zero limbs, which
   makes comparison a length check first. Division is plain binary
   long division (shift-subtract): quadratic in the bit length, but
   the LP tableaus this module serves keep magnitudes at a handful of
   limbs, where simplicity beats a Knuth algorithm D that is easy to
   get subtly wrong. *)

let base_bits = 31
let base = 1 lsl base_bits
let limb_mask = base - 1

type nat = int array

let nat_zero : nat = [||]
let nat_is_zero (a : nat) = Array.length a = 0

let nat_normalize (a : nat) : nat =
  let l = ref (Array.length a) in
  while !l > 0 && a.(!l - 1) = 0 do
    decr l
  done;
  if !l = Array.length a then a else Array.sub a 0 !l

let nat_of_int n =
  if n < 0 then invalid_arg "Rational: negative magnitude"
  else if n = 0 then nat_zero
  else if n < base then [| n |]
  else [| n land limb_mask; n lsr base_bits |]

(* Any value of <= 2 limbs is < 2^62 and fits an int exactly. *)
let nat_to_int_opt (a : nat) =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some ((a.(1) lsl base_bits) lor a.(0))
  | _ -> None

let nat_compare (a : nat) (b : nat) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let nat_add (a : nat) (b : nat) : nat =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let t =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- t land limb_mask;
    carry := t lsr base_bits
  done;
  r.(l) <- !carry;
  nat_normalize r

(* a - b, requiring a >= b *)
let nat_sub (a : nat) (b : nat) : nat =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let t = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if t < 0 then begin
      r.(i) <- t + base;
      borrow := 1
    end
    else begin
      r.(i) <- t;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Rational: nat_sub underflow";
  nat_normalize r

let nat_mul (a : nat) (b : nat) : nat =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then nat_zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land limb_mask;
          carry := t lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land limb_mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    nat_normalize r
  end

let nat_bits (a : nat) =
  let l = Array.length a in
  if l = 0 then 0
  else begin
    let top = a.(l - 1) in
    let w = ref 0 and n = ref top in
    while !n <> 0 do
      incr w;
      n := !n lsr 1
    done;
    ((l - 1) * base_bits) + !w
  end

let nat_bit (a : nat) i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

let nat_divmod (a : nat) (b : nat) : nat * nat =
  if nat_is_zero b then raise Division_by_zero;
  if nat_compare a b < 0 then (nat_zero, a)
  else begin
    let lb = Array.length b in
    let bits = nat_bits a in
    let q = Array.make (Array.length a) 0 in
    (* running remainder, always < 2b after the shift, so lb + 1 limbs *)
    let r = Array.make (lb + 1) 0 in
    let shl1_or bit =
      let carry = ref bit in
      for i = 0 to lb do
        let t = (r.(i) lsl 1) lor !carry in
        r.(i) <- t land limb_mask;
        carry := t lsr base_bits
      done
    in
    let r_ge_b () =
      if r.(lb) <> 0 then true
      else
        let rec go i =
          if i < 0 then true
          else if r.(i) <> b.(i) then r.(i) > b.(i)
          else go (i - 1)
        in
        go (lb - 1)
    in
    let r_sub_b () =
      let borrow = ref 0 in
      for i = 0 to lb - 1 do
        let t = r.(i) - b.(i) - !borrow in
        if t < 0 then begin
          r.(i) <- t + base;
          borrow := 1
        end
        else begin
          r.(i) <- t;
          borrow := 0
        end
      done;
      r.(lb) <- r.(lb) - !borrow
    in
    for i = bits - 1 downto 0 do
      shl1_or (nat_bit a i);
      if r_ge_b () then begin
        r_sub_b ();
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (nat_normalize q, nat_normalize (Array.sub r 0 lb))
  end

let rec nat_gcd a b =
  if nat_is_zero b then a
  else
    let _, r = nat_divmod a b in
    nat_gcd b r

(* -------------------------------------------------------------- *)

type t = { neg : bool; num : nat; den : nat }
(* invariant: den > 0, gcd (num, den) = 1, num = 0 implies not neg and
   den = 1 *)

let make_norm neg num den =
  if nat_is_zero den then raise Division_by_zero;
  if nat_is_zero num then { neg = false; num = nat_zero; den = [| 1 |] }
  else begin
    let g = nat_gcd num den in
    let num = if nat_compare g [| 1 |] = 0 then num else fst (nat_divmod num g)
    and den =
      if nat_compare g [| 1 |] = 0 then den else fst (nat_divmod den g)
    in
    { neg; num; den }
  end

let zero = { neg = false; num = nat_zero; den = [| 1 |] }
let one = { neg = false; num = [| 1 |]; den = [| 1 |] }
let minus_one = { neg = true; num = [| 1 |]; den = [| 1 |] }

let of_int n =
  if n >= 0 then { neg = false; num = nat_of_int n; den = [| 1 |] }
  else if n = min_int then
    (* -min_int overflows; build from magnitude limbs directly *)
    make_norm true (nat_add (nat_of_int max_int) [| 1 |]) [| 1 |]
  else { neg = true; num = nat_of_int (-n); den = [| 1 |] }

let make num den =
  if den = 0 then raise Division_by_zero;
  let neg = num < 0 <> (den < 0) in
  let abs_nat n =
    if n = min_int then nat_add (nat_of_int max_int) [| 1 |]
    else nat_of_int (Stdlib.abs n)
  in
  make_norm neg (abs_nat num) (abs_nat den)

let is_zero t = nat_is_zero t.num
let sign t = if nat_is_zero t.num then 0 else if t.neg then -1 else 1
let neg t = if nat_is_zero t.num then t else { t with neg = not t.neg }
let abs t = { t with neg = false }

(* signed magnitude addition on num * den cross products *)
let add a b =
  let ad = nat_mul a.num b.den and bc = nat_mul b.num a.den in
  let den = nat_mul a.den b.den in
  if a.neg = b.neg then make_norm a.neg (nat_add ad bc) den
  else begin
    let c = nat_compare ad bc in
    if c = 0 then zero
    else if c > 0 then make_norm a.neg (nat_sub ad bc) den
    else make_norm b.neg (nat_sub bc ad) den
  end

let sub a b = add a (neg b)
let mul a b =
  if nat_is_zero a.num || nat_is_zero b.num then zero
  else
    make_norm (a.neg <> b.neg) (nat_mul a.num b.num) (nat_mul a.den b.den)

let div a b =
  if nat_is_zero b.num then raise Division_by_zero;
  if nat_is_zero a.num then zero
  else make_norm (a.neg <> b.neg) (nat_mul a.num b.den) (nat_mul a.den b.num)

let compare a b = sign (sub a b)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t =
  let q, r = nat_divmod t.num t.den in
  let q =
    if t.neg && not (nat_is_zero r) then nat_add q [| 1 |] else q
  in
  match nat_to_int_opt q with
  | Some n -> if t.neg then -n else n
  | None -> failwith "Rational.floor: result exceeds int range"

let ceil t = -floor (neg t)

let to_int_pair t =
  match (nat_to_int_opt t.num, nat_to_int_opt t.den) with
  | Some n, Some d -> Some ((if t.neg then -n else n), d)
  | _ -> None

let nat_to_float (a : nat) =
  Array.fold_right
    (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb)
    a 0.

let to_float t =
  let f = nat_to_float t.num /. nat_to_float t.den in
  if t.neg then -.f else f

let nat_to_string (a : nat) =
  if nat_is_zero a then "0"
  else begin
    let buf = Buffer.create 16 in
    let ten = [| 10 |] in
    let rec go a =
      if not (nat_is_zero a) then begin
        let q, r = nat_divmod a ten in
        Buffer.add_char buf
          (Char.chr (Char.code '0' + if nat_is_zero r then 0 else r.(0)));
        go q
      end
    in
    go a;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i ->
        s.[String.length s - 1 - i])
  end

let to_string t =
  let sgn = if t.neg then "-" else "" in
  if nat_compare t.den [| 1 |] = 0 then sgn ^ nat_to_string t.num
  else sgn ^ nat_to_string t.num ^ "/" ^ nat_to_string t.den

let pp ppf t = Format.pp_print_string ppf (to_string t)
