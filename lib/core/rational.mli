(** Exact rational arithmetic for the LP backend.

    Simplex pivoting multiplies and divides tableau entries; floats
    would silently lose the exactness the safety argument needs, and
    the repo is dependency-free (no zarith). Numerator and denominator
    are arbitrary-precision naturals built on plain [int array] limbs,
    so intermediate pivot values can grow past 63 bits without
    overflow. Values are kept normalized: [gcd (num, den) = 1],
    [den > 0], and zero is the unique [0/1]. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val make : int -> int -> t
(** [make num den] is the rational [num / den].
    @raise Division_by_zero if [den = 0]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val neg : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool

val floor : t -> int
(** Greatest integer [<= t].
    @raise Failure if the result does not fit in an OCaml [int]. *)

val ceil : t -> int
(** Least integer [>= t].
    @raise Failure if the result does not fit in an OCaml [int]. *)

val to_int_pair : t -> (int * int) option
(** [(num, den)] in lowest terms with [den > 0], when both fit in an
    OCaml [int]; [None] once either has outgrown 62 bits. *)

val to_float : t -> float
(** Lossy, for reporting only. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
