open Fstream_graph

let scale_caps g c =
  if c < 1 then invalid_arg "Sizing.scale_caps: factor < 1";
  Graph.map_caps g (fun e -> e.cap * c)

let min_uniform_scale g algorithm ~target =
  if target < 1 then Error "target interval must be positive"
  else
    match Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } algorithm g with
    | Error e -> Error (Compiler.error_to_string e)
    | Ok plan ->
      let tightest =
        Array.fold_left Interval.min Interval.inf plan.intervals
      in
      (match tightest with
      | Interval.Inf -> Ok 1
      | Interval.Fin { num; den } ->
        (* least c with c * num/den >= target *)
        Ok (max 1 (((target * den) + num - 1) / num)))
