open Fstream_spdag

(* The context under which a subtree's values were computed; see the
   interface comment for the recurrences these mirror. Both variants
   have canonical representations (the non-propagation list is ordered
   by enclosing-parallel depth, innermost first), so structural
   equality of keys is exactly "same values below". *)
type ctx = P of Interval.t | N of (int * int) list

type memo = (int * ctx, unit) Hashtbl.t

let memo_create () : memo = Hashtbl.create 256

type algo = Prop | Nonprop | Relay

let update algo ~(prev : memo) ~(next : memo) ivals (tree : Sp_tree.t) =
  let recomputed = ref 0 and skipped = ref 0 in
  let visit (t : Sp_tree.t) key descend =
    if Hashtbl.mem prev key then begin
      skipped := !skipped + t.n_edges;
      if not (Hashtbl.mem next key) then Hashtbl.add next key ()
    end
    else begin
      if not (Hashtbl.mem next key) then Hashtbl.add next key ();
      descend ()
    end
  in
  (match algo with
  | Prop ->
    let rec go (t : Sp_tree.t) v =
      visit t (t.uid, P v) (fun () ->
          match t.shape with
          | Leaf e ->
            ivals.(e.id) <- v;
            incr recomputed
          | Series (a, b) ->
            go a v;
            go b Interval.inf
          | Parallel (a, b) ->
            go a (Interval.min v (Interval.of_int b.l));
            go b (Interval.min v (Interval.of_int a.l)))
    in
    go tree Interval.inf
  | Nonprop | Relay ->
    let value =
      match algo with
      | Relay -> fun l _extra -> Interval.of_int l
      | _ -> fun l extra -> Interval.ratio l (extra + 1)
    in
    let rec go (t : Sp_tree.t) ctx =
      visit t (t.uid, N ctx) (fun () ->
          match t.shape with
          | Leaf e ->
            ivals.(e.id) <-
              List.fold_left
                (fun acc (l, extra) -> Interval.min acc (value l extra))
                Interval.inf ctx;
            incr recomputed
          | Series (a, b) ->
            (* hops of the sibling half extend every enclosing
               parallel's opposing-path hop count *)
            go a (List.map (fun (l, extra) -> (l, extra + b.h)) ctx);
            go b (List.map (fun (l, extra) -> (l, extra + a.h)) ctx)
          | Parallel (a, b) ->
            go a ((b.l, 0) :: ctx);
            go b ((a.l, 0) :: ctx))
    in
    go tree []);
  (!recomputed, !skipped)
