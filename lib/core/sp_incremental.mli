(** Memoized SP interval updates for incremental recompilation.

    The per-edge interval value computed by {!Sp_prop.update} /
    {!Sp_nonprop.update} / {!Sp_nonprop.update_relay} is a pure
    function of the edge's leaf record and of a small {e context}
    accumulated on the path from the SP block's root down to the leaf:

    - propagation: a single interval — the tightest sibling-[L] bound
      seen so far ([Series] passes it to its first child and resets
      the second to [Inf]; [Parallel] meets it with the sibling's
      [L]);
    - non-propagation / relay: a list of [(l, extra)] pairs, one per
      enclosing [Parallel] (the sibling branch's [L] and the hop
      excess accumulated across [Series] nodes below that parallel);
      the leaf value is the min of [ratio l (extra + 1)] (relay:
      [of_int l]) over the list.

    Visiting each leaf exactly once with its context assigns the same
    value the classic updates accumulate over many visits — that
    equivalence is property-checked bit-for-bit by the differential
    suite in [test/test_reconfigure.ml].

    Because the value is a function of (subtree, context) alone, a
    subtree shared with the previous compile (same
    {!Fstream_spdag.Sp_tree.uid}, via a persisted
    {!Fstream_spdag.Sp_tree.Builder}) reached under the same context
    can be skipped wholesale — provided the caller pre-loaded the
    previous table's values for the subtree's edges at their (stable)
    ids. The memo is strictly per-epoch: entries recorded while
    computing table [N] justify skips only while computing table
    [N+1] from a pre-copy of table [N]; anything older may disagree
    with what the array holds. *)

open Fstream_spdag

type memo

val memo_create : unit -> memo

type algo = Prop | Nonprop | Relay

val update :
  algo -> prev:memo -> next:memo -> Interval.t array -> Sp_tree.t -> int * int
(** [update algo ~prev ~next ivals tree] assigns the interval of every
    leaf under [tree] into [ivals], skipping any subtree whose
    [(uid, context)] is in [prev] (its edges' values must already be
    in [ivals], see above), and records every subtree visited or
    skipped into [next]. Returns [(recomputed, skipped)] leaf counts.
    With [prev] empty this is a straight re-derivation of the classic
    update that additionally populates [next]. *)
