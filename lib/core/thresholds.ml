open Fstream_graph

type t = { fp : int; table : int option array; ep : int }

(* A 62-bit polynomial rolling hash: collisions are astronomically
   unlikely for distinct topologies, and any collision only weakens an
   error check, never soundness of a correctly-used table. *)
let mask = (1 lsl 62) - 1

let mix h x = (((h * 1000003) lxor x) + 0x9e3779b9) land mask

let graph_fingerprint g =
  let h = mix 0 (Graph.num_nodes g) in
  let h = mix h (Graph.num_edges g) in
  Graph.fold_edges g ~init:h ~f:(fun h (e : Graph.edge) ->
      mix (mix (mix (mix h e.id) e.src) e.dst) e.cap)

let of_array g table =
  if Array.length table <> Graph.num_edges g then
    invalid_arg "Thresholds.of_array: length does not match num_edges";
  Array.iter
    (function
      | Some k when k < 1 -> invalid_arg "Thresholds.of_array: threshold < 1"
      | _ -> ())
    table;
  { fp = graph_fingerprint g; table = Array.copy table; ep = 0 }

let epoch t = t.ep
let with_epoch t ep = { t with ep }

let get t i =
  if i < 0 || i >= Array.length t.table then
    invalid_arg "Thresholds.get: edge id out of range";
  t.table.(i)

let length t = Array.length t.table
let to_array t = Array.copy t.table
let compatible t g = t.fp = graph_fingerprint g
let fingerprint t = t.fp

let check t g =
  if not (compatible t g) then
    invalid_arg
      "Thresholds: table was computed for a different graph (fingerprint \
       mismatch)"

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  Array.iteri
    (fun i v ->
      Format.fprintf ppf "%se%d:%s"
        (if i = 0 then "" else " ")
        i
        (match v with None -> "-" | Some k -> string_of_int k))
    t.table;
  Format.fprintf ppf "}@]"
