(** Typed per-channel dummy-threshold tables.

    The runtime wrappers used to take a positional [int option array],
    which made it possible to compute a table for one graph and silently
    apply it to another — the thresholds would line up with the wrong
    edges and the soundness guarantee would evaporate without any error.
    A [Thresholds.t] closes that hole: it is abstract, indexed by edge
    id, and carries a structural fingerprint of the graph it was
    computed for. The engines check the fingerprint at the start of
    every run and refuse mismatched tables.

    Produce tables with {!Compiler.send_thresholds},
    {!Compiler.propagation_thresholds} or {!Compiler.sdf_thresholds};
    {!of_array} is the escape hatch for hand-built tables (tests,
    experiments).

    The same hole would reopen with kernel fusion — a fused topology
    renumbers edges, so an original-graph table applied to the fused
    graph (or vice versa) would be positionally wrong. It stays closed
    for free: tables for a fused run are built against
    [Fusion.graph] and the derived intervals, so their fingerprint
    binds them to the fused topology and the engines reject any
    cross-application (checked in [test/test_fusion.ml]). *)

open Fstream_graph

type t

val of_array : Graph.t -> int option array -> t
(** Bind a raw table to the graph it is meant for. [None] means the
    channel never originates dummies; [Some k] means a dummy is due
    once the channel has gone [k] sequence numbers without a message.
    @raise Invalid_argument if the array length is not [num_edges], or
    some threshold is [< 1]. *)

val get : t -> int -> int option
(** [get t edge_id]. @raise Invalid_argument if out of range. *)

val length : t -> int

val to_array : t -> int option array
(** A fresh copy of the raw table (the runtime boundary). *)

val compatible : t -> Graph.t -> bool
(** Whether the table was computed for (a graph structurally identical
    to) this graph. *)

val check : t -> Graph.t -> unit
(** @raise Invalid_argument when not {!compatible} — the error the
    engines raise on a table/graph mix-up. *)

val graph_fingerprint : Graph.t -> int
(** Structural fingerprint over node count and every edge's
    [(id, src, dst, cap)] — capacities included, since thresholds are
    functions of buffer sizes. *)

val fingerprint : t -> int

val epoch : t -> int
(** Reconfiguration epoch tag, [0] for a freshly built table. Purely
    observational — the serving layer stamps each reconfigured
    tenant's table with its epoch so reports and tests can tell which
    generation of the topology a session ran under; no engine
    behaviour depends on it. *)

val with_epoch : t -> int -> t
(** The same table tagged with a different epoch (shares the
    underlying array). *)

val pp : Format.formatter -> t -> unit
