(* Iterative Hopcroft-Tarjan biconnected components on the undirected
   view of the multigraph. Iterative because benchmark graphs reach tens
   of thousands of nodes and a long pipeline would otherwise recurse that
   deep. Parallel edges are distinct edges, so a multi-edge forms a
   2-cycle and biconnects its endpoints; the only edge excluded when
   scanning a vertex is the specific tree edge used to enter it. *)

let biconnected_components g =
  let n = Graph.num_nodes g in
  let inc =
    Array.init n (fun v -> Array.of_list (Graph.incident_edges g v))
  in
  let disc = Array.make n (-1) and low = Array.make n 0 in
  let time = ref 0 in
  let estack : Graph.edge list ref = ref [] in
  let comps = ref [] in
  let by_id (a : Graph.edge) (b : Graph.edge) = compare a.id b.id in
  for root = 0 to n - 1 do
    if disc.(root) = -1 then begin
      let stack = Stack.create () in
      disc.(root) <- !time;
      low.(root) <- !time;
      incr time;
      Stack.push (root, -1, ref 0) stack;
      while not (Stack.is_empty stack) do
        let v, parent_edge, idx = Stack.top stack in
        if !idx < Array.length inc.(v) then begin
          let e = inc.(v).(!idx) in
          incr idx;
          if e.id <> parent_edge then begin
            let w = Graph.other_endpoint e v in
            if disc.(w) = -1 then begin
              estack := e :: !estack;
              disc.(w) <- !time;
              low.(w) <- !time;
              incr time;
              Stack.push (w, e.id, ref 0) stack
            end
            else if disc.(w) < disc.(v) then begin
              (* Back edge; pushed only from the deeper endpoint so each
                 non-tree edge enters the stack exactly once. *)
              estack := e :: !estack;
              if disc.(w) < low.(v) then low.(v) <- disc.(w)
            end
          end
        end
        else begin
          ignore (Stack.pop stack);
          match Stack.top_opt stack with
          | None -> ()
          | Some (u, _, _) ->
            if low.(v) < low.(u) then low.(u) <- low.(v);
            if low.(v) >= disc.(u) then begin
              (* v's subtree plus edge u-v is a complete component. *)
              let rec pop acc =
                match !estack with
                | [] -> acc
                | e :: rest ->
                  estack := rest;
                  if e.id = parent_edge then e :: acc else pop (e :: acc)
              in
              comps := List.sort by_id (pop []) :: !comps
            end
        end
      done
    end
  done;
  !comps

let bridges g =
  let b = Array.make (Graph.num_edges g) false in
  List.iter
    (fun comp ->
      match comp with
      | [ (e : Graph.edge) ] -> b.(e.id) <- true
      | _ -> ())
    (biconnected_components g);
  b

let component_nodes comp =
  List.sort_uniq compare
    (List.concat_map (fun (e : Graph.edge) -> [ e.src; e.dst ]) comp)

let articulation_points g =
  let count = Array.make (Graph.num_nodes g) 0 in
  List.iter
    (fun comp ->
      List.iter (fun v -> count.(v) <- count.(v) + 1) (component_nodes comp))
    (biconnected_components g);
  List.filter (fun v -> count.(v) >= 2) (List.init (Graph.num_nodes g) Fun.id)

let serial_blocks g =
  match Topo.is_two_terminal g with
  | None -> invalid_arg "Articulation.serial_blocks: not a two-terminal DAG"
  | Some (x, y) ->
    let rank = Topo.rank g in
    let blocks =
      List.map
        (fun comp ->
          let nodes = component_nodes comp in
          let by_rank a b = compare rank.(a) rank.(b) in
          let sorted = List.sort by_rank nodes in
          match (sorted, List.rev sorted) with
          | bsrc :: _, bsnk :: _ -> (bsrc, bsnk, comp)
          | _ -> assert false)
        (biconnected_components g)
    in
    let ordered =
      List.sort (fun (a, _, _) (b, _, _) -> compare rank.(a) rank.(b)) blocks
    in
    (* A two-terminal DAG's block-cut tree is necessarily a path from the
       source's block to the sink's block; check the chain as a sanity
       guard against malformed inputs. *)
    let rec check expected = function
      | [] -> if expected <> y then invalid_arg "serial_blocks: broken chain"
      | (bsrc, bsnk, _) :: rest ->
        if bsrc <> expected then invalid_arg "serial_blocks: broken chain";
        check bsnk rest
    in
    check x ordered;
    ordered
