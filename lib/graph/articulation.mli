(** Articulation points and biconnected components of the underlying
    undirected multigraph.

    The CS4 decomposition (Theorem V.7) splits a two-terminal DAG at its
    articulation points into serially-composed blocks, each of which must
    be an SP-DAG or an SP-ladder. Biconnected components give exactly
    those blocks. Parallel edges are handled as genuine 2-cycles: the
    endpoints of a multi-edge are biconnected. *)

val articulation_points : Graph.t -> Graph.node list
(** Ascending list of cut vertices of the undirected multigraph.
    Assumes the graph is connected. *)

val biconnected_components : Graph.t -> Graph.edge list list
(** Partition of the edges into biconnected components (Hopcroft–Tarjan).
    Components are listed in no particular order; edges within a
    component are in increasing id order. Assumes connectivity. *)

val bridges : Graph.t -> bool array
(** [bridges g] is a per-edge-id array marking the bridges of the
    underlying undirected multigraph: edges whose removal disconnects
    their endpoints, i.e. edges lying on no undirected cycle. An edge is
    a bridge exactly when its biconnected component is a singleton
    (parallel edges form a 2-cycle, so neither copy is a bridge).
    Assumes connectivity, like {!biconnected_components}. *)

val serial_blocks : Graph.t -> (Graph.node * Graph.node * Graph.edge list) list
(** For a two-terminal DAG [g] with source [x] and sink [y]:
    the biconnected blocks ordered along the source-to-sink chain, each
    as [(block_source, block_sink, edges)], such that [g] is the serial
    composition of the blocks: the first block's source is [x], each
    block's sink is the next block's source, and the last sink is [y].
    @raise Invalid_argument if [g] is not two-terminal or a block is not
    itself two-terminal between consecutive cut vertices (cannot happen
    for DAGs: every biconnected block of a two-terminal DAG is itself
    two-terminal). *)
