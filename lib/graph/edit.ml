type op =
  | Resize of { edge : int; cap : int }
  | Add_edge of { src : int; dst : int; cap : int }
  | Remove_edge of { edge : int }
  | Add_stage of { edge : int; cap_in : int; cap_out : int }
  | Remove_stage of { node : int; cap : int option }

type delta = {
  base : Graph.t;
  graph : Graph.t;
  edge_map : int option array;
  node_map : int option array;
  dirty : bool array;
}

(* Working state while the script runs: the current edge list in id
   order, each entry remembering which base edge it descends from
   unchanged ([origin], kept through Resize since the edge's identity
   survives even though its value must not), and the current node
   count with each current node's base provenance. *)
type entry = {
  origin : int option;
  esrc : int;
  edst : int;
  ecap : int;
  edirty : bool;
}

type st = {
  mutable entries : entry array;
  mutable nnodes : int;
  mutable node_of : int option array; (* current node -> base node *)
}

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let check_edge st ~op e =
  if e < 0 || e >= Array.length st.entries then
    errf "%s: edge e%d out of range (graph has %d edges)" op e
      (Array.length st.entries)
  else Ok ()

let check_node st ~op v =
  if v < 0 || v >= st.nnodes then
    errf "%s: node %d out of range (graph has %d nodes)" op v st.nnodes
  else Ok ()

let check_cap ~op c =
  if c < 1 then errf "%s: capacity %d < 1" op c else Ok ()

let ( let* ) = Result.bind

let fresh_node st =
  let v = st.nnodes in
  st.nnodes <- v + 1;
  st.node_of <- Array.append st.node_of [| None |];
  v

let apply_op st = function
  | Resize { edge; cap } ->
    let* () = check_edge st ~op:"resize" edge in
    let* () = check_cap ~op:"resize" cap in
    let e = st.entries.(edge) in
    st.entries.(edge) <- { e with ecap = cap; edirty = true };
    Ok ()
  | Add_edge { src; dst; cap } ->
    let* () = check_node st ~op:"add-edge" src in
    let* () = check_node st ~op:"add-edge" dst in
    let* () = check_cap ~op:"add-edge" cap in
    if src = dst then errf "add-edge: self-loop at node %d" src
    else begin
      st.entries <-
        Array.append st.entries
          [| { origin = None; esrc = src; edst = dst; ecap = cap; edirty = true } |];
      Ok ()
    end
  | Remove_edge { edge } ->
    let* () = check_edge st ~op:"remove-edge" edge in
    st.entries <-
      Array.of_list
        (List.filteri (fun i _ -> i <> edge) (Array.to_list st.entries));
    Ok ()
  | Add_stage { edge; cap_in; cap_out } ->
    let* () = check_edge st ~op:"add-stage" edge in
    let* () = check_cap ~op:"add-stage" cap_in in
    let* () = check_cap ~op:"add-stage" cap_out in
    let e = st.entries.(edge) in
    let v = fresh_node st in
    st.entries.(edge) <-
      { origin = None; esrc = e.esrc; edst = v; ecap = cap_in; edirty = true };
    st.entries <-
      Array.append st.entries
        [| { origin = None; esrc = v; edst = e.edst; ecap = cap_out; edirty = true } |];
    Ok ()
  | Remove_stage { node; cap } ->
    let* () = check_node st ~op:"remove-stage" node in
    let ins = ref [] and outs = ref [] in
    Array.iteri
      (fun i e ->
        if e.edst = node then ins := i :: !ins;
        if e.esrc = node then outs := i :: !outs)
      st.entries;
    (match (!ins, !outs) with
    | [ i ], [ o ] ->
      let ein = st.entries.(i) and eout = st.entries.(o) in
      if ein.esrc = eout.edst then
        errf "remove-stage: splicing node %d would create a self-loop at %d"
          node ein.esrc
      else begin
        let cap =
          match cap with Some c -> c | None -> min ein.ecap eout.ecap
        in
        let* () = check_cap ~op:"remove-stage" cap in
        let spliced =
          {
            origin = None;
            esrc = ein.esrc;
            edst = eout.edst;
            ecap = cap;
            edirty = true;
          }
        in
        st.entries.(i) <- spliced;
        st.entries <-
          Array.of_list
            (List.filteri (fun j _ -> j <> o) (Array.to_list st.entries));
        (* drop the node; higher node ids shift down *)
        let renum v = if v > node then v - 1 else v in
        st.entries <-
          Array.map
            (fun e -> { e with esrc = renum e.esrc; edst = renum e.edst })
            st.entries;
        st.node_of <-
          Array.of_list
            (List.filteri (fun v _ -> v <> node) (Array.to_list st.node_of));
        st.nnodes <- st.nnodes - 1;
        Ok ()
      end
    | ins, outs ->
      errf
        "remove-stage: node %d has %d in-edge%s and %d out-edge%s (need \
         exactly one of each)"
        node (List.length ins)
        (if List.length ins = 1 then "" else "s")
        (List.length outs)
        (if List.length outs = 1 then "" else "s"))

let apply base ops =
  let st =
    {
      entries =
        Array.map
          (fun (e : Graph.edge) ->
            {
              origin = Some e.id;
              esrc = e.src;
              edst = e.dst;
              ecap = e.cap;
              edirty = false;
            })
          (Array.of_list (Graph.edges base));
      nnodes = Graph.num_nodes base;
      node_of = Array.init (Graph.num_nodes base) (fun v -> Some v);
    }
  in
  let rec run = function
    | [] -> Ok ()
    | op :: rest ->
      let* () = apply_op st op in
      run rest
  in
  let* () = run ops in
  let graph =
    Graph.make ~nodes:st.nnodes
      (Array.to_list
         (Array.map (fun e -> (e.esrc, e.edst, e.ecap)) st.entries))
  in
  let edge_map = Array.make (Graph.num_edges base) None in
  Array.iteri
    (fun i e ->
      match e.origin with Some b -> edge_map.(b) <- Some i | None -> ())
    st.entries;
  let node_map = Array.make (Graph.num_nodes base) None in
  Array.iteri
    (fun v b -> match b with Some b -> node_map.(b) <- Some v | None -> ())
    st.node_of;
  Ok { base; graph; edge_map; node_map; dirty = Array.map (fun e -> e.edirty) st.entries }

(* --- concrete syntax ---------------------------------------------- *)

let pp_op ppf = function
  | Resize { edge; cap } -> Format.fprintf ppf "resize e%d %d" edge cap
  | Add_edge { src; dst; cap } ->
    Format.fprintf ppf "add-edge n%d n%d %d" src dst cap
  | Remove_edge { edge } -> Format.fprintf ppf "remove-edge e%d" edge
  | Add_stage { edge; cap_in; cap_out } ->
    Format.fprintf ppf "add-stage e%d %d %d" edge cap_in cap_out
  | Remove_stage { node; cap } ->
    Format.fprintf ppf "remove-stage n%d%s" node
      (match cap with None -> "" | Some c -> " " ^ string_of_int c)

let parse_id word =
  let body =
    if String.length word > 1 && (word.[0] = 'e' || word.[0] = 'n') then
      String.sub word 1 (String.length word - 1)
    else word
  in
  int_of_string_opt body

let parse_one text =
  let words =
    String.split_on_char ' ' (String.trim text)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  let id ~what w =
    match parse_id w with
    | Some v -> Ok v
    | None -> errf "%s: expected an id, got %S" what w
  in
  let int ~what w =
    match int_of_string_opt w with
    | Some v -> Ok v
    | None -> errf "%s: expected an integer, got %S" what w
  in
  match words with
  | [ "resize"; e; c ] ->
    let* edge = id ~what:"resize" e in
    let* cap = int ~what:"resize" c in
    Ok (Resize { edge; cap })
  | [ "add-edge"; s; d; c ] ->
    let* src = id ~what:"add-edge" s in
    let* dst = id ~what:"add-edge" d in
    let* cap = int ~what:"add-edge" c in
    Ok (Add_edge { src; dst; cap })
  | [ "remove-edge"; e ] ->
    let* edge = id ~what:"remove-edge" e in
    Ok (Remove_edge { edge })
  | [ "add-stage"; e; ci; co ] ->
    let* edge = id ~what:"add-stage" e in
    let* cap_in = int ~what:"add-stage" ci in
    let* cap_out = int ~what:"add-stage" co in
    Ok (Add_stage { edge; cap_in; cap_out })
  | [ "remove-stage"; v ] ->
    let* node = id ~what:"remove-stage" v in
    Ok (Remove_stage { node; cap = None })
  | [ "remove-stage"; v; c ] ->
    let* node = id ~what:"remove-stage" v in
    let* cap = int ~what:"remove-stage" c in
    Ok (Remove_stage { node; cap = Some cap })
  | [] -> Error "empty edit op"
  | verb :: _ -> errf "unknown or malformed edit op %S" verb

let parse_ops text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | piece :: rest ->
      if String.trim piece = "" then go acc rest
      else
        let* op = parse_one piece in
        go (op :: acc) rest
  in
  go [] (String.split_on_char ';' text)
