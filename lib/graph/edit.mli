(** Topology edit scripts.

    A reconfiguration is a list of {!op}s applied in order; each op
    names edges and nodes by the ids of the graph {e as it stands at
    that point in the script} (ids are dense, so removals renumber —
    the returned maps account for it). The result is a {!delta}: the
    edited graph plus the provenance every incremental consumer needs —
    which new edge a surviving base edge became ([edge_map]), which new
    node a surviving base node became ([node_map]), and which new edges
    were added or resized ([dirty]) and therefore cannot inherit any
    value computed for the base graph.

    Id stability is deliberate where it is cheap, because the
    incremental recompiler's structural sharing keys on edge records:
    {!Resize} keeps the edge in place, {!Add_edge} appends, and
    {!Add_stage} splits an edge [u -> w] by replacing it {e in place}
    with [u -> v] and appending [v -> w] — so no surviving edge or node
    is ever renumbered by these three. Only the removals shift ids. *)

type op =
  | Resize of { edge : int; cap : int }
      (** set the capacity of [edge] to [cap] *)
  | Add_edge of { src : int; dst : int; cap : int }
      (** append a fresh edge (takes the next dense id) *)
  | Remove_edge of { edge : int }
      (** delete [edge]; every higher edge id shifts down by one *)
  | Add_stage of { edge : int; cap_in : int; cap_out : int }
      (** split [edge = u -> w]: a fresh node [v] (the next dense node
          id) with [u -> v] (capacity [cap_in]) replacing [edge] in
          place and [v -> w] (capacity [cap_out]) appended *)
  | Remove_stage of { node : int; cap : int option }
      (** splice out a node with exactly one in-edge [u -> node] and
          one out-edge [node -> w]: both edges are removed and a single
          dirty edge [u -> w] takes the in-edge's position, with
          capacity [cap] (default: the min of the two). Higher node
          ids shift down by one. *)

type delta = {
  base : Graph.t;  (** the graph the script was applied to *)
  graph : Graph.t;  (** the edited graph *)
  edge_map : int option array;
      (** indexed by base edge id: the id the edge survives as in
          [graph], or [None] if an op removed or replaced it. A
          surviving edge has the same endpoints (up to node
          renumbering); its capacity changed iff its new id is
          [dirty]. *)
  node_map : int option array;
      (** indexed by base node id: its id in [graph], or [None] *)
  dirty : bool array;
      (** indexed by [graph] edge id: the edge was added or resized by
          the script (so values computed for the base graph must not be
          spliced onto it) *)
}

val apply : Graph.t -> op list -> (delta, string) result
(** Apply the ops in order. [Error] describes the first invalid op
    (id out of range, capacity < 1, self-loop, or a {!Remove_stage}
    target whose degree is not 1/1); the graph is never partially
    edited — any error discards the whole script. *)

val parse_ops : string -> (op list, string) result
(** Parse a [;]-separated op list, e.g.
    ["resize e3 5; add-stage e0 2 2; remove-edge e7"]. Each op is
    whitespace-separated tokens; edge and node ids may be written bare
    or with an [e]/[n] prefix. Accepted forms: [resize E CAP],
    [add-edge SRC DST CAP], [remove-edge E], [add-stage E CIN COUT],
    [remove-stage N [CAP]]. *)

val pp_op : Format.formatter -> op -> unit
(** Prints in the concrete syntax {!parse_ops} accepts. *)
