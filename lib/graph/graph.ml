type node = int

type edge = { id : int; src : node; dst : node; cap : int }

type t = {
  n : int;
  edge_arr : edge array;
  out_adj : edge list array;  (* per node, increasing id *)
  in_adj : edge list array;
  out_ids : int array array;  (* per node, edge ids, increasing *)
  in_ids : int array array;
}

let make ~nodes spec =
  if nodes < 1 then invalid_arg "Graph.make: nodes < 1";
  let check_node v =
    if v < 0 || v >= nodes then
      invalid_arg (Printf.sprintf "Graph.make: node %d out of range" v)
  in
  let edge_arr =
    Array.of_list
      (List.mapi
         (fun id (src, dst, cap) ->
           check_node src;
           check_node dst;
           if src = dst then invalid_arg "Graph.make: self-loop";
           if cap < 1 then invalid_arg "Graph.make: cap < 1";
           { id; src; dst; cap })
         spec)
  in
  let out_adj = Array.make nodes [] and in_adj = Array.make nodes [] in
  (* Iterate in decreasing id order so cons builds increasing-id lists. *)
  for i = Array.length edge_arr - 1 downto 0 do
    let e = edge_arr.(i) in
    out_adj.(e.src) <- e :: out_adj.(e.src);
    in_adj.(e.dst) <- e :: in_adj.(e.dst)
  done;
  (* Flat int-array adjacency (edge ids, increasing) and the degree
     counts it implies, precomputed once so degree queries are O(1) and
     the runtime engines can walk a node's edges without traversing
     cons cells. *)
  let ids_of adj =
    Array.map
      (fun es -> Array.of_list (List.map (fun e -> e.id) es))
      adj
  in
  {
    n = nodes;
    edge_arr;
    out_adj;
    in_adj;
    out_ids = ids_of out_adj;
    in_ids = ids_of in_adj;
  }

let num_nodes g = g.n
let num_edges g = Array.length g.edge_arr
let size g = num_nodes g + num_edges g

let edge g id =
  if id < 0 || id >= Array.length g.edge_arr then
    invalid_arg (Printf.sprintf "Graph.edge: id %d out of range" id);
  g.edge_arr.(id)

let edges g = Array.to_list g.edge_arr
let out_edges g v = g.out_adj.(v)
let in_edges g v = g.in_adj.(v)
let out_edge_ids g v = g.out_ids.(v)
let in_edge_ids g v = g.in_ids.(v)
let out_degree g v = Array.length g.out_ids.(v)
let in_degree g v = Array.length g.in_ids.(v)

let incident_edges g v =
  List.merge (fun a b -> compare a.id b.id) g.out_adj.(v) g.in_adj.(v)

let sources g =
  List.filter (fun v -> in_degree g v = 0) (List.init g.n Fun.id)

let sinks g =
  List.filter (fun v -> out_degree g v = 0) (List.init g.n Fun.id)

let other_endpoint e v =
  if v = e.src then e.dst
  else if v = e.dst then e.src
  else invalid_arg "Graph.other_endpoint: node not an endpoint"

let parallel_edges g e =
  List.filter (fun e' -> e'.id <> e.id && e'.dst = e.dst) g.out_adj.(e.src)

let reverse g =
  make ~nodes:g.n
    (List.map (fun e -> (e.dst, e.src, e.cap)) (edges g))

let map_caps g f =
  make ~nodes:g.n (List.map (fun e -> (e.src, e.dst, f e)) (edges g))

let iter_nodes g f =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_edges g ~init ~f = Array.fold_left f init g.edge_arr

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges" g.n (num_edges g);
  Array.iter
    (fun e ->
      Format.fprintf ppf "@,  e%d: %d -> %d (cap %d)" e.id e.src e.dst e.cap)
    g.edge_arr;
  Format.fprintf ppf "@]"
