(** Directed multigraphs with buffered channels.

    This is the substrate shared by every other library in the
    reproduction: a streaming application is a directed acyclic multigraph
    whose nodes are compute kernels and whose edges are one-way FIFO
    channels with a finite buffer capacity (the paper's edge "length").

    Values of type {!t} are immutable once built; all analyses in
    {!Topo}, {!Dominators}, {!Articulation}, {!Paths} and {!Cycles} treat
    them read-only. Parallel edges (same endpoints) and any number of
    sources/sinks are allowed at this layer; the SP/CS4 layers impose
    their own restrictions. *)

type node = int
(** Nodes are dense identifiers [0 .. num_nodes - 1]. *)

type edge = private {
  id : int;  (** dense identifier [0 .. num_edges - 1] *)
  src : node;
  dst : node;
  cap : int;  (** channel buffer capacity, in messages; >= 1 *)
}

type t

val make : nodes:int -> (node * node * int) list -> t
(** [make ~nodes spec] builds a graph with [nodes] nodes and one edge per
    [(src, dst, cap)] triple, with edge ids assigned in list order.
    @raise Invalid_argument if an endpoint is out of range, [cap < 1],
    [nodes < 1], or an edge is a self-loop. *)

val num_nodes : t -> int
val num_edges : t -> int
val size : t -> int
(** [size g] is [num_nodes g + num_edges g], the paper's [|G|]. *)

val edge : t -> int -> edge
(** [edge g id] is the edge with identifier [id].
    @raise Invalid_argument if [id] is out of range. *)

val edges : t -> edge list
(** All edges in increasing id order. *)

val out_edges : t -> node -> edge list
val in_edges : t -> node -> edge list

val out_edge_ids : t -> node -> int array
val in_edge_ids : t -> node -> int array
(** Flat adjacency: the ids of a node's out/in edges in increasing
    order, precomputed at {!make}. The returned array is the graph's
    own (graphs are immutable) — callers must not mutate it. This is
    the zero-allocation view the runtime hot paths iterate. *)

val out_degree : t -> node -> int
val in_degree : t -> node -> int
(** O(1): degrees are precomputed at {!make}. *)

val incident_edges : t -> node -> edge list
(** Edges touching a node in either direction (undirected view). *)

val sources : t -> node list
(** Nodes with in-degree 0, ascending. *)

val sinks : t -> node list
(** Nodes with out-degree 0, ascending. *)

val other_endpoint : edge -> node -> node
(** [other_endpoint e v] is the endpoint of [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)

val parallel_edges : t -> edge -> edge list
(** Edges other than [e] with the same [src] and [dst] as [e]. *)

val reverse : t -> t
(** Same nodes and edge ids, every edge flipped. *)

val map_caps : t -> (edge -> int) -> t
(** Rebuild the graph with per-edge capacities given by the function. *)

val iter_nodes : t -> (node -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one edge per line, for debugging and the CLI. *)
