open Fstream_graph
open Fstream_spdag

type rung = {
  left_end : Graph.node;
  right_end : Graph.node;
  cross : Sp_tree.t;
  left_to_right : bool;
}

type t = {
  source : Graph.node;
  sink : Graph.node;
  left_nodes : Graph.node array;
  right_nodes : Graph.node array;
  left_segments : Sp_tree.t array;
  right_segments : Sp_tree.t array;
  rungs : rung array;
}

module Iset = Set.Make (Int)

(* Validating walk over the skeleton (see .mli). State: the current
   frontier vertex on each rail. Non-crossing guarantees the next
   cross-link is always incident to the frontier, so every step either
   consumes a rung at the frontier or advances a rail whose frontier
   vertex has no unconsumed cross-links left. *)
let of_core ~source ~sink core =
  let arr = Array.of_list core in
  let m = Array.length arr in
  let exception Reject of string in
  let reject msg = raise (Reject msg) in
  try
    if m < 5 then reject "too small to be a ladder";
    let inc : (Graph.node, Iset.t) Hashtbl.t = Hashtbl.create (2 * m) in
    let pair : (Graph.node * Graph.node, int) Hashtbl.t =
      Hashtbl.create (2 * m)
    in
    Array.iteri
      (fun i (e : Sp_recognize.super_edge) ->
        let add v =
          let s =
            Option.value ~default:Iset.empty (Hashtbl.find_opt inc v)
          in
          Hashtbl.replace inc v (Iset.add i s)
        in
        add e.s_src;
        add e.s_dst;
        let key = (min e.s_src e.s_dst, max e.s_src e.s_dst) in
        if Hashtbl.mem pair key then reject "parallel super-edges in core";
        Hashtbl.replace pair key i)
      arr;
    let get v = Option.value ~default:Iset.empty (Hashtbl.find_opt inc v) in
    let used = ref 0 in
    let use i =
      let e = arr.(i) in
      let del v = Hashtbl.replace inc v (Iset.remove i (get v)) in
      del e.s_src;
      del e.s_dst;
      incr used;
      e
    in
    let lefts = ref [] and rights = ref [] in
    let lsegs = ref [] and rsegs = ref [] in
    let rungs = ref [] in
    let visited = Hashtbl.create (2 * m) in
    let visit v =
      if Hashtbl.mem visited v then reject "rail revisits a vertex";
      Hashtbl.replace visited v ()
    in
    let take_rung l r =
      match Hashtbl.find_opt pair (min l r, max l r) with
      | None -> reject "missing cross-link at rail frontier"
      | Some i ->
        if not (Iset.mem i (get l)) then
          reject "cross-link already consumed";
        let e = use i in
        rungs :=
          {
            left_end = l;
            right_end = r;
            cross = e.s_tree;
            left_to_right = e.s_src = l;
          }
          :: !rungs
    in
    (* Advance a rail: its frontier's single unconsumed edge must leave
       the frontier along the rail. *)
    let advance v =
      match Iset.elements (get v) with
      | [ i ] ->
        let e = arr.(i) in
        if e.s_src <> v then reject "rail edge directed against the rail";
        ignore (use i);
        (e.s_dst, e.s_tree)
      | _ -> reject "rail frontier degree mismatch"
    in
    (* Terminal degrees: X has exactly its two rail heads, Y its two
       rail tails; cross-links never touch the terminals. *)
    let rail_head i =
      let e = arr.(i) in
      if e.Sp_recognize.s_src <> source then reject "edge into the source";
      let e = use i in
      (e.s_dst, e.s_tree)
    in
    let y_edges = Iset.elements (get sink) in
    (match y_edges with
    | [ _; _ ] ->
      if List.exists (fun i -> arr.(i).Sp_recognize.s_src = sink) y_edges
      then reject "edge out of the sink"
    | _ -> reject "sink degree is not 2");
    visit source;
    let (a, seg_a), (b, seg_b) =
      match Iset.elements (get source) with
      | [ i; j ] -> (rail_head i, rail_head j)
      | _ -> reject "source degree is not 2"
    in
    if a = sink || b = sink then reject "rail is trivial";
    visit a;
    visit b;
    lefts := [ a ];
    rights := [ b ];
    lsegs := [ seg_a ];
    rsegs := [ seg_b ];
    take_rung a b;
    let rec walk l r =
      let cl = Iset.cardinal (get l) and cr = Iset.cardinal (get r) in
      if cl >= 2 && cr >= 2 then reject "cross-links cross"
      else if cl = 0 || cr = 0 then reject "rail frontier exhausted"
      else if cl >= 2 then begin
        (* More rungs at l: the right rail advances to meet them. *)
        let r', seg = advance r in
        if r' = sink then reject "cross-links left dangling";
        if r' = l then reject "rails converge";
        visit r';
        rights := r' :: !rights;
        rsegs := seg :: !rsegs;
        take_rung l r';
        walk l r'
      end
      else if cr >= 2 then begin
        let l', seg = advance l in
        if l' = sink then reject "cross-links left dangling";
        if l' = r then reject "rails converge";
        visit l';
        lefts := l' :: !lefts;
        lsegs := seg :: !lsegs;
        take_rung l' r;
        walk l' r
      end
      else begin
        let l', seg_l = advance l and r', seg_r = advance r in
        if l' = sink && r' = sink then begin
          lsegs := seg_l :: !lsegs;
          rsegs := seg_r :: !rsegs;
          if !used <> m then reject "unreachable super-edges"
        end
        else if l' = sink || r' = sink then
          reject "rails reach the sink at different levels"
        else begin
          if l' = r' then reject "rails converge";
          visit l';
          visit r';
          lefts := l' :: !lefts;
          rights := r' :: !rights;
          lsegs := seg_l :: !lsegs;
          rsegs := seg_r :: !rsegs;
          take_rung l' r';
          walk l' r'
        end
      end
    in
    walk a b;
    Ok
      {
        source;
        sink;
        left_nodes = Array.of_list (List.rev !lefts);
        right_nodes = Array.of_list (List.rev !rights);
        left_segments = Array.of_list (List.rev !lsegs);
        right_segments = Array.of_list (List.rev !rsegs);
        rungs = Array.of_list (List.rev !rungs);
      }
  with Reject msg -> Error msg

let recognize_block ~nodes ~source ~sink edges =
  if edges = [] then Error "empty block"
  else
    match
      Sp_recognize.reduce ~nodes
        ~protect:(fun v -> v = source || v = sink)
        edges
    with
    | [ { s_src; s_dst; _ } ] when s_src = source && s_dst = sink ->
      Error "series-parallel"
    | core -> of_core ~source ~sink core

let num_rungs t = Array.length t.rungs

let constituents t =
  let tag prefix i tree = (Printf.sprintf "%s%d" prefix i, tree) in
  List.concat
    [
      List.mapi (tag "S") (Array.to_list t.left_segments);
      List.mapi (tag "D") (Array.to_list t.right_segments);
      List.mapi (fun i r -> tag "K" (i + 1) r.cross) (Array.to_list t.rungs);
    ]

let edges t =
  List.concat_map (fun (_, tree) -> Sp_tree.edges tree) (constituents t)

let refresh bld g t =
  let sp tree = Sp_tree.Builder.refresh bld g tree in
  {
    t with
    left_segments = Array.map sp t.left_segments;
    right_segments = Array.map sp t.right_segments;
    rungs = Array.map (fun r -> { r with cross = sp r.cross }) t.rungs;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>ladder: source %d, sink %d, %d rungs" t.source
    t.sink (num_rungs t);
  let sep ppf () = Format.pp_print_string ppf " " in
  Format.fprintf ppf "@,  left rail: %a"
    (Format.pp_print_list ~pp_sep:sep Format.pp_print_int)
    (Array.to_list t.left_nodes);
  Format.fprintf ppf "@,  right rail: %a"
    (Format.pp_print_list ~pp_sep:sep Format.pp_print_int)
    (Array.to_list t.right_nodes);
  Array.iter
    (fun r ->
      Format.fprintf ppf "@,  rung %d %s %d" r.left_end
        (if r.left_to_right then "->" else "<-")
        r.right_end)
    t.rungs;
  Format.fprintf ppf "@]"
