(** SP-ladders: recognition and decomposition into constituent SP-DAGs.

    An SP-ladder (§V) is a two-path outer cycle from source [X] to sink
    [Y], decorated with non-crossing chord graphs that are themselves
    SP-DAGs, at least one of which is a cross-link joining the interiors
    of the two paths. §VI decomposes a ladder into the skeleton of
    Fig. 6: rail segments [S_0..S_k] (left) and [D_0..D_k] (right) and
    cross-links [K_1..K_k], every constituent an SP-DAG.

    Recognition works on the stalled series-parallel reduction of the
    block ({!Fstream_spdag.Sp_recognize.reduce}): contracting every
    series-parallel substructure leaves exactly the Fig. 6 skeleton —
    rail vertices are cross-link attachment points and survive with
    degree >= 3, everything else folds into a rail segment or chord.
    A single ordered walk down both rails then validates the skeleton
    and orders the rungs; non-crossing makes the next rung always join
    the current rail frontier, so the walk is linear in the skeleton.

    The paper's indexing allows [u_i = u_(i+1)] (cross-links sharing an
    endpoint, making segment [S_i] trivial); here rail vertices are
    listed once and each may carry several consecutive rungs, with
    trivial segments reconstructed by the interval algorithms. *)

open Fstream_graph
open Fstream_spdag

type rung = {
  left_end : Graph.node;  (** skeleton vertex on the left rail *)
  right_end : Graph.node;
  cross : Sp_tree.t;  (** the cross-link SP-DAG [K_i] *)
  left_to_right : bool;  (** [true] if directed left rail -> right rail *)
}

type t = private {
  source : Graph.node;  (** X *)
  sink : Graph.node;  (** Y *)
  left_nodes : Graph.node array;  (** u-vertices, rail order, distinct *)
  right_nodes : Graph.node array;  (** v-vertices, rail order, distinct *)
  left_segments : Sp_tree.t array;
      (** [|left_nodes| + 1] segments: X->u_1, u_1->u_2, ..., u_p->Y *)
  right_segments : Sp_tree.t array;
  rungs : rung array;  (** >= 1, in ladder (top-to-bottom) order *)
}

val of_core :
  source:Graph.node ->
  sink:Graph.node ->
  Sp_recognize.super_edge list ->
  (t, string) result
(** Pattern-match a stalled reduction against the ladder skeleton. The
    error string names the violated structural condition (for
    diagnostics; any error means "not an SP-ladder"). *)

val recognize_block :
  nodes:int ->
  source:Graph.node ->
  sink:Graph.node ->
  Graph.edge list ->
  (t, string) result
(** Reduce the block, then {!of_core}. Fails with ["series-parallel"]
    if the block is SP rather than a ladder. *)

val edges : t -> Graph.edge list
(** All original edges across every constituent, in no particular
    order. *)

val num_rungs : t -> int

val refresh : Sp_tree.Builder.t -> Graph.t -> t -> t
(** Substitute the graph's current edge records (same ids, new
    capacities) into every constituent via
    {!Sp_tree.Builder.refresh}; the ladder skeleton — rails, rungs,
    attachment points — is unchanged. Only meaningful after an
    id-stable, structure-preserving edit. *)

val constituents : t -> (string * Sp_tree.t) list
(** Every constituent SP-DAG with a label ("S0", "D2", "K1", ...), for
    reporting and tests. *)

val pp : Format.formatter -> t -> unit
