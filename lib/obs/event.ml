type payload = Data | Dummy | Eos

type outcome = Completed | Deadlocked | Budget_exhausted

type t =
  | Round_started of { round : int }
  | Node_fired of {
      node : int;
      seq : int;
      got : int list;
      got_dummy : bool;
      sent : int list;
    }
  | Subnode_fired of { node : int; sub : int; seq : int }
  | Push of { edge : int; seq : int; payload : payload }
  | Pop of { edge : int; seq : int; payload : payload }
  | Dummy_emitted of { node : int; edge : int; seq : int }
  | Dummy_dropped of { edge : int; seq : int }
  | Blocked of { node : int; edge : int }
  | Eos of { node : int }
  | Wedge of { round : int }
  | Run_finished of { outcome : outcome }

let name = function
  | Round_started _ -> "Round_started"
  | Node_fired _ -> "Node_fired"
  | Subnode_fired _ -> "Subnode_fired"
  | Push _ -> "Push"
  | Pop _ -> "Pop"
  | Dummy_emitted _ -> "Dummy_emitted"
  | Dummy_dropped _ -> "Dummy_dropped"
  | Blocked _ -> "Blocked"
  | Eos _ -> "Eos"
  | Wedge _ -> "Wedge"
  | Run_finished _ -> "Run_finished"

let pp_payload ppf = function
  | Data -> Format.pp_print_string ppf "data"
  | Dummy -> Format.pp_print_string ppf "dummy"
  | Eos -> Format.pp_print_string ppf "eos"

let pp_outcome ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Deadlocked -> Format.pp_print_string ppf "DEADLOCKED"
  | Budget_exhausted -> Format.pp_print_string ppf "budget exhausted"

let pp_ids ppf ids =
  Format.fprintf ppf "[%s]" (String.concat "," (List.map string_of_int ids))

let pp ppf = function
  | Round_started { round } -> Format.fprintf ppf "round %d" round
  | Node_fired { node; seq; got; got_dummy; sent } ->
    Format.fprintf ppf "n%d fires seq%d got=%a dummy=%b sent=%a" node seq
      pp_ids got got_dummy pp_ids sent
  | Subnode_fired { node; sub; seq } ->
    Format.fprintf ppf "n%d fires sub-node n%d seq%d" node sub seq
  | Push { edge; seq; payload } ->
    Format.fprintf ppf "push e%d #%d %a" edge seq pp_payload payload
  | Pop { edge; seq; payload } ->
    Format.fprintf ppf "pop e%d #%d %a" edge seq pp_payload payload
  | Dummy_emitted { node; edge; seq } ->
    Format.fprintf ppf "n%d emits dummy #%d on e%d" node seq edge
  | Dummy_dropped { edge; seq } ->
    Format.fprintf ppf "dummy #%d dropped on e%d" seq edge
  | Blocked { node; edge } ->
    Format.fprintf ppf "n%d blocked on full e%d" node edge
  | Eos { node } -> Format.fprintf ppf "n%d eos" node
  | Wedge { round } -> Format.fprintf ppf "wedge in round %d" round
  | Run_finished { outcome } ->
    Format.fprintf ppf "run finished: %a" pp_outcome outcome
