(** The structured event vocabulary of the runtime.

    Both engines ({!Fstream_runtime.Engine} and
    {!Fstream_parallel.Parallel_engine}) narrate a run as a stream of
    these events, delivered to a {!Sink}. The vocabulary is closed and
    typed so that downstream consumers — the {!Metrics} registry, the
    Chrome {!Trace_json} writer, and the replay oracle
    [Fstream_runtime.Report.of_events] — never parse text.

    Two invariants make the stream a faithful account of a run:

    - {e completeness}: every state transition the engine performs
      (a push, a pop, a firing, a dummy decision) appears as exactly
      one event, so a run's {!Fstream_runtime.Report.t} is a pure
      function of its event log (the replay oracle checks this
      bit-for-bit);
    - {e scheduler independence}: the sequential engine emits the same
      transition events under both schedulers ([Blocked] is the one
      exception — it narrates visits, and the ready scheduler visits
      blocked nodes less often). *)

type payload = Data | Dummy | Eos
(** What kind of message crossed a channel (mirrors
    [Fstream_runtime.Message.body], without the payload value). *)

type outcome = Completed | Deadlocked | Budget_exhausted
(** How a run ended. This is the canonical definition; the runtime
    re-exports it as [Fstream_runtime.Report.outcome]. *)

type t =
  | Round_started of { round : int }
      (** sequential engine only: a scheduler round began (1-based) *)
  | Node_fired of {
      node : int;
      seq : int;
      got : int list;  (** in-edge ids that delivered data for [seq] *)
      got_dummy : bool;
      sent : int list;  (** out-edge ids the kernel kept (data enqueued) *)
    }
  | Subnode_fired of { node : int; sub : int; seq : int }
      (** a compound (fused) node [node] executed original sub-node
          [sub] for [seq] — emitted by [Fstream_runtime.Fused] kernels
          between the enclosing [Node_fired]'s pops and pushes, so
          fused-chain firings stay attributable to the pre-fusion
          topology. [sub] indexes the {e original} graph; replay and
          metrics folds over the running (fused) graph ignore it. *)
  | Push of { edge : int; seq : int; payload : payload }
      (** a message entered a channel's buffer *)
  | Pop of { edge : int; seq : int; payload : payload }
      (** a message left a channel's buffer (consumed by its receiver) *)
  | Dummy_emitted of { node : int; edge : int; seq : int }
      (** the wrapper decided a dummy is due on [edge]; it now sits in
          the channel's coalescing slot awaiting delivery *)
  | Dummy_dropped of { edge : int; seq : int }
      (** a queued dummy was superseded before delivery — coalesced
          with a newer dummy, overtaken by data, or discarded at EOS *)
  | Blocked of { node : int; edge : int }
      (** a visited node still holds a pending send stuck on full
          channel [edge] (once per visit while stuck) *)
  | Eos of { node : int }  (** the node sent end-of-stream and retired *)
  | Wedge of { round : int }
      (** the sequential engine detected a deadlock in [round] *)
  | Run_finished of { outcome : outcome }
      (** terminal event: every run emits exactly one, last *)

val name : t -> string
(** Constructor name, e.g. ["Push"] — used as the Chrome trace event
    name. *)

val pp : Format.formatter -> t -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val pp_payload : Format.formatter -> payload -> unit
