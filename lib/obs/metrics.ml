open Fstream_graph

type edge_metrics = {
  data : int;
  dummies : int;
  high_watermark : int;
  capacity : int;
  dummy_overhead : float;
}

type t = {
  edges : edge_metrics array;
  fired : int array;
  blocked_visits : int array;
  rounds : int;
  rounds_to_first_wedge : int option;
  events : int;
}

type collector = {
  inputs : int option;
  caps : int array;
  data : int array;
  dummies : int array;
  occupancy : int array;  (* current buffer length, from pushes - pops *)
  watermark : int array;
  c_fired : int array;
  blocked : int array;
  mutable c_rounds : int;
  mutable first_wedge : int option;
  mutable c_events : int;
}

let collector ~graph ?inputs () =
  let m = Graph.num_edges graph and n = Graph.num_nodes graph in
  {
    inputs;
    caps = Array.init m (fun i -> (Graph.edge graph i).cap);
    data = Array.make m 0;
    dummies = Array.make m 0;
    occupancy = Array.make m 0;
    watermark = Array.make m 0;
    c_fired = Array.make n 0;
    blocked = Array.make n 0;
    c_rounds = 0;
    first_wedge = None;
    c_events = 0;
  }

let feed c (e : Event.t) =
  c.c_events <- c.c_events + 1;
  match e with
  | Round_started { round } -> c.c_rounds <- max c.c_rounds round
  | Node_fired { node; _ } -> c.c_fired.(node) <- c.c_fired.(node) + 1
  | Push { edge; payload; _ } ->
    c.occupancy.(edge) <- c.occupancy.(edge) + 1;
    if c.occupancy.(edge) > c.watermark.(edge) then
      c.watermark.(edge) <- c.occupancy.(edge);
    (match payload with
    | Event.Data -> c.data.(edge) <- c.data.(edge) + 1
    | Event.Dummy -> c.dummies.(edge) <- c.dummies.(edge) + 1
    | Event.Eos -> ())
  | Pop { edge; _ } -> c.occupancy.(edge) <- c.occupancy.(edge) - 1
  | Blocked { node; _ } -> c.blocked.(node) <- c.blocked.(node) + 1
  | Wedge { round } ->
    if c.first_wedge = None then c.first_wedge <- Some round
  | Subnode_fired _ | Dummy_emitted _ | Dummy_dropped _ | Eos _
  | Run_finished _ ->
    ()

let sink c = Sink.make (feed c)

let result c =
  let edges =
    Array.init (Array.length c.caps) (fun i ->
        let data = c.data.(i) and dummies = c.dummies.(i) in
        let dummy_overhead =
          match c.inputs with
          | Some inputs when inputs - data > 0 ->
            float dummies /. float (inputs - data)
          | Some _ -> if dummies = 0 then 0. else infinity
          | None -> float dummies /. float (max 1 (data + dummies))
        in
        {
          data;
          dummies;
          high_watermark = c.watermark.(i);
          capacity = c.caps.(i);
          dummy_overhead;
        })
  in
  {
    edges;
    fired = Array.copy c.c_fired;
    blocked_visits = Array.copy c.blocked;
    rounds = c.c_rounds;
    rounds_to_first_wedge = c.first_wedge;
    events = c.c_events;
  }

let of_events ~graph ?inputs events =
  let c = collector ~graph ?inputs () in
  List.iter (feed c) events;
  result c

let pp ppf m =
  Format.fprintf ppf "@[<v>%-6s %5s %9s %9s %10s %9s@," "edge" "cap"
    "data" "dummies" "watermark" "overhead";
  Array.iteri
    (fun i (e : edge_metrics) ->
      Format.fprintf ppf "e%-5d %5d %9d %9d %7d/%-3d %8.2f@," i e.capacity
        e.data e.dummies e.high_watermark e.capacity e.dummy_overhead)
    m.edges;
  let total f = Array.fold_left (fun a e -> a + f e) 0 m.edges in
  Format.fprintf ppf "totals: %d data, %d dummies over %d channels@,"
    (total (fun e -> e.data))
    (total (fun e -> e.dummies))
    (Array.length m.edges);
  let blocked =
    Array.to_seq m.blocked_visits
    |> Seq.mapi (fun v b -> (v, b))
    |> Seq.filter (fun (_, b) -> b > 0)
    |> List.of_seq
  in
  (match blocked with
  | [] -> ()
  | l ->
    Format.fprintf ppf "blocked visits:%s@,"
      (String.concat ""
         (List.map (fun (v, b) -> Printf.sprintf " n%d:%d" v b) l)));
  (match m.rounds_to_first_wedge with
  | Some r -> Format.fprintf ppf "first wedge: round %d@," r
  | None -> ());
  Format.fprintf ppf "%d rounds, %d events@]" m.rounds m.events
