(** The metrics registry: aggregates computed from the event stream.

    Everything here is a pure fold over {!Event} values — the registry
    never peeks at engine internals, so the same collector serves both
    engines and the replayed logs. The quantities are the ones the
    paper's argument turns on:

    - per-channel {e high-watermark occupancy} — how much of each
      buffer a run actually used (input to LP-style buffer
      dimensioning, cf. Sirdey & Aubry);
    - per-channel {e dummy overhead} — dummy traffic relative to the
      synchronous-dataflow strawman that sends a null on every filtered
      sequence number ([Compiler.sdf_thresholds]): the SDF baseline
      would push [inputs - data] nulls, so the ratio is
      [dummies / (inputs - data)], the fraction of the strawman's
      overhead the computed intervals actually pay (when [inputs] is
      not supplied the denominator is unknown and the ratio falls back
      to dummies per delivered message);
    - per-node {e blocked visits} — scheduler visits that found the
      node stuck on a full channel (under the ready scheduler blocked
      nodes are visited less often, so compare within one scheduler);
    - {e rounds to first wedge} — how long the run survived before
      deadlocking, if it did. *)

open Fstream_graph

type edge_metrics = {
  data : int;  (** data messages pushed *)
  dummies : int;  (** dummy messages pushed *)
  high_watermark : int;  (** peak buffer occupancy, messages *)
  capacity : int;  (** the channel's configured capacity *)
  dummy_overhead : float;  (** see above *)
}

type t = {
  edges : edge_metrics array;  (** indexed by edge id *)
  fired : int array;  (** firings per node *)
  blocked_visits : int array;  (** blocked scheduler visits per node *)
  rounds : int;  (** last round started; [0] for the parallel engine *)
  rounds_to_first_wedge : int option;
  events : int;  (** total events folded *)
}

type collector
(** Incremental accumulator, usable as a live sink — no need to buffer
    the log for long runs. *)

val collector : graph:Graph.t -> ?inputs:int -> unit -> collector
val feed : collector -> Event.t -> unit
val sink : collector -> Sink.t
val result : collector -> t

val of_events : graph:Graph.t -> ?inputs:int -> Event.t list -> t

val pp : Format.formatter -> t -> unit
(** A per-edge table followed by node and run-level lines. *)
