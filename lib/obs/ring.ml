type t = {
  capacity : int;
  mutable buf : Event.t array;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
}

let filler = Event.Round_started { round = 0 }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  {
    capacity;
    buf = Array.make (min capacity 1024) filler;
    start = 0;
    len = 0;
    dropped = 0;
  }

let grow r =
  let cur = Array.length r.buf in
  let bigger = Array.make (min r.capacity (2 * cur)) filler in
  for i = 0 to r.len - 1 do
    bigger.(i) <- r.buf.((r.start + i) mod cur)
  done;
  r.buf <- bigger;
  r.start <- 0

let push r e =
  let size = Array.length r.buf in
  if r.len = size && size < r.capacity then grow r;
  let size = Array.length r.buf in
  if r.len < size then begin
    r.buf.((r.start + r.len) mod size) <- e;
    r.len <- r.len + 1
  end
  else begin
    (* full at capacity: overwrite the oldest *)
    r.buf.(r.start) <- e;
    r.start <- (r.start + 1) mod size;
    r.dropped <- r.dropped + 1
  end

let sink r = Sink.make (push r)
let length r = r.len
let dropped r = r.dropped

let iter r f =
  let size = Array.length r.buf in
  for i = 0 to r.len - 1 do
    f r.buf.((r.start + i) mod size)
  done

let contents r =
  let size = Array.length r.buf in
  List.init r.len (fun i -> r.buf.((r.start + i) mod size))

let clear r =
  r.start <- 0;
  r.len <- 0;
  r.dropped <- 0
