(** A bounded in-memory event buffer.

    Keeps the most recent [capacity] events, dropping the oldest once
    full — cheap enough to leave on in production and still hold a
    useful wedge audit trail when a run deadlocks. Storage grows
    geometrically from a small initial array up to [capacity], so an
    over-provisioned ring on a short run costs little.

    The replay oracle ([Fstream_runtime.Report.of_events]) needs the
    {e complete} log: check {!dropped}[ = 0] before replaying. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to [65536] events.
    @raise Invalid_argument if [capacity < 1]. *)

val sink : t -> Sink.t
(** A sink recording into the ring. Closing it is a no-op. *)

val push : t -> Event.t -> unit
val length : t -> int

val dropped : t -> int
(** Events evicted because the ring was full. *)

val contents : t -> Event.t list
(** Oldest first. *)

val iter : t -> (Event.t -> unit) -> unit
val clear : t -> unit
