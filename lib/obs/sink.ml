type t = { emit : Event.t -> unit; close : unit -> unit; null : bool }

let null = { emit = ignore; close = ignore; null = true }
let is_null s = s.null
let make ?(close = ignore) emit = { emit; close; null = false }
let emit s e = s.emit e
let close s = s.close ()

let tee a b =
  make
    ~close:(fun () ->
      a.close ();
      b.close ())
    (fun e ->
      a.emit e;
      b.emit e)
