(** Pluggable event consumers.

    A sink is where an engine sends its {!Event} stream. The engines
    treat {!null} specially — it is recognized with {!is_null} and the
    whole emission path (including event construction) is skipped, so
    instrumentation with the null sink costs one branch per potential
    event (measured < 1% on the bench C6 pipelines; see
    EXPERIMENTS.md, "O1").

    Sinks are single-threaded values: the sequential engine calls them
    from its own thread, the parallel engine only under its global
    monitor. The engine never closes a sink — the creator does, which
    matters for sinks with terminal output like {!Trace_json}. *)

type t

val null : t
(** Drops everything. The engines detect it and skip event
    construction entirely. *)

val is_null : t -> bool

val make : ?close:(unit -> unit) -> (Event.t -> unit) -> t
(** [make emit] wraps a callback. [close] (default a no-op) runs when
    {!close} is called — e.g. to write a trailer. *)

val emit : t -> Event.t -> unit
val close : t -> unit

val tee : t -> t -> t
(** Duplicates every event (and [close]) to both sinks, in order. *)
