(* One JSON object per event, streamed; no intermediate AST. *)

let escape s =
  (* event names and args are ASCII identifiers; quote defensively *)
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char b '\\'; Buffer.add_char b c
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ids l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

(* pid/tid track and the args payload for each event *)
let location_and_args (e : Event.t) =
  let payload p = Format.asprintf "%a" Event.pp_payload p in
  match e with
  | Round_started { round } -> (0, 0, Printf.sprintf {|{"round":%d}|} round)
  | Node_fired { node; seq; got; got_dummy; sent } ->
    ( 0,
      node,
      Printf.sprintf {|{"seq":%d,"got":%s,"got_dummy":%b,"sent":%s}|} seq
        (ids got) got_dummy (ids sent) )
  | Subnode_fired { node; sub; seq } ->
    (0, node, Printf.sprintf {|{"sub":%d,"seq":%d}|} sub seq)
  | Push { edge; seq; payload = p } ->
    (1, edge, Printf.sprintf {|{"seq":%d,"payload":"%s"}|} seq (payload p))
  | Pop { edge; seq; payload = p } ->
    (1, edge, Printf.sprintf {|{"seq":%d,"payload":"%s"}|} seq (payload p))
  | Dummy_emitted { node; edge; seq } ->
    (1, edge, Printf.sprintf {|{"node":%d,"seq":%d}|} node seq)
  | Dummy_dropped { edge; seq } -> (1, edge, Printf.sprintf {|{"seq":%d}|} seq)
  | Blocked { node; edge } -> (0, node, Printf.sprintf {|{"edge":%d}|} edge)
  | Eos { node } -> (0, node, "{}")
  | Wedge { round } -> (0, 0, Printf.sprintf {|{"round":%d}|} round)
  | Run_finished { outcome } ->
    ( 0,
      0,
      Printf.sprintf {|{"outcome":"%s"}|}
        (escape (Format.asprintf "%a" Event.pp_outcome outcome)) )

let sink ppf =
  let count = ref 0 in
  let emit e =
    let pid, tid, args = location_and_args e in
    Format.fprintf ppf "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":%s}"
      (if !count = 0 then "[\n" else ",\n")
      (escape (Event.name e))
      !count pid tid args;
    incr count
  in
  let close () =
    if !count = 0 then Format.fprintf ppf "[";
    Format.fprintf ppf "\n]@.";
    Format.pp_print_flush ppf ()
  in
  Sink.make ~close emit
