(** Chrome [trace_event] JSON writer.

    Serializes the event stream in the Trace Event Format consumed by
    [chrome://tracing] and Perfetto: a JSON array of instant events.
    Timestamps are the {e logical} clock (the event's index in the
    stream) — the runtime is a discrete scheduler, so wall-clock time
    would only obscure the causality the trace is for.

    Track layout: node events appear under pid 0 with [tid = node id];
    channel events under pid 1 with [tid = edge id]; run-level events
    (rounds, wedge, outcome) under pid 0, tid 0.

    Closing the sink writes the closing bracket; until then the file
    is an unterminated array (which Chrome accepts, but tools should
    close properly). *)

val sink : Format.formatter -> Sink.t
(** Events are written as they arrive; {!Sink.close} emits the
    trailer and flushes the formatter. *)
