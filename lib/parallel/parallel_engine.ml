open Fstream_graph
module Engine = Fstream_runtime.Engine
module Channel = Fstream_runtime.Channel
module Message = Fstream_runtime.Message
module Report = Fstream_runtime.Report
module Thresholds = Fstream_core.Thresholds
module Event = Fstream_obs.Event
module Sink = Fstream_obs.Sink

(* All queue state lives under one application-wide monitor. Node
   domains take the lock to inspect/mutate channels and wait on [cond]
   when they can make no move; every state change broadcasts. Kernels
   run outside the lock. The event sink is only ever called with the
   lock held, so a single-threaded sink (ring buffer, JSON writer) is
   safe here too.

   Channels are the runtime's ring-buffer {!Channel} (accessed only
   with the lock held): capacity, occupancy and the message counters
   live there, so the report's data/dummy totals come from the same
   ground truth as the sequential engine's. *)
type shared = {
  mutex : Mutex.t;
  cond : Condition.t;
  chans : Channel.t array;  (* per edge *)
  slot : int array;  (* per edge: coalescing dummy mouth; -1 = empty *)
  last_sent : int array;
  mutable progress : int;  (* bumped on every push/pop; watchdog input *)
  mutable live_nodes : int;
  mutable aborted : bool;
  (* stats the channels cannot see *)
  mutable sink_data : int;
  mutable dropped_dummies : int;
}

let locked sh f =
  Mutex.lock sh.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mutex) f

let bump sh =
  sh.progress <- sh.progress + 1;
  Condition.broadcast sh.cond

let payload_of (m : Message.t) =
  match m.body with
  | Message.Data _ -> Event.Data
  | Message.Dummy -> Event.Dummy
  | Message.Eos -> Event.Eos

let run ?(stall_ms = 200) ?sink ~graph:g ~kernels ~inputs ~avoidance () =
  let n = Graph.num_nodes g and m = Graph.num_edges g in
  if n > 64 then invalid_arg "Parallel_engine.run: more than 64 nodes";
  let sink =
    match sink with
    | Some s when not (Sink.is_null s) -> Some s
    | _ -> None
  in
  let obs = sink <> None in
  let ev e = match sink with Some s -> Sink.emit s e | None -> () in
  let thresholds, forwarding =
    match avoidance with
    | Engine.No_avoidance -> (Array.make m None, false)
    | Engine.Propagation t ->
      Thresholds.check t g;
      (Thresholds.to_array t, true)
    | Engine.Non_propagation t ->
      Thresholds.check t g;
      (Thresholds.to_array t, false)
  in
  let sh =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      chans =
        Array.init m (fun i -> Channel.create ~capacity:(Graph.edge g i).cap);
      slot = Array.make m (-1);
      last_sent = Array.make m (-1);
      progress = 0;
      live_nodes = n;
      aborted = false;
      sink_data = 0;
      dropped_dummies = 0;
    }
  in
  let out_edges = Array.init n (Graph.out_edges g) in
  let in_edges = Array.init n (Graph.in_edges g) in
  let is_sink v = out_edges.(v) = [] in
  let full e = Channel.is_full sh.chans.(e) in
  let push e (msg : Message.t) =
    (* callers only push under the lock with room checked *)
    if not (Channel.push sh.chans.(e) msg) then assert false;
    if obs then
      ev (Event.Push { edge = e; seq = msg.seq; payload = payload_of msg });
    bump sh
  in
  let drop_slot e old =
    sh.dropped_dummies <- sh.dropped_dummies + 1;
    if obs then ev (Event.Dummy_dropped { edge = e; seq = old })
  in
  (* Deliver any queued dummy slots of [v] whose channel has room.
     Caller holds the lock. *)
  let flush_slots v =
    List.iter
      (fun (e : Graph.edge) ->
        let seq = sh.slot.(e.id) in
        if seq >= 0 && not (full e.id) then begin
          sh.slot.(e.id) <- -1;
          push e.id (Message.dummy ~seq)
        end)
      out_edges.(v)
  in
  (* Blocking send of data/EOS on one channel; dummies never block.
     Caller holds the lock. *)
  let send_blocking v e msg =
    while full e && not sh.aborted do
      flush_slots v;
      if full e then begin
        if obs then ev (Event.Blocked { node = v; edge = e });
        Condition.wait sh.cond sh.mutex
      end
    done;
    if not sh.aborted then push e msg
  in
  let emit v ~seq ~data_out ~got_dummy =
    List.iter
      (fun (e : Graph.edge) ->
        if List.mem e.id data_out then begin
          (let old = sh.slot.(e.id) in
           if old >= 0 then begin
             sh.slot.(e.id) <- -1;
             drop_slot e.id old
           end);
          sh.last_sent.(e.id) <- seq;
          send_blocking v e.id (Message.data ~seq seq)
        end
        else begin
          let due =
            match thresholds.(e.id) with
            | Some k -> seq - sh.last_sent.(e.id) >= k
            | None -> false
          in
          if (forwarding && got_dummy) || due then begin
            (let old = sh.slot.(e.id) in
             if old >= 0 then drop_slot e.id old);
            sh.slot.(e.id) <- seq;
            if obs then ev (Event.Dummy_emitted { node = v; edge = e.id; seq });
            sh.last_sent.(e.id) <- seq;
            flush_slots v
          end
        end)
      out_edges.(v)
  in
  let send_eos v =
    List.iter
      (fun (e : Graph.edge) ->
        (let old = sh.slot.(e.id) in
         if old >= 0 then begin
           sh.slot.(e.id) <- -1;
           drop_slot e.id old
         end);
        send_blocking v e.id (Message.eos ()))
      out_edges.(v);
    if obs then ev (Event.Eos { node = v })
  in
  (* One node's life: fire while inputs flow, forward EOS, retire. *)
  let node_body v =
    let kernel = kernels v in
    let next_input = ref 0 in
    let running = ref true in
    while !running do
      (* Decide the next firing under the lock. *)
      let decision =
        locked sh (fun () ->
            let rec wait_for_work () =
              if sh.aborted then `Stop
              else if in_edges.(v) = [] then
                if !next_input < inputs then begin
                  let seq = !next_input in
                  incr next_input;
                  `Fire (seq, [], false)
                end
                else `Eos
              else if
                List.for_all
                  (fun (e : Graph.edge) ->
                    not (Channel.is_empty sh.chans.(e.id)))
                  in_edges.(v)
              then begin
                let heads =
                  List.map
                    (fun (e : Graph.edge) ->
                      (e, Channel.peek_exn sh.chans.(e.id)))
                    in_edges.(v)
                in
                let i =
                  List.fold_left
                    (fun acc (_, (msg : Message.t)) -> min acc msg.seq)
                    max_int heads
                in
                if i = max_int then begin
                  List.iter
                    (fun ((e : Graph.edge), (msg : Message.t)) ->
                      ignore (Channel.pop_exn sh.chans.(e.id));
                      if obs then
                        ev
                          (Event.Pop
                             {
                               edge = e.id;
                               seq = msg.seq;
                               payload = payload_of msg;
                             }))
                    heads;
                  bump sh;
                  `Eos
                end
                else begin
                  let got_data = ref [] and got_dummy = ref false in
                  List.iter
                    (fun ((e : Graph.edge), (msg : Message.t)) ->
                      if msg.seq = i then begin
                        ignore (Channel.pop_exn sh.chans.(e.id));
                        if obs then
                          ev
                            (Event.Pop
                               {
                                 edge = e.id;
                                 seq = msg.seq;
                                 payload = payload_of msg;
                               });
                        match msg.body with
                        | Message.Data _ ->
                          got_data := e.id :: !got_data;
                          if is_sink v then sh.sink_data <- sh.sink_data + 1
                        | Message.Dummy -> got_dummy := true
                        | Message.Eos -> assert false
                      end)
                    heads;
                  bump sh;
                  `Fire (i, List.rev !got_data, !got_dummy)
                end
              end
              else begin
                flush_slots v;
                Condition.wait sh.cond sh.mutex;
                wait_for_work ()
              end
            in
            wait_for_work ())
      in
      match decision with
      | `Stop -> running := false
      | `Eos ->
        locked sh (fun () ->
            send_eos v;
            sh.live_nodes <- sh.live_nodes - 1;
            bump sh);
        running := false
      | `Fire (seq, got, got_dummy) ->
        (* The kernel runs outside the lock: node computations overlap
           across domains. *)
        let data_out = if got = [] && in_edges.(v) <> [] then [] else kernel ~seq ~got in
        let data_out = List.sort_uniq compare data_out in
        List.iter
          (fun id ->
            if
              not
                (List.exists (fun (e : Graph.edge) -> e.id = id) out_edges.(v))
            then
              invalid_arg
                (Printf.sprintf
                   "Parallel_engine: kernel of node %d returned edge %d" v id))
          data_out;
        locked sh (fun () ->
            if obs then
              ev
                (Event.Node_fired
                   { node = v; seq; got; got_dummy; sent = data_out });
            emit v ~seq ~data_out ~got_dummy)
    done
  in
  (* Watchdog, on the coordinating domain: declare deadlock when the
     progress counter freezes for a full stall window while nodes are
     still alive, then abort and wake every waiter. *)
  let node_domains =
    Array.init n (fun v -> Domain.spawn (fun () -> node_body v))
  in
  let rec watch last =
    Unix.sleepf (float stall_ms /. 1000.);
    let p, live = locked sh (fun () -> (sh.progress, sh.live_nodes)) in
    if live = 0 then ()
    else if p = last then
      locked sh (fun () ->
          sh.aborted <- true;
          Condition.broadcast sh.cond)
    else watch p
  in
  watch (-1);
  Array.iter Domain.join node_domains;
  let aborted = locked sh (fun () -> sh.aborted) in
  let outcome = if aborted then Report.Deadlocked else Report.Completed in
  if obs then ev (Event.Run_finished { outcome });
  let sum f = Array.fold_left (fun a c -> a + f c) 0 sh.chans in
  {
    Report.outcome;
    data_messages = sum Channel.data_pushed;
    dummy_messages = sum Channel.dummies_pushed;
    sink_data = sh.sink_data;
    dropped_dummies = sh.dropped_dummies;
    per_edge_dummies = Array.map Channel.dummies_pushed sh.chans;
    detail = Report.Parallel;
  }
