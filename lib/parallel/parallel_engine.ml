open Fstream_graph
module Engine = Fstream_runtime.Engine
module Channel = Fstream_runtime.Channel
module Message = Fstream_runtime.Message
module Report = Fstream_runtime.Report
module Run = Fstream_runtime.Run
module Thresholds = Fstream_core.Thresholds
module Event = Fstream_obs.Event
module Sink = Fstream_obs.Sink

(* Sharded domain-pool runtime, multiplexing many application
   instances over one persistent set of worker domains.

   Nodes are lightweight tasks executed by a fixed pool of worker
   domains; the one-domain-per-node model (and its 64-node cap) is
   gone. Each submitted instance partitions its graph's nodes into
   [nshards = domains] contiguous shards, each with its own mutex and
   a ready-queue of runnable nodes. Workers drain one instance's
   shards (home shard first, stealing round-robin when it runs dry)
   and rotate between live instances under the fair-share quota: at
   most [quota] consecutive task grants to one instance while another
   instance has queued work, so a hot tenant cannot monopolize the
   pool — the instance-level analogue of the per-node [grain] bound.

   Locking discipline — the single invariant everything hangs off:

     every operation on channel [e] happens under the lock of
     [shard (dst e)] (shards, locks and channels are per instance).

   A node's in-edges all terminate at the node, so its firing decision
   (all inputs non-empty, min head sequence, pops) needs exactly one
   lock: its own shard's. A push takes the consumer's shard lock. No
   code path ever holds two shard locks at once: pops that free a full
   channel collect the producer node ids and wake them after the
   consumer's lock is released. The event sink and the pool's idle
   condition variable have their own locks, acquired only as leaves.

   A node never blocks a worker: sends that find a full channel go to
   the node's pending ring (the sequential engine's model) and the node
   simply drops out of the runnable set until a pop on the jammed
   channel wakes it. With that, pool-level scheduling can never wedge
   on workers < nodes, and per-instance completion is an exact ticket
   count instead of a wall-clock heuristic: [live] counts the
   instance's queued-plus-running tasks (a task keeps its ticket while
   it re-queues itself or carries a missed wake, and every wake is
   performed by a running task of the same instance, which still holds
   its own ticket), so [live] reaching zero is permanent quiescence —
   nothing runnable, no kernel in flight, and nothing that could ever
   make a node runnable again. The worker that releases the last
   ticket finalizes the instance: live nodes remaining at that point
   mean a genuine deadlock of the streaming computation itself. The
   previous single-run pool detected the same condition globally
   ("every worker idle and nothing queued"); the ticket count is that
   check made per-instance, which a shared pool needs because other
   tenants keep the workers busy. The [stall_ms] timer survives only
   as an off-by-default backstop that additionally requires zero
   in-flight kernels and an empty ready-queue for the instance, so a
   kernel that computes for longer than the window can never be
   misreported as a deadlock.

   Consecutive executions of one node may land on different workers,
   but never overlap: the per-node [Queued]/[Running]/[Running_dirty]
   state machine (mutated only under the node's shard lock) guarantees
   mutual exclusion, and the lock hand-over gives the happens-before
   edge that makes the node's plain fields (pending ring, dummy slots,
   stamps, scratch) safe to keep unsynchronized. An instance's plain
   setup-time state is published to the workers by the
   sequentially-consistent write of the pool's instance array; its
   report is assembled by the finalizing worker, whose last-ticket
   decrement is ordered after every other worker's release of the same
   atomic. *)

let hole : Message.t = Message.eos ()

let payload_of (m : Message.t) =
  match m.body with
  | Message.Data _ -> Event.Data
  | Message.Dummy -> Event.Dummy
  | Message.Eos -> Event.Eos

(* Scheduling state of one node, mutated only under its shard's lock.
   [Running_dirty] records a wake that arrived while the task was
   executing, so the finishing worker re-queues it instead of losing
   the wakeup. *)
type sched = Idle | Queued | Running | Running_dirty

type node_state = {
  kernel : Engine.kernel;
  (* pending sends: same per-node ring as the sequential engine — a
     node cannot fire while non-empty, so capacity [out_degree]
     suffices (one firing's data, or the EOS fan-out) *)
  pend_eid : int array;
  pend_msg : Message.t array;
  mutable pend_head : int;
  mutable pend_len : int;
  mutable next_input : int;
  mutable finished : bool;
  mutable slots : int; (* out-edges holding a queued dummy slot *)
  mutable blocked : bool; (* inside a blocking episode (Blocked emitted) *)
  mutable fire_id : int; (* per-node firing stamp for validation *)
  mutable flush_id : int; (* per-node flush stamp for bstamp *)
  mutable sink_got : int; (* data consumed, if this node is a sink *)
  mutable reuse : Message.t; (* last popped Data block, reusable *)
  mutable state : sched;
  mutable wakes : int; (* tasks this node made runnable, not yet signalled *)
  got_buf : int array; (* scratch: in-edges that delivered data *)
  freed_buf : int array; (* scratch: producers freed by our pops *)
  src : bool;
  snk : bool;
}

type shard = {
  lock : Mutex.t;
  queue : int array; (* ready ring, deduplicated via [sched] *)
  mutable q_head : int;
  mutable q_len : int;
  (* pad the record past 64 bytes (header + 8 fields = 72) so two
     shards never share a cache line: [q_head]/[q_len] are written
     under [lock] by whichever worker holds the shard, and false
     sharing between adjacent shards' counters showed up as pool
     jitter on the scaling bench (§P1) *)
  _pad0 : int;
  _pad1 : int;
  _pad2 : int;
  _pad3 : int;
}

(* Same packed per-edge layout as the sequential engine (stride 8, one
   cache line per edge), with the spare slot holding the per-edge
   dropped-dummy count. [f_thr]/[f_owner]/[f_dst] are set-up-time
   constants; the rest are written only by the edge's owner node, whose
   executions are serialized, so they need no lock. *)
let f_thr = 0
let f_last = 1
let f_slot = 2 (* coalescing dummy mouth; -1 = empty *)
let f_dstamp = 3 (* fire_id stamp: kernel chose this edge *)
let f_bstamp = 4 (* flush_id stamp: push refused this flush *)
let f_owner = 5
let f_dst = 6
let f_drop = 7 (* dummies superseded before delivery *)

let default_grain = Run.default_grain
let default_domains = Run.default_domains
let default_quota = 4

module Pool = struct
  type inst = {
    iid : int;
    iq : int Atomic.t; (* queued tasks of this instance; claim hint *)
    claim : int -> int option; (* start shard -> claimed node *)
    exec : int -> unit; (* run a claimed node, finish, maybe finalize *)
  }

  type t = {
    nd : int;
    quota : int;
    insts : inst array Atomic.t; (* live instances; CAS add/remove *)
    queued : int Atomic.t; (* tasks in shard queues, all instances *)
    idlers : int Atomic.t; (* workers inside the idle section *)
    idle_lock : Mutex.t;
    idle_cond : Condition.t;
    mutable stopping : bool; (* guarded by idle_lock *)
    mutable workers : unit Domain.t array;
    next_iid : int Atomic.t;
  }

  type job = {
    jlock : Mutex.t;
    jcond : Condition.t;
    mutable jres : (Report.t, exn) result option;
    mutable dog : unit Domain.t option; (* backstop watchdog, if any *)
  }

  let domains t = t.nd

  (* Wake at most [k] idle workers — one per task made runnable, never
     more than are napping; extra runnable tasks are picked up by the
     workers' own scans. Signalling once per batch (instead of
     broadcasting per enqueue) is what keeps a firing that frees f
     producers from stampeding all [nd] workers f times. The wakeup
     handshake pairs with the idle section's re-check of [queued]:
     both sides use sequentially-consistent atomics, so either the
     enqueuer sees the idler and signals, or the idler sees the new
     [queued] count (incremented before any signalling decision) and
     rescans — a wakeup cannot be lost, however late the signal is
     batched. *)
  let signal_idlers t k =
    if k > 0 && Atomic.get t.idlers > 0 then begin
      Mutex.lock t.idle_lock;
      let k =
        let i = Atomic.get t.idlers in
        if k < i then k else i
      in
      if k >= t.nd then Condition.broadcast t.idle_cond
      else
        for _ = 1 to k do
          Condition.signal t.idle_cond
        done;
      Mutex.unlock t.idle_lock
    end

  (* Per-worker rotation state for the fair-share quota. [cursor]
     indexes the instance array snapshot (re-taken every pick, so a
     retire just shifts the rotation by one); [grants] counts
     consecutive grants to [last]. *)
  type wstate = { mutable cursor : int; mutable last : int; mutable grants : int }

  let pick t pw w =
    let insts = Atomic.get t.insts in
    let ni = Array.length insts in
    if ni = 0 then None
    else begin
      if pw.cursor >= ni then pw.cursor <- 0;
      (* quota exhausted and someone else is waiting: rotate away from
         the hot instance before scanning *)
      if ni > 1 && pw.grants >= t.quota then begin
        let rec waiting k =
          k < ni
          && ((let inst = insts.((pw.cursor + k) mod ni) in
               inst.iid <> pw.last && Atomic.get inst.iq > 0)
             || waiting (k + 1))
        in
        if waiting 0 then pw.cursor <- (pw.cursor + 1) mod ni;
        pw.grants <- 0
      end;
      let rec scan k =
        if k = ni then None
        else begin
          let idx = (pw.cursor + k) mod ni in
          let inst = insts.(idx) in
          if Atomic.get inst.iq <= 0 then scan (k + 1)
          else
            match inst.claim w with
            | Some v ->
              if inst.iid = pw.last then pw.grants <- pw.grants + 1
              else begin
                pw.last <- inst.iid;
                pw.grants <- 1
              end;
              pw.cursor <- idx;
              Some (inst, v)
            | None -> scan (k + 1)
        end
      in
      scan 0
    end

  (* Idle protocol: a worker that finds nothing increments [idlers]
     and naps until an enqueue signals it or the pool stops. Instance
     completion is detected by the per-instance ticket count, not
     here. *)
  let worker t w () =
    let pw = { cursor = w; last = -1; grants = 0 } in
    let rec loop () =
      match pick t pw w with
      | Some (inst, v) ->
        inst.exec v;
        loop ()
      | None ->
        Mutex.lock t.idle_lock;
        Atomic.incr t.idlers;
        let rec idle () =
          if t.stopping then ()
          else if Atomic.get t.queued > 0 then ()
          else begin
            Condition.wait t.idle_cond t.idle_lock;
            idle ()
          end
        in
        idle ();
        Atomic.decr t.idlers;
        let quit = t.stopping in
        Mutex.unlock t.idle_lock;
        if not quit then loop ()
    in
    loop ()

  let create ?domains ?(quota = default_quota) () =
    let nd =
      match domains with
      | None -> default_domains ()
      | Some d ->
        if d < 1 || d > 126 then
          invalid_arg "Parallel_engine.Pool.create: domains out of range";
        d
    in
    if quota < 1 then invalid_arg "Parallel_engine.Pool.create: quota < 1";
    let t =
      {
        nd;
        quota;
        insts = Atomic.make [||];
        queued = Atomic.make 0;
        idlers = Atomic.make 0;
        idle_lock = Mutex.create ();
        idle_cond = Condition.create ();
        stopping = false;
        workers = [||];
        next_iid = Atomic.make 0;
      }
    in
    t.workers <- Array.init nd (fun w -> Domain.spawn (worker t w));
    t

  let shutdown t =
    Mutex.lock t.idle_lock;
    let first = not t.stopping in
    t.stopping <- true;
    Condition.broadcast t.idle_cond;
    Mutex.unlock t.idle_lock;
    if first then Array.iter Domain.join t.workers

  let submit t ?(grain = default_grain) ?stall_ms ?sink ~graph:g ~kernels
      ~inputs ~avoidance () =
    let n = Graph.num_nodes g and m = Graph.num_edges g in
    if grain < 1 then invalid_arg "Parallel_engine.run: grain < 1";
    let sink =
      match sink with Some s when not (Sink.is_null s) -> Some s | _ -> None
    in
    let obs = sink <> None in
    let sink_lock = Mutex.create () in
    (* sink calls are serialized, whatever domain they come from *)
    let ev e =
      match sink with
      | Some s ->
        Mutex.lock sink_lock;
        Sink.emit s e;
        Mutex.unlock sink_lock
      | None -> ()
    in
    let thresholds, forwarding =
      match avoidance with
      | Engine.No_avoidance -> (Array.make m None, false)
      | Engine.Propagation tb ->
        Thresholds.check tb g;
        (Thresholds.to_array tb, true)
      | Engine.Non_propagation tb ->
        Thresholds.check tb g;
        (Thresholds.to_array tb, false)
    in
    let chans =
      Array.init m (fun i -> Channel.create ~capacity:(Graph.edge g i).cap)
    in
    let ed = Array.make (m * 8) 0 in
    for i = 0 to m - 1 do
      let eb = i * 8 in
      ed.(eb + f_thr) <-
        (match thresholds.(i) with Some k -> k | None -> max_int);
      ed.(eb + f_last) <- -1;
      ed.(eb + f_slot) <- -1;
      let e = Graph.edge g i in
      ed.(eb + f_owner) <- e.src;
      ed.(eb + f_dst) <- e.dst
    done;
    (* CSR adjacency, as in the sequential engine *)
    let out_off = Array.make (n + 1) 0 in
    let in_off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      out_off.(v + 1) <- out_off.(v) + Graph.out_degree g v;
      in_off.(v + 1) <- in_off.(v) + Graph.in_degree g v
    done;
    let out_flat = Array.make m 0 in
    let in_flat = Array.make m 0 in
    for v = 0 to n - 1 do
      let ids = Graph.out_edge_ids g v in
      Array.blit ids 0 out_flat out_off.(v) (Array.length ids);
      let ids = Graph.in_edge_ids g v in
      Array.blit ids 0 in_flat in_off.(v) (Array.length ids)
    done;
    let st =
      Array.init n (fun v ->
          let deg = Graph.out_degree g v in
          let in_deg = Graph.in_degree g v in
          {
            kernel = kernels v;
            pend_eid = Array.make deg 0;
            pend_msg = Array.make deg hole;
            pend_head = 0;
            pend_len = 0;
            next_input = 0;
            finished = false;
            slots = 0;
            blocked = false;
            fire_id = 0;
            flush_id = 0;
            sink_got = 0;
            reuse = hole;
            state = Idle;
            wakes = 0;
            got_buf = Array.make (max in_deg 1) 0;
            freed_buf = Array.make (max in_deg 1) 0;
            src = in_deg = 0;
            snk = deg = 0;
          })
    in
    (* contiguous block partition: neighbours tend to share a shard, so
       a pipeline hop's pop and push often reuse the lock the worker
       already touched; work-stealing evens out any imbalance *)
    let nshards = t.nd in
    let shard_of = Array.init n (fun v -> v * nshards / n) in
    let shard_size = Array.make nshards 0 in
    Array.iter (fun s -> shard_size.(s) <- shard_size.(s) + 1) shard_of;
    let shards =
      Array.init nshards (fun i ->
          {
            lock = Mutex.create ();
            queue = Array.make (max shard_size.(i) 1) 0;
            q_head = 0;
            q_len = 0;
            _pad0 = 0;
            _pad1 = 0;
            _pad2 = 0;
            _pad3 = 0;
          })
    in
    let iid = Atomic.fetch_and_add t.next_iid 1 in
    (* instance coordination *)
    let iq = Atomic.make 0 in (* tasks sitting in this instance's queues *)
    let live = Atomic.make 0 in (* tickets: queued + running tasks *)
    let in_flight = Atomic.make 0 in (* tasks being executed *)
    let progress = Atomic.make 0 in (* pushes + pops; backstop input *)
    let halt = Atomic.make false in
    let timed_out = Atomic.make false in
    let finalized = Atomic.make false in
    let failure = Atomic.make None in
    let job =
      {
        jlock = Mutex.create ();
        jcond = Condition.create ();
        jres = None;
        dog = None;
      }
    in
    (* Make [v] runnable. Caller holds [sh] = [v]'s shard lock. Returns
       whether [v] was actually enqueued; signalling idle workers is
       the caller's job (batched per firing, {!signal_idlers}). An
       Idle -> Queued transition mints a live ticket. *)
    let wake_locked sh v =
      let s = st.(v) in
      match s.state with
      | Idle ->
        s.state <- Queued;
        let size = Array.length sh.queue in
        let tail = sh.q_head + sh.q_len in
        let tail = if tail >= size then tail - size else tail in
        sh.queue.(tail) <- v;
        sh.q_len <- sh.q_len + 1;
        Atomic.incr live;
        Atomic.incr iq;
        Atomic.incr t.queued;
        true
      | Running ->
        s.state <- Running_dirty;
        false
      | Queued | Running_dirty -> false
    in
    let flush_wakes s =
      if s.wakes > 0 then begin
        let k = s.wakes in
        s.wakes <- 0;
        signal_idlers t k
      end
    in
    (* Push on [e]. Caller holds [shard (dst e)]'s lock [sh]; [s] is
       the sending node's state, which accumulates the wakes of this
       firing. *)
    let push_now sh s e (msg : Message.t) =
      let c = chans.(e) in
      if Channel.push c msg then begin
        Atomic.incr progress;
        if Channel.length c = 1 && wake_locked sh ed.((e * 8) + f_dst) then
          s.wakes <- s.wakes + 1;
        if obs then
          ev (Event.Push { edge = e; seq = msg.seq; payload = payload_of msg });
        true
      end
      else false
    in
    let push_to s e msg =
      let sh = shards.(shard_of.(ed.((e * 8) + f_dst))) in
      Mutex.lock sh.lock;
      let landed = push_now sh s e msg in
      Mutex.unlock sh.lock;
      landed
    in
    let enqueue s eid msg =
      let size = Array.length s.pend_eid in
      assert (s.pend_len < size);
      let tail = s.pend_head + s.pend_len in
      let tail = if tail >= size then tail - size else tail in
      s.pend_eid.(tail) <- eid;
      s.pend_msg.(tail) <- msg;
      s.pend_len <- s.pend_len + 1
    in
    let drop_slot eid old =
      ed.((eid * 8) + f_drop) <- ed.((eid * 8) + f_drop) + 1;
      if obs then ev (Event.Dummy_dropped { edge = eid; seq = old })
    in
    (* Attempt every pending send once; a refused channel blocks its
       later sends this pass (per-channel FIFO), other channels
       proceed. *)
    let rec flush_pending s fid size left =
      if left = 0 then ()
      else begin
        let eid = s.pend_eid.(s.pend_head) in
        let msg = s.pend_msg.(s.pend_head) in
        s.pend_msg.(s.pend_head) <- hole;
        s.pend_head <-
          (if s.pend_head + 1 >= size then 0 else s.pend_head + 1);
        s.pend_len <- s.pend_len - 1;
        if ed.((eid * 8) + f_bstamp) <> fid && push_to s eid msg then ()
        else begin
          ed.((eid * 8) + f_bstamp) <- fid;
          enqueue s eid msg
        end;
        flush_pending s fid size (left - 1)
      end
    in
    let rec flush_slots s fid k hi =
      if k >= hi then ()
      else begin
        let e = out_flat.(k) in
        let eb = e * 8 in
        let seq = ed.(eb + f_slot) in
        if
          seq >= 0
          && ed.(eb + f_bstamp) <> fid
          && push_to s e (Message.dummy ~seq)
        then begin
          ed.(eb + f_slot) <- -1;
          s.slots <- s.slots - 1
        end;
        flush_slots s fid (k + 1) hi
      end
    in
    let flush v s =
      s.flush_id <- s.flush_id + 1;
      let fid = s.flush_id in
      if s.pend_len > 0 then
        flush_pending s fid (Array.length s.pend_eid) s.pend_len;
      if s.slots > 0 then flush_slots s fid out_off.(v) out_off.(v + 1)
    in
    (* O(ids) kernel-output validation via the owner field, as in the
       sequential engine; the per-node fire stamp doubles as the
       duplicate collapser for [emit]. *)
    let rec validate_ids v stamp ids =
      match ids with
      | [] -> ()
      | id :: rest ->
        if id < 0 || id >= m || ed.((id * 8) + f_owner) <> v then
          invalid_arg
            (Printf.sprintf
               "Parallel_engine: kernel of node %d returned edge %d" v id);
        ed.((id * 8) + f_dstamp) <- stamp;
        validate_ids v stamp rest
    in
    let msg_for s seq =
      let msg = s.reuse in
      if msg.Message.seq = seq then msg
      else begin
        let nm = Message.data ~seq seq in
        s.reuse <- nm;
        nm
      end
    in
    let emit v s ~seq ~got_dummy =
      let stamp = s.fire_id in
      for k = out_off.(v) to out_off.(v + 1) - 1 do
        let e = out_flat.(k) in
        let eb = e * 8 in
        if ed.(eb + f_dstamp) = stamp then begin
          (let old = ed.(eb + f_slot) in
           if old >= 0 then begin
             ed.(eb + f_slot) <- -1;
             s.slots <- s.slots - 1;
             drop_slot e old
           end);
          ed.(eb + f_last) <- seq;
          let msg = msg_for s seq in
          if not (push_to s e msg) then enqueue s e msg
        end
        else begin
          let due = seq - ed.(eb + f_last) >= ed.(eb + f_thr) in
          if (forwarding && got_dummy) || due then begin
            (let old = ed.(eb + f_slot) in
             if old >= 0 then drop_slot e old else s.slots <- s.slots + 1);
            ed.(eb + f_slot) <- seq;
            if obs then ev (Event.Dummy_emitted { node = v; edge = e; seq });
            ed.(eb + f_last) <- seq;
            (* immediate delivery attempt, matching the sequential
               visit's post-firing flush *)
            if push_to s e (Message.dummy ~seq) then begin
              ed.(eb + f_slot) <- -1;
              s.slots <- s.slots - 1
            end
          end
        end
      done
    in
    let send_eos v s =
      for k = out_off.(v) to out_off.(v + 1) - 1 do
        let e = out_flat.(k) in
        let eb = e * 8 in
        (let old = ed.(eb + f_slot) in
         if old >= 0 then begin
           ed.(eb + f_slot) <- -1;
           s.slots <- s.slots - 1;
           drop_slot e old
         end);
        if not (push_to s e hole) then enqueue s e hole
      done;
      if obs then ev (Event.Eos { node = v });
      s.finished <- true
    in
    let fire_source v s =
      if s.next_input < inputs then begin
        let seq = s.next_input in
        s.next_input <- seq + 1;
        s.fire_id <- s.fire_id + 1;
        let ids = s.kernel ~seq ~got:[] in
        validate_ids v s.fire_id ids;
        if obs then
          ev
            (Event.Node_fired
               {
                 node = v;
                 seq;
                 got = [];
                 got_dummy = false;
                 sent = List.sort_uniq compare ids;
               });
        emit v s ~seq ~got_dummy:false;
        true
      end
      else if not s.finished then begin
        send_eos v s;
        true
      end
      else false
    in
    (* Head scan / consume, under the node's shard lock. Pops that
       free a full channel record the producer in [freed_buf]; the
       wakes are delivered after the lock is dropped (never two shard
       locks). *)
    let rec min_head k hi acc =
      if k >= hi then acc
      else
        let c = chans.(in_flat.(k)) in
        if Channel.is_empty c then min_int
        else
          let sq = Channel.peek_seq c in
          min_head (k + 1) hi (if sq < acc then sq else acc)
    in
    let dummy_bit = 1 lsl 62 in
    let rec consume s i k hi acc nfreed =
      if k >= hi then (acc, nfreed)
      else begin
        let e = in_flat.(k) in
        let c = chans.(e) in
        if Channel.peek_seq c = i then begin
          let was_full = Channel.is_full c in
          let msg = Channel.pop_exn c in
          Atomic.incr progress;
          let nfreed =
            if was_full then begin
              s.freed_buf.(nfreed) <- ed.((e * 8) + f_owner);
              nfreed + 1
            end
            else nfreed
          in
          if obs then
            ev
              (Event.Pop { edge = e; seq = msg.seq; payload = payload_of msg });
          match msg.body with
          | Message.Data _ ->
            s.reuse <- msg;
            let gn = acc land lnot dummy_bit in
            s.got_buf.(gn) <- e;
            if s.snk then s.sink_got <- s.sink_got + 1;
            consume s i (k + 1) hi (acc + 1) nfreed
          | Message.Dummy -> consume s i (k + 1) hi (acc lor dummy_bit) nfreed
          | Message.Eos -> assert false
        end
        else consume s i (k + 1) hi acc nfreed
      end
    in
    let rec got_list s k acc =
      if k < 0 then acc else got_list s (k - 1) (s.got_buf.(k) :: acc)
    in
    (* One signalling batch for every producer this pop pass freed. *)
    let wake_freed s nfreed =
      for k = 0 to nfreed - 1 do
        let v = s.freed_buf.(k) in
        let sh = shards.(shard_of.(v)) in
        Mutex.lock sh.lock;
        if wake_locked sh v then s.wakes <- s.wakes + 1;
        Mutex.unlock sh.lock
      done;
      flush_wakes s
    in
    let fire_inner v s =
      let shv = shards.(shard_of.(v)) in
      let lo = in_off.(v) and hi = in_off.(v + 1) in
      Mutex.lock shv.lock;
      let i = min_head lo hi max_int in
      if i = min_int then begin
        Mutex.unlock shv.lock;
        false
      end
      else if i = max_int then begin
        (* every input is at end-of-stream *)
        let nfreed = ref 0 in
        for k = lo to hi - 1 do
          let e = in_flat.(k) in
          let c = chans.(e) in
          let was_full = Channel.is_full c in
          let msg = Channel.pop_exn c in
          Atomic.incr progress;
          if was_full then begin
            s.freed_buf.(!nfreed) <- ed.((e * 8) + f_owner);
            incr nfreed
          end;
          if obs then
            ev (Event.Pop { edge = e; seq = msg.seq; payload = payload_of msg })
        done;
        Mutex.unlock shv.lock;
        wake_freed s !nfreed;
        send_eos v s;
        true
      end
      else begin
        let acc, nfreed = consume s i lo hi 0 0 in
        Mutex.unlock shv.lock;
        wake_freed s nfreed;
        let gn = acc land lnot dummy_bit in
        let got_dummy = acc land dummy_bit <> 0 in
        let got = got_list s (gn - 1) [] in
        s.fire_id <- s.fire_id + 1;
        (* kernel runs outside every lock: node computations overlap
           across domains *)
        let sent =
          match got with
          | [] -> []
          | got ->
            let ids = s.kernel ~seq:i ~got in
            validate_ids v s.fire_id ids;
            if obs then List.sort_uniq compare ids else []
        in
        if obs then
          ev (Event.Node_fired { node = v; seq = i; got; got_dummy; sent });
        emit v s ~seq:i ~got_dummy;
        true
      end
    in
    (* One task execution: retry what was stuck, then fire while the
       node stays runnable, up to [grain] firings (then requeue, for
       fairness). A firing whose sends left the pending ring non-empty
       opens a blocking episode: [Event.Blocked] is emitted exactly
       once per episode, when it opens. *)
    let run_node v =
      let s = st.(v) in
      if s.pend_len > 0 || s.slots > 0 then flush v s;
      flush_wakes s;
      if s.pend_len = 0 && s.blocked then s.blocked <- false;
      let continue = ref (s.pend_len = 0) in
      let budget = ref grain in
      while !continue && !budget > 0 && not (Atomic.get halt) do
        let fired =
          if s.src then fire_source v s
          else if not s.finished then fire_inner v s
          else false
        in
        (* wakes collected during the firing, one signalling batch *)
        flush_wakes s;
        decr budget;
        if not fired then continue := false
        else if s.pend_len > 0 then begin
          if not s.blocked then begin
            s.blocked <- true;
            if obs then
              ev (Event.Blocked { node = v; edge = s.pend_eid.(s.pend_head) })
          end;
          continue := false
        end
      done
    in
    (* Finalize once, when the last ticket is released (or from the
       backstop watchdog): drain any queue entries an aborted instance
       left behind, unlist the instance, assemble the report from the
       channels' ground-truth counters and hand it to the job. *)
    let finalize () =
      if Atomic.compare_and_set finalized false true then begin
        Array.iter
          (fun sh ->
            Mutex.lock sh.lock;
            let k = sh.q_len in
            if k > 0 then begin
              sh.q_len <- 0;
              ignore (Atomic.fetch_and_add iq (-k));
              ignore (Atomic.fetch_and_add t.queued (-k))
            end;
            Mutex.unlock sh.lock)
          shards;
        (let rec unlist () =
           let cur = Atomic.get t.insts in
           let nxt =
             Array.of_seq
               (Seq.filter
                  (fun (i : inst) -> i.iid <> iid)
                  (Array.to_seq cur))
           in
           if not (Atomic.compare_and_set t.insts cur nxt) then unlist ()
         in
         unlist ());
        let res =
          match Atomic.get failure with
          | Some ex -> Error ex
          | None ->
            let completed =
              (not (Atomic.get timed_out))
              && Array.for_all (fun s -> s.finished && s.pend_len = 0) st
              && Array.for_all Channel.is_empty chans
            in
            let outcome =
              if completed then Report.Completed else Report.Deadlocked
            in
            if obs then ev (Event.Run_finished { outcome });
            let sum f = Array.fold_left (fun a c -> a + f c) 0 chans in
            let dropped = ref 0 in
            for i = 0 to m - 1 do
              dropped := !dropped + ed.((i * 8) + f_drop)
            done;
            Ok
              {
                Report.outcome;
                data_messages = sum Channel.data_pushed;
                dummy_messages = sum Channel.dummies_pushed;
                sink_data = Array.fold_left (fun a s -> a + s.sink_got) 0 st;
                dropped_dummies = !dropped;
                per_edge_dummies = Array.map Channel.dummies_pushed chans;
                detail = Report.Parallel;
              }
        in
        Mutex.lock job.jlock;
        job.jres <- Some res;
        Condition.broadcast job.jcond;
        Mutex.unlock job.jlock
      end
    in
    (* Post-execution bookkeeping: consume a missed wake
       ([Running_dirty]) or re-queue ourselves while still runnable
       (grain exhaustion, sources) — the task keeps its ticket;
       otherwise go idle and release it, finalizing on the last one. *)
    let all_inputs_ready v =
      let rec go k hi =
        k >= hi
        || ((not (Channel.is_empty chans.(in_flat.(k)))) && go (k + 1) hi)
      in
      go in_off.(v) in_off.(v + 1)
    in
    let finish_task v =
      let sh = shards.(shard_of.(v)) in
      let s = st.(v) in
      Mutex.lock sh.lock;
      let rearm =
        (not (Atomic.get halt))
        && s.pend_len = 0
        && (not s.finished)
        && (s.src || all_inputs_ready v)
      in
      if rearm || s.state = Running_dirty then begin
        s.state <- Queued;
        let size = Array.length sh.queue in
        let tail = sh.q_head + sh.q_len in
        let tail = if tail >= size then tail - size else tail in
        sh.queue.(tail) <- v;
        sh.q_len <- sh.q_len + 1;
        Atomic.incr iq;
        Atomic.incr t.queued;
        Mutex.unlock sh.lock;
        signal_idlers t 1
      end
      else begin
        s.state <- Idle;
        Mutex.unlock sh.lock;
        if Atomic.fetch_and_add live (-1) = 1 then finalize ()
      end
    in
    (* Worker side of the instance: claim from the start shard, steal
       round-robin; execute with kernel-exception containment (the
       instance halts and drains, the pool lives on). *)
    let claim w =
      let rec scan k =
        if k = nshards then None
        else begin
          let sh = shards.((w + k) mod nshards) in
          Mutex.lock sh.lock;
          if sh.q_len > 0 then begin
            let v = sh.queue.(sh.q_head) in
            sh.q_head <-
              (if sh.q_head + 1 >= Array.length sh.queue then 0
               else sh.q_head + 1);
            sh.q_len <- sh.q_len - 1;
            st.(v).state <- Running;
            Atomic.decr iq;
            Atomic.decr t.queued;
            Mutex.unlock sh.lock;
            Some v
          end
          else begin
            Mutex.unlock sh.lock;
            scan (k + 1)
          end
        end
      in
      scan 0
    in
    let exec v =
      Atomic.incr in_flight;
      (try run_node v
       with ex ->
         ignore (Atomic.compare_and_set failure None (Some ex));
         Atomic.set halt true);
      finish_task v;
      Atomic.decr in_flight
    in
    (* Backstop watchdog (opt-in): fires only when the progress counter
       froze for a whole window with no kernel in flight and nothing
       queued for this instance — i.e. only if the ticket count somehow
       failed to reach zero at quiescence. A slow kernel keeps
       [in_flight] non-zero and can never trip it. *)
    let watchdog ms () =
      let window = float ms /. 1000. in
      let alive () = not (Atomic.get finalized) in
      let rec nap left =
        if left > 0. && alive () then begin
          Unix.sleepf (min 0.01 left);
          nap (left -. 0.01)
        end
      in
      let rec go last =
        nap window;
        if alive () then begin
          let p = Atomic.get progress in
          if p = last && Atomic.get in_flight = 0 && Atomic.get iq = 0
          then begin
            Atomic.set timed_out true;
            Atomic.set halt true;
            finalize ()
          end
          else go p
        end
      in
      go (-1)
    in
    (* Seed: sources are runnable from the start. The instance is still
       private (no locks needed); the pool learns about the new tasks
       only after the instance array CAS publishes everything. *)
    let seeded = ref 0 in
    for v = 0 to n - 1 do
      if st.(v).src then begin
        let sh = shards.(shard_of.(v)) in
        st.(v).state <- Queued;
        let tail = sh.q_head + sh.q_len in
        sh.queue.(tail) <- v;
        sh.q_len <- sh.q_len + 1;
        incr seeded
      end
    done;
    Atomic.set live !seeded;
    if !seeded = 0 then
      (* no sources: nothing can ever run, report on the spot *)
      finalize ()
    else begin
      let inst = { iid; iq; claim; exec } in
      let rec publish () =
        let cur = Atomic.get t.insts in
        let nxt = Array.append cur [| inst |] in
        if not (Atomic.compare_and_set t.insts cur nxt) then publish ()
      in
      publish ();
      (* [iq] goes live only after [t.queued]: pickers gate on [iq], so
         no claim can decrement [t.queued] below zero before the adds
         land; the idle re-check sees [t.queued] and rescans *)
      ignore (Atomic.fetch_and_add t.queued !seeded);
      ignore (Atomic.fetch_and_add iq !seeded);
      signal_idlers t !seeded
    end;
    (match stall_ms with
    | Some ms when ms > 0 -> job.dog <- Some (Domain.spawn (watchdog ms))
    | _ -> ());
    job

  let await job =
    Mutex.lock job.jlock;
    let rec wait () =
      match job.jres with
      | Some res -> res
      | None ->
        Condition.wait job.jcond job.jlock;
        wait ()
    in
    let res = wait () in
    Mutex.unlock job.jlock;
    (match job.dog with
    | Some d ->
      Domain.join d;
      job.dog <- None
    | None -> ());
    match res with Ok r -> r | Error ex -> raise ex
end

let run ?domains ?grain ?stall_ms ?sink ~graph ~kernels ~inputs ~avoidance () =
  Run.exec
    (Run.pool ?domains ?grain ?stall_ms ?sink ~avoidance ())
    ~graph ~kernels ~inputs ()

(* The Run facade dispatches [Pool] configs here; registration at
   module-initialization time (plus -linkall on this library) breaks
   the runtime -> parallel dependency cycle. *)
let () =
  Run.register_pool_impl
    (fun ~domains ~grain ~stall_ms ~sink ~graph ~kernels ~inputs ~avoidance ->
      let pool = Pool.create ?domains () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          Pool.await
            (Pool.submit pool ~grain ?stall_ms ?sink ~graph ~kernels ~inputs
               ~avoidance ())))
