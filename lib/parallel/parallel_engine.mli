(** Shared-memory parallel runtime: a fixed pool of worker domains
    driving a sharded ready-queue.

    Executes the same model as {!Fstream_runtime.Engine} — min-seq
    firing rule, per-node pending sends on full channels, coalescing
    one-slot dummy mouths, EOS termination — but with node kernels
    running concurrently on OCaml 5 domains. Nodes are lightweight
    tasks, not domains: the graph is partitioned into [domains]
    contiguous shards, each with its own lock and ready-queue of
    runnable nodes maintained from channel occupancy transitions (the
    parallel analogue of the sequential [Ready] scheduler); workers
    drain their home shard and steal from the others when it runs dry.
    There is no limit on graph size.

    Deadlock is detected structurally, by exact quiescence: the run
    ends when no kernel is in flight and no node is runnable; live
    nodes remaining at that point are a genuine deadlock of the
    streaming computation (nodes never block a worker — a send that
    finds a full channel parks in the node's pending ring and the node
    leaves the runnable set, so pool-level scheduling cannot wedge).
    The wall-clock [stall_ms] watchdog of the earlier one-domain-per-
    node runtime survives only as an opt-in backstop which additionally
    requires zero in-flight kernels — a kernel that merely computes for
    longer than the window can no longer be misreported as deadlock.

    Determinism: kernels whose decisions depend only on their own
    node's firing history make the data computation a Kahn network, so
    the outcome and the data/sink message counts equal the sequential
    engine's under [No_avoidance] (including deadlock wedges), and the
    data/sink counts on any run that completes. Dummy traffic is
    timing-driven and may differ from the sequential engine and from
    run to run.

    Kernels are invoked for one node by at most one worker at a time
    (consecutive firings may land on different domains, with the
    happens-before edges the scheduler provides), but different nodes'
    kernels run concurrently: a kernel factory passed to {!run} must
    give each node its own state (e.g. its own [Random.State.t]).

    Grain amplification: when per-message scheduling overhead dominates
    (tiny kernels on deep pipelines — EXPERIMENTS.md §P1's zero-work
    rows), run a fused plan instead of scheduling every node: compile
    with [Compiler.plan ~fuse:true], wrap the kernel factory with
    {!Fstream_runtime.Fused.make}, and run [fusion.graph] here. A whole
    chain then costs one task per firing, with its internal hops as
    plain function calls. The per-node exclusivity guarantee above
    extends to compound kernels: each one's sub-chain state (the
    {!Fstream_runtime.Fused.fired} counters) has a single writer at any
    time. Measured in bench §FU1. *)

open Fstream_graph

val run :
  ?domains:int ->
  ?grain:int ->
  ?stall_ms:int ->
  ?sink:Fstream_obs.Sink.t ->
  graph:Graph.t ->
  kernels:(Graph.node -> Fstream_runtime.Engine.kernel) ->
  inputs:int ->
  avoidance:Fstream_runtime.Engine.avoidance ->
  unit ->
  Fstream_runtime.Report.t
(** Run the application on [inputs] external sequence numbers with a
    pool of [domains] worker domains (default: derived from
    [Domain.recommended_domain_count ()], at least 1, at most 8).
    [domains = 1] is a valid single-worker execution of the same
    machinery. The result's [detail] is
    {!Fstream_runtime.Report.Parallel}: there is no round counter or
    wedge snapshot in a preemptive execution, and the outcome never
    reports [Budget_exhausted].

    [grain] (default 32) bounds consecutive firings of one node per
    task execution before it re-queues itself, trading scheduling
    overhead against fairness.

    [stall_ms] enables the backstop watchdog: abort and report
    [Deadlocked] if the push/pop progress counter freezes for a full
    window {e while no kernel is in flight and nothing is queued}.
    Default: disabled — the structural quiescence check is the
    detector of record, and the backstop only matters if that check is
    itself broken.

    [sink] receives the same typed event vocabulary as the sequential
    engine, minus the scheduler-only events ([Round_started], [Wedge]).
    Sink calls are serialized across domains, so a non-thread-safe
    sink (ring buffer, JSON writer) is safe; the interleaving reflects
    the actual schedule and differs from run to run.
    [Event.Blocked] is emitted once per blocking episode (opened when
    a firing leaves sends pending on a full channel), not per retry.
    Message counts in the returned report come from the channels' own
    counters, the same ground truth as the sequential engine's. The
    engine never closes the sink.

    @raise Invalid_argument if [domains] is outside [1, 126], if
    [grain < 1], if [avoidance] carries a threshold table computed for
    a different graph, or if a kernel returns an edge id it does not
    own. Kernel exceptions propagate after the pool shuts down. *)
