(** Shared-memory parallel execution of filtering streaming DAGs.

    {!Fstream_runtime.Engine} is a deterministic sequential scheduler;
    this engine runs the same model for real: one OCaml 5 domain per
    compute node, channels as bounded queues, and {e genuinely
    blocking} sends — a producer thread stalls inside [send] until its
    consumer drains the buffer, which is precisely the mechanism that
    turns filtering into deadlock. The two dummy wrappers carry over
    unchanged (sequence-number gap thresholds, forwarding under
    Propagation, non-blocking coalescing dummy slots).

    Synchronisation is deliberately coarse: one application-wide
    monitor guards all queue state, and kernels execute outside the
    lock (so node computations genuinely overlap). This favours
    faithfulness and auditability over throughput — the point is that
    deadlocks (and their absence, under the wrappers) happen for real,
    with preemptive scheduling the sequential engine cannot exhibit.

    Deadlock detection is a watchdog: if no channel operation happens
    for [stall_ms] while work remains, the run is aborted and reported
    as [Deadlocked]. Keep kernels fast relative to [stall_ms], or raise
    it.

    Kernels are invoked only from their own node's domain, but
    different nodes' kernels run concurrently: a kernel factory passed
    to {!run} must give each node its own state (e.g. its own
    [Random.State.t]). *)

open Fstream_graph

val run :
  ?stall_ms:int ->
  ?sink:Fstream_obs.Sink.t ->
  graph:Graph.t ->
  kernels:(Graph.node -> Fstream_runtime.Engine.kernel) ->
  inputs:int ->
  avoidance:Fstream_runtime.Engine.avoidance ->
  unit ->
  Fstream_runtime.Report.t
(** Spawns one domain per node (plus a watchdog) and joins them all
    before returning. [stall_ms] defaults to 200. The result's
    [detail] is {!Fstream_runtime.Report.Parallel}: there is no round
    counter or wedge snapshot in a preemptive execution, and the
    outcome never reports [Budget_exhausted].

    [sink] receives the same typed event vocabulary as the sequential
    engine, minus the scheduler-only events ([Round_started], [Wedge]);
    events are emitted with the engine's global lock held, so a
    non-thread-safe sink (ring buffer, JSON writer) is safe. The
    interleaving reflects the actual preemptive schedule and differs
    from run to run. The engine never closes the sink.

    @raise Invalid_argument for graphs with more than 64 nodes — one
    domain per node is only reasonable for small applications.
    @raise Invalid_argument if [avoidance] carries a threshold table
    computed for a different graph. *)
