(** Shared-memory parallel runtime: a persistent pool of worker domains
    driving sharded ready-queues, multiplexing any number of live
    application instances.

    Executes the same model as {!Fstream_runtime.Engine} — min-seq
    firing rule, per-node pending sends on full channels, coalescing
    one-slot dummy mouths, EOS termination — but with node kernels
    running concurrently on OCaml 5 domains. Nodes are lightweight
    tasks, not domains: each submitted instance's graph is partitioned
    into [domains] contiguous shards, each with its own lock and
    ready-queue of runnable nodes maintained from channel occupancy
    transitions (the parallel analogue of the sequential [Ready]
    scheduler); workers drain their home shard and steal from the
    others when it runs dry. There is no limit on graph size.

    Multi-tenancy ({!Pool}): one pool serves many concurrently
    submitted instances. Workers rotate between instances under a
    fair-share quota — at most [quota] consecutive task grants to one
    instance while another has queued work — so a hot tenant cannot
    starve the rest (the instance-level analogue of the per-node
    [grain] bound). Completion is detected per instance by a live-task
    ticket counter: every queued-or-running task holds a ticket, all
    wakes come from running tasks of the same instance, so the count
    dropping to zero is a permanent quiescence — the instance finished
    or its remaining nodes are genuinely deadlocked (nodes never block
    a worker: a send that finds a full channel parks in the node's
    pending ring and the node leaves the runnable set, so pool-level
    scheduling cannot wedge). The wall-clock [stall_ms] watchdog of the
    earlier one-domain-per-node runtime survives only as an opt-in
    backstop which additionally requires zero in-flight kernels — a
    kernel that merely computes for longer than the window can no
    longer be misreported as deadlock.

    Determinism: kernels whose decisions depend only on their own
    node's firing history make the data computation a Kahn network, so
    the outcome and the data/sink message counts equal the sequential
    engine's under [No_avoidance] (including deadlock wedges), and the
    data/sink counts on any run that completes. Dummy traffic is
    timing-driven and may differ from the sequential engine and from
    run to run.

    Kernels are invoked for one node by at most one worker at a time
    (consecutive firings may land on different domains, with the
    happens-before edges the scheduler provides), but different nodes'
    kernels run concurrently: a kernel factory must give each node its
    own state (e.g. its own [Random.State.t]), and kernel state must
    not be shared between instances submitted to the same pool.

    Grain amplification: when per-message scheduling overhead dominates
    (tiny kernels on deep pipelines — EXPERIMENTS.md §P1's zero-work
    rows), run a fused plan instead of scheduling every node: compile
    with [Compiler.Options.fuse], wrap the kernel factory with
    {!Fstream_runtime.Fused.make}, and run [fusion.graph] here. A whole
    chain then costs one task per firing, with its internal hops as
    plain function calls. The per-node exclusivity guarantee above
    extends to compound kernels: each one's sub-chain state (the
    {!Fstream_runtime.Fused.fired} counters) has a single writer at any
    time. Measured in bench §FU1. *)

open Fstream_graph

(** {1 Defaults}

    Re-exported from {!Fstream_runtime.Run} — the single source of
    truth shared with the sequential engine's facade, so callers
    (serve layer, bench) never hard-code the numbers. *)

val default_grain : int
(** = {!Fstream_runtime.Run.default_grain}. *)

val default_domains : unit -> int
(** = {!Fstream_runtime.Run.default_domains}. *)

val default_quota : int
(** Fair-share bound: consecutive task grants one worker gives a
    single instance while another instance has queued work. *)

(** A persistent worker pool serving many application instances. *)
module Pool : sig
  type t

  type job
  (** A submitted instance; a handle to {!await} its report. *)

  val create : ?domains:int -> ?quota:int -> unit -> t
  (** Spawn [domains] worker domains (default {!default_domains}; must
      be in [1, 126]) that live until {!shutdown}. [quota] (default
      {!default_quota}, must be ≥ 1) is the fair-share bound described
      above. *)

  val domains : t -> int

  val submit :
    t ->
    ?grain:int ->
    ?stall_ms:int ->
    ?sink:Fstream_obs.Sink.t ->
    graph:Graph.t ->
    kernels:(Graph.node -> Fstream_runtime.Engine.kernel) ->
    inputs:int ->
    avoidance:Fstream_runtime.Engine.avoidance ->
    unit ->
    job
  (** Start an instance of the application on [inputs] external
      sequence numbers; returns immediately. Argument meanings and
      validation are exactly {!run}'s. The instance's sources become
      runnable at once; its tasks interleave with every other live
      instance's under the fair-share quota.

      @raise Invalid_argument if [grain < 1] or if [avoidance] carries
      a threshold table computed for a different graph. *)

  val await : job -> Fstream_runtime.Report.t
  (** Block until the instance reaches permanent quiescence and return
      its report ({!run}'s contract). Re-raises the instance's kernel
      (or kernel-validation) exception if one aborted it. [await] may
      be called at most once per job, from any thread that is not a
      pool worker. *)

  val shutdown : t -> unit
  (** Stop and join the worker domains. Call only after every
      submitted job has been awaited; jobs still live at shutdown are
      abandoned un-finalized and their [await] never returns. *)
end

val run :
  ?domains:int ->
  ?grain:int ->
  ?stall_ms:int ->
  ?sink:Fstream_obs.Sink.t ->
  graph:Graph.t ->
  kernels:(Graph.node -> Fstream_runtime.Engine.kernel) ->
  inputs:int ->
  avoidance:Fstream_runtime.Engine.avoidance ->
  unit ->
  Fstream_runtime.Report.t
(** One-shot convenience: a thin wrapper that builds a
    {!Fstream_runtime.Run.pool} config and calls
    {!Fstream_runtime.Run.exec} — which lands back here on a private
    single-instance pool (create, submit, await, shutdown). Run the
    application on [inputs] external sequence numbers with a pool of
    [domains] worker domains (default {!default_domains}; [domains =
    1] is a valid single-worker execution of the same machinery). The
    result's [detail] is {!Fstream_runtime.Report.Parallel}: there is
    no round counter or wedge snapshot in a preemptive execution, and
    the outcome never reports [Budget_exhausted].

    [grain] (default {!default_grain}) bounds consecutive firings of
    one node per task execution before it re-queues itself, trading
    scheduling overhead against fairness.

    [stall_ms] enables the backstop watchdog: abort and report
    [Deadlocked] if the instance's push/pop progress counter freezes
    for a full window {e while none of its kernels is in flight}.
    Default: disabled — the structural quiescence check is the
    detector of record, and the backstop only matters if that check is
    itself broken (an instance merely starved by other tenants keeps a
    non-empty ready-queue and cannot trip it).

    [sink] receives the same typed event vocabulary as the sequential
    engine, minus the scheduler-only events ([Round_started], [Wedge]).
    Sink calls are serialized across domains, so a non-thread-safe
    sink (ring buffer, JSON writer) is safe; the interleaving reflects
    the actual schedule and differs from run to run.
    [Event.Blocked] is emitted once per blocking episode (opened when
    a firing leaves sends pending on a full channel), not per retry.
    Message counts in the returned report come from the channels' own
    counters, the same ground truth as the sequential engine's. The
    engine never closes the sink.

    @raise Invalid_argument if [domains] is outside [1, 126], if
    [grain < 1], if [avoidance] carries a threshold table computed for
    a different graph, or if a kernel returns an edge id it does not
    own. Kernel exceptions propagate after the instance drains. *)
