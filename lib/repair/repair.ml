open Fstream_graph
open Fstream_ladder

type reroute = {
  deleted : Graph.node * Graph.node;
  via : Graph.node;
  added : (Graph.node * Graph.node) option;
}

type t = {
  graph : Graph.t;
  reroutes : reroute list;
  added_edges : int;
  deleted_edges : int;
}

(* One rewrite step: given a witness cycle with multiple sources, find a
   single-edge run [s -> t] whose source-adjacent run ends at a relay
   vertex [via] such that the relay channel [via -> t] keeps the graph
   acyclic; delete [s -> t] and ensure [via -> t] exists. *)
let rewrite_step ~relay_cap g cycle =
  let runs = Cycles.runs cycle in
  let opposite = Cycles.opposite_run cycle in
  let has_edge u v =
    List.exists (fun (e : Graph.edge) -> e.dst = v) (Graph.out_edges g u)
  in
  let candidates =
    List.filter_map
      (fun i ->
        let r = runs.(i) in
        match r.Cycles.run_edges with
        | [ e ] ->
          let via = runs.(opposite.(i)).Cycles.run_sink in
          let t = r.Cycles.run_sink in
          if via = t then None
          else if (Topo.reachable g t).(via) then None
            (* a relay via -> t would close a directed cycle *)
          else Some (e, via, t, has_edge via t)
        | _ -> None)
      (List.init (Array.length runs) Fun.id)
  in
  (* Prefer rewrites that reuse an existing relay channel. *)
  let candidates =
    List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) candidates
  in
  match candidates with
  | [] -> None
  | (e, via, t, relay_exists) :: _ ->
    let cap = Option.value relay_cap ~default:e.Graph.cap in
    let edges =
      List.filter_map
        (fun (e' : Graph.edge) ->
          if e'.id = e.Graph.id then None else Some (e'.src, e'.dst, e'.cap))
        (Graph.edges g)
    in
    let edges = if relay_exists then edges else edges @ [ (via, t, cap) ] in
    let g' = Graph.make ~nodes:(Graph.num_nodes g) edges in
    Some
      ( g',
        {
          deleted = (e.Graph.src, e.Graph.dst);
          via;
          added = (if relay_exists then None else Some (via, t));
        } )

let repair ?max_rounds ?relay_cap g =
  let budget = Option.value max_rounds ~default:(4 * Graph.num_edges g) in
  match Topo.is_two_terminal g with
  | None -> Error "not a connected two-terminal DAG"
  | Some _ ->
    let rec loop g reroutes rounds =
      if Cs4.is_cs4 g then
        Ok
          {
            graph = g;
            reroutes = List.rev reroutes;
            added_edges =
              List.length
                (List.filter (fun r -> r.added <> None) reroutes);
            deleted_edges = List.length reroutes;
          }
      else if rounds >= budget then
        Error "repair did not converge within its round budget"
      else
        match Cs4.bad_cycle_witness g with
        | None -> Error "not CS4 yet no multi-source cycle witness"
        | Some cycle -> (
          match rewrite_step ~relay_cap g cycle with
          | None -> Error "witness cycle admits no acyclic reroute"
          | Some (g', r) -> loop g' (r :: reroutes) (rounds + 1))
    in
    loop g [] 0

let preserves_reachability original t =
  let n = Graph.num_nodes original in
  if Graph.num_nodes t.graph <> n then false
  else begin
    let ok = ref true in
    for v = 0 to n - 1 do
      let before = Topo.reachable original v in
      let after = Topo.reachable t.graph v in
      for w = 0 to n - 1 do
        if before.(w) && not after.(w) then ok := false
      done
    done;
    !ok
  end

(* Shared rendering for the CLI: `streamcheck repair` and
   `streamcheck lint --fix` print reroutes through these, so the two
   commands cannot drift apart. *)
let pp_reroute ppf r =
  Format.fprintf ppf "reroute %d->%d via %d%s" (fst r.deleted) (snd r.deleted)
    r.via
    (match r.added with
    | None -> " (relay channel existed)"
    | Some (a, b) -> Printf.sprintf " (added %d->%d)" a b)

let pp_summary ~original ppf t =
  Format.fprintf ppf "repaired: %d channel(s) deleted, %d added@." t.deleted_edges
    t.added_edges;
  List.iter (fun r -> Format.fprintf ppf "  %a@." pp_reroute r) t.reroutes;
  Format.fprintf ppf "reachability preserved: %b"
    (preserves_reachability original t)
