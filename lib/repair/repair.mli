(** Topology repair: rewrite a non-CS4 DAG into a CS4 one.

    The paper's conclusion asks "whether one can efficiently translate
    arbitrary DAGs to equivalent CS4 topologies by adding a small
    number of nodes and edges", and sketches the butterfly example:
    replace the crossing channel b->c by routing b's traffic through d
    over a new channel d->c. This module implements that idea as an
    iterative heuristic:

    - while the graph is not CS4, take a witness cycle with two or more
      sources ({!Fstream_ladder.Cs4.bad_cycle_witness});
    - pick a single-edge run [s -> t] of the witness and reroute it
      through the sink [t'] of an adjacent run: delete [s -> t], ensure
      a relay channel [t' -> t] (or [t -> t'] if the opposite direction
      is forced by acyclicity) exists;
    - repeat, up to a bound.

    A rewrite never removes connectivity: traffic from [s] to [t] now
    rides the existing [s ~> t'] run plus the relay channel, so the
    *application* is preserved provided the node at [t'] forwards the
    rerouted stream (the runtime example [examples/butterfly_repair.ml]
    shows the forwarding kernel). The heuristic is not complete — the
    paper leaves existence of a general efficient translation open —
    and reports failure honestly. *)

open Fstream_graph

type reroute = {
  deleted : Graph.node * Graph.node;  (** the removed channel (s, t) *)
  via : Graph.node;  (** the relay vertex t' *)
  added : (Graph.node * Graph.node) option;
      (** relay channel created, if it did not already exist *)
}

type t = {
  graph : Graph.t;  (** the repaired, CS4 topology *)
  reroutes : reroute list;  (** in application order *)
  added_edges : int;
  deleted_edges : int;
}

val repair :
  ?max_rounds:int -> ?relay_cap:int -> Graph.t -> (t, string) result
(** [repair g] returns a CS4 topology when the heuristic converges
    (identity repair if [g] is already CS4). [relay_cap] is the buffer
    capacity of newly created relay channels (default: capacity of the
    deleted channel). [max_rounds] bounds the rewrite loop (default
    [4 * num_edges]). *)

val preserves_reachability : Graph.t -> t -> bool
(** Every ordered node pair connected by a directed path in the
    original graph is still connected in the repaired one — the
    property that makes rerouted forwarding possible. *)

val pp_reroute : Format.formatter -> reroute -> unit
(** One line: [reroute s->t via t' (added a->b | relay channel existed)]. *)

val pp_summary : original:Graph.t -> Format.formatter -> t -> unit
(** The CLI summary shared by [streamcheck repair] and
    [streamcheck lint --fix]: deleted/added counts, one line per
    reroute, and whether reachability from [original] is preserved. *)
