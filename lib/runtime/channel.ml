type event = Became_nonempty | Freed_slot

type t = {
  capacity : int;
  queue : Message.t Queue.t;
  mutable last_seq : int;
  mutable total_pushed : int;
  mutable dummies_pushed : int;
  mutable data_pushed : int;
  mutable high_watermark : int;
  mutable notify : event -> unit;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Channel.create: capacity < 1";
  {
    capacity;
    queue = Queue.create ();
    last_seq = -1;
    total_pushed = 0;
    dummies_pushed = 0;
    data_pushed = 0;
    high_watermark = 0;
    notify = ignore;
  }

let capacity c = c.capacity
let length c = Queue.length c.queue
let is_full c = length c >= c.capacity
let is_empty c = Queue.is_empty c.queue
let subscribe c f = c.notify <- f

let push c (m : Message.t) =
  if is_full c then false
  else begin
    if m.seq <= c.last_seq then
      invalid_arg "Channel.push: sequence numbers must increase";
    c.last_seq <- m.seq;
    c.total_pushed <- c.total_pushed + 1;
    (match m.body with
    | Message.Data _ -> c.data_pushed <- c.data_pushed + 1
    | Message.Dummy -> c.dummies_pushed <- c.dummies_pushed + 1
    | Message.Eos -> ());
    let was_empty = Queue.is_empty c.queue in
    Queue.add m c.queue;
    if Queue.length c.queue > c.high_watermark then
      c.high_watermark <- Queue.length c.queue;
    if was_empty then c.notify Became_nonempty;
    true
  end

let peek c = Queue.peek_opt c.queue

let pop c =
  let was_full = is_full c in
  match Queue.take_opt c.queue with
  | None -> None
  | Some m ->
    if was_full then c.notify Freed_slot;
    Some m

let total_pushed c = c.total_pushed
let dummies_pushed c = c.dummies_pushed
let data_pushed c = c.data_pushed
let high_watermark c = c.high_watermark
