type event = Became_nonempty | Freed_slot

(* Preallocated circular buffer: [buf] holds [len] messages starting at
   [head], wrapping modulo [capacity]. Steady-state push/pop touch only
   the two indices and the counters — no queue cells, no options, no GC
   traffic. Freed slots are overwritten with the shared [hole] sentinel
   so popped messages are not retained by the buffer. *)

let hole : Message.t = Message.eos ()

type t = {
  capacity : int;
  buf : Message.t array;
  mutable head : int;
  mutable len : int;
  mutable last_seq : int;
  mutable total_pushed : int;
  mutable dummies_pushed : int;
  mutable data_pushed : int;
  mutable high_watermark : int;
  mutable notify : event -> unit;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Channel.create: capacity < 1";
  {
    capacity;
    buf = Array.make capacity hole;
    head = 0;
    len = 0;
    last_seq = -1;
    total_pushed = 0;
    dummies_pushed = 0;
    data_pushed = 0;
    high_watermark = 0;
    notify = ignore;
  }

let capacity c = c.capacity
let length c = c.len
let is_full c = c.len >= c.capacity
let is_empty c = c.len = 0
let subscribe c f = c.notify <- f

let push c (m : Message.t) =
  if c.len >= c.capacity then false
  else begin
    if m.seq <= c.last_seq then
      invalid_arg "Channel.push: sequence numbers must increase";
    c.last_seq <- m.seq;
    c.total_pushed <- c.total_pushed + 1;
    (match m.body with
    | Message.Data _ -> c.data_pushed <- c.data_pushed + 1
    | Message.Dummy -> c.dummies_pushed <- c.dummies_pushed + 1
    | Message.Eos -> ());
    let tail = c.head + c.len in
    let tail = if tail >= c.capacity then tail - c.capacity else tail in
    c.buf.(tail) <- m;
    c.len <- c.len + 1;
    if c.len > c.high_watermark then c.high_watermark <- c.len;
    if c.len = 1 then c.notify Became_nonempty;
    true
  end

let peek_seq c =
  if c.len = 0 then invalid_arg "Channel.peek_seq: empty channel";
  c.buf.(c.head).seq

let peek_exn c =
  if c.len = 0 then invalid_arg "Channel.peek_exn: empty channel";
  c.buf.(c.head)

let peek c = if c.len = 0 then None else Some c.buf.(c.head)

let pop_exn c =
  if c.len = 0 then invalid_arg "Channel.pop_exn: empty channel";
  let was_full = c.len >= c.capacity in
  let m = c.buf.(c.head) in
  c.buf.(c.head) <- hole;
  c.head <- (if c.head + 1 >= c.capacity then 0 else c.head + 1);
  c.len <- c.len - 1;
  if was_full then c.notify Freed_slot;
  m

let pop c = if c.len = 0 then None else Some (pop_exn c)

let total_pushed c = c.total_pushed
let dummies_pushed c = c.dummies_pushed
let data_pushed c = c.data_pushed
let high_watermark c = c.high_watermark
