(** Bounded FIFO channels.

    A channel models one edge of the application DAG: reliable, in
    order, with a finite buffer of [capacity] messages — the finiteness
    that makes filtering deadlocks possible.

    The buffer is a preallocated circular array: steady-state
    [push]/[pop_exn]/[peek_seq] allocate nothing, which is what keeps
    the engine's hot loop off the minor heap (bench §C7). The
    option-returning [peek]/[pop] remain for call sites outside the hot
    path.

    Channels report their occupancy {e transitions} to a subscriber:
    exactly the two state changes that can make an idle node runnable
    again (its input gained a first message; its clogged output freed a
    slot). The event-driven scheduler in {!Engine} is built on these
    facts, so it never has to rescan quiescent nodes. *)

type t

type event =
  | Became_nonempty  (** a push landed on an empty channel *)
  | Freed_slot  (** a pop drained a message from a full channel *)

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val subscribe : t -> (event -> unit) -> unit
(** [subscribe c f] makes [c] call [f] on every occupancy transition,
    after the channel state has been updated (so [f] observes the new
    state). At most one subscriber; a second call replaces the first.
    Fresh channels have no subscriber. *)

val push : t -> Message.t -> bool
(** [false] (and no effect) when full. Enforces sequence-number
    monotonicity: @raise Invalid_argument if the message's sequence
    number is not greater than the last pushed one. *)

val peek : t -> Message.t option
val pop : t -> Message.t option

val peek_seq : t -> int
(** Sequence number of the head message, without boxing the message in
    an option. Guard with {!is_empty} (an unboxed check) on the hot
    path. @raise Invalid_argument on an empty channel. *)

val peek_exn : t -> Message.t
(** Head message without option boxing.
    @raise Invalid_argument on an empty channel. *)

val pop_exn : t -> Message.t
(** Allocation-free {!pop}: returns the head message directly and fires
    the [Freed_slot] transition exactly like {!pop}.
    @raise Invalid_argument on an empty channel. *)

val total_pushed : t -> int
val dummies_pushed : t -> int
val data_pushed : t -> int

val high_watermark : t -> int
(** Peak buffer occupancy over the channel's lifetime (0 for a fresh
    channel; never exceeds {!capacity}). The event-stream metrics
    ({!Fstream_obs.Metrics}) reconstruct the same quantity from
    [Push]/[Pop] events; this counter is the engine-side ground
    truth. *)
