open Fstream_graph

type witness = {
  cycle : Cycles.t;
  full_channels : Graph.edge list;
  empty_channels : Graph.edge list;
}

(* Waits-for step: a node, the channel it waits on, and whether it
   waits as a blocked producer (full channel, follow it forward) or a
   starving consumer (empty channel, follow it backward to the
   producer). *)
type wait = { via : Graph.edge; full : bool }

let explain g (snap : Report.snapshot) =
  let n = Graph.num_nodes g in
  let cap i = (Graph.edge g i).cap in
  let wait_edges v =
    if snap.Report.node_blocked.(v) then
      List.filter_map
        (fun (e : Graph.edge) ->
          if snap.Report.channel_lengths.(e.id) >= cap e.id then
            Some (e.dst, { via = e; full = true })
          else None)
        (Graph.out_edges g v)
    else if not snap.Report.node_finished.(v) then
      List.filter_map
        (fun (e : Graph.edge) ->
          if snap.Report.channel_lengths.(e.id) = 0 then
            Some (e.src, { via = e; full = false })
          else None)
        (Graph.in_edges g v)
    else []
  in
  (* DFS for a directed cycle in the waits-for relation. *)
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let found = ref None in
  let rec dfs path v =
    if !found = None then
      if color.(v) = 1 then begin
        (* unwind [path] back to v: that suffix is the cycle *)
        let rec cut acc = function
          | [] -> acc
          | (u, w) :: rest -> if u = v then (u, w) :: acc else cut ((u, w) :: acc) rest
        in
        found := Some (cut [] path)
      end
      else if color.(v) = 0 then begin
        color.(v) <- 1;
        List.iter
          (fun (next, w) -> if !found = None then dfs ((v, w) :: path) next)
          (wait_edges v);
        color.(v) <- 2
      end
  in
  for v = 0 to n - 1 do
    if !found = None && color.(v) = 0 then dfs [] v
  done;
  match !found with
  | None -> None
  | Some steps ->
    let cycle =
      List.map
        (fun (_, w) -> { Cycles.edge = w.via; fwd = w.full })
        steps
    in
    let full_channels =
      List.filter_map (fun (_, w) -> if w.full then Some w.via else None) steps
    in
    let empty_channels =
      List.filter_map
        (fun (_, w) -> if not w.full then Some w.via else None)
        steps
    in
    Some { cycle; full_channels; empty_channels }

let pp_witness ppf w =
  let channel ppf (e : Graph.edge) =
    Format.fprintf ppf "e%d (%d->%d)" e.id e.src e.dst
  in
  Format.fprintf ppf
    "@[<v>deadlock witness cycle (\u{00a7}II.B):@,  full:  %a@,  empty: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       channel)
    w.full_channels
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       channel)
    w.empty_channels
