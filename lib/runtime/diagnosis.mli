(** Deadlock diagnosis: recover the witness cycle of §II.B.

    The theory behind the whole paper is that "every potential deadlock
    in a DAG corresponds to some undirected cycle" whose directed runs
    alternate between completely full buffers (a producer blocked
    pushing) and completely empty ones (a consumer starving because of
    filtering). This module makes that statement executable: from the
    frozen {!Report.snapshot} of a deadlocked run it builds the
    waits-for relation — a blocked producer waits on the consumer of
    its full channel; a starving node waits on the producer of an empty
    input channel — and extracts a cycle of it, which is exactly an
    undirected cycle of the application graph traversed forward along
    full channels and backward along empty ones.

    Its existence on every wedge the runtime can reach is itself a
    property test of the paper's claim (see [test/test_diagnosis.ml]). *)

open Fstream_graph

type witness = {
  cycle : Cycles.t;  (** the undirected cycle, as an oriented traversal *)
  full_channels : Graph.edge list;  (** at capacity, traversed forward *)
  empty_channels : Graph.edge list;  (** empty, traversed backward *)
}

val explain : Graph.t -> Report.snapshot -> witness option
(** [None] only if the snapshot is not actually wedged (e.g. a stalled
    end-of-stream state with no blocked producer). *)

val pp_witness : Format.formatter -> witness -> unit
