open Fstream_graph
module Thresholds = Fstream_core.Thresholds
module Event = Fstream_obs.Event
module Sink = Fstream_obs.Sink

type kernel = seq:int -> got:int list -> int list

type avoidance =
  | No_avoidance
  | Propagation of Thresholds.t
  | Non_propagation of Thresholds.t

type scheduler = Sweep | Ready

(* Pending sends live in a per-node circular buffer instead of a
   [Queue.t]: a node cannot fire while its pending queue is non-empty,
   so the queue never holds more than one firing's worth of sends —
   at most [out_degree] entries (data plus EOS fan-out) — and both
   arrays are preallocated to exactly that.

   The scalar node state rides in the same record (one block per node,
   loaded once per visit): [slots] counts this node's out-edges holding
   a queued dummy slot, [src]/[snk] cache the degree-zero tests. *)
type node_state = {
  kernel : kernel;
  pend_eid : int array;
  pend_msg : Message.t array;
  mutable pend_head : int;
  mutable pend_len : int;
  mutable next_input : int;
  mutable finished : bool;
  mutable slots : int;
  src : bool;
  snk : bool;
}

let hole : Message.t = Message.eos ()

let payload_of (m : Message.t) =
  match m.body with
  | Message.Data _ -> Event.Data
  | Message.Dummy -> Event.Dummy
  | Message.Eos -> Event.Eos

(* Per-edge scalars are packed into one stride-8 int array ([ed]) so a
   firing touches one cache line per edge instead of six parallel
   arrays — the large-graph hot path is memory-bound (bench §C7).
   Offsets within an edge's stride: *)
let f_thr = 0 (* dummy threshold; [max_int] = none *)
let f_last = 1 (* last sequence number sent *)
let f_slot = 2 (* queued dummy slot; [-1] = empty *)
let f_dstamp = 3 (* fire_id stamp: kernel chose this edge *)
let f_bstamp = 4 (* flush_id stamp: push refused this flush *)
let f_owner = 5 (* source node of the edge *)
let f_dst = 6 (* destination node of the edge *)

let run ?(scheduler = Ready) ?(dense_below = 512) ?(batch = 1) ?max_rounds
    ?deadlock_dump ?sink ~graph:g ~kernels ~inputs ~avoidance () =
  if batch < 1 then invalid_arg "Engine.run: batch < 1";
  let sink =
    match sink with
    | Some s when not (Sink.is_null s) -> Some s
    | _ -> None
  in
  (* [obs] gates event *construction* — with no sink (or the null
     sink) the instrumentation costs one branch per potential event
     (measured in bench O1). *)
  let obs = sink <> None in
  let ev e = match sink with Some s -> Sink.emit s e | None -> () in
  let n = Graph.num_nodes g and m = Graph.num_edges g in
  let chan =
    Array.init m (fun i -> Channel.create ~capacity:(Graph.edge g i).cap)
  in
  let thresholds, forwarding =
    match avoidance with
    | No_avoidance -> (Array.make m None, false)
    | Propagation t ->
      Thresholds.check t g;
      (Thresholds.to_array t, true)
    | Non_propagation t ->
      Thresholds.check t g;
      (Thresholds.to_array t, false)
  in
  let ed = Array.make (m * 8) 0 in
  for i = 0 to m - 1 do
    let eb = i * 8 in
    (* [max_int] encodes "no threshold": a gap of [seq - last_sent] can
       never reach it, so the hot path does one int compare instead of
       an option match. [f_last] tracks the last sequence number sent
       on the channel — the dummy rule bounds the *sequence-number* gap
       between consecutive messages: sequence numbers filtered upstream
       never reach this node yet still advance the receiver's
       starvation clock, so counting firings instead would under-send
       (found by the S1 soundness sweep). *)
    ed.(eb + f_thr) <- (match thresholds.(i) with Some k -> k | None -> max_int);
    ed.(eb + f_last) <- -1;
    ed.(eb + f_slot) <- -1;
    let e = Graph.edge g i in
    ed.(eb + f_owner) <- e.src;
    ed.(eb + f_dst) <- e.dst
  done;
  (* CSR adjacency: node [v]'s out-edge ids are
     [out_flat.(out_off.(v)) .. out_flat.(out_off.(v+1) - 1)], in
     increasing id order (same for [in_]). One flat array walked
     sequentially beats per-node arrays, whose scattered headers cost a
     cache line each on big graphs. *)
  let out_off = Array.make (n + 1) 0 in
  let in_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    out_off.(v + 1) <- out_off.(v) + Graph.out_degree g v;
    in_off.(v + 1) <- in_off.(v) + Graph.in_degree g v
  done;
  let out_flat = Array.make m 0 in
  let in_flat = Array.make m 0 in
  for v = 0 to n - 1 do
    let ids = Graph.out_edge_ids g v in
    Array.blit ids 0 out_flat out_off.(v) (Array.length ids);
    let ids = Graph.in_edge_ids g v in
    Array.blit ids 0 in_flat in_off.(v) (Array.length ids)
  done;
  let st =
    Array.init n (fun v ->
        let deg = Graph.out_degree g v in
        {
          kernel = kernels v;
          pend_eid = Array.make deg 0;
          pend_msg = Array.make deg hole;
          pend_head = 0;
          pend_len = 0;
          next_input = 0;
          finished = false;
          slots = 0;
          src = Graph.in_degree g v = 0;
          snk = deg = 0;
        })
  in
  let order = Topo.order_exn g in
  (* Ready-scheduler worklist state, defined up front so the push/pop
     sites below can report occupancy transitions to it directly — the
     engine knows every site, so it wakes nodes itself instead of going
     through per-edge {!Channel.subscribe} closures (65k cold closure
     blocks on the §C7 graphs; the subscription contract remains part
     of the Channel API for external consumers). [ready] gates every
     wake so the sweep scheduler pays one dead branch.

     Per-node scheduler state packs into one int: the topological rank
     in the low bits, membership flags for the current and next round
     in two high bits — one cache line touched per wake instead of
     three.

     Below [dense_below] nodes the worklist's heap and wake traffic
     costs more than the sweep's full pass over a graph that fits in
     cache (bench §C6's random-CS4 regression), so [Ready] executes
     the sweep loop there; the transition sequence — hence the report
     — is identical either way. *)
  let ready = scheduler = Ready && n >= dense_below in
  let cur_bit = 1 lsl 62 and next_bit = 1 lsl 61 in
  let rank_mask = next_bit - 1 in
  let rank_flags = Array.make n 0 in
  Array.iteri (fun i v -> rank_flags.(v) <- i) order;
  (* current round: binary min-heap over topo rank, deduplicated by
     the [cur_bit] flag; next round: an unordered preallocated stack,
     heapified by promotion at the round boundary *)
  let heap = Array.make (n + 1) 0 in
  let hlen = ref 0 in
  let heap_push r =
    incr hlen;
    heap.(!hlen) <- r;
    let i = ref !hlen in
    while !i > 1 && heap.(!i / 2) > heap.(!i) do
      let p = !i / 2 in
      let tmp = heap.(p) in
      heap.(p) <- heap.(!i);
      heap.(!i) <- tmp;
      i := p
    done
  in
  let heap_pop () =
    let top = heap.(1) in
    heap.(1) <- heap.(!hlen);
    decr hlen;
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let smallest = ref !i in
      if l <= !hlen && heap.(l) < heap.(!smallest) then smallest := l;
      if r <= !hlen && heap.(r) < heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = heap.(!smallest) in
        heap.(!smallest) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
  in
  let next_buf = Array.make n 0 in
  let next_len = ref 0 in
  let wake_cur v =
    let rf = rank_flags.(v) in
    if rf land cur_bit = 0 then begin
      rank_flags.(v) <- rf lor cur_bit;
      heap_push (rf land rank_mask)
    end
  in
  let wake_next v =
    let rf = rank_flags.(v) in
    if rf land next_bit = 0 then begin
      rank_flags.(v) <- rf lor next_bit;
      next_buf.(!next_len) <- v;
      incr next_len
    end
  in
  let sink_data = ref 0 in
  let enqueue s eid msg =
    let size = Array.length s.pend_eid in
    assert (s.pend_len < size);
    let tail = s.pend_head + s.pend_len in
    let tail = if tail >= size then tail - size else tail in
    s.pend_eid.(tail) <- eid;
    s.pend_msg.(tail) <- msg;
    s.pend_len <- s.pend_len + 1
  in
  let dropped_dummies = ref 0 in
  let drop_slot eid old =
    incr dropped_dummies;
    if obs then ev (Event.Dummy_dropped { edge = eid; seq = old })
  in
  (* Dummies never enter the blocking pending queue: each channel has a
     one-slot dummy mouth ([f_slot]). A queued dummy waits for space
     without blocking its node, coalesces to the newest sequence number
     if the node emits another one meanwhile, and is superseded
     entirely when data (or EOS) is sent on the channel — the data
     carries a larger sequence number, which is all the dummy was
     communicating. Letting dummies block (like data) wedges deadlock
     cycles whose full side holds dummies; dropping them instead loses
     the sequence floor the consumer is waiting for. See DESIGN.md,
     "Deviations". *)
  let flush_id = ref 0 in
  let fire_id = ref 0 in
  (* Attempt every pending send once; a failed channel blocks its later
     sends this pass (per-channel FIFO), other channels proceed. Then
     deliver dummy slots on channels with no data still queued. *)
  (* The hot-path helpers below thread their accumulators through
     tail-recursive loops (or reuse setup-time scratch) instead of
     [ref] cells: without flambda every [ref] is a minor-heap block,
     and these run once per visit/firing. *)
  let rec flush_pending s fid size left progress =
    if left = 0 then progress
    else begin
      let eid = s.pend_eid.(s.pend_head) in
      let msg = s.pend_msg.(s.pend_head) in
      s.pend_msg.(s.pend_head) <- hole;
      s.pend_head <- (if s.pend_head + 1 >= size then 0 else s.pend_head + 1);
      s.pend_len <- s.pend_len - 1;
      if ed.((eid * 8) + f_bstamp) <> fid && Channel.push chan.(eid) msg
      then begin
        if ready && Channel.length chan.(eid) = 1 then
          wake_cur ed.((eid * 8) + f_dst);
        if obs then
          ev (Event.Push { edge = eid; seq = msg.seq; payload = payload_of msg });
        flush_pending s fid size (left - 1) true
      end
      else begin
        ed.((eid * 8) + f_bstamp) <- fid;
        enqueue s eid msg;
        flush_pending s fid size (left - 1) progress
      end
    end
  in
  let rec flush_slots s fid k hi progress =
    if k >= hi then progress
    else begin
      let e = out_flat.(k) in
      let eb = e * 8 in
      let seq = ed.(eb + f_slot) in
      if
        seq >= 0
        && ed.(eb + f_bstamp) <> fid
        && Channel.push chan.(e) (Message.dummy ~seq)
      then begin
        ed.(eb + f_slot) <- -1;
        s.slots <- s.slots - 1;
        if ready && Channel.length chan.(e) = 1 then wake_cur ed.(eb + f_dst);
        if obs then ev (Event.Push { edge = e; seq; payload = Event.Dummy });
        flush_slots s fid (k + 1) hi true
      end
      else flush_slots s fid (k + 1) hi progress
    end
  in
  let flush v s =
    incr flush_id;
    let fid = !flush_id in
    let size = Array.length s.pend_eid in
    let progress = flush_pending s fid size s.pend_len false in
    if s.slots = 0 then progress
    else flush_slots s fid out_off.(v) out_off.(v + 1) progress
  in
  (* Kernel output validation: stamp the chosen out-edges (duplicates
     collapse); O(1) ownership check per id instead of a [List.mem]
     scan of the node's out list — quadratic on wide split nodes. *)
  let rec validate_ids v s ids =
    match ids with
    | [] -> ()
    | id :: rest ->
      if id < 0 || id >= m || ed.((id * 8) + f_owner) <> v then
        invalid_arg
          (Printf.sprintf "Engine: kernel of node %d returned edge %d" v id);
      ed.((id * 8) + f_dstamp) <- s;
      validate_ids v s rest
  in
  let validate v ids = validate_ids v !fire_id ids in
  (* Messages are immutable and the engine only ever makes Data
     messages whose payload is the sequence number, so any Data block
     for a given seq is interchangeable: a firing's sends share one
     block across its out-edges, and a pass-through hop reuses the very
     message it just popped instead of re-wrapping it. [reuse] caches
     the most recent such block ([hole]'s max_int seq never matches a
     firing). *)
  let reuse = ref hole in
  let msg_for seq =
    let msg = !reuse in
    if msg.Message.seq = seq then msg
    else begin
      let nm = Message.data ~seq seq in
      reuse := nm;
      nm
    end
  in
  (* Send phase of one firing: data where the kernel said so (stamped
     by [validate] under the current [fire_id]); dummies by forwarding
     (Propagation) or when a finite-interval channel's gap counter
     comes due. Data and EOS are pushed directly — a node only fires
     with an empty pending queue and each out-edge is sent at most once
     per firing, so per-channel FIFO order is preserved; only a refused
     push falls back to the pending queue for the next flush. *)
  let emit v s ~seq ~got_dummy =
    let stamp = !fire_id in
    for k = out_off.(v) to out_off.(v + 1) - 1 do
      let e = out_flat.(k) in
      let eb = e * 8 in
      if ed.(eb + f_dstamp) = stamp then begin
        let msg = msg_for seq in
        let c = chan.(e) in
        if Channel.push c msg then begin
          if ready && Channel.length c = 1 then wake_cur ed.(eb + f_dst);
          if obs then ev (Event.Push { edge = e; seq; payload = Event.Data })
        end
        else enqueue s e msg;
        (let old = ed.(eb + f_slot) in
         if old >= 0 then begin
           ed.(eb + f_slot) <- -1;
           s.slots <- s.slots - 1;
           drop_slot e old
         end);
        ed.(eb + f_last) <- seq
      end
      else begin
        let due = seq - ed.(eb + f_last) >= ed.(eb + f_thr) in
        if (forwarding && got_dummy) || due then begin
          (let old = ed.(eb + f_slot) in
           if old >= 0 then drop_slot e old else s.slots <- s.slots + 1);
          ed.(eb + f_slot) <- seq;
          if obs then ev (Event.Dummy_emitted { node = v; edge = e; seq });
          ed.(eb + f_last) <- seq
        end
      end
    done
  in
  let send_eos v s =
    for k = out_off.(v) to out_off.(v + 1) - 1 do
      let e = out_flat.(k) in
      let eb = e * 8 in
      (let old = ed.(eb + f_slot) in
       if old >= 0 then begin
         ed.(eb + f_slot) <- -1;
         s.slots <- s.slots - 1;
         drop_slot e old
       end);
      (* every EOS fan-out shares the [hole] block *)
      let c = chan.(e) in
      if Channel.push c hole then begin
        if ready && Channel.length c = 1 then wake_cur ed.(eb + f_dst);
        if obs then
          ev (Event.Push { edge = e; seq = hole.seq; payload = Event.Eos })
      end
      else enqueue s e hole
    done;
    if obs then ev (Event.Eos { node = v });
    s.finished <- true
  in
  let fire_source v s =
    if s.next_input < inputs then begin
      let seq = s.next_input in
      s.next_input <- seq + 1;
      incr fire_id;
      let ids = s.kernel ~seq ~got:[] in
      validate v ids;
      if obs then
        ev
          (Event.Node_fired
             {
               node = v;
               seq;
               got = [];
               got_dummy = false;
               sent = List.sort_uniq compare ids;
             });
      emit v s ~seq ~got_dummy:false;
      true
    end
    else if not s.finished then begin
      send_eos v s;
      true
    end
    else false
  in
  (* Scratch for the in-edge ids that delivered data this firing; sized
     to the widest join so the buffer is reused across all visits. *)
  let max_in_deg =
    let d = ref 1 in
    for v = 0 to n - 1 do
      let deg = in_off.(v + 1) - in_off.(v) in
      if deg > !d then d := deg
    done;
    !d
  in
  let got_buf = Array.make max_in_deg 0 in
  (* One pass over the heads: [min_int] when some input is empty (not
     runnable), otherwise the minimum head sequence number. *)
  let rec min_head k hi acc =
    if k >= hi then acc
    else
      let c = chan.(in_flat.(k)) in
      if Channel.is_empty c then min_int
      else
        let sq = Channel.peek_seq c in
        min_head (k + 1) hi (if sq < acc then sq else acc)
  in
  (* Consume every head carrying [i], in increasing edge order (the
     pops' Freed_slot wakes must fire in that order); data edges land
     in [got_buf]. Returns the data count, with bit 62 flagging that a
     dummy was consumed. *)
  let dummy_bit = 1 lsl 62 in
  let rec consume snk i k hi acc =
    if k >= hi then acc
    else begin
      let e = in_flat.(k) in
      let c = chan.(e) in
      if Channel.peek_seq c = i then begin
        let was_full = Channel.is_full c in
        let msg = Channel.pop_exn c in
        if ready && was_full then wake_next ed.((e * 8) + f_owner);
        if obs then
          ev (Event.Pop { edge = e; seq = msg.seq; payload = payload_of msg });
        match msg.body with
        | Message.Data _ ->
          reuse := msg;
          let gn = acc land lnot dummy_bit in
          got_buf.(gn) <- e;
          if snk then incr sink_data;
          consume snk i (k + 1) hi (acc + 1)
        | Message.Dummy -> consume snk i (k + 1) hi (acc lor dummy_bit)
        | Message.Eos -> assert false
      end
      else consume snk i (k + 1) hi acc
    end
  in
  let rec got_list k acc =
    if k < 0 then acc else got_list (k - 1) (got_buf.(k) :: acc)
  in
  let fire_inner v s =
    let lo = in_off.(v) and hi = in_off.(v + 1) in
    let i = min_head lo hi max_int in
    if i = min_int then false
    else if i = max_int then begin
      (* Every input is at end-of-stream. *)
      for k = lo to hi - 1 do
        let e = in_flat.(k) in
        let c = chan.(e) in
        let was_full = Channel.is_full c in
        let msg = Channel.pop_exn c in
        if ready && was_full then wake_next ed.((e * 8) + f_owner);
        if obs then
          ev (Event.Pop { edge = e; seq = msg.seq; payload = payload_of msg })
      done;
      send_eos v s;
      true
    end
    else begin
      let acc = consume s.snk i lo hi 0 in
      let gn = acc land lnot dummy_bit in
      let got_dummy = acc land dummy_bit <> 0 in
      let got = got_list (gn - 1) [] in
      incr fire_id;
      let sent =
        match got with
        | [] -> []
        | got ->
          let ids = s.kernel ~seq:i ~got in
          validate v ids;
          if obs then List.sort_uniq compare ids else []
      in
      if obs then
        ev (Event.Node_fired { node = v; seq = i; got; got_dummy; sent });
      emit v s ~seq:i ~got_dummy;
      true
    end
  in
  (* One scheduler step for node [v]: retry pending sends and dummy
     slots, then fire while the node stays runnable, up to [batch]
     firings (a firing "sticks" when its pops freed slots and its
     pushes all landed — pending empty again). Both schedulers execute
     exactly this; they differ only in which nodes they bother to
     visit. With [batch = 1] (the default) a visit is a single
     fire+flush, the round structure of the unbatched engine. *)
  let rec fire_loop v s budget fired =
    let f =
      if s.src then fire_source v s
      else if not s.finished then fire_inner v s
      else false
    in
    if f then begin
      if s.pend_len <> 0 || s.slots <> 0 then ignore (flush v s);
      if budget <= 1 || s.pend_len <> 0 then true
      else fire_loop v s (budget - 1) true
    end
    else fired
  in
  let visit v =
    let s = st.(v) in
    let progress =
      if s.pend_len = 0 && s.slots = 0 then false else flush v s
    in
    if s.pend_len = 0 then fire_loop v s batch false || progress
    else begin
      if obs then
        ev (Event.Blocked { node = v; edge = s.pend_eid.(s.pend_head) });
      progress
    end
  in
  let default_budget = ((inputs + 2) * ((2 * m) + n + 2) * 2) + 64 in
  let budget = Option.value max_rounds ~default:default_budget in
  let rounds = ref 0 in
  let outcome = ref None in
  let wedge = ref None in
  (* The sweep scheduler visits every node every round. The ready
     scheduler visits only woken nodes, yet a skipped node's visit
     would have been a no-op (its pending sends and dummy slots sit on
     full channels, and it cannot fire), so both schedulers perform the
     same state transitions in the same order and the resulting
     {!Report.t} — including the round count and the wedge snapshot —
     is bit-identical.

     Wake discipline (matching the sweep's topological round order):
     - a push onto an empty channel may make the consumer runnable; the
       consumer sits later in topological order than the producer being
       visited, so it joins the *current* round, exactly where the
       sweep would reach it;
     - a pop from a full channel may unblock the producer's pending
       sends or queued dummy slot; the producer sits earlier in
       topological order, already visited this round, so it joins the
       *next* round — again just like the sweep;
     - a node that remains runnable on its own (an unfinished source,
       or a node whose inputs are all still non-empty) re-arms itself
       for the next round. *)
  let sweep_round () =
    let progress = ref false in
    Array.iter (fun v -> if visit v then progress := true) order;
    !progress
  in
  let ready_round =
    if not ready then sweep_round
    else
      (* Runnable again next round with no external event needed: only
         then does the node re-arm itself. Blocked nodes (non-empty
         pending, or a dummy slot waiting out a full channel) are woken
         by the freed-slot transition instead. *)
      let rec all_nonempty k hi =
        k >= hi
        || ((not (Channel.is_empty chan.(in_flat.(k))))
           && all_nonempty (k + 1) hi)
      in
      let self_arming v =
        let s = st.(v) in
        (not s.finished)
        && s.pend_len = 0
        && (s.src || all_nonempty in_off.(v) in_off.(v + 1))
      in
      (* Round 1 is the sweep's full pass, but every channel starts
         empty, so a non-source node's first visit is a guaranteed
         no-op (it cannot fire, has nothing pending, and emits no
         event): seeding only the sources executes the identical
         transition sequence. Nodes woken by the sources' pushes join
         the current round exactly where the sweep would visit them. *)
      Array.iter (fun v -> if st.(v).src then wake_cur v) order;
      fun () ->
        let progress = ref false in
        while !hlen > 0 do
          let v = order.(heap_pop ()) in
          rank_flags.(v) <- rank_flags.(v) land lnot cur_bit;
          if visit v then progress := true;
          if self_arming v then wake_next v
        done;
        for k = 0 to !next_len - 1 do
          let v = next_buf.(k) in
          rank_flags.(v) <- rank_flags.(v) land lnot next_bit;
          wake_cur v
        done;
        next_len := 0;
        !progress
  in
  while !outcome = None do
    incr rounds;
    if obs then ev (Event.Round_started { round = !rounds });
    if !rounds > budget then outcome := Some Report.Budget_exhausted
    else begin
      let progress = ready_round () in
      if not progress then
        if
          Array.for_all (fun s -> s.finished && s.pend_len = 0) st
          && Array.for_all Channel.is_empty chan
        then outcome := Some Report.Completed
        else begin
          outcome := Some Report.Deadlocked;
          if obs then ev (Event.Wedge { round = !rounds });
          wedge :=
            Some
              {
                Report.channel_lengths = Array.map Channel.length chan;
                node_blocked = Array.map (fun s -> s.pend_len > 0) st;
                node_finished = Array.map (fun s -> s.finished) st;
              };
          Option.iter
            (fun ppf ->
              Format.fprintf ppf "@[<v>deadlock state:";
              Array.iteri
                (fun i c ->
                  let e = Graph.edge g i in
                  Format.fprintf ppf
                    "@,  e%d %d->%d cap=%d len=%d head=%s last_sent=%d" i
                    e.src e.dst e.cap (Channel.length c)
                    (match Channel.peek c with
                    | None -> "-"
                    | Some msg -> Format.asprintf "%a" Message.pp msg)
                    ed.((i * 8) + f_last);
                  if ed.((i * 8) + f_slot) >= 0 then
                    Format.fprintf ppf " slot=#%d" ed.((i * 8) + f_slot))
                chan;
              Array.iteri
                (fun v s ->
                  if s.pend_len > 0 then
                    Format.fprintf ppf "@,  node %d pending:%d next_in=%d" v
                      s.pend_len s.next_input)
                st;
              Format.fprintf ppf "@]@.")
            deadlock_dump
        end
    end
  done;
  let outcome = Option.get !outcome in
  if obs then ev (Event.Run_finished { outcome });
  let data = Array.fold_left (fun a c -> a + Channel.data_pushed c) 0 chan in
  let dummies =
    Array.fold_left (fun a c -> a + Channel.dummies_pushed c) 0 chan
  in
  {
    Report.outcome;
    data_messages = data;
    dummy_messages = dummies;
    sink_data = !sink_data;
    dropped_dummies = !dropped_dummies;
    per_edge_dummies = Array.map Channel.dummies_pushed chan;
    detail = Report.Sequential { rounds = !rounds; wedge = !wedge };
  }
