open Fstream_graph
module Thresholds = Fstream_core.Thresholds
module Event = Fstream_obs.Event
module Sink = Fstream_obs.Sink

type kernel = seq:int -> got:int list -> int list

type avoidance =
  | No_avoidance
  | Propagation of Thresholds.t
  | Non_propagation of Thresholds.t

type scheduler = Sweep | Ready

type node_state = {
  kernel : kernel;
  pending : (int * Message.t) Queue.t;
  mutable next_input : int;
  mutable finished : bool;
}

let payload_of (m : Message.t) =
  match m.body with
  | Message.Data _ -> Event.Data
  | Message.Dummy -> Event.Dummy
  | Message.Eos -> Event.Eos

let run ?(scheduler = Ready) ?max_rounds ?deadlock_dump ?sink ~graph:g
    ~kernels ~inputs ~avoidance () =
  let sink =
    match sink with
    | Some s when not (Sink.is_null s) -> Some s
    | _ -> None
  in
  (* [obs] gates event *construction* — with no sink (or the null
     sink) the instrumentation costs one branch per potential event
     (measured in bench O1). *)
  let obs = sink <> None in
  let ev e = match sink with Some s -> Sink.emit s e | None -> () in
  let n = Graph.num_nodes g and m = Graph.num_edges g in
  let chan =
    Array.init m (fun i -> Channel.create ~capacity:(Graph.edge g i).cap)
  in
  let thresholds, forwarding =
    match avoidance with
    | No_avoidance -> (Array.make m None, false)
    | Propagation t ->
      Thresholds.check t g;
      (Thresholds.to_array t, true)
    | Non_propagation t ->
      Thresholds.check t g;
      (Thresholds.to_array t, false)
  in
  (* Last sequence number sent on each channel. The dummy rule bounds
     the *sequence-number* gap between consecutive messages on a
     channel: sequence numbers filtered upstream never reach this node
     yet still advance the receiver's starvation clock, so counting
     firings instead of sequence numbers would under-send (found by the
     S1 soundness sweep). *)
  let last_sent = Array.make m (-1) in
  let st =
    Array.init n (fun v ->
        {
          kernel = kernels v;
          pending = Queue.create ();
          next_input = 0;
          finished = false;
        })
  in
  let order = Topo.order_exn g in
  let is_source = Array.init n (fun v -> Graph.in_degree g v = 0) in
  let is_sink = Array.init n (fun v -> Graph.out_degree g v = 0) in
  let out_ids =
    Array.init n (fun v ->
        List.map (fun (e : Graph.edge) -> e.id) (Graph.out_edges g v))
  in
  let sink_data = ref 0 in
  let enqueue v eid msg = Queue.add (eid, msg) st.(v).pending in
  let dropped_dummies = ref 0 in
  let drop_slot eid old =
    incr dropped_dummies;
    if obs then ev (Event.Dummy_dropped { edge = eid; seq = old })
  in
  (* Dummies never enter the blocking pending queue: each channel has a
     one-slot dummy mouth. A queued dummy waits for space without
     blocking its node, coalesces to the newest sequence number if the
     node emits another one meanwhile, and is superseded entirely when
     data (or EOS) is sent on the channel — the data carries a larger
     sequence number, which is all the dummy was communicating. Letting
     dummies block (like data) wedges deadlock cycles whose full side
     holds dummies; dropping them instead loses the sequence floor the
     consumer is waiting for. See DESIGN.md, "Deviations". *)
  let dummy_slot = Array.make m None in
  (* Attempt every pending send once; a failed channel blocks its later
     sends this pass (per-channel FIFO), other channels proceed. Then
     deliver dummy slots on channels with no data still queued. *)
  let flush v =
    let q = st.(v).pending in
    let blocked = Hashtbl.create 4 in
    let len = Queue.length q in
    let progress = ref false in
    for _ = 1 to len do
      let eid, msg = Queue.pop q in
      if (not (Hashtbl.mem blocked eid)) && Channel.push chan.(eid) msg then begin
        if obs then
          ev (Event.Push { edge = eid; seq = msg.seq; payload = payload_of msg });
        progress := true
      end
      else begin
        Hashtbl.replace blocked eid ();
        Queue.add (eid, msg) q
      end
    done;
    List.iter
      (fun (e : Graph.edge) ->
        match dummy_slot.(e.id) with
        | Some seq
          when (not (Hashtbl.mem blocked e.id))
               && Channel.push chan.(e.id) (Message.dummy ~seq) ->
          dummy_slot.(e.id) <- None;
          if obs then
            ev (Event.Push { edge = e.id; seq; payload = Event.Dummy });
          progress := true
        | _ -> ())
      (Graph.out_edges g v);
    !progress
  in
  let validate v ids =
    let ids = List.sort_uniq compare ids in
    List.iter
      (fun id ->
        if not (List.mem id out_ids.(v)) then
          invalid_arg
            (Printf.sprintf "Engine: kernel of node %d returned edge %d" v id))
      ids;
    ids
  in
  (* Send phase of one firing: data where the kernel said so; dummies by
     forwarding (Propagation) or when a finite-interval channel's gap
     counter comes due. *)
  let emit v ~seq ~data_out ~got_dummy =
    List.iter
      (fun (e : Graph.edge) ->
        if List.mem e.id data_out then begin
          enqueue v e.id (Message.data ~seq seq);
          (match dummy_slot.(e.id) with
          | Some old ->
            dummy_slot.(e.id) <- None;
            drop_slot e.id old
          | None -> ());
          last_sent.(e.id) <- seq
        end
        else begin
          let due =
            match thresholds.(e.id) with
            | Some k -> seq - last_sent.(e.id) >= k
            | None -> false
          in
          if (forwarding && got_dummy) || due then begin
            (match dummy_slot.(e.id) with
            | Some old -> drop_slot e.id old
            | None -> ());
            dummy_slot.(e.id) <- Some seq;
            if obs then
              ev (Event.Dummy_emitted { node = v; edge = e.id; seq });
            last_sent.(e.id) <- seq
          end
        end)
      (Graph.out_edges g v)
  in
  let send_eos v =
    List.iter
      (fun (e : Graph.edge) ->
        (match dummy_slot.(e.id) with
        | Some old ->
          dummy_slot.(e.id) <- None;
          drop_slot e.id old
        | None -> ());
        enqueue v e.id (Message.eos ()))
      (Graph.out_edges g v);
    if obs then ev (Event.Eos { node = v });
    st.(v).finished <- true
  in
  let fire_source v =
    let s = st.(v) in
    if s.next_input < inputs then begin
      let seq = s.next_input in
      s.next_input <- seq + 1;
      let data_out = validate v (s.kernel ~seq ~got:[]) in
      if obs then
        ev
          (Event.Node_fired
             { node = v; seq; got = []; got_dummy = false; sent = data_out });
      emit v ~seq ~data_out ~got_dummy:false;
      true
    end
    else if not s.finished then begin
      send_eos v;
      true
    end
    else false
  in
  let fire_inner v =
    let ins = Graph.in_edges g v in
    let heads =
      List.map (fun (e : Graph.edge) -> (e, Channel.peek chan.(e.id))) ins
    in
    if List.for_all (fun (_, h) -> h <> None) heads then begin
      let heads = List.map (fun (e, h) -> (e, Option.get h)) heads in
      let i =
        List.fold_left
          (fun acc (_, (msg : Message.t)) -> min acc msg.seq)
          max_int heads
      in
      if i = max_int then begin
        (* Every input is at end-of-stream. *)
        List.iter
          (fun ((e : Graph.edge), (msg : Message.t)) ->
            ignore (Channel.pop chan.(e.id));
            if obs then
              ev
                (Event.Pop
                   { edge = e.id; seq = msg.seq; payload = payload_of msg }))
          heads;
        send_eos v;
        true
      end
      else begin
        let got_data = ref [] and got_dummy = ref false in
        List.iter
          (fun ((e : Graph.edge), (msg : Message.t)) ->
            if msg.seq = i then begin
              ignore (Channel.pop chan.(e.id));
              if obs then
                ev
                  (Event.Pop
                     { edge = e.id; seq = msg.seq; payload = payload_of msg });
              match msg.body with
              | Message.Data _ ->
                got_data := e.id :: !got_data;
                if is_sink.(v) then incr sink_data
              | Message.Dummy -> got_dummy := true
              | Message.Eos -> assert false
            end)
          heads;
        let got = List.rev !got_data in
        let data_out =
          match got with
          | [] -> []
          | got -> validate v (st.(v).kernel ~seq:i ~got)
        in
        if obs then
          ev
            (Event.Node_fired
               {
                 node = v;
                 seq = i;
                 got;
                 got_dummy = !got_dummy;
                 sent = data_out;
               });
        emit v ~seq:i ~data_out ~got_dummy:!got_dummy;
        true
      end
    end
    else false
  in
  (* One scheduler step for node [v]: retry pending sends and dummy
     slots, then fire if the node is runnable. Both schedulers execute
     exactly this; they differ only in which nodes they bother to
     visit. *)
  let visit v =
    let s = st.(v) in
    let progress = flush v in
    if Queue.is_empty s.pending then begin
      let fired =
        if is_source.(v) then fire_source v
        else if not s.finished then fire_inner v
        else false
      in
      if fired then ignore (flush v);
      progress || fired
    end
    else begin
      if obs then begin
        let eid, _ = Queue.peek s.pending in
        ev (Event.Blocked { node = v; edge = eid })
      end;
      progress
    end
  in
  let default_budget = ((inputs + 2) * ((2 * m) + n + 2) * 2) + 64 in
  let budget = Option.value max_rounds ~default:default_budget in
  let rounds = ref 0 in
  let outcome = ref None in
  let wedge = ref None in
  (* The sweep scheduler visits every node every round. The ready
     scheduler visits only woken nodes, yet a skipped node's visit
     would have been a no-op (its pending sends and dummy slots sit on
     full channels, and it cannot fire), so both schedulers perform the
     same state transitions in the same order and the resulting
     {!Report.t} — including the round count and the wedge snapshot —
     is bit-identical.

     Wake discipline (matching the sweep's topological round order):
     - a push onto an empty channel may make the consumer runnable; the
       consumer sits later in topological order than the producer being
       visited, so it joins the *current* round, exactly where the
       sweep would reach it;
     - a pop from a full channel may unblock the producer's pending
       sends or queued dummy slot; the producer sits earlier in
       topological order, already visited this round, so it joins the
       *next* round — again just like the sweep;
     - a node that remains runnable on its own (an unfinished source,
       or a node whose inputs are all still non-empty) re-arms itself
       for the next round. *)
  let sweep_round () =
    let progress = ref false in
    Array.iter (fun v -> if visit v then progress := true) order;
    !progress
  in
  let ready_round =
    match scheduler with
    | Sweep -> sweep_round
    | Ready ->
      let rank = Array.make n 0 in
      Array.iteri (fun i v -> rank.(v) <- i) order;
      (* current round: binary min-heap over topo rank, deduplicated by
         a per-node flag; next round: an unordered stack, heapified by
         promotion at the round boundary *)
      let heap = Array.make (n + 1) 0 in
      let hlen = ref 0 in
      let heap_push r =
        incr hlen;
        heap.(!hlen) <- r;
        let i = ref !hlen in
        while !i > 1 && heap.(!i / 2) > heap.(!i) do
          let p = !i / 2 in
          let tmp = heap.(p) in
          heap.(p) <- heap.(!i);
          heap.(!i) <- tmp;
          i := p
        done
      in
      let heap_pop () =
        let top = heap.(1) in
        heap.(1) <- heap.(!hlen);
        decr hlen;
        let i = ref 1 in
        let continue = ref true in
        while !continue do
          let l = 2 * !i and r = (2 * !i) + 1 in
          let smallest = ref !i in
          if l <= !hlen && heap.(l) < heap.(!smallest) then smallest := l;
          if r <= !hlen && heap.(r) < heap.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = heap.(!smallest) in
            heap.(!smallest) <- heap.(!i);
            heap.(!i) <- tmp;
            i := !smallest
          end
        done;
        top
      in
      let in_cur = Array.make n false in
      let in_next = Array.make n false in
      let next = ref [] in
      let wake_cur v =
        if not in_cur.(v) then begin
          in_cur.(v) <- true;
          heap_push rank.(v)
        end
      in
      let wake_next v =
        if not in_next.(v) then begin
          in_next.(v) <- true;
          next := v :: !next
        end
      in
      List.iter
        (fun (e : Graph.edge) ->
          Channel.subscribe chan.(e.id) (function
            | Channel.Became_nonempty -> wake_cur e.dst
            | Channel.Freed_slot -> wake_next e.src))
        (Graph.edges g);
      (* Runnable again next round with no external event needed: only
         then does the node re-arm itself. Blocked nodes (non-empty
         pending, or a dummy slot waiting out a full channel) are woken
         by the Freed_slot event instead. *)
      let self_arming v =
        let s = st.(v) in
        (not s.finished)
        && Queue.is_empty s.pending
        && (is_source.(v)
           || List.for_all
                (fun (e : Graph.edge) -> not (Channel.is_empty chan.(e.id)))
                (Graph.in_edges g v))
      in
      (* round 1 is the sweep's full pass: seed every node *)
      Array.iter
        (fun v ->
          in_cur.(v) <- true;
          heap_push rank.(v))
        order;
      fun () ->
        let progress = ref false in
        while !hlen > 0 do
          let v = order.(heap_pop ()) in
          in_cur.(v) <- false;
          if visit v then progress := true;
          if self_arming v then wake_next v
        done;
        List.iter
          (fun v ->
            in_next.(v) <- false;
            wake_cur v)
          !next;
        next := [];
        !progress
  in
  while !outcome = None do
    incr rounds;
    if obs then ev (Event.Round_started { round = !rounds });
    if !rounds > budget then outcome := Some Report.Budget_exhausted
    else begin
      let progress = ready_round () in
      if not progress then
        if
          Array.for_all
            (fun s -> s.finished && Queue.is_empty s.pending)
            st
          && Array.for_all Channel.is_empty chan
        then outcome := Some Report.Completed
        else begin
          outcome := Some Report.Deadlocked;
          if obs then ev (Event.Wedge { round = !rounds });
          wedge :=
            Some
              {
                Report.channel_lengths = Array.map Channel.length chan;
                node_blocked =
                  Array.map (fun s -> not (Queue.is_empty s.pending)) st;
                node_finished = Array.map (fun s -> s.finished) st;
              };
          Option.iter
            (fun ppf ->
              Format.fprintf ppf "@[<v>deadlock state:";
              Array.iteri
                (fun i c ->
                  let e = Graph.edge g i in
                  Format.fprintf ppf
                    "@,  e%d %d->%d cap=%d len=%d head=%s last_sent=%d" i
                    e.src e.dst e.cap (Channel.length c)
                    (match Channel.peek c with
                    | None -> "-"
                    | Some msg -> Format.asprintf "%a" Message.pp msg)
                    last_sent.(i);
                  match dummy_slot.(i) with
                  | Some seq -> Format.fprintf ppf " slot=#%d" seq
                  | None -> ())
                chan;
              Array.iteri
                (fun v s ->
                  if not (Queue.is_empty s.pending) then
                    Format.fprintf ppf "@,  node %d pending:%d next_in=%d" v
                      (Queue.length s.pending) s.next_input)
                st;
              Format.fprintf ppf "@]@.")
            deadlock_dump
        end
    end
  done;
  let outcome = Option.get !outcome in
  if obs then ev (Event.Run_finished { outcome });
  let data = Array.fold_left (fun a c -> a + Channel.data_pushed c) 0 chan in
  let dummies =
    Array.fold_left (fun a c -> a + Channel.dummies_pushed c) 0 chan
  in
  {
    Report.outcome;
    data_messages = data;
    dummy_messages = dummies;
    sink_data = !sink_data;
    dropped_dummies = !dropped_dummies;
    per_edge_dummies = Array.map Channel.dummies_pushed chan;
    detail = Report.Sequential { rounds = !rounds; wedge = !wedge };
  }
