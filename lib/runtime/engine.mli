(** Deterministic discrete scheduler for filtering streaming DAGs.

    Implements the execution model of §II.A plus the two
    deadlock-avoidance wrappers of §II.B:

    - a node fires when every input channel is non-empty; it consumes
      all head messages carrying the minimum head sequence number [i]
      (heads with larger numbers were filtered upstream with respect to
      [i] and stay queued);
    - the node's {!kernel} sees which inputs carried data and picks the
      output channels that receive data — filtering is exactly the
      freedom to omit some;
    - sends are buffered in a per-node pending queue and block on full
      channels (per-channel FIFO order preserved), reproducing the
      finite-buffer blocking that makes Fig. 2 deadlock;
    - under [Propagation], received dummies are forwarded on every
      output that got no data, and channels whose dummy interval is
      finite originate a dummy once the channel has gone [threshold]
      consecutive sequence numbers without a message;
    - under [Non_propagation], every channel applies its own threshold
      and dummies are absorbed by their receiver.

    Stream termination is modelled by end-of-stream markers so that a
    drained computation is distinguishable from a deadlock: sources
    emit EOS after their last input; a node forwards EOS when all its
    inputs reach it. [Deadlocked] therefore means a genuine
    no-progress state with work outstanding.

    The run's result is the engine-agnostic {!Report.t}; its full
    behaviour can additionally be narrated as a typed
    {!Fstream_obs.Event} stream through the [sink] argument, from which
    {!Report.of_events} reconstructs the same report bit-for-bit. *)

open Fstream_graph

type kernel = seq:int -> got:int list -> int list
(** [kernel ~seq ~got] — [got] lists the in-edge ids that delivered
    data for [seq] (empty for a source node receiving external input
    [seq]); the result lists the out-edge ids to send data on. Ids
    outside the node's out-edges are rejected at runtime. Kernels are
    opaque to the scheduler, matching the paper's model where filtering
    decisions are invisible to the compiler. *)

type avoidance =
  | No_avoidance
  | Propagation of Fstream_core.Thresholds.t
  | Non_propagation of Fstream_core.Thresholds.t
      (** per-channel send thresholds, from
          {!Fstream_core.Compiler.send_thresholds} /
          {!Fstream_core.Compiler.propagation_thresholds}. The table
          carries the fingerprint of the graph it was computed for and
          {!run} rejects mismatches. *)

type scheduler =
  | Sweep
      (** reference scheduler: every round visits every node in
          topological order — O(n) per round even when almost nothing
          is runnable *)
  | Ready
      (** event-driven scheduler: a worklist of runnable nodes
          maintained incrementally from {!Channel} occupancy
          transitions, drained in topological-rank order each round.
          Per-round cost is proportional to actual activity, and the
          executed transitions — hence the resulting {!Report.t},
          including the round count and wedge snapshot — are
          bit-identical to [Sweep] (differentially tested in
          [test/test_sched.ml]) *)

val run :
  ?scheduler:scheduler ->
  ?dense_below:int ->
  ?batch:int ->
  ?max_rounds:int ->
  ?deadlock_dump:Format.formatter ->
  ?sink:Fstream_obs.Sink.t ->
  graph:Graph.t ->
  kernels:(Graph.node -> kernel) ->
  inputs:int ->
  avoidance:avoidance ->
  unit ->
  Report.t
(** Execute the application on [inputs] external sequence numbers
    (0 .. inputs-1, presented to every source). Channel capacities come
    from the graph's edge capacities. Deterministic: runnable nodes are
    processed in topological order within each round, whichever
    [scheduler] (default {!Ready}) maintains the runnable set.
    [max_rounds] defaults to a generous bound; an execution that
    exceeds it reports [Budget_exhausted].

    [dense_below] (default 512): below this many nodes, [Ready] runs
    the sweep loop instead of maintaining the worklist — on graphs
    that fit in cache the wake bookkeeping costs more than visiting
    everything (bench §C6). The executed transition sequence, and so
    the report, is identical; only the observability stream differs,
    because the sweep visits nodes the worklist never wakes and so
    emits [Event.Blocked] on their blocking episodes. Pass
    [~dense_below:0] to force the worklist at every size (the
    differential suite does).

    [batch] (default 1) lets a visited node fire up to that many times
    in a row while it stays runnable (each firing's sends all landed
    and its pops kept the inputs non-empty), amortizing scheduler
    overhead on deep pipelines. For kernels whose decisions depend
    only on their own node's firing history the model is a Kahn
    network, so batching never changes the computation itself: under
    [No_avoidance] the outcome and the data/sink message counts are
    batch-invariant, and on any run that completes so are the
    data/sink counts. Dummy traffic, by contrast, is timing-driven —
    batching shifts when the coalescing dummy slots flush and when
    thresholds come due, so the number of dummies emitted and their
    delivered/dropped split may change, and under [Propagation] on
    workloads outside its soundness preconditions even the outcome can
    move with them (dummies are a liveness mechanism). Round numbering
    is compressed. See DESIGN.md, "Memory behaviour". The two
    schedulers remain bit-identical at equal [batch]. The default
    preserves the unbatched engine's behaviour exactly.
    @raise Invalid_argument if [batch < 1].

    [sink] receives the typed event stream of the run (default: no
    instrumentation; passing {!Fstream_obs.Sink.null} is equivalent
    and equally cheap — event construction is skipped). The engine
    never closes the sink.

    @raise Invalid_argument if [avoidance] carries a threshold table
    computed for a different graph. *)
