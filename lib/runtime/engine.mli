(** Deterministic discrete scheduler for filtering streaming DAGs.

    Implements the execution model of §II.A plus the two
    deadlock-avoidance wrappers of §II.B:

    - a node fires when every input channel is non-empty; it consumes
      all head messages carrying the minimum head sequence number [i]
      (heads with larger numbers were filtered upstream with respect to
      [i] and stay queued);
    - the node's {!kernel} sees which inputs carried data and picks the
      output channels that receive data — filtering is exactly the
      freedom to omit some;
    - sends are buffered in a per-node pending queue and block on full
      channels (per-channel FIFO order preserved), reproducing the
      finite-buffer blocking that makes Fig. 2 deadlock;
    - under [Propagation], received dummies are forwarded on every
      output that got no data, and channels whose dummy interval is
      finite originate a dummy once the channel has gone [threshold]
      consecutive sequence numbers without a message;
    - under [Non_propagation], every channel applies its own threshold
      and dummies are absorbed by their receiver.

    Stream termination is modelled by end-of-stream markers so that a
    drained computation is distinguishable from a deadlock: sources
    emit EOS after their last input; a node forwards EOS when all its
    inputs reach it. [Deadlocked] therefore means a genuine
    no-progress state with work outstanding. *)

open Fstream_graph

type kernel = seq:int -> got:int list -> int list
(** [kernel ~seq ~got] — [got] lists the in-edge ids that delivered
    data for [seq] (empty for a source node receiving external input
    [seq]); the result lists the out-edge ids to send data on. Ids
    outside the node's out-edges are rejected at runtime. Kernels are
    opaque to the scheduler, matching the paper's model where filtering
    decisions are invisible to the compiler. *)

type avoidance =
  | No_avoidance
  | Propagation of int option array
  | Non_propagation of int option array
      (** per-edge-id send thresholds, from
          {!Fstream_core.Compiler.send_thresholds} *)

type outcome = Completed | Deadlocked | Budget_exhausted

type scheduler =
  | Sweep
      (** reference scheduler: every round visits every node in
          topological order — O(n) per round even when almost nothing
          is runnable *)
  | Ready
      (** event-driven scheduler: a worklist of runnable nodes
          maintained incrementally from {!Channel} occupancy
          transitions, drained in topological-rank order each round.
          Per-round cost is proportional to actual activity, and the
          executed transitions — hence the resulting {!stats},
          including the round count and wedge snapshot — are
          bit-identical to [Sweep] (differentially tested in
          [test/test_sched.ml]) *)

type snapshot = {
  channel_lengths : int array;  (** per edge id, at the wedge *)
  node_blocked : bool array;
      (** nodes holding a pending send stuck on a full channel *)
  node_finished : bool array;
}
(** The frozen state of a deadlocked run — input to
    {!Diagnosis.explain}, which locates the witness cycle of §II.B. *)

type stats = {
  outcome : outcome;
  rounds : int;  (** scheduler sweeps executed *)
  data_messages : int;  (** data pushes across all channels *)
  dummy_messages : int;  (** dummy pushes across all channels *)
  sink_data : int;  (** data messages consumed by sink nodes *)
  dropped_dummies : int;
      (** dummies superseded before delivery — coalesced with a newer
          dummy or overtaken by data while waiting for channel space in
          the per-channel dummy slot; see DESIGN.md, "Deviations" *)
  per_edge_dummies : int array;
  wedge : snapshot option;
      (** the frozen state when [outcome = Deadlocked], else [None] *)
}

val run :
  ?scheduler:scheduler ->
  ?max_rounds:int ->
  ?deadlock_dump:Format.formatter ->
  ?trace:Format.formatter ->
  graph:Graph.t ->
  kernels:(Graph.node -> kernel) ->
  inputs:int ->
  avoidance:avoidance ->
  unit ->
  stats
(** Execute the application on [inputs] external sequence numbers
    (0 .. inputs-1, presented to every source). Channel capacities come
    from the graph's edge capacities. Deterministic: runnable nodes are
    processed in topological order within each round, whichever
    [scheduler] (default {!Ready}) maintains the runnable set.
    [max_rounds] defaults to a generous bound; an execution that
    exceeds it reports [Budget_exhausted]. *)

val pp_stats : Format.formatter -> stats -> unit
