open Fstream_graph
open Fstream_core
module Event = Fstream_obs.Event
module Sink = Fstream_obs.Sink

type t = {
  fired : int array;  (* per original node *)
  table : Engine.kernel array;  (* per fused node *)
}

let compound ?sink (fusion : Fusion.t) (fired : int array) orig_kernels f =
  let og = fusion.original in
  let mem = fusion.members.(f) in
  let k = Array.length mem in
  let subs = Array.map orig_kernels mem in
  (* Non-tail members have exactly one out-edge (the fusability rule),
     and it is the collapsed channel to the next member. *)
  let link =
    Array.init (k - 1) (fun i -> (Graph.out_edge_ids og mem.(i)).(0))
  in
  let owns =
    Array.map
      (fun v ->
        let ids = Graph.out_edge_ids og v in
        fun id -> Array.exists (fun e -> e = id) ids)
      mem
  in
  let tick i seq =
    let v = mem.(i) in
    fired.(v) <- fired.(v) + 1;
    match sink with
    | Some s -> Sink.emit s (Event.Subnode_fired { node = f; sub = v; seq })
    | None -> ()
  in
  let validate i ids =
    List.iter
      (fun id ->
        if not (owns.(i) id) then
          invalid_arg
            (Printf.sprintf "Fused: kernel of node %d returned edge %d" mem.(i)
               id))
      ids
  in
  fun ~seq ~got ->
    let got0 = List.map (fun fe -> fusion.orig_edge.(fe)) got in
    (* Walk the chain with the data in a local: each hop is a function
       call, not a channel round-trip. *)
    let rec step i got =
      tick i seq;
      let out = subs.(i) ~seq ~got in
      validate i out;
      if i = k - 1 then out
      else if List.mem link.(i) out then step (i + 1) [ link.(i) ]
      else []
    in
    let out = step 0 got0 in
    List.map (fun oe -> fusion.edge_of.(oe)) out

let make ?sink (fusion : Fusion.t) orig_kernels =
  let sink =
    match sink with Some s when Sink.is_null s -> None | other -> other
  in
  let fired = Array.make (Graph.num_nodes fusion.original) 0 in
  let table =
    Array.init (Graph.num_nodes fusion.graph) (fun f ->
        compound ?sink fusion fired orig_kernels f)
  in
  { fired; table }

let kernels t f = t.table.(f)

let fired t = Array.copy t.fired
