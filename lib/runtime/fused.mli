(** Running a fused plan: compound kernels over the fused topology.

    {!Fstream_core.Fusion} collapses chains of single-in/single-out
    bridge nodes into compound nodes. This module builds the matching
    [kernels] argument for {!Engine.run} / the parallel pool: each
    compound kernel executes its member chain in order, passing data
    through OCaml locals — the collapsed channels have no ring buffers,
    no per-edge dummy state, and cost nothing to traverse. If an
    interior member filters (returns no data on its sole out-edge), the
    chain stops there for that sequence number, exactly as the unfused
    pipeline would have stalled that hop's successors.

    Edge-id translation is part of the job: user kernels speak
    original-graph edge ids, the engine speaks fused-graph ids. The
    wrapper translates [got] on the way in and the tail's kept edges on
    the way out, so existing kernel factories
    ({!Filters.for_graph} over the original graph) work unchanged.

    Firings remain attributable to the pre-fusion topology two ways:
    [fired] counts every sub-kernel execution per {e original} node,
    and an optional [sink] receives one
    {!Fstream_obs.Event.Subnode_fired} per sub-kernel execution.
    Per-original-node firing counts are preserved by fusion for
    node-deterministic kernels — the differential suite checks them
    against the unfused run's metrics. *)

open Fstream_graph
open Fstream_core

type t

val make :
  ?sink:Fstream_obs.Sink.t ->
  Fusion.t ->
  (Graph.node -> Engine.kernel) ->
  t
(** [make fusion orig_kernels] instantiates the compound kernels. Each
    original node's kernel factory is invoked exactly once, as the
    engines do. [sink] receives [Subnode_fired] events; sinks are
    single-threaded values and compound kernels run on worker domains
    under the pool, so pass a sink only for sequential-engine runs —
    for pool runs use {!fired}. *)

val kernels : t -> Graph.node -> Engine.kernel
(** The [kernels] argument for running [fusion.graph]. Kernel results
    are validated per sub-node: a member returning an edge id it does
    not own raises [Invalid_argument] naming the {e original} node and
    edge, as {!Engine.run} does for unfused kernels. *)

val fired : t -> int array
(** Snapshot of sub-kernel executions per original node. Safe to read
    after a run completes (sequential or pool: members are disjoint
    across compound nodes and the pool never runs one node's kernel
    concurrently with itself, so each counter has one writer). *)
