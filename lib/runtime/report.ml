open Fstream_graph
module Event = Fstream_obs.Event

type outcome = Event.outcome = Completed | Deadlocked | Budget_exhausted

type snapshot = {
  channel_lengths : int array;
  node_blocked : bool array;
  node_finished : bool array;
}

type detail =
  | Sequential of { rounds : int; wedge : snapshot option }
  | Parallel

type t = {
  outcome : outcome;
  data_messages : int;
  dummy_messages : int;
  sink_data : int;
  dropped_dummies : int;
  per_edge_dummies : int array;
  detail : detail;
}

let rounds r =
  match r.detail with
  | Sequential { rounds; _ } -> Some rounds
  | Parallel -> None

let wedge r =
  match r.detail with
  | Sequential { wedge; _ } -> wedge
  | Parallel -> None

let pp_outcome = Event.pp_outcome

let pp ppf r =
  match r.detail with
  | Sequential { rounds; _ } ->
    Format.fprintf ppf
      "%a: %d rounds, %d data msgs, %d dummy msgs, %d data at sinks"
      pp_outcome r.outcome rounds r.data_messages r.dummy_messages r.sink_data
  | Parallel ->
    Format.fprintf ppf "%a: %d data msgs, %d dummy msgs, %d data at sinks"
      pp_outcome r.outcome r.data_messages r.dummy_messages r.sink_data

(* The replay oracle. Every count below is reconstructed from events
   alone; see the .mli for the correspondence. The pending-send length
   of a node is (data sends enqueued by its firings + EOS markers it
   fanned out) minus (data/EOS messages actually pushed on its out
   edges) — dummies bypass the pending queue via the per-channel slot,
   so they are excluded from both sides. *)
let of_events ~graph:g events =
  let n = Graph.num_nodes g and m = Graph.num_edges g in
  let src = Array.init m (fun i -> (Graph.edge g i).src) in
  let into_sink =
    Array.init m (fun i -> Graph.out_degree g (Graph.edge g i).dst = 0)
  in
  let chan_len = Array.make m 0 in
  let per_edge_dummies = Array.make m 0 in
  let data_messages = ref 0 in
  let dummy_messages = ref 0 in
  let sink_data = ref 0 in
  let dropped_dummies = ref 0 in
  let enqueued = Array.make n 0 in
  let delivered = Array.make n 0 in
  let finished = Array.make n false in
  let rounds = ref 0 in
  let wedged = ref false in
  let declared = ref None in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Round_started { round } -> rounds := max !rounds round
      | Event.Node_fired { node; sent; _ } ->
        enqueued.(node) <- enqueued.(node) + List.length sent
      | Event.Push { edge; payload; _ } -> (
        chan_len.(edge) <- chan_len.(edge) + 1;
        match payload with
        | Event.Data ->
          incr data_messages;
          delivered.(src.(edge)) <- delivered.(src.(edge)) + 1
        | Event.Dummy ->
          incr dummy_messages;
          per_edge_dummies.(edge) <- per_edge_dummies.(edge) + 1
        | Event.Eos -> delivered.(src.(edge)) <- delivered.(src.(edge)) + 1)
      | Event.Pop { edge; payload; _ } -> (
        chan_len.(edge) <- chan_len.(edge) - 1;
        match payload with
        | Event.Data -> if into_sink.(edge) then incr sink_data
        | Event.Dummy | Event.Eos -> ())
      | Event.Dummy_dropped _ -> incr dropped_dummies
      | Event.Eos { node } ->
        finished.(node) <- true;
        enqueued.(node) <- enqueued.(node) + Graph.out_degree g node
      | Event.Wedge _ -> wedged := true
      | Event.Run_finished { outcome } -> declared := Some outcome
      | Event.Dummy_emitted _ | Event.Blocked _ | Event.Subnode_fired _ -> ())
    events;
  let node_blocked = Array.init n (fun v -> enqueued.(v) > delivered.(v)) in
  let drained =
    Array.for_all Fun.id finished
    && Array.for_all (fun l -> l = 0) chan_len
    && Array.for_all (fun b -> not b) node_blocked
  in
  let outcome =
    match !declared with
    | Some o -> o
    | None ->
      if !wedged then Deadlocked
      else if drained then Completed
      else Budget_exhausted
  in
  let wedge =
    if !wedged then
      Some
        {
          channel_lengths = chan_len;
          node_blocked;
          node_finished = finished;
        }
    else None
  in
  let detail =
    if !rounds > 0 then Sequential { rounds = !rounds; wedge } else Parallel
  in
  {
    outcome;
    data_messages = !data_messages;
    dummy_messages = !dummy_messages;
    sink_data = !sink_data;
    dropped_dummies = !dropped_dummies;
    per_edge_dummies;
    detail;
  }
