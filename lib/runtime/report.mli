(** The unified run report: one result type for every engine.

    Both {!Engine.run} (sequential, either scheduler) and
    [Fstream_parallel.Parallel_engine.run] return a {!t}, so
    verification, benchmarks and the differential test suites compare
    engines through a single type instead of hand-copied fields.
    Engine-specific information — the deterministic round count and
    the frozen wedge snapshot, which only the sequential engine can
    produce — lives in the {!detail} variant payload.

    {!of_events} is the replay oracle: it reconstructs a report purely
    from the {!Fstream_obs.Event} log of a run. For the sequential
    engine the reconstruction is bit-for-bit equal to the report the
    engine returned (property-tested across schedulers, avoidance
    modes and topology families in [test/test_obs.ml]) — which is the
    proof that the event stream is a complete account of the run. *)

open Fstream_graph

type outcome = Fstream_obs.Event.outcome =
  | Completed
  | Deadlocked
  | Budget_exhausted

type snapshot = {
  channel_lengths : int array;  (** per edge id, at the wedge *)
  node_blocked : bool array;
      (** nodes holding a pending send stuck on a full channel *)
  node_finished : bool array;
}
(** The frozen state of a deadlocked run — input to
    {!Diagnosis.explain}, which locates the witness cycle of §II.B. *)

type detail =
  | Sequential of { rounds : int; wedge : snapshot option }
      (** deterministic scheduler: [rounds] executed; [wedge] is the
          frozen state when [outcome = Deadlocked], else [None] *)
  | Parallel
      (** shared-memory engine: deadlock detected by a stall watchdog,
          so there is no round count and no deterministic snapshot *)

type t = {
  outcome : outcome;
  data_messages : int;  (** data pushes across all channels *)
  dummy_messages : int;  (** dummy pushes across all channels *)
  sink_data : int;  (** data messages consumed by sink nodes *)
  dropped_dummies : int;
      (** dummies superseded before delivery — coalesced with a newer
          dummy, overtaken by data, or discarded at end-of-stream *)
  per_edge_dummies : int array;
  detail : detail;
}

val rounds : t -> int option
(** [Some] for the sequential engine, [None] for the parallel one. *)

val wedge : t -> snapshot option
(** The wedge snapshot, when there is one. *)

val of_events : graph:Graph.t -> Fstream_obs.Event.t list -> t
(** Reconstruct the report of the run that produced this (complete)
    event log. Counts are folded from [Push]/[Pop]/[Dummy_dropped]
    events, the wedge snapshot from the occupancy and pending-send
    history, rounds from [Round_started], and the outcome from the
    terminal [Run_finished] (with a structural fallback for truncated
    logs: wedge seen — deadlocked; every node retired and every
    channel drained — completed; otherwise budget-exhausted). *)

val pp : Format.formatter -> t -> unit
val pp_outcome : Format.formatter -> outcome -> unit
