open Fstream_graph

type engine =
  | Sequential of { scheduler : Engine.scheduler; batch : int }
  | Pool of { domains : int option; grain : int; stall_ms : int option }

type config = {
  engine : engine;
  avoidance : Engine.avoidance;
  max_rounds : int option;
  sink : Fstream_obs.Sink.t option;
  deadlock_dump : Format.formatter option;
}

let default_batch = 1
let default_grain = 32
let default_stall_ms = None

let default_domains () =
  let d = try Domain.recommended_domain_count () with _ -> 2 in
  max 1 (min 8 (d - 1))

let sequential ?(scheduler = Engine.Ready) ?(batch = default_batch) ?max_rounds
    ?sink ?deadlock_dump ~avoidance () =
  {
    engine = Sequential { scheduler; batch };
    avoidance;
    max_rounds;
    sink;
    deadlock_dump;
  }

let pool ?domains ?(grain = default_grain) ?stall_ms ?sink ~avoidance () =
  let stall_ms =
    match stall_ms with Some _ -> stall_ms | None -> default_stall_ms
  in
  {
    engine = Pool { domains; grain; stall_ms };
    avoidance;
    max_rounds = None;
    sink;
    deadlock_dump = None;
  }

let with_avoidance config avoidance = { config with avoidance }

type pool_impl =
  domains:int option ->
  grain:int ->
  stall_ms:int option ->
  sink:Fstream_obs.Sink.t option ->
  graph:Graph.t ->
  kernels:(Graph.node -> Engine.kernel) ->
  inputs:int ->
  avoidance:Engine.avoidance ->
  Report.t

let pool_impl : pool_impl option ref = ref None
let register_pool_impl impl = pool_impl := Some impl

let exec config ~graph ~kernels ~inputs () =
  match config.engine with
  | Sequential { scheduler; batch } ->
    Engine.run ~scheduler ~batch ?max_rounds:config.max_rounds
      ?deadlock_dump:config.deadlock_dump ?sink:config.sink ~graph ~kernels
      ~inputs ~avoidance:config.avoidance ()
  | Pool { domains; grain; stall_ms } -> (
    match !pool_impl with
    | Some impl ->
      impl ~domains ~grain ~stall_ms ~sink:config.sink ~graph ~kernels ~inputs
        ~avoidance:config.avoidance
    | None ->
      failwith
        "Run.exec: no pool engine registered (link filterstream.parallel to \
         execute Pool configs)")

let pp_engine ppf = function
  | Sequential { scheduler; batch } ->
    Format.fprintf ppf "sequential (%s scheduler%s)"
      (match scheduler with Engine.Ready -> "ready" | Engine.Sweep -> "sweep")
      (if batch = 1 then "" else Printf.sprintf ", batch %d" batch)
  | Pool { domains; grain; stall_ms } ->
    Format.fprintf ppf "pool (%s domains, grain %d%s)"
      (match domains with Some d -> string_of_int d | None -> "auto")
      grain
      (match stall_ms with
      | Some ms -> Printf.sprintf ", stall backstop %d ms" ms
      | None -> "")
