(** The unified run facade: one entry point for every engine.

    Before this module, every component that wanted to execute an
    application had to hard-code which engine it was driving —
    {!Engine.run} for the deterministic sequential scheduler,
    [Fstream_parallel.Parallel_engine.run] for the sharded domain
    pool — and thread each engine's private optional arguments through
    its own plumbing. The serving layer ([Fstream_serve]) would have
    been a third copy of that plumbing; instead the engine choice is
    now data: a {!config} value with an {!engine} variant, executed by
    {!exec}. The CLI ([streamcheck simulate] and [streamcheck serve]),
    the benchmarks and the differential test suites all build configs
    and call {!exec}; [Engine.run] and [Parallel_engine.run] survive as
    thin per-engine wrappers.

    Dependency note: the pool engine lives in [fstream_parallel], which
    depends on this library, so {!exec} cannot call it directly.
    [Fstream_parallel] registers its implementation at module
    initialization ({!register_pool_impl}); executing a [Pool] config
    without that library linked raises [Failure]. The
    [filterstream.parallel] archive is built with [-linkall] so merely
    depending on it is enough. *)

open Fstream_graph

(** Which engine executes the application. *)
type engine =
  | Sequential of { scheduler : Engine.scheduler; batch : int }
      (** the deterministic scheduler of {!Engine.run} *)
  | Pool of { domains : int option; grain : int; stall_ms : int option }
      (** the sharded domain pool of
          [Fstream_parallel.Parallel_engine.run]; [domains = None]
          means {!default_domains} *)

type config = {
  engine : engine;
  avoidance : Engine.avoidance;
  max_rounds : int option;
      (** sequential engines only: round budget (default: the engine's
          generous bound). The pool has no round counter and ignores
          it. *)
  sink : Fstream_obs.Sink.t option;
  deadlock_dump : Format.formatter option;
      (** sequential engines only: dump the wedge on deadlock *)
}

(** {1 Shared defaults}

    The single source of truth for the engines' tuning defaults.
    [Parallel_engine] re-exports {!default_grain} and
    {!default_domains}; before these constants existed the pool's
    defaults were documented only in prose and the benchmarks
    hard-coded [32]. *)

val default_batch : int
(** [1] — exact legacy sequential behaviour. *)

val default_grain : int
(** [32] — consecutive firings of one node per pool task execution. *)

val default_stall_ms : int option
(** [None] — the structural quiescence check is the deadlock detector
    of record; the wall-clock backstop is opt-in. *)

val default_domains : unit -> int
(** Worker domains when [Pool { domains = None; _ }]: derived from
    [Domain.recommended_domain_count ()], at least 1, at most 8. *)

(** {1 Constructors} *)

val sequential :
  ?scheduler:Engine.scheduler ->
  ?batch:int ->
  ?max_rounds:int ->
  ?sink:Fstream_obs.Sink.t ->
  ?deadlock_dump:Format.formatter ->
  avoidance:Engine.avoidance ->
  unit ->
  config
(** Sequential config; [scheduler] defaults to {!Engine.Ready}, [batch]
    to {!default_batch}. *)

val pool :
  ?domains:int ->
  ?grain:int ->
  ?stall_ms:int ->
  ?sink:Fstream_obs.Sink.t ->
  avoidance:Engine.avoidance ->
  unit ->
  config
(** Pool config; [grain] defaults to {!default_grain}, [stall_ms] to
    {!default_stall_ms}, [domains] to automatic. *)

val with_avoidance : config -> Engine.avoidance -> config
(** The same config under a different avoidance value — the
    re-execution idiom after a hot reconfiguration swaps a session's
    threshold table: keep the engine choice, swap the table. *)

val exec :
  config ->
  graph:Graph.t ->
  kernels:(Graph.node -> Engine.kernel) ->
  inputs:int ->
  unit ->
  Report.t
(** Execute the application under the configured engine. Exactly
    {!Engine.run} for [Sequential] configs and
    [Parallel_engine.run] for [Pool] configs — same validation, same
    {!Report.t}, same event vocabulary through [sink].

    @raise Failure on a [Pool] config when no pool engine is linked
    (see the module comment).
    @raise Invalid_argument for the underlying engine's argument
    errors (mismatched threshold table, [batch < 1], [grain < 1],
    [domains] out of range). *)

val pp_engine : Format.formatter -> engine -> unit

(** {1 Engine registration (internal plumbing)} *)

type pool_impl =
  domains:int option ->
  grain:int ->
  stall_ms:int option ->
  sink:Fstream_obs.Sink.t option ->
  graph:Graph.t ->
  kernels:(Graph.node -> Engine.kernel) ->
  inputs:int ->
  avoidance:Engine.avoidance ->
  Report.t

val register_pool_impl : pool_impl -> unit
(** Called once by [Fstream_parallel] at module initialization; not
    for application code. Later registrations win (tests may inject a
    stub). *)
