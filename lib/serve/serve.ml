open Fstream_graph
module Lint = Fstream_analysis.Lint
module Compiler = Fstream_core.Compiler
module Thresholds = Fstream_core.Thresholds
module Engine = Fstream_runtime.Engine
module Report = Fstream_runtime.Report
module Run = Fstream_runtime.Run
module Pool = Fstream_parallel.Parallel_engine.Pool
module App_spec = Fstream_workloads.App_spec

type mode = No_avoidance | Propagation | Non_propagation

let pp_mode ppf = function
  | No_avoidance -> Format.pp_print_string ppf "none"
  | Propagation -> Format.pp_print_string ppf "propagation"
  | Non_propagation -> Format.pp_print_string ppf "non-propagation"

type rejection =
  | Lint_rejected of Lint.diagnostic list
  | Analysis_incomplete of string
  | Plan_rejected of Compiler.error
  | Edit_rejected of string

let pp_rejection ppf = function
  | Lint_rejected ds ->
    Format.fprintf ppf "lint rejected the topology:";
    List.iter
      (fun (d : Lint.diagnostic) ->
        Format.fprintf ppf "@\n  %s %a: %s" d.code Lint.pp_severity d.severity
          d.message)
      ds
  | Analysis_incomplete what ->
    Format.fprintf ppf "analysis incomplete, not admitting unverified \
                        topology: %s"
      what
  | Plan_rejected e -> Format.fprintf ppf "plan error: %a" Compiler.pp_error e
  | Edit_rejected msg -> Format.fprintf ppf "edit script rejected: %s" msg

(* One registry generation: the shared avoidance value, the compile
   cache whose current epoch produced it (what a reconfigure resolves
   incrementally against), and the generation number tables are
   stamped with. *)
type entry = {
  av : Engine.avoidance;
  cache : Compiler.cache;
  eepoch : int;
}

type t = {
  pool : Pool.t;
  grain : int;
  options : Compiler.Options.t;
  lock : Mutex.t; (* registry, caches, counters *)
  (* Both caches key on the backend as well as (fingerprint, mode):
     the verdict depends on it (FS201 is a Warning under [Lp], an
     Error otherwise) and so does the table (the backends compute
     different intervals) — a per-tenant backend override or an
     epoch-scoped option change must never be served another
     backend's cached result. *)
  registry : (int * mode * Compiler.backend, entry) Hashtbl.t;
  lint_cache : (int * mode * Compiler.backend, Lint.report) Hashtbl.t;
      (* spec-less verdicts *)
  mutable tenants : int;
  mutable rejections : int;
  mutable compiles : int;
  mutable recompiles : int;
  mutable warm_pivots : int;
}

type session = {
  sname : string;
  smode : mode;
  sbackend : Compiler.backend;
  server : t;
  slock : Mutex.t;
  scond : Condition.t;
  mutable graph : Graph.t;
  mutable savoidance : Engine.avoidance;
  mutable sepoch : int;
  mutable job : Pool.job option;
  mutable awaiting : bool; (* a thread is inside Pool.await for [job] *)
  mutable report : Report.t option;
}

let create ?domains ?quota ?(grain = Run.default_grain)
    ?(options = Compiler.Options.default) () =
  {
    pool = Pool.create ?domains ?quota ();
    grain;
    options;
    lock = Mutex.create ();
    registry = Hashtbl.create 64;
    lint_cache = Hashtbl.create 64;
    tenants = 0;
    rejections = 0;
    compiles = 0;
    recompiles = 0;
    warm_pivots = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let lint_algorithm = function
  | Propagation -> Compiler.Propagation
  | Non_propagation | No_avoidance -> Compiler.Non_propagation

(* Admission step 1: the lint verdict. Spec-less verdicts depend only
   on what the cache key covers (structure + capacities + mode +
   backend), so they are cached; a spec brings tenant-specific
   behaviours (rules FS401-FS403) and is always linted fresh. *)
let lint_verdict t ~fp ~mode ~backend ~spec g =
  let config =
    {
      Lint.default_config with
      algorithm = lint_algorithm mode;
      backend;
      spec;
    }
  in
  let fresh () = Lint.run ~config g in
  let report =
    match spec with
    | Some _ -> fresh ()
    | None -> (
      match
        locked t (fun () -> Hashtbl.find_opt t.lint_cache (fp, mode, backend))
      with
      | Some r -> r
      | None ->
        let r = fresh () in
        locked t (fun () ->
            if not (Hashtbl.mem t.lint_cache (fp, mode, backend)) then
              Hashtbl.add t.lint_cache (fp, mode, backend) r);
        r)
  in
  match report.incomplete with
  | Some what -> Error (Analysis_incomplete what)
  | None -> (
    match
      List.filter
        (fun (d : Lint.diagnostic) -> d.severity = Lint.Error)
        report.diagnostics
    with
    | [] -> Ok ()
    | errors -> Error (Lint_rejected errors))

let avoidance_of_plan ~epoch mode g (plan : Compiler.plan) =
  let stamp th = Thresholds.with_epoch th epoch in
  match mode with
  | No_avoidance -> Engine.No_avoidance
  | Propagation ->
    Engine.Propagation
      (stamp (Compiler.propagation_thresholds g plan.Compiler.intervals))
  | Non_propagation ->
    Engine.Non_propagation
      (stamp (Compiler.send_thresholds g plan.Compiler.intervals))

(* Admission step 2: the shared threshold table. One compile per
   distinct (fingerprint, mode, backend); every later key-equal tenant
   gets the physically same avoidance value. The table stays bound to
   the first tenant's graph object — Thresholds compatibility is by
   fingerprint, so the pool accepts it for every structural twin. *)
let shared_entry t ~fp ~mode ~backend g =
  match mode with
  | No_avoidance -> Ok None
  | Propagation | Non_propagation -> (
    match
      locked t (fun () -> Hashtbl.find_opt t.registry (fp, mode, backend))
    with
    | Some e -> Ok (Some e)
    | None -> (
      let options =
        { t.options with Compiler.Options.fuse = false; backend }
      in
      let cache = Compiler.cache_create () in
      match
        Compiler.compile_cached ~options cache (lint_algorithm mode) g
      with
      | Error e -> Error (Plan_rejected e)
      | Ok (plan, _) ->
        let av = avoidance_of_plan ~epoch:0 mode g plan in
        let entry = { av; cache; eepoch = 0 } in
        Ok
          (Some
             (locked t (fun () ->
                  (* a racing admission may have won; keep the first *)
                  match Hashtbl.find_opt t.registry (fp, mode, backend) with
                  | Some prior -> prior
                  | None ->
                    Hashtbl.add t.registry (fp, mode, backend) entry;
                    t.compiles <- t.compiles + 1;
                    entry)))))

let admit t ?name ?spec ?backend ~mode g =
  let backend =
    match backend with
    | Some b -> b
    | None -> t.options.Compiler.Options.backend
  in
  let fp = Thresholds.graph_fingerprint g in
  (match spec with
  | Some (s : App_spec.t)
    when Thresholds.graph_fingerprint s.graph <> fp ->
    invalid_arg "Serve.admit: spec describes a different graph"
  | _ -> ());
  let verdict =
    match lint_verdict t ~fp ~mode ~backend ~spec g with
    | Error _ as e -> e
    | Ok () -> shared_entry t ~fp ~mode ~backend g
  in
  match verdict with
  | Error r ->
    locked t (fun () -> t.rejections <- t.rejections + 1);
    Error r
  | Ok entry ->
    let sname =
      locked t (fun () ->
          let id = t.tenants in
          t.tenants <- id + 1;
          match name with
          | Some n -> n
          | None -> Printf.sprintf "tenant-%d" id)
    in
    Ok
      {
        sname;
        smode = mode;
        sbackend = backend;
        server = t;
        slock = Mutex.create ();
        scond = Condition.create ();
        graph = g;
        savoidance =
          (match entry with
          | Some e -> e.av
          | None -> Engine.No_avoidance);
        sepoch = 0;
        job = None;
        awaiting = false;
        report = None;
      }

let name s = s.sname
let avoidance s = s.savoidance
let epoch s = s.sepoch

let graph s =
  Mutex.lock s.slock;
  let g = s.graph in
  Mutex.unlock s.slock;
  g

let start t ?sink ~kernels ~inputs s =
  Mutex.lock s.slock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock s.slock)
    (fun () ->
      if s.job <> None && s.report = None then
        invalid_arg (Printf.sprintf "Serve.start: session %s already started"
                       s.sname);
      (* a collected report means the previous run reached its boundary;
         starting again launches the session's current epoch afresh *)
      s.report <- None;
      s.job <-
        Some
          (Pool.submit t.pool ~grain:t.grain ?sink ~graph:s.graph ~kernels
             ~inputs ~avoidance:s.savoidance ()))

(* Join the session's in-flight run, calling [Pool.await] exactly once
   per job no matter how many threads need the boundary (user [await]s
   racing a [reconfigure] drain): the first claims the join with
   [awaiting]; the rest sleep on the condition until the report lands. *)
let collect s =
  Mutex.lock s.slock;
  let rec loop () =
    match s.report with
    | Some r ->
      Mutex.unlock s.slock;
      r
    | None -> (
      match s.job with
      | None ->
        Mutex.unlock s.slock;
        invalid_arg "Serve.await: session was never started"
      | Some job ->
        if s.awaiting then begin
          Condition.wait s.scond s.slock;
          loop ()
        end
        else begin
          s.awaiting <- true;
          Mutex.unlock s.slock;
          (match Pool.await job with
          | r ->
            Mutex.lock s.slock;
            s.report <- Some r;
            s.awaiting <- false;
            Condition.broadcast s.scond
          | exception e ->
            Mutex.lock s.slock;
            (* the job is dead and may not be awaited again *)
            s.job <- None;
            s.awaiting <- false;
            Condition.broadcast s.scond;
            Mutex.unlock s.slock;
            raise e);
          loop ()
        end)
  in
  loop ()

let await s = collect s

let run t ?sink ~kernels ~inputs s =
  start t ?sink ~kernels ~inputs s;
  await s

(* Hot reconfiguration: apply the edit script to the session's current
   topology, re-admit the result (same lint bar as the front door),
   resolve its table — registry hit, or incremental recompile against
   the session's current registry entry's cache — and only then drain
   the session to its run boundary and swap graph + table atomically.
   All the expensive work happens before the drain, so the window in
   which the session is unavailable is the tail of its own run. *)
let reconfigure t s ops =
  let reject r =
    locked t (fun () -> t.rejections <- t.rejections + 1);
    Error r
  in
  Mutex.lock s.slock;
  let base = s.graph in
  Mutex.unlock s.slock;
  match Edit.apply base ops with
  | Error msg -> reject (Edit_rejected msg)
  | Ok delta -> (
    let g = delta.Edit.graph in
    let fp = Thresholds.graph_fingerprint g in
    let mode = s.smode and backend = s.sbackend in
    match lint_verdict t ~fp ~mode ~backend ~spec:None g with
    | Error r -> reject r
    | Ok () -> (
      let resolved =
        match mode with
        | No_avoidance -> Ok (Engine.No_avoidance, None)
        | Propagation | Non_propagation -> (
          match
            locked t (fun () ->
                Hashtbl.find_opt t.registry (fp, mode, backend))
          with
          | Some e -> Ok (e.av, None)
          | None -> (
            (* the session's current entry carries the cache whose
               epoch is [delta.base] — recompile incrementally *)
            let old_fp = Thresholds.graph_fingerprint base in
            let cache, old_epoch =
              match
                locked t (fun () ->
                    Hashtbl.find_opt t.registry (old_fp, mode, backend))
              with
              | Some e -> (e.cache, e.eepoch)
              | None -> (Compiler.cache_create (), 0)
            in
            let options =
              { t.options with Compiler.Options.fuse = false; backend }
            in
            match
              Compiler.recompile ~options cache (lint_algorithm mode) delta
            with
            | Error e -> Error (Plan_rejected e)
            | Ok (plan, stats) ->
              let eepoch = old_epoch + 1 in
              let av = avoidance_of_plan ~epoch:eepoch mode g plan in
              let entry = { av; cache; eepoch } in
              let entry =
                locked t (fun () ->
                    match
                      Hashtbl.find_opt t.registry (fp, mode, backend)
                    with
                    | Some prior -> prior
                    | None ->
                      Hashtbl.add t.registry (fp, mode, backend) entry;
                      t.recompiles <- t.recompiles + 1;
                      (match stats.Compiler.lp_stats with
                      | Some lp ->
                        t.warm_pivots <- t.warm_pivots + lp.Fstream_core.Lp.rpivots
                      | None -> ());
                      entry)
              in
              Ok (entry.av, Some stats)))
      in
      match resolved with
      | Error r -> reject r
      | Ok (av, stats) ->
        (* drain to the run boundary: a started, uncollected session is
           joined here (its report stays cached for the user's await) *)
        Mutex.lock s.slock;
        let need_drain = s.job <> None && s.report = None in
        Mutex.unlock s.slock;
        if need_drain then ignore (collect s);
        Mutex.lock s.slock;
        s.graph <- g;
        s.savoidance <- av;
        s.sepoch <- s.sepoch + 1;
        Mutex.unlock s.slock;
        Ok stats))

let shutdown t = Pool.shutdown t.pool

type stats = {
  tenants : int;
  rejections : int;
  compiles : int;
  recompiles : int;
  warm_pivots : int;
}

let stats t =
  locked t (fun () ->
      {
        tenants = t.tenants;
        rejections = t.rejections;
        compiles = t.compiles;
        recompiles = t.recompiles;
        warm_pivots = t.warm_pivots;
      })
