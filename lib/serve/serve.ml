open Fstream_graph
module Lint = Fstream_analysis.Lint
module Compiler = Fstream_core.Compiler
module Thresholds = Fstream_core.Thresholds
module Engine = Fstream_runtime.Engine
module Report = Fstream_runtime.Report
module Run = Fstream_runtime.Run
module Pool = Fstream_parallel.Parallel_engine.Pool
module App_spec = Fstream_workloads.App_spec

type mode = No_avoidance | Propagation | Non_propagation

let pp_mode ppf = function
  | No_avoidance -> Format.pp_print_string ppf "none"
  | Propagation -> Format.pp_print_string ppf "propagation"
  | Non_propagation -> Format.pp_print_string ppf "non-propagation"

type rejection =
  | Lint_rejected of Lint.diagnostic list
  | Analysis_incomplete of string
  | Plan_rejected of Compiler.error

let pp_rejection ppf = function
  | Lint_rejected ds ->
    Format.fprintf ppf "lint rejected the topology:";
    List.iter
      (fun (d : Lint.diagnostic) ->
        Format.fprintf ppf "@\n  %s %a: %s" d.code Lint.pp_severity d.severity
          d.message)
      ds
  | Analysis_incomplete what ->
    Format.fprintf ppf "analysis incomplete, not admitting unverified \
                        topology: %s"
      what
  | Plan_rejected e -> Format.fprintf ppf "plan error: %a" Compiler.pp_error e

type t = {
  pool : Pool.t;
  grain : int;
  options : Compiler.Options.t;
  lock : Mutex.t; (* registry, caches, counters *)
  registry : (int * mode, Engine.avoidance) Hashtbl.t;
  lint_cache : (int * mode, Lint.report) Hashtbl.t; (* spec-less verdicts *)
  mutable tenants : int;
  mutable rejections : int;
  mutable compiles : int;
}

type session = {
  sname : string;
  graph : Graph.t;
  savoidance : Engine.avoidance;
  server : t;
  slock : Mutex.t;
  mutable job : Pool.job option;
  mutable report : Report.t option;
}

let create ?domains ?quota ?(grain = Run.default_grain)
    ?(options = Compiler.Options.default) () =
  {
    pool = Pool.create ?domains ?quota ();
    grain;
    options;
    lock = Mutex.create ();
    registry = Hashtbl.create 64;
    lint_cache = Hashtbl.create 64;
    tenants = 0;
    rejections = 0;
    compiles = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let lint_algorithm = function
  | Propagation -> Compiler.Propagation
  | Non_propagation | No_avoidance -> Compiler.Non_propagation

(* Admission step 1: the lint verdict. Spec-less verdicts depend only
   on what the fingerprint covers (structure + capacities + mode), so
   they are cached; a spec brings tenant-specific behaviours (rules
   FS401-FS403) and is always linted fresh. *)
let lint_verdict t ~fp ~mode ~spec g =
  let config =
    {
      Lint.default_config with
      algorithm = lint_algorithm mode;
      backend = t.options.Compiler.Options.backend;
      spec;
    }
  in
  let fresh () = Lint.run ~config g in
  let report =
    match spec with
    | Some _ -> fresh ()
    | None -> (
      match locked t (fun () -> Hashtbl.find_opt t.lint_cache (fp, mode)) with
      | Some r -> r
      | None ->
        let r = fresh () in
        locked t (fun () ->
            if not (Hashtbl.mem t.lint_cache (fp, mode)) then
              Hashtbl.add t.lint_cache (fp, mode) r);
        r)
  in
  match report.incomplete with
  | Some what -> Error (Analysis_incomplete what)
  | None -> (
    match
      List.filter
        (fun (d : Lint.diagnostic) -> d.severity = Lint.Error)
        report.diagnostics
    with
    | [] -> Ok ()
    | errors -> Error (Lint_rejected errors))

(* Admission step 2: the shared threshold table. One compile per
   distinct (fingerprint, mode); every later fingerprint-equal tenant
   gets the physically same avoidance value. The table stays bound to
   the first tenant's graph object — Thresholds compatibility is by
   fingerprint, so the pool accepts it for every structural twin. *)
let shared_avoidance t ~fp ~mode g =
  match mode with
  | No_avoidance -> Ok Engine.No_avoidance
  | Propagation | Non_propagation -> (
    match locked t (fun () -> Hashtbl.find_opt t.registry (fp, mode)) with
    | Some av -> Ok av
    | None -> (
      let options = { t.options with Compiler.Options.fuse = false } in
      match Compiler.compile ~options (lint_algorithm mode) g with
      | Error e -> Error (Plan_rejected e)
      | Ok plan ->
        let av =
          match mode with
          | Propagation ->
            Engine.Propagation
              (Compiler.propagation_thresholds g plan.Compiler.intervals)
          | Non_propagation ->
            Engine.Non_propagation
              (Compiler.send_thresholds g plan.Compiler.intervals)
          | No_avoidance -> assert false
        in
        Ok
          (locked t (fun () ->
               (* a racing admission may have won; keep the first *)
               match Hashtbl.find_opt t.registry (fp, mode) with
               | Some prior -> prior
               | None ->
                 Hashtbl.add t.registry (fp, mode) av;
                 t.compiles <- t.compiles + 1;
                 av))))

let admit t ?name ?spec ~mode g =
  let fp = Thresholds.graph_fingerprint g in
  (match spec with
  | Some (s : App_spec.t)
    when Thresholds.graph_fingerprint s.graph <> fp ->
    invalid_arg "Serve.admit: spec describes a different graph"
  | _ -> ());
  let verdict =
    match lint_verdict t ~fp ~mode ~spec g with
    | Error _ as e -> e
    | Ok () -> shared_avoidance t ~fp ~mode g
  in
  match verdict with
  | Error r ->
    locked t (fun () -> t.rejections <- t.rejections + 1);
    Error r
  | Ok savoidance ->
    let sname =
      locked t (fun () ->
          let id = t.tenants in
          t.tenants <- id + 1;
          match name with
          | Some n -> n
          | None -> Printf.sprintf "tenant-%d" id)
    in
    Ok
      {
        sname;
        graph = g;
        savoidance;
        server = t;
        slock = Mutex.create ();
        job = None;
        report = None;
      }

let name s = s.sname
let avoidance s = s.savoidance

let start t ?sink ~kernels ~inputs s =
  Mutex.lock s.slock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock s.slock)
    (fun () ->
      if s.job <> None then
        invalid_arg (Printf.sprintf "Serve.start: session %s already started"
                       s.sname);
      s.job <-
        Some
          (Pool.submit t.pool ~grain:t.grain ?sink ~graph:s.graph ~kernels
             ~inputs ~avoidance:s.savoidance ()))

let await s =
  Mutex.lock s.slock;
  let cached = s.report and job = s.job in
  Mutex.unlock s.slock;
  match (cached, job) with
  | Some r, _ -> r
  | None, None -> invalid_arg "Serve.await: session was never started"
  | None, Some job ->
    let r = Pool.await job in
    Mutex.lock s.slock;
    s.report <- Some r;
    Mutex.unlock s.slock;
    r

let run t ?sink ~kernels ~inputs s =
  start t ?sink ~kernels ~inputs s;
  await s

let shutdown t = Pool.shutdown t.pool

type stats = { tenants : int; rejections : int; compiles : int }

let stats t =
  locked t (fun () ->
      { tenants = t.tenants; rejections = t.rejections; compiles = t.compiles })
