(** Multi-tenant serving layer: many live applications, one pool.

    Everything below [lib/serve] runs one topology per process; the
    serving layer is the resident-daemon shape — a {!t} owns one
    {!Fstream_parallel.Parallel_engine.Pool} and admits any number of
    tenant applications onto it. Three things happen at admission that
    a per-process runtime never needed:

    {ul
    {- {b Admission control.} Every topology is linted
       ({!Fstream_analysis.Lint}) before it may run. Error-severity
       findings reject the tenant with the findings as the reason —
       the linter's severity contract (lint-clean ⇒ no reachable
       wedge for checkable graphs) makes this exactly the
       pre-deployment verification step of the LP-verification line of
       work, applied at the front door. An analysis that could not
       finish (cycle-enumeration budget) also rejects: an unverified
       topology is not admitted on a shared pool.}
    {- {b Compile-once registry.} Interval tables are a function of
       topology + capacities + backend, which
       {!Fstream_core.Thresholds} fingerprints cover together with the
       admission key. The registry compiles each distinct
       (fingerprint, avoidance mode, backend) once and hands every
       key-equal tenant the {e physically same} threshold table (the
       [==] sharing is what the registry test pins down) — at
       production tenant counts, topologies repeat and compilation is
       the expensive step.}
    {- {b Fair-share scheduling.} Sessions multiplex onto the one
       pool; the pool's per-instance grant quota (the instance-level
       analogue of the per-node [grain] bound) keeps a hot tenant from
       starving the rest.}}

    Admitted sessions are additionally {e reconfigurable}: an
    {!Fstream_graph.Edit} script applied through {!reconfigure}
    re-lints the edited topology, recomputes its threshold table
    {e incrementally} against the session's current compile cache
    (clean serial blocks splice, memoized SP subtrees skip, LP
    components warm-start — {!Fstream_core.Compiler.recompile}),
    drains the session to its run boundary and swaps graph + table
    atomically as a new epoch. A session whose report has been
    collected may be {!start}ed again, so a tenant alternates runs and
    reconfigurations indefinitely.

    Admission and execution are decoupled: {!admit} returns a
    {!session}, {!start} launches it (its tasks immediately interleave
    with every other running session's), {!await} collects its
    {!Fstream_runtime.Report.t}. All functions are thread-safe except
    where noted. *)

open Fstream_graph
module Lint = Fstream_analysis.Lint
module Compiler = Fstream_core.Compiler
module Engine = Fstream_runtime.Engine
module Report = Fstream_runtime.Report

type t

(** Which avoidance wrapper admitted sessions run under. The
    threshold-table-carrying constructors of {!Engine.avoidance} are
    inapplicable here — tables are what the registry computes and
    shares, so tenants name the mode only. *)
type mode = No_avoidance | Propagation | Non_propagation

val pp_mode : Format.formatter -> mode -> unit

type rejection =
  | Lint_rejected of Lint.diagnostic list
      (** the Error-severity findings, in lint report order *)
  | Analysis_incomplete of string
      (** lint could not finish (what was skipped); an unverified
          topology is not admitted *)
  | Plan_rejected of Compiler.error
      (** the mode needs a threshold table and compilation failed *)
  | Edit_rejected of string
      (** a {!reconfigure} script was invalid for the session's
          current topology (id out of range, capacity < 1, …) *)

val pp_rejection : Format.formatter -> rejection -> unit

type session

val create :
  ?domains:int ->
  ?quota:int ->
  ?grain:int ->
  ?options:Compiler.Options.t ->
  unit ->
  t
(** Start a server: spawns its pool's worker domains.
    [domains]/[quota] are {!Fstream_parallel.Parallel_engine.Pool.create}'s
    (defaults included); [grain] (default
    {!Fstream_runtime.Run.default_grain}) applies to every session;
    [options] (default {!Compiler.Options.default}) configures the
    registry's compiles — its [fuse] field is ignored, sessions run
    the topology as admitted. *)

val admit :
  t ->
  ?name:string ->
  ?spec:Fstream_workloads.App_spec.t ->
  ?backend:Compiler.backend ->
  mode:mode ->
  Graph.t ->
  (session, rejection) result
(** Lint the topology (plus the per-node behaviours when [spec] is
    given, rules FS401–FS403) and, if admissible, attach the shared
    threshold table for [mode] — compiling it only if this
    (fingerprint, mode, backend) triple is new. Lint verdicts for
    spec-less admissions are cached under the same triple — the
    verdict depends on the backend (FS201 is a Warning under [Lp], an
    Error otherwise), so a per-tenant [backend] override (default: the
    server options') must never see another backend's verdict or
    table. [name] (default ["tenant-N"]) labels the session for
    reports.

    @raise Invalid_argument if [spec] is given but describes a
    different graph than the one being admitted. *)

val name : session -> string

val avoidance : session -> Engine.avoidance
(** The session's current avoidance value. Key-equal sessions admitted
    under the same (fingerprint, mode, backend) share it physically
    (same [Thresholds.t], compiled once) — [avoidance s1 == avoidance
    s2]. After a {!reconfigure} the session carries its new epoch's
    value. *)

val epoch : session -> int
(** How many successful {!reconfigure}s this session has absorbed;
    [0] as admitted. The session's threshold table is stamped with its
    registry generation ({!Fstream_core.Thresholds.epoch}). *)

val graph : session -> Graph.t
(** The session's current topology — the admitted graph until a
    {!reconfigure} succeeds, the edited graph afterwards. Kernel
    factories for a restarted session must be built against this. *)

val start :
  t ->
  ?sink:Fstream_obs.Sink.t ->
  kernels:(Graph.node -> Engine.kernel) ->
  inputs:int ->
  session ->
  unit
(** Launch the session on the shared pool; returns immediately. The
    kernel-factory contract is the pool's: per-node, per-session
    state. A session whose previous run's report has been collected
    (by {!await} or a {!reconfigure} drain) may be started again — it
    runs its current epoch's topology and table.
    @raise Invalid_argument if the session is already running. *)

val await : session -> Report.t
(** Block until the session's instance quiesces; re-raises its kernel
    exception if one aborted it. Safe to call from several threads
    (the pool join happens exactly once); subsequent calls return the
    cached report until the next {!start}. Must not be called from a
    pool worker. *)

val run :
  t ->
  ?sink:Fstream_obs.Sink.t ->
  kernels:(Graph.node -> Engine.kernel) ->
  inputs:int ->
  session ->
  Report.t
(** [start] then [await]: sequential convenience for one session —
    concurrency comes from starting many sessions before awaiting
    any. *)

val reconfigure :
  t ->
  session ->
  Edit.op list ->
  (Compiler.recompile_stats option, rejection) result
(** Apply the edit script to the session's current topology and move
    the session to the resulting epoch. The edited topology passes the
    same admission bar as a fresh tenant (lint by (fingerprint, mode,
    backend), Error findings reject and leave the session untouched on
    its current epoch). Its table is resolved in order of preference:
    registry hit (another tenant already runs this topology — returns
    [Ok None], no compile at all); otherwise an {e incremental}
    recompile against the session's current registry entry's cache
    ([Ok (Some stats)] reports what was spliced, recomputed and
    warm-started). Only after the table is ready does the session
    drain: a running session is joined at its run boundary (its report
    stays cached for {!await}), then graph, table and {!epoch} swap
    atomically. The server's [recompiles] / [warm_pivots] counters
    advance when an incremental recompile happened.

    Draining joins the in-flight run, so the same restriction as
    {!await} applies: do not call from a pool worker. *)

val shutdown : t -> unit
(** Shut the pool down. Only after every started session has been
    awaited. *)

(** Admission-desk counters since {!create}. *)
type stats = {
  tenants : int;  (** sessions admitted *)
  rejections : int;  (** admissions and reconfigurations refused *)
  compiles : int;
      (** distinct (fingerprint, mode, backend) tables compiled *)
  recompiles : int;  (** incremental recompiles by {!reconfigure} *)
  warm_pivots : int;
      (** simplex pivots spent by those recompiles' LP re-solves
          (cumulative, including any failed warm attempt's) *)
}

val stats : t -> stats
