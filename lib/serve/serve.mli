(** Multi-tenant serving layer: many live applications, one pool.

    Everything below [lib/serve] runs one topology per process; the
    serving layer is the resident-daemon shape — a {!t} owns one
    {!Fstream_parallel.Parallel_engine.Pool} and admits any number of
    tenant applications onto it. Three things happen at admission that
    a per-process runtime never needed:

    {ul
    {- {b Admission control.} Every topology is linted
       ({!Fstream_analysis.Lint}) before it may run. Error-severity
       findings reject the tenant with the findings as the reason —
       the linter's severity contract (lint-clean ⇒ no reachable
       wedge for checkable graphs) makes this exactly the
       pre-deployment verification step of the LP-verification line of
       work, applied at the front door. An analysis that could not
       finish (cycle-enumeration budget) also rejects: an unverified
       topology is not admitted on a shared pool.}
    {- {b Compile-once registry.} Interval tables are a function of
       topology + capacities, which {!Fstream_core.Thresholds}
       fingerprints. The registry compiles each distinct
       (fingerprint, avoidance mode) once and hands every
       fingerprint-equal tenant the {e physically same} threshold
       table (the [==] sharing is what the registry test pins down) —
       at production tenant counts, topologies repeat and compilation
       is the expensive step.}
    {- {b Fair-share scheduling.} Sessions multiplex onto the one
       pool; the pool's per-instance grant quota (the instance-level
       analogue of the per-node [grain] bound) keeps a hot tenant from
       starving the rest.}}

    Admission and execution are decoupled: {!admit} returns a
    {!session}, {!start} launches it (its tasks immediately interleave
    with every other running session's), {!await} collects its
    {!Fstream_runtime.Report.t}. All functions are thread-safe except
    where noted. *)

open Fstream_graph
module Lint = Fstream_analysis.Lint
module Compiler = Fstream_core.Compiler
module Engine = Fstream_runtime.Engine
module Report = Fstream_runtime.Report

type t

(** Which avoidance wrapper admitted sessions run under. The
    threshold-table-carrying constructors of {!Engine.avoidance} are
    inapplicable here — tables are what the registry computes and
    shares, so tenants name the mode only. *)
type mode = No_avoidance | Propagation | Non_propagation

val pp_mode : Format.formatter -> mode -> unit

type rejection =
  | Lint_rejected of Lint.diagnostic list
      (** the Error-severity findings, in lint report order *)
  | Analysis_incomplete of string
      (** lint could not finish (what was skipped); an unverified
          topology is not admitted *)
  | Plan_rejected of Compiler.error
      (** the mode needs a threshold table and compilation failed *)

val pp_rejection : Format.formatter -> rejection -> unit

type session

val create :
  ?domains:int ->
  ?quota:int ->
  ?grain:int ->
  ?options:Compiler.Options.t ->
  unit ->
  t
(** Start a server: spawns its pool's worker domains.
    [domains]/[quota] are {!Fstream_parallel.Parallel_engine.Pool.create}'s
    (defaults included); [grain] (default
    {!Fstream_runtime.Run.default_grain}) applies to every session;
    [options] (default {!Compiler.Options.default}) configures the
    registry's compiles — its [fuse] field is ignored, sessions run
    the topology as admitted. *)

val admit :
  t ->
  ?name:string ->
  ?spec:Fstream_workloads.App_spec.t ->
  mode:mode ->
  Graph.t ->
  (session, rejection) result
(** Lint the topology (plus the per-node behaviours when [spec] is
    given, rules FS401–FS403) and, if admissible, attach the shared
    threshold table for [mode] — compiling it only if this
    (fingerprint, mode) pair is new. Lint verdicts for spec-less
    admissions are cached by fingerprint too. [name] (default
    ["tenant-N"]) labels the session for reports.

    @raise Invalid_argument if [spec] is given but describes a
    different graph than the one being admitted. *)

val name : session -> string
val avoidance : session -> Engine.avoidance
(** The session's avoidance value. Fingerprint-equal sessions admitted
    under the same mode share it physically (same [Thresholds.t],
    compiled once) — [avoidance s1 == avoidance s2]. *)

val start :
  t ->
  ?sink:Fstream_obs.Sink.t ->
  kernels:(Graph.node -> Engine.kernel) ->
  inputs:int ->
  session ->
  unit
(** Launch the session on the shared pool; returns immediately. The
    kernel-factory contract is the pool's: per-node, per-session
    state. @raise Invalid_argument if the session was already
    started. *)

val await : session -> Report.t
(** Block until the session's instance quiesces; re-raises its kernel
    exception if one aborted it. First call per session must not come
    from a pool worker; subsequent calls return the cached report. *)

val run :
  t ->
  ?sink:Fstream_obs.Sink.t ->
  kernels:(Graph.node -> Engine.kernel) ->
  inputs:int ->
  session ->
  Report.t
(** [start] then [await]: sequential convenience for one session —
    concurrency comes from starting many sessions before awaiting
    any. *)

val shutdown : t -> unit
(** Shut the pool down. Only after every started session has been
    awaited. *)

(** Admission-desk counters since {!create}. *)
type stats = {
  tenants : int;  (** sessions admitted *)
  rejections : int;  (** admissions refused *)
  compiles : int;  (** distinct (fingerprint, mode) tables compiled *)
}

val stats : t -> stats
