open Fstream_graph

type t = {
  shape : shape;
  source : Graph.node;
  sink : Graph.node;
  l : int;
  h : int;
  n_edges : int;
}

and shape =
  | Leaf of Graph.edge
  | Series of t * t
  | Parallel of t * t

let leaf (e : Graph.edge) =
  { shape = Leaf e; source = e.src; sink = e.dst; l = e.cap; h = 1; n_edges = 1 }

let series h1 h2 =
  if h1.sink <> h2.source then
    invalid_arg "Sp_tree.series: sink of first must be source of second";
  {
    shape = Series (h1, h2);
    source = h1.source;
    sink = h2.sink;
    l = h1.l + h2.l;
    h = h1.h + h2.h;
    n_edges = h1.n_edges + h2.n_edges;
  }

let parallel h1 h2 =
  if h1.source <> h2.source || h1.sink <> h2.sink then
    invalid_arg "Sp_tree.parallel: terminals must coincide";
  {
    shape = Parallel (h1, h2);
    source = h1.source;
    sink = h1.sink;
    l = min h1.l h2.l;
    h = max h1.h h2.h;
    n_edges = h1.n_edges + h2.n_edges;
  }

let iter_edges t f =
  let rec go t =
    match t.shape with
    | Leaf e -> f e
    | Series (a, b) | Parallel (a, b) ->
      go a;
      go b
  in
  go t

let edges t =
  let acc = ref [] in
  iter_edges t (fun e -> acc := e :: !acc);
  List.rev !acc

let series_spine t =
  (* Walk only through Series nodes: anything below a Parallel lies on
     an undirected cycle formed with the sibling branch. *)
  let acc = ref [] in
  let rec go t =
    match t.shape with
    | Leaf e -> acc := e :: !acc
    | Series (a, b) ->
      go a;
      go b
    | Parallel _ -> ()
  in
  go t;
  List.rev !acc

let check_against t g =
  let seen = Array.make (Graph.num_edges g) false in
  let ok = ref true in
  iter_edges t (fun e ->
      if e.id < 0 || e.id >= Graph.num_edges g || seen.(e.id) then ok := false
      else begin
        seen.(e.id) <- true;
        let e' = Graph.edge g e.id in
        if e' <> e then ok := false
      end);
  !ok
  && Array.for_all Fun.id seen
  &&
  match Topo.is_two_terminal g with
  | Some (x, y) -> t.source = x && t.sink = y
  | None -> false

let rec pp ppf t =
  match t.shape with
  | Leaf e -> Format.fprintf ppf "e%d" e.id
  | Series (a, b) -> Format.fprintf ppf "(S %a %a)" pp a pp b
  | Parallel (a, b) -> Format.fprintf ppf "(P %a %a)" pp a pp b
