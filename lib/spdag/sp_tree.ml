open Fstream_graph

type t = {
  shape : shape;
  source : Graph.node;
  sink : Graph.node;
  l : int;
  h : int;
  n_edges : int;
  uid : int;
}

and shape =
  | Leaf of Graph.edge
  | Series of t * t
  | Parallel of t * t

(* Uids are process-global so trees built by concurrent compiles never
   collide; equality of uids certifies physical equality only for trees
   interned through one [Builder]. *)
let next_uid = Atomic.make 0

let fresh_uid () = Atomic.fetch_and_add next_uid 1

let leaf (e : Graph.edge) =
  {
    shape = Leaf e;
    source = e.src;
    sink = e.dst;
    l = e.cap;
    h = 1;
    n_edges = 1;
    uid = fresh_uid ();
  }

let series h1 h2 =
  if h1.sink <> h2.source then
    invalid_arg "Sp_tree.series: sink of first must be source of second";
  {
    shape = Series (h1, h2);
    source = h1.source;
    sink = h2.sink;
    l = h1.l + h2.l;
    h = h1.h + h2.h;
    n_edges = h1.n_edges + h2.n_edges;
    uid = fresh_uid ();
  }

let parallel h1 h2 =
  if h1.source <> h2.source || h1.sink <> h2.sink then
    invalid_arg "Sp_tree.parallel: terminals must coincide";
  {
    shape = Parallel (h1, h2);
    source = h1.source;
    sink = h1.sink;
    l = min h1.l h2.l;
    h = max h1.h h2.h;
    n_edges = h1.n_edges + h2.n_edges;
    uid = fresh_uid ();
  }

let iter_edges t f =
  let rec go t =
    match t.shape with
    | Leaf e -> f e
    | Series (a, b) | Parallel (a, b) ->
      go a;
      go b
  in
  go t

let edges t =
  let acc = ref [] in
  iter_edges t (fun e -> acc := e :: !acc);
  List.rev !acc

let series_spine t =
  (* Walk only through Series nodes: anything below a Parallel lies on
     an undirected cycle formed with the sibling branch. *)
  let acc = ref [] in
  let rec go t =
    match t.shape with
    | Leaf e -> acc := e :: !acc
    | Series (a, b) ->
      go a;
      go b
    | Parallel _ -> ()
  in
  go t;
  List.rev !acc

let check_against t g =
  let seen = Array.make (Graph.num_edges g) false in
  let ok = ref true in
  iter_edges t (fun e ->
      if e.id < 0 || e.id >= Graph.num_edges g || seen.(e.id) then ok := false
      else begin
        seen.(e.id) <- true;
        let e' = Graph.edge g e.id in
        if e' <> e then ok := false
      end);
  !ok
  && Array.for_all Fun.id seen
  &&
  match Topo.is_two_terminal g with
  | Some (x, y) -> t.source = x && t.sink = y
  | None -> false

let rec pp ppf t =
  match t.shape with
  | Leaf e -> Format.fprintf ppf "e%d" e.id
  | Series (a, b) -> Format.fprintf ppf "(S %a %a)" pp a pp b
  | Parallel (a, b) -> Format.fprintf ppf "(P %a %a)" pp a pp b

(* Hash-consing across compiles: equal subtrees (same leaf edges, same
   compositions) intern to the physically same node, so two compiles of
   graphs that share an untouched region hand the interval algorithms
   trees whose shared subtrees carry the *same* uid. That uid equality
   is what the incremental recompiler's (subtree, context) memo keys
   on. Leaves intern by the full edge record — id, endpoints and
   capacity — so an edit that renumbers or resizes an edge breaks
   sharing exactly where values may differ. *)
module Builder = struct
  type tree = t

  type t = {
    lock : Mutex.t;
    leaves : (Graph.edge, tree) Hashtbl.t;
    comps : (int * int * int, tree) Hashtbl.t;
        (* (0 = series | 1 = parallel, uid left, uid right) *)
  }

  let create () =
    {
      lock = Mutex.create ();
      leaves = Hashtbl.create 256;
      comps = Hashtbl.create 256;
    }

  let comp bld tag left right orig rebuild =
    let key = (tag, left.uid, right.uid) in
    match Hashtbl.find_opt bld.comps key with
    | Some s -> s
    | None ->
      let s = rebuild left right orig in
      Hashtbl.add bld.comps key s;
      s

  let keep rebuild a b orig =
    match orig.shape with
    | Series (a0, b0) | Parallel (a0, b0) when a == a0 && b == b0 -> orig
    | _ -> rebuild a b

  let locked bld f =
    Mutex.lock bld.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock bld.lock) f

  let intern bld t =
    let rec go t =
      match t.shape with
      | Leaf e -> (
        match Hashtbl.find_opt bld.leaves e with
        | Some s -> s
        | None ->
          Hashtbl.add bld.leaves e t;
          t)
      | Series (a0, b0) ->
        let a = go a0 and b = go b0 in
        comp bld 0 a b t (keep series)
      | Parallel (a0, b0) ->
        let a = go a0 and b = go b0 in
        comp bld 1 a b t (keep parallel)
    in
    locked bld (fun () -> go t)

  (* Substitution without re-recognition: rebuild [t] against [g],
     replacing every leaf by [g]'s current record at the same edge id
     (an id-stable edit only ever changes capacities) and re-interning
     the composites so the l/h summaries refresh. Subtrees whose leaf
     records are unchanged come back physically identical — same uid —
     so (subtree, context) memo entries recorded against the old tree
     still hit. *)
  let refresh bld g t =
    let rec go t =
      match t.shape with
      | Leaf e -> (
        let e' = Graph.edge g e.id in
        match Hashtbl.find_opt bld.leaves e' with
        | Some s -> s
        | None ->
          let s = if e' = e then t else leaf e' in
          Hashtbl.add bld.leaves e' s;
          s)
      | Series (a0, b0) ->
        let a = go a0 and b = go b0 in
        comp bld 0 a b t (keep series)
      | Parallel (a0, b0) ->
        let a = go a0 and b = go b0 in
        comp bld 1 a b t (keep parallel)
    in
    locked bld (fun () -> go t)
end
