(** Series-parallel decomposition trees.

    A two-terminal series-parallel DAG (§III) decomposes into a binary
    tree whose leaves are the original edges and whose internal nodes
    are the serial ([Sc]) and parallel ([Pc]) compositions that build
    the graph. The paper's "multi-edge" base case appears here as a
    parallel composition of single-edge leaves, which computes the same
    values (see DESIGN.md).

    Every subtree caches the two quantities the interval algorithms
    consume: [l] — the shortest source-to-sink path by total buffer
    capacity (the paper's [L(H)]) — and [h] — the longest source-to-sink
    path by hop count (the paper's [h(H)]). Both are maintained in O(1)
    per composition by the recurrences of §IV. *)

open Fstream_graph

type t = private {
  shape : shape;
  source : Graph.node;
  sink : Graph.node;
  l : int;  (** L(H): min total capacity over source-to-sink paths *)
  h : int;  (** h(H): max hop count over source-to-sink paths *)
  n_edges : int;  (** leaves below this subtree *)
  uid : int;
      (** process-unique node identity; within one {!Builder}, uid
          equality means structural equality (same leaves, same
          compositions) *)
}

and shape =
  | Leaf of Graph.edge
  | Series of t * t
  | Parallel of t * t

val leaf : Graph.edge -> t

val series : t -> t -> t
(** [series h1 h2] is [Sc(h1, h2)].
    @raise Invalid_argument unless [h1.sink = h2.source]. *)

val parallel : t -> t -> t
(** [parallel h1 h2] is [Pc(h1, h2)].
    @raise Invalid_argument unless sources and sinks coincide. *)

val edges : t -> Graph.edge list
(** The leaves, left to right. *)

val iter_edges : t -> (Graph.edge -> unit) -> unit

val series_spine : t -> Graph.edge list
(** The leaves that sit under no [Parallel] composition, left to right:
    the edges every source-to-sink path must cross. For the SP graph the
    tree decomposes, these are exactly the bridges of the underlying
    undirected graph ({!Fstream_graph.Articulation.bridges}) — the edges
    on no undirected cycle, and hence the only SP edges a kernel-fusion
    pass may collapse without disturbing cycle structure. The
    correspondence is property-checked in [test/test_fusion.ml]. *)

val check_against : t -> Graph.t -> bool
(** Structural audit used by tests: the tree's leaves are exactly the
    graph's edges (each once), every composition is well-connected, and
    the tree's terminals are the graph's unique source and sink. *)

val pp : Format.formatter -> t -> unit
(** S-expression-style rendering, e.g. [(S (P e0 e1) e2)]. *)

(** Hash-consing for cross-compile structural sharing. A builder
    persisted across compiles interns equal subtrees — same leaf edge
    records (id, endpoints, capacity), same compositions — to the
    physically same node. After an edit, the decomposition of the new
    graph shares every subtree untouched by the edit with the previous
    compile's tree, and that shared node's stable [uid] is what the
    incremental interval recompiler keys its memo on. Thread-safe. *)
module Builder : sig
  type tree := t
  type t

  val create : unit -> t

  val intern : t -> tree -> tree
  (** Bottom-up canonicalization: returns a tree equal to the argument
      in which every subtree already seen by this builder is replaced
      by the first-seen physical node. Idempotent:
      [intern b (intern b t) == intern b t]. *)

  val refresh : t -> Graph.t -> tree -> tree
  (** [refresh b g t] substitutes [g]'s current edge records into [t] —
      every leaf is replaced by [Graph.edge g id] for its own id, every
      composite re-interned bottom-up so the l/h summaries refresh.
      This rebuilds a decomposition after an id-stable,
      structure-preserving edit (capacity changes only) without
      re-running recognition; subtrees whose leaf records are unchanged
      come back physically identical (same uid), so memo entries
      recorded against the old tree still hit.
      @raise Invalid_argument if a leaf id is out of range in [g]. *)
end
