(** Series-parallel decomposition trees.

    A two-terminal series-parallel DAG (§III) decomposes into a binary
    tree whose leaves are the original edges and whose internal nodes
    are the serial ([Sc]) and parallel ([Pc]) compositions that build
    the graph. The paper's "multi-edge" base case appears here as a
    parallel composition of single-edge leaves, which computes the same
    values (see DESIGN.md).

    Every subtree caches the two quantities the interval algorithms
    consume: [l] — the shortest source-to-sink path by total buffer
    capacity (the paper's [L(H)]) — and [h] — the longest source-to-sink
    path by hop count (the paper's [h(H)]). Both are maintained in O(1)
    per composition by the recurrences of §IV. *)

open Fstream_graph

type t = private {
  shape : shape;
  source : Graph.node;
  sink : Graph.node;
  l : int;  (** L(H): min total capacity over source-to-sink paths *)
  h : int;  (** h(H): max hop count over source-to-sink paths *)
  n_edges : int;  (** leaves below this subtree *)
}

and shape =
  | Leaf of Graph.edge
  | Series of t * t
  | Parallel of t * t

val leaf : Graph.edge -> t

val series : t -> t -> t
(** [series h1 h2] is [Sc(h1, h2)].
    @raise Invalid_argument unless [h1.sink = h2.source]. *)

val parallel : t -> t -> t
(** [parallel h1 h2] is [Pc(h1, h2)].
    @raise Invalid_argument unless sources and sinks coincide. *)

val edges : t -> Graph.edge list
(** The leaves, left to right. *)

val iter_edges : t -> (Graph.edge -> unit) -> unit

val series_spine : t -> Graph.edge list
(** The leaves that sit under no [Parallel] composition, left to right:
    the edges every source-to-sink path must cross. For the SP graph the
    tree decomposes, these are exactly the bridges of the underlying
    undirected graph ({!Fstream_graph.Articulation.bridges}) — the edges
    on no undirected cycle, and hence the only SP edges a kernel-fusion
    pass may collapse without disturbing cycle structure. The
    correspondence is property-checked in [test/test_fusion.ml]. *)

val check_against : t -> Graph.t -> bool
(** Structural audit used by tests: the tree's leaves are exactly the
    graph's edges (each once), every composition is well-connected, and
    the tree's terminals are the graph's unique source and sink. *)

val pp : Format.formatter -> t -> unit
(** S-expression-style rendering, e.g. [(S (P e0 e1) e2)]. *)
