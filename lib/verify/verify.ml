open Fstream_graph

type result =
  | Safe of { states : int }
  | Deadlocks of { states : int; trace : string list }
  | Out_of_budget of { states : int }

let pp_result ppf = function
  | Safe { states } ->
    Format.fprintf ppf "safe (%d states explored, all filtering choices)"
      states
  | Deadlocks { states; trace } ->
    Format.fprintf ppf "deadlocks after %d states; trace:@." states;
    List.iter (fun a -> Format.fprintf ppf "    %s@." a) trace
  | Out_of_budget { states } ->
    Format.fprintf ppf "undecided: state budget exhausted (%d states)" states

(* Message kinds, kept as small ints for cheap structural hashing. *)
let k_data = 0
let k_dummy = 1
let k_eos = 2

type msg = { seq : int; kind : int }

type state = {
  chans : msg list array;  (* per edge, head first *)
  pending : (int * msg) list array;  (* per node, send order *)
  slot : int array;  (* per edge: queued dummy seq, or -1 *)
  next_in : int array;  (* per source node *)
  finished : bool array;
  last : int array;  (* per edge: last sequence number sent *)
}

let key st : string = Marshal.to_string st []

let copy st =
  {
    chans = Array.copy st.chans;
    pending = Array.copy st.pending;
    slot = Array.copy st.slot;
    next_in = Array.copy st.next_in;
    finished = Array.copy st.finished;
    last = Array.copy st.last;
  }

let check ?(max_states = 1_000_000) ?(strategy = `Bfs) ~graph:g ~avoidance
    ~inputs () =
  let open Fstream_runtime in
  let n = Graph.num_nodes g and m = Graph.num_edges g in
  let thresholds, forwarding =
    match avoidance with
    | Engine.No_avoidance -> (Array.make m None, false)
    | Engine.Propagation t ->
      Fstream_core.Thresholds.check t g;
      (Fstream_core.Thresholds.to_array t, true)
    | Engine.Non_propagation t ->
      Fstream_core.Thresholds.check t g;
      (Fstream_core.Thresholds.to_array t, false)
  in
  let cap = Array.init m (fun i -> (Graph.edge g i).cap) in
  let out_ids =
    Array.init n (fun v ->
        List.map (fun (e : Graph.edge) -> e.id) (Graph.out_edges g v))
  in
  let in_ids =
    Array.init n (fun v ->
        List.map (fun (e : Graph.edge) -> e.id) (Graph.in_edges g v))
  in
  let is_source = Array.init n (fun v -> in_ids.(v) = []) in
  let chan_len st e = List.length st.chans.(e) in
  let has_space st e = chan_len st e < cap.(e) in
  let push st e msg = st.chans.(e) <- st.chans.(e) @ [ msg ] in
  (* The wrapper's send phase for one firing (mirrors Engine.emit). *)
  let emit st v ~seq ~data_out ~got_dummy =
    List.iter
      (fun e ->
        if List.mem e data_out then begin
          st.pending.(v) <- st.pending.(v) @ [ (e, { seq; kind = k_data }) ];
          st.slot.(e) <- -1;
          st.last.(e) <- seq
        end
        else begin
          let due =
            match thresholds.(e) with
            | Some k -> seq - st.last.(e) >= k
            | None -> false
          in
          if (forwarding && got_dummy) || due then begin
            st.slot.(e) <- seq;
            st.last.(e) <- seq
          end
        end)
      out_ids.(v)
  in
  let send_eos st v =
    List.iter
      (fun e ->
        st.slot.(e) <- -1;
        st.pending.(v) <- st.pending.(v) @ [ (e, { seq = max_int; kind = k_eos }) ])
      out_ids.(v);
    st.finished.(v) <- true
  in
  let subsets ids =
    List.fold_left
      (fun acc id -> acc @ List.map (fun s -> id :: s) acc)
      [ [] ] ids
  in
  (* Enumerate successor states with human-readable action labels.

     Partial-order reduction: a queued data/EOS delivery has fixed
     content, stays enabled under every other action (only its own
     producer sends on that channel, and consumption only frees space),
     and commutes with all of them, so whenever one is enabled it is
     explored as the sole successor. Dummy-slot deliveries are NOT
     forced: a delayed slot can be coalesced or superseded, so timing
     changes the message stream. *)
  let forced_delivery st =
    let found = ref None in
    for v = n - 1 downto 0 do
      let seen = Hashtbl.create 4 in
      List.iteri
        (fun idx (e, msg) ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            if has_space st e then begin
              let st' = copy st in
              st'.pending.(v) <-
                List.filteri (fun i _ -> i <> idx) st.pending.(v);
              push st' e msg;
              found :=
                Some
                  ( Printf.sprintf "n%d delivers %s on e%d" v
                      (if msg.kind = k_eos then "eos"
                       else Printf.sprintf "#%d" msg.seq)
                      e,
                    st' )
            end
          end)
        st.pending.(v)
    done;
    !found
  in
  let successors st =
    match forced_delivery st with
    | Some action -> [ action ]
    | None ->
    let out = ref [] in
    let add label st' = out := (label, st') :: !out in
    for v = 0 to n - 1 do
      (* dummy-slot deliveries: channels without queued sends *)
      let queued e = List.exists (fun (e', _) -> e' = e) st.pending.(v) in
      List.iter
        (fun e ->
          if st.slot.(e) >= 0 && (not (queued e)) && has_space st e then begin
            let st' = copy st in
            st'.slot.(e) <- -1;
            push st' e { seq = st.slot.(e); kind = k_dummy };
            add (Printf.sprintf "n%d delivers dummy #%d on e%d" v st.slot.(e) e)
              st'
          end)
        out_ids.(v);
      (* firings need an empty pending queue *)
      if st.pending.(v) = [] then
        if is_source.(v) then begin
          if st.next_in.(v) < inputs then
            List.iter
              (fun data_out ->
                let st' = copy st in
                let seq = st.next_in.(v) in
                st'.next_in.(v) <- seq + 1;
                emit st' v ~seq ~data_out ~got_dummy:false;
                add
                  (Printf.sprintf "n%d fires seq %d, keeps {%s}" v seq
                     (String.concat "," (List.map string_of_int data_out)))
                  st')
              (subsets out_ids.(v))
          else if not st.finished.(v) then begin
            let st' = copy st in
            send_eos st' v;
            add (Printf.sprintf "n%d sends eos" v) st'
          end
        end
        else if
          (not st.finished.(v))
          && List.for_all (fun e -> st.chans.(e) <> []) in_ids.(v)
        then begin
          let heads = List.map (fun e -> (e, List.hd st.chans.(e))) in_ids.(v) in
          let i =
            List.fold_left (fun acc (_, msg) -> min acc msg.seq) max_int heads
          in
          if i = max_int then begin
            let st' = copy st in
            List.iter (fun (e, _) -> st'.chans.(e) <- List.tl st.chans.(e)) heads;
            send_eos st' v;
            add (Printf.sprintf "n%d drains eos" v) st'
          end
          else begin
            let got_data =
              List.filter_map
                (fun (e, msg) ->
                  if msg.seq = i && msg.kind = k_data then Some e else None)
                heads
            in
            let got_dummy =
              List.exists
                (fun ((_, msg) : int * msg) -> msg.seq = i && msg.kind = k_dummy)
                heads
            in
            let consume st' =
              List.iter
                (fun (e, (msg : msg)) ->
                  if msg.seq = i then st'.chans.(e) <- List.tl st.chans.(e))
                heads
            in
            let choices =
              if got_data = [] then [ [] ] else subsets out_ids.(v)
            in
            List.iter
              (fun data_out ->
                let st' = copy st in
                consume st';
                emit st' v ~seq:i ~data_out ~got_dummy;
                add
                  (Printf.sprintf "n%d fires seq %d got {%s} keeps {%s}" v i
                     (String.concat "," (List.map string_of_int got_data))
                     (String.concat "," (List.map string_of_int data_out)))
                  st')
              choices
          end
        end
    done;
    !out
  in
  let completed st =
    Array.for_all Fun.id st.finished
    && Array.for_all (fun c -> c = []) st.chans
    && Array.for_all (fun p -> p = []) st.pending
  in
  let initial =
    {
      chans = Array.make m [];
      pending = Array.make n [];
      slot = Array.make m (-1);
      next_in = Array.make n 0;
      finished = Array.make n false;
      last = Array.make m (-1);
    }
  in
  (* BFS with parent links for trace reconstruction. *)
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 4096 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  (* BFS yields shortest counterexample traces; DFS commits to a branch
     and typically reaches wedged states in far fewer expansions. The
     frontier is a queue (BFS) or stack (DFS) with O(1) operations. *)
  let bfs_q : (string * state) Queue.t = Queue.create () in
  let dfs_s : (string * state) list ref = ref [] in
  let push_frontier x =
    match strategy with
    | `Bfs -> Queue.add x bfs_q
    | `Dfs -> dfs_s := x :: !dfs_s
  in
  let pop_frontier () =
    match strategy with
    | `Bfs -> if Queue.is_empty bfs_q then None else Some (Queue.pop bfs_q)
    | `Dfs -> (
      match !dfs_s with
      | [] -> None
      | x :: r ->
        dfs_s := r;
        Some x)
  in
  let k0 = key initial in
  Hashtbl.replace visited k0 ();
  push_frontier (k0, initial);
  let states = ref 1 in
  let rec trace_of k acc =
    match Hashtbl.find_opt parent k with
    | None -> acc
    | Some (pk, action) -> trace_of pk (action :: acc)
  in
  let result = ref None in
  let continue = ref true in
  while !result = None && !continue do
    match pop_frontier () with
    | None -> continue := false
    | Some (k, st) ->
    let succ = successors st in
    if succ = [] && not (completed st) then
      result := Some (Deadlocks { states = !states; trace = trace_of k [] })
    else
      List.iter
        (fun (action, st') ->
          let k' = key st' in
          if not (Hashtbl.mem visited k') then begin
            Hashtbl.replace visited k' ();
            Hashtbl.replace parent k' (k, action);
            incr states;
            if !states > max_states then
              result := Some (Out_of_budget { states = !states })
            else push_frontier (k', st')
          end)
        succ
  done;
  match !result with
  | Some r -> r
  | None -> Safe { states = !states }
