open Fstream_graph
open Fstream_spdag

(* Incremental edge-list builder shared by all generators. *)
type builder = { mutable next_node : int; mutable rev_edges : (int * int * int) list }

let builder first_free = { next_node = first_free; rev_edges = [] }

let fresh b =
  let v = b.next_node in
  b.next_node <- v + 1;
  v

let edge b u v cap = b.rev_edges <- (u, v, cap) :: b.rev_edges

let finish b = Graph.make ~nodes:b.next_node (List.rev b.rev_edges)

(* Splice a series-parallel spec between two existing nodes, allocating
   its inner nodes from the builder. *)
let rec splice b spec src dst =
  match spec with
  | Sp_build.Edge cap -> edge b src dst cap
  | Sp_build.Series [] -> invalid_arg "Topo_gen.splice: empty Series"
  | Sp_build.Series [ s ] -> splice b s src dst
  | Sp_build.Series (s :: rest) ->
    let j = fresh b in
    splice b s src j;
    splice b (Sp_build.Series rest) j dst
  | Sp_build.Parallel [] -> invalid_arg "Topo_gen.splice: empty Parallel"
  | Sp_build.Parallel l -> List.iter (fun s -> splice b s src dst) l

(* {1 Paper figures} *)

let fig1_split_join ~branches ~cap =
  if branches < 1 then invalid_arg "fig1_split_join: branches < 1";
  let join = branches + 1 in
  let edges =
    List.concat_map
      (fun i -> [ (0, i + 1, cap); (i + 1, join, cap) ])
      (List.init branches Fun.id)
  in
  Graph.make ~nodes:(branches + 2) edges

let fig2_triangle ~cap =
  Graph.make ~nodes:3 [ (0, 1, cap); (1, 2, cap); (0, 2, cap) ]

let fig3_hexagon () =
  (* a=0 b=1 e=2 f=3 c=4 d=5; branch a-b-e-f buffers 2,5,1 and branch
     a-c-d-f buffers 3,1,2, as in the worked example. *)
  Graph.make ~nodes:6
    [ (0, 1, 2); (1, 2, 5); (2, 3, 1); (0, 4, 3); (4, 5, 1); (5, 3, 2) ]

let fig4_left ~cap =
  (* X=0 a=1 b=2 Y=3 with cross channel a->b *)
  Graph.make ~nodes:4
    [ (0, 1, cap); (0, 2, cap); (1, 2, cap); (1, 3, cap); (2, 3, cap) ]

let fig4_butterfly ~cap =
  (* X=0 a=1 b=2 c=3 d=4 Y=5 *)
  Graph.make ~nodes:6
    [
      (0, 1, cap);
      (0, 2, cap);
      (1, 3, cap);
      (1, 4, cap);
      (2, 3, cap);
      (2, 4, cap);
      (3, 5, cap);
      (4, 5, cap);
    ]

let fig5_ladder ~cap =
  (* a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10 l=11 m=12.
     Skeleton (right panel of the figure): left rail a-b-f-j-m, right
     rail a-k-m, three cross-links into the shared endpoint k. The
     other nodes decorate constituents: d/e a split between b and f,
     i a chord bypass between f and j, g and h inner nodes of two
     cross-links, c inside the upper right segment, l a split between
     k and m. *)
  let c = cap in
  Graph.make ~nodes:13
    [
      (0, 1, c) (* a->b *);
      (1, 3, c) (* b->d *);
      (3, 5, c) (* d->f *);
      (1, 4, c) (* b->e *);
      (4, 5, c) (* e->f *);
      (5, 9, c) (* f->j *);
      (5, 8, c) (* f->i *);
      (8, 9, c) (* i->j *);
      (9, 12, c) (* j->m *);
      (0, 2, c) (* a->c *);
      (2, 10, c) (* c->k *);
      (10, 12, c) (* k->m *);
      (10, 11, c) (* k->l *);
      (11, 12, c) (* l->m *);
      (1, 10, c) (* b->k : cross-link K1 *);
      (5, 6, c) (* f->g *);
      (6, 10, c) (* g->k : cross-link K2 *);
      (9, 7, c) (* j->h *);
      (7, 10, c) (* h->k : cross-link K3 *);
    ]

let erosion_counterexample () =
  (* s=0, m=1, w=2, t=3. Cycle {C | D,E} grants C the Propagation
     budget cap(D)+cap(E)=6, eroding cycle {A | B,C} whose full side
     has capacity 1: m may lag C by 6 sequence numbers while s blocks
     on A after 2. Found by the bounded model checker (Verify). *)
  Graph.make ~nodes:4
    [
      (0, 3, 1) (* A: s->t *);
      (0, 1, 1) (* B: s->m *);
      (1, 3, 1) (* C: m->t *);
      (1, 2, 3) (* D: m->w *);
      (2, 3, 3) (* E: w->t *);
    ]

(* {1 Random families} *)

let rand_cap rng max_cap = 1 + Random.State.int rng max_cap

let random_sp_spec rng ~target_edges ~max_cap =
  let rec gen budget =
    if budget <= 1 then Sp_build.Edge (rand_cap rng max_cap)
    else begin
      let k = Stdlib.min budget (2 + Random.State.int rng 2) in
      (* Random composition of k children over the remaining budget. *)
      let cuts =
        List.init (k - 1) (fun _ -> 1 + Random.State.int rng (budget - 1))
        |> List.sort compare
      in
      let rec parts prev = function
        | [] -> [ budget - prev ]
        | c :: rest -> (c - prev) :: parts c rest
      in
      let children =
        List.filter_map
          (fun p -> if p <= 0 then None else Some (gen p))
          (parts 0 cuts)
      in
      match children with
      | [] -> Sp_build.Edge (rand_cap rng max_cap)
      | [ one ] -> one
      | _ ->
        if Random.State.bool rng then Sp_build.Series children
        else Sp_build.Parallel children
    end
  in
  gen (Stdlib.max 1 target_edges)

let random_sp rng ~target_edges ~max_cap =
  Sp_build.to_graph (random_sp_spec rng ~target_edges ~max_cap)

(* A ladder between [src] and [dst]: random skeleton honouring the DAG
   constraints on shared rung endpoints, every skeleton edge expanded
   into a random SP constituent. *)
let emit_ladder b rng ~rungs ~segment_edges ~max_cap ~src ~dst =
  if rungs < 1 then invalid_arg "emit_ladder: rungs < 1";
  let spec () =
    random_sp_spec rng
      ~target_edges:(1 + Random.State.int rng (Stdlib.max 1 segment_edges))
      ~max_cap
  in
  let seg u v = splice b (spec ()) u v in
  (* Build rung endpoint lists with occasional sharing. *)
  let lefts = Array.make rungs 0 and rights = Array.make rungs 0 in
  let dirs = Array.make rungs false (* true = left-to-right *) in
  for i = 0 to rungs - 1 do
    let share_left =
      i > 0 && Random.State.float rng 1.0 < 0.25
    in
    let share_right = (not share_left) && i > 0 && Random.State.float rng 1.0 < 0.25 in
    lefts.(i) <- (if share_left then lefts.(i - 1) else fresh b);
    rights.(i) <- (if share_right then rights.(i - 1) else fresh b);
    let dir = Random.State.bool rng in
    (* Avoid directed cycles through shared endpoints: at a shared left
       vertex an outgoing rung (l2r) followed by an incoming one (r2l)
       closes a directed cycle through the right rail, and symmetrically
       at a shared right vertex. Force the second rung's direction. *)
    dirs.(i) <-
      (if share_left && dirs.(i - 1) && not dir then true
       else if share_right && (not dirs.(i - 1)) && dir then false
       else dir)
  done;
  (* Rails. *)
  let rail ends prev0 =
    let prev = ref prev0 in
    Array.iter
      (fun v ->
        if v <> !prev then begin
          seg !prev v;
          prev := v
        end)
      ends;
    seg !prev dst
  in
  rail lefts src;
  rail rights src;
  (* Rungs. *)
  for i = 0 to rungs - 1 do
    if dirs.(i) then seg lefts.(i) rights.(i) else seg rights.(i) lefts.(i)
  done

let random_ladder rng ~rungs ~segment_edges ~max_cap =
  let b = builder 1 in
  let dst = fresh b in
  emit_ladder b rng ~rungs ~segment_edges ~max_cap ~src:0 ~dst;
  (* [dst] was allocated before the internals, so relabel it to the
     maximum id by swapping: easier to just accept an inner sink id. *)
  finish b

let random_cs4 rng ~blocks ~block_edges ~max_cap =
  let b = builder 1 in
  let src = ref 0 in
  for i = 1 to blocks do
    let dst = fresh b in
    if Random.State.bool rng then
      splice b
        (random_sp_spec rng ~target_edges:block_edges ~max_cap)
        !src dst
    else begin
      let rungs = 1 + Random.State.int rng 3 in
      emit_ladder b rng ~rungs
        ~segment_edges:(Stdlib.max 1 (block_edges / (4 + (3 * rungs))))
        ~max_cap ~src:!src ~dst
    end;
    if i < blocks then src := dst
  done;
  finish b

(* {1 Structured families} *)

let pipeline ~stages ~cap =
  if stages < 1 then invalid_arg "pipeline: stages < 1";
  Graph.make ~nodes:(stages + 1)
    (List.init stages (fun i -> (i, i + 1, cap)))

let diamond_chain ?(bypass = false) ~diamonds ~cap () =
  if diamonds < 1 then invalid_arg "diamond_chain: diamonds < 1";
  let per =
    List.concat_map
      (fun i -> [ (i, i + 1, cap); (i, i + 1, cap + 1) ])
      (List.init diamonds Fun.id)
  in
  let edges = if bypass then (0, diamonds, cap) :: per else per in
  Graph.make ~nodes:(diamonds + 1) edges

let parallel_paths ~paths ~hops ~cap =
  if paths < 1 || hops < 1 then invalid_arg "parallel_paths";
  let b = builder 2 in
  List.iter
    (fun _ ->
      let prev = ref 0 in
      for _ = 1 to hops - 1 do
        let v = fresh b in
        edge b !prev v cap;
        prev := v
      done;
      edge b !prev 1 cap)
    (List.init paths Fun.id);
  finish b

let nested_parallel ~depth ~cap =
  let rec build d =
    if d = 0 then Sp_build.Edge cap
    else
      Sp_build.Parallel
        [ Sp_build.Edge cap; Sp_build.Series [ Sp_build.Edge cap; build (d - 1) ] ]
  in
  Sp_build.to_graph (build depth)

let wide_ladder ~rungs ~cap =
  if rungs < 1 then invalid_arg "wide_ladder: rungs < 1";
  let b = builder 2 in
  let lefts = Array.init rungs (fun _ -> fresh b) in
  let rights = Array.init rungs (fun _ -> fresh b) in
  let rail vs =
    edge b 0 vs.(0) cap;
    for i = 0 to rungs - 2 do
      edge b vs.(i) vs.(i + 1) cap
    done;
    edge b vs.(rungs - 1) 1 cap
  in
  rail lefts;
  rail rights;
  for i = 0 to rungs - 1 do
    if i mod 2 = 0 then edge b lefts.(i) rights.(i) cap
    else edge b rights.(i) lefts.(i) cap
  done;
  finish b

let layered_dense ~layers ~width ~cap =
  if layers < 1 then invalid_arg "layered_dense: layers < 1";
  if width < 1 then invalid_arg "layered_dense: width < 1";
  if cap < 1 then invalid_arg "layered_dense: cap < 1";
  let b = builder 2 in
  let layer () = Array.init width (fun _ -> fresh b) in
  let prev = ref (layer ()) in
  Array.iter (fun v -> edge b 0 v cap) !prev;
  for _ = 2 to layers do
    let next = layer () in
    Array.iter (fun u -> Array.iter (fun v -> edge b u v cap) next) !prev;
    prev := next
  done;
  Array.iter (fun u -> edge b u 1 cap) !prev;
  finish b

let random_dense rng ~layers ~width ~max_cap =
  if layers < 1 then invalid_arg "random_dense: layers < 1";
  if width < 1 then invalid_arg "random_dense: width < 1";
  if max_cap < 1 then invalid_arg "random_dense: max_cap < 1";
  let cap () = 1 + Random.State.int rng max_cap in
  let b = builder 2 in
  let layer () = Array.init width (fun _ -> fresh b) in
  let prev = ref (layer ()) in
  Array.iter (fun v -> edge b 0 v (cap ())) !prev;
  for _ = 2 to layers do
    let next = layer () in
    (* random bipartite block, pruned but never disconnecting: every
       left node keeps >= 1 out-edge, every right node >= 1 in-edge *)
    let keep =
      Array.init width (fun _ ->
          Array.init width (fun _ -> Random.State.bool rng))
    in
    Array.iteri
      (fun i row ->
        if not (Array.exists Fun.id row) then
          row.(Random.State.int rng width) <- true;
        ignore i)
      keep;
    for j = 0 to width - 1 do
      if not (Array.exists (fun row -> row.(j)) keep) then
        keep.(Random.State.int rng width).(j) <- true
    done;
    Array.iteri
      (fun i u ->
        Array.iteri (fun j v -> if keep.(i).(j) then edge b u v (cap ())) next)
      !prev;
    prev := next
  done;
  Array.iter (fun u -> edge b u 1 (cap ())) !prev;
  finish b
