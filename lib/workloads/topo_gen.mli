(** Topology generators: the paper's figures and parameterized random
    families for tests and benchmarks.

    All randomized generators take an explicit [Random.State.t] and are
    deterministic given the state. Buffer capacities are drawn from
    [1 .. max_cap]. *)

open Fstream_graph
open Fstream_spdag

(** {1 Paper figures} *)

val fig1_split_join : branches:int -> cap:int -> Graph.t
(** Fig. 1: split node, [branches] parallel recognizers, join node.
    Node 0 is the split, node [branches + 1] the join. *)

val fig2_triangle : cap:int -> Graph.t
(** Fig. 2: A -> B -> C with the shortcut A -> C; edge ids 0: A->B,
    1: B->C, 2: A->C. All capacities [cap]. *)

val fig3_hexagon : unit -> Graph.t
(** Fig. 3 with the worked capacities: the a-b-e-f branch has buffers
    2, 5, 1 and the a-c-d-f branch 3, 1, 2 (edge ids 0..5 as listed in
    the figure caption order ab, be, ef, ac, cd, df). *)

val fig4_left : cap:int -> Graph.t
(** Fig. 4 left: split-join with a one-way channel between branches —
    the smallest non-SP CS4 DAG. *)

val fig4_butterfly : cap:int -> Graph.t
(** Fig. 4 right: FFT butterfly; not CS4 (cycle a-c-b-d). *)

val fig5_ladder : cap:int -> Graph.t
(** The 13-node SP-ladder of Fig. 5 (nodes a..m as drawn: two rails
    a-b-f-j-m and a-c/d/e...-m with cross-links, chord decorations
    included). *)

val erosion_counterexample : unit -> Graph.t
(** The minimal budget-erosion instance (4 nodes, 5 channels) on which
    the paper-literal Propagation interval table deadlocks under
    adversarial filtering while the Non-Propagation table is provably
    safe — both facts machine-checked exhaustively by
    {!Fstream_verify.Verify}. See DESIGN.md, "Deviations" and
    EXPERIMENTS.md §S1/§V2. *)

(** {1 Random families} *)

val random_sp_spec :
  Random.State.t -> target_edges:int -> max_cap:int -> Sp_build.spec
(** Random series-parallel spec with roughly [target_edges] edges. *)

val random_sp : Random.State.t -> target_edges:int -> max_cap:int -> Graph.t

val random_ladder :
  Random.State.t ->
  rungs:int ->
  segment_edges:int ->
  max_cap:int ->
  Graph.t
(** Random SP-ladder: [rungs] cross-links with random directions and
    occasional shared endpoints; every constituent (rail segment,
    cross-link) is a random SP subgraph of roughly [segment_edges]
    edges. The result is guaranteed two-terminal and CS4. *)

val random_cs4 :
  Random.State.t ->
  blocks:int ->
  block_edges:int ->
  max_cap:int ->
  Graph.t
(** Serial chain of [blocks] blocks, each randomly an SP-DAG or an
    SP-ladder. *)

(** {1 Structured families for scaling experiments} *)

val pipeline : stages:int -> cap:int -> Graph.t

val diamond_chain : ?bypass:bool -> diamonds:int -> cap:int -> unit -> Graph.t
(** Serial chain of two-parallel-edge diamonds (capacities [cap] and
    [cap + 1]). Without [bypass] (default) every simple cycle is
    confined to one diamond, so there are exactly [diamonds] cycles.
    With [bypass:true] an extra source-to-sink edge turns every one of
    the [2^diamonds] source-to-sink paths into a distinct undirected
    simple cycle — the family that blows up the exponential general-DAG
    baseline while remaining a plain SP-DAG (experiment C4). *)

val parallel_paths : paths:int -> hops:int -> cap:int -> Graph.t
(** [paths] disjoint directed paths of [hops] edges sharing only the
    terminals: an SP-DAG with [paths * (paths - 1) / 2] long cycles —
    the quadratic-cycle-count control family. *)

val nested_parallel : depth:int -> cap:int -> Graph.t
(** Maximally nested parallel compositions,
    [P(e, S(e, P(e, S(e, ...))))]: every parallel node encloses the
    whole remaining nesting, so the SP Non-Propagation sweep touches
    O(depth^2) edges — the worst case behind the paper's O(|G|^2)
    bound (2 * depth + 1 edges). *)

val wide_ladder : rungs:int -> cap:int -> Graph.t
(** Minimal ladder skeleton with [rungs] alternating-direction
    cross-links and unit constituents — the ladder scaling family. *)

val layered_dense : layers:int -> width:int -> cap:int -> Graph.t
(** Source, [layers] layers of [width] nodes with a complete bipartite
    block between consecutive layers, sink. The undirected simple
    cycle count grows super-exponentially in [layers * width] — the
    family on which the exact general fallback hits its cycle budget
    and the LP backend keeps compiling (experiment LP1). Not CS4 for
    [width >= 2, layers >= 2]. *)

val random_dense :
  Random.State.t -> layers:int -> width:int -> max_cap:int -> Graph.t
(** Randomized [layered_dense]: each bipartite block keeps a random
    subset of its edges (never disconnecting — every node keeps an
    in- and an out-edge), capacities drawn from [1 .. max_cap]. The
    qcheck family for LP-table safety on general DAGs. *)
