The fusion pass partitions a topology into compound kernels, cutting
only at critical boundaries. A pipeline collapses to one chain plus the
sink (the sink edge stays a real channel — it is the measurement
point), and the boundary table shows the surviving channels with their
original ids, capacities and derived intervals:

  $ streamcheck fuse --demo pipeline
  route: CS4 (8 SP blocks, 0 ladders)
  9 nodes -> 2 kernels, 8 channels -> 1 (7 collapsed)
    k0 = n0 -> n1 -> n2 -> n3 -> n4 -> n5 -> n6 -> n7
    k1 = n8
  boundary channels:
  edge   orig   channel     cap   interval  threshold
  e0     e7       0 -> 1       2        inf          -

Cycle edges never fuse — fig2's B node has sole in and sole out, but
both its edges ride the triangle whose buffering the intervals protect,
so the partition is the identity:

  $ streamcheck fuse --demo fig2
  route: CS4 (1 SP block, 0 ladders)
  3 nodes -> 3 kernels, 3 channels -> 3 (0 collapsed)
    k0 = n0
    k1 = n1
    k2 = n2
  boundary channels:
  edge   orig   channel     cap   interval  threshold
  e0     e0       0 -> 1       2          1          1
  e1     e1       1 -> 2       2          1          1
  e2     e2       0 -> 2       2          4          4

Pinned nodes stay unfused (e.g. to keep a node visible to a debugger or
on its own core), splitting the chain around them:

  $ streamcheck fuse --demo pipeline --pin 4
  route: CS4 (8 SP blocks, 0 ladders)
  9 nodes -> 4 kernels, 8 channels -> 3 (5 collapsed)
    k0 = n0 -> n1 -> n2 -> n3
    k1 = n4
    k2 = n5 -> n6 -> n7
    k3 = n8
  boundary channels:
  edge   orig   channel     cap   interval  threshold
  e0     e3       0 -> 1       2        inf          -
  e1     e4       1 -> 2       2        inf          -
  e2     e7       2 -> 3       2        inf          -

Non-CS4 graphs go through the exponential general route like the other
plan commands, and inherit its exit-code band when that is disabled:

  $ streamcheck fuse --demo butterfly | head -2
  route: general DAG fallback (7 cycles enumerated)
  6 nodes -> 6 kernels, 8 channels -> 8 (0 collapsed)

  $ streamcheck fuse --demo butterfly --no-general
  error: block 0..5 is neither SP nor an SP-ladder: missing cross-link at rail frontier, and the general fallback is disabled
  [13]

  $ streamcheck fuse --file missing.graph
  error: missing.graph: No such file or directory
  [1]

simulate --fuse runs the fused plan end to end. Fused runs use the same
per-node workload RNG as --parallel, so those two are the comparable
pair: outcome and sink counts must agree, while the fused data count
drops to the surviving boundary channels (here the 63 collapsed hops of
a 64-stage pipeline vanish and only the 4 sink deliveries remain):

  $ streamcheck simulate --demo deep-pipeline --seed 5 --keep 0.97 --avoidance none --inputs 100 --parallel --domains 2
  completed: 2552 data msgs, 0 dummy msgs, 4 data at sinks
  $ streamcheck simulate --demo deep-pipeline --seed 5 --keep 0.97 --avoidance none --inputs 100 --fuse
  completed: 102 rounds, 4 data msgs, 0 dummy msgs, 4 data at sinks
  $ streamcheck simulate --demo deep-pipeline --seed 5 --keep 0.97 --avoidance none --inputs 100 --fuse --parallel --domains 2
  completed: 4 data msgs, 0 dummy msgs, 4 data at sinks

Deadlocks survive fusion unmasked: fig2 fuses to the identity, so an
unprotected run wedges with exactly the unfused traffic and the same
exit code, wedge snapshot included:

  $ streamcheck simulate --demo fig2 --keep 0.5 --seed 2 --avoidance none --inputs 50 --parallel
  DEADLOCKED: 26 data msgs, 0 dummy msgs, 13 data at sinks
  [2]
  $ streamcheck simulate --demo fig2 --keep 0.5 --seed 2 --avoidance none --inputs 50 --fuse
  deadlock state:
    e0 0->1 cap=2 len=0 head=- last_sent=18
    e1 1->2 cap=2 len=0 head=- last_sent=18
    e2 0->2 cap=2 len=2 head=#23:23 last_sent=25
    node 0 pending:1 next_in=26
  DEADLOCKED: 27 rounds, 26 data msgs, 0 dummy msgs, 13 data at sinks
  deadlock witness cycle (§II.B):
    full:  e2 (0->2)
    empty: e1 (1->2), e0 (0->1)
  [2]

and the avoidance wrapper still completes the fused run:

  $ streamcheck simulate --demo fig2 --keep 0.5 --seed 2 --avoidance non-propagation --inputs 50 --fuse
  completed: 55 rounds, 49 data msgs, 70 dummy msgs, 29 data at sinks
