The linter turns the structural theorems into coded diagnostics. A
clean topology exits 0:

  $ streamcheck lint --demo fig2
  lint: demo:fig2
  clean: no findings

Findings carry stable codes, severities, locations, witnesses and
fixits; Error findings exit 20:

  $ streamcheck lint --demo butterfly
  lint: demo:butterfly
  FS201 error channels {e2, e4, e5, e3}: not CS4: block 0..5 is neither SP nor an SP-ladder (missing cross-link at rail frontier); interval computation falls back to the exponential general route
      witness: witness cycle through nodes {1, 2, 3, 4}
      witness: cycle sources {1, 2}, sinks {3, 4}
      fix: reroute to CS4 (1 channel(s) deleted, 1 added); reroute 1->3 via 4 (added 4->3)
  FS202 warning channels {e2, e4, e5, e3}: multi-source cycle 1 of 1: 2 sources {1, 2}, 2 sinks {3, 4} — each such cycle multiplies the general route's work
  1 error(s), 1 warning(s), 0 info(s)
  [20]

Warnings alone pass by default but fail under --fail-on warning (exit
21):

  $ cat > thin.graph <<'EOF'
  > nodes 5
  > edge 0 1 1
  > edge 1 2 1
  > edge 2 3 1
  > edge 3 4 1
  > edge 0 4 1
  > EOF
  $ streamcheck lint --file thin.graph
  lint: thin.graph
  FS301 warning channel e0 (0->1): buffer too small on channel e0 (0->1): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e0 (0->1)
      fix: scale every buffer capacity by x4
  FS301 warning channel e1 (1->2): buffer too small on channel e1 (1->2): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e1 (1->2)
      fix: scale every buffer capacity by x4
  FS301 warning channel e2 (2->3): buffer too small on channel e2 (2->3): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e2 (2->3)
      fix: scale every buffer capacity by x4
  FS301 warning channel e3 (3->4): buffer too small on channel e3 (3->4): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e3 (3->4)
      fix: scale every buffer capacity by x4
  0 error(s), 4 warning(s), 0 info(s)
  $ streamcheck lint --file thin.graph --fail-on warning
  lint: thin.graph
  FS301 warning channel e0 (0->1): buffer too small on channel e0 (0->1): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e0 (0->1)
      fix: scale every buffer capacity by x4
  FS301 warning channel e1 (1->2): buffer too small on channel e1 (1->2): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e1 (1->2)
      fix: scale every buffer capacity by x4
  FS301 warning channel e2 (2->3): buffer too small on channel e2 (2->3): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e2 (2->3)
      fix: scale every buffer capacity by x4
  FS301 warning channel e3 (3->4): buffer too small on channel e3 (3->4): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e3 (3->4)
      fix: scale every buffer capacity by x4
  0 error(s), 4 warning(s), 0 info(s)
  [21]

--fix without an applicable fixit is exit 22:

  $ streamcheck lint --demo fig2 --fix
  lint: demo:fig2
  clean: no findings
  fix failed: no finding carries an applicable fixit
  [22]

An exhausted cycle budget makes the clean verdict untrustworthy — exit
23, never 0:

  $ streamcheck lint --demo fig2 --max-cycles 0
  lint: demo:fig2
  analysis incomplete: cycle enumeration exceeded the budget of 0 simple cycles; cycle-structure rules (FS2xx, FS303) were skipped
  clean: no findings
  [23]

Unreadable input is exit 24:

  $ streamcheck lint --file no-such.graph
  error: no-such.graph: No such file or directory
  [24]

JSON lines: one object per finding plus a trailing summary object:

  $ streamcheck lint --demo butterfly --format json
  {"code":"FS201","severity":"error","location":{"kind":"channels","channels":[2,4,5,3]},"message":"not CS4: block 0..5 is neither SP nor an SP-ladder (missing cross-link at rail frontier); interval computation falls back to the exponential general route","witness":["witness cycle through nodes {1, 2, 3, 4}","cycle sources {1, 2}, sinks {3, 4}"],"fixit":{"kind":"reroute","deleted_edges":1,"added_edges":1,"reroutes":["reroute 1->3 via 4 (added 4->3)"]}}
  {"code":"FS202","severity":"warning","location":{"kind":"channels","channels":[2,4,5,3]},"message":"multi-source cycle 1 of 1: 2 sources {1, 2}, 2 sinks {3, 4} — each such cycle multiplies the general route's work","witness":[]}
  {"summary":{"errors":1,"warnings":1,"infos":0},"incomplete":null}
  [20]

SARIF 2.1.0 spot-check: version, schema, the rule registry, and one
result per finding with logical locations:

  $ streamcheck lint --demo butterfly --format sarif | grep -c '"version": "2.1.0"'
  1
  $ streamcheck lint --demo butterfly --format sarif | grep -c '"$schema": "https://json.schemastore.org/sarif-2.1.0.json"'
  1
  $ streamcheck lint --demo butterfly --format sarif | grep -c '"id":"FS'
  15
  $ streamcheck lint --demo butterfly --format sarif | grep -o '"ruleId":"[A-Z0-9]*"'
  "ruleId":"FS201"
  "ruleId":"FS202"
  $ streamcheck lint --demo butterfly --format sarif | grep -o '"level":"error"'
  "level":"error"
  "level":"error"
  "level":"error"
  "level":"error"
  "level":"error"
  "level":"error"
  "level":"error"
  "level":"error"
  "level":"error"

--fix applies the CS4 reroute, writes the fixed topology, and re-lints
it; the exit code reflects the fixed topology:

  $ streamcheck lint --demo butterfly --fix -o fixed.graph
  lint: demo:butterfly
  FS201 error channels {e2, e4, e5, e3}: not CS4: block 0..5 is neither SP nor an SP-ladder (missing cross-link at rail frontier); interval computation falls back to the exponential general route
      witness: witness cycle through nodes {1, 2, 3, 4}
      witness: cycle sources {1, 2}, sinks {3, 4}
      fix: reroute to CS4 (1 channel(s) deleted, 1 added); reroute 1->3 via 4 (added 4->3)
  FS202 warning channels {e2, e4, e5, e3}: multi-source cycle 1 of 1: 2 sources {1, 2}, 2 sinks {3, 4} — each such cycle multiplies the general route's work
  1 error(s), 1 warning(s), 0 info(s)
  fix: rerouted 1 channel(s) through relays (1 added) to reach CS4
  fixed topology written to fixed.graph
  
  re-lint of the fixed topology:
  lint: demo:butterfly
  FS203 info graph: not series-parallel: the series/parallel reduction stalls with 7 super-edges; the ladder/CS4 algorithms are in use (polynomial, not linear)
  0 error(s), 0 warning(s), 1 info(s)

The round trip: the written topology lints clean of errors and
classifies as CS4:

  $ streamcheck lint --file fixed.graph
  lint: fixed.graph
  FS203 info graph: not series-parallel: the series/parallel reduction stalls with 7 super-edges; the ladder/CS4 algorithms are in use (polynomial, not linear)
  0 error(s), 0 warning(s), 1 info(s)
  $ streamcheck classify --file fixed.graph | grep 'CS4'
  CS4: serial composition of 1 block(s)

Buffer-scaling fixits round-trip the same way:

  $ streamcheck lint --file thin.graph --fix -o sized.graph
  lint: thin.graph
  FS301 warning channel e0 (0->1): buffer too small on channel e0 (0->1): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e0 (0->1)
      fix: scale every buffer capacity by x4
  FS301 warning channel e1 (1->2): buffer too small on channel e1 (1->2): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e1 (1->2)
      fix: scale every buffer capacity by x4
  FS301 warning channel e2 (2->3): buffer too small on channel e2 (2->3): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e2 (2->3)
      fix: scale every buffer capacity by x4
  FS301 warning channel e3 (3->4): buffer too small on channel e3 (3->4): the dummy interval is below 1, so the runtime clamps to a dummy every sequence number (SDF-degenerate avoidance)
      witness: interval 1/4 < 1 on channel e3 (3->4)
      fix: scale every buffer capacity by x4
  0 error(s), 4 warning(s), 0 info(s)
  fix: scaled every buffer capacity by x4 to lift all dummy intervals to >= 1
  fixed topology written to sized.graph
  
  re-lint of the fixed topology:
  lint: thin.graph
  clean: no findings
  $ streamcheck lint --file sized.graph --fail-on warning
  lint: sized.graph
  clean: no findings
