The --backend flag selects the interval machinery: exact (default,
the paper's constructions), lp (polynomial simplex, any DAG), auto
(exact where affordable, LP where the exact route gives up).

The butterfly is non-CS4; the default exact route enumerates its 7
cycles, the LP backend solves one simplex program per biconnected
component. Both tables are safe; the LP one is conservative where the
per-cycle split is not tight:

  $ streamcheck intervals --demo butterfly
  route: general DAG fallback (7 cycles enumerated)
  edge   channel     cap   interval  threshold
  e0       0 -> 1       2          2          2
  e1       0 -> 2       2          2          2
  e2       1 -> 3       2          2          2
  e3       1 -> 4       2          2          2
  e4       2 -> 3       2          2          2
  e5       2 -> 4       2          2          2
  e6       3 -> 5       2          2          2
  e7       4 -> 5       2          2          2

  $ streamcheck intervals --demo butterfly --backend lp
  route: LP backend (1 cyclic component, 12 simplex rows)
  edge   channel     cap   interval  threshold
  e0       0 -> 1       2          1          1
  e1       0 -> 2       2          1          1
  e2       1 -> 3       2          2          2
  e3       1 -> 4       2          2          2
  e4       2 -> 3       2          2          2
  e5       2 -> 4       2          2          2
  e6       3 -> 5       2          1          1
  e7       4 -> 5       2          1          1

A strangled cycle budget makes the exact route give up — exit 14,
the Cycle_budget_exceeded band:

  $ streamcheck intervals --demo butterfly --max-cycles 2
  error: cycle enumeration exceeded the budget of 2 simple cycles
  [14]

Same budget under --backend auto: the LP takes over instead of
giving up.

  $ streamcheck intervals --demo butterfly --max-cycles 2 --backend auto
  route: LP backend (1 cyclic component, 12 simplex rows)
  edge   channel     cap   interval  threshold
  e0       0 -> 1       2          1          1
  e1       0 -> 2       2          1          1
  e2       1 -> 3       2          2          2
  e3       1 -> 4       2          2          2
  e4       2 -> 3       2          2          2
  e5       2 -> 4       2          2          2
  e6       3 -> 5       2          1          1
  e7       4 -> 5       2          1          1

The layered-dense demo (7 stacked complete-bipartite layers, ~28M
undirected simple cycles) is past any affordable enumeration budget
— the LP backend is the only polynomial route. A small budget keeps
the failing half of the demonstration fast:

  $ streamcheck intervals --demo layered-dense --max-cycles 1000
  error: cycle enumeration exceeded the budget of 1000 simple cycles
  [14]

  $ streamcheck intervals --demo layered-dense --backend lp | head -5
  route: LP backend (1 cyclic component, 80 simplex rows)
  edge   channel     cap   interval  threshold
  e0       0 -> 2       2          1          1
  e1       0 -> 3       2          1          1
  e2       0 -> 4       2          1          1

The LP table drives the runtime like any other: simulate completes
under it, and the exhaustive checker finds no reachable wedge:

  $ streamcheck simulate --demo butterfly --inputs 50 --backend lp
  completed: 53 rounds, 214 data msgs, 113 dummy msgs, 50 data at sinks

  $ streamcheck verify --demo fig2 --backend lp -n 4
  safe (21159 states explored, all filtering choices)

Lint under --backend lp: a non-CS4 topology is first-class (the
polynomial backend replaces the exponential fallback), so FS201
downgrades from error to warning and the exit code clears:

  $ streamcheck lint --demo butterfly --backend lp
  lint: demo:butterfly
  FS201 warning channels {e2, e4, e5, e3}: not CS4: block 0..5 is neither SP nor an SP-ladder (missing cross-link at rail frontier); the LP backend computes a conservative interval table in polynomial time
      witness: witness cycle through nodes {1, 2, 3, 4}
      witness: cycle sources {1, 2}, sinks {3, 4}
      fix: reroute to CS4 (1 channel(s) deleted, 1 added); reroute 1->3 via 4 (added 4->3)
  FS202 warning channels {e2, e4, e5, e3}: multi-source cycle 1 of 1: 2 sources {1, 2}, 2 sinks {3, 4} — each such cycle multiplies the general route's work
  0 error(s), 2 warning(s), 0 info(s)

Serve admission follows the same verdict: the shared registry
compiles the LP table once and the tenant completes.

  $ streamcheck serve --demo butterfly --backend lp --inputs 20
  butterfly        completed  data=71 sink=19 dummy=50
  tenants=1 rejected=0 compiles=1
