The sharded domain-pool runtime behind --parallel. Workloads here use
--avoidance none so no dummy traffic exists: with per-node
deterministic kernels the data computation is a Kahn network, making
every printed count schedule-independent — the same at any domain
count, run after run.

A 97-node pipeline: the old one-domain-per-node runtime rejected
anything above 64 nodes; the pool takes it in stride, and the counts
match the pool width:

  $ streamcheck simulate --demo deep-pipeline --inputs 100 --keep 0.97 --seed 5 --avoidance none --parallel --domains 2
  completed: 2552 data msgs, 0 dummy msgs, 4 data at sinks

  $ streamcheck simulate --demo deep-pipeline --inputs 100 --keep 0.97 --seed 5 --avoidance none --parallel --domains 4
  completed: 2552 data msgs, 0 dummy msgs, 4 data at sinks

Deadlocks are real concurrency phenomena under the pool, detected by
exact quiescence (no watchdog involved), and Kahn determinism pins the
wedge's traffic exactly:

  $ streamcheck simulate --demo fig2 --inputs 50 --keep 0.6 --seed 3 --avoidance none --parallel --domains 2
  DEADLOCKED: 14 data msgs, 0 dummy msgs, 7 data at sinks
  [2]

The avoidance wrapper rescues the same workload (dummy counts are
timing-dependent under the pool, so this checks the verdict only):

  $ streamcheck simulate --demo fig2 --inputs 50 --keep 0.6 --seed 3 --avoidance non-propagation --parallel --domains 2 | cut -d: -f1
  completed
