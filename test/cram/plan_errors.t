Each typed compiler rejection has its own exit code, so scripts can
tell rejection modes apart without parsing stderr.

A directed cycle — exit 10 (Not_a_dag):

  $ cat > cycle.graph <<'EOF'
  > nodes 3
  > edge 0 1 1
  > edge 1 2 1
  > edge 2 0 1
  > EOF
  $ streamcheck intervals --file cycle.graph
  error: the topology has a directed cycle
  [10]

A disconnected topology — exit 12 (Disconnected):

  $ cat > split.graph <<'EOF'
  > nodes 4
  > edge 0 1 1
  > edge 2 3 1
  > EOF
  $ streamcheck intervals --file split.graph
  error: the topology is not connected
  [12]

Two sources: the general fallback handles it silently (the graph is
acyclic, so every interval is infinite)...

  $ cat > twosrc.graph <<'EOF'
  > nodes 3
  > edge 0 2 1
  > edge 1 2 1
  > EOF
  $ streamcheck intervals --file twosrc.graph
  route: general DAG fallback (0 cycles enumerated)
  edge   channel     cap   interval  threshold
  e0       0 -> 2       1        inf          -
  e1       1 -> 2       1        inf          -

...but with the fallback disabled the CS4 requirement bites — exit 11
(Not_two_terminal):

  $ streamcheck intervals --file twosrc.graph --no-general
  error: not a two-terminal DAG (need exactly one source, one sink, every node on a source-to-sink path)
  [11]

The FFT butterfly is connected and two-terminal but not CS4; with the
fallback disabled the compiler rejects it naming the offending block —
exit 13 (Non_cs4_rejected):

  $ streamcheck intervals --demo butterfly --no-general
  error: block 0..5 is neither SP nor an SP-ladder: missing cross-link at rail frontier, and the general fallback is disabled
  [13]

And when the fallback is allowed but the cycle budget is too small —
exit 14 (Cycle_budget_exceeded):

  $ streamcheck intervals --demo butterfly --max-cycles 2
  error: cycle enumeration exceeded the budget of 2 simple cycles
  [14]

With an adequate budget the same topology compiles:

  $ streamcheck intervals --demo butterfly --max-cycles 100 --algorithm non-propagation
  route: general DAG fallback (7 cycles enumerated)
  edge   channel     cap   interval  threshold
  e0       0 -> 1       2          2          2
  e1       0 -> 2       2          2          2
  e2       1 -> 3       2          2          2
  e3       1 -> 4       2          2          2
  e4       2 -> 3       2          2          2
  e5       2 -> 4       2          2          2
  e6       3 -> 5       2          2          2
  e7       4 -> 5       2          2          2
