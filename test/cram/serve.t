The serving layer multiplexes many tenant applications onto one worker
pool. Tenants here are acyclic chains under deterministic per-node
workloads, so every printed count is schedule-independent (dummy
traffic on the pool is timing-dependent and would not be stable).

Demos serve under a Bernoulli workload; two fingerprint-distinct
tenants mean two compiles, and every tenant completing exits 0:

  $ streamcheck serve --demo pipeline --demo deep-pipeline --inputs 40 --seed 3 --domains 2
  pipeline         completed  data=110 sink=6 dummy=0
  deep-pipeline    completed  data=130 sink=0 dummy=0
  tenants=2 rejected=0 compiles=2

Admission control is the linter: an Error-severity topology is turned
away at the door with the finding as the reason, other tenants still
run, and the run exits in the serve band (30 = rejection):

  $ streamcheck serve --demo pipeline --demo butterfly --inputs 20 --domains 2
  butterfly        rejected: lint rejected the topology:
    FS201 error: not CS4: block 0..5 is neither SP nor an SP-ladder (missing cross-link at rail frontier); interval computation falls back to the exponential general route
  pipeline         completed  data=48 sink=2 dummy=0
  tenants=1 rejected=1 compiles=1
  [30]

Spec-file tenants come from a directory. Fingerprint-equal topologies
share one compiled threshold table — two tenants, one compile:

  $ mkdir tenants
  $ cat > tenants/alpha.app <<'EOF'
  > nodes 4
  > edge 0 1 2
  > edge 1 2 2
  > edge 2 3 2
  > node 1 periodic 3
  > default passthrough
  > EOF
  $ cp tenants/alpha.app tenants/beta.app
  $ streamcheck serve --dir tenants --inputs 30 --domains 2
  alpha            completed  data=50 sink=10 dummy=0
  beta             completed  data=50 sink=10 dummy=0
  tenants=2 rejected=0 compiles=1

Hot reconfiguration: after the first round completes, --reconfigure
applies an edit script to a live tenant — the table is recomputed
incrementally (here 6 of the 9 edited-graph edges splice straight
across from the previous epoch) and a second round serves the edited
topology. The other tenant re-runs untouched. The summary line grows
the reconfiguration counters only when --reconfigure is in play:

  $ streamcheck serve --demo pipeline --demo deep-pipeline --inputs 40 --seed 3 --domains 2 --reconfigure "pipeline: resize e0 4; add-stage e2 2 2"
  pipeline         completed  data=110 sink=6 dummy=0
  deep-pipeline    completed  data=130 sink=0 dummy=0
  pipeline         reconfigured epoch=1 spliced=6 recomputed=3
  pipeline         completed  data=105 sink=3 dummy=0
  deep-pipeline    completed  data=130 sink=0 dummy=0
  tenants=2 rejected=0 compiles=2 recompiles=1 warm_pivots=0

A script the edit layer refuses leaves the tenant on its admitted
epoch (the second round re-serves the original topology) and exits in
the serve rejection band:

  $ streamcheck serve --demo pipeline --inputs 20 --seed 3 --domains 2 --reconfigure "pipeline: remove-edge e99"
  pipeline         completed  data=62 sink=3 dummy=0
  pipeline         reconfigure rejected: edit script rejected: remove-edge: edge e99 out of range (graph has 8 edges)
  pipeline         completed  data=62 sink=3 dummy=0
  tenants=1 rejected=1 compiles=1 recompiles=0 warm_pivots=0
  [30]

A spec that fails to load is the worst outcome (exit 32), even when
every loadable tenant is served:

  $ echo "nodes" > tenants/broken.app
  $ streamcheck serve --dir tenants --inputs 30 --domains 2
  broken           load error: line 1: unrecognized directive
  alpha            completed  data=50 sink=10 dummy=0
  beta             completed  data=50 sink=10 dummy=0
  tenants=2 rejected=0 compiles=1
  [32]
