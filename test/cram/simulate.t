Fig. 2 under a random filtering workload, protected:

  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3
  completed: 206 rounds, 314 data msgs, 201 dummy msgs, 188 data at sinks

Unprotected it wedges, and the CLI prints the witness cycle:

  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3 --avoidance none
  deadlock state:
    e0 0->1 cap=2 len=0 head=- last_sent=10
    e1 1->2 cap=2 len=0 head=- last_sent=8
    e2 0->2 cap=2 len=2 head=#9:9 last_sent=11
    node 0 pending:1 next_in=12
  DEADLOCKED: 13 rounds, 24 data msgs, 0 dummy msgs, 13 data at sinks
  deadlock witness cycle (§II.B):
    full:  e2 (0->2)
    empty: e1 (1->2), e0 (0->1)
  [2]

The event-driven ready-queue scheduler and the reference sweep produce
bit-identical output, on completions:

  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3 --scheduler sweep > sweep.out
  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3 --scheduler ready > ready.out
  $ diff sweep.out ready.out
  $ cat ready.out
  completed: 206 rounds, 314 data msgs, 201 dummy msgs, 188 data at sinks

and on deadlocks (same wedge round, same frozen state, same witness):

  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3 --avoidance none --scheduler sweep > sweep-dl.out
  [2]
  $ streamcheck simulate --demo fig2 --inputs 200 --keep 0.6 --seed 3 --avoidance none --scheduler ready > ready-dl.out
  [2]
  $ diff sweep-dl.out ready-dl.out

A deeper spot check on a demo with more idle structure:

  $ streamcheck simulate --demo pipeline --inputs 500 --keep 0.5 --seed 9 --scheduler sweep > p-sweep.out
  $ streamcheck simulate --demo pipeline --inputs 500 --keep 0.5 --seed 9 --scheduler ready > p-ready.out
  $ diff p-sweep.out p-ready.out
