Structured observability from the CLI: --metrics prints the registry's
aggregate table after the run, --trace-out writes the full event log
as Chrome trace_event JSON (load it at chrome://tracing or Perfetto).

  $ streamcheck simulate --demo fig2 --inputs 50 --keep 0.6 --seed 3 --metrics
  completed: 55 rounds, 82 data msgs, 41 dummy msgs, 48 data at sinks
  edge     cap      data   dummies  watermark  overhead
  e0         2        34        16       2/2       1.00
  e1         2        24        24       2/2       0.92
  e2         2        24         1       2/2       0.04
  totals: 82 data, 41 dummies over 3 channels
  blocked visits: n1:1
  55 rounds, 505 events

The trace file is one JSON array, one object per event, terminated by
the run's single Run_finished event:

  $ streamcheck simulate --demo fig2 --inputs 50 --keep 0.6 --seed 3 --trace-out trace.json
  completed: 55 rounds, 82 data msgs, 41 dummy msgs, 48 data at sinks
  $ head -2 trace.json
  [
  {"name":"Round_started","ph":"i","s":"t","ts":0,"pid":0,"tid":0,"args":{"round":1}},
  $ tail -2 trace.json
  {"name":"Run_finished","ph":"i","s":"t","ts":504,"pid":0,"tid":0,"args":{"outcome":"completed"}}
  ]

Both at once — the sinks tee, and the run itself is unchanged (same
report line as the untraced run above):

  $ streamcheck simulate --demo fig2 --inputs 50 --keep 0.6 --seed 3 --trace-out both.json --metrics | head -1
  completed: 55 rounds, 82 data msgs, 41 dummy msgs, 48 data at sinks

On a deadlocking run the metrics include the wedge round, and the exit
code still reports the outcome:

  $ streamcheck simulate --demo fig2 --inputs 50 --keep 0.6 --seed 3 --avoidance none --metrics 2>/dev/null | tail -3
  blocked visits: n0:1
  first wedge: round 13
  13 rounds, 91 events
