(* The typed application layer: real values flow end to end, filtering
   included, under both runtimes and with the avoidance wrapper on. *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads

(* A small analytics app on the Fig. 4-left ladder:
   gen -> stage a (squares, escalates multiples of 3 to b),
   b sums whatever it sees (its own feed + escalations), collect. *)
let build_app g collected =
  let app = App.create g in
  App.source app 0 (fun ~seq -> [ (0, seq); (1, seq) ]);
  (* a = node 1: in e0; out e2 (cross, filtered), e3 (to sink) *)
  App.node app 1 (fun ~seq:_ ~inputs ->
      match inputs with
      | [ (0, x) ] ->
        let sq = x * x in
        if x mod 3 = 0 then [ (2, sq); (3, sq) ] else [ (3, sq) ]
      | _ -> Alcotest.fail "node a: unexpected inputs");
  (* b = node 2: in e1 (own feed), e2 (escalations); out e4 *)
  App.node app 2 (fun ~seq:_ ~inputs ->
      let total = List.fold_left (fun acc (_, v) -> acc + v) 0 inputs in
      [ (4, total) ]);
  App.sink app 3 (fun ~seq ~inputs ->
      List.iter (fun (e, v) -> collected := (seq, e, v) :: !collected) inputs);
  app

let expected_results inputs =
  (* per seq s: sink receives on e3 the square, on e4 s + (s^2 when
     3 | s) *)
  List.concat_map
    (fun s ->
      [ (s, 3, s * s); (s, 4, if s mod 3 = 0 then s + (s * s) else s) ])
    (List.init inputs Fun.id)
  |> List.sort compare

let run_and_check run_fn =
  let g = Topo_gen.fig4_left ~cap:2 in
  let collected = ref [] in
  let app = build_app g collected in
  Alcotest.(check (list int)) "fully configured" [] (App.unconfigured app);
  let inputs = 30 in
  run_fn g (App.to_kernels app) inputs;
  Alcotest.(check (list (triple int int int)))
    "sink saw exactly the computed values" (expected_results inputs)
    (List.sort compare !collected)

let test_sequential () =
  run_and_check (fun g kernels inputs ->
      let plan = Result.get_ok (Compiler.compile Compiler.Non_propagation g) in
      let s =
        Engine.run ~graph:g ~kernels ~inputs
          ~avoidance:
            (Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
          ()
      in
      Alcotest.(check bool) "completed" true (s.Report.outcome = Report.Completed))

let test_parallel () =
  run_and_check (fun g kernels inputs ->
      let plan = Result.get_ok (Compiler.compile Compiler.Non_propagation g) in
      let s =
        Fstream_parallel.Parallel_engine.run ~stall_ms:150 ~graph:g ~kernels
          ~inputs
          ~avoidance:
            (Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
          ()
      in
      Alcotest.(check bool) "completed" true
        (s.Report.outcome = Report.Completed))

let test_store_drains () =
  (* exactly-once resolution keeps the payload store empty at the end *)
  let g = Topo_gen.fig4_left ~cap:2 in
  let collected = ref [] in
  let app = build_app g collected in
  let plan = Result.get_ok (Compiler.compile Compiler.Non_propagation g) in
  ignore
    (Engine.run ~graph:g ~kernels:(App.to_kernels app) ~inputs:20
       ~avoidance:
         (Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
       ());
  (* a second run through the same app reuses the (drained) store *)
  collected := [];
  ignore
    (Engine.run ~graph:g ~kernels:(App.to_kernels app) ~inputs:20
       ~avoidance:
         (Engine.Non_propagation (Compiler.send_thresholds g plan.intervals))
       ());
  Alcotest.(check int) "second run produced full results" 40
    (List.length !collected)

let test_validation () =
  let g = Topo_gen.pipeline ~stages:2 ~cap:1 in
  let app = App.create g in
  Alcotest.check_raises "source must be a source"
    (Invalid_argument "App.source: node has incoming channels") (fun () ->
      App.source app 1 (fun ~seq:_ -> []));
  Alcotest.check_raises "node must not be a source"
    (Invalid_argument "App.node: node is a source") (fun () ->
      App.node app 0 (fun ~seq:_ ~inputs:_ -> []));
  App.source app 0 (fun ~seq -> [ (99, seq) ]);
  Alcotest.(check (list int)) "middle node unconfigured" [ 1; 2 ]
    (App.unconfigured app);
  Alcotest.check_raises "foreign channel rejected at fire time"
    (Invalid_argument "App: node 0 emitted on foreign channel 99") (fun () ->
      ignore
        (Engine.run ~graph:g ~kernels:(App.to_kernels app) ~inputs:1
           ~avoidance:Engine.No_avoidance ()))

let suite =
  [
    Alcotest.test_case "values flow (sequential engine)" `Quick test_sequential;
    Alcotest.test_case "values flow (parallel engine)" `Quick test_parallel;
    Alcotest.test_case "payload store drains" `Quick test_store_drains;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
