open Fstream_core
open Fstream_runtime
open Fstream_workloads

let fig2_spec =
  "nodes 3\n\
   edge 0 1 2\n\
   edge 1 2 2\n\
   edge 0 2 2\n\
   node 0 block 2   # the adversarial filter of Fig. 2\n\
   default passthrough\n"

let test_parse () =
  match App_spec.of_string fig2_spec with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    Alcotest.(check int) "graph edges" 3
      (Fstream_graph.Graph.num_edges spec.graph);
    Alcotest.(check int) "one behaviour" 1 (List.length spec.behaviors);
    Alcotest.(check bool) "block parsed" true
      (List.assoc 0 spec.behaviors = App_spec.Block 2)

let test_roundtrip () =
  match App_spec.of_string fig2_spec with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
    match App_spec.of_string (App_spec.to_string spec) with
    | Error e -> Alcotest.fail e
    | Ok spec' ->
      Alcotest.(check bool) "behaviours survive" true
        (spec.behaviors = spec'.behaviors && spec.default = spec'.default))

let test_validation () =
  let bad s =
    match App_spec.of_string s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "unknown behaviour" true
    (bad "nodes 2\nedge 0 1 1\nnode 0 teleport\n");
  Alcotest.(check bool) "bad probability" true
    (bad "nodes 2\nedge 0 1 1\nnode 0 bernoulli 1.5\n");
  Alcotest.(check bool) "blocking a foreign channel" true
    (bad "nodes 3\nedge 0 1 1\nedge 1 2 1\nnode 0 block 1\n");
  Alcotest.(check bool) "node id out of range" true
    (bad "nodes 2\nedge 0 1 1\nnode 5 drop\n")

let test_simulates_fig2 () =
  match App_spec.of_string fig2_spec with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    let g = spec.graph in
    let bare =
      Engine.run ~graph:g ~kernels:(App_spec.kernels spec ~seed:1) ~inputs:30
        ~avoidance:Engine.No_avoidance ()
    in
    Alcotest.(check bool) "spec reproduces the Fig. 2 wedge" true
      (bare.Report.outcome = Report.Deadlocked);
    (match Compiler.compile Compiler.Non_propagation g with
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
    | Ok p ->
      let s =
        Engine.run ~graph:g ~kernels:(App_spec.kernels spec ~seed:1) ~inputs:30
          ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
          ()
      in
      Alcotest.(check bool) "and the wrapper fixes it" true
        (s.Report.outcome = Report.Completed))

let test_periodic_behavior () =
  let spec_text =
    "nodes 3\nedge 0 1 3\nedge 1 2 3\nnode 0 periodic 5\n"
  in
  match App_spec.of_string spec_text with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    let s =
      Engine.run ~graph:spec.graph
        ~kernels:(App_spec.kernels spec ~seed:1) ~inputs:50
        ~avoidance:Engine.No_avoidance ()
    in
    Alcotest.(check int) "every fifth input survives" 10 s.Report.sink_data

let suite =
  [
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "fig2 end to end" `Quick test_simulates_fig2;
    Alcotest.test_case "periodic behaviour" `Quick test_periodic_behavior;
  ]
