(* Differential test of the ring-buffer {!Channel} against a trivially
   correct reference model (a [Queue.t] plus scalar counters).

   The model re-states the documented contract: bounded FIFO, a push on
   a full channel returns [false] with no effect, sequence numbers must
   strictly increase *among accepted pushes* (the full check comes
   first), counters classify by payload, the watermark tracks peak
   occupancy, and the subscriber sees exactly the two occupancy
   transitions — empty→non-empty on push, full→non-full on pop — after
   the state change. Random op traces over tiny capacities hammer the
   full/empty boundaries where the circular indexing can go wrong. *)

module Channel = Fstream_runtime.Channel
module Message = Fstream_runtime.Message

module Model = struct
  type t = {
    cap : int;
    q : Message.t Queue.t;
    mutable last_seq : int;
    mutable total : int;
    mutable dummies : int;
    mutable data : int;
    mutable hw : int;
    log : Channel.event list ref;
  }

  let create ~capacity log =
    {
      cap = capacity;
      q = Queue.create ();
      last_seq = -1;
      total = 0;
      dummies = 0;
      data = 0;
      hw = 0;
      log;
    }

  let push t (m : Message.t) =
    if Queue.length t.q >= t.cap then false
    else begin
      if m.seq <= t.last_seq then
        invalid_arg "Model.push: sequence numbers must increase";
      t.last_seq <- m.seq;
      t.total <- t.total + 1;
      (match m.body with
      | Message.Data _ -> t.data <- t.data + 1
      | Message.Dummy -> t.dummies <- t.dummies + 1
      | Message.Eos -> ());
      Queue.add m t.q;
      let len = Queue.length t.q in
      if len > t.hw then t.hw <- len;
      if len = 1 then t.log := Channel.Became_nonempty :: !(t.log);
      true
    end

  let pop t =
    match Queue.take_opt t.q with
    | None -> None
    | Some m ->
      if Queue.length t.q = t.cap - 1 then
        t.log := Channel.Freed_slot :: !(t.log);
      Some m
end

(* One random operation; the trace is derived from an integer seed so
   QCheck shrinks over seeds while traces stay reproducible. *)
type op = Push of Message.t | Pop | Pop_exn | Peek | Peek_seq

let ops_of_seed seed =
  let rng = Tutil.rng_of seed in
  let cap = 1 + Random.State.int rng 4 in
  let next = ref 0 in
  let msg () =
    (* mostly monotone sequence numbers, with occasional stale ones to
       exercise the monotonicity raise, and distinct payloads so buffer
       slots can't be confused with each other *)
    let seq =
      if Random.State.int rng 8 = 0 then !next - 1 - Random.State.int rng 3
      else begin
        let s = !next + Random.State.int rng 2 in
        next := s + 1;
        s
      end
    in
    match Random.State.int rng 10 with
    | 0 | 1 | 2 -> Message.dummy ~seq
    | 3 when Random.State.int rng 4 = 0 -> Message.eos ()
    | _ -> Message.data ~seq (Random.State.int rng 1000)
  in
  let ops =
    List.init
      (20 + Random.State.int rng 120)
      (fun _ ->
        match Random.State.int rng 8 with
        | 0 | 1 | 2 | 3 -> Push (msg ())
        | 4 | 5 -> Pop
        | 6 -> Pop_exn
        | 7 -> if Random.State.int rng 2 = 0 then Peek else Peek_seq
        | _ -> assert false)
  in
  (cap, ops)

(* Run a thunk, capturing an [Invalid_argument] outcome so the channel
   and the model can be required to fail identically. *)
let outcome f = try Ok (f ()) with Invalid_argument _ -> Error `Invalid

let check_state ~cap c (m : Model.t) clog =
  Alcotest.(check int) "length" (Queue.length m.q) (Channel.length c);
  Alcotest.(check int) "capacity" cap (Channel.capacity c);
  Alcotest.(check bool) "is_empty" (Queue.is_empty m.q) (Channel.is_empty c);
  Alcotest.(check bool)
    "is_full"
    (Queue.length m.q >= cap)
    (Channel.is_full c);
  Alcotest.(check int) "total_pushed" m.total (Channel.total_pushed c);
  Alcotest.(check int) "data_pushed" m.data (Channel.data_pushed c);
  Alcotest.(check int) "dummies_pushed" m.dummies (Channel.dummies_pushed c);
  Alcotest.(check int) "high_watermark" m.hw (Channel.high_watermark c);
  Alcotest.(check bool)
    "peek agrees" true
    (Channel.peek c = Queue.peek_opt m.q);
  Alcotest.(check bool) "notify log agrees" true (!clog = !(m.log))

let run_trace seed =
  let cap, ops = ops_of_seed seed in
  let clog = ref [] and mlog = ref [] in
  let c = Channel.create ~capacity:cap in
  Channel.subscribe c (fun e -> clog := e :: !clog);
  let m = Model.create ~capacity:cap mlog in
  List.iter
    (fun op ->
      (match op with
      | Push msg ->
        let a = outcome (fun () -> Channel.push c msg) in
        let b = outcome (fun () -> Model.push m msg) in
        Alcotest.(check bool) "push agrees" true (a = b)
      | Pop ->
        Alcotest.(check bool)
          "pop agrees" true
          (Channel.pop c = Model.pop m)
      | Pop_exn ->
        let a = outcome (fun () -> Channel.pop_exn c) in
        let b =
          match Model.pop m with
          | Some msg -> Ok msg
          | None -> Error `Invalid
        in
        Alcotest.(check bool) "pop_exn agrees" true (a = b)
      | Peek ->
        Alcotest.(check bool)
          "peek agrees" true
          (Channel.peek c = Queue.peek_opt m.q)
      | Peek_seq ->
        let a = outcome (fun () -> Channel.peek_seq c) in
        let b =
          match Queue.peek_opt m.q with
          | Some (msg : Message.t) -> Ok msg.seq
          | None -> Error `Invalid
        in
        Alcotest.(check bool) "peek_seq agrees" true (a = b));
      check_state ~cap c m clog)
    ops;
  true

let test_create_invalid () =
  Alcotest.check_raises "capacity 0" (Invalid_argument
                                        "Channel.create: capacity < 1")
    (fun () -> ignore (Channel.create ~capacity:0))

let test_empty_raises () =
  let c = Channel.create ~capacity:2 in
  let raises name f =
    Alcotest.(check bool)
      name true
      (match outcome f with Error `Invalid -> true | Ok _ -> false)
  in
  raises "peek_seq empty" (fun () -> Channel.peek_seq c);
  raises "peek_exn empty" (fun () -> ignore (Channel.peek_exn c));
  raises "pop_exn empty" (fun () -> ignore (Channel.pop_exn c))

(* The two occupancy transitions, on the tightest buffer: a capacity-1
   channel is empty and full at once, so one push+pop cycle must
   produce exactly [Became_nonempty; Freed_slot] — and a refused push
   must produce nothing. *)
let test_notify_boundary () =
  let log = ref [] in
  let c = Channel.create ~capacity:1 in
  Channel.subscribe c (fun e -> log := e :: !log);
  Alcotest.(check bool) "push lands" true (Channel.push c (Message.data ~seq:0 0));
  Alcotest.(check bool)
    "became nonempty" true
    (!log = [ Channel.Became_nonempty ]);
  Alcotest.(check bool) "full push refused" false
    (Channel.push c (Message.data ~seq:1 1));
  Alcotest.(check bool)
    "refused push is silent" true
    (!log = [ Channel.Became_nonempty ]);
  ignore (Channel.pop_exn c);
  Alcotest.(check bool)
    "freed slot" true
    (!log = [ Channel.Freed_slot; Channel.Became_nonempty ]);
  (* a second subscriber replaces the first *)
  let log2 = ref [] in
  Channel.subscribe c (fun e -> log2 := e :: !log2);
  ignore (Channel.push c (Message.data ~seq:1 1));
  Alcotest.(check bool)
    "first subscriber replaced" true
    (!log = [ Channel.Freed_slot; Channel.Became_nonempty ]
    && !log2 = [ Channel.Became_nonempty ])

let suite =
  [
    Alcotest.test_case "create rejects capacity < 1" `Quick
      test_create_invalid;
    Alcotest.test_case "empty-channel accessors raise" `Quick
      test_empty_raises;
    Alcotest.test_case "notify fires on occupancy boundaries" `Quick
      test_notify_boundary;
    Tutil.qtest ~count:500 "ring buffer ≡ queue model on random traces"
      Tutil.seed_gen run_trace;
  ]
