open Fstream_core
open Fstream_workloads

let test_routes () =
  (match Compiler.compile Compiler.Propagation (Topo_gen.fig3_hexagon ()) with
  | Ok { route = Compiler.Cs4_route _; _ } -> ()
  | _ -> Alcotest.fail "hexagon should take the CS4 route");
  (match Compiler.compile Compiler.Propagation (Topo_gen.fig4_butterfly ~cap:1) with
  | Ok { route = Compiler.General_route { cycles = 7 }; _ } -> ()
  | _ -> Alcotest.fail "butterfly should take the general route");
  match
    Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } Compiler.Propagation
      (Topo_gen.fig4_butterfly ~cap:1)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "butterfly must be rejected without fallback"

let test_route_pp () =
  match Compiler.compile Compiler.Propagation (Topo_gen.fig4_left ~cap:1) with
  | Ok p ->
    Alcotest.(check string) "route rendering" "CS4 (0 SP blocks, 1 ladder)"
      (Format.asprintf "%a" Compiler.pp_route p.route)
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let test_not_a_dag () =
  let g =
    Fstream_graph.Graph.make ~nodes:3 [ (0, 1, 1); (1, 2, 1); (2, 0, 1) ]
  in
  match Compiler.compile Compiler.Propagation g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "directed cycle must be rejected"

let test_max_cycles_cutoff () =
  let g = Topo_gen.diamond_chain ~bypass:true ~diamonds:12 ~cap:1 () in
  (* the graph is SP so the CS4 route handles it; force the general
     fallback by asking for a non-CS4... instead check plan still works *)
  match Compiler.compile Compiler.Propagation g with
  | Ok { route = Compiler.Cs4_route _; _ } -> ()
  | _ -> Alcotest.fail "SP graph must avoid cycle enumeration entirely"

let test_thresholds () =
  let g = Topo_gen.fig3_hexagon () in
  match Compiler.compile Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    Alcotest.(check (array (option int))) "floor-clamped thresholds"
      [| Some 2; Some 2; Some 2; Some 2; Some 2; Some 2 |]
      (Thresholds.to_array (Compiler.send_thresholds g p.intervals));
    (match Compiler.compile Compiler.Propagation g with
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
    | Ok p ->
      Alcotest.(check (array (option int)))
        "propagation thresholds: budgets at the split, eager relays"
        [| Some 6; Some 1; Some 1; Some 8; Some 1; Some 1 |]
        (Thresholds.to_array (Compiler.propagation_thresholds g p.intervals)))

let test_propagation_thresholds_bridges () =
  (* pipeline edges lie on no cycle: no dummies ever *)
  let g = Topo_gen.pipeline ~stages:3 ~cap:1 in
  match Compiler.compile Compiler.Propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    Alcotest.(check (array (option int))) "bridge edges get no threshold"
      [| None; None; None |]
      (Thresholds.to_array (Compiler.propagation_thresholds g p.intervals))

let prop_nonprop_at_most_prop =
  (* Non-propagation intervals divide by hop count, so they can only be
     tighter than the relay table, which in turn lower-bounds nothing of
     the propagation table on its finite entries... the robust invariant:
     nonprop <= relay <= any finite propagation entry on the same edge. *)
  Tutil.qtest ~count:150 "table ordering: nonprop <= relay <= prop(finite)"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match
        ( Compiler.compile Compiler.Non_propagation g,
          Compiler.compile Compiler.Relay_propagation g,
          Compiler.compile Compiler.Propagation g )
      with
      | Ok np, Ok rl, Ok pr ->
        let ok = ref true in
        Array.iteri
          (fun i v ->
            if Interval.compare v rl.intervals.(i) > 0 then ok := false;
            if Interval.compare rl.intervals.(i) pr.intervals.(i) > 0 then
              ok := false)
          np.intervals;
        !ok
      | _ -> false)

let prop_finite_iff_on_cycle =
  (* an edge has a finite non-propagation interval iff it lies on some
     undirected simple cycle *)
  Tutil.qtest ~count:150 "finite interval iff edge on a cycle" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Compiler.compile Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        let on_cycle = Array.make (Fstream_graph.Graph.num_edges g) false in
        List.iter
          (fun c ->
            List.iter
              (fun o -> on_cycle.(o.Fstream_graph.Cycles.edge.id) <- true)
              c)
          (Fstream_graph.Cycles.enumerate g);
        Array.for_all Fun.id
          (Array.mapi
             (fun i v -> Interval.is_finite v = on_cycle.(i))
             p.intervals))

let suite =
  [
    Alcotest.test_case "routing decisions" `Quick test_routes;
    Alcotest.test_case "route printing" `Quick test_route_pp;
    Alcotest.test_case "cyclic graph rejected" `Quick test_not_a_dag;
    Alcotest.test_case "SP avoids enumeration" `Quick test_max_cycles_cutoff;
    Alcotest.test_case "threshold tables" `Quick test_thresholds;
    Alcotest.test_case "bridge thresholds" `Quick
      test_propagation_thresholds_bridges;
    prop_nonprop_at_most_prop;
    prop_finite_iff_on_cycle;
  ]
