(* Experiment V1: the polynomial algorithms agree exactly with the
   exponential cycle-enumeration baseline, on every family and for all
   three interval tables. This is the property that caught both ladder
   recurrence bugs (see DESIGN.md, "Deviations"). *)

open Fstream_core

let agree algorithm baseline g =
  match Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } algorithm g with
  | Error _ -> false
  | Ok p ->
    let base = baseline g in
    Array.length p.intervals = Array.length base
    && Array.for_all Fun.id
         (Array.mapi (fun i v -> Interval.equal v base.(i)) p.intervals)

let all_agree g =
  agree Compiler.Propagation General.propagation g
  && agree Compiler.Non_propagation General.non_propagation g
  && agree Compiler.Relay_propagation General.relay_propagation g

let prop_sp =
  Tutil.qtest ~count:300 "fast = baseline on random SP graphs" Tutil.seed_gen
    (fun seed -> all_agree (Tutil.random_sp_of_seed seed))

let prop_ladder =
  Tutil.qtest ~count:300 "fast = baseline on random ladders" Tutil.seed_gen
    (fun seed -> all_agree (Tutil.random_ladder_of_seed seed))

let prop_cs4 =
  Tutil.qtest ~count:300 "fast = baseline on random CS4 chains"
    Tutil.seed_gen (fun seed -> all_agree (Tutil.random_cs4_of_seed seed))

let prop_wide_ladders =
  Tutil.qtest ~count:40 "fast = baseline on wide unit ladders"
    QCheck.(make ~print:string_of_int (Gen.int_range 1 9))
    (fun rungs ->
      all_agree (Fstream_workloads.Topo_gen.wide_ladder ~rungs ~cap:2))

let test_figures () =
  let module T = Fstream_workloads.Topo_gen in
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) name true (all_agree g))
    [
      ("fig1 split-join", T.fig1_split_join ~branches:4 ~cap:3);
      ("fig2 triangle", T.fig2_triangle ~cap:2);
      ("fig3 hexagon", T.fig3_hexagon ());
      ("fig4 left", T.fig4_left ~cap:2);
      ("fig5 ladder", T.fig5_ladder ~cap:3);
      ("diamond chain", T.diamond_chain ~diamonds:5 ~cap:2 ());
      ("bypassed diamonds", T.diamond_chain ~bypass:true ~diamonds:5 ~cap:2 ());
      ("parallel paths", T.parallel_paths ~paths:4 ~hops:3 ~cap:2);
      ("wide ladder", T.wide_ladder ~rungs:6 ~cap:2);
    ]

let test_general_fallback_butterfly () =
  (* the butterfly is not CS4: plan takes the exponential route and
     must still equal the direct baseline *)
  let g = Fstream_workloads.Topo_gen.fig4_butterfly ~cap:2 in
  match Compiler.compile Compiler.Non_propagation g with
  | Ok { route = Compiler.General_route { cycles }; intervals; _ } ->
    Alcotest.(check int) "7 cycles enumerated" 7 cycles;
    Tutil.check_intervals "fallback equals baseline"
      (General.non_propagation g) intervals
  | Ok _ -> Alcotest.fail "expected general fallback route"
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let suite =
  [
    Alcotest.test_case "paper figure graphs" `Quick test_figures;
    Alcotest.test_case "butterfly fallback" `Quick test_general_fallback_butterfly;
    prop_sp;
    prop_ladder;
    prop_cs4;
    prop_wide_ladders;
  ]
