(* Deadlock diagnosis: §II.B says every deadlock corresponds to an
   undirected cycle with a full side and an empty side. The diagnosis
   module recovers it from a wedged run; these tests check it on the
   canonical example and as a universal property of every wedge the
   engine reaches. *)

open Fstream_graph
open Fstream_runtime
open Fstream_workloads

let wedge_of_fig2 () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  let s = Engine.run ~graph:g ~kernels ~inputs:30 ~avoidance:Engine.No_avoidance () in
  (g, s)

let test_fig2_witness () =
  let g, s = wedge_of_fig2 () in
  Alcotest.(check bool) "deadlocked" true (s.Report.outcome = Report.Deadlocked);
  match Report.wedge s with
  | None -> Alcotest.fail "expected a wedge snapshot"
  | Some snap -> (
    match Diagnosis.explain g snap with
    | None -> Alcotest.fail "expected a witness"
    | Some w ->
      Alcotest.(check (list int)) "full side is A->B, B->C" [ 0; 1 ]
        (List.sort compare
           (List.map (fun (e : Graph.edge) -> e.id) w.full_channels));
      Alcotest.(check (list int)) "empty side is A->C" [ 2 ]
        (List.map (fun (e : Graph.edge) -> e.id) w.empty_channels);
      Alcotest.(check int) "cycle covers all three channels" 3
        (List.length w.cycle))

let test_no_witness_when_completed () =
  let g = Topo_gen.pipeline ~stages:2 ~cap:1 in
  let kernels = Filters.for_graph g (fun _ o -> Filters.passthrough o) in
  let s = Engine.run ~graph:g ~kernels ~inputs:5 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "no wedge on completion" true (Report.wedge s = None)

let witness_is_sound (snap : Report.snapshot) (w : Diagnosis.witness) =
  (* the witness must be a genuine simple cycle of g ... *)
  let ids =
    List.sort compare (List.map (fun o -> o.Cycles.edge.Graph.id) w.cycle)
  in
  let simple = List.length (List.sort_uniq compare ids) = List.length ids in
  let verts = Cycles.vertices w.cycle in
  let distinct_verts =
    List.length (List.sort_uniq compare verts) = List.length verts
  in
  (* ... with the advertised buffer occupancies *)
  let occupancies_ok =
    List.for_all
      (fun (e : Graph.edge) ->
        snap.Report.channel_lengths.(e.id) >= e.cap)
      w.full_channels
    && List.for_all
         (fun (e : Graph.edge) -> snap.Report.channel_lengths.(e.id) = 0)
         w.empty_channels
  in
  (* ... and both sides non-trivial in a filtering deadlock *)
  simple && distinct_verts && occupancies_ok
  && w.full_channels <> []
  && List.length w.cycle
     = List.length w.full_channels + List.length w.empty_channels

let prop_every_wedge_has_witness =
  (* the computational content of §II.B's deadlock characterization *)
  Tutil.qtest ~count:150 "every reached deadlock yields a sound witness"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      let rng = Tutil.rng_of (seed + 1) in
      let kernels =
        Filters.for_graph g (fun _ outs ->
            Filters.bernoulli rng ~keep:0.55 outs)
      in
      let s =
        Engine.run ~graph:g ~kernels ~inputs:60 ~avoidance:Engine.No_avoidance ()
      in
      match (s.Report.outcome, Report.wedge s) with
      | Report.Deadlocked, Some snap -> (
        match Diagnosis.explain g snap with
        | Some w -> witness_is_sound snap w
        | None -> false)
      | Report.Deadlocked, None -> false
      | _ -> true)

let prop_witness_cycle_is_enumerable =
  (* the witness is one of the graph's undirected simple cycles *)
  Tutil.qtest ~count:60 "witness appears in the cycle enumeration"
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      let rng = Tutil.rng_of (seed + 2) in
      let kernels =
        Filters.for_graph g (fun _ outs ->
            Filters.bernoulli rng ~keep:0.5 outs)
      in
      let s =
        Engine.run ~graph:g ~kernels ~inputs:50 ~avoidance:Engine.No_avoidance ()
      in
      match Report.wedge s with
      | None -> true
      | Some snap -> (
        match Diagnosis.explain g snap with
        | None -> false
        | Some w ->
          let key c =
            List.sort compare (List.map (fun o -> o.Cycles.edge.Graph.id) c)
          in
          List.exists
            (fun c -> key c = key w.cycle)
            (Cycles.enumerate g)))

let suite =
  [
    Alcotest.test_case "fig2 witness" `Quick test_fig2_witness;
    Alcotest.test_case "no witness when completed" `Quick
      test_no_witness_when_completed;
    prop_every_wedge_has_witness;
    prop_witness_cycle_is_enumerable;
  ]
