(* Exact reproduction of the paper's only worked example (Fig. 3):
   the hexagon with branch buffers 2,5,1 (a-b-e-f) and 3,1,2 (a-c-d-f).
   Propagation: [ab] = 3+1+2 = 6, [ac] = 2+5+1 = 8, every other edge
   infinite. Non-Propagation: the a-b-e-f edges get 6/3 = 2 and the
   a-c-d-f edges 8/3 (displayed as 3 after the paper's round-up). *)

open Fstream_core
open Fstream_workloads

let i = Interval.of_int
let r = Interval.ratio
let inf = Interval.inf

(* Edge ids in Topo_gen.fig3_hexagon: 0=ab 1=be 2=ef 3=ac 4=cd 5=df *)
let expected_prop = [| i 6; inf; inf; i 8; inf; inf |]
let expected_nonprop = [| i 2; i 2; i 2; r 8 3; r 8 3; r 8 3 |]

let g () = Topo_gen.fig3_hexagon ()

let test_general () =
  Tutil.check_intervals "baseline propagation" expected_prop
    (General.propagation (g ()));
  Tutil.check_intervals "baseline non-propagation" expected_nonprop
    (General.non_propagation (g ()))

let test_fast_sp () =
  match Fstream_spdag.Sp_recognize.recognize (g ()) with
  | Error _ -> Alcotest.fail "hexagon is SP"
  | Ok tree ->
    Tutil.check_intervals "SETIVALS" expected_prop
      (Sp_prop.intervals (g ()) tree);
    Tutil.check_intervals "SP non-propagation" expected_nonprop
      (Sp_nonprop.intervals (g ()) tree)

let test_compiler_plan () =
  (match Compiler.compile Compiler.Propagation (g ()) with
  | Ok p -> Tutil.check_intervals "plan propagation" expected_prop p.intervals
  | Error e -> Alcotest.fail (Compiler.error_to_string e));
  match Compiler.compile Compiler.Non_propagation (g ()) with
  | Ok p ->
    Tutil.check_intervals "plan non-propagation" expected_nonprop p.intervals
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let test_roundup_display () =
  (* the figure displays 8/3 as 3 ("roundup") *)
  Alcotest.(check (option int)) "8/3 rounds up to 3" (Some 3)
    (Interval.ceil_opt (Interval.ratio 8 3));
  (* the runtime threshold takes the conservative floor, clamped *)
  Alcotest.(check (option int)) "threshold of 8/3 is 2" (Some 2)
    (Interval.threshold (Interval.ratio 8 3))

let test_relay_table () =
  (* Relay-Propagation on the hexagon: every edge bounded by the whole
     opposing branch, no hop division. *)
  Tutil.check_intervals "relay propagation"
    [| i 6; i 6; i 6; i 8; i 8; i 8 |]
    (General.relay_propagation (g ()))

let suite =
  [
    Alcotest.test_case "general baseline matches Fig. 3" `Quick test_general;
    Alcotest.test_case "fast SP algorithms match Fig. 3" `Quick test_fast_sp;
    Alcotest.test_case "compiler plan matches Fig. 3" `Quick test_compiler_plan;
    Alcotest.test_case "round-up display" `Quick test_roundup_display;
    Alcotest.test_case "relay table" `Quick test_relay_table;
  ]
