(* Kernel fusion: the partition rules, interval preservation, and
   fused = unfused equivalence.

   Three layers of evidence, matching the safety argument in
   lib/core/fusion.mli:

   - structural: fusable edges are exactly the sole-in/sole-out bridges
     (= the SP series spine), the partition is a well-formed chain
     decomposition, and the derived interval table equals recompiling
     the same algorithm on the fused graph;
   - differential: on random SP / ladder / CS4 topologies under all
     three avoidance modes, a fused run reproduces the unfused run's
     outcome, sink count, per-original-node firing counts and
     per-boundary-channel data counts — sequentially and on the pool;
   - model-checked: Verify.check reaches a wedge on the fused plan iff
     it does on the original, including deliberately weakened tables
     and the paper-literal Propagation tables that are genuinely unsafe
     on some instances, so the iff is exercised in both verdicts. *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads
module Graph = Fstream_graph.Graph
module Articulation = Fstream_graph.Articulation
module Topo = Fstream_graph.Topo
module Sp_tree = Fstream_spdag.Sp_tree
module Sp_recognize = Fstream_spdag.Sp_recognize
module P = Fstream_parallel.Parallel_engine
module Metrics = Fstream_obs.Metrics
module Ring = Fstream_obs.Ring
module Sink = Fstream_obs.Sink
module Event = Fstream_obs.Event
module Verify = Fstream_verify.Verify

let ids_of_members m = Array.map Array.to_list m |> Array.to_list

let check_members msg expected (f : Fusion.t) =
  Alcotest.(check (list (list int))) msg expected (ids_of_members f.members)

(* ----- fixtures: one per critical-boundary kind ----- *)

let test_pipeline_chain () =
  let g = Topo_gen.pipeline ~stages:8 ~cap:2 in
  let f = Fusion.fuse g in
  check_members "everything but the sink fuses"
    [ [ 0; 1; 2; 3; 4; 5; 6; 7 ]; [ 8 ] ]
    f;
  Alcotest.(check int) "one boundary channel" 1 (Graph.num_edges f.graph);
  Alcotest.(check int) "it is the original sink edge" 7 f.orig_edge.(0);
  Alcotest.(check int) "capacity preserved" 2 (Graph.edge f.graph 0).cap;
  Alcotest.(check int) "7 channels collapsed" 7 (Fusion.internal_edges f)

let test_splitter_boundary () =
  (* 0 -> 1 -> 2, then 2 splits to sinks 3 and 4: the splitter may tail
     a chain, its out-edges are boundaries *)
  let g = Graph.make ~nodes:5 [ (0, 1, 2); (1, 2, 2); (2, 3, 1); (2, 4, 1) ] in
  let f = Fusion.fuse g in
  check_members "chain ends at the splitter" [ [ 0; 1; 2 ]; [ 3 ]; [ 4 ] ] f

let test_merger_boundary () =
  (* sources 0 and 1 merge at 2, then 2 -> 3 -> 4: the merger may head
     a chain, its in-edges are boundaries; the sink stays cut *)
  let g = Graph.make ~nodes:5 [ (0, 2, 2); (1, 2, 2); (2, 3, 1); (3, 4, 1) ] in
  let f = Fusion.fuse g in
  check_members "chain starts at the merger" [ [ 0 ]; [ 1 ]; [ 2; 3 ]; [ 4 ] ] f

let test_multiuse_boundary () =
  (* parallel edges are 2-cycles: neither copy is a bridge, nothing
     fuses in a diamond chain *)
  let g = Topo_gen.diamond_chain ~diamonds:3 ~cap:2 () in
  let f = Fusion.fuse g in
  Alcotest.(check bool) "identity partition" true (Fusion.is_identity f)

let test_cycle_boundary () =
  (* fig2's B has sole in and sole out, but both edges lie on the
     triangle: fusing them would delete the cycle the intervals
     protect *)
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let f = Fusion.fuse g in
  Alcotest.(check bool) "identity partition" true (Fusion.is_identity f)

let test_filter_class_boundary () =
  let g = Topo_gen.pipeline ~stages:4 ~cap:2 in
  let f = Fusion.fuse ~filter_class:(fun v -> if v < 2 then 0 else 1) g in
  check_members "cut at the behaviour change" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] f

let test_pin_boundary () =
  let g = Topo_gen.pipeline ~stages:4 ~cap:2 in
  let f = Fusion.fuse ~pin:(fun v -> v = 2) g in
  check_members "pinned node isolated" [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ] f

let test_fused_thresholds_rejected_on_original () =
  let g = Topo_gen.pipeline ~stages:8 ~cap:2 in
  match Compiler.compile ~options:{ Compiler.Options.default with fuse = true } Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok { Compiler.fused = None; _ } -> Alcotest.fail "no fusion attached"
  | Ok { Compiler.fused = Some { fusion; fused_intervals }; _ } ->
    let fused_table =
      Compiler.send_thresholds fusion.Fusion.graph fused_intervals
    in
    let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
    let rejected =
      match
        Engine.run ~graph:g ~kernels ~inputs:1
          ~avoidance:(Engine.Non_propagation fused_table) ()
      with
      | _ -> false
      | exception Invalid_argument _ -> true
    in
    Alcotest.(check bool)
      "fused table fingerprint rejected on the original graph" true rejected

(* ----- structural properties ----- *)

let prop_spine_is_bridges =
  Tutil.qtest ~count:300 "SP series spine = bridges" Tutil.seed_gen
    (fun seed ->
      let g = Tutil.random_sp_of_seed ~max_edges:24 seed in
      match Sp_recognize.recognize g with
      | Error _ -> false
      | Ok tree ->
        let spine = Array.make (Graph.num_edges g) false in
        List.iter
          (fun (e : Graph.edge) -> spine.(e.id) <- true)
          (Sp_tree.series_spine tree);
        spine = Articulation.bridges g)

let families =
  [
    ("sp", fun seed -> Tutil.random_sp_of_seed ~max_edges:24 seed);
    ("ladder", fun seed -> Tutil.random_ladder_of_seed ~max_rungs:6 seed);
    ("cs4", fun seed -> Tutil.random_cs4_of_seed seed);
  ]

let graph_of_family seed =
  let _, f = List.nth families (seed mod 3) in
  f (seed / 3)

let prop_partition_well_formed =
  Tutil.qtest ~count:300 "partition is a well-formed chain decomposition"
    Tutil.seed_gen (fun seed ->
      let g = graph_of_family seed in
      let f = Fusion.fuse g in
      let fg = f.Fusion.graph in
      let bridge = Articulation.bridges g in
      (* members partition the nodes, in chains connected by internal
         sole-in/sole-out bridge edges *)
      let seen = Array.make (Graph.num_nodes g) 0 in
      let chains_ok = ref true in
      Array.iteri
        (fun gid mem ->
          Array.iteri
            (fun i v ->
              seen.(v) <- seen.(v) + 1;
              if f.Fusion.group_of.(v) <> gid then chains_ok := false;
              if i < Array.length mem - 1 then begin
                let next = mem.(i + 1) in
                let link =
                  List.exists
                    (fun (e : Graph.edge) ->
                      e.src = v && e.dst = next && f.Fusion.edge_of.(e.id) = -1
                      && bridge.(e.id)
                      && Graph.out_degree g v = 1
                      && Graph.in_degree g next = 1
                      && Graph.out_degree g next > 0)
                    (Graph.edges g)
                in
                if not link then chains_ok := false
              end)
            mem)
        f.Fusion.members;
      let edges_ok =
        List.for_all
          (fun (e : Graph.edge) ->
            let fe = f.Fusion.edge_of.(e.id) in
            fe = -1
            || (f.Fusion.orig_edge.(fe) = e.id
               && (Graph.edge fg fe).src = f.Fusion.group_of.(e.src)
               && (Graph.edge fg fe).dst = f.Fusion.group_of.(e.dst)
               && (Graph.edge fg fe).cap = e.cap))
          (Graph.edges g)
      in
      !chains_ok
      && Array.for_all (fun c -> c = 1) seen
      && edges_ok && Topo.is_dag fg && Topo.connected fg
      && Graph.num_edges g - Graph.num_edges fg
         = Graph.num_nodes g - Graph.num_nodes fg)

let algorithm_of seed =
  match seed mod 3 with
  | 0 -> Compiler.Propagation
  | 1 -> Compiler.Non_propagation
  | _ -> Compiler.Relay_propagation

let prop_derived_equals_recompiled =
  Tutil.qtest ~count:300 "derived fused intervals = recompiled on fused graph"
    Tutil.seed_gen (fun seed ->
      let g = graph_of_family seed in
      let algorithm = algorithm_of (seed / 7) in
      match Compiler.compile ~options:{ Compiler.Options.default with fuse = true } algorithm g with
      | Error _ -> false
      | Ok { Compiler.fused = None; _ } -> false
      | Ok { Compiler.fused = Some { fusion; fused_intervals }; _ } -> (
        match Compiler.compile algorithm fusion.Fusion.graph with
        | Error _ -> false
        | Ok p ->
          Array.length fused_intervals = Array.length p.Compiler.intervals
          && Array.for_all2 Interval.equal fused_intervals p.Compiler.intervals))

(* ----- differential: fused = unfused ----- *)

let domains_of seed = match seed / 5 mod 3 with 0 -> 1 | 1 -> 2 | _ -> 4

(* node-deterministic kernels keyed by *original* node ids, so fused
   and unfused runs make identical filtering decisions (cf.
   test_parallel.ml's mixed_kernels) *)
let mixed_kernels g seed () =
  Filters.for_graph g (fun v outs ->
      match v mod 3 with
      | 0 -> Filters.bernoulli (Random.State.make [| seed; v |]) ~keep:0.7 outs
      | 1 -> Filters.periodic ~keep_every:(2 + (seed mod 3)) outs
      | _ -> Filters.passthrough outs)

(* paper-pattern filtering: the regime where Propagation is sound, so
   completion itself is schedule- and fusion-independent *)
let paper_pattern_kernels g seed () =
  Filters.for_graph g (fun v outs ->
      if Graph.in_degree g v = 0 || Graph.out_degree g v = 1 then
        Filters.bernoulli (Random.State.make [| seed; v |]) ~keep:0.6 outs
      else Filters.passthrough outs)

type mode = M_none | M_nonprop | M_prop

let differential_case g seed mode =
  let fusion = Fusion.fuse g in
  let fg = fusion.Fusion.graph in
  let kernels =
    match mode with
    | M_prop -> paper_pattern_kernels g seed
    | M_none | M_nonprop -> mixed_kernels g seed
  in
  let setup =
    match mode with
    | M_none -> Some (Engine.No_avoidance, Engine.No_avoidance)
    | M_nonprop -> (
      match Compiler.compile Compiler.Non_propagation g with
      | Error _ -> None
      | Ok p ->
        let fused_intervals = Fusion.derive_intervals fusion p.intervals in
        Some
          ( Engine.Non_propagation (Compiler.send_thresholds g p.intervals),
            Engine.Non_propagation
              (Compiler.send_thresholds fg fused_intervals) ))
    | M_prop -> (
      match Compiler.compile Compiler.Propagation g with
      | Error _ -> None
      | Ok p ->
        let fused_intervals = Fusion.derive_intervals fusion p.intervals in
        Some
          ( Engine.Propagation (Compiler.propagation_thresholds g p.intervals),
            Engine.Propagation
              (Compiler.propagation_thresholds fg fused_intervals) ))
  in
  match setup with
  | None -> false
  | Some (avoidance, fused_avoidance) ->
    let inputs = 25 in
    let c = Metrics.collector ~graph:g ~inputs () in
    let plain =
      Engine.run ~sink:(Metrics.sink c) ~graph:g ~kernels:(kernels ()) ~inputs
        ~avoidance ()
    in
    let m = Metrics.result c in
    let fw = Fused.make fusion (kernels ()) in
    let fused =
      Engine.run ~graph:fg ~kernels:(Fused.kernels fw) ~inputs
        ~avoidance:fused_avoidance ()
    in
    let pw = Fused.make fusion (kernels ()) in
    let pool =
      P.run ~domains:(domains_of seed) ~graph:fg ~kernels:(Fused.kernels pw)
        ~inputs ~avoidance:fused_avoidance ()
    in
    let boundary_data =
      Array.fold_left
        (fun acc oe -> acc + m.Metrics.edges.(oe).Metrics.data)
        0 fusion.Fusion.orig_edge
    in
    let completed = plain.Report.outcome = Report.Completed in
    (* avoidance modes run safe computed tables: the run must complete *)
    ((mode = M_none) || completed)
    && fused.Report.outcome = plain.Report.outcome
    && fused.Report.sink_data = plain.Report.sink_data
    (* traffic and firing counts transfer only on completed runs: at a
       wedge the unfused chain heads can run ahead by the interior
       channels' capacity — buffering fusion deliberately removes — so
       wedge-time counts are not preserved, only wedge reachability,
       sink deliveries and the completed-run counts (the identity case
       below is the exception: nothing collapsed, so even the wedge
       state must coincide) *)
    && ((not completed) || fused.Report.data_messages = boundary_data)
    (* every completed firing runs a kernel under no avoidance, so
       per-original-node firing counts must survive fusion exactly *)
    && (mode <> M_none || (not completed) || Fused.fired fw = m.Metrics.fired)
    (* identity partitions run the very same graph: the whole report
       transfers, dummy accounting and wedge traffic included *)
    && (not (Fusion.is_identity fusion)
       || fused.Report.data_messages = plain.Report.data_messages
          && fused.Report.dummy_messages = plain.Report.dummy_messages
          && fused.Report.per_edge_dummies = plain.Report.per_edge_dummies
          && fused.Report.dropped_dummies = plain.Report.dropped_dummies)
    (* pool leg: Kahn determinism extends to compound kernels *)
    && pool.Report.outcome = fused.Report.outcome
    && pool.Report.sink_data = fused.Report.sink_data
    && pool.Report.data_messages = fused.Report.data_messages

let mode_of seed =
  match seed mod 3 with 0 -> M_none | 1 -> M_nonprop | _ -> M_prop

let differential_suite =
  List.map
    (fun (name, family) ->
      Tutil.qtest ~count:300
        (Printf.sprintf "fused = unfused on random %s (all modes, pool)" name)
        Tutil.seed_gen
        (fun seed -> differential_case (family seed) seed (mode_of seed)))
    families

(* ----- obs attribution and the replay oracle on fused runs ----- *)

let test_subnode_attribution () =
  let g = Topo_gen.pipeline ~stages:6 ~cap:2 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 2 then Filters.periodic ~keep_every:2 outs
        else Filters.passthrough outs)
  in
  match Compiler.compile ~options:{ Compiler.Options.default with fuse = true } Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok { Compiler.fused = None; _ } -> Alcotest.fail "no fusion attached"
  | Ok { Compiler.fused = Some { fusion; fused_intervals }; _ } ->
    let fg = fusion.Fusion.graph in
    let ring = Ring.create ~capacity:8192 () in
    let fw = Fused.make ~sink:(Ring.sink ring) fusion kernels in
    let report =
      Engine.run ~sink:(Ring.sink ring) ~graph:fg ~kernels:(Fused.kernels fw)
        ~inputs:20
        ~avoidance:
          (Engine.Non_propagation
             (Compiler.send_thresholds fg fused_intervals))
        ()
    in
    Alcotest.(check bool) "completed" true (report.outcome = Report.Completed);
    Alcotest.(check int) "ring kept the whole log" 0 (Ring.dropped ring);
    (* Subnode_fired events reconstruct the per-original-node counters *)
    let by_event = Array.make (Graph.num_nodes g) 0 in
    Ring.iter ring (fun e ->
        match e with
        | Event.Subnode_fired { sub; _ } -> by_event.(sub) <- by_event.(sub) + 1
        | _ -> ());
    Alcotest.(check (array int)) "events = counters" (Fused.fired fw) by_event;
    (* the replay oracle still balances on a fused log: Subnode_fired is
       attribution-only and must not disturb the conservation laws *)
    let replayed =
      Report.of_events ~graph:fg
        (List.filter
           (fun e ->
             match e with Event.Subnode_fired _ -> false | _ -> true)
           (Ring.contents ring))
    in
    let replayed_with_subnodes =
      Report.of_events ~graph:fg (Ring.contents ring)
    in
    List.iter
      (fun (name, r) ->
        Alcotest.(check bool)
          (name ^ ": outcome") true
          (r.Report.outcome = report.outcome);
        Alcotest.(check int) (name ^ ": data") report.data_messages
          r.Report.data_messages;
        Alcotest.(check int) (name ^ ": dummies") report.dummy_messages
          r.Report.dummy_messages;
        Alcotest.(check int) (name ^ ": sink") report.sink_data
          r.Report.sink_data)
      [ ("filtered", replayed); ("raw", replayed_with_subnodes) ]

(* ----- model-checked interval preservation ----- *)

let tiny_graph_of_seed seed =
  let rng = Tutil.rng_of seed in
  Topo_gen.random_cs4 rng
    ~blocks:1
    ~block_edges:(2 + Random.State.int rng 3)
    ~max_cap:2

let verdict = function
  | Verify.Safe _ -> `Safe
  | Verify.Deadlocks _ -> `Deadlocks
  | Verify.Out_of_budget _ -> `Budget

let check_both graph_pair avoidance_pair =
  let g, fg = graph_pair and av, fav = avoidance_pair in
  let r = Verify.check ~max_states:150_000 ~graph:g ~avoidance:av ~inputs:3 () in
  let rf =
    Verify.check ~max_states:150_000 ~graph:fg ~avoidance:fav ~inputs:3 ()
  in
  match (verdict r, verdict rf) with
  | `Budget, _ | _, `Budget -> true (* inconclusive: don't let CI flake *)
  | a, b -> a = b

let prop_verify_no_avoidance_iff =
  Tutil.qtest ~count:300
    "wedge reachable on fused graph iff on original (no avoidance)"
    Tutil.seed_gen (fun seed ->
      let g = tiny_graph_of_seed seed in
      let f = Fusion.fuse g in
      check_both (g, f.Fusion.graph) (Engine.No_avoidance, Engine.No_avoidance))

let prop_verify_plan_tables_iff =
  (* sound tables must stay Safe on both sides; the paper-literal
     Propagation tables are genuinely unsafe on some instances, so this
     also exercises the Deadlocks = Deadlocks direction *)
  Tutil.qtest ~count:300
    "verify verdict preserved for computed tables (all algorithms)"
    Tutil.seed_gen (fun seed ->
      let g = tiny_graph_of_seed seed in
      let algorithm = algorithm_of seed in
      match Compiler.compile ~options:{ Compiler.Options.default with fuse = true } algorithm g with
      | Error _ -> false
      | Ok { Compiler.fused = None; _ } -> false
      | Ok ({ Compiler.fused = Some { fusion; fused_intervals }; _ } as p) ->
        let fg = fusion.Fusion.graph in
        let pair =
          match algorithm with
          | Compiler.Propagation ->
            ( Engine.Propagation
                (Compiler.propagation_thresholds g p.Compiler.intervals),
              Engine.Propagation
                (Compiler.propagation_thresholds fg fused_intervals) )
          | _ ->
            ( Engine.Non_propagation
                (Compiler.send_thresholds g p.Compiler.intervals),
              Engine.Non_propagation
                (Compiler.send_thresholds fg fused_intervals) )
        in
        check_both (g, fg) pair)

let weaken intervals =
  Array.map
    (fun iv ->
      match Interval.threshold iv with None -> None | Some k -> Some (3 * k))
    intervals

let prop_verify_weakened_tables_iff =
  (* tripled thresholds are past the safe budget on cycle-bearing
     instances: wedges appear, and they must appear on both sides *)
  Tutil.qtest ~count:300 "verify verdict preserved for weakened tables"
    Tutil.seed_gen (fun seed ->
      let g = tiny_graph_of_seed seed in
      match Compiler.compile ~options:{ Compiler.Options.default with fuse = true } Compiler.Non_propagation g with
      | Error _ -> false
      | Ok { Compiler.fused = None; _ } -> false
      | Ok ({ Compiler.fused = Some { fusion; fused_intervals }; _ } as p) ->
        let fg = fusion.Fusion.graph in
        check_both (g, fg)
          ( Engine.Non_propagation
              (Thresholds.of_array g (weaken p.Compiler.intervals)),
            Engine.Non_propagation
              (Thresholds.of_array fg (weaken fused_intervals)) ))

(* deterministic fixture with a real chain feeding a wedgeable diamond:
   both verdicts, both directions *)
let test_verify_chain_diamond_fixture () =
  let g =
    Graph.make ~nodes:7
      [ (0, 1, 2); (1, 2, 1); (2, 3, 1); (2, 4, 2); (3, 5, 1); (4, 5, 2); (5, 6, 1) ]
  in
  let f = Fusion.fuse g in
  check_members "chain into the diamond fuses"
    [ [ 0; 1; 2 ]; [ 3 ]; [ 4 ]; [ 5 ]; [ 6 ] ]
    f;
  let fg = f.Fusion.graph in
  let wedge_none g' =
    verdict (Verify.check ~graph:g' ~avoidance:Engine.No_avoidance ~inputs:4 ())
  in
  Alcotest.(check bool) "unfused wedges under no avoidance" true
    (wedge_none g = `Deadlocks);
  Alcotest.(check bool) "fused wedges under no avoidance" true
    (wedge_none fg = `Deadlocks);
  match Compiler.compile ~options:{ Compiler.Options.default with fuse = true } Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok { Compiler.fused = None; _ } -> Alcotest.fail "no fusion attached"
  | Ok ({ Compiler.fused = Some { fusion = _; fused_intervals }; _ } as p) ->
    let safe g' av =
      verdict (Verify.check ~graph:g' ~avoidance:av ~inputs:4 ())
    in
    Alcotest.(check bool) "unfused safe under the plan" true
      (safe g
         (Engine.Non_propagation
            (Compiler.send_thresholds g p.Compiler.intervals))
      = `Safe);
    Alcotest.(check bool) "fused safe under the derived plan" true
      (safe fg
         (Engine.Non_propagation (Compiler.send_thresholds fg fused_intervals))
      = `Safe)

let suite =
  [
    Alcotest.test_case "pipeline fuses to chain + sink" `Quick
      test_pipeline_chain;
    Alcotest.test_case "boundary: splitter" `Quick test_splitter_boundary;
    Alcotest.test_case "boundary: merger" `Quick test_merger_boundary;
    Alcotest.test_case "boundary: multi-use (parallel edges)" `Quick
      test_multiuse_boundary;
    Alcotest.test_case "boundary: cycle edges" `Quick test_cycle_boundary;
    Alcotest.test_case "boundary: filter-class change" `Quick
      test_filter_class_boundary;
    Alcotest.test_case "boundary: pinned node" `Quick test_pin_boundary;
    Alcotest.test_case "fused thresholds rejected on original graph" `Quick
      test_fused_thresholds_rejected_on_original;
    Alcotest.test_case "subnode attribution and replay oracle" `Quick
      test_subnode_attribution;
    Alcotest.test_case "verify fixture: chain into wedgeable diamond" `Quick
      test_verify_chain_diamond_fixture;
    prop_spine_is_bridges;
    prop_partition_well_formed;
    prop_derived_equals_recompiled;
  ]
  @ differential_suite
  @ [
      prop_verify_no_avoidance_iff;
      prop_verify_plan_tables_iff;
      prop_verify_weakened_tables_iff;
    ]
