(* The lint engine: every FS* rule has a positive and a negative
   fixture, and the severity contract is property-tested — a report
   with zero Error findings means the configured plan is safe, checked
   against the exhaustive model checker in all three sound wrapper
   configurations (cf. test_soundness.ml). *)

open Fstream_graph
open Fstream_core
module Lint = Fstream_analysis.Lint
module Topo_gen = Fstream_workloads.Topo_gen
module App_spec = Fstream_workloads.App_spec
module Verify = Fstream_verify.Verify
module Engine = Fstream_runtime.Engine

let has code (r : Lint.report) =
  List.exists (fun (d : Lint.diagnostic) -> d.Lint.code = code) r.diagnostics

let find code (r : Lint.report) =
  List.find (fun (d : Lint.diagnostic) -> d.Lint.code = code) r.diagnostics

let errors r = Lint.count r Lint.Error

let check_fires name code report =
  Alcotest.(check bool) (name ^ ": " ^ code ^ " fires") true (has code report)

let check_silent name code report =
  Alcotest.(check bool)
    (name ^ ": " ^ code ^ " silent")
    false (has code report)

(* ------------------------------------------------------------------ *)
(* registry *)

let test_registry () =
  Alcotest.(check bool) "at least ten rules" true (List.length Lint.rules >= 10);
  let ids = List.map (fun (r : Lint.rule) -> r.Lint.id) Lint.rules in
  Alcotest.(check int)
    "rule ids are unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " resolvable") true (Lint.rule id <> None))
    ids

(* ------------------------------------------------------------------ *)
(* FS1xx: structure *)

let test_fs101 () =
  let cyclic = Graph.make ~nodes:2 [ (0, 1, 1); (1, 0, 1) ] in
  let r = Lint.run cyclic in
  check_fires "cyclic" "FS101" r;
  let d = find "FS101" r in
  Alcotest.(check bool) "has a cycle witness" true (d.Lint.witness <> []);
  check_silent "fig2" "FS101" (Lint.run (Topo_gen.fig2_triangle ~cap:2))

let test_fs102 () =
  let split = Graph.make ~nodes:4 [ (0, 1, 1); (2, 3, 1) ] in
  check_fires "disconnected" "FS102" (Lint.run split);
  check_silent "fig2" "FS102" (Lint.run (Topo_gen.fig2_triangle ~cap:2))

let test_fs103 () =
  let twosrc = Graph.make ~nodes:3 [ (0, 2, 1); (1, 2, 1) ] in
  check_fires "two sources" "FS103" (Lint.run twosrc);
  check_silent "pipeline" "FS103" (Lint.run (Topo_gen.pipeline ~stages:4 ~cap:2))

let test_fs104 () =
  (* nodes 1,2 form a directed cycle unreachable from the source *)
  let g = Graph.make ~nodes:4 [ (0, 3, 1); (1, 2, 1); (2, 1, 1); (1, 3, 1) ] in
  let r = Lint.run g in
  check_fires "unreachable cycle" "FS101" r;
  check_fires "unreachable cycle" "FS104" r;
  check_silent "fig2" "FS104" (Lint.run (Topo_gen.fig2_triangle ~cap:2))

(* ------------------------------------------------------------------ *)
(* FS2xx: cycle structure *)

let test_fs201 () =
  let r = Lint.run (Topo_gen.fig4_butterfly ~cap:2) in
  check_fires "butterfly" "FS201" r;
  let d = find "FS201" r in
  Alcotest.(check bool) "witness cycle shown" true (d.Lint.witness <> []);
  Alcotest.(check bool)
    "carries a reroute fixit" true
    (match d.Lint.fixit with Some (Lint.Reroute _) -> true | _ -> false);
  check_silent "fig5 ladder" "FS201" (Lint.run (Topo_gen.fig5_ladder ~cap:2))

let test_fs202 () =
  check_fires "butterfly" "FS202" (Lint.run (Topo_gen.fig4_butterfly ~cap:2));
  check_silent "fig2" "FS202" (Lint.run (Topo_gen.fig2_triangle ~cap:2))

let test_fs203 () =
  check_fires "fig4-left ladder" "FS203" (Lint.run (Topo_gen.fig4_left ~cap:2));
  check_silent "fig2 is SP" "FS203" (Lint.run (Topo_gen.fig2_triangle ~cap:2))

(* ------------------------------------------------------------------ *)
(* FS3xx: capacities, intervals, thresholds *)

(* a 4-hop run against a 1-cap chord: interval 1/4 on the long run *)
let undersized () =
  Graph.make ~nodes:5
    [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1); (0, 4, 1) ]

let test_fs301 () =
  let r = Lint.run (undersized ()) in
  check_fires "1/4 interval" "FS301" r;
  let d = find "FS301" r in
  Alcotest.(check bool)
    "carries a buffer-scaling fixit" true
    (match d.Lint.fixit with Some (Lint.Scale_buffers c) -> c >= 4 | _ -> false);
  check_silent "fig2 cap 2" "FS301" (Lint.run (Topo_gen.fig2_triangle ~cap:2))

let test_fs301_fix_roundtrip () =
  let g = undersized () in
  let r = Lint.run g in
  match Lint.apply_fixes g r with
  | Error e -> Alcotest.fail e
  | Ok (fixed, _) ->
    check_silent "after scaling" "FS301" (Lint.run fixed)

let test_fs302 () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let too_late = Thresholds.of_array g [| Some 10; Some 10; Some 10 |] in
  let cfg t = { Lint.default_config with Lint.audit_thresholds = Some t } in
  check_fires "late thresholds" "FS302" (Lint.run ~config:(cfg too_late) g);
  (* a table fingerprinted for another topology *)
  let other = Topo_gen.pipeline ~stages:2 ~cap:2 in
  let foreign = Thresholds.of_array other [| Some 1; Some 1 |] in
  check_fires "foreign table" "FS302" (Lint.run ~config:(cfg foreign) g);
  (* the compiler's own table audits clean *)
  (match Compiler.compile Compiler.Non_propagation g with
  | Error _ -> Alcotest.fail "fig2 must plan"
  | Ok p ->
    let good = Compiler.send_thresholds g p.Compiler.intervals in
    check_silent "computed table" "FS302" (Lint.run ~config:(cfg good) g));
  check_silent "no table supplied" "FS302" (Lint.run g)

let prop_config = { Lint.default_config with Lint.algorithm = Compiler.Propagation }

let test_fs303 () =
  let r = Lint.run ~config:prop_config (Topo_gen.erosion_counterexample ()) in
  check_fires "erosion counterexample" "FS303" r;
  Alcotest.(check bool)
    "erosion is an Error" true
    ((find "FS303" r).Lint.severity = Lint.Error);
  check_silent "fig2 under propagation" "FS303"
    (Lint.run ~config:prop_config (Topo_gen.fig2_triangle ~cap:2));
  (* the rule is propagation-specific *)
  check_silent "non-propagation audit" "FS303"
    (Lint.run (Topo_gen.erosion_counterexample ()))

let test_fs304 () =
  let uneven = Graph.make ~nodes:2 [ (0, 1, 1); (0, 1, 3) ] in
  check_fires "asymmetric pair" "FS304" (Lint.run uneven);
  let even = Graph.make ~nodes:2 [ (0, 1, 2); (0, 1, 2) ] in
  check_silent "symmetric pair" "FS304" (Lint.run even)

(* FS305 is armed only under [backend = Lp]: the run-sum audit of a
   supplied table, with the Farkas-decoded demand chain as witness
   (the same fixture test_lp.ml checks at the Lp.audit level). *)
let test_fs305 () =
  let g = Topo_gen.fig2_triangle ~cap:3 in
  let overloaded = Thresholds.of_array g [| Some 4; Some 4; Some 1 |] in
  let cfg backend t =
    { Lint.default_config with Lint.backend; audit_thresholds = Some t }
  in
  let r = Lint.run ~config:(cfg Compiler.Lp overloaded) g in
  check_fires "overloaded table under lp" "FS305" r;
  let d = find "FS305" r in
  Alcotest.(check bool)
    "FS305 is a Warning, not an Error" true
    (d.Lint.severity = Lint.Warning);
  Alcotest.(check bool) "carries the demand chain" true (d.Lint.witness <> []);
  check_silent "same table, default backend" "FS305"
    (Lint.run ~config:(cfg Compiler.Exact overloaded) g);
  (* the LP backend's own table audits clean *)
  (match
     Compiler.compile Compiler.Non_propagation
       ~options:{ Compiler.Options.default with backend = Compiler.Lp }
       g
   with
  | Error _ -> Alcotest.fail "fig2 must compile under lp"
  | Ok p ->
    let own = Compiler.send_thresholds g p.Compiler.intervals in
    check_silent "LP's own table" "FS305"
      (Lint.run ~config:(cfg Compiler.Lp own) g));
  check_silent "no table supplied" "FS305"
    (Lint.run
       ~config:{ Lint.default_config with Lint.backend = Compiler.Lp }
       g)

(* under [backend = Lp] a non-CS4 topology is first-class, so FS201
   downgrades to Warning and the report carries no Errors *)
let test_fs201_lp_downgrade () =
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  let r =
    Lint.run ~config:{ Lint.default_config with Lint.backend = Compiler.Lp } g
  in
  check_fires "butterfly still reported" "FS201" r;
  Alcotest.(check bool)
    "downgraded to Warning" true
    ((find "FS201" r).Lint.severity = Lint.Warning);
  Alcotest.(check int) "no Errors under lp" 0 (errors r);
  (* Exact and Auto keep the Error verdict *)
  Alcotest.(check bool)
    "Error under exact" true
    ((find "FS201" (Lint.run g)).Lint.severity = Lint.Error);
  Alcotest.(check bool)
    "Error under auto" true
    ((find "FS201"
        (Lint.run
           ~config:{ Lint.default_config with Lint.backend = Compiler.Auto }
           g))
       .Lint.severity
    = Lint.Error)

(* ------------------------------------------------------------------ *)
(* FS4xx: application specs *)

let diamond () =
  Graph.make ~nodes:5 [ (0, 1, 1); (1, 2, 1); (1, 3, 1); (2, 4, 1); (3, 4, 1) ]

let with_spec ?(algorithm = Compiler.Non_propagation) g behaviors default =
  let spec = { App_spec.graph = g; behaviors; default } in
  Lint.run
    ~config:{ Lint.default_config with Lint.algorithm; Lint.spec = Some spec }
    g

let test_fs401 () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  check_fires "unknown node" "FS401"
    (with_spec g [ (7, App_spec.Passthrough) ] App_spec.Passthrough);
  check_fires "foreign channel" "FS401"
    (with_spec g [ (0, App_spec.Block 99) ] App_spec.Passthrough);
  check_silent "valid spec" "FS401"
    (with_spec g [ (0, App_spec.Drop) ] App_spec.Passthrough)

let test_fs402 () =
  let g = diamond () in
  check_fires "filter at split" "FS402"
    (with_spec ~algorithm:Compiler.Propagation g
       [ (1, App_spec.Drop) ]
       App_spec.Passthrough);
  check_fires "filtering default reaches a split" "FS402"
    (with_spec ~algorithm:Compiler.Propagation g [] (App_spec.Bernoulli 0.5));
  check_silent "same spec, non-propagation" "FS402"
    (with_spec g [ (1, App_spec.Drop) ] App_spec.Passthrough);
  check_silent "filtering only at source and relays" "FS402"
    (with_spec ~algorithm:Compiler.Propagation g
       [ (0, App_spec.Drop); (2, App_spec.Periodic 3) ]
       App_spec.Passthrough)

let test_fs403 () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  check_fires "duplicate directives" "FS403"
    (with_spec g
       [ (0, App_spec.Drop); (0, App_spec.Passthrough) ]
       App_spec.Passthrough);
  check_silent "unique directives" "FS403"
    (with_spec g
       [ (0, App_spec.Drop); (1, App_spec.Passthrough) ]
       App_spec.Passthrough)

(* ------------------------------------------------------------------ *)
(* fixits *)

let test_fix_butterfly () =
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  let r = Lint.run g in
  Alcotest.(check bool) "butterfly has errors" true (errors r > 0);
  match Lint.apply_fixes g r with
  | Error e -> Alcotest.fail e
  | Ok (fixed, actions) ->
    Alcotest.(check bool) "actions reported" true (actions <> []);
    Alcotest.(check int) "fixed topology lints clean of errors" 0
      (errors (Lint.run fixed));
    Alcotest.(check bool) "fixed topology is CS4" true
      (Fstream_ladder.Cs4.is_cs4 fixed)

let test_fix_nothing_to_do () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let r = Lint.run g in
  Alcotest.(check bool)
    "clean report has no fixits" true
    (match Lint.apply_fixes g r with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* the severity contract: lint-clean implies verify-safe *)

let small_graph_of_seed seed =
  let rng = Tutil.rng_of seed in
  let g0 =
    Topo_gen.random_sp rng
      ~target_edges:(2 + Random.State.int rng 4)
      ~max_cap:2
  in
  if Random.State.bool rng then g0
  else begin
    (* a forward chord usually leaves CS4: exercises the vacuous side *)
    let n = Graph.num_nodes g0 in
    let rank = Topo.rank g0 in
    let edges =
      List.map (fun (e : Graph.edge) -> (e.src, e.dst, e.cap)) (Graph.edges g0)
    in
    let a = Random.State.int rng n and b = Random.State.int rng n in
    let edges =
      if rank.(a) < rank.(b) then edges @ [ (a, b, 1 + Random.State.int rng 2) ]
      else edges
    in
    Graph.make ~nodes:n edges
  end

let no_wedge g avoidance =
  match Verify.check ~max_states:20_000 ~graph:g ~avoidance ~inputs:3 () with
  | Verify.Deadlocks _ -> false
  | Verify.Safe _ | Verify.Out_of_budget _ -> true

let clean (r : Lint.report) = errors r = 0 && r.Lint.incomplete = None

let prop_lint_clean_implies_safe =
  Tutil.qtest ~count:300 "lint-clean implies verify-safe (three modes)"
    Tutil.seed_gen (fun seed ->
      let g = small_graph_of_seed seed in
      let nonprop_ok =
        if not (clean (Lint.run g)) then true
        else
          match Compiler.compile Compiler.Non_propagation g with
          | Error _ -> false (* clean lint promises a plan *)
          | Ok p ->
            let t = Compiler.send_thresholds g p.Compiler.intervals in
            (* absorbing wrapper, and the sound forwarding hybrid *)
            no_wedge g (Engine.Non_propagation t)
            && no_wedge g (Engine.Propagation t)
      in
      let prop_ok =
        if not (clean (Lint.run ~config:prop_config g)) then true
        else
          match Compiler.compile Compiler.Propagation g with
          | Error _ -> false
          | Ok p ->
            no_wedge g
              (Engine.Propagation
                 (Compiler.propagation_thresholds g p.Compiler.intervals))
      in
      nonprop_ok && prop_ok)

(* Sanity for the property above: the erosion counterexample is exactly
   the case where a lint Error (FS303) excludes an unsound table. *)
let test_fs303_guards_the_contract () =
  let g = Topo_gen.erosion_counterexample () in
  let r = Lint.run ~config:prop_config g in
  Alcotest.(check bool) "erosion instance is not lint-clean" false (clean r);
  match Compiler.compile Compiler.Propagation g with
  | Error _ -> Alcotest.fail "erosion instance must plan"
  | Ok p ->
    let t = Compiler.propagation_thresholds g p.Compiler.intervals in
    Alcotest.(check bool)
      "and its paper-literal table really wedges" false
      (match
         Verify.check ~max_states:200_000 ~strategy:`Dfs ~graph:g
           ~avoidance:(Engine.Propagation t) ~inputs:4 ()
       with
      | Verify.Deadlocks _ -> false
      | _ -> true)

(* A second instance of the same hazard with no erosion "split": on a
   multigraph, parallel-edge cycles grant mid-run budgets > 1, and the
   run-sum along the long cycle overshoots its opposing capacity. Found
   by the property above (seed 893); kept as a deterministic fixture. *)
let test_fs303_multigraph_run_sum () =
  let g =
    Graph.make ~nodes:4
      [ (0, 1, 2); (1, 2, 2); (1, 2, 2); (2, 3, 2); (2, 3, 1); (0, 3, 2) ]
  in
  let r = Lint.run ~config:prop_config g in
  check_fires "parallel-edge multigraph" "FS303" r;
  Alcotest.(check bool)
    "and the nonprop audit stays clean" true
    (clean (Lint.run g));
  match Compiler.compile Compiler.Propagation g with
  | Error _ -> Alcotest.fail "multigraph instance must plan"
  | Ok p ->
    let t = Compiler.propagation_thresholds g p.Compiler.intervals in
    Alcotest.(check bool)
      "and its paper-literal table really wedges" false
      (match
         Verify.check ~max_states:200_000 ~graph:g
           ~avoidance:(Engine.Propagation t) ~inputs:3 ()
       with
      | Verify.Deadlocks _ -> false
      | _ -> true)

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "FS101 directed cycle" `Quick test_fs101;
    Alcotest.test_case "FS102 disconnected" `Quick test_fs102;
    Alcotest.test_case "FS103 arity" `Quick test_fs103;
    Alcotest.test_case "FS104 unreachable" `Quick test_fs104;
    Alcotest.test_case "FS201 non-CS4 witness" `Quick test_fs201;
    Alcotest.test_case "FS202 multi-source cycles" `Quick test_fs202;
    Alcotest.test_case "FS203 not SP" `Quick test_fs203;
    Alcotest.test_case "FS301 undersized buffers" `Quick test_fs301;
    Alcotest.test_case "FS301 fix round-trip" `Quick test_fs301_fix_roundtrip;
    Alcotest.test_case "FS302 threshold audit" `Quick test_fs302;
    Alcotest.test_case "FS303 budget erosion" `Quick test_fs303;
    Alcotest.test_case "FS304 parallel asymmetry" `Quick test_fs304;
    Alcotest.test_case "FS305 LP run-sum audit" `Quick test_fs305;
    Alcotest.test_case "FS201 downgrade under lp" `Quick
      test_fs201_lp_downgrade;
    Alcotest.test_case "FS401 unknown bindings" `Quick test_fs401;
    Alcotest.test_case "FS402 filter at split" `Quick test_fs402;
    Alcotest.test_case "FS403 duplicate directives" `Quick test_fs403;
    Alcotest.test_case "fix butterfly" `Quick test_fix_butterfly;
    Alcotest.test_case "fix refuses clean reports" `Quick test_fix_nothing_to_do;
    Alcotest.test_case "FS303 guards the contract" `Quick
      test_fs303_guards_the_contract;
    Alcotest.test_case "FS303 multigraph run-sum" `Quick
      test_fs303_multigraph_run_sum;
    prop_lint_clean_implies_safe;
  ]
