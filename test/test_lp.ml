(* The LP backend: simplex fixtures, encoding safety (every produced
   table model-checked wedge-free), tightness against the exact
   backend, dimensioning, and the audit/witness direction. *)

open Fstream_graph
open Fstream_core
module R = Rational
module Verify = Fstream_verify.Verify
module Engine = Fstream_runtime.Engine
module Topo_gen = Fstream_workloads.Topo_gen

let r = R.of_int
let rq num den = R.make num den

let rational_t : R.t Alcotest.testable = Alcotest.testable R.pp R.equal

(* ---------------- Rational arithmetic ----------------------------- *)

let test_rational_basics () =
  Alcotest.check rational_t "normalization" (rq 3 2) (rq 6 4);
  Alcotest.check rational_t "negative den" (rq (-3) 2) (rq 3 (-2));
  Alcotest.check rational_t "add" (rq 5 6) (R.add (rq 1 2) (rq 1 3));
  Alcotest.check rational_t "sub to zero" R.zero (R.sub (rq 7 3) (rq 7 3));
  Alcotest.check rational_t "mul" (rq 1 3) (R.mul (rq 2 3) (rq 1 2));
  Alcotest.check rational_t "div" (rq 4 3) (R.div (rq 2 3) (rq 1 2));
  Alcotest.(check int) "floor pos" 2 (R.floor (rq 7 3));
  Alcotest.(check int) "floor neg" (-3) (R.floor (rq (-7) 3));
  Alcotest.(check int) "ceil pos" 3 (R.ceil (rq 7 3));
  Alcotest.(check int) "ceil neg" (-2) (R.ceil (rq (-7) 3));
  Alcotest.(check int) "sign" (-1) (R.sign (rq (-1) 5));
  Alcotest.(check (option (pair int int)))
    "to_int_pair" (Some (-3, 2))
    (R.to_int_pair (rq 3 (-2)));
  Alcotest.(check string) "to_string" "-3/2" (R.to_string (rq (-3) 2))

(* exercise the multi-limb path: values far past 63 bits must still
   cancel exactly *)
let test_rational_bignum () =
  let big = r 123456789123456789 in
  let pow b n =
    let rec go acc n = if n = 0 then acc else go (R.mul acc b) (n - 1) in
    go R.one n
  in
  let p5 = pow big 5 in
  Alcotest.(check (option (pair int int)))
    "5th power exceeds int range" None (R.to_int_pair p5);
  Alcotest.check rational_t "x^5 / x^5 = 1" R.one (R.div p5 p5);
  Alcotest.check rational_t "x^5 * x^-5 = 1" R.one
    (R.mul p5 (R.div R.one p5));
  Alcotest.check rational_t "(x^5 - 1) + 1 = x^5" p5
    (R.add (R.sub p5 R.one) R.one);
  Alcotest.(check string)
    "decimal printing round-trips through a known square"
    "15241578780673678515622620750190521"
    (R.to_string (R.mul big big));
  Alcotest.(check int) "compare" 1 (R.compare p5 big)

let rational_qcheck =
  let gen =
    QCheck.make
      ~print:(fun (a, b, c, d) -> Printf.sprintf "%d/%d, %d/%d" a b c d)
      QCheck.Gen.(
        quad (int_range (-1000) 1000) (int_range 1 1000)
          (int_range (-1000) 1000) (int_range 1 1000))
  in
  Tutil.qtest ~count:500 "field laws on random rationals" gen
    (fun (a, b, c, d) ->
      let x = rq a b and y = rq c d in
      R.equal (R.add x y) (R.add y x)
      && R.equal (R.mul x y) (R.mul y x)
      && R.equal (R.sub (R.add x y) y) x
      && (R.is_zero y || R.equal (R.mul (R.div x y) y) x)
      && R.equal (R.mul (R.add x y) (r 2)) (R.add (R.mul x (r 2)) (R.mul y (r 2))))

(* ---------------- Simplex fixtures -------------------------------- *)

let test_simplex_optimal () =
  (* max x + y  s.t.  x + 2y <= 4, 3x + y <= 6: optimum (8/5, 6/5) *)
  match
    Lp.Simplex.maximize
      ~objective:[| R.one; R.one |]
      ~rows:[| ([| r 1; r 2 |], r 4); ([| r 3; r 1 |], r 6) |]
  with
  | Lp.Simplex.Optimal { objective; primal; dual } ->
    Alcotest.check rational_t "objective" (rq 14 5) objective;
    Alcotest.check rational_t "x" (rq 8 5) primal.(0);
    Alcotest.check rational_t "y" (rq 6 5) primal.(1);
    (* both rows bind; complementary slackness gives positive prices *)
    Alcotest.(check bool) "dual >= 0" true
      (Array.for_all (fun y -> R.sign y >= 0) dual)
  | _ -> Alcotest.fail "expected Optimal"

let test_simplex_degenerate () =
  (* redundant constraints meeting at one vertex must still terminate
     (Bland) and find the optimum *)
  match
    Lp.Simplex.maximize
      ~objective:[| R.one; R.one |]
      ~rows:
        [|
          ([| r 1; r 0 |], r 1);
          ([| r 0; r 1 |], r 1);
          ([| r 1; r 1 |], r 2);
          ([| r 2; r 2 |], r 4);
        |]
  with
  | Lp.Simplex.Optimal { objective; _ } ->
    Alcotest.check rational_t "objective" (r 2) objective
  | _ -> Alcotest.fail "expected Optimal"

let test_simplex_unbounded () =
  match
    Lp.Simplex.maximize ~objective:[| R.one; R.zero |]
      ~rows:[| ([| r 0; r 1 |], r 1) |]
  with
  | Lp.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected Unbounded"

let test_simplex_phase1 () =
  (* a negative RHS forces phase 1: min x at x >= 1 *)
  match
    Lp.Simplex.maximize ~objective:[| R.minus_one |]
      ~rows:[| ([| r (-1) |], r (-1)); ([| r 1 |], r 3) |]
  with
  | Lp.Simplex.Optimal { objective; primal; _ } ->
    Alcotest.check rational_t "objective" (r (-1)) objective;
    Alcotest.check rational_t "x" (r 1) primal.(0)
  | _ -> Alcotest.fail "expected Optimal"

let test_simplex_infeasible () =
  (* x <= 2 and x >= 3 *)
  let rows = [| ([| r 1 |], r 2); ([| r (-1) |], r (-3)) |] in
  match Lp.Simplex.maximize ~objective:[| R.one |] ~rows with
  | Lp.Simplex.Infeasible { farkas } ->
    (* the certificate really certifies: y >= 0, y^T A >= 0, y^T b < 0 *)
    Alcotest.(check bool) "y >= 0" true
      (Array.for_all (fun y -> R.sign y >= 0) farkas);
    let combo f =
      Array.to_list rows
      |> List.mapi (fun i row -> R.mul farkas.(i) (f row))
      |> List.fold_left R.add R.zero
    in
    Alcotest.(check bool) "y^T A >= 0" true
      (R.sign (combo (fun (a, _) -> a.(0))) >= 0);
    Alcotest.(check bool) "y^T b < 0" true (R.sign (combo snd) < 0)
  | _ -> Alcotest.fail "expected Infeasible"

(* ---------------- The interval backend ---------------------------- *)

let lp_options = { Compiler.Options.default with backend = Compiler.Lp }

let lp_plan g =
  match Compiler.compile ~options:lp_options Compiler.Non_propagation g with
  | Ok p -> p
  | Error e -> Alcotest.failf "LP backend rejected: %a" Compiler.pp_error e

let test_lp_route () =
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  let p = lp_plan g in
  (match p.route with
  | Compiler.Lp_route { components; rows } ->
    Alcotest.(check int) "one cyclic component" 1 components;
    Alcotest.(check bool) "rows recorded" true (rows > 0)
  | _ -> Alcotest.fail "expected Lp_route");
  (* the butterfly is one biconnected component: all finite intervals *)
  Alcotest.(check bool) "all finite" true
    (Array.for_all Interval.is_finite p.intervals)

let test_lp_bridges_inf () =
  (* a pipeline has no cycles at all: every edge is a bridge *)
  let g = Topo_gen.pipeline ~stages:6 ~cap:3 in
  let p = lp_plan g in
  Alcotest.(check bool) "all infinite" true
    (Array.for_all (fun iv -> not (Interval.is_finite iv)) p.intervals)

(* every LP table satisfies its own sufficient discipline *)
let lp_self_audit_qcheck name of_seed =
  Tutil.qtest ~count:300 (name ^ ": LP table passes its own audit")
    Tutil.seed_gen (fun seed ->
      let g = of_seed seed in
      let p = lp_plan g in
      let thresholds = Array.map Interval.threshold p.intervals in
      match Lp.audit g ~thresholds with
      | Ok () -> true
      | Error w ->
        QCheck.Test.fail_reportf "audit rejected its own table: %a"
          Lp.pp_witness w)

(* ----- model-checked safety: the headline property.

   Every sampled general DAG, compiled by the LP backend, must be
   wedge-free under exhaustive exploration for each of the three
   avoidance wrappers. [Out_of_budget] counts as inconclusive-pass,
   as in the other verification suites; graphs are kept tiny so the
   checker almost always decides. *)

type mode = Nonprop | Prop | Relay

let mode_name = function
  | Nonprop -> "non-propagation"
  | Prop -> "propagation"
  | Relay -> "relay-propagation"

let avoidance_of mode g (p : Compiler.plan) =
  match mode with
  | Nonprop -> Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
  | Prop -> Engine.Propagation (Compiler.propagation_thresholds g p.intervals)
  | Relay -> Engine.Propagation (Compiler.send_thresholds g p.intervals)

let random_dense_of_seed seed =
  let rng = Tutil.rng_of seed in
  Topo_gen.random_dense rng
    ~layers:(1 + Random.State.int rng 2)
    ~width:2 ~max_cap:2

(* wide single layer: split/join with 2-3 parallel channels of random
   capacities, the smallest multi-run cycle shapes *)
let split_join_of_seed seed =
  let rng = Tutil.rng_of seed in
  Topo_gen.random_dense rng ~layers:1 ~width:(2 + Random.State.int rng 2)
    ~max_cap:3

let lp_safety_qcheck name of_seed mode =
  Tutil.qtest ~count:300
    (Printf.sprintf "%s + %s wrapper: model-checked wedge-free" name
       (mode_name mode))
    Tutil.seed_gen
    (fun seed ->
      let g = of_seed seed in
      let p = lp_plan g in
      let avoidance = avoidance_of mode g p in
      (* small inputs and state budget keep 300 cases x 3 wrappers
         affordable; larger graphs get fewer inputs so the checker
         still decides most cases *)
      let inputs = if Graph.num_edges g > 7 then 2 else 3 in
      match
        Verify.check ~max_states:15_000 ~graph:g ~avoidance ~inputs ()
      with
      | Verify.Safe _ | Verify.Out_of_budget _ -> true
      | Verify.Deadlocks { trace; _ } ->
        QCheck.Test.fail_reportf "LP table deadlocks:@ %s"
          (String.concat " ; " trace))

(* ----- tightness: where the exact backend terminates, compare ----- *)

let test_tightness_small () =
  let instances =
    [
      Topo_gen.fig2_triangle ~cap:3;
      Topo_gen.fig3_hexagon ();
      Topo_gen.fig4_butterfly ~cap:2;
      Topo_gen.diamond_chain ~diamonds:3 ~cap:2 ();
    ]
  in
  List.iter
    (fun g ->
      let exact =
        match Compiler.compile Compiler.Non_propagation g with
        | Ok p -> p.Compiler.intervals
        | Error e -> Alcotest.failf "exact rejected: %a" Compiler.pp_error e
      in
      let lp = (lp_plan g).Compiler.intervals in
      Array.iteri
        (fun i liv ->
          (* conservative means: never a larger threshold than exact
             would allow is not guaranteed edge-wise (the LP spreads
             slack differently), but finiteness must agree or improve:
             the LP is finite wherever exact is finite *)
          if Interval.is_finite exact.(i) then
            Alcotest.(check bool)
              (Printf.sprintf "edge %d finite" i)
              true (Interval.is_finite liv))
        lp)
    instances

(* ----- dimensioning + audit ---------------------------------------- *)

let test_min_buffers_pipeline () =
  let g = Topo_gen.pipeline ~stages:5 ~cap:4 in
  let thresholds = Array.make (Graph.num_edges g) None in
  let caps = Lp.min_buffers g ~thresholds in
  Alcotest.(check (array int))
    "acyclic: unit buffers suffice"
    (Array.make (Graph.num_edges g) 1)
    caps

let min_buffers_qcheck =
  Tutil.qtest ~count:300 "min_buffers capacities pass the audit"
    Tutil.seed_gen (fun seed ->
      let g = random_dense_of_seed seed in
      let p = lp_plan g in
      let thresholds = Array.map Interval.threshold p.intervals in
      let caps = Lp.min_buffers g ~thresholds in
      let g' = Graph.map_caps g (fun (e : Graph.edge) -> caps.(e.id)) in
      match Lp.audit g' ~thresholds with
      | Ok () -> true
      | Error w ->
        QCheck.Test.fail_reportf "dimensioned graph fails its audit: %a"
          Lp.pp_witness w)

let test_audit_witness () =
  (* fig2 with threshold 4 on both run edges but capacity 3 on the
     opposing chord: demand 2 * (4 - 1) = 6 > supply 3 - 1 = 2 *)
  let g = Topo_gen.fig2_triangle ~cap:3 in
  let thresholds = [| Some 4; Some 4; Some 1 |] in
  match Lp.audit g ~thresholds with
  | Ok () -> Alcotest.fail "expected a witness"
  | Error w ->
    Alcotest.(check int) "branch node" 0 w.Lp.wnode;
    Alcotest.(check int) "demand" 6 w.Lp.wdemand;
    Alcotest.(check int) "supply" 2 w.Lp.wsupply;
    Alcotest.(check (list int)) "chain edges" [ 0; 1 ]
      (List.map (fun (e : Graph.edge) -> e.id) w.Lp.wedges)

let suite =
  [
    Alcotest.test_case "rational basics" `Quick test_rational_basics;
    Alcotest.test_case "rational bignum" `Quick test_rational_bignum;
    rational_qcheck;
    Alcotest.test_case "simplex optimal" `Quick test_simplex_optimal;
    Alcotest.test_case "simplex degenerate" `Quick test_simplex_degenerate;
    Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex phase-1" `Quick test_simplex_phase1;
    Alcotest.test_case "simplex infeasible + Farkas" `Quick
      test_simplex_infeasible;
    Alcotest.test_case "LP route + finiteness" `Quick test_lp_route;
    Alcotest.test_case "bridges stay infinite" `Quick test_lp_bridges_inf;
    lp_self_audit_qcheck "random dense" random_dense_of_seed;
    lp_self_audit_qcheck "random chorded DAG" Tutil.random_dag_of_seed;
    lp_self_audit_qcheck "random CS4" (Tutil.random_cs4_of_seed ~max_blocks:2);
    lp_safety_qcheck "random dense" random_dense_of_seed Nonprop;
    lp_safety_qcheck "random dense" random_dense_of_seed Prop;
    lp_safety_qcheck "random dense" random_dense_of_seed Relay;
    lp_safety_qcheck "random split-join" split_join_of_seed Nonprop;
    lp_safety_qcheck "random split-join" split_join_of_seed Prop;
    lp_safety_qcheck "random split-join" split_join_of_seed Relay;
    Alcotest.test_case "tightness on small instances" `Quick
      test_tightness_small;
    Alcotest.test_case "min_buffers on a pipeline" `Quick
      test_min_buffers_pipeline;
    min_buffers_qcheck;
    Alcotest.test_case "audit witness decoding" `Quick test_audit_witness;
  ]
