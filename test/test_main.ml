let () =
  Alcotest.run "filterstream"
    [
      ("interval", Test_interval.suite);
      ("graph", Test_graph.suite);
      ("cycles", Test_cycles.suite);
      ("spdag", Test_spdag.suite);
      ("ladder", Test_ladder.suite);
      ("fig3", Test_fig3.suite);
      ("crossval", Test_crossval.suite);
      ("compiler", Test_compiler.suite);
      ("channel", Test_channel.suite);
      ("runtime", Test_runtime.suite);
      ("sched", Test_sched.suite);
      ("obs", Test_obs.suite);
      ("soundness", Test_soundness.suite);
      ("workloads", Test_workloads.suite);
      ("k4", Test_k4.suite);
      ("repair", Test_repair.suite);
      ("io", Test_io.suite);
      ("embedding", Test_embedding.suite);
      ("verify", Test_verify.suite);
      ("parallel", Test_parallel.suite);
      ("app", Test_app.suite);
      ("diagnosis", Test_diagnosis.suite);
      ("app_spec", Test_app_spec.suite);
      ("sizing", Test_sizing.suite);
      ("lint", Test_lint.suite);
      ("lp", Test_lp.suite);
      ("fusion", Test_fusion.suite);
      ("serve", Test_serve.suite);
      ("reconfigure", Test_reconfigure.suite);
    ]
