(* The observability layer's two load-bearing properties.

   Replay: a run's [Report.t] is a pure function of its event log —
   [Report.of_events] applied to the ring-buffered stream reproduces
   the engine's report bit-for-bit, across topology families,
   avoidance modes and both sequential schedulers. This is the proof
   that the event vocabulary is a complete account of a run.

   Conservation: the metrics registry folds the same log into
   aggregates that must agree with the report — per-edge data/dummy
   sums, watermarks bounded by capacity, and the dummy life-cycle
   (every emission is eventually delivered or dropped, up to the
   at-most-one in-flight slot a non-completed run can strand per
   channel). *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads
module Obs = Fstream_obs

let bernoulli_kernels g seed =
  let rng = Random.State.make [| seed; 0x0b5 |] in
  Filters.for_graph g (fun _ outs -> Filters.bernoulli rng ~keep:0.6 outs)

let wrappers g =
  let prop =
    match Compiler.compile Compiler.Propagation g with
    | Ok p ->
      [ Engine.Propagation (Compiler.propagation_thresholds g p.intervals) ]
    | Error _ -> []
  in
  let nonprop =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> [ Engine.Non_propagation (Compiler.send_thresholds g p.intervals) ]
    | Error _ -> []
  in
  (Engine.No_avoidance :: prop) @ nonprop

let logged_run ?scheduler g seed avoidance =
  let ring = Obs.Ring.create ~capacity:(1 lsl 20) () in
  let report =
    Engine.run ?scheduler ~sink:(Obs.Ring.sink ring) ~graph:g
      ~kernels:(bernoulli_kernels g seed) ~inputs:30 ~avoidance ()
  in
  assert (Obs.Ring.dropped ring = 0);
  (report, Obs.Ring.contents ring)

let replay_exact g seed =
  List.for_all
    (fun avoidance ->
      List.for_all
        (fun scheduler ->
          let report, events = logged_run ~scheduler g seed avoidance in
          Report.of_events ~graph:g events = report)
        [ Engine.Sweep; Engine.Ready ])
    (wrappers g)

let prop_replay_sp =
  Tutil.qtest ~count:300 "replay oracle: SP workloads" Tutil.seed_gen
    (fun seed -> replay_exact (Tutil.random_sp_of_seed seed) seed)

let prop_replay_ladder =
  Tutil.qtest ~count:300 "replay oracle: ladder workloads" Tutil.seed_gen
    (fun seed -> replay_exact (Tutil.random_ladder_of_seed seed) seed)

let count_emitted events =
  List.length
    (List.filter
       (function Obs.Event.Dummy_emitted _ -> true | _ -> false)
       events)

let prop_conservation =
  (* the dummy life-cycle and the per-edge aggregates, on random CS4
     topologies under Propagation (the mode with both forwarded and
     originated dummies) *)
  Tutil.qtest ~count:150 "metrics conservation" Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      match Compiler.compile Compiler.Propagation g with
      | Error _ -> true (* nothing to check *)
      | Ok p ->
        let avoidance =
          Engine.Propagation (Compiler.propagation_thresholds g p.intervals)
        in
        let report, events = logged_run g seed avoidance in
        let m = Obs.Metrics.of_events ~graph:g ~inputs:30 events in
        let sum f = Array.fold_left (fun a e -> a + f e) 0 m.edges in
        let emitted = count_emitted events in
        let delivered = report.dummy_messages
        and dropped = report.dropped_dummies in
        let in_flight_bound =
          match report.outcome with
          | Report.Completed -> 0 (* every slot drains before EOS retires *)
          | _ -> Fstream_graph.Graph.num_edges g
        in
        sum (fun e -> e.Obs.Metrics.data) = report.data_messages
        && sum (fun e -> e.Obs.Metrics.dummies) = report.dummy_messages
        && Array.for_all2
             (fun (e : Obs.Metrics.edge_metrics) (ge : Fstream_graph.Graph.edge) ->
               e.high_watermark >= 0 && e.high_watermark <= ge.cap
               && e.capacity = ge.cap)
             m.edges
             (Array.of_list (Fstream_graph.Graph.edges g))
        && delivered + dropped <= emitted
        && emitted <= delivered + dropped + in_flight_bound
        && m.events = List.length events)

let test_live_sink_equals_replay () =
  (* the incremental collector (usable as a sink during the run) and
     the post-hoc fold over the log agree *)
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let avoidance =
    match Compiler.compile Compiler.Propagation g with
    | Ok p -> Engine.Propagation (Compiler.propagation_thresholds g p.intervals)
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
  in
  let ring = Obs.Ring.create () in
  let c = Obs.Metrics.collector ~graph:g ~inputs:40 () in
  let sink = Obs.Sink.tee (Obs.Ring.sink ring) (Obs.Metrics.sink c) in
  let report =
    Engine.run ~sink ~graph:g ~kernels:(bernoulli_kernels g 7) ~inputs:40
      ~avoidance ()
  in
  Alcotest.(check bool) "run completed" true
    (report.Report.outcome = Report.Completed);
  Alcotest.(check bool) "collector = of_events" true
    (Obs.Metrics.result c
    = Obs.Metrics.of_events ~graph:g ~inputs:40 (Obs.Ring.contents ring))

let test_parallel_replay () =
  (* the parallel engine's interleaved log still reconstructs its
     report: counts are order-independent and the outcome rides the
     terminal [Run_finished] *)
  let g = Topo_gen.fig4_left ~cap:2 in
  let avoidance =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
  in
  let ring = Obs.Ring.create ~capacity:(1 lsl 20) () in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let report =
    Fstream_parallel.Parallel_engine.run ~sink:(Obs.Ring.sink ring) ~graph:g
      ~kernels ~inputs:50 ~avoidance ()
  in
  Alcotest.(check int) "complete log" 0 (Obs.Ring.dropped ring);
  Alcotest.(check bool) "parallel run completed" true
    (report.Report.outcome = Report.Completed);
  Alcotest.(check bool) "replay reconstructs the parallel report" true
    (Report.of_events ~graph:g (Obs.Ring.contents ring) = report)

let test_ring_eviction () =
  let r = Obs.Ring.create ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Ring.push r (Obs.Event.Round_started { round = i })
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Ring.length r);
  Alcotest.(check int) "evictions counted" 6 (Obs.Ring.dropped r);
  Alcotest.(check bool) "keeps the most recent" true
    (Obs.Ring.contents r
    = List.map (fun round -> Obs.Event.Round_started { round }) [ 7; 8; 9; 10 ])

let test_thresholds_fingerprint () =
  (* a threshold table is bound to the graph it was compiled for *)
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let other = Topo_gen.pipeline ~stages:3 ~cap:2 in
  let t = Thresholds.of_array g [| Some 1; Some 1; Some 4 |] in
  Thresholds.check t g;
  (* same edge count, different topology: the fingerprint must differ *)
  Alcotest.(check bool) "foreign graph rejected" true
    (try
       Thresholds.check t other;
       false
     with Invalid_argument _ -> true);
  let kernels =
    Filters.for_graph other (fun _ outs -> Filters.passthrough outs)
  in
  Alcotest.(check bool) "engine refuses a foreign table" true
    (try
       ignore
         (Engine.run ~graph:other ~kernels ~inputs:1
            ~avoidance:(Engine.Non_propagation t) ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "live sink = replayed fold" `Quick
      test_live_sink_equals_replay;
    Alcotest.test_case "parallel replay" `Quick test_parallel_replay;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "thresholds fingerprint" `Quick
      test_thresholds_fingerprint;
    prop_replay_sp;
    prop_replay_ladder;
    prop_conservation;
  ]
