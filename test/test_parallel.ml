(* The sharded domain-pool runtime: nodes as lightweight tasks over a
   fixed worker pool, deadlock detected by exact quiescence. The
   differential suites lean on the Kahn-network argument: for kernels
   whose decisions depend only on their own node's firing history, the
   data computation — outcome included — is schedule-independent, so
   the pool must reproduce the sequential engine's data/sink counts
   whatever the interleaving (dummy traffic is timing-driven and stays
   out of the comparisons). *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads
module Graph = Fstream_graph.Graph
module P = Fstream_parallel.Parallel_engine
module Metrics = Fstream_obs.Metrics
module Ring = Fstream_obs.Ring
module Sink = Fstream_obs.Sink

let fig2_kernels g =
  Filters.for_graph g (fun v outs ->
      if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)

let test_fig2_deadlocks () =
  (* no watchdog: the structural quiescence check alone must catch the
     wedge, and Kahn determinism pins its traffic exactly *)
  let g = Topo_gen.fig2_triangle ~cap:2 in
  List.iter
    (fun domains ->
      let s =
        P.run ~domains ~graph:g ~kernels:(fig2_kernels g) ~inputs:50
          ~avoidance:Engine.No_avoidance ()
      in
      Alcotest.(check bool) "deadlocked across domains" true
        (s.outcome = Report.Deadlocked);
      Alcotest.(check int)
        "wedged with the same traffic as the sequential engine" 7
        s.data_messages)
    [ 1; 2; 4 ]

let test_fig2_avoided () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  match Compiler.compile Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    let s =
      P.run ~domains:2 ~graph:g ~kernels:(fig2_kernels g) ~inputs:50
        ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
        ()
    in
    Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
    Alcotest.(check int) "all data delivered" 50 s.sink_data

let test_matches_sequential_engine () =
  let g = Topo_gen.fig4_left ~cap:2 in
  let kernels () =
    Filters.for_graph g (fun v outs ->
        if v = 1 then Filters.periodic ~keep_every:3 outs
        else Filters.passthrough outs)
  in
  match Compiler.compile Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    let avoidance =
      Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
    in
    let seq = Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:60 ~avoidance () in
    let par =
      P.run ~domains:3 ~graph:g ~kernels:(kernels ()) ~inputs:60 ~avoidance ()
    in
    Alcotest.(check bool) "both complete" true
      (seq.Report.outcome = Report.Completed && par.outcome = Report.Completed);
    Alcotest.(check int) "same data count" seq.Report.data_messages
      par.data_messages;
    Alcotest.(check int) "same sink deliveries" seq.Report.sink_data
      par.sink_data

let test_pipeline_parallel () =
  let g = Topo_gen.pipeline ~stages:6 ~cap:2 in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let s =
    P.run ~domains:2 ~graph:g ~kernels ~inputs:200
      ~avoidance:Engine.No_avoidance ()
  in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "all delivered" 200 s.sink_data

(* The old runtime rejected graphs with more than 64 nodes (one domain
   per node); the pool takes a 4096-node pipeline on 4 workers. *)
let test_node_cap_gone () =
  let g = Topo_gen.pipeline ~stages:4095 ~cap:2 in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let s =
    P.run ~domains:4 ~graph:g ~kernels ~inputs:8 ~avoidance:Engine.No_avoidance
      ()
  in
  Alcotest.(check bool) "4096-node pipeline completes" true
    (s.outcome = Report.Completed);
  Alcotest.(check int) "every hop forwarded" (8 * 4095) s.data_messages;
  Alcotest.(check int) "all delivered" 8 s.sink_data

let test_large_cs4_chain () =
  let rng = Tutil.rng_of 7 in
  let g = Topo_gen.random_cs4 rng ~blocks:120 ~block_edges:22 ~max_cap:4 in
  Alcotest.(check bool) "graph is >= 1000 nodes" true (Graph.num_nodes g >= 1000);
  match Compiler.compile Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    let kernels () =
      Filters.for_graph g (fun v outs ->
          if v mod 3 = 1 then Filters.periodic ~keep_every:3 outs
          else Filters.passthrough outs)
    in
    let avoidance =
      Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
    in
    let seq = Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:20 ~avoidance () in
    let par =
      P.run ~domains:4 ~graph:g ~kernels:(kernels ()) ~inputs:20 ~avoidance ()
    in
    Alcotest.(check bool) "both complete" true
      (seq.Report.outcome = Report.Completed && par.outcome = Report.Completed);
    Alcotest.(check int) "same data count" seq.Report.data_messages
      par.data_messages;
    Alcotest.(check int) "same sink deliveries" seq.Report.sink_data
      par.sink_data

(* Regression for the false-deadlock bug: the old watchdog only watched
   the push/pop counter, so a kernel computing past [stall_ms] aborted
   the run. The backstop now also requires zero in-flight kernels; a
   kernel sleeping far beyond the window must not trip it. *)
let test_slow_kernel_no_false_deadlock () =
  let g = Topo_gen.pipeline ~stages:2 ~cap:2 in
  let kernels v =
    if v = 1 then fun ~seq:_ ~got:_ ->
      Unix.sleepf 0.06;
      List.map (fun (e : Graph.edge) -> e.id) (Graph.out_edges g 1)
    else Filters.for_graph g (fun _ outs -> Filters.passthrough outs) v
  in
  let s =
    P.run ~domains:2 ~stall_ms:20 ~graph:g ~kernels ~inputs:3
      ~avoidance:Engine.No_avoidance ()
  in
  Alcotest.(check bool) "slow kernel still completes" true
    (s.outcome = Report.Completed);
  Alcotest.(check int) "nothing lost" 3 s.sink_data

(* Blocking episodes: [Blocked] fires once when a node's sends park on
   a full channel, not once per retry/wakeup. A cap-1 pipeline with a
   slow sink forces the producers to block on nearly every firing; the
   per-node count stays bounded by firings, and the live collector
   agrees exactly with the replayed ring log. *)
let test_blocked_once_per_episode () =
  let inputs = 12 in
  let g = Topo_gen.pipeline ~stages:2 ~cap:1 in
  let kernels v =
    if v = 2 then fun ~seq:_ ~got:_ ->
      Unix.sleepf 0.004;
      []
    else Filters.for_graph g (fun _ outs -> Filters.passthrough outs) v
  in
  let ring = Ring.create ~capacity:2048 () in
  let c = Metrics.collector ~graph:g ~inputs () in
  let s =
    P.run ~domains:2 ~graph:g ~kernels ~inputs
      ~sink:(Sink.tee (Ring.sink ring) (Metrics.sink c))
      ~avoidance:Engine.No_avoidance ()
  in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "ring kept the whole log" 0 (Ring.dropped ring);
  let live = Metrics.result c in
  let replay = Metrics.of_events ~graph:g ~inputs (Ring.contents ring) in
  Alcotest.(check (array int)) "blocked visits: collector = replay"
    replay.Metrics.blocked_visits live.Metrics.blocked_visits;
  Alcotest.(check (array int)) "firings: collector = replay"
    replay.Metrics.fired live.Metrics.fired;
  Alcotest.(check int) "same event count" replay.Metrics.events
    live.Metrics.events;
  (* one episode at most per firing (inputs + EOS); spurious-wakeup
     re-emission would multiply this by the retry count *)
  Array.iteri
    (fun v b ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d blocked episodes bounded by firings" v)
        true
        (b <= inputs + 2))
    live.Metrics.blocked_visits

(* Kernel-output validation on the parallel path: linear in the number
   of returned ids (owner table), not a scan of the out-edge list per
   id. Same shape as the sequential wide-split regression. *)
let test_wide_split_parallel () =
  let branches = 600 in
  let edges =
    List.init branches (fun i -> (0, 1 + i, 2))
    @ List.init branches (fun i -> (1 + i, branches + 1, 2))
  in
  let g = Graph.make ~nodes:(branches + 2) edges in
  let out0 =
    List.map (fun (e : Graph.edge) -> e.id) (Graph.out_edges g 0)
  in
  let passthrough = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let kernels v =
    if v = 0 then fun ~seq:_ ~got:_ -> out0 @ out0 else passthrough v
  in
  let s =
    P.run ~domains:2 ~graph:g ~kernels ~inputs:8 ~avoidance:Engine.No_avoidance
      ()
  in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "duplicates coalesced: one send per edge per seq"
    (8 * 2 * branches) s.data_messages;
  Alcotest.(check int) "join consumed every branch" (8 * branches) s.sink_data;
  let stolen v = if v = 1 then fun ~seq:_ ~got:_ -> out0 else passthrough v in
  Alcotest.check_raises "foreign edge id rejected"
    (Invalid_argument
       (Printf.sprintf "Parallel_engine: kernel of node 1 returned edge %d"
          (List.hd out0)))
    (fun () ->
      ignore
        (P.run ~domains:2 ~graph:g ~kernels:stolen ~inputs:1
           ~avoidance:Engine.No_avoidance ()))

(* ----- differential qcheck: pool vs sequential engine ----- *)

let graph_of_family seed =
  match seed mod 3 with
  | 0 -> Tutil.random_sp_of_seed ~max_edges:24 seed
  | 1 -> Tutil.random_ladder_of_seed ~max_rungs:8 seed
  | _ -> Tutil.random_cs4_of_seed seed

let domains_of seed = match seed / 3 mod 3 with 0 -> 1 | 1 -> 2 | _ -> 4

(* node-deterministic kernels, rebuilt identically for each engine:
   per-node RNG (thread-safe and schedule-independent) plus periodic
   relays *)
let mixed_kernels g seed () =
  Filters.for_graph g (fun v outs ->
      match v mod 3 with
      | 0 -> Filters.bernoulli (Random.State.make [| seed; v |]) ~keep:0.7 outs
      | 1 -> Filters.periodic ~keep_every:(2 + (seed mod 3)) outs
      | _ -> Filters.passthrough outs)

(* paper-pattern filtering (sources and single-output relays only) —
   the regime where Propagation is sound, so completion itself is
   schedule-independent *)
let paper_pattern_kernels g seed () =
  Filters.for_graph g (fun v outs ->
      if Graph.in_degree g v = 0 || Graph.out_degree g v = 1 then
        Filters.bernoulli (Random.State.make [| seed; v |]) ~keep:0.6 outs
      else Filters.passthrough outs)

let prop_no_avoidance_agrees =
  Tutil.qtest ~count:18 "pool = sequential under no avoidance (wedges too)"
    Tutil.seed_gen (fun seed ->
      let g = graph_of_family seed in
      let kernels = mixed_kernels g seed in
      let seq =
        Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:30
          ~avoidance:Engine.No_avoidance ()
      in
      let par =
        P.run ~domains:(domains_of seed) ~graph:g ~kernels:(kernels ())
          ~inputs:30 ~avoidance:Engine.No_avoidance ()
      in
      seq.Report.outcome = par.Report.outcome
      && seq.Report.data_messages = par.Report.data_messages
      && seq.Report.sink_data = par.Report.sink_data)

let prop_non_propagation_agrees =
  Tutil.qtest ~count:18 "pool = sequential under non-propagation"
    Tutil.seed_gen (fun seed ->
      let g = graph_of_family seed in
      match Compiler.compile Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        let avoidance =
          Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
        in
        let kernels = mixed_kernels g seed in
        let seq =
          Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:30 ~avoidance ()
        in
        let par =
          P.run ~domains:(domains_of seed) ~graph:g ~kernels:(kernels ())
            ~inputs:30 ~avoidance ()
        in
        seq.Report.outcome = Report.Completed
        && par.Report.outcome = Report.Completed
        && seq.Report.data_messages = par.Report.data_messages
        && seq.Report.sink_data = par.Report.sink_data)

let prop_propagation_agrees =
  Tutil.qtest ~count:18
    "pool = sequential under propagation (paper-pattern filtering)"
    Tutil.seed_gen (fun seed ->
      let g = graph_of_family seed in
      match Compiler.compile Compiler.Propagation g with
      | Error _ -> true (* family outside the wrapper's domain: skip *)
      | Ok p ->
        let avoidance =
          Engine.Propagation (Compiler.propagation_thresholds g p.intervals)
        in
        let kernels = paper_pattern_kernels g seed in
        let seq =
          Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:30 ~avoidance ()
        in
        let par =
          P.run ~domains:(domains_of seed) ~graph:g ~kernels:(kernels ())
            ~inputs:30 ~avoidance ()
        in
        seq.Report.outcome = Report.Completed
        && par.Report.outcome = Report.Completed
        && seq.Report.data_messages = par.Report.data_messages
        && seq.Report.sink_data = par.Report.sink_data)

(* one deterministic big instance per run: a >= 512-node ladder checked
   at every pool width *)
let test_big_ladder_differential () =
  let rng = Tutil.rng_of 7 in
  let g = Topo_gen.random_ladder rng ~rungs:130 ~segment_edges:5 ~max_cap:4 in
  Alcotest.(check bool) "graph is >= 512 nodes" true (Graph.num_nodes g >= 512);
  match Compiler.compile Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    let avoidance =
      Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
    in
    let kernels = mixed_kernels g 41 in
    let seq = Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:20 ~avoidance () in
    Alcotest.(check bool) "sequential completes" true
      (seq.Report.outcome = Report.Completed);
    List.iter
      (fun domains ->
        let par =
          P.run ~domains ~graph:g ~kernels:(kernels ()) ~inputs:20 ~avoidance ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "pool completes with %d domains" domains)
          true
          (par.Report.outcome = Report.Completed);
        Alcotest.(check int)
          (Printf.sprintf "data count at %d domains" domains)
          seq.Report.data_messages par.Report.data_messages;
        Alcotest.(check int)
          (Printf.sprintf "sink count at %d domains" domains)
          seq.Report.sink_data par.Report.sink_data)
      [ 1; 2; 4 ]

let prop_avoidance_sound_in_parallel =
  Tutil.qtest ~count:15 "non-propagation sound across domains" Tutil.seed_gen
    (fun seed ->
      let rng = Tutil.rng_of seed in
      let g =
        Topo_gen.random_cs4 rng
          ~blocks:(1 + Random.State.int rng 2)
          ~block_edges:6 ~max_cap:3
      in
      Graph.num_nodes g > 20
      ||
      match Compiler.compile Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        let kseed = Random.State.int rng 1_000_000 in
        let kernels =
          Filters.for_graph g (fun v outs ->
              let r = Random.State.make [| kseed; v |] in
              Filters.bernoulli r ~keep:0.6 outs)
        in
        let s =
          P.run ~domains:(domains_of seed) ~graph:g ~kernels ~inputs:40
            ~avoidance:
              (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
            ()
        in
        s.outcome = Report.Completed)

let suite =
  [
    Alcotest.test_case "fig2 deadlocks across domains" `Quick
      test_fig2_deadlocks;
    Alcotest.test_case "fig2 avoided across domains" `Quick test_fig2_avoided;
    Alcotest.test_case "matches sequential engine" `Quick
      test_matches_sequential_engine;
    Alcotest.test_case "pipeline flows in parallel" `Quick
      test_pipeline_parallel;
    Alcotest.test_case "64-node cap gone: 4096-node pipeline" `Quick
      test_node_cap_gone;
    Alcotest.test_case "1k-node cs4 chain matches sequential" `Quick
      test_large_cs4_chain;
    Alcotest.test_case "slow kernel is not a deadlock" `Quick
      test_slow_kernel_no_false_deadlock;
    Alcotest.test_case "blocked emitted once per episode" `Quick
      test_blocked_once_per_episode;
    Alcotest.test_case "wide split node (parallel)" `Quick
      test_wide_split_parallel;
    Alcotest.test_case "512-node ladder differential" `Quick
      test_big_ladder_differential;
    prop_no_avoidance_agrees;
    prop_non_propagation_agrees;
    prop_propagation_agrees;
    prop_avoidance_sound_in_parallel;
  ]
