(* The shared-memory parallel engine: one domain per node, genuinely
   blocking sends. Deadlocks (and their avoidance) here are real
   concurrency phenomena, detected by a stall watchdog. *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads
module P = Fstream_parallel.Parallel_engine

let fig2_kernels g =
  Filters.for_graph g (fun v outs ->
      if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)

let test_fig2_deadlocks () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let s =
    P.run ~stall_ms:100 ~graph:g ~kernels:(fig2_kernels g) ~inputs:50
      ~avoidance:Engine.No_avoidance ()
  in
  Alcotest.(check bool) "deadlocked across domains" true
    (s.outcome = Report.Deadlocked);
  Alcotest.(check int) "wedged with the same traffic as the sequential engine"
    7 s.data_messages

let test_fig2_avoided () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  match Compiler.plan Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    let s =
      P.run ~stall_ms:100 ~graph:g ~kernels:(fig2_kernels g) ~inputs:50
        ~avoidance:(Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
        ()
    in
    Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
    Alcotest.(check int) "all data delivered" 50 s.sink_data

let test_matches_sequential_engine () =
  (* deterministic kernels: message counts are schedule-independent, so
     the parallel run must reproduce the sequential engine's stats *)
  let g = Topo_gen.fig4_left ~cap:2 in
  let kernels () =
    Filters.for_graph g (fun v outs ->
        if v = 1 then Filters.periodic ~keep_every:3 outs
        else Filters.passthrough outs)
  in
  match Compiler.plan Compiler.Non_propagation g with
  | Error e -> Alcotest.fail (Compiler.error_to_string e)
  | Ok p ->
    let avoidance =
      Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
    in
    let seq = Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:60 ~avoidance () in
    let par =
      P.run ~stall_ms:150 ~graph:g ~kernels:(kernels ()) ~inputs:60 ~avoidance ()
    in
    Alcotest.(check bool) "both complete" true
      (seq.Report.outcome = Report.Completed && par.outcome = Report.Completed);
    Alcotest.(check int) "same data count" seq.Report.data_messages
      par.data_messages;
    Alcotest.(check int) "same sink deliveries" seq.Report.sink_data
      par.sink_data

let test_pipeline_parallel () =
  let g = Topo_gen.pipeline ~stages:6 ~cap:2 in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let s =
    P.run ~stall_ms:100 ~graph:g ~kernels ~inputs:200
      ~avoidance:Engine.No_avoidance ()
  in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "all delivered" 200 s.sink_data

let test_node_limit () =
  let g = Topo_gen.pipeline ~stages:70 ~cap:1 in
  Alcotest.check_raises "too many nodes rejected"
    (Invalid_argument "Parallel_engine.run: more than 64 nodes") (fun () ->
      ignore
        (P.run ~graph:g
           ~kernels:(Filters.for_graph g (fun _ o -> Filters.passthrough o))
           ~inputs:1 ~avoidance:Engine.No_avoidance ()))

let prop_avoidance_sound_in_parallel =
  (* randomized soundness under real concurrency: per-node RNG keeps
     kernels thread-safe *)
  Tutil.qtest ~count:15 "non-propagation sound across domains"
    Tutil.seed_gen (fun seed ->
      let rng = Tutil.rng_of seed in
      let g =
        Topo_gen.random_cs4 rng
          ~blocks:(1 + Random.State.int rng 2)
          ~block_edges:6 ~max_cap:3
      in
      Fstream_graph.Graph.num_nodes g > 20
      ||
      match Compiler.plan Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        let kseed = Random.State.int rng 1_000_000 in
        let kernels =
          Filters.for_graph g (fun v outs ->
              let r = Random.State.make [| kseed; v |] in
              Filters.bernoulli r ~keep:0.6 outs)
        in
        let s =
          P.run ~stall_ms:150 ~graph:g ~kernels ~inputs:40
            ~avoidance:
              (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
            ()
        in
        s.outcome = Report.Completed)

let prop_engines_agree_on_deterministic_kernels =
  (* deterministic filtering makes the delivered message multiset
     schedule-independent: both engines must agree exactly *)
  Tutil.qtest ~count:15 "parallel = sequential on deterministic kernels"
    Tutil.seed_gen (fun seed ->
      let rng = Tutil.rng_of seed in
      let g =
        Topo_gen.random_cs4 rng
          ~blocks:(1 + Random.State.int rng 2)
          ~block_edges:6 ~max_cap:3
      in
      Fstream_graph.Graph.num_nodes g > 16
      ||
      match Compiler.plan Compiler.Non_propagation g with
      | Error _ -> false
      | Ok p ->
        let period = 2 + Random.State.int rng 3 in
        let kernels () =
          Filters.for_graph g (fun v outs ->
              if v mod 2 = 0 then Filters.periodic ~keep_every:period outs
              else Filters.passthrough outs)
        in
        let avoidance =
          Engine.Non_propagation (Compiler.send_thresholds g p.intervals)
        in
        let seq =
          Engine.run ~graph:g ~kernels:(kernels ()) ~inputs:30 ~avoidance ()
        in
        let par =
          P.run ~stall_ms:150 ~graph:g ~kernels:(kernels ()) ~inputs:30
            ~avoidance ()
        in
        seq.Report.outcome = Report.Completed
        && par.outcome = Report.Completed
        && seq.Report.data_messages = par.data_messages
        && seq.Report.sink_data = par.sink_data)

let suite =
  [
    Alcotest.test_case "fig2 deadlocks across domains" `Quick
      test_fig2_deadlocks;
    Alcotest.test_case "fig2 avoided across domains" `Quick test_fig2_avoided;
    Alcotest.test_case "matches sequential engine" `Quick
      test_matches_sequential_engine;
    Alcotest.test_case "pipeline flows in parallel" `Quick
      test_pipeline_parallel;
    Alcotest.test_case "node limit" `Quick test_node_limit;
    prop_avoidance_sound_in_parallel;
    prop_engines_agree_on_deterministic_kernels;
  ]
