(* Hot-reconfiguration differential suites.

   Layer 1 (this file's foundation): the memoized context recursion of
   [Sp_incremental] computes, leaf-by-leaf in a single visit, exactly
   the values the classic multi-visit updates accumulate — bit-for-bit,
   per algorithm, on every SP tree the recognizer produces. Everything
   incremental rests on that equivalence.

   Layer 2: applying a random edit script and recompiling incrementally
   (splicing clean blocks, memo-skipping clean subtrees, warm-starting
   the LP) is bit-for-bit the table a full recompile of the edited
   graph produces, across the three avoidance algorithms and the
   graph families of the paper.

   Layer 3: the serving layer — reconfigure-then-run behaves exactly
   like admitting the edited topology fresh, the epoch/stat counters
   move, and a mid-run reconfigure drains to the run boundary instead
   of corrupting the in-flight session. *)

open Fstream_graph
open Fstream_spdag
open Fstream_core

let algos = [ ("prop", Sp_incremental.Prop); ("nonprop", Sp_incremental.Nonprop);
              ("relay", Sp_incremental.Relay) ]

let classic_update algo ivals tree =
  match algo with
  | Sp_incremental.Prop -> Sp_prop.update ivals tree
  | Sp_incremental.Nonprop -> Sp_nonprop.update ivals tree
  | Sp_incremental.Relay -> Sp_nonprop.update_relay ivals tree

(* Layer 1: single-visit context recursion == classic accumulation. *)
let ctx_equivalence (name, algo) =
  Tutil.qtest ~count:300 (Printf.sprintf "ctx recursion == classic (%s)" name)
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_sp_of_seed seed in
      match Sp_recognize.recognize g with
      | Error _ -> QCheck.assume_fail ()
      | Ok tree ->
        let n = Graph.num_edges g in
        let classic = Array.make n Interval.inf in
        classic_update algo classic tree;
        let incr = Array.make n Interval.inf in
        let prev = Sp_incremental.memo_create ()
        and next = Sp_incremental.memo_create () in
        let recomputed, skipped =
          Sp_incremental.update algo ~prev ~next incr tree
        in
        Tutil.check_intervals "table" classic incr;
        Alcotest.(check int) "all leaves recomputed" n recomputed;
        Alcotest.(check int) "nothing skipped" 0 skipped;
        true)

(* With [prev] = the entries just recorded and the table left in
   place, a second run must skip everything at the root. *)
let ctx_skip (name, algo) =
  Tutil.qtest ~count:200 (Printf.sprintf "full memo skips all (%s)" name)
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_sp_of_seed seed in
      match Sp_recognize.recognize g with
      | Error _ -> QCheck.assume_fail ()
      | Ok tree ->
        let n = Graph.num_edges g in
        let ivals = Array.make n Interval.inf in
        let e0 = Sp_incremental.memo_create () in
        let m1 = Sp_incremental.memo_create () in
        ignore (Sp_incremental.update algo ~prev:e0 ~next:m1 ivals tree);
        let m2 = Sp_incremental.memo_create () in
        let recomputed, skipped =
          Sp_incremental.update algo ~prev:m1 ~next:m2 ivals tree
        in
        Alcotest.(check int) "nothing recomputed" 0 recomputed;
        Alcotest.(check int) "all leaves skipped" n skipped;
        true)

(* ================= Layer 2: recompile == full compile ================= *)

module Topo_gen = Fstream_workloads.Topo_gen

let calgos =
  [ ("prop", Compiler.Propagation); ("nonprop", Compiler.Non_propagation);
    ("relay", Compiler.Relay_propagation) ]

let families =
  [ ("sp", fun seed -> Tutil.random_sp_of_seed seed);
    ("ladder", fun seed -> Tutil.random_ladder_of_seed seed);
    ("cs4", fun seed -> Tutil.random_cs4_of_seed seed) ]

(* A random, sequentially valid edit script: each candidate op is
   generated blindly against the graph as edited so far and kept only
   if [Edit.apply] accepts it — per-op validity composes, so the whole
   script is valid on the base graph. Scripts may still break
   compilability (disconnect the graph, add a back edge): those cases
   exercise the error path of the differential, where incremental and
   full compilation must fail identically. *)
let random_ops rng g0 =
  let cur = ref g0 and ops = ref [] in
  let n = 1 + Random.State.int rng 4 in
  for _ = 1 to n do
    let g = !cur in
    let ne = Graph.num_edges g and nn = Graph.num_nodes g in
    let cap () = 1 + Random.State.int rng 6 in
    let candidate =
      match Random.State.int rng 5 with
      | 0 -> Edit.Resize { edge = Random.State.int rng ne; cap = cap () }
      | 1 ->
        (* bias forward (generator node ids are topological) so most
           scripts stay acyclic; a removal can still disconnect *)
        let a = Random.State.int rng nn and b = Random.State.int rng nn in
        Edit.Add_edge { src = min a b; dst = max a b; cap = cap () }
      | 2 when ne > 1 -> Edit.Remove_edge { edge = Random.State.int rng ne }
      | 3 ->
        Edit.Add_stage
          { edge = Random.State.int rng ne; cap_in = cap (); cap_out = cap () }
      | _ -> Edit.Remove_stage { node = Random.State.int rng nn; cap = None }
    in
    match Edit.apply g [ candidate ] with
    | Ok d ->
      ops := candidate :: !ops;
      cur := d.Edit.graph
    | Error _ -> ()
  done;
  List.rev !ops

(* One differential round: recompile through the cache against a full
   compile of the edited graph. Exact route is bit-for-bit; errors must
   agree too (a script that breaks compilability breaks it for both). *)
let check_exact_round ?options cache algorithm delta =
  let incr = Compiler.recompile ?options cache algorithm delta in
  let full = Compiler.compile ?options algorithm delta.Edit.graph in
  match (incr, full) with
  | Ok (pi, stats), Ok pf ->
    Tutil.check_intervals "incremental == full" pf.Compiler.intervals
      pi.Compiler.intervals;
    (match pi.Compiler.route with
    | Compiler.Cs4_route _ ->
      Alcotest.(check int) "splice + recompute covers the graph"
        (Graph.num_edges delta.Edit.graph)
        (stats.Compiler.spliced_edges + stats.Compiler.recomputed_edges)
    | _ -> ());
    true
  | Error e1, Error e2 ->
    Alcotest.(check string)
      "incremental and full fail identically"
      (Compiler.error_to_string e2)
      (Compiler.error_to_string e1);
    true
  | Ok _, Error e ->
    Alcotest.failf "incremental Ok but full compile failed: %s"
      (Compiler.error_to_string e)
  | Error e, Ok _ ->
    Alcotest.failf "full compile Ok but incremental failed: %s"
      (Compiler.error_to_string e)

(* Two rounds of random edits through one cache — the second round
   chains epochs, so it also covers recompiling from a recompiled
   snapshot (and from a poisoned one, when round 1 failed). *)
let exact_incr_eq_full (aname, algorithm) (fname, family) =
  Tutil.qtest ~count:300
    (Printf.sprintf "incremental == full compile (%s, %s)" aname fname)
    Tutil.seed_gen (fun seed ->
      let g0 = family seed in
      let rng = Tutil.rng_of (seed + 0xed17) in
      let cache = Compiler.cache_create () in
      match Compiler.compile_cached cache algorithm g0 with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ -> (
        match Edit.apply g0 (random_ops rng g0) with
        | Error e -> Alcotest.failf "generator produced an invalid script: %s" e
        | Ok delta ->
          let ok1 = check_exact_round cache algorithm delta in
          let g1 = delta.Edit.graph in
          (match Edit.apply g1 (random_ops rng g1) with
          | Error e ->
            Alcotest.failf "generator produced an invalid script: %s" e
          | Ok delta2 -> ignore (check_exact_round cache algorithm delta2));
          ok1))

(* Capacity A -> B -> A across three epochs: the per-epoch memo swap
   must not let epoch-0 residue leak stale values into epoch 2. *)
let exact_resize_back (aname, algorithm) =
  Tutil.qtest ~count:150
    (Printf.sprintf "resize there and back is exact (%s)" aname)
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      let e0 = Graph.edge g 0 in
      let cache = Compiler.cache_create () in
      match Compiler.compile_cached cache algorithm g with
      | Error _ -> QCheck.assume_fail ()
      | Ok (p0, _) -> (
        match Edit.apply g [ Edit.Resize { edge = 0; cap = e0.Graph.cap + 3 } ]
        with
        | Error e -> Alcotest.fail e
        | Ok d1 ->
          ignore (check_exact_round cache algorithm d1);
          (match
             Edit.apply d1.Edit.graph
               [ Edit.Resize { edge = 0; cap = e0.Graph.cap } ]
           with
          | Error e -> Alcotest.fail e
          | Ok d2 -> (
            ignore (check_exact_round cache algorithm d2);
            match Compiler.cache_plan cache with
            | None -> Alcotest.fail "no plan after three epochs"
            | Some p2 ->
              Tutil.check_intervals "epoch 2 == epoch 0" p0.Compiler.intervals
                p2.Compiler.intervals));
          true))

(* Remove the last edge, re-add an identical record, resize elsewhere:
   the id-stability aliasing regression — a recreated record must never
   satisfy a memo lookup over array positions the pre-copy skipped. *)
let exact_remove_readd (aname, algorithm) =
  Tutil.qtest ~count:150
    (Printf.sprintf "remove/re-add same record (%s)" aname)
    Tutil.seed_gen (fun seed ->
      let g = Tutil.random_cs4_of_seed seed in
      let last = Graph.num_edges g - 1 in
      let e = Graph.edge g last in
      let ops =
        [
          Edit.Remove_edge { edge = last };
          Edit.Add_edge { src = e.Graph.src; dst = e.Graph.dst; cap = e.Graph.cap };
          Edit.Resize { edge = 0; cap = 1 + (seed mod 6) };
        ]
      in
      let cache = Compiler.cache_create () in
      match Compiler.compile_cached cache algorithm g with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ -> (
        match Edit.apply g ops with
        | Error _ -> QCheck.assume_fail ()
        | Ok delta -> check_exact_round cache algorithm delta))

(* ----- the LP route: objective-equal, not vertex-equal ----- *)

let lp_options =
  { Compiler.Options.default with Compiler.Options.backend = Compiler.Lp }

(* Spliced components are bit-identical to a cold solve (same program,
   same Bland pivot sequence); warm-started components may stop at a
   different optimal vertex of the same polytope. The sound contract:
   the Inf set (structural: bridges) agrees, the total interval mass
   (finite-edge rational sum = component count + LP objectives) agrees,
   and the incremental table sits inside the LP's safe polytope. *)
let rational_sum ivals =
  Array.fold_left
    (fun acc (iv : Interval.t) ->
      match iv with
      | Interval.Fin { num; den } -> Rational.add acc (Rational.make num den)
      | Interval.Inf -> acc)
    Rational.zero ivals

let same_inf_set a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i iv ->
      if Interval.is_finite iv <> Interval.is_finite b.(i) then ok := false)
    a;
  !ok

let lp_incr_eq_full (fname, family) =
  Tutil.qtest ~count:300
    (Printf.sprintf "LP incremental objective-equal to full (%s)" fname)
    Tutil.seed_gen (fun seed ->
      let g0 = family seed in
      let rng = Tutil.rng_of (seed + 0x1b) in
      let cache = Compiler.cache_create () in
      match
        Compiler.compile_cached ~options:lp_options cache
          Compiler.Non_propagation g0
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ -> (
        match Edit.apply g0 (random_ops rng g0) with
        | Error e -> Alcotest.fail e
        | Ok delta -> (
          let incr =
            Compiler.recompile ~options:lp_options cache
              Compiler.Non_propagation delta
          in
          let full =
            Compiler.compile ~options:lp_options Compiler.Non_propagation
              delta.Edit.graph
          in
          match (incr, full) with
          | Ok (pi, _), Ok pf ->
            Alcotest.(check bool) "Inf sets equal" true
              (same_inf_set pf.Compiler.intervals pi.Compiler.intervals);
            Alcotest.(check bool) "objective sums equal" true
              (Rational.equal
                 (rational_sum pf.Compiler.intervals)
                 (rational_sum pi.Compiler.intervals));
            (* the incremental table is on the LP's safe polytope *)
            (match
               Lp.audit delta.Edit.graph
                 ~thresholds:
                   (Array.map Interval.threshold pi.Compiler.intervals)
             with
            | Ok () -> ()
            | Error w ->
              Alcotest.failf "incremental LP table fails audit: %a"
                (fun ppf -> Lp.pp_witness ppf)
                w);
            true
          | Error e1, Error e2 ->
            Compiler.error_to_string e1 = Compiler.error_to_string e2
          | Ok _, Error e ->
            Alcotest.failf "incremental Ok but full failed: %s"
              (Compiler.error_to_string e)
          | Error e, Ok _ ->
            Alcotest.failf "full Ok but incremental failed: %s"
              (Compiler.error_to_string e))))

(* The warm-start payoff the acceptance bar names: on layered-dense, a
   single-edge resize re-solved from the previous basis spends strictly
   fewer pivots than solving the edited program cold. *)
let test_warm_fewer_pivots () =
  let g = Topo_gen.layered_dense ~layers:5 ~width:3 ~cap:2 in
  let _, base, st = Lp.resolve g in
  Alcotest.(check bool) "cold base solve pivots" true (base.Lp.rpivots > 0);
  match Edit.apply g [ Edit.Resize { edge = 0; cap = 3 } ] with
  | Error e -> Alcotest.fail e
  | Ok d ->
    let wivals, w, _ =
      Lp.resolve ~warm:st ~edge_map:d.Edit.edge_map ~node_map:d.Edit.node_map
        ~dirty:d.Edit.dirty d.Edit.graph
    in
    let civals, c, _ = Lp.resolve d.Edit.graph in
    Alcotest.(check bool) "warm re-solved a component" true (w.Lp.rwarm >= 1);
    Alcotest.(check bool)
      (Printf.sprintf "warm (%d) strictly fewer pivots than cold (%d)"
         w.Lp.rpivots c.Lp.rpivots)
      true
      (w.Lp.rpivots < c.Lp.rpivots);
    Alcotest.(check bool) "Inf sets equal" true (same_inf_set civals wivals);
    Alcotest.(check bool) "objective sums equal" true
      (Rational.equal (rational_sum civals) (rational_sum wivals))

(* Where the Auto backend can afford both routes, its table must be
   the edge-wise minimum of the exact and LP tables — safety is
   downward-closed, so the min of two safe tables is safe — and still
   on the LP's safe polytope. *)
let auto_options =
  { Compiler.Options.default with Compiler.Options.backend = Compiler.Auto }

let auto_min_combine (fname, family) =
  Tutil.qtest ~count:300
    (Printf.sprintf "auto = edge-wise min of exact and lp (%s)" fname)
    Tutil.seed_gen (fun seed ->
      let g = family seed in
      let plan options =
        match Compiler.compile ~options Compiler.Non_propagation g with
        | Ok p -> p.Compiler.intervals
        | Error e ->
          Alcotest.failf "compile rejected: %s" (Compiler.error_to_string e)
      in
      let exact = plan Compiler.Options.default in
      let lp = plan lp_options in
      let auto = plan auto_options in
      Array.iteri
        (fun i v ->
          if not (Interval.equal v (Interval.min exact.(i) lp.(i))) then
            QCheck.Test.fail_reportf "edge %d: auto is not min(exact, lp)" i)
        auto;
      (match
         Lp.audit g ~thresholds:(Array.map Interval.threshold auto)
       with
      | Ok () -> ()
      | Error w ->
        Alcotest.failf "auto table fails audit: %a"
          (fun ppf -> Lp.pp_witness ppf)
          w);
      true)

(* ================= Layer 3: the serving layer ================= *)

module Serve = Fstream_serve.Serve
module Engine = Fstream_runtime.Engine
module Report = Fstream_runtime.Report
module Filters = Fstream_runtime.Filters

(* Two long-lived servers: [server] absorbs the reconfigurations,
   [fresh] only ever sees fresh admissions — so comparing the two is
   comparing reconfigure-then-serve against admit-the-edited-graph,
   with no registry cross-talk. *)
let server =
  lazy
    (let t = Serve.create ~domains:2 () in
     at_exit (fun () -> Serve.shutdown t);
     t)

let fresh =
  lazy
    (let t = Serve.create ~domains:2 () in
     at_exit (fun () -> Serve.shutdown t);
     t)

let graph_of_family seed =
  match seed mod 3 with
  | 0 -> Tutil.random_sp_of_seed ~max_edges:24 seed
  | 1 -> Tutil.random_ladder_of_seed ~max_rungs:8 seed
  | _ -> Tutil.random_cs4_of_seed seed

let table_of = function
  | Engine.No_avoidance -> None
  | Engine.Propagation th | Engine.Non_propagation th ->
    Some (Thresholds.to_array th)

let modes =
  [ ("no-avoidance", Serve.No_avoidance); ("prop", Serve.Propagation);
    ("nonprop", Serve.Non_propagation) ]

let reconfigure_eq_fresh_admit (mname, mode) =
  Tutil.qtest ~count:100
    (Printf.sprintf "reconfigure == fresh admission (%s)" mname)
    Tutil.seed_gen (fun seed ->
      let t = Lazy.force server and t2 = Lazy.force fresh in
      let g0 = graph_of_family seed in
      let rng = Tutil.rng_of (seed + 0xa11) in
      match Serve.admit t ~mode g0 with
      | Error _ -> true (* inadmissible topology: nothing to reconfigure *)
      | Ok s -> (
        let ops = random_ops rng g0 in
        match Serve.reconfigure t s ops with
        | Error _ ->
          (* refused scripts leave the session untouched on its epoch *)
          Serve.epoch s = 0
        | Ok _ -> (
          let g1 = Serve.graph s in
          match Serve.admit t2 ~mode g1 with
          | Error _ -> false (* reconfigure admitted what admission rejects *)
          | Ok s2 -> table_of (Serve.avoidance s) = table_of (Serve.avoidance s2)
          )))

(* Stale-verdict regression (the bug this PR's keying fixes): the same
   server must not serve one backend's cached lint verdict or table to
   a tenant admitted under another backend. FS201 on the butterfly is
   an Error under Exact and a Warning under Lp. *)
let test_lint_cache_keyed_by_backend () =
  let t = Serve.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  (match Serve.admit t ~mode:Serve.Non_propagation g with
  | Ok _ -> Alcotest.fail "butterfly admitted under the Exact backend"
  | Error (Serve.Lint_rejected _) -> ()
  | Error r ->
    Alcotest.failf "wrong rejection: %a" (fun ppf -> Serve.pp_rejection ppf) r);
  (* same server, same fingerprint, Lp backend: must re-lint, not
     replay the cached Error verdict *)
  match Serve.admit t ~backend:Compiler.Lp ~mode:Serve.Non_propagation g with
  | Ok s -> (
    match Serve.avoidance s with
    | Engine.Non_propagation _ -> ()
    | _ -> Alcotest.fail "Lp admission produced no table")
  | Error r ->
    Alcotest.failf "butterfly rejected under the Lp backend: %a"
      (fun ppf -> Serve.pp_rejection ppf)
      r

(* Registry keying: same (fingerprint, mode, backend) shares one table
   physically; a different backend is a different entry. *)
let test_registry_keyed_by_backend () =
  let t = Serve.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
  let g = Topo_gen.fig4_left ~cap:2 in
  let admit ?backend () =
    match Serve.admit t ?backend ~mode:Serve.Non_propagation g with
    | Ok s -> s
    | Error r ->
      Alcotest.failf "fig4_left rejected: %a"
        (fun ppf -> Serve.pp_rejection ppf)
        r
  in
  let s1 = admit () in
  let s2 = admit () in
  let s3 = admit ~backend:Compiler.Lp () in
  Alcotest.(check bool) "same key shares physically" true
    (Serve.avoidance s1 == Serve.avoidance s2);
  Alcotest.(check bool) "different backend, different table" true
    (Serve.avoidance s1 != Serve.avoidance s3);
  Alcotest.(check int) "one compile per key" 2 (Serve.stats t).Serve.compiles

(* Epoch stamping and admission-desk counters across a reconfigure. *)
let test_epoch_and_counters () =
  let t = Serve.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
  let g = Topo_gen.fig4_left ~cap:2 in
  match Serve.admit t ~mode:Serve.Non_propagation g with
  | Error r ->
    Alcotest.failf "fig4_left rejected: %a"
      (fun ppf -> Serve.pp_rejection ppf)
      r
  | Ok s ->
    Alcotest.(check int) "admitted at epoch 0" 0 (Serve.epoch s);
    (match Serve.avoidance s with
    | Engine.Non_propagation th ->
      Alcotest.(check int) "table stamped epoch 0" 0 (Thresholds.epoch th)
    | _ -> Alcotest.fail "expected a threshold table");
    (match Serve.reconfigure t s [ Edit.Resize { edge = 0; cap = 4 } ] with
    | Ok (Some stats) ->
      Alcotest.(check bool) "the recompile did some work" true
        (stats.Compiler.spliced_edges + stats.Compiler.recomputed_edges > 0)
    | Ok None -> Alcotest.fail "expected an incremental recompile"
    | Error r ->
      Alcotest.failf "reconfigure refused: %a"
        (fun ppf -> Serve.pp_rejection ppf)
        r);
    Alcotest.(check int) "session at epoch 1" 1 (Serve.epoch s);
    (match Serve.avoidance s with
    | Engine.Non_propagation th ->
      Alcotest.(check int) "table stamped epoch 1" 1 (Thresholds.epoch th)
    | _ -> Alcotest.fail "expected a threshold table");
    let st = Serve.stats t in
    Alcotest.(check int) "recompile counted" 1 st.Serve.recompiles;
    Alcotest.(check int) "no LP pivots under the Exact backend" 0
      st.Serve.warm_pivots

(* Same, under the Lp backend: the warm-pivot counter is fed by the
   re-solve's cumulative pivot count. *)
let test_lp_reconfigure_counters () =
  let t = Serve.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
  let g = Topo_gen.fig4_left ~cap:2 in
  match Serve.admit t ~backend:Compiler.Lp ~mode:Serve.Non_propagation g with
  | Error r ->
    Alcotest.failf "fig4_left rejected under Lp: %a"
      (fun ppf -> Serve.pp_rejection ppf)
      r
  | Ok s -> (
    match Serve.reconfigure t s [ Edit.Resize { edge = 0; cap = 4 } ] with
    | Ok (Some stats) -> (
      match stats.Compiler.lp_stats with
      | None -> Alcotest.fail "Lp backend recompile carried no LP stats"
      | Some lp ->
        Alcotest.(check bool) "the LP touched a component" true
          (lp.Lp.rspliced + lp.Lp.rwarm + lp.Lp.rcold >= 1);
        Alcotest.(check int) "pivots surfaced on the server counter"
          lp.Lp.rpivots (Serve.stats t).Serve.warm_pivots)
    | Ok None -> Alcotest.fail "expected an incremental recompile"
    | Error r ->
      Alcotest.failf "reconfigure refused: %a"
        (fun ppf -> Serve.pp_rejection ppf)
        r)

(* Mid-run reconfigure: drains the in-flight run to its boundary (the
   drained report stays cached, even for a concurrent awaiter), swaps
   epochs atomically, and the restarted session runs the new topology. *)
let test_midrun_reconfigure_drains () =
  let t = Serve.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
  let g = Topo_gen.pipeline ~stages:4 ~cap:2 in
  match Serve.admit t ~mode:Serve.Non_propagation g with
  | Error r ->
    Alcotest.failf "pipeline rejected: %a"
      (fun ppf -> Serve.pp_rejection ppf)
      r
  | Ok s ->
    let inputs = 3000 in
    let kernels () =
      Filters.for_graph (Serve.graph s) (fun _ outs -> Filters.passthrough outs)
    in
    Serve.start t ~kernels:(kernels ()) ~inputs s;
    (* one racing awaiter, one racing reconfigure *)
    let awaiter = Domain.spawn (fun () -> Serve.await s) in
    (match Serve.reconfigure t s [ Edit.Resize { edge = 0; cap = 3 } ] with
    | Ok _ -> ()
    | Error r ->
      Alcotest.failf "mid-run reconfigure refused: %a"
        (fun ppf -> Serve.pp_rejection ppf)
        r);
    let r_conc = Domain.join awaiter in
    let r_cached = Serve.await s in
    Alcotest.(check bool) "drained report cached (physically)" true
      (r_conc == r_cached);
    Alcotest.(check bool) "drained run completed" true
      (r_cached.Report.outcome = Report.Completed);
    Alcotest.(check int) "drained run delivered everything" inputs
      r_cached.Report.sink_data;
    Alcotest.(check int) "swapped to epoch 1" 1 (Serve.epoch s);
    (* restart on the new epoch: kernels rebuilt against the session's
       current graph *)
    Serve.start t ~kernels:(kernels ()) ~inputs:64 s;
    let r2 = Serve.await s in
    Alcotest.(check bool) "restarted run completed" true
      (r2.Report.outcome = Report.Completed);
    Alcotest.(check int) "restarted run delivered everything" 64
      r2.Report.sink_data

let suite =
  List.map ctx_equivalence algos
  @ List.map ctx_skip algos
  @ List.concat_map
      (fun a -> List.map (exact_incr_eq_full a) families)
      calgos
  @ List.map exact_resize_back calgos
  @ List.map exact_remove_readd calgos
  @ List.map lp_incr_eq_full families
  @ List.map auto_min_combine families
  @ [
      Alcotest.test_case "warm resize beats cold on layered-dense" `Quick
        test_warm_fewer_pivots;
    ]
  @ List.map reconfigure_eq_fresh_admit modes
  @ [
      Alcotest.test_case "lint verdicts keyed by backend" `Quick
        test_lint_cache_keyed_by_backend;
      Alcotest.test_case "registry keyed by backend, shared within" `Quick
        test_registry_keyed_by_backend;
      Alcotest.test_case "epochs stamped, counters advance" `Quick
        test_epoch_and_counters;
      Alcotest.test_case "LP reconfigure feeds warm-pivot counter" `Quick
        test_lp_reconfigure_counters;
      Alcotest.test_case "mid-run reconfigure drains to the boundary" `Quick
        test_midrun_reconfigure_drains;
    ]
