open Fstream_core
open Fstream_runtime
open Fstream_workloads

let test_channel () =
  let c = Channel.create ~capacity:2 in
  Alcotest.(check bool) "empty at start" true (Channel.is_empty c);
  Alcotest.(check bool) "push 0" true (Channel.push c (Message.data ~seq:0 0));
  Alcotest.(check bool) "push 1" true (Channel.push c (Message.dummy ~seq:1));
  Alcotest.(check bool) "full now" true (Channel.is_full c);
  Alcotest.(check bool) "push on full fails" false
    (Channel.push c (Message.data ~seq:2 2));
  Alcotest.(check int) "dummies counted" 1 (Channel.dummies_pushed c);
  Alcotest.(check int) "data counted" 1 (Channel.data_pushed c);
  (match Channel.pop c with
  | Some m -> Alcotest.(check int) "FIFO head" 0 m.Message.seq
  | None -> Alcotest.fail "expected a message");
  Alcotest.check_raises "non-monotone sequence rejected"
    (Invalid_argument "Channel.push: sequence numbers must increase")
    (fun () -> ignore (Channel.push c (Message.data ~seq:1 1)))

let test_channel_validation () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Channel.create: capacity < 1") (fun () ->
      ignore (Channel.create ~capacity:0))

let run_fig2 avoidance =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  Engine.run ~graph:g ~kernels ~inputs:25 ~avoidance ()

let test_fig2_deadlock () =
  let s = run_fig2 Engine.No_avoidance in
  Alcotest.(check bool) "deadlocks without avoidance" true
    (s.outcome = Report.Deadlocked);
  Alcotest.(check int) "no dummies sent" 0 s.dummy_messages

let test_fig2_avoided () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  (match Compiler.compile Compiler.Propagation g with
  | Ok p ->
    let s =
      run_fig2 (Engine.Propagation (Compiler.propagation_thresholds g p.intervals))
    in
    Alcotest.(check bool) "propagation completes" true
      (s.outcome = Report.Completed);
    Alcotest.(check int) "all data delivered to sink" 25 s.sink_data;
    Alcotest.(check bool) "some dummies were needed" true (s.dummy_messages > 0)
  | Error e -> Alcotest.fail (Compiler.error_to_string e));
  match Compiler.compile Compiler.Non_propagation g with
  | Ok p ->
    let s =
      run_fig2 (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
    in
    Alcotest.(check bool) "non-propagation completes" true
      (s.outcome = Report.Completed);
    Alcotest.(check int) "all data delivered to sink" 25 s.sink_data
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let test_no_filtering_never_deadlocks () =
  (* without filtering the DAG behaves like SDF: no avoidance needed *)
  let g = Topo_gen.fig4_left ~cap:1 in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let s = Engine.run ~graph:g ~kernels ~inputs:50 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "sink consumed both channels each seq" 100 s.sink_data

let test_drop_all_is_safe_on_pipeline () =
  (* a pipeline has no cycles; filtering everything simply starves the
     sink but the run still terminates via EOS *)
  let g = Topo_gen.pipeline ~stages:3 ~cap:2 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 1 then Filters.drop_all outs else Filters.passthrough outs)
  in
  let s = Engine.run ~graph:g ~kernels ~inputs:30 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "nothing reached the sink" 0 s.sink_data

let test_periodic_filter () =
  let g = Topo_gen.pipeline ~stages:2 ~cap:3 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.periodic ~keep_every:3 outs
        else Filters.passthrough outs)
  in
  let s = Engine.run ~graph:g ~kernels ~inputs:30 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "every third input survives" 10 s.sink_data

let test_determinism () =
  let g = Topo_gen.fig1_split_join ~branches:3 ~cap:2 in
  let mk seed =
    let rng = Random.State.make [| seed |] in
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.route_one rng outs else Filters.passthrough outs)
  in
  let thresholds =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> Compiler.send_thresholds g p.intervals
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
  in
  let run () =
    Engine.run ~graph:g ~kernels:(mk 7) ~inputs:40
      ~avoidance:(Engine.Non_propagation thresholds) ()
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical stats across runs" true (a = b)

let test_kernel_validation () =
  let g = Topo_gen.pipeline ~stages:2 ~cap:1 in
  let kernels _ ~seq:_ ~got:_ = [ 99 ] in
  Alcotest.check_raises "invalid out edge rejected"
    (Invalid_argument "Engine: kernel of node 0 returned edge 99") (fun () ->
      ignore (Engine.run ~graph:g ~kernels ~inputs:1 ~avoidance:Engine.No_avoidance ()))

let test_route_one_conservation () =
  (* a router sends each input to exactly one branch: the join sees
     exactly one data message per sequence number *)
  let g = Topo_gen.fig1_split_join ~branches:4 ~cap:2 in
  let rng = Random.State.make [| 11 |] in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.route_one rng outs else Filters.passthrough outs)
  in
  let thresholds =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> Compiler.send_thresholds g p.intervals
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
  in
  let s =
    Engine.run ~graph:g ~kernels ~inputs:60
      ~avoidance:(Engine.Non_propagation thresholds) ()
  in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "one data message per input at the join" 60 s.sink_data

let test_dummy_slots_coalesce () =
  (* with very tight thresholds and heavy filtering, superseded dummies
     are counted rather than lost *)
  let g = Topo_gen.fig2_triangle ~cap:1 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  let s =
    Engine.run ~graph:g ~kernels ~inputs:40
      ~avoidance:
        (Engine.Propagation (Thresholds.of_array g [| Some 1; Some 1; Some 1 |]))
      ()
  in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check bool) "dummy accounting is consistent" true
    (s.dummy_messages >= 0 && s.dropped_dummies >= 0)

let test_multiple_sources () =
  (* two independent sources feeding a shared join: the model presents
     each input sequence number at every source *)
  let g =
    Fstream_graph.Graph.make ~nodes:4
      [ (0, 2, 2); (1, 2, 2); (2, 3, 2) ]
  in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let s = Engine.run ~graph:g ~kernels ~inputs:25 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "sink sees one merged message per seq" 25 s.sink_data

let test_budget_exhausted () =
  let g = Topo_gen.pipeline ~stages:2 ~cap:1 in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let s =
    Engine.run ~max_rounds:1 ~graph:g ~kernels ~inputs:100
      ~avoidance:Engine.No_avoidance ()
  in
  Alcotest.(check bool) "budget reported" true
    (s.outcome = Report.Budget_exhausted)

let test_deadlock_dump_smoke () =
  (* the diagnostic dump must render without raising *)
  let g = Topo_gen.fig2_triangle ~cap:1 in
  let kernels =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let s =
    Engine.run ~deadlock_dump:ppf ~graph:g ~kernels ~inputs:10
      ~avoidance:Engine.No_avoidance ()
  in
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "deadlocked" true (s.outcome = Report.Deadlocked);
  Alcotest.(check bool) "dump mentions the empty channel" true
    (Buffer.length buf > 0)

let test_wide_split () =
  (* Regression for kernel-output validation cost: it used to scan the
     node's out-edge list once per returned id (quadratic in fan-out);
     the per-edge ownership table makes it linear. A 2000-way split
     whose kernel returns its full edge set — duplicated, which must
     coalesce to one send per edge — has to complete and deliver every
     sequence number on every branch. *)
  let branches = 2000 in
  let edges =
    List.init branches (fun i -> (0, 1 + i, 2))
    @ List.init branches (fun i -> (1 + i, branches + 1, 2))
  in
  let g = Fstream_graph.Graph.make ~nodes:(branches + 2) edges in
  let out0 =
    List.map
      (fun (e : Fstream_graph.Graph.edge) -> e.id)
      (Fstream_graph.Graph.out_edges g 0)
  in
  let passthrough = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let kernels v =
    if v = 0 then fun ~seq:_ ~got:_ -> out0 @ out0 else passthrough v
  in
  let s = Engine.run ~graph:g ~kernels ~inputs:8 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "completed" true (s.outcome = Report.Completed);
  Alcotest.(check int) "duplicates coalesced: one send per edge per seq"
    (8 * 2 * branches) s.data_messages;
  Alcotest.(check int) "join consumed every branch" (8 * branches) s.sink_data;
  (* ownership, not just range: an id belonging to another node must be
     rejected even though it is a valid edge id *)
  let stolen v = if v = 1 then fun ~seq:_ ~got:_ -> out0 else passthrough v in
  Alcotest.check_raises "foreign edge id rejected"
    (Invalid_argument
       (Printf.sprintf "Engine: kernel of node 1 returned edge %d"
          (List.hd out0)))
    (fun () ->
      ignore
        (Engine.run ~graph:g ~kernels:stolen ~inputs:1
           ~avoidance:Engine.No_avoidance ()))

let test_zero_inputs () =
  let g = Topo_gen.fig4_left ~cap:1 in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  let s = Engine.run ~graph:g ~kernels ~inputs:0 ~avoidance:Engine.No_avoidance () in
  Alcotest.(check bool) "empty stream drains" true (s.outcome = Report.Completed);
  Alcotest.(check int) "no data" 0 s.data_messages

let suite =
  [
    Alcotest.test_case "channel basics" `Quick test_channel;
    Alcotest.test_case "channel validation" `Quick test_channel_validation;
    Alcotest.test_case "fig2 deadlocks bare" `Quick test_fig2_deadlock;
    Alcotest.test_case "fig2 avoided by both wrappers" `Quick test_fig2_avoided;
    Alcotest.test_case "no filtering, no deadlock" `Quick
      test_no_filtering_never_deadlocks;
    Alcotest.test_case "acyclic drop-all terminates" `Quick
      test_drop_all_is_safe_on_pipeline;
    Alcotest.test_case "periodic filter" `Quick test_periodic_filter;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "kernel validation" `Quick test_kernel_validation;
    Alcotest.test_case "router conservation" `Quick test_route_one_conservation;
    Alcotest.test_case "dummy slots coalesce" `Quick test_dummy_slots_coalesce;
    Alcotest.test_case "multiple sources" `Quick test_multiple_sources;
    Alcotest.test_case "budget exhausted" `Quick test_budget_exhausted;
    Alcotest.test_case "deadlock dump" `Quick test_deadlock_dump_smoke;
    Alcotest.test_case "wide split node" `Quick test_wide_split;
    Alcotest.test_case "zero inputs" `Quick test_zero_inputs;
  ]
