(* Differential testing of the event-driven ready-queue scheduler
   against the reference sweep scheduler: identical [Report.t]
   (outcome, rounds, message counts, per-edge dummy counts, wedge
   snapshot) on randomized workloads and on the paper's figure
   topologies, under all three avoidance modes. This is the oracle that
   licenses making [Ready] the default.

   Every [Ready] run passes [~dense_below:0]: the production default
   routes small graphs to the sweep loop (bench §C6), which would make
   these differential checks vacuous at test sizes. *)

open Fstream_core
open Fstream_runtime
open Fstream_workloads

(* Fresh kernels per run: the engines mutate nothing shared, but the
   Bernoulli filters draw from an RNG, so each engine needs its own
   identically-seeded copy. *)
let bernoulli_kernels g seed =
  let rng = Random.State.make [| seed; 0xd1f |] in
  Filters.for_graph g (fun _ outs -> Filters.bernoulli rng ~keep:0.6 outs)

let wrappers g =
  let none = Some Engine.No_avoidance in
  let prop =
    match Compiler.compile Compiler.Propagation g with
    | Ok p ->
      Some (Engine.Propagation (Compiler.propagation_thresholds g p.intervals))
    | Error _ -> None
  in
  let nonprop =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> Some (Engine.Non_propagation (Compiler.send_thresholds g p.intervals))
    | Error _ -> None
  in
  [ none; prop; nonprop ]

let same_stats ?batch g ~kernels_of ~inputs avoidance =
  let run scheduler =
    Engine.run ?batch ~scheduler ~dense_below:0 ~graph:g
      ~kernels:(kernels_of ()) ~inputs
      ~avoidance ()
  in
  run Engine.Ready = run Engine.Sweep

let differential ?batch ?(inputs = 30) g seed =
  List.for_all
    (function
      | None -> true
      | Some avoidance ->
        same_stats ?batch g
          ~kernels_of:(fun () -> bernoulli_kernels g seed)
          ~inputs avoidance)
    (wrappers g)

let prop_sp =
  Tutil.qtest ~count:300 "ready = sweep on random SP workloads"
    Tutil.seed_gen
    (fun seed -> differential (Tutil.random_sp_of_seed seed) seed)

let prop_ladder =
  Tutil.qtest ~count:300 "ready = sweep on random ladder workloads"
    Tutil.seed_gen
    (fun seed -> differential (Tutil.random_ladder_of_seed seed) seed)

(* The ready≡sweep oracle must survive batched firing too: at equal
   [batch] the two schedulers execute the same visits. *)
let prop_batch_sched =
  Tutil.qtest ~count:200 "ready = sweep at batch 4 on random SP workloads"
    Tutil.seed_gen
    (fun seed -> differential ~batch:4 (Tutil.random_sp_of_seed seed) seed)

(* What batching may and may not change (see Engine.run doc). The
   guarantee needs kernels that are deterministic in their *own* node's
   firing history — [bernoulli_kernels] shares one RNG across all
   nodes, so its decisions depend on global invocation order, which
   batching legitimately reshuffles. With node-local RNGs the model is
   a Kahn network and the computation itself is batch-invariant:
   outcome, data and sink counts under [No_avoidance], and data/sink
   counts on every run that completes. Dummy traffic is timing-driven
   (slot flushes and threshold checks happen at whatever moment a node
   fires) and is deliberately left unconstrained here; under
   [Propagation] on workloads outside its soundness preconditions even
   the outcome can shift with it. *)
let node_local_kernels g seed =
  Filters.for_graph g (fun v outs ->
      Filters.bernoulli
        (Random.State.make [| seed; v; 0xd1f |])
        ~keep:0.6 outs)

let batch_invariant g seed =
  List.for_all
    (function
      | None -> true
      | Some avoidance ->
        let run batch =
          Engine.run ~batch ~graph:g
            ~kernels:(node_local_kernels g seed)
            ~inputs:30 ~avoidance ()
        in
        let r1 = run 1 and rk = run (2 + (seed mod 6)) in
        let pure = avoidance = Engine.No_avoidance in
        let both_completed =
          r1.Report.outcome = Report.Completed
          && rk.Report.outcome = Report.Completed
        in
        (not pure || r1.Report.outcome = rk.Report.outcome)
        && (not (pure || both_completed)
           || r1.data_messages = rk.data_messages
              && r1.sink_data = rk.sink_data))
    (wrappers g)

let prop_batch_invariance =
  Tutil.qtest ~count:200 "batching preserves the computation"
    Tutil.seed_gen
    (fun seed -> batch_invariant (Tutil.random_ladder_of_seed seed) seed)

(* Directed cases: the paper's figure topologies with their canonical
   workloads, checked field by field for a readable failure. *)
let check_identical name ~kernels_of ~inputs g avoidance =
  let run scheduler =
    Engine.run ~scheduler ~dense_below:0 ~graph:g ~kernels:(kernels_of ())
      ~inputs ~avoidance ()
  in
  let r = run Engine.Ready and s = run Engine.Sweep in
  Alcotest.(check bool)
    (name ^ ": outcome") true
    (r.Report.outcome = s.Report.outcome);
  Alcotest.(check (option int)) (name ^ ": rounds") (Report.rounds s)
    (Report.rounds r);
  Alcotest.(check int) (name ^ ": data") s.data_messages r.data_messages;
  Alcotest.(check int) (name ^ ": dummies") s.dummy_messages r.dummy_messages;
  Alcotest.(check int) (name ^ ": sink data") s.sink_data r.sink_data;
  Alcotest.(check int) (name ^ ": dropped") s.dropped_dummies r.dropped_dummies;
  Alcotest.(check (array int))
    (name ^ ": per-edge dummies") s.per_edge_dummies r.per_edge_dummies;
  Alcotest.(check bool) (name ^ ": wedge") true
    (Report.wedge r = Report.wedge s);
  r

let test_fig1 () =
  let g = Topo_gen.fig1_split_join ~branches:4 ~cap:2 in
  let kernels_of () =
    let rng = Random.State.make [| 11 |] in
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.route_one rng outs else Filters.passthrough outs)
  in
  let thresholds =
    match Compiler.compile Compiler.Non_propagation g with
    | Ok p -> Compiler.send_thresholds g p.intervals
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
  in
  let s =
    check_identical "fig1" ~kernels_of ~inputs:60 g
      (Engine.Non_propagation thresholds)
  in
  Alcotest.(check bool) "fig1 completes" true (s.Report.outcome = Report.Completed)

let test_fig2 () =
  let g = Topo_gen.fig2_triangle ~cap:2 in
  let kernels_of () =
    Filters.for_graph g (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  (* bare: both engines must wedge in the same round with the same
     frozen snapshot *)
  let s = check_identical "fig2 bare" ~kernels_of ~inputs:25 g Engine.No_avoidance in
  Alcotest.(check bool) "fig2 deadlocks bare" true (s.Report.outcome = Report.Deadlocked);
  Alcotest.(check bool) "wedge captured" true (Report.wedge s <> None);
  (* protected: both complete with the same dummy traffic *)
  match Compiler.compile Compiler.Propagation g with
  | Ok p ->
    let s =
      check_identical "fig2 propagation" ~kernels_of ~inputs:25 g
        (Engine.Propagation (Compiler.propagation_thresholds g p.intervals))
    in
    Alcotest.(check bool) "fig2 avoided" true (s.Report.outcome = Report.Completed)
  | Error e -> Alcotest.fail (Compiler.error_to_string e)

let test_eos_vs_deadlock () =
  (* the discrimination the EOS machinery exists for: a starved sink is
     a completed (drained) run on an acyclic pipeline, a genuine wedge
     on the Fig. 2 cycle — the ready scheduler must not mistake its own
     empty worklist for either *)
  let pipeline = Topo_gen.pipeline ~stages:3 ~cap:2 in
  let drop_all_of () =
    Filters.for_graph pipeline (fun v outs ->
        if v = 1 then Filters.drop_all outs else Filters.passthrough outs)
  in
  let s =
    check_identical "starved pipeline" ~kernels_of:drop_all_of ~inputs:30
      pipeline Engine.No_avoidance
  in
  Alcotest.(check bool) "drained, not deadlocked" true
    (s.Report.outcome = Report.Completed);
  Alcotest.(check int) "sink starved" 0 s.sink_data;
  let fig2 = Topo_gen.fig2_triangle ~cap:2 in
  let blocking_of () =
    Filters.for_graph fig2 (fun v outs ->
        if v = 0 then Filters.block_edge 2 outs else Filters.passthrough outs)
  in
  let s =
    check_identical "fig2 wedge" ~kernels_of:blocking_of ~inputs:30 fig2
      Engine.No_avoidance
  in
  Alcotest.(check bool) "deadlocked, not drained" true
    (s.Report.outcome = Report.Deadlocked)

let test_budget_parity () =
  (* Budget_exhausted must trip on the same round for both engines *)
  let g = Topo_gen.pipeline ~stages:4 ~cap:1 in
  let kernels_of () =
    Filters.for_graph g (fun _ outs -> Filters.passthrough outs)
  in
  let run scheduler =
    Engine.run ~scheduler ~dense_below:0 ~max_rounds:7 ~graph:g
      ~kernels:(kernels_of ())
      ~inputs:100 ~avoidance:Engine.No_avoidance ()
  in
  let r = run Engine.Ready and s = run Engine.Sweep in
  Alcotest.(check bool) "both out of budget" true
    (r.Report.outcome = Report.Budget_exhausted
    && s.Report.outcome = Report.Budget_exhausted);
  Alcotest.(check bool) "identical stats at the budget" true (r = s)

(* ------------------------------------------------------------------ *)
(* Dummy accounting regression: the wrapper semantics the scheduler
   rewrite must not disturb. Every dummy a node decides to emit
   (forwarded under Propagation, or originated by a threshold coming
   due) enters the per-channel dummy slot; from there it is either
   delivered (counted in [per_edge_dummies] / [dummy_messages]) or
   superseded (counted in [dropped_dummies]). Conservation: on a
   completed run, emitted = delivered + dropped, and both engines
   agree on every term. *)

let dummy_emissions ring =
  List.length
    (List.filter
       (function Fstream_obs.Event.Dummy_emitted _ -> true | _ -> false)
       (Fstream_obs.Ring.contents ring))

let test_dummy_accounting () =
  (* a seeded S1-style workload: random CS4 topology, Bernoulli
     filtering everywhere, Propagation wrapper so both forwarded and
     originated dummies occur *)
  let rng = Random.State.make [| 31337; 6 |] in
  let g = Topo_gen.random_cs4 rng ~blocks:3 ~block_edges:6 ~max_cap:3 in
  let avoidance =
    match Compiler.compile Compiler.Propagation g with
    | Ok p -> Engine.Propagation (Compiler.propagation_thresholds g p.intervals)
    | Error e -> Alcotest.fail (Compiler.error_to_string e)
  in
  let traced scheduler =
    let ring = Fstream_obs.Ring.create () in
    let s =
      Engine.run ~scheduler ~dense_below:0 ~sink:(Fstream_obs.Ring.sink ring)
        ~graph:g
        ~kernels:(bernoulli_kernels g 424242) ~inputs:80 ~avoidance ()
    in
    Alcotest.(check int) "complete event log" 0 (Fstream_obs.Ring.dropped ring);
    (s, dummy_emissions ring)
  in
  let check name ((s : Report.t), emitted) =
    Alcotest.(check bool) (name ^ ": completed") true
      (s.Report.outcome = Report.Completed);
    Alcotest.(check int)
      (name ^ ": per-edge dummies sum to the total")
      s.dummy_messages
      (Array.fold_left ( + ) 0 s.per_edge_dummies);
    Alcotest.(check int)
      (name ^ ": emitted = delivered + dropped")
      emitted
      (s.dummy_messages + s.dropped_dummies);
    Alcotest.(check bool)
      (name ^ ": dropped bounded by emitted")
      true
      (s.dropped_dummies <= emitted);
    Alcotest.(check bool) (name ^ ": dummies were exercised") true (emitted > 0)
  in
  let (rs, re) = traced Engine.Ready and (ss, se) = traced Engine.Sweep in
  check "ready" (rs, re);
  check "sweep" (ss, se);
  Alcotest.(check int) "same emission count" se re;
  Alcotest.(check bool) "same stats" true (rs = ss)

let suite =
  [
    Alcotest.test_case "fig1 split/join" `Quick test_fig1;
    Alcotest.test_case "fig2 triangle" `Quick test_fig2;
    Alcotest.test_case "EOS vs deadlock" `Quick test_eos_vs_deadlock;
    Alcotest.test_case "budget parity" `Quick test_budget_parity;
    Alcotest.test_case "dummy accounting" `Quick test_dummy_accounting;
    prop_sp;
    prop_ladder;
    prop_batch_sched;
    prop_batch_invariance;
  ]
