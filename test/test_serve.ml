(* The multi-tenant serving layer: admission control (lint at the front
   door), the compile-once registry (physically shared threshold tables
   across fingerprint-equal tenants), and serve-session execution being
   nothing but the pool behind the Run facade — pinned by differential
   suites against direct Run.exec on both engines. *)

open Fstream_runtime
open Fstream_workloads
module Graph = Fstream_graph.Graph
module Serve = Fstream_serve.Serve
module Lint = Fstream_analysis.Lint

(* One long-lived server shared by the property suites (its pool's
   domains are joined at exit); tests asserting exact counter values
   create their own. *)
let server =
  lazy
    (let t = Serve.create ~domains:2 () in
     at_exit (fun () -> Serve.shutdown t);
     t)

let graph_of_family seed =
  match seed mod 3 with
  | 0 -> Tutil.random_sp_of_seed ~max_edges:24 seed
  | 1 -> Tutil.random_ladder_of_seed ~max_rungs:8 seed
  | _ -> Tutil.random_cs4_of_seed seed

(* node-deterministic kernels, rebuilt identically for every engine *)
let mixed_kernels g seed () =
  Filters.for_graph g (fun v outs ->
      match v mod 3 with
      | 0 -> Filters.bernoulli (Random.State.make [| seed; v |]) ~keep:0.7 outs
      | 1 -> Filters.periodic ~keep_every:(2 + (seed mod 3)) outs
      | _ -> Filters.passthrough outs)

(* paper-pattern filtering (sources and single-output relays only) —
   the regime where the Propagation wrapper is sound *)
let paper_pattern_kernels g seed () =
  Filters.for_graph g (fun v outs ->
      if Graph.in_degree g v = 0 || Graph.out_degree g v = 1 then
        Filters.bernoulli (Random.State.make [| seed; v |]) ~keep:0.6 outs
      else Filters.passthrough outs)

(* ----- registry: one compile, physical sharing ----- *)

(* Two tenants whose graphs are distinct values but fingerprint-equal
   (same generator, same seed) must receive the physically same
   avoidance value — same [Thresholds.t], compiled once. *)
let prop_registry_shares_physically =
  Tutil.qtest ~count:60 "fingerprint-equal tenants share one table (==)"
    Tutil.seed_gen (fun seed ->
      let t = Lazy.force server in
      let g1 = graph_of_family seed in
      let g2 = graph_of_family seed in
      let before = (Serve.stats t).Serve.compiles in
      match
        ( Serve.admit t ~mode:Serve.Non_propagation g1,
          Serve.admit t ~mode:Serve.Non_propagation g2 )
      with
      | Ok s1, Ok s2 ->
        let after = (Serve.stats t).Serve.compiles in
        Serve.avoidance s1 == Serve.avoidance s2
        (* at most one fresh compile for the pair; zero when an earlier
           property case already admitted this fingerprint *)
        && after - before <= 1
      | Error _, Error _ -> true (* same verdict for structural twins *)
      | _ -> false)

let test_no_avoidance_needs_no_table () =
  let t = Lazy.force server in
  let g = Topo_gen.pipeline ~stages:4 ~cap:2 in
  let before = (Serve.stats t).Serve.compiles in
  match Serve.admit t ~mode:Serve.No_avoidance g with
  | Error _ -> Alcotest.fail "pipeline rejected"
  | Ok s ->
    Alcotest.(check bool) "no table" true
      (Serve.avoidance s = Engine.No_avoidance);
    Alcotest.(check int) "no compile" before (Serve.stats t).Serve.compiles

(* ----- admission control ----- *)

let test_butterfly_rejected () =
  let t = Lazy.force server in
  let g = Topo_gen.fig4_butterfly ~cap:2 in
  let before = (Serve.stats t).Serve.rejections in
  match Serve.admit t ~mode:Serve.Non_propagation g with
  | Ok _ -> Alcotest.fail "butterfly admitted"
  | Error (Serve.Lint_rejected ds) ->
    Alcotest.(check bool) "carries the FS201 non-CS4 finding" true
      (List.exists (fun (d : Lint.diagnostic) -> d.code = "FS201") ds);
    Alcotest.(check bool) "only Error-severity findings as reasons" true
      (List.for_all (fun (d : Lint.diagnostic) -> d.severity = Lint.Error) ds);
    Alcotest.(check int) "rejection counted" (before + 1)
      (Serve.stats t).Serve.rejections
  | Error r ->
    Alcotest.failf "wrong rejection: %a" (fun ppf -> Serve.pp_rejection ppf) r

let test_session_misuse () =
  let t = Lazy.force server in
  let g = Topo_gen.pipeline ~stages:2 ~cap:2 in
  let kernels = Filters.for_graph g (fun _ outs -> Filters.passthrough outs) in
  match Serve.admit t ~mode:Serve.No_avoidance g with
  | Error _ -> Alcotest.fail "pipeline rejected"
  | Ok s ->
    (try
       ignore (Serve.await s);
       Alcotest.fail "await before start did not raise"
     with Invalid_argument _ -> ());
    Serve.start t ~kernels ~inputs:5 s;
    (try
       Serve.start t ~kernels ~inputs:5 s;
       Alcotest.fail "double start did not raise"
     with Invalid_argument _ -> ());
    let r = Serve.await s in
    Alcotest.(check bool) "completed" true (r.Report.outcome = Report.Completed);
    (* await is idempotent once the report exists *)
    Alcotest.(check int) "cached report" r.Report.sink_data
      (Serve.await s).Report.sink_data

(* ----- the acceptance bar: >= 100 concurrent tenants, >= 3 distinct
   topologies, one pool, exactly one compile per fingerprint ----- *)

let test_hundred_twenty_tenants_three_topologies () =
  let t = Serve.create ~domains:4 () in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
  let topologies =
    [|
      Topo_gen.pipeline ~stages:6 ~cap:2;
      Topo_gen.fig4_left ~cap:2;
      Topo_gen.random_cs4 (Tutil.rng_of 11) ~blocks:3 ~block_edges:8 ~max_cap:3;
    |]
  in
  let tenants = 120 and inputs = 12 in
  let sessions =
    Array.init tenants (fun i ->
        let g = topologies.(i mod 3) in
        match
          Serve.admit t ~name:(Printf.sprintf "t%03d" i)
            ~mode:Serve.Non_propagation g
        with
        | Error r ->
          Alcotest.failf "tenant %d rejected: %a" i
            (fun ppf -> Serve.pp_rejection ppf)
            r
        | Ok s -> s)
  in
  Alcotest.(check int) "one compile per distinct fingerprint" 3
    (Serve.stats t).Serve.compiles;
  Alcotest.(check int) "all admitted" tenants (Serve.stats t).Serve.tenants;
  (* physical sharing across all tenants of each topology *)
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d shares its topology's table" i)
        true
        (Serve.avoidance s == Serve.avoidance sessions.(i mod 3)))
    sessions;
  (* start every tenant before awaiting any: all 120 instances live on
     the one pool at once, interleaved under the fair-share quota *)
  Array.iteri
    (fun i s ->
      Serve.start t
        ~kernels:(mixed_kernels topologies.(i mod 3) i ())
        ~inputs s)
    sessions;
  let reports = Array.map Serve.await sessions in
  (* Kahn determinism: each tenant's counts equal a direct sequential
     run of the same kernels, whatever the 120-way interleaving did *)
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d completed" i)
        true
        (r.Report.outcome = Report.Completed);
      let direct =
        Run.exec
          (Run.sequential ~avoidance:(Serve.avoidance sessions.(i)) ())
          ~graph:topologies.(i mod 3)
          ~kernels:(mixed_kernels topologies.(i mod 3) i ())
          ~inputs ()
      in
      Alcotest.(check int)
        (Printf.sprintf "tenant %d data count" i)
        direct.Report.data_messages r.Report.data_messages;
      Alcotest.(check int)
        (Printf.sprintf "tenant %d sink count" i)
        direct.Report.sink_data r.Report.sink_data)
    reports

(* ----- differential: serve session = direct Run.exec, both engines ----- *)

let serve_mode_of = function
  | Engine.No_avoidance -> Serve.No_avoidance
  | Engine.Propagation _ -> Serve.Propagation
  | Engine.Non_propagation _ -> Serve.Non_propagation

(* Run one admitted session and the same application directly through
   Run.exec under both engine configs; all three reports must agree on
   outcome + data/sink counts (the schedule-independent fields). *)
let agree_all ~graph ~kernels ~inputs session =
  let t = Lazy.force server in
  let avoidance = Serve.avoidance session in
  let served = Serve.run t ~kernels:(kernels ()) ~inputs session in
  let direct_seq =
    Run.exec (Run.sequential ~avoidance ()) ~graph ~kernels:(kernels ())
      ~inputs ()
  in
  let direct_pool =
    Run.exec
      (Run.pool ~domains:2 ~avoidance ())
      ~graph ~kernels:(kernels ()) ~inputs ()
  in
  let agree (a : Report.t) (b : Report.t) =
    a.Report.outcome = b.Report.outcome
    && a.Report.data_messages = b.Report.data_messages
    && a.Report.sink_data = b.Report.sink_data
  in
  agree served direct_seq && agree served direct_pool

let prop_serve_eq_direct_no_avoidance =
  Tutil.qtest ~count:300 "serve = direct Run.exec, no avoidance (wedges too)"
    Tutil.seed_gen (fun seed ->
      let t = Lazy.force server in
      let g = graph_of_family seed in
      match Serve.admit t ~mode:Serve.No_avoidance g with
      | Error _ -> true (* lint-rejected topology: nothing to serve *)
      | Ok s ->
        serve_mode_of (Serve.avoidance s) = Serve.No_avoidance
        && agree_all ~graph:g ~kernels:(mixed_kernels g seed) ~inputs:24 s)

let prop_serve_eq_direct_non_propagation =
  Tutil.qtest ~count:300 "serve = direct Run.exec, non-propagation"
    Tutil.seed_gen (fun seed ->
      let t = Lazy.force server in
      let g = graph_of_family seed in
      match Serve.admit t ~mode:Serve.Non_propagation g with
      | Error _ -> true
      | Ok s ->
        serve_mode_of (Serve.avoidance s) = Serve.Non_propagation
        && agree_all ~graph:g ~kernels:(mixed_kernels g seed) ~inputs:24 s)

let prop_serve_eq_direct_propagation =
  Tutil.qtest ~count:300
    "serve = direct Run.exec, propagation (paper-pattern filtering)"
    Tutil.seed_gen (fun seed ->
      let t = Lazy.force server in
      let g = graph_of_family seed in
      match Serve.admit t ~mode:Serve.Propagation g with
      | Error _ -> true
      | Ok s ->
        serve_mode_of (Serve.avoidance s) = Serve.Propagation
        && agree_all ~graph:g ~kernels:(paper_pattern_kernels g seed)
             ~inputs:24 s)

let suite =
  [
    prop_registry_shares_physically;
    Alcotest.test_case "no-avoidance mode needs no table" `Quick
      test_no_avoidance_needs_no_table;
    Alcotest.test_case "butterfly rejected at admission (FS201)" `Quick
      test_butterfly_rejected;
    Alcotest.test_case "session misuse raises" `Quick test_session_misuse;
    Alcotest.test_case "120 tenants, 3 topologies, 3 compiles, one pool"
      `Quick test_hundred_twenty_tenants_three_topologies;
    prop_serve_eq_direct_no_avoidance;
    prop_serve_eq_direct_non_propagation;
    prop_serve_eq_direct_propagation;
  ]
