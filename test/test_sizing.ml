open Fstream_core
open Fstream_workloads

let scaled_interval c = function
  | Interval.Inf -> Interval.inf
  | Interval.Fin { num; den } -> Interval.ratio (num * c) den

let prop_homogeneity =
  (* the structural property behind Sizing: interval tables are
     homogeneous of degree 1 in the capacities, for every algorithm *)
  Tutil.qtest ~count:150 "intervals scale linearly with capacities"
    QCheck.(pair Tutil.seed_gen (int_range 2 5))
    (fun (seed, c) ->
      let g = Tutil.random_cs4_of_seed seed in
      let g' = Sizing.scale_caps g c in
      List.for_all
        (fun algo ->
          match
            ( Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } algo g,
              Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } algo g' )
          with
          | Ok p, Ok p' ->
            Array.for_all Fun.id
              (Array.mapi
                 (fun i v ->
                   Interval.equal p'.intervals.(i) (scaled_interval c v))
                 p.intervals)
          | _ -> false)
        [ Compiler.Propagation; Compiler.Non_propagation; Compiler.Relay_propagation ])

let test_fig2_sizing () =
  (* fig2 with caps 2 has tightest non-prop interval 1 (= 2/2); to
     guarantee intervals >= 5 everywhere, buffers must scale by 5 *)
  let g = Topo_gen.fig2_triangle ~cap:2 in
  (match Sizing.min_uniform_scale g Compiler.Non_propagation ~target:5 with
  | Ok c -> Alcotest.(check int) "scale factor" 5 c
  | Error e -> Alcotest.fail e);
  match Sizing.min_uniform_scale g Compiler.Propagation ~target:5 with
  | Ok c ->
    (* tightest propagation interval is 2 (A->B): ceil(5/2) = 3 *)
    Alcotest.(check int) "propagation scale factor" 3 c
  | Error e -> Alcotest.fail e

let test_acyclic_needs_nothing () =
  let g = Topo_gen.pipeline ~stages:4 ~cap:1 in
  match Sizing.min_uniform_scale g Compiler.Non_propagation ~target:100 with
  | Ok 1 -> ()
  | Ok c -> Alcotest.failf "expected 1, got %d" c
  | Error e -> Alcotest.fail e

let prop_sizing_achieves_target =
  Tutil.qtest ~count:100 "scaled graphs meet the target interval"
    QCheck.(pair Tutil.seed_gen (int_range 2 9))
    (fun (seed, target) ->
      let g = Tutil.random_cs4_of_seed seed in
      match Sizing.min_uniform_scale g Compiler.Non_propagation ~target with
      | Error _ -> false
      | Ok c -> (
        let g' = Sizing.scale_caps g c in
        match Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } Compiler.Non_propagation g' with
        | Error _ -> false
        | Ok p ->
          Array.for_all
            (fun v ->
              (not (Interval.is_finite v))
              || Interval.compare v (Interval.of_int target) >= 0)
            p.intervals))

let prop_sizing_minimal =
  Tutil.qtest ~count:100 "one step smaller misses the target"
    QCheck.(pair Tutil.seed_gen (int_range 2 9))
    (fun (seed, target) ->
      let g = Tutil.random_cs4_of_seed seed in
      match Sizing.min_uniform_scale g Compiler.Non_propagation ~target with
      | Error _ -> false
      | Ok 1 -> true
      | Ok c -> (
        let g' = Sizing.scale_caps g (c - 1) in
        match Compiler.compile ~options:{ Compiler.Options.default with allow_general = false } Compiler.Non_propagation g' with
        | Error _ -> false
        | Ok p ->
          Array.exists
            (fun v ->
              Interval.is_finite v
              && Interval.compare v (Interval.of_int target) < 0)
            p.intervals))

let suite =
  [
    Alcotest.test_case "fig2 sizing" `Quick test_fig2_sizing;
    Alcotest.test_case "acyclic graphs need nothing" `Quick
      test_acyclic_needs_nothing;
    prop_homogeneity;
    prop_sizing_achieves_target;
    prop_sizing_minimal;
  ]
